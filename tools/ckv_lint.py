#!/usr/bin/env python3
"""ckv-lint: repo-local determinism & concurrency convention linter.

Enforces, with nothing but the standard library, the conventions the
determinism contract (docs/PERFORMANCE.md) and the concurrency contract
(docs/STATIC_ANALYSIS.md) rely on but a compiler cannot check:

  wall-clock        No wall/steady clock reads outside src/obs/ (the
                    tracer's wall-ns dual) and bench/ (harness timing).
                    Virtual-clock outputs must never depend on host time.
  unseeded-rng      No ambient-seeded randomness (std::random_device,
                    rand/srand, default-constructed mt19937) outside the
                    seeded wrapper in src/tensor/rng.hpp. Every stream of
                    randomness must be reproducible from a named seed.
  unordered-iter    No iteration over std::unordered_map/set variables:
                    bucket order is implementation-defined, so anything
                    ordered derived from it silently varies across
                    platforms. Sort first, or suppress with a reason when
                    the consumer is provably order-free.
  raw-thread        No std::thread / std::async / OpenMP outside
                    src/util/parallel.*: all parallelism goes through the
                    pool so worker counts, chunking and determinism knobs
                    (CKV_THREADS) stay in one place.
  float-accumulate  No std::accumulate over floats outside the vec_ops
                    lane contract (src/tensor/vec_ops.*): reduction order
                    is part of the numeric contract and must go through
                    the fixed-lane kernels.
  bare-catch        No `catch (...)` that swallows the exception outside
                    tests/: the handler must rethrow, preserve it
                    (std::current_exception) or at least report it. The
                    robustness contract (docs/ROBUSTNESS.md) surfaces
                    faults as typed errors; silently eating an unknown
                    exception hides them.

Suppression is machine-readable and audited, never silent:

    // ckv-lint: allow(<rule>) -- <reason>

on the offending line, or on its own line at most {SUPPRESSION_REACH}
lines above (so a comment can cover a multi-line statement). The reason
is mandatory. `allow(rule-a, rule-b)` suppresses several rules at once.

Usage:
    tools/ckv_lint.py [--root DIR]              # lint the whole repo
    tools/ckv_lint.py --check-file F --as-path P  # lint one file as if
                                                  # it lived at repo path
                                                  # P (fixture tests)
    tools/ckv_lint.py --list-rules

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# A suppression comment on its own line covers this many lines below it,
# so one comment can cover a statement wrapped by clang-format.
SUPPRESSION_REACH = 3

SCAN_DIRS = ("src", "bench", "tests", "examples")
SCAN_EXTS = (".cpp", ".hpp", ".cc", ".h")
# Deliberately-violating inputs for the fixture tests; linted one at a
# time via --check-file, never as part of the repo walk.
SKIP_PREFIXES = ("tests/lint_fixtures/",)

ALLOW_RE = re.compile(r"ckv-lint:\s*allow\(([a-z\-,\s]+)\)\s*--\s*\S")

# Path prefixes (repo-relative, '/'-separated) where each rule does not
# apply. Everything else needs a suppression comment with a reason.
RULE_ALLOWED_PREFIXES = {
    "wall-clock": ("src/obs/", "bench/"),
    "unseeded-rng": ("src/tensor/rng.",),
    "unordered-iter": (),
    "raw-thread": ("src/util/parallel.",),
    "float-accumulate": ("src/tensor/vec_ops.",),
    "bare-catch": ("tests/",),
}

SIMPLE_RULES = {
    "wall-clock": re.compile(
        r"steady_clock|system_clock|high_resolution_clock|clock_gettime"
        r"|gettimeofday|std::time\b|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    ),
    "unseeded-rng": re.compile(
        r"std::random_device|\brand\s*\(\s*\)|\bsrand\s*\("
        r"|std::mt19937(?:_64)?\s+\w+\s*[;{]"
    ),
    "raw-thread": re.compile(
        r"std::thread\b(?!::)|std::jthread\b|std::async\b|#\s*pragma\s+omp"
    ),
    "float-accumulate": re.compile(r"std::accumulate\b"),
}

RULE_MESSAGES = {
    "wall-clock": "wall-clock read outside src/obs//bench/ — deterministic "
    "code must stay on the virtual clock",
    "unseeded-rng": "ambient-seeded randomness — route through the seeded "
    "RNG in src/tensor/rng.hpp",
    "unordered-iter": "iteration over an unordered container ({var}) — "
    "bucket order is implementation-defined; sort first or justify with a "
    "suppression",
    "raw-thread": "raw threading primitive outside src/util/parallel — use "
    "parallel_for/parallel_for_range",
    "float-accumulate": "std::accumulate outside the vec_ops lane contract "
    "— reduction order is part of the numeric contract",
    "bare-catch": "catch (...) swallows the exception — rethrow, store "
    "std::current_exception(), or report it before continuing",
}

ALL_RULES = tuple(RULE_MESSAGES)

# Matches the *start* of an unordered container declaration. The negative
# lookbehind keeps nested uses (std::vector<std::unordered_set<...>> v)
# from claiming the outer variable's name.
UNORDERED_DECL_START = re.compile(
    r"(?<![<,\w])(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<"
)
IDENT_AFTER_TEMPLATE = re.compile(r"\s*&?\s*([A-Za-z_]\w*)\s*[;,)({=\[]")
INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')

BARE_CATCH_RE = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
# A handler is fine if it rethrows, preserves the exception object, or
# visibly reports it (stream, logger, tracer) before moving on.
CATCH_HANDLES_RE = re.compile(
    r"\bthrow\b|rethrow|current_exception|\bcerr\b|\bclog\b|\bcout\b"
    r"|\blog\w*\s*\(|tracer\s*\(\s*\)"
)


def strip_comments_and_strings(lines):
    """Blanks out //, /* */ comments and string/char literals, preserving
    line structure, so rule patterns only see code."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                result.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                continue
            result.append(ch)
            i += 1
        out.append("".join(result))
    return out


def find_brace_close(text, open_idx):
    """Index of the '}' matching the '{' at open_idx, or -1 (comments and
    strings already stripped, so raw brace counting is exact)."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def find_template_close(text, open_idx):
    """Index just past the '>' matching the '<' at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def unordered_declarations(code_lines):
    """Names of variables declared as unordered_map/set in these lines."""
    names = set()
    # Join so declarations split across lines still parse.
    text = "\n".join(code_lines)
    for match in UNORDERED_DECL_START.finditer(text):
        open_idx = text.index("<", match.start())
        close = find_template_close(text, open_idx)
        if close == -1:
            continue
        ident = IDENT_AFTER_TEMPLATE.match(text, close)
        if ident:
            names.add(ident.group(1))
    return names


def direct_includes(lines):
    return [m.group(1) for line in lines if (m := INCLUDE_RE.match(line.strip()))]


def parse_suppressions(raw_lines):
    """(rule, covered-line-set) pairs from ckv-lint allow comments."""
    covered = {}  # rule -> set of 1-based line numbers
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
        before_comment = line.split("//", 1)[0].strip()
        # Inline comments cover their own line; standalone ones reach down.
        lines_covered = (
            {idx}
            if before_comment
            else set(range(idx, idx + SUPPRESSION_REACH + 1))
        )
        for rule in rules:
            covered.setdefault(rule, set()).update(lines_covered)
    return covered


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def rule_applies(rule, rel_path):
    return not any(rel_path.startswith(p) for p in RULE_ALLOWED_PREFIXES[rule])


def lint_file(rel_path, raw_lines, extra_unordered_names=()):
    findings = []
    suppressed = parse_suppressions(raw_lines)
    code_lines = strip_comments_and_strings(raw_lines)

    def report(rule, line_no, message):
        if line_no in suppressed.get(rule, ()):
            return
        findings.append(Finding(rel_path, line_no, rule, message))

    for rule, pattern in SIMPLE_RULES.items():
        if not rule_applies(rule, rel_path):
            continue
        for idx, line in enumerate(code_lines, start=1):
            if pattern.search(line):
                report(rule, idx, RULE_MESSAGES[rule])

    if rule_applies("unordered-iter", rel_path):
        names = unordered_declarations(code_lines) | set(extra_unordered_names)
        if names:
            alt = "|".join(re.escape(n) for n in sorted(names))
            iter_re = re.compile(
                rf"for\s*\([^;)]*:\s*\*?({alt})\s*\)|({alt})\s*\.\s*c?begin\s*\(\)"
            )
            for idx, line in enumerate(code_lines, start=1):
                m = iter_re.search(line)
                if m:
                    var = m.group(1) or m.group(2)
                    report(
                        "unordered-iter",
                        idx,
                        RULE_MESSAGES["unordered-iter"].format(var=var),
                    )

    if rule_applies("bare-catch", rel_path):
        text = "\n".join(code_lines)
        for m in BARE_CATCH_RE.finditer(text):
            open_idx = text.find("{", m.end())
            if open_idx == -1:
                continue
            close = find_brace_close(text, open_idx)
            body = text[open_idx + 1 : close] if close != -1 else text[open_idx + 1 :]
            if CATCH_HANDLES_RE.search(body):
                continue
            line_no = text.count("\n", 0, m.start()) + 1
            report("bare-catch", line_no, RULE_MESSAGES["bare-catch"])
    return findings


def repo_files(root):
    for top in SCAN_DIRS:
        top_dir = os.path.join(root, top)
        for dirpath, _dirnames, filenames in os.walk(top_dir):
            for name in sorted(filenames):
                if not name.endswith(SCAN_EXTS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                if any(rel.startswith(p) for p in SKIP_PREFIXES):
                    continue
                yield path


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def header_unordered_names(root, includes, cache):
    """Unordered-container member names declared in the file's own repo
    headers (so member iteration in a .cpp is checked against the real
    declaration, not same-named members of unrelated classes)."""
    names = set()
    for inc in includes:
        path = os.path.join(root, "src", inc)
        if not os.path.isfile(path):
            continue
        if path not in cache:
            cache[path] = unordered_declarations(
                strip_comments_and_strings(read_lines(path))
            )
        names |= cache[path]
    return names


def main(argv):
    parser = argparse.ArgumentParser(prog="ckv_lint.py", add_help=True)
    parser.add_argument("--root", default=None, help="repository root")
    parser.add_argument("--check-file", default=None, help="lint one file")
    parser.add_argument(
        "--as-path",
        default=None,
        help="repo-relative path to attribute --check-file to",
    )
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule}: {RULE_MESSAGES[rule]}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )

    findings = []
    if args.check_file:
        if not args.as_path:
            print("ckv-lint: --check-file requires --as-path", file=sys.stderr)
            return 2
        raw = read_lines(args.check_file)
        findings = lint_file(args.as_path.replace(os.sep, "/"), raw)
    else:
        header_cache = {}
        for path in repo_files(root):
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            raw = read_lines(path)
            extra = ()
            if rel.endswith((".cpp", ".cc")):
                extra = header_unordered_names(
                    root, direct_includes(raw), header_cache
                )
            findings.extend(lint_file(rel, raw, extra))

    for finding in findings:
        print(finding)
    if findings:
        print(f"ckv-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
