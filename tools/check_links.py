#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown docs.

Scans README.md and docs/*.md for markdown links/images, resolves every
relative target against the file that references it, and exits non-zero
listing the ones that do not exist. External (http/https/mailto) links
and pure in-page anchors are skipped; an anchor suffix on a relative
link is stripped before the existence check (anchor validity is not
checked).

Usage: python3 tools/check_links.py [file-or-dir ...]
       (defaults to README.md and docs/ at the repo root)
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) — stops at the first unbalanced ')'.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def collect_files(arguments: list[str], root: Path) -> list[Path]:
    if not arguments:
        candidates = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
        return [path for path in candidates if path.is_file()]
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        files.extend(sorted(path.glob("*.md")) if path.is_dir() else [path])
    return files


def broken_links(markdown_file: Path) -> list[str]:
    broken: list[str] = []
    text = markdown_file.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (markdown_file.parent / relative).exists():
            line = text.count("\n", 0, match.start()) + 1
            broken.append(f"{markdown_file}:{line}: broken link -> {target}")
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = collect_files(sys.argv[1:], root)
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 2
    failures: list[str] = []
    for markdown_file in files:
        failures.extend(broken_links(markdown_file))
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"check_links: {len(files)} files, {len(failures)} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
