#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON produced by the obs tracer.

Checks (exit 1 on the first failure, with a diagnostic):
  1. the file is well-formed JSON with a traceEvents array;
  2. per track (pid, tid), event timestamps are non-decreasing in file
     order — the exporter sorts by (track, virtual time), so a violation
     means the sort or the virtual clock regressed;
  3. per track, duration events balance: every E closes the most recent
     open B with the same name, and no B is left open at the end.
     Skipped when otherData.dropped_events > 0 — a ring that wrapped has
     legitimately lost some begin edges.

Multi-worker ticks are first-class: pool threads emit their occupancy
spans on dedicated tracks at tid >= WORKER_TRACK_BASE (1 << 20, matching
obs::kWorkerTrackBase), interleaved with the scheduler's session tracks.
Checks 2 and 3 apply to worker tracks exactly like any other track —
virtual timestamps are monotone per track and every advance span closes.
--expect-worker-tracks asserts a minimum number of distinct worker
tracks, so CI can prove a parallel tick actually fanned out.

The transfer engine emits its link-busy / per-transfer spans on one
dedicated track at tid == TRANSFER_TRACK ((1 << 20) - 1, matching
obs::kTransferTrack, below the worker range). --expect-transfer-track
asserts that track exists with at least one event, so CI can prove an
engine-enabled run actually modeled wire traffic.

Usage: check_trace.py <trace.json> [--min-events N]
                      [--expect-worker-tracks N] [--expect-transfer-track]
"""
import argparse
import json
import sys

WORKER_TRACK_BASE = 1 << 20  # mirrors obs::kWorkerTrackBase
TRANSFER_TRACK = (1 << 20) - 1  # mirrors obs::kTransferTrack


def fail(message):
    print(f"check_trace: FAIL: {message}")
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="minimum non-metadata events expected (guards empty traces)",
    )
    parser.add_argument(
        "--expect-worker-tracks",
        type=int,
        default=0,
        help="minimum distinct pool-worker tracks (tid >= 1<<20) expected; "
        "0 skips the check",
    )
    parser.add_argument(
        "--expect-transfer-track",
        action="store_true",
        help="require the transfer-engine track (tid == (1<<20)-1) to exist "
        "with at least one event",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{args.trace}: not readable as JSON: {error}")

    events = document.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents missing or not an array")
    dropped = document.get("otherData", {}).get("dropped_events", 0)

    last_ts = {}
    open_spans = {}
    checked = 0
    for i, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase not in ("B", "E", "i", "C"):
            fail(f"event {i}: unexpected phase {phase!r}")
        track = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"event {i}: ts missing or non-numeric")
        if track in last_ts and ts < last_ts[track]:
            fail(
                f"event {i} ({event.get('name')!r}): ts {ts} goes backwards "
                f"on track {track} (previous {last_ts[track]})"
            )
        last_ts[track] = ts
        checked += 1

        if phase == "B":
            open_spans.setdefault(track, []).append(event.get("name"))
        elif phase == "E" and dropped == 0:
            stack = open_spans.get(track, [])
            if not stack:
                fail(
                    f"event {i}: E {event.get('name')!r} on track {track} "
                    "with no open span"
                )
            top = stack.pop()
            if top != event.get("name"):
                fail(
                    f"event {i}: E {event.get('name')!r} closes open span "
                    f"{top!r} on track {track}"
                )

    if dropped == 0:
        for track, stack in open_spans.items():
            if stack:
                fail(f"track {track}: unclosed spans at end of trace: {stack}")
    if checked < args.min_events:
        fail(f"only {checked} events (expected >= {args.min_events})")

    worker_tracks = {
        track
        for track in last_ts
        if isinstance(track[1], int) and track[1] >= WORKER_TRACK_BASE
    }
    if len(worker_tracks) < args.expect_worker_tracks:
        fail(
            f"only {len(worker_tracks)} worker tracks (tid >= 1<<20), "
            f"expected >= {args.expect_worker_tracks} — did the tick fan out?"
        )

    transfer_tracks = {
        track for track in last_ts if track[1] == TRANSFER_TRACK
    }
    if args.expect_transfer_track and not transfer_tracks:
        fail(
            "no events on the transfer-engine track (tid == (1<<20)-1) — "
            "did the run enable the transfer engine and carry any traffic?"
        )

    print(
        f"check_trace: OK: {checked} events on {len(last_ts)} tracks "
        f"({len(worker_tracks)} worker), monotone per-track ts, balanced spans"
        + (f" (balance skipped: {dropped} dropped)" if dropped else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
