// ckv — command-line driver for the ClusterKV reproduction.
//
//   ckv recall    --context 8192 --budget 512 --method clusterkv
//   ckv latency   --model llama31-8b --prompt 32768 --decode 512 --budget 1024
//   ckv cache     --context 8192 --budget 1024 --depth 1 --steps 64
//   ckv longbench --budget 1024 [--csv]
//   ckv ppl       --max-len 8192 --budget 512
//   ckv serve     --sessions 12 --rps 6 --method clusterkv --budget-mult 2.5
//
// Run `ckv <command> --help` for the command's options.
#include <fstream>
#include <iostream>

#include "baselines/full_kv.hpp"
#include "baselines/h2o.hpp"
#include "baselines/infinigen.hpp"
#include "baselines/quest.hpp"
#include "baselines/streaming_llm.hpp"
#include "core/clusterkv_engine.hpp"
#include "model/decode_engine.hpp"
#include "obs/trace.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/trace.hpp"
#include "sim/latency_model.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "workload/longbench.hpp"
#include "workload/pg19.hpp"

namespace {

using namespace ckv;

SelectorFactory make_method(const std::string& name, std::uint64_t seed,
                            Index budget) {
  if (name == "clusterkv") {
    return make_clusterkv_factory(ClusterKVConfig{}, seed);
  }
  if (name == "quest") {
    return make_quest_factory();
  }
  if (name == "infinigen") {
    return make_infinigen_factory();
  }
  if (name == "h2o") {
    H2OConfig config;
    config.budget = budget;
    return make_h2o_factory(config);
  }
  if (name == "window" || name == "streamingllm") {
    return make_streaming_llm_factory();
  }
  if (name == "full") {
    return make_full_kv_factory();
  }
  throw std::invalid_argument(
      "unknown method '" + name +
      "' (expected clusterkv|quest|infinigen|h2o|window|full)");
}

ModelConfig make_model(const std::string& name) {
  if (name == "llama31-8b") {
    return ModelConfig::llama31_8b();
  }
  if (name == "glm4-9b") {
    return ModelConfig::glm4_9b();
  }
  if (name == "opt-6.7b") {
    return ModelConfig::opt_6_7b();
  }
  throw std::invalid_argument("unknown model '" + name +
                              "' (expected llama31-8b|glm4-9b|opt-6.7b)");
}

void emit(const TextTable& table, bool csv) {
  std::cout << (csv ? table.to_csv() : table.to_string());
}

int run_recall(int argc, const char* const* argv) {
  ArgParser args("ckv recall — recall/coverage of one method on one context");
  args.add_option("context", "8192", "context length (tokens)");
  args.add_option("budget", "512", "KV cache budget (tokens)");
  args.add_option("method", "clusterkv", "clusterkv|quest|infinigen|h2o|window|full");
  args.add_option("steps", "24", "decode steps to average over");
  args.add_option("heads", "4", "KV heads in the simulation slice");
  args.add_option("seed", "1", "experiment seed");
  args.add_switch("csv", "emit CSV instead of an aligned table");
  args.parse(argc, argv);

  SimShape shape;
  shape.num_layers = 1;
  shape.num_heads = args.get_index("heads");
  shape.head_dim = 64;
  ProceduralParams params;
  params.head_dim = 64;
  ProceduralContextModel model(
      shape, params, static_cast<std::uint64_t>(args.get_index("seed")),
      args.get_index("context"));
  DecodeEngineConfig config;
  config.budget = args.get_index("budget");
  config.full_attention_layers = 0;
  config.attention_feedback = args.get_string("method") == "h2o";
  DecodeEngine engine(
      model,
      make_method(args.get_string("method"),
                  static_cast<std::uint64_t>(args.get_index("seed")), config.budget),
      config);
  engine.run_prefill();
  for (Index s = 0; s < args.get_index("steps"); ++s) {
    engine.decode_step(s);
  }
  TextTable table({"method", "context", "budget", "recall@B", "coverage",
                   "cache hits", "fetched"});
  table.add_row({args.get_string("method"), args.get_string("context"),
                 args.get_string("budget"),
                 format_double(engine.mean_recall(), 3),
                 format_double(engine.mean_coverage(), 3),
                 std::to_string(engine.total_cache_hits()),
                 std::to_string(engine.total_fetched())});
  emit(table, args.get_switch("csv"));
  return 0;
}

int run_latency(int argc, const char* const* argv) {
  ArgParser args("ckv latency — analytic end-to-end latency (Fig. 12 model)");
  args.add_option("model", "llama31-8b", "llama31-8b|glm4-9b|opt-6.7b");
  args.add_option("prompt", "32768", "prompt length P");
  args.add_option("decode", "512", "decode length D");
  args.add_option("budget", "1024", "KV budget for compressed methods");
  args.add_option("miss-rate", "0.37", "ClusterKV cache miss rate");
  args.add_switch("csv", "emit CSV instead of an aligned table");
  args.parse(argc, argv);

  const LatencyModel model(HardwareModel::ada6000(),
                           make_model(args.get_string("model")));
  TextTable table({"method", "prefill (s)", "decode (s)", "total (s)", "tok/s"});
  const Index decode_len = args.get_index("decode");
  for (const auto method :
       {LatencyModel::Method::kFullKV, LatencyModel::Method::kClusterKV,
        LatencyModel::Method::kQuest, LatencyModel::Method::kInfiniGen}) {
    LatencyModel::RunParams run;
    run.method = method;
    run.prompt_len = args.get_index("prompt");
    run.decode_len = decode_len;
    run.budget = args.get_index("budget");
    run.clusterkv_miss_rate = args.get_double("miss-rate");
    const auto latency = model.run_latency(run);
    table.add_row({to_string(method), format_double(latency.prefill_ms / 1000.0, 2),
                   format_double(latency.decode_ms / 1000.0, 2),
                   format_double(latency.total_ms() / 1000.0, 2),
                   format_double(latency.decode_throughput_tps(decode_len), 1)});
  }
  emit(table, args.get_switch("csv"));
  return 0;
}

int run_cache(int argc, const char* const* argv) {
  ArgParser args("ckv cache — cluster-cache hit rates (§IV-D)");
  args.add_option("context", "8192", "context length (tokens)");
  args.add_option("budget", "1024", "KV cache budget");
  args.add_option("depth", "1", "cache depth R");
  args.add_option("steps", "64", "decode steps");
  args.add_option("seed", "1", "experiment seed");
  args.add_switch("csv", "emit CSV instead of an aligned table");
  args.parse(argc, argv);

  SimShape shape;
  shape.num_layers = 1;
  shape.num_heads = 4;
  shape.head_dim = 64;
  ProceduralParams params;
  params.head_dim = 64;
  ProceduralContextModel model(
      shape, params, static_cast<std::uint64_t>(args.get_index("seed")),
      args.get_index("context"));
  ClusterKVConfig config;
  config.cache_depth = args.get_index("depth");
  DecodeEngineConfig engine_config;
  engine_config.budget = args.get_index("budget");
  engine_config.full_attention_layers = 0;
  DecodeEngine engine(model,
                      make_clusterkv_factory(
                          config, static_cast<std::uint64_t>(args.get_index("seed"))),
                      engine_config);
  engine.run_prefill();
  for (Index s = 0; s < args.get_index("steps"); ++s) {
    engine.decode_step(s);
  }
  const double total =
      static_cast<double>(engine.total_cache_hits() + engine.total_fetched());
  TextTable table({"R", "hit rate", "hits", "fetched"});
  table.add_row({args.get_string("depth"),
                 format_double(total == 0.0 ? 0.0
                                            : 100.0 * engine.total_cache_hits() / total,
                               1) +
                     "%",
                 std::to_string(engine.total_cache_hits()),
                 std::to_string(engine.total_fetched())});
  emit(table, args.get_switch("csv"));
  return 0;
}

int run_longbench(int argc, const char* const* argv) {
  ArgParser args("ckv longbench — synthetic LongBench suite (Fig. 9 workload)");
  args.add_option("budget", "1024", "KV cache budget");
  args.add_option("method", "clusterkv", "clusterkv|quest|infinigen|h2o|window|full");
  args.add_option("seed", "2025", "experiment seed");
  args.add_switch("small", "use the short-context suite (fast)");
  args.add_switch("csv", "emit CSV instead of an aligned table");
  args.parse(argc, argv);

  TaskRunOptions options;
  options.shape.num_layers = 2;
  options.shape.num_heads = 2;
  options.shape.head_dim = 64;
  options.params.head_dim = 64;
  options.budget = args.get_index("budget");
  options.full_attention_layers = 1;
  options.seed = static_cast<std::uint64_t>(args.get_index("seed"));
  options.attention_feedback = args.get_string("method") == "h2o";

  const auto suite =
      args.get_switch("small") ? longbench_suite_small() : longbench_suite();
  const auto factory = make_method(args.get_string("method"), options.seed,
                                   options.budget);
  TextTable table({"task", "metric", "context", "score", "quality"});
  for (const auto& task : suite) {
    const auto result = run_longbench_task(task, factory, options);
    table.add_row({task.name, task.metric, std::to_string(task.context_len),
                   format_double(result.score, 2), format_double(result.quality, 3)});
  }
  emit(table, args.get_switch("csv"));
  return 0;
}

int run_ppl(int argc, const char* const* argv) {
  ArgParser args("ckv ppl — streaming perplexity (Fig. 10 workload)");
  args.add_option("max-len", "8192", "longest input length");
  args.add_option("budget", "512", "KV cache budget");
  args.add_option("method", "clusterkv", "clusterkv|quest|infinigen|full");
  args.add_option("stride", "1024", "evaluation stride");
  args.add_switch("csv", "emit CSV instead of an aligned table");
  args.parse(argc, argv);

  PG19Config config;
  config.max_len = args.get_index("max-len");
  config.prompt_len = std::min<Index>(1024, config.max_len / 2);
  config.eval_stride = args.get_index("stride");
  config.budget = args.get_index("budget");
  SimShape shape;
  shape.num_layers = 2;
  shape.num_heads = 2;
  shape.head_dim = 64;
  ProceduralParams params;
  params.head_dim = 64;

  const auto points = run_pg19(make_method(args.get_string("method"), 7, config.budget),
                               config, shape, params);
  TextTable table({"input length", "perplexity"});
  for (const auto& p : points) {
    table.add_row({std::to_string(p.input_len), format_double(p.perplexity, 2)});
  }
  emit(table, args.get_switch("csv"));
  return 0;
}

int run_serve(int argc, const char* const* argv) {
  ArgParser args("ckv serve — multi-session continuous batching under a "
                 "shared fast-tier budget");
  args.add_option("sessions", "12", "number of requests in the trace");
  args.add_option("rps", "6", "offered load (requests per second; 0 = all at t=0)");
  args.add_option("prompt", "900", "mean prompt length (+-20%)");
  args.add_option("decode", "24", "mean generation length (+-33%)");
  args.add_option("budget", "128", "per-session KV cache budget (tokens)");
  args.add_option("method", "clusterkv", "clusterkv|quest|full");
  args.add_option("budget-mult", "2.5",
                  "global fast-tier budget as a multiple of one mean full context");
  args.add_option("overcommit", "1",
                  "admission overcommit factor (clusterkv only; >= 1; "
                  "reservations may sum to budget x overcommit, preemption "
                  "keeps actual residency under budget)");
  args.add_option("prefill-chunk", "256",
                  "prompt tokens prefilled per tick (chunked prefill; 0 = "
                  "whole prompt in one tick)");
  args.add_option("repair-threshold", "0.8",
                  "cross-chunk repair: min centroid similarity for an "
                  "adjacent-batch merge (clusterkv only; -1 merges every "
                  "adjacent pair)");
  args.add_option("repair-refine", "4",
                  "cross-chunk repair: k-means refinement iterations per "
                  "merged group (0 disables repair)");
  args.add_option("repair-interval", "0",
                  "also repair every N generated tokens (0 = post-prefill "
                  "repair only)");
  args.add_option("prefetch-clusters", "0",
                  "async prefetch: clusters fetched speculatively per decode "
                  "step, overlapping the step's attention (clusterkv only; "
                  "0 = synchronous fetches)");
  args.add_option("prefetch-prior-weight", "0.5",
                  "async prefetch: weight of the recency/frequency prior in "
                  "the prediction blend");
  args.add_option("prefetch-prior-decay", "0.5",
                  "async prefetch: per-step EMA decay of the prior (in [0, 1))");
  args.add_switch("transfer-engine",
                  "model the slow->fast link as an explicit bandwidth-"
                  "contended queue (sim/transfer_engine): concurrent "
                  "sessions' demand misses and speculative prefetches "
                  "contend for the wire; clusterkv only");
  args.add_option("link-gbps", "0",
                  "modeled slow->fast link bandwidth for --transfer-engine "
                  "(GB/s; 0 = the hardware model's gather rate)");
  args.add_option("max-running", "0",
                  "hard cap on concurrently running sessions (0 = unlimited)");
  args.add_option("fault-plan", "off",
                  "deterministic fault injection (docs/ROBUSTNESS.md): 'off' "
                  "or 'chaos' (seeded transient fetch failures with retry/"
                  "backoff, link brownouts, mid-decode aborts, admission "
                  "bursts with load shedding); clusterkv + --transfer-engine "
                  "only");
  args.add_option("fault-seed", "7777",
                  "seed of the --fault-plan chaos schedule (replayable: the "
                  "same seed gives a byte-identical run at any CKV_THREADS)");
  args.add_switch("serial-tick",
                  "advance sessions one at a time on the scheduler thread "
                  "instead of fanning a tick out to the worker pool (results "
                  "are byte-identical either way — this knob trades wall "
                  "time for a single-threaded schedule, e.g. for debugging; "
                  "worker count itself comes from CKV_THREADS)");
  args.add_option("seed", "2025", "experiment seed");
  args.add_option("trace", "",
                  "write a Chrome trace-event JSON of the run (virtual-clock "
                  "spans; load in Perfetto / chrome://tracing)");
  args.add_option("metrics-out", "",
                  "dump the metrics registry after the run (.csv emits CSV, "
                  "anything else flat JSON)");
  args.add_switch("csv", "emit CSV instead of an aligned table");
  args.parse(argc, argv);

  const std::string method = args.get_string("method");
  const Index prompt = args.get_index("prompt");
  const Index decode = args.get_index("decode");

  TraceConfig trace_config;
  trace_config.num_requests = args.get_index("sessions");
  trace_config.offered_rps = args.get_double("rps");
  trace_config.prompt_len_min = std::max<Index>(1, prompt * 8 / 10);
  trace_config.prompt_len_max = prompt * 12 / 10;
  trace_config.decode_len_min = std::max<Index>(1, decode * 2 / 3);
  trace_config.decode_len_max = decode * 4 / 3;
  const auto seed = static_cast<std::uint64_t>(args.get_index("seed"));
  const auto trace = make_poisson_trace(trace_config, seed);

  SessionConfig session_config;
  session_config.shape.num_layers = 1;
  session_config.shape.num_heads = 2;
  session_config.shape.head_dim = 64;
  session_config.params.head_dim = 64;
  session_config.engine.budget = args.get_index("budget");
  session_config.engine.full_attention_layers = 0;

  ClusterKVConfig ckv;
  ckv.tokens_per_cluster = 20;
  ckv.decode_interval = 32;
  ckv.decode_clusters = 2;
  ckv.repair_merge_threshold = args.get_double_in("repair-threshold", -1.0, 1.0);
  ckv.repair_refine_iterations = args.get_index("repair-refine");
  ckv.repair_decode_interval = args.get_index("repair-interval");
  ckv.prefetch_clusters = args.get_index("prefetch-clusters");
  ckv.prefetch_prior_weight = args.get_double_in("prefetch-prior-weight", 0.0, 100.0);
  ckv.prefetch_prior_decay =
      args.get_double_in("prefetch-prior-decay", 0.0, 0.999999);

  BatchSchedulerConfig scheduler_config;
  SelectorFactory factory;
  if (method == "clusterkv") {
    scheduler_config.method = LatencyModel::Method::kClusterKV;
    scheduler_config.tiered_residency = true;
    scheduler_config.sink_tokens = ckv.sink_tokens;
    scheduler_config.decode_interval = ckv.decode_interval;
    scheduler_config.cache_depth = ckv.cache_depth;
    scheduler_config.tokens_per_cluster = ckv.tokens_per_cluster;
    scheduler_config.admission_overcommit = args.get_double("overcommit");
    scheduler_config.repair_refine_iterations = ckv.repair_refine_iterations;
    scheduler_config.repair_decode_interval = ckv.repair_decode_interval;
    scheduler_config.prefetch_clusters = ckv.prefetch_clusters;
    factory = make_clusterkv_factory(ckv, seed);
  } else if (method == "quest") {
    scheduler_config.method = LatencyModel::Method::kQuest;
    factory = make_quest_factory();
  } else if (method == "full") {
    scheduler_config.method = LatencyModel::Method::kFullKV;
    factory = make_full_kv_factory();
  } else {
    throw std::invalid_argument("unknown method '" + method +
                                "' (expected clusterkv|quest|full)");
  }
  if (method != "clusterkv" && args.get_double("overcommit") != 1.0) {
    throw std::invalid_argument(
        "--overcommit only applies to clusterkv (untiered methods cannot "
        "be preempted back under budget)");
  }
  if (method != "clusterkv" && args.get_index("prefetch-clusters") != 0) {
    throw std::invalid_argument(
        "--prefetch-clusters only applies to clusterkv (other methods have "
        "no cluster cache to prefetch into)");
  }
  if (method != "clusterkv" && args.get_switch("transfer-engine")) {
    throw std::invalid_argument(
        "--transfer-engine only applies to clusterkv (it models the tiered "
        "slow->fast fetch path)");
  }
  const std::string fault_plan = args.get_string("fault-plan");
  if (fault_plan == "chaos") {
    if (method != "clusterkv" || !args.get_switch("transfer-engine")) {
      throw std::invalid_argument(
          "--fault-plan chaos needs clusterkv with --transfer-engine (the "
          "fault model targets the tiered fetch path and the modeled wire)");
    }
    scheduler_config.fault_plan = FaultPlan::chaos(
        static_cast<std::uint64_t>(args.get_index("fault-seed")));
  } else if (fault_plan != "off") {
    throw std::invalid_argument("unknown --fault-plan '" + fault_plan +
                                "' (expected off|chaos)");
  }
  scheduler_config.use_transfer_engine = args.get_switch("transfer-engine");
  scheduler_config.link_gbps = args.get_double_in("link-gbps", 0.0, 1e6);
  scheduler_config.fast_tier_budget_bytes = static_cast<std::int64_t>(
      args.get_double("budget-mult") *
      static_cast<double>((prompt + decode) * session_token_bytes(session_config) *
                          session_config.shape.total_heads()));
  scheduler_config.prefill_chunk_tokens = args.get_index("prefill-chunk");
  scheduler_config.max_running = args.get_index("max-running");
  scheduler_config.parallel_tick = !args.get_switch("serial-tick");

  const std::string trace_path = args.get_string("trace");
  const std::string metrics_path = args.get_string("metrics-out");
  if (!trace_path.empty()) {
    obs::tracer().enable();
  }

  const LatencyModel latency(HardwareModel::ada6000(),
                             make_model("llama31-8b"));
  BatchScheduler scheduler(trace, factory, session_config, latency,
                           scheduler_config);
  scheduler.run();

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      throw std::runtime_error("cannot open trace file '" + trace_path + "'");
    }
    obs::tracer().write_chrome_trace(out);
    obs::tracer().disable();
    std::cerr << "trace: " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    // Fold driver-side worker utilization into the registry so one dump
    // covers the serving stack and the kernel pool underneath it.
    auto& registry = scheduler.metrics().registry();
    const auto workers = parallel_worker_utilization();
    for (std::size_t slot = 0; slot < workers.size(); ++slot) {
      const std::string prefix = "parallel.worker" + std::to_string(slot);
      registry.counter(prefix + ".chunks").add(workers[slot].chunks);
      registry.counter(prefix + ".indices").add(workers[slot].indices);
    }
    std::ofstream out(metrics_path);
    if (!out) {
      throw std::runtime_error("cannot open metrics file '" + metrics_path +
                               "'");
    }
    const bool as_csv = metrics_path.size() >= 4 &&
                        metrics_path.compare(metrics_path.size() - 4, 4,
                                             ".csv") == 0;
    if (as_csv) {
      registry.write_csv(out);
    } else {
      registry.write_json(out);
    }
    std::cerr << "metrics: " << metrics_path << "\n";
  }

  const auto& m = scheduler.metrics();
  TextTable table({"method", "sessions", "rps", "tok/s", "max batch",
                   "p50 TTFT (s)", "p95 TTFT (s)", "p95 prefill (s)",
                   "p50 ITL (ms)", "p95 ITL (ms)",
                   "wait (s)", "preempt", "repair (ms)", "hit rate", "pf hit",
                   "recall@B", "fanout", "adv wall (ms)"});
  table.add_row({method, std::to_string(m.sessions()), args.get_string("rps"),
                 format_double(m.throughput_tps(), 1),
                 format_double(m.concurrency().max(), 0),
                 format_double(m.ttft_percentile(50.0) / 1000.0, 2),
                 format_double(m.ttft_percentile(95.0) / 1000.0, 2),
                 format_double(m.prefill_percentile(95.0) / 1000.0, 2),
                 format_double(m.inter_token_percentile(50.0), 1),
                 format_double(m.inter_token_percentile(95.0), 1),
                 format_double(m.mean_queue_wait_ms() / 1000.0, 2),
                 std::to_string(m.total_preemptions()),
                 format_double(m.repair_ms_total(), 1),
                 format_double(m.mean_cache_hit_rate(), 2),
                 m.prefetch_issued_total() > 0
                     ? format_double(m.prefetch_hit_rate(), 2)
                     : "-",
                 format_double(m.mean_recall(), 3),
                 format_double(m.fanout_fraction(), 2),
                 format_double(m.advance_wall_ms_total(), 0)});
  emit(table, args.get_switch("csv"));
  if (fault_plan == "chaos") {
    // Degradation ledger for the chaos run (separate from the main table so
    // a fault-free run's output is byte-identical to pre-fault builds).
    TextTable fault_table({"faulted fetches", "recovered", "dead", "degraded",
                           "retry (ms)", "aborts", "shed", "wire retry",
                           "wire fail"});
    fault_table.add_row({std::to_string(m.fault_fetch_faults_total()),
                         std::to_string(m.fault_retried_ok_total()),
                         std::to_string(m.dead_fetches_total()),
                         std::to_string(m.degraded_steps_total()),
                         format_double(m.fault_retry_ms_total(), 1),
                         std::to_string(m.fault_aborts_total()),
                         std::to_string(m.shed_sessions_total()),
                         std::to_string(m.wire_retries_total()),
                         std::to_string(m.wire_failures_total())});
    emit(fault_table, args.get_switch("csv"));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage: ckv <recall|latency|cache|longbench|ppl|serve> [--help] [options]\n";
  if (argc < 2) {
    std::cerr << usage;
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "recall") {
      return run_recall(argc - 1, argv + 1);
    }
    if (command == "latency") {
      return run_latency(argc - 1, argv + 1);
    }
    if (command == "cache") {
      return run_cache(argc - 1, argv + 1);
    }
    if (command == "longbench") {
      return run_longbench(argc - 1, argv + 1);
    }
    if (command == "ppl") {
      return run_ppl(argc - 1, argv + 1);
    }
    if (command == "serve") {
      return run_serve(argc - 1, argv + 1);
    }
    std::cerr << "unknown command '" << command << "'\n" << usage;
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
