// Long-document QA: the workload the paper's introduction motivates.
//
// A 32k-token "document" contains two planted evidence passages; during
// the answer phase the model's queries focus on them (multi-hop). The
// example runs all four methods at two budgets and prints task scores —
// a miniature of the Fig. 9 experiment using the public workload API.
//
// Build & run:  cmake --build build && ./build/examples/long_document_qa
#include <iostream>

#include "baselines/full_kv.hpp"
#include "baselines/infinigen.hpp"
#include "baselines/quest.hpp"
#include "core/clusterkv_engine.hpp"
#include "util/table.hpp"
#include "workload/longbench.hpp"

using namespace ckv;

int main() {
  LongBenchTask task;
  task.name = "long-document-qa";
  task.metric = "F1";
  task.context_len = 32768;
  task.answer_steps = 32;
  task.needle_groups = 2;   // two evidence passages (multi-hop)
  task.needle_group_size = 24;
  task.full_kv_score = 50.0;
  task.difficulty = 1.0;

  TaskRunOptions options;
  options.shape.num_layers = 2;
  options.shape.num_heads = 2;
  options.shape.head_dim = 64;
  options.params.head_dim = 64;
  options.full_attention_layers = 1;
  options.seed = 11;

  struct Method {
    std::string name;
    SelectorFactory factory;
  };
  const std::vector<Method> methods{
      {"Quest", make_quest_factory()},
      {"InfiniGen", make_infinigen_factory()},
      {"ClusterKV", make_clusterkv_factory(ClusterKVConfig{}, 3)},
      {"Full KV", make_full_kv_factory()},
  };

  std::cout << "long-document QA over " << task.context_len << " tokens, "
            << task.needle_groups << " evidence passages\n\n";
  TextTable table({"method", "score (B=512)", "score (B=2048)", "evidence recall"});
  for (const auto& method : methods) {
    options.budget = 512;
    const auto at_512 = run_longbench_task(task, method.factory, options);
    options.budget = 2048;
    const auto at_2048 = run_longbench_task(task, method.factory, options);
    table.add_row({method.name, format_double(at_512.score, 1),
                   format_double(at_2048.score, 1),
                   format_double(at_2048.mean_recall, 3)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "ClusterKV approaches the Full KV score with 2048 of "
            << task.context_len << " tokens — the paper's headline accuracy claim.\n";
  return 0;
}
