// Language modelling with a compressed KV cache (the Fig. 10 setting,
// shortened): stream an 8k-token corpus through the model under teacher
// forcing and watch the perplexity gap each compression method pays
// relative to the full KV cache.
//
// Build & run:  cmake --build build && ./build/examples/language_modeling
#include <iostream>

#include "baselines/full_kv.hpp"
#include "baselines/infinigen.hpp"
#include "baselines/quest.hpp"
#include "core/clusterkv_engine.hpp"
#include "util/table.hpp"
#include "workload/pg19.hpp"

using namespace ckv;

int main() {
  PG19Config config;
  config.max_len = 8192;
  config.prompt_len = 1024;
  config.eval_stride = 1024;
  config.budget = 512;

  SimShape shape;
  shape.num_layers = 2;
  shape.num_heads = 2;
  shape.head_dim = 64;
  ProceduralParams params;
  params.head_dim = 64;

  std::cout << "streaming LM evaluation, budget " << config.budget << " of up to "
            << config.max_len << " tokens\n\n";

  struct Method {
    std::string name;
    SelectorFactory factory;
  };
  const std::vector<Method> methods{
      {"Full KV", make_full_kv_factory()},
      {"ClusterKV", make_clusterkv_factory(ClusterKVConfig{}, 5)},
      {"Quest", make_quest_factory()},
      {"InfiniGen", make_infinigen_factory()},
  };

  std::vector<std::vector<PerplexityPoint>> curves;
  for (const auto& method : methods) {
    curves.push_back(run_pg19(method.factory, config, shape, params));
  }

  TextTable table({"input length", "Full KV", "ClusterKV", "Quest", "InfiniGen"});
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    table.add_row({std::to_string(curves[0][i].input_len),
                   format_double(curves[0][i].perplexity, 2),
                   format_double(curves[1][i].perplexity, 2),
                   format_double(curves[2][i].perplexity, 2),
                   format_double(curves[3][i].perplexity, 2)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "a method's gap to Full KV is exactly the KL divergence its\n"
               "approximate attention introduces into the output distribution.\n";
  return 0;
}
