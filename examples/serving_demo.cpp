// Serving demo: a small fleet of concurrent users over per-session
// ClusterKV engines, scheduled by the continuous-batching runtime.
//
// This example walks the serving API end to end:
//   1. generate a Poisson trace of requests (arrival times, prompt and
//      generation lengths),
//   2. build a BatchScheduler with a constrained global fast-tier budget,
//   3. tick it manually and watch sessions move through their lifecycle
//      (queued -> prefilling -> decoding -> finished) while the scheduler
//      arbitrates HBM residency across them,
//   4. print the per-session and fleet-level metrics.
//
// Build & run:  cmake --build build && ./build/serving_demo
#include <iostream>

#include "core/clusterkv_engine.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/trace.hpp"
#include "util/table.hpp"

using namespace ckv;

int main() {
  // 1. Eight users arriving at ~8 requests/second, each with a ~0.5k-token
  //    prompt and a short generation.
  TraceConfig trace_config;
  trace_config.num_requests = 8;
  trace_config.offered_rps = 8.0;
  trace_config.prompt_len_min = 400;
  trace_config.prompt_len_max = 600;
  trace_config.decode_len_min = 8;
  trace_config.decode_len_max = 16;
  const auto trace = make_poisson_trace(trace_config, 7);

  // 2. Per-session engines: a 1-layer x 2-head slice, 96-token KV budget,
  //    ClusterKV with a fine cluster granularity for these short contexts.
  SessionConfig session_config;
  session_config.shape.num_layers = 1;
  session_config.shape.num_heads = 2;
  session_config.shape.head_dim = 64;
  session_config.params.head_dim = 64;
  session_config.engine.budget = 96;
  session_config.engine.full_attention_layers = 0;

  ClusterKVConfig ckv;
  ckv.tokens_per_cluster = 20;
  ckv.decode_interval = 16;
  ckv.decode_clusters = 2;

  BatchSchedulerConfig scheduler_config;
  scheduler_config.method = LatencyModel::Method::kClusterKV;
  scheduler_config.tiered_residency = true;
  scheduler_config.sink_tokens = ckv.sink_tokens;
  scheduler_config.decode_interval = ckv.decode_interval;
  scheduler_config.cache_depth = ckv.cache_depth;
  scheduler_config.tokens_per_cluster = ckv.tokens_per_cluster;
  // Budget: ~3 ClusterKV working sets — the whole fleet could never pin
  // its full contexts (8 x ~500 tokens), recallable compression is what
  // makes the batch fit.
  const Index per_token = session_token_bytes(session_config);
  const Index floor_tokens = ckv.sink_tokens + ckv.decode_interval +
                             ckv.cache_depth * session_config.engine.budget;
  scheduler_config.fast_tier_budget_bytes =
      3 * floor_tokens * per_token * session_config.shape.total_heads();
  // The knobs below are the full scheduler surface (docs/SCHEDULING.md):
  // overcommit lets admission reserve past the budget (preemption keeps
  // actual residency under it), chunked prefill bounds how long one
  // admission can stall the running batch.
  scheduler_config.admission_overcommit = 1.5;
  scheduler_config.prefill_chunk_tokens = 128;
  scheduler_config.max_running = 0;  // unlimited; the byte budget gates
  // Cross-chunk cluster repair runs inside the engines by default (the
  // ClusterKVConfig repair_* knobs); the scheduler mirror makes its cost
  // land on the virtual clock at the final prefill chunk.
  scheduler_config.repair_refine_iterations = ckv.repair_refine_iterations;
  scheduler_config.repair_decode_interval = ckv.repair_decode_interval;

  const LatencyModel latency(HardwareModel::ada6000(), ModelConfig::llama31_8b());
  BatchScheduler scheduler(trace, make_clusterkv_factory(ckv, 2025),
                           session_config, latency, scheduler_config);

  // 3. Tick manually to watch the runtime arbitrate. Prefilling sessions
  //    consume one 128-token chunk per tick while decoding sessions keep
  //    producing tokens — no admission stalls the batch for a whole prompt.
  std::cout << "tick  t (ms)    queued  prefilling  decoding  finished  "
            << "fast-tier (KiB / "
            << scheduler_config.fast_tier_budget_bytes / 1024 << " KiB budget)\n";
  while (scheduler.tick()) {
    Index prefilling = 0;
    for (const auto& session : scheduler.running()) {
      prefilling += session->state() == SessionState::kPrefilling ? 1 : 0;
    }
    std::cout << "  " << scheduler.ticks() << "\t" << static_cast<long>(scheduler.now_ms())
              << "\t  " << scheduler.queued_count() << "\t    " << prefilling
              << "\t      " << scheduler.running_count() - prefilling << "\t    "
              << scheduler.finished_count() << "\t    "
              << scheduler.fast_tier_bytes() / 1024 << "\n";
  }

  // 4. Per-session records: every user kept their recall metrics.
  const auto& metrics = scheduler.metrics();
  TextTable table({"session", "prompt", "decode", "wait (ms)", "prefill (ms)",
                   "TTFT (ms)", "ITL (ms)", "preempt", "hit rate", "recall@B"});
  for (const auto& record : metrics.records()) {
    table.add_row({std::to_string(record.id), std::to_string(record.prompt_len),
                   std::to_string(record.decode_len),
                   format_double(record.queue_wait_ms(), 0),
                   format_double(record.prefill_ms(), 0),
                   format_double(record.ttft_ms(), 0),
                   format_double(record.inter_token_ms(), 1),
                   std::to_string(record.preemptions),
                   format_double(record.cache_hit_rate, 2),
                   format_double(record.mean_recall, 3)});
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\nfleet: " << format_double(metrics.throughput_tps(), 1)
            << " tok/s sustained, peak occupancy "
            << metrics.peak_occupancy_bytes() / 1024 << " KiB, "
            << metrics.total_preemptions() << " preemptions\n";
  return 0;
}
