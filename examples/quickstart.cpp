// Quickstart: compress a long context with ClusterKV and watch what the
// selection does.
//
// This example walks the public API end to end:
//   1. generate a long-context attention workload (the procedural model),
//   2. build a ClusterKV engine for one attention head,
//   3. run a few decode steps: select under a budget, inspect recall,
//      attention coverage and cache behaviour.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/clusterkv_engine.hpp"
#include "metrics/metrics.hpp"
#include "model/procedural.hpp"
#include "tensor/rng.hpp"
#include "tensor/softmax.hpp"
#include "tensor/topk.hpp"
#include "util/table.hpp"

using namespace ckv;

int main() {
  // 1. A 16k-token context for one attention head (64 channels). Keys
  //    form semantic clusters, start with attention sinks and carry
  //    outlier channels — the structure ClusterKV exploits.
  const Index context_len = 16384;
  ProceduralParams params;
  params.head_dim = 64;
  HeadStream stream(params, Rng(42), context_len);

  // 2. ClusterKV with the paper's defaults: cosine k-means over post-RoPE
  //    keys, C0 = L/80 clusters, the first 16 tokens always retained,
  //    cluster-granularity cache of depth R = 1.
  ClusterKVConfig config;  // paper defaults
  ClusterKVEngine engine(params.head_dim, config, Rng(7));
  engine.observe_prefill(stream.keys(), stream.values());

  std::cout << "context: " << engine.context_size() << " tokens, clustered into "
            << engine.centroid_store().cluster_count() << " semantic clusters (+ "
            << engine.sink_count() << " sink tokens)\n\n";

  // 3. Decode steps under a 1024-token budget.
  const Index budget = 1024;
  TextTable table({"step", "selected", "recall@B", "attn coverage", "cache hits",
                   "fetched"});
  for (Index step = 0; step < 8; ++step) {
    stream.append_generated();
    const Index last = stream.size() - 1;
    engine.observe_decode(stream.keys().row(last), stream.values().row(last));

    const auto query = stream.query(step);
    const auto selection = engine.select(query, budget);

    // Ground truth for this step: the true top-B tokens by attention weight.
    const auto scores = stream.attention_scores(query);
    const auto truth = top_k_indices(scores, budget);
    auto probabilities = scores;
    softmax_in_place(probabilities);

    table.add_row({std::to_string(step),
                   std::to_string(selection.indices.size()),
                   format_double(recall_of(selection.indices, truth), 3),
                   format_double(attention_mass(probabilities, selection.indices), 3),
                   std::to_string(selection.tokens_cache_hit),
                   std::to_string(selection.tokens_fetched)});
  }
  std::cout << table.to_string() << "\n";

  const auto& cache = engine.cache();
  std::cout << "cluster cache (R=" << cache.depth()
            << ") lifetime hit rate: " << format_double(100.0 * cache.hit_rate(), 1)
            << "%\n";
  std::cout << "KV budget " << budget << " / " << engine.context_size() << " tokens = "
            << format_double(100.0 * static_cast<double>(budget) /
                                 static_cast<double>(engine.context_size()),
                             1)
            << "% of the full cache\n";
  return 0;
}
