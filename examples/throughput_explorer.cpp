// Throughput explorer: interactive-style sweep of the analytic hardware
// model. Shows where decode time goes for each method (weights, KV reads,
// selection, PCIe fetches) and how the ClusterKV speedup scales with
// context length, budget and cache hit rate — the levers behind Fig. 12.
//
// Build & run:  cmake --build build && ./build/examples/throughput_explorer
#include <iostream>

#include "model/model_config.hpp"
#include "sim/latency_model.hpp"
#include "util/table.hpp"

using namespace ckv;

int main() {
  const LatencyModel model(HardwareModel::ada6000(), ModelConfig::llama31_8b());
  const Index context = 32768;

  std::cout << "decode-step cost breakdown, Llama-3.1-8B @ " << context
            << " tokens (ms)\n\n";
  TextTable breakdown({"method", "weights", "kv read", "metadata", "selection",
                       "transfer", "overhead", "total"});
  const auto add = [&breakdown](const std::string& name, const StepBreakdown& b) {
    breakdown.add_row({name, format_double(b.weights_ms, 2),
                       format_double(b.kv_read_ms, 2), format_double(b.metadata_ms, 2),
                       format_double(b.selection_ms + b.sync_ms, 2),
                       format_double(b.transfer_ms, 2), format_double(b.overhead_ms, 2),
                       format_double(b.total_ms(), 2)});
  };
  add("Full KV", model.full_kv_step(context));
  add("ClusterKV (B=1k)", model.clusterkv_step(context, 1024, 0.37, 400));
  add("Quest (B=1k)", model.quest_step(context, 1024));
  add("InfiniGen (B=1k)", model.infinigen_step(context, 1024));
  std::cout << breakdown.to_string() << "\n";

  std::cout << "ClusterKV decode throughput vs cache hit rate (B=1024)\n";
  TextTable cache({"hit rate", "step (ms)", "tokens/s"});
  for (const double hit : {0.0, 0.3, 0.63, 0.74, 0.9}) {
    const auto step = model.clusterkv_step(context, 1024, 1.0 - hit, 400);
    cache.add_row({format_double(100.0 * hit, 0) + "%",
                   format_double(step.total_ms(), 2),
                   format_double(1000.0 / step.total_ms(), 1)});
  }
  std::cout << cache.to_string() << "\n";

  std::cout << "end-to-end speedup vs full KV (D = 512)\n";
  TextTable speedup({"prompt", "B=512", "B=1024", "B=2048"});
  for (const Index p : {8192, 16384, 32768, 65536}) {
    LatencyModel::RunParams full;
    full.method = LatencyModel::Method::kFullKV;
    full.prompt_len = p;
    full.decode_len = 512;
    const double tf = model.run_latency(full).total_ms();
    std::vector<std::string> row{std::to_string(p)};
    for (const Index budget : {512, 1024, 2048}) {
      auto ckv = full;
      ckv.method = LatencyModel::Method::kClusterKV;
      ckv.budget = budget;
      row.push_back(format_double(tf / model.run_latency(ckv).total_ms(), 2) + "x");
    }
    speedup.add_row(std::move(row));
  }
  std::cout << speedup.to_string() << "\n";
  std::cout << "speedup grows with context because full-KV attention reads scale\n"
               "with L while ClusterKV reads stay at the budget.\n";
  return 0;
}
