// Fig. 3a: variation in token importance across decoding steps. The paper
// tracks the attention-weight rankings of tokens 2048 / 3200 / 7168 over
// 64 decode steps at a context length of 8192 and shows they fluctuate —
// the motivation for recallable compression. This bench reproduces the
// trace: it picks one rising, one falling and one fluctuating token and
// prints their rank series, plus summary statistics over all tokens.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "model/procedural.hpp"
#include "tensor/stats.hpp"
#include "tensor/topk.hpp"
#include "util/table.hpp"

namespace {

using namespace ckv;
using namespace ckv::bench;

/// Rank (0 = most important) of every token at one step.
std::vector<Index> ranks_of(const std::vector<float>& scores) {
  const auto order = argsort_descending(scores);
  std::vector<Index> rank(order.size());
  for (std::size_t r = 0; r < order.size(); ++r) {
    rank[static_cast<std::size_t>(order[r])] = static_cast<Index>(r);
  }
  return rank;
}

}  // namespace

int main() {
  print_header("Fig. 3a — token importance dynamics",
               "ClusterKV Fig. 3a (context 8192, 64 decode steps, Llama-3-8B -> "
               "procedural model)");
  Stopwatch watch;

  const Index context = 8192;
  const Index steps = 64;
  ProceduralParams params = sim_params();
  params.focus_drift_prob = 0.25;  // visible importance movement in 64 steps
  HeadStream stream(params, Rng(derive_seed(2025, "fig3a")), context);

  // Rank series for every token, sampled per decode step.
  std::vector<std::vector<Index>> rank_series(static_cast<std::size_t>(steps));
  for (Index s = 0; s < steps; ++s) {
    const auto q = stream.query(s);
    rank_series[static_cast<std::size_t>(s)] = ranks_of(stream.attention_scores(q));
  }

  // Find archetypal tokens as in the paper: one that starts unimportant
  // and becomes crucial (paper's token 3200), the reverse (token 2048),
  // and a fluctuating one (token 7168).
  const Index early = steps / 4;
  const Index late = steps - 1;
  Index rising = -1;
  Index falling = -1;
  Index fluctuating = -1;
  double best_rise = 0.0;
  double best_fall = 0.0;
  double best_var = 0.0;
  for (Index t = 64; t < context; ++t) {
    const double r_early =
        static_cast<double>(rank_series[static_cast<std::size_t>(early)]
                                       [static_cast<std::size_t>(t)]);
    const double r_late = static_cast<double>(
        rank_series[static_cast<std::size_t>(late)][static_cast<std::size_t>(t)]);
    const double rise = r_early - r_late;
    if (rise > best_rise) {
      best_rise = rise;
      rising = t;
    }
    if (-rise > best_fall) {
      best_fall = -rise;
      falling = t;
    }
    RunningStat var;
    for (Index s = 0; s < steps; s += 4) {
      var.add(static_cast<double>(
          rank_series[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)]));
    }
    if (var.stddev() > best_var && var.mean() < 4000.0) {
      best_var = var.stddev();
      fluctuating = t;
    }
  }

  TextTable table({"step", "token " + std::to_string(falling) + " (falls)",
                   "token " + std::to_string(rising) + " (rises)",
                   "token " + std::to_string(fluctuating) + " (fluctuates)"});
  for (Index s = 0; s < steps; s += 4) {
    const auto& ranks = rank_series[static_cast<std::size_t>(s)];
    table.add_row({std::to_string(s),
                   std::to_string(ranks[static_cast<std::size_t>(falling)]),
                   std::to_string(ranks[static_cast<std::size_t>(rising)]),
                   std::to_string(ranks[static_cast<std::size_t>(fluctuating)])});
  }
  std::cout << table.to_string() << "\n";

  // Aggregate evidence of dynamics: how much does the top-256 set move?
  RunningStat turnover;
  std::vector<float> dummy;
  for (Index s = 1; s < steps; ++s) {
    Index moved = 0;
    for (Index t = 0; t < context; ++t) {
      const bool in_prev =
          rank_series[static_cast<std::size_t>(s - 1)][static_cast<std::size_t>(t)] <
          256;
      const bool in_cur =
          rank_series[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)] < 256;
      if (in_prev != in_cur) {
        ++moved;
      }
    }
    turnover.add(static_cast<double>(moved) / 2.0);
  }
  std::cout << "top-256 set turnover per step: mean " << format_double(turnover.mean(), 1)
            << " tokens (max " << format_double(turnover.max(), 0) << ")\n";
  std::cout << "=> token importance changes dynamically during decoding; "
               "non-recallable eviction cannot track it (paper §II-C)\n";
  std::cout << "\n[fig3a done in " << format_double(watch.seconds(), 1) << "s]\n";
  return 0;
}
