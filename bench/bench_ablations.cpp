// Design-choice ablations called out in DESIGN.md §4 (beyond the paper's
// printed tables, but each grounded in a claim the paper makes):
//   (1) recallable vs non-recallable compression (Fig. 1b motivation,
//       §II-C): ClusterKV vs H2O and StreamingLLM on drifting-importance
//       workloads;
//   (2) attention-sink retention on/off (§III-B keeps the first 16 tokens);
//   (3) the decode-side clustering schedule m / C+ (§III-B sets 320 / 4).
#include <iostream>

#include "baselines/h2o.hpp"
#include "baselines/streaming_llm.hpp"
#include "bench_common.hpp"
#include "model/decode_engine.hpp"
#include "sim/latency_model.hpp"
#include "tensor/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ckv;
using namespace ckv::bench;

struct RunStats {
  double recall = 0.0;
  double coverage = 0.0;
};

RunStats run_method(const SelectorFactory& factory, Index budget, Index steps,
                    bool attention_feedback, Index prompt_len = 8192) {
  SimShape shape = recall_shape();
  ProceduralContextModel model(shape, sim_params(), derive_seed(77, "ablation"),
                               prompt_len);
  DecodeEngineConfig config;
  config.budget = budget;
  config.full_attention_layers = 0;
  config.attention_feedback = attention_feedback;
  DecodeEngine engine(model, factory, config);
  engine.run_prefill();
  for (Index s = 0; s < steps; ++s) {
    engine.decode_step(s);
  }
  return {engine.mean_recall(), engine.mean_coverage()};
}

}  // namespace

int main() {
  print_header("Ablations — recallability, sinks, decode clustering schedule",
               "ClusterKV §II-C (Fig. 1b), §III-B design choices");
  std::cout << std::unitbuf;  // progress lines appear as they happen
  Stopwatch watch;
  const Index budget = 1024;
  const Index steps = 48;

  // ---- (1) recallable vs non-recallable ----
  std::cout << "(1) recallable vs non-recallable (L=8k, budget " << budget
            << ", 48 drifting decode steps)\n";
  TextTable rec({"method", "recallable", "recall@B", "attn coverage"});
  {
    const auto ckv_stats =
        run_method(make_clusterkv_factory(paper_clusterkv(), 9), budget, steps, false);
    rec.add_row({"ClusterKV", "yes", format_double(ckv_stats.recall, 3),
                 format_double(ckv_stats.coverage, 3)});
    H2OConfig h2o;
    h2o.budget = budget;
    const auto h2o_stats = run_method(make_h2o_factory(h2o), budget, steps, true);
    rec.add_row({"H2O", "no", format_double(h2o_stats.recall, 3),
                 format_double(h2o_stats.coverage, 3)});
    StreamingLLMConfig window;
    const auto window_stats =
        run_method(make_streaming_llm_factory(window), budget, steps, false);
    rec.add_row({"StreamingLLM", "no", format_double(window_stats.recall, 3),
                 format_double(window_stats.coverage, 3)});
  }
  std::cout << rec.to_string();
  std::cout << "once H2O/StreamingLLM evict a token it can never return, so "
               "drifting importance (Fig. 3a) escapes them.\n\n";

  // ---- (2) sink retention ----
  std::cout << "(2) attention-sink retention (first 16 tokens, §III-B)\n";
  TextTable sinks({"sinks retained", "recall@B", "attn coverage"});
  for (const Index sink_tokens : {0, 16}) {
    auto config = paper_clusterkv();
    config.sink_tokens = sink_tokens;
    const auto stats =
        run_method(make_clusterkv_factory(config, 10), budget, steps, false);
    sinks.add_row({sink_tokens == 0 ? "no (clustered)" : "yes (16 kept)",
                   format_double(stats.recall, 3), format_double(stats.coverage, 3)});
  }
  std::cout << sinks.to_string();
  std::cout << "retaining sinks trades a little recall budget for their steady "
               "attention mass (coverage); with few intrinsic sink tokens the "
               "effect is small but consistently positive on coverage.\n\n";

  // ---- (3) decode clustering schedule ----
  std::cout << "(3) decode-side clustering schedule (m, C+) over 640 decode steps\n";
  TextTable schedule({"m (interval)", "C+ (clusters)", "recall@B", "coverage",
                      "clustering MACs"});
  for (const auto& [m, cplus] : std::vector<std::pair<Index, Index>>{
           {80, 1}, {160, 2}, {320, 4}, {640, 8}}) {
    auto config = paper_clusterkv();
    config.decode_interval = m;
    config.decode_clusters = cplus;
    SimShape shape = recall_shape();
    ProceduralContextModel model(shape, sim_params(), derive_seed(78, "sched"), 4096);
    DecodeEngineConfig engine_config;
    engine_config.budget = budget;
    engine_config.full_attention_layers = 0;
    DecodeEngine engine(model, make_clusterkv_factory(config, 11), engine_config);
    engine.run_prefill();
    for (Index s = 0; s < 640; ++s) {
      engine.decode_step(s);
    }
    std::int64_t clustering_macs = 0;
    for (Index h = 0; h < shape.num_heads; ++h) {
      const auto& selector = engine.selectors().at(0, h);
      clustering_macs +=
          dynamic_cast<const ClusterKVEngine&>(selector).clustering_flops();
    }
    schedule.add_row({std::to_string(m), std::to_string(cplus),
                      format_double(engine.mean_recall(), 3),
                      format_double(engine.mean_coverage(), 3),
                      std::to_string(clustering_macs)});
  }
  std::cout << schedule.to_string();
  std::cout << "accuracy is robust across schedules at equal tokens-per-cluster "
               "(m/C+ = 80): the paper's m=320, C+=4 batches the work so the "
               "per-step clustering launch overhead is amortized 4x vs m=80.\n\n";

  // ---- (4) GQA group size ----
  std::cout << "(4) GQA: query heads sharing one KV-head selection "
               "(Llama-3.1-8B uses groups of 4)\n";
  TextTable gqa({"group size", "recall@B", "attn coverage"});
  for (const Index group : {1, 2, 4, 8}) {
    SimShape shape = recall_shape();
    shape.queries_per_kv = group;
    ProceduralParams params = sim_params();
    params.queries_per_kv = group;
    ProceduralContextModel model(shape, params, derive_seed(79, "gqa"), 8192);
    DecodeEngineConfig engine_config;
    engine_config.budget = budget;
    engine_config.full_attention_layers = 0;
    DecodeEngine engine(model, make_clusterkv_factory(paper_clusterkv(), 12),
                        engine_config);
    engine.run_prefill();
    for (Index s = 0; s < 24; ++s) {
      engine.decode_step(s);
    }
    gqa.add_row({std::to_string(group),
                 format_double(engine.mean_recall(), 3),
                 format_double(engine.mean_coverage(), 3)});
  }
  std::cout << gqa.to_string();
  std::cout << "a selection shared by more query heads fits each one slightly "
               "less well; the degradation is graceful, which is why per-KV-head "
               "selection works under GQA.\n\n";

  // ---- (5) k-means initialization ----
  std::cout << "(5) k-means initialization: random key sampling (paper) vs "
               "k-means++\n";
  TextTable init({"init", "recall@B", "attn coverage"});
  for (const auto kind : {KMeansInit::kRandomSample, KMeansInit::kPlusPlus}) {
    auto config = paper_clusterkv();
    config.kmeans_init = kind;
    const auto stats =
        run_method(make_clusterkv_factory(config, 13), budget, steps, false);
    init.add_row({kind == KMeansInit::kRandomSample ? "random keys (paper)"
                                                    : "k-means++",
                  format_double(stats.recall, 3), format_double(stats.coverage, 3)});
  }
  std::cout << init.to_string();
  std::cout << "random key seeding is competitive at C0 = L/80 (many clusters "
               "over clusterable data), justifying the paper's cheap choice; "
               "k-means++ costs an extra O(C L d) seeding pass.\n\n";

  // ---- (6) quantized cache-miss transfers (cost model) ----
  std::cout << "(6) int8-quantized PCIe fetches for cluster-cache misses "
               "(KIVI-style per-channel quantization; cost model)\n";
  const LatencyModel latency(HardwareModel::ada6000(), ModelConfig::llama31_8b());
  TextTable quant({"transfer width", "decode step (ms)", "transfer (ms)"});
  for (const Index width : {2, 1}) {
    const auto step = latency.clusterkv_step(32768, 1024, 0.37, 400, width);
    quant.add_row({width == 2 ? "fp16 (2 B)" : "int8 (1 B)",
                   format_double(step.total_ms(), 2),
                   format_double(step.transfer_ms, 2)});
  }
  std::cout << quant.to_string();
  std::cout << "quantizing fetches halves the miss penalty; "
               "kvcache/quantization bounds the score error (see tests).\n";
  std::cout << "\n[ablations done in " << format_double(watch.seconds(), 1) << "s]\n";
  return 0;
}
