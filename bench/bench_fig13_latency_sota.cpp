// Fig. 13: latency against the SoTA recallable-compression systems.
// (a) ClusterKV vs InfiniGen on OPT-6.7B (FlexGen-style substrate, budget
//     256, P = 2k, D in {128, 256}): the paper measures a 2.3x average
//     speedup, with InfiniGen roughly at full-KV latency.
// (b) ClusterKV vs Quest on Llama-3.1-8B (budget 1k, P in {8k,16k,32k},
//     D in {256, 512}): latencies within ~5%.
#include <iostream>

#include "bench_common.hpp"
#include "sim/latency_model.hpp"
#include "tensor/stats.hpp"
#include "util/table.hpp"

namespace {
using namespace ckv;
using namespace ckv::bench;
}  // namespace

int main() {
  print_header("Fig. 13 — latency vs SoTA recallable compression",
               "ClusterKV Fig. 13a (OPT-6.7B vs InfiniGen) and Fig. 13b "
               "(Llama-3.1-8B vs Quest)");
  Stopwatch watch;

  // ---- (a) vs InfiniGen on OPT-6.7B ----
  std::cout << "(a) vs InfiniGen, OPT-6.7B, P=2k, budget 256\n";
  const LatencyModel opt(HardwareModel::ada6000(), ModelConfig::opt_6_7b());
  TextTable a({"D", "InfiniGen (Full) (s)", "InfiniGen (s)", "ClusterKV (s)",
               "speedup vs InfiniGen"});
  RunningStat speedups;
  for (const Index d : {128, 256}) {
    LatencyModel::RunParams base;
    base.prompt_len = 2048;
    base.decode_len = d;
    base.budget = 256;

    auto full = base;
    full.method = LatencyModel::Method::kFullKVOffload;
    auto infinigen = base;
    infinigen.method = LatencyModel::Method::kInfiniGen;
    auto ckv = base;
    ckv.method = LatencyModel::Method::kClusterKV;

    const double tf = opt.run_latency(full).total_ms();
    const double ti = opt.run_latency(infinigen).total_ms();
    const double tc = opt.run_latency(ckv).total_ms();
    speedups.add(ti / tc);
    a.add_row({std::to_string(d), format_double(tf / 1000.0, 1),
               format_double(ti / 1000.0, 1), format_double(tc / 1000.0, 1),
               format_double(ti / tc, 2) + "x"});
  }
  std::cout << a.to_string();
  std::cout << "average speedup vs InfiniGen: " << format_double(speedups.mean(), 2)
            << "x (paper: 2.3x); InfiniGen tracks its full-KV baseline\n\n";

  // ---- (b) vs Quest on Llama-3.1-8B ----
  std::cout << "(b) vs Quest, Llama-3.1-8B, budget 1k\n";
  const LatencyModel llama(HardwareModel::ada6000(), ModelConfig::llama31_8b());
  TextTable b({"P", "D", "Quest (s)", "ClusterKV (s)", "deviation"});
  RunningStat deviations;
  for (const Index p : {8192, 16384, 32768}) {
    for (const Index d : {256, 512}) {
      LatencyModel::RunParams quest;
      quest.method = LatencyModel::Method::kQuest;
      quest.prompt_len = p;
      quest.decode_len = d;
      quest.budget = 1024;
      auto ckv = quest;
      ckv.method = LatencyModel::Method::kClusterKV;

      const double tq = llama.run_latency(quest).total_ms();
      const double tc = llama.run_latency(ckv).total_ms();
      deviations.add(std::abs(tc - tq) / tq);
      b.add_row({std::to_string(p), std::to_string(d), format_double(tq / 1000.0, 1),
                 format_double(tc / 1000.0, 1),
                 format_double(100.0 * (tc - tq) / tq, 1) + "%"});
    }
  }
  std::cout << b.to_string();
  std::cout << "max |deviation| vs Quest: " << format_double(100.0 * deviations.max(), 1)
            << "% (paper: up to 5%), with significantly higher accuracy (Fig. 9)\n";
  std::cout << "\n[fig13 done in " << format_double(watch.seconds(), 1) << "s]\n";
  return 0;
}
