// Fig. 12: end-to-end inference latency of ClusterKV vs the full KV cache
// on Llama-3.1-8B shapes (P in {8k,16k,32k}, D in {256,512,1024}, budgets
// {512,1024,2048}), plus the prefill share, the clustering overhead and
// the decode-throughput improvement. Latencies come from the analytic
// hardware model (DESIGN.md §2); the ClusterKV cache miss rate is the
// measured default from the pipeline simulation (see bench_cache_hit_rate).
#include <iostream>

#include "bench_common.hpp"
#include "sim/latency_model.hpp"
#include "util/table.hpp"

namespace {
using namespace ckv;
using namespace ckv::bench;
}  // namespace

int main() {
  print_header("Fig. 12 — latency: ClusterKV vs full KV cache",
               "ClusterKV Fig. 12 (Llama-3.1-8B, NVIDIA Ada 6000 model)");
  Stopwatch watch;

  const LatencyModel model(HardwareModel::ada6000(), ModelConfig::llama31_8b());
  // R=1 cache miss rate: the paper's measured 37% (63% hits, §V-C). Our
  // own pipeline measures ~27% (bench_cache_hit_rate); using it instead
  // changes the totals by under 2%.
  const double miss_rate = 0.37;

  TextTable table({"P", "D", "Full KV (s)", "B=512 (s)", "B=1024 (s)", "B=2048 (s)",
                   "speedup@1024", "prefill (s)"});
  for (const Index p : {8192, 16384, 32768}) {
    for (const Index d : {256, 512, 1024}) {
      LatencyModel::RunParams full;
      full.method = LatencyModel::Method::kFullKV;
      full.prompt_len = p;
      full.decode_len = d;
      const auto full_run = model.run_latency(full);

      std::vector<double> budget_totals;
      double ckv_1024 = 0.0;
      double ckv_prefill = 0.0;
      for (const Index budget : {512, 1024, 2048}) {
        auto ckv = full;
        ckv.method = LatencyModel::Method::kClusterKV;
        ckv.budget = budget;
        ckv.clusterkv_miss_rate = miss_rate;
        const auto run = model.run_latency(ckv);
        budget_totals.push_back(run.total_ms() / 1000.0);
        if (budget == 1024) {
          ckv_1024 = run.total_ms();
          ckv_prefill = run.prefill_ms;
        }
      }
      table.add_row({std::to_string(p), std::to_string(d),
                     format_double(full_run.total_ms() / 1000.0, 1),
                     format_double(budget_totals[0], 1),
                     format_double(budget_totals[1], 1),
                     format_double(budget_totals[2], 1),
                     format_double(full_run.total_ms() / ckv_1024, 2) + "x",
                     format_double(ckv_prefill / 1000.0, 1)});
    }
  }
  std::cout << table.to_string() << "\n";

  // Decode throughput and clustering-overhead headlines.
  LatencyModel::RunParams full;
  full.method = LatencyModel::Method::kFullKV;
  full.prompt_len = 32768;
  full.decode_len = 1024;
  auto ckv = full;
  ckv.method = LatencyModel::Method::kClusterKV;
  ckv.budget = 512;
  const auto full_run = model.run_latency(full);
  const auto ckv_run = model.run_latency(ckv);
  std::cout << "decode throughput (P=32k, D=1024): Full KV "
            << format_double(full_run.decode_throughput_tps(1024), 1) << " tok/s vs "
            << "ClusterKV(B=512) "
            << format_double(ckv_run.decode_throughput_tps(1024), 1) << " tok/s ("
            << format_double(ckv_run.decode_throughput_tps(1024) /
                                 full_run.decode_throughput_tps(1024),
                             2)
            << "x; paper: up to 2.5x)\n";

  for (const Index p : {8192, 16384, 32768}) {
    const double prefill = model.prefill_ms(p);
    const double clustering = model.clustering_visible_overhead_ms(p);
    std::cout << "clustering overhead at P=" << p << ": "
              << format_double(100.0 * clustering / (prefill + clustering), 1)
              << "% of prefill (paper: 6-8%)\n";
  }
  std::cout << "\n[fig12 done in " << format_double(watch.seconds(), 1) << "s]\n";
  return 0;
}
