// Fig. 9 + Table I: LongBench scores of Quest / InfiniGen / ClusterKV /
// Full KV under budgets 256..2048 across the eight synthetic tasks, and
// the average-score table. Scores are anchored so Full KV reproduces the
// paper's per-task level; the method/budget structure is measured from the
// actual selection pipelines (see DESIGN.md §2 for the substitution).
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "tensor/stats.hpp"
#include "util/table.hpp"
#include "workload/longbench.hpp"

namespace {
using namespace ckv;
using namespace ckv::bench;
}  // namespace

int main() {
  print_header("Fig. 9 / Table I — LongBench scores vs KV cache budget",
               "ClusterKV Fig. 9 and Table I (8 tasks, budgets 256-2048, "
               "GLM4-9B -> procedural model)");
  std::cout << std::unitbuf;  // progress lines appear as they happen
  Stopwatch watch;

  const std::vector<Index> budgets{256, 512, 1024, 2048};
  const auto tasks = longbench_suite();
  const std::uint64_t seed = 2025;

  TaskRunOptions options;
  options.shape = accuracy_shape();
  options.params = sim_params();
  options.full_attention_layers = 1;  // paper disables selection on early layers
  options.seed = seed;

  // method -> budget -> average score.
  std::map<std::string, std::map<Index, RunningStat>> averages;

  for (const auto& task : tasks) {
    TextTable table({"method", "B=256", "B=512", "B=1024", "B=2048"});
    for (const auto& method : accuracy_methods(seed)) {
      std::vector<std::string> row{method.name};
      for (const Index budget : budgets) {
        options.budget = budget;
        const auto result = run_longbench_task(task, method.factory, options);
        row.push_back(format_double(result.score, 2));
        averages[method.name][budget].add(result.score);
      }
      table.add_row(std::move(row));
    }
    std::cout << task.name << " (" << task.metric << ", L=" << task.context_len
              << "):\n"
              << table.to_string() << "\n";
  }

  std::cout << "Table I: average scores on the eight tasks\n";
  TextTable avg({"method", "256", "512", "1024", "2048"});
  for (const auto& method : accuracy_methods(seed)) {
    std::vector<std::string> row{method.name};
    for (const Index budget : budgets) {
      row.push_back(format_double(averages[method.name][budget].mean(), 2));
    }
    avg.add_row(std::move(row));
  }
  std::cout << avg.to_string() << "\n";
  std::cout << "paper Table I: Quest 35.63/40.83/43.23/45.59, "
               "InfiniGen 43.69/45.04/45.13/45.14,\n"
               "               ClusterKV 46.69/48.02/48.34/48.70, Full KV 49.01\n";
  std::cout << "\n[fig9 done in " << format_double(watch.seconds(), 1) << "s]\n";
  return 0;
}
