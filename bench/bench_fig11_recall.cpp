// Fig. 11: recall rate of important tokens on a 32k-token NarrativeQA-like
// sample. (a) compares methods across budgets 256..2048 (step 256);
// (b) ablates ClusterKV's clustering distance metric (cosine vs L2 vs
// inner product) and the cluster count C0 (200..800). Recall is averaged
// across heads and decode steps exactly as in §V-B.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/distance.hpp"
#include "metrics/metrics.hpp"
#include "model/selector_bank.hpp"
#include "tensor/stats.hpp"
#include "tensor/topk.hpp"
#include "util/table.hpp"

namespace {

using namespace ckv;
using namespace ckv::bench;

constexpr Index kContext = 32768;
constexpr Index kSteps = 32;
constexpr std::uint64_t kSeed = 2025;

/// Mean recall across heads and steps for one selector configuration.
/// Queries and true scores are shared across all configurations through
/// the same procedural sample (fresh model per run keeps streams aligned
/// because generation is seed-deterministic).
std::map<Index, double> measure_recall(const SelectorFactory& factory,
                                       const std::vector<Index>& budgets) {
  const auto shape = recall_shape();
  ProceduralContextModel model(shape, sim_params(), derive_seed(kSeed, "fig11"),
                               kContext);
  SelectorBank bank(shape.num_layers, shape.num_heads, shape.head_dim, factory);
  for (Index h = 0; h < shape.num_heads; ++h) {
    const auto& stream = model.head(0, h);
    bank.at(0, h).observe_prefill(stream.keys(), stream.values());
  }

  std::map<Index, RunningStat> recall;
  for (Index s = 0; s < kSteps; ++s) {
    model.append_generated();
    for (Index h = 0; h < shape.num_heads; ++h) {
      const auto& stream = model.head(0, h);
      const Index last = stream.size() - 1;
      bank.at(0, h).observe_decode(stream.keys().row(last), stream.values().row(last));
    }
    for (Index h = 0; h < shape.num_heads; ++h) {
      auto& stream = model.head(0, h);
      const auto q = stream.query(s);
      const auto scores = stream.attention_scores(q);
      for (const Index budget : budgets) {
        const auto truth = top_k_indices(scores, budget);
        const auto sel = bank.at(0, h).select(q, budget);
        recall[budget].add(recall_of(sel.indices, truth));
      }
    }
  }
  std::map<Index, double> out;
  for (const auto& [budget, stat] : recall) {
    out[budget] = stat.mean();
  }
  return out;
}

}  // namespace

int main() {
  print_header("Fig. 11 — recall rate of important tokens",
               "ClusterKV Fig. 11a/b (32k NarrativeQA-like sample, budgets "
               "256..2048)");
  std::cout << std::unitbuf;  // progress lines appear as they happen
  Stopwatch watch;

  std::vector<Index> budgets;
  for (Index b = 256; b <= 2048; b += 256) {
    budgets.push_back(b);
  }

  // ---- (a) method comparison ----
  std::cout << "(a) methods\n";
  TextTable methods_table({"budget", "Quest", "InfiniGen", "ClusterKV"});
  std::map<std::string, std::map<Index, double>> method_recall;
  for (const auto& method : accuracy_methods(kSeed)) {
    if (method.name == "Full KV") {
      continue;  // recall is trivially 1
    }
    Stopwatch m;
    method_recall[method.name] = measure_recall(method.factory, budgets);
    std::cout << "[" << method.name << " measured in " << format_double(m.seconds(), 1)
              << "s]\n";
  }
  for (const Index b : budgets) {
    methods_table.add_row({std::to_string(b),
                           format_double(method_recall["Quest"][b], 3),
                           format_double(method_recall["InfiniGen"][b], 3),
                           format_double(method_recall["ClusterKV"][b], 3)});
  }
  std::cout << "\n" << methods_table.to_string() << "\n";

  // ---- (b) ablations: clustering distance metric ----
  std::cout << "(b1) clustering distance metric (C0 = L/80)\n";
  TextTable metric_table({"budget", "cosine", "L2", "inner-product"});
  std::map<std::string, std::map<Index, double>> metric_recall;
  for (const auto metric : {DistanceMetric::kCosine, DistanceMetric::kL2,
                            DistanceMetric::kInnerProduct}) {
    auto config = paper_clusterkv();
    config.cluster_metric = metric;
    metric_recall[to_string(metric)] =
        measure_recall(make_clusterkv_factory(config, kSeed), budgets);
  }
  for (const Index b : budgets) {
    metric_table.add_row({std::to_string(b),
                          format_double(metric_recall["cosine"][b], 3),
                          format_double(metric_recall["L2"][b], 3),
                          format_double(metric_recall["inner-product"][b], 3)});
  }
  std::cout << metric_table.to_string() << "\n";

  // ---- (b) ablations: number of clusters C0 ----
  std::cout << "(b2) cluster count C0 (cosine metric)\n";
  TextTable c0_table({"budget", "C0=200", "C0=400", "C0=600", "C0=800"});
  std::map<Index, std::map<Index, double>> c0_recall;
  for (const Index c0 : {200, 400, 600, 800}) {
    auto config = paper_clusterkv();
    config.fixed_cluster_count = c0;
    c0_recall[c0] = measure_recall(make_clusterkv_factory(config, kSeed), budgets);
  }
  for (const Index b : budgets) {
    c0_table.add_row({std::to_string(b), format_double(c0_recall[200][b], 3),
                      format_double(c0_recall[400][b], 3),
                      format_double(c0_recall[600][b], 3),
                      format_double(c0_recall[800][b], 3)});
  }
  std::cout << c0_table.to_string() << "\n";
  std::cout << "paper: ClusterKV > InfiniGen/Quest at all budgets; cosine beats "
               "L2 and inner product;\n"
               "       C0 > 400 brings diminishing returns (hence C0 = L/80)\n";
  std::cout << "\n[fig11 done in " << format_double(watch.seconds(), 1) << "s]\n";
  return 0;
}
