// Fig. 3b: internal fragmentation of important tokens at page granularity.
// The paper shows that with page size 16 each page holds only one or two
// important tokens, so page-granularity recall wastes budget. This bench
// reproduces the analysis on the procedural model: positions of the most
// important tokens with their page ids (the paper's panel), the histogram
// of important-tokens-per-page, and the waste factor.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/fragmentation.hpp"
#include "model/procedural.hpp"
#include "tensor/stats.hpp"
#include "tensor/topk.hpp"
#include "util/table.hpp"

namespace {
using namespace ckv;
using namespace ckv::bench;
}  // namespace

int main() {
  print_header("Fig. 3b — page-granularity fragmentation of important tokens",
               "ClusterKV Fig. 3b (context 8192, page size 16)");
  Stopwatch watch;

  const Index context = 8192;
  const Index page_size = 16;
  const Index top_k = 64;
  ProceduralParams params = sim_params();
  HeadStream stream(params, Rng(derive_seed(2025, "fig3b")), context);

  // Paper panel: important token positions and the pages they land in.
  const auto q = stream.query(0);
  const auto scores = stream.attention_scores(q);
  const auto important = top_k_indices(scores, top_k);
  auto sorted_important = important;
  std::sort(sorted_important.begin(), sorted_important.end());

  TextTable positions({"token position", "page"});
  for (std::size_t i = 0; i < 12 && i < sorted_important.size(); ++i) {
    const Index t = sorted_important[sorted_important.size() - 12 + i];
    positions.add_row({std::to_string(t), "page " + std::to_string(t / page_size)});
  }
  std::cout << "highest important token positions (cf. paper's panel):\n"
            << positions.to_string() << "\n";

  // Aggregate over decode steps.
  RunningStat per_page;
  RunningStat waste;
  std::vector<Index> histogram(static_cast<std::size_t>(page_size), 0);
  const Index steps = 32;
  for (Index s = 0; s < steps; ++s) {
    const auto qs = stream.query(s);
    const auto step_scores = stream.attention_scores(qs);
    const auto report = analyze_page_fragmentation(step_scores, top_k, page_size);
    per_page.add(report.mean_per_page);
    waste.add(static_cast<double>(report.tokens_wasted) /
              static_cast<double>(report.tokens_loaded));
    for (std::size_t b = 0; b < report.histogram.size(); ++b) {
      histogram[b] += report.histogram[b];
    }
  }

  TextTable hist({"important tokens in page", "pages (all steps)"});
  for (std::size_t b = 0; b < histogram.size(); ++b) {
    if (histogram[b] > 0) {
      hist.add_row({std::to_string(b + 1), std::to_string(histogram[b])});
    }
  }
  std::cout << hist.to_string() << "\n";
  std::cout << "mean important tokens per touched page: "
            << format_double(per_page.mean(), 2) << " (paper: 1-2 per page of 16)\n";
  std::cout << "budget wasted on page co-residents: "
            << format_double(100.0 * waste.mean(), 1) << "%\n";
  std::cout << "\n[fig3b done in " << format_double(watch.seconds(), 1) << "s]\n";
  return 0;
}
