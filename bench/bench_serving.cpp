// Multi-session serving bench: sustained decode throughput and latency
// percentiles vs. offered load, ClusterKV against the full-KV and Quest
// baselines under one shared fast-tier (HBM) byte budget.
//
// This is where recallable compression pays off beyond single-sequence
// latency (Fig. 12/13): a ClusterKV session only pins its sinks, pending
// tokens and the cluster-cache window in HBM, so the same budget admits
// several times more concurrent sessions, which amortizes the dominant
// weight-streaming cost of every decode tick. Full KV and Quest pin the
// whole context and queue instead.
//
// The "ClusterKV (inline)" row re-runs the same method with whole-prompt
// prefill per admission tick (prefill_chunk_tokens = 0) to isolate what
// chunked prefill buys: p95 TTFT of queued sessions drops at equal
// throughput because nobody waits out a full foreign prompt anymore (see
// docs/SCHEDULING.md).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/full_kv.hpp"
#include "baselines/quest.hpp"
#include "bench_common.hpp"
#include "core/clusterkv_engine.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/trace.hpp"
#include "sim/latency_model.hpp"
#include "util/table.hpp"

namespace {

using namespace ckv;

struct ServingSetup {
  SessionConfig session;
  ClusterKVConfig clusterkv;
  TraceConfig trace;
  std::int64_t fast_budget_bytes = 0;
  std::uint64_t seed = 2025;
};

ServingSetup make_setup() {
  ServingSetup setup;
  setup.session.shape.num_layers = 1;
  setup.session.shape.num_heads = 2;
  setup.session.shape.head_dim = 64;
  setup.session.params.head_dim = 64;
  setup.session.engine.budget = 128;
  setup.session.engine.full_attention_layers = 0;

  setup.clusterkv = bench::paper_clusterkv();
  setup.clusterkv.decode_interval = 32;  // serving decodes are short; keep
  setup.clusterkv.decode_clusters = 2;   // the pending buffer proportionate
  setup.clusterkv.tokens_per_cluster = 20;  // L/80 is too coarse at ~1k tokens

  // Long-prompt mix: uniform 150..1800 gives every trace a blend of
  // interactive short requests and long-document admissions — the regime
  // where inline prefill makes short sessions pay for long ones.
  setup.trace.num_requests = 16;
  setup.trace.prompt_len_min = 150;
  setup.trace.prompt_len_max = 1800;
  setup.trace.decode_len_min = 16;
  setup.trace.decode_len_max = 32;

  // Global HBM budget: ~2.5 mean full contexts. Full KV can overlap two or
  // three sessions; the ClusterKV working set (sinks + pending + cache
  // window) is ~6x smaller, so it batches most of the fleet.
  const Index mean_context =
      (setup.trace.prompt_len_min + setup.trace.prompt_len_max) / 2 +
      (setup.trace.decode_len_min + setup.trace.decode_len_max) / 2;
  const Index per_token = session_token_bytes(setup.session);
  setup.fast_budget_bytes = static_cast<std::int64_t>(
      2.2 * static_cast<double>(mean_context * per_token *
                                setup.session.shape.total_heads()));
  return setup;
}

struct MethodRun {
  std::string name;
  SelectorFactory factory;
  BatchSchedulerConfig scheduler;
};

std::vector<MethodRun> serving_methods(const ServingSetup& setup) {
  std::vector<MethodRun> methods;

  BatchSchedulerConfig ckv_config;
  ckv_config.method = LatencyModel::Method::kClusterKV;
  ckv_config.tiered_residency = true;
  ckv_config.sink_tokens = setup.clusterkv.sink_tokens;
  ckv_config.decode_interval = setup.clusterkv.decode_interval;
  ckv_config.cache_depth = setup.clusterkv.cache_depth;
  ckv_config.tokens_per_cluster = setup.clusterkv.tokens_per_cluster;
  ckv_config.admission_overcommit = 1.5;
  ckv_config.fast_tier_budget_bytes = setup.fast_budget_bytes;
  ckv_config.prefill_chunk_tokens = 256;  // ~3-7 chunks per long prompt
  methods.push_back({"ClusterKV",
                     make_clusterkv_factory(setup.clusterkv, setup.seed),
                     ckv_config});

  // Same method, inline (whole-prompt-per-tick) prefill: isolates what
  // chunking buys — queued/running sessions stop paying a full foreign
  // prefill per admission, so tail TTFT drops at equal throughput.
  BatchSchedulerConfig inline_config = ckv_config;
  inline_config.prefill_chunk_tokens = 0;
  methods.push_back({"ClusterKV (inline)",
                     make_clusterkv_factory(setup.clusterkv, setup.seed),
                     inline_config});

  BatchSchedulerConfig quest_config;
  quest_config.method = LatencyModel::Method::kQuest;
  quest_config.fast_tier_budget_bytes = setup.fast_budget_bytes;
  methods.push_back({"Quest", make_quest_factory(bench::paper_quest()), quest_config});

  BatchSchedulerConfig full_config;
  full_config.method = LatencyModel::Method::kFullKV;
  full_config.fast_tier_budget_bytes = setup.fast_budget_bytes;
  methods.push_back({"Full KV", make_full_kv_factory(), full_config});
  return methods;
}

/// p95 TTFT over the interactive class (prompt <= threshold): the
/// sessions that queue behind long admissions and whose first token
/// chunked prefill is supposed to protect.
double short_session_ttft_p95(const ServeMetrics& metrics, Index threshold) {
  std::vector<double> values;
  for (const auto& record : metrics.records()) {
    if (record.prompt_len <= threshold) {
      values.push_back(record.ttft_ms());
    }
  }
  return values.empty() ? 0.0 : percentile(values, 95.0);
}

}  // namespace

int main() {
  bench::print_header("Serving: throughput & latency vs offered load",
                      "multi-tenant extension of Fig. 12/13 (§V-C) under a "
                      "shared fast-tier budget");

  const auto setup = make_setup();
  std::cout << "sessions: " << setup.trace.num_requests
            << ", fast-tier budget: " << setup.fast_budget_bytes / 1024
            << " KiB (slice scale), per-session KV budget: "
            << setup.session.engine.budget << " tokens\n\n";

  TextTable table({"method", "load (req/s)", "tok/s", "max batch", "p50 TTFT (s)",
                   "p95 TTFT (s)", "p95 TTFT short (s)", "p50 ITL (ms)",
                   "p95 ITL (ms)", "queue wait (s)", "preempt", "hit rate",
                   "recall@B"});
  const LatencyModel latency(HardwareModel::ada6000(), ModelConfig::llama31_8b());

  for (const double load : {2.0, 6.0, 12.0}) {
    TraceConfig trace_config = setup.trace;
    trace_config.offered_rps = load;
    const auto trace = make_poisson_trace(trace_config, setup.seed);
    for (const auto& method : serving_methods(setup)) {
      bench::Stopwatch watch;
      BatchScheduler scheduler(trace, method.factory, setup.session, latency,
                               method.scheduler);
      scheduler.run();
      const auto& m = scheduler.metrics();
      table.add_row({method.name, format_double(load, 1),
                     format_double(m.throughput_tps(), 1),
                     format_double(m.concurrency().max(), 0),
                     format_double(m.ttft_percentile(50.0) / 1000.0, 2),
                     format_double(m.ttft_percentile(95.0) / 1000.0, 2),
                     format_double(short_session_ttft_p95(m, 600) / 1000.0, 2),
                     format_double(m.inter_token_percentile(50.0), 1),
                     format_double(m.inter_token_percentile(95.0), 1),
                     format_double(m.mean_queue_wait_ms() / 1000.0, 2),
                     std::to_string(m.total_preemptions()),
                     format_double(m.mean_cache_hit_rate(), 2),
                     format_double(m.mean_recall(), 3)});
      std::cerr << "  [" << method.name << " @ " << load << " req/s] "
                << format_double(watch.seconds(), 1) << "s wall\n";
    }
  }
  std::cout << table.to_string();
  return 0;
}
