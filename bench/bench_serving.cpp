// Multi-session serving bench: sustained decode throughput and latency
// percentiles vs. offered load, ClusterKV against the full-KV and Quest
// baselines under one shared fast-tier (HBM) byte budget.
//
// This is where recallable compression pays off beyond single-sequence
// latency (Fig. 12/13): a ClusterKV session only pins its sinks, pending
// tokens and the cluster-cache window in HBM, so the same budget admits
// several times more concurrent sessions, which amortizes the dominant
// weight-streaming cost of every decode tick. Full KV and Quest pin the
// whole context and queue instead.
//
// Four ClusterKV rows isolate the chunked-prefill and fetch-overlap
// trade-offs:
//   "ClusterKV (prefetch)" — chunked prefill + repair + async cluster
//                            prefetch: predicted next-step clusters fetch
//                            slow->fast overlapped with the current
//                            step's attention (the serving default);
//   "ClusterKV (repair)"   — same, but every cache miss fetches
//                            synchronously inside select();
//   "ClusterKV (chunked)"  — chunked prefill, repair off: the recall
//                            regression the repair pass exists to fix;
//   "ClusterKV (inline)"   — whole-prompt prefill per admission tick
//                            (prefill_chunk_tokens = 0): one-shot
//                            clustering, the recall ceiling, at the price
//                            of tail TTFT (see docs/SCHEDULING.md).
//
// `--check-recall` runs a reduced version of the comparison and exits
// non-zero if chunked+repair recall@B falls below the committed floor or
// costs more than the committed throughput margin — the CI guard against
// the chunk-locality recall regression silently returning.
//
// `--check-prefetch` guards the prefetch row the same way: prefetch hit
// rate must hold the committed floor, throughput must be no worse than
// the sync-fetch row, and selection must be bit-identical to sync
// (prefetch is latency-only — equal recall@B on the same denominator and
// an equal cache hit rate, since it moves *when* bytes cross, not
// whether).
//
// Every random stream in this bench derives from one `--seed` (trace
// arrivals/lengths, per-request procedural contexts, per-head k-means
// sampling), so the CI guards are exactly reproducible and cannot flake.
#include <cmath>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/full_kv.hpp"
#include "baselines/quest.hpp"
#include "bench_common.hpp"
#include "core/clusterkv_engine.hpp"
#include "obs/trace.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/trace.hpp"
#include "sim/latency_model.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace ckv;

struct ServingSetup {
  SessionConfig session;
  ClusterKVConfig clusterkv;
  TraceConfig trace;
  std::int64_t fast_budget_bytes = 0;
  std::uint64_t seed = 2025;
  /// Modeled slow->fast link bandwidth for the transfer-engine row
  /// (--link-gbps); 0 picks the hardware model's gather rate.
  double link_gbps = 0.0;
};

/// Prefetch depth of the serving default: the budget selects ~6 clusters
/// per step at 20-token granularity, so covering the ~10 clusters at and
/// just below the selection cutoff catches most step-to-step rotation
/// (the trimmed cluster's tail and jitter flip-flops; focus drift to a
/// brand-new topic is inherently unpredictable). Waste is cheap — issued
/// bytes hide under the step's compute — so depth errs generous.
constexpr Index kPrefetchClusters = 10;
constexpr double kPrefetchPriorWeight = 1.0;
constexpr double kPrefetchPriorDecay = 0.8;

ServingSetup make_setup(std::uint64_t seed) {
  ServingSetup setup;
  setup.seed = seed;
  setup.session.shape.num_layers = 1;
  setup.session.shape.num_heads = 2;
  setup.session.shape.head_dim = 64;
  setup.session.params.head_dim = 64;
  setup.session.engine.budget = 128;
  setup.session.engine.full_attention_layers = 0;

  setup.clusterkv = bench::paper_clusterkv();
  setup.clusterkv.decode_interval = 32;  // serving decodes are short; keep
  setup.clusterkv.decode_clusters = 2;   // the pending buffer proportionate
  setup.clusterkv.tokens_per_cluster = 20;  // L/80 is too coarse at ~1k tokens

  // Long-prompt mix: uniform 150..1800 gives every trace a blend of
  // interactive short requests and long-document admissions — the regime
  // where inline prefill makes short sessions pay for long ones.
  setup.trace.num_requests = 16;
  setup.trace.prompt_len_min = 150;
  setup.trace.prompt_len_max = 1800;
  setup.trace.decode_len_min = 16;
  setup.trace.decode_len_max = 32;

  // Global HBM budget: ~2.5 mean full contexts. Full KV can overlap two or
  // three sessions; the ClusterKV working set (sinks + pending + cache
  // window) is ~6x smaller, so it batches most of the fleet.
  const Index mean_context =
      (setup.trace.prompt_len_min + setup.trace.prompt_len_max) / 2 +
      (setup.trace.decode_len_min + setup.trace.decode_len_max) / 2;
  const Index per_token = session_token_bytes(setup.session);
  setup.fast_budget_bytes = static_cast<std::int64_t>(
      2.2 * static_cast<double>(mean_context * per_token *
                                setup.session.shape.total_heads()));
  return setup;
}

struct MethodRun {
  std::string name;
  SelectorFactory factory;
  BatchSchedulerConfig scheduler;
};

std::vector<MethodRun> serving_methods(const ServingSetup& setup,
                                       bool clusterkv_only = false) {
  std::vector<MethodRun> methods;

  BatchSchedulerConfig ckv_config;
  ckv_config.method = LatencyModel::Method::kClusterKV;
  ckv_config.tiered_residency = true;
  ckv_config.sink_tokens = setup.clusterkv.sink_tokens;
  ckv_config.decode_interval = setup.clusterkv.decode_interval;
  ckv_config.cache_depth = setup.clusterkv.cache_depth;
  ckv_config.tokens_per_cluster = setup.clusterkv.tokens_per_cluster;
  ckv_config.admission_overcommit = 1.5;
  ckv_config.fast_tier_budget_bytes = setup.fast_budget_bytes;
  ckv_config.prefill_chunk_tokens = 256;  // ~3-7 chunks per long prompt
  ckv_config.repair_refine_iterations = setup.clusterkv.repair_refine_iterations;
  ckv_config.repair_decode_interval = setup.clusterkv.repair_decode_interval;

  // Serving default: repair + async cluster prefetch. Same engine seed
  // and clustering knobs as the sync row — selection is bit-identical,
  // only fetch latency moves (the --check-prefetch guard pins this).
  ClusterKVConfig prefetch_ckv = setup.clusterkv;
  prefetch_ckv.prefetch_clusters = kPrefetchClusters;
  prefetch_ckv.prefetch_prior_weight = kPrefetchPriorWeight;
  prefetch_ckv.prefetch_prior_decay = kPrefetchPriorDecay;
  BatchSchedulerConfig prefetch_config = ckv_config;
  prefetch_config.prefetch_clusters = kPrefetchClusters;
  methods.push_back({"ClusterKV (prefetch)",
                     make_clusterkv_factory(prefetch_ckv, setup.seed),
                     prefetch_config});

  // Same prefetch policy over the explicit bandwidth-contended wire
  // (sim/transfer_engine): demand misses and speculative copies of every
  // running session share one queue at --link-gbps, so the dm-stall /
  // link-util / late-pf columns surface what the closed-form prefetch row
  // hides — concurrent sessions contending for slow->fast bandwidth. With
  // a single session and an idle wire this row reproduces the closed-form
  // prefetch row (the --check-transfer guard pins the 1% equivalence).
  BatchSchedulerConfig engine_config = prefetch_config;
  engine_config.use_transfer_engine = true;
  engine_config.link_gbps = setup.link_gbps;
  methods.push_back({"ClusterKV (engine)",
                     make_clusterkv_factory(prefetch_ckv, setup.seed),
                     engine_config});

  methods.push_back({"ClusterKV (repair)",
                     make_clusterkv_factory(setup.clusterkv, setup.seed),
                     ckv_config});

  // Repair off: the chunk-local clustering recall regression, isolated.
  ClusterKVConfig no_repair = setup.clusterkv;
  no_repair.repair_refine_iterations = 0;
  BatchSchedulerConfig chunked_config = ckv_config;
  chunked_config.repair_refine_iterations = 0;
  chunked_config.repair_decode_interval = 0;
  methods.push_back({"ClusterKV (chunked)",
                     make_clusterkv_factory(no_repair, setup.seed),
                     chunked_config});

  // Same method, inline (whole-prompt-per-tick) prefill: isolates what
  // chunking buys — queued/running sessions stop paying a full foreign
  // prefill per admission, so tail TTFT drops at equal throughput. One
  // clustering batch per prompt also makes repair a no-op, so this row is
  // the one-shot recall ceiling.
  BatchSchedulerConfig inline_config = chunked_config;
  inline_config.prefill_chunk_tokens = 0;
  methods.push_back({"ClusterKV (inline)",
                     make_clusterkv_factory(no_repair, setup.seed),
                     inline_config});
  if (clusterkv_only) {
    return methods;
  }

  BatchSchedulerConfig quest_config;
  quest_config.method = LatencyModel::Method::kQuest;
  quest_config.fast_tier_budget_bytes = setup.fast_budget_bytes;
  methods.push_back({"Quest", make_quest_factory(bench::paper_quest()), quest_config});

  BatchSchedulerConfig full_config;
  full_config.method = LatencyModel::Method::kFullKV;
  full_config.fast_tier_budget_bytes = setup.fast_budget_bytes;
  methods.push_back({"Full KV", make_full_kv_factory(), full_config});
  return methods;
}

/// p95 TTFT over the interactive class (prompt <= threshold): the
/// sessions that queue behind long admissions and whose first token
/// chunked prefill is supposed to protect.
double short_session_ttft_p95(const ServeMetrics& metrics, Index threshold) {
  std::vector<double> values;
  for (const auto& record : metrics.records()) {
    if (record.prompt_len <= threshold) {
      values.push_back(record.ttft_ms());
    }
  }
  return values.empty() ? 0.0 : percentile(values, 95.0);
}

/// Committed floors for the --check-recall CI guard: chunked+repair must
/// hold this much recall@B on the bench mix, at no more than this relative
/// throughput cost vs. chunked-without-repair.
constexpr double kRepairRecallFloor = 0.45;
constexpr double kRepairThroughputMargin = 0.05;

/// Committed floor for the --check-prefetch CI guard: the share of fetch
/// traffic the predictor covers in flight on the serving mix.
constexpr double kPrefetchHitFloor = 0.6;

/// Budget scale of the prefetch guard relative to the main table's 2.2x
/// mean-context budget. Speculation needs HBM headroom: at the pinned
/// 2.2x budget the fleet working set sits exactly at the cap, so
/// enforcement (correctly) cancels most in-flight fetches before touching
/// resident KV, and the hit rate measures budget starvation rather than
/// the predictor (the main table's "pf hit" column shows that regime).
/// The guard scales the shared budget up so in-flight transfer buffers
/// fit — both rows run at the same scaled budget, keeping the
/// prefetch-vs-sync comparison apples-to-apples.
constexpr double kPrefetchGuardBudgetScale = 2.0;

/// CI smoke: one mid load, the ClusterKV rows only. Exits non-zero when
/// the repair row breaks either committed floor, so the chunk-locality
/// recall regression cannot silently return. The inline row does not feed
/// the pass/fail logic but is printed on purpose: when the guard trips,
/// the log must show whether repair drifted or the one-shot ceiling moved.
int check_recall(const ServingSetup& setup, const LatencyModel& latency) {
  TraceConfig trace_config = setup.trace;
  trace_config.offered_rps = 6.0;
  const auto trace = make_poisson_trace(trace_config, setup.seed);

  double repair_recall = 0.0;
  double repair_tps = 0.0;
  double chunked_recall = 0.0;
  double chunked_tps = 0.0;
  for (const auto& method : serving_methods(setup, /*clusterkv_only=*/true)) {
    BatchScheduler scheduler(trace, method.factory, setup.session, latency,
                             method.scheduler);
    scheduler.run();
    const auto& m = scheduler.metrics();
    std::cout << method.name << ": recall@B " << format_double(m.mean_recall(), 3)
              << ", tok/s " << format_double(m.throughput_tps(), 1)
              << ", repair cost " << format_double(m.repair_ms_total(), 1)
              << " ms over " << m.recall_steps_total() << " scored steps\n";
    if (method.name == "ClusterKV (repair)") {
      repair_recall = m.mean_recall();
      repair_tps = m.throughput_tps();
    } else if (method.name == "ClusterKV (chunked)") {
      chunked_recall = m.mean_recall();
      chunked_tps = m.throughput_tps();
    }
  }

  bool ok = true;
  if (repair_recall < kRepairRecallFloor) {
    std::cout << "FAIL: chunked+repair recall@B " << format_double(repair_recall, 3)
              << " < committed floor " << format_double(kRepairRecallFloor, 2) << "\n";
    ok = false;
  }
  if (repair_tps < chunked_tps * (1.0 - kRepairThroughputMargin)) {
    std::cout << "FAIL: repair costs more than "
              << format_double(kRepairThroughputMargin * 100.0, 0)
              << "% throughput (" << format_double(repair_tps, 1) << " vs "
              << format_double(chunked_tps, 1) << " tok/s)\n";
    ok = false;
  }
  if (ok) {
    std::cout << "OK: repair holds recall@B >= "
              << format_double(kRepairRecallFloor, 2) << " (chunked baseline "
              << format_double(chunked_recall, 3) << ") within the throughput "
              << "margin\n";
  }
  return ok ? 0 : 1;
}

/// CI smoke for async prefetch: one mid load, prefetch row vs the
/// sync-fetch repair row. Exits non-zero when the predictor misses the
/// committed hit-rate floor, when overlapping fetches somehow costs
/// throughput, or when selection quality moved at all — prefetch is
/// latency-only by construction, so recall@B, its step denominator and
/// the cache hit rate must match the sync row exactly.
int check_prefetch(const ServingSetup& base_setup, const LatencyModel& latency) {
  ServingSetup setup = base_setup;
  setup.fast_budget_bytes = static_cast<std::int64_t>(
      kPrefetchGuardBudgetScale * static_cast<double>(setup.fast_budget_bytes));
  TraceConfig trace_config = setup.trace;
  trace_config.offered_rps = 6.0;
  const auto trace = make_poisson_trace(trace_config, setup.seed);

  struct RowStats {
    double recall = 0.0;
    std::int64_t recall_steps = 0;
    double hit_rate = 0.0;
    double tps = 0.0;
    double prefetch_hit_rate = 0.0;
    double prefetch_waste = 0.0;
    double waste_mis = 0.0;
    double waste_enf = 0.0;
    double waste_rel = 0.0;
  };
  RowStats prefetch;
  RowStats sync;
  for (const auto& method : serving_methods(setup, /*clusterkv_only=*/true)) {
    if (method.name != "ClusterKV (prefetch)" && method.name != "ClusterKV (repair)") {
      continue;
    }
    BatchScheduler scheduler(trace, method.factory, setup.session, latency,
                             method.scheduler);
    scheduler.run();
    const auto& m = scheduler.metrics();
    RowStats row;
    row.recall = m.mean_recall();
    row.recall_steps = m.recall_steps_total();
    row.hit_rate = m.mean_cache_hit_rate();
    row.tps = m.throughput_tps();
    row.prefetch_hit_rate = m.prefetch_hit_rate();
    row.prefetch_waste = m.prefetch_waste_rate();
    row.waste_mis = m.prefetch_waste_rate(obs::FetchCancelReason::kMisprediction);
    row.waste_enf = m.prefetch_waste_rate(obs::FetchCancelReason::kEnforcement);
    row.waste_rel = m.prefetch_waste_rate(obs::FetchCancelReason::kSessionRelease);
    std::cout << method.name << ": prefetch hit rate "
              << format_double(row.prefetch_hit_rate, 3) << ", waste "
              << format_double(row.prefetch_waste, 3) << ", tok/s "
              << format_double(row.tps, 1) << ", recall@B "
              << format_double(row.recall, 3) << " over " << row.recall_steps
              << " scored steps, cache hit rate " << format_double(row.hit_rate, 3)
              << "\n";
    (method.name == "ClusterKV (prefetch)" ? prefetch : sync) = row;
  }

  bool ok = true;
  if (prefetch.prefetch_hit_rate < kPrefetchHitFloor) {
    std::cout << "FAIL: prefetch hit rate "
              << format_double(prefetch.prefetch_hit_rate, 3)
              << " < committed floor " << format_double(kPrefetchHitFloor, 2) << "\n";
    ok = false;
  }
  if (prefetch.tps < sync.tps) {
    std::cout << "FAIL: prefetch throughput " << format_double(prefetch.tps, 1)
              << " tok/s below the sync-fetch baseline " << format_double(sync.tps, 1)
              << " tok/s (overlapped fetches must never cost time)\n";
    ok = false;
  }
  // Waste attribution must explain the whole waste scalar: once every
  // session has retired, misprediction + enforcement + release cancels
  // account for every issued-but-unused fetch.
  {
    const double attributed =
        prefetch.waste_mis + prefetch.waste_enf + prefetch.waste_rel;
    std::cout << "waste attribution: mispredict "
              << format_double(prefetch.waste_mis, 3) << ", enforcement "
              << format_double(prefetch.waste_enf, 3) << ", release "
              << format_double(prefetch.waste_rel, 3) << " (total "
              << format_double(prefetch.prefetch_waste, 3) << ")\n";
    if (std::abs(attributed - prefetch.prefetch_waste) > 1e-12) {
      std::cout << "FAIL: waste attribution components sum to "
                << format_double(attributed, 6)
                << " but prefetch_waste_rate() is "
                << format_double(prefetch.prefetch_waste, 6)
                << " — some canceled fetch lost its reason\n";
      ok = false;
    }
  }
  if (std::abs(prefetch.recall - sync.recall) > 1e-12 ||
      prefetch.recall_steps != sync.recall_steps ||
      std::abs(prefetch.hit_rate - sync.hit_rate) > 1e-12) {
    std::cout << "FAIL: prefetch changed selection behavior (recall@B "
              << format_double(prefetch.recall, 6) << " vs "
              << format_double(sync.recall, 6) << ", steps " << prefetch.recall_steps
              << " vs " << sync.recall_steps << ", cache hit rate "
              << format_double(prefetch.hit_rate, 6) << " vs "
              << format_double(sync.hit_rate, 6)
              << ") — it must be latency-only\n";
    ok = false;
  }
  if (ok) {
    std::cout << "OK: prefetch covers "
              << format_double(prefetch.prefetch_hit_rate, 3)
              << " of fetch traffic in flight (floor "
              << format_double(kPrefetchHitFloor, 2) << ") at no throughput cost ("
              << format_double(prefetch.tps, 1) << " vs "
              << format_double(sync.tps, 1)
              << " tok/s sync) with selection bit-identical to sync\n";
  }
  return ok ? 0 : 1;
}

/// Committed bounds for the --check-faults CI guard (docs/ROBUSTNESS.md):
/// under the chaos preset the faulted engine row must keep this share of
/// its fault-free throughput, and under the harsher degraded-path leg the
/// share of decode steps served resident-only must stay below this
/// ceiling (degradation is a last resort, not the steady state).
constexpr double kFaultedThroughputFloor = 0.80;
constexpr double kDegradedRateCeiling = 0.10;
/// Failure rate of the harsher --check-faults leg: high enough that
/// retry exhaustion (dead fetches -> degraded steps) actually fires in a
/// 16-request run, which the milder chaos preset cannot guarantee.
constexpr double kHarshFetchFailureRate = 0.45;

/// Tolerance of the --check-transfer single-session guard: with one
/// session and an idle wire the engine row must reproduce the closed-form
/// prefetch row's throughput to within this relative margin (the two paths
/// bill the same bytes at the same rate; only queue contention may differ).
constexpr double kTransferEquivalenceTol = 0.01;

/// Narrow link used by the contention leg of --check-transfer and the
/// determinism CI smoke: slow enough that 16 concurrent sessions pile a
/// visible demand backlog onto the wire.
constexpr double kContendedLinkGbps = 2.5;

/// Finds a named row config so guard runs reuse the exact table configs.
const MethodRun* find_method(const std::vector<MethodRun>& methods,
                             const std::string& name) {
  for (const auto& method : methods) {
    if (method.name == name) {
      return &method;
    }
  }
  return nullptr;
}

/// CI smoke for the transfer engine, three legs:
///   1. single-session equivalence — one request on an idle wire must
///      match the closed-form prefetch row's throughput within 1%;
///   2. contention — at a fixed narrow link the mean per-step demand
///      stall must grow when the fleet grows from 1 to 16 sessions;
///   3. bandwidth monotonicity — fleet throughput must be non-decreasing
///      in --link-gbps (a faster wire can never slow serving down).
int check_transfer(const ServingSetup& setup, const LatencyModel& latency) {
  const auto methods = serving_methods(setup, /*clusterkv_only=*/true);
  const MethodRun* closed = find_method(methods, "ClusterKV (prefetch)");
  const MethodRun* engine = find_method(methods, "ClusterKV (engine)");
  if (closed == nullptr || engine == nullptr) {
    std::cout << "FAIL: bench rows renamed; --check-transfer needs the "
                 "prefetch and engine rows\n";
    return 1;
  }
  const auto run = [&](const MethodRun& method, const TraceConfig& tc,
                       double link_gbps) {
    BatchSchedulerConfig config = method.scheduler;
    if (config.use_transfer_engine) {
      config.link_gbps = link_gbps;
    }
    BatchScheduler scheduler(make_poisson_trace(tc, setup.seed), method.factory,
                             setup.session, latency, config);
    scheduler.run();
    struct Out {
      double tps = 0.0;
      double stall_ms = 0.0;
      std::int64_t stall_steps = 0;
      double link_util = 0.0;
    } out;
    const auto& m = scheduler.metrics();
    out.tps = m.throughput_tps();
    out.stall_ms = m.demand_stall_ms_total();
    out.stall_steps = m.demand_stall_steps();
    out.link_util =
        m.makespan_ms() > 0.0 ? m.link_busy_ms_total() / m.makespan_ms() : 0.0;
    return out;
  };
  bool ok = true;

  TraceConfig solo_tc = setup.trace;
  solo_tc.num_requests = 1;
  solo_tc.offered_rps = 6.0;
  const auto closed_solo = run(*closed, solo_tc, 0.0);
  const auto engine_solo = run(*engine, solo_tc, 0.0);
  const double rel = closed_solo.tps > 0.0
                         ? std::abs(engine_solo.tps - closed_solo.tps) / closed_solo.tps
                         : 0.0;
  std::cout << "single session: closed-form " << format_double(closed_solo.tps, 2)
            << " tok/s, engine " << format_double(engine_solo.tps, 2)
            << " tok/s (rel diff " << format_double(rel, 4) << ")\n";
  if (rel > kTransferEquivalenceTol) {
    std::cout << "FAIL: single-session engine row drifted more than "
              << format_double(kTransferEquivalenceTol * 100.0, 0)
              << "% from the closed-form prefetch row\n";
    ok = false;
  }

  TraceConfig fleet_tc = setup.trace;
  fleet_tc.offered_rps = 1000.0;  // the whole fleet arrives at once
  const auto solo_narrow = run(*engine, solo_tc, kContendedLinkGbps);
  const auto fleet_narrow = run(*engine, fleet_tc, kContendedLinkGbps);
  const double solo_mean =
      solo_narrow.stall_steps > 0
          ? solo_narrow.stall_ms / static_cast<double>(solo_narrow.stall_steps)
          : 0.0;
  const double fleet_mean =
      fleet_narrow.stall_steps > 0
          ? fleet_narrow.stall_ms / static_cast<double>(fleet_narrow.stall_steps)
          : 0.0;
  std::cout << "contention @ " << format_double(kContendedLinkGbps, 1)
            << " GB/s: mean demand stall " << format_double(solo_mean, 3)
            << " ms/step solo -> " << format_double(fleet_mean, 3) << " ms/step at "
            << setup.trace.num_requests << " sessions (link util "
            << format_double(fleet_narrow.link_util, 2) << ")\n";
  if (fleet_mean <= solo_mean) {
    std::cout << "FAIL: demand stall did not grow with concurrent sessions — "
                 "the wire is not contended\n";
    ok = false;
  }

  double prev_tps = 0.0;
  double prev_gbps = 0.0;
  bool first = true;
  for (const double gbps : {2.5, 5.0, 10.0, 25.0}) {
    const auto out = run(*engine, fleet_tc, gbps);
    std::cout << "link " << format_double(gbps, 1) << " GB/s: "
              << format_double(out.tps, 2) << " tok/s, demand stall "
              << format_double(out.stall_ms, 1) << " ms\n";
    if (!first && out.tps + 1e-9 < prev_tps) {
      std::cout << "FAIL: throughput fell from " << format_double(prev_tps, 2)
                << " tok/s at " << format_double(prev_gbps, 1) << " GB/s to "
                << format_double(out.tps, 2) << " tok/s at "
                << format_double(gbps, 1) << " GB/s — must be non-decreasing "
                << "in link bandwidth\n";
      ok = false;
    }
    prev_tps = out.tps;
    prev_gbps = gbps;
    first = false;
  }

  if (ok) {
    std::cout << "OK: engine matches closed-form solo (rel diff "
              << format_double(rel, 4) << "), stalls grow with fleet size, and "
              << "throughput is monotone in link bandwidth\n";
  }
  return ok ? 0 : 1;
}

/// One chaos-table row: the transfer-engine config under a seeded fault
/// plan, with the degradation ledger next to the usual quality columns.
struct FaultRow {
  double load = 0.0;
  double tps = 0.0;
  double fault_free_tps = 0.0;
  double retention = 0.0;  ///< tps / fault_free_tps
  std::int64_t faults = 0;
  std::int64_t retried_ok = 0;
  std::int64_t dead_fetches = 0;
  std::int64_t degraded_steps = 0;
  double degraded_rate = 0.0;  ///< degraded steps / committed decode steps
  double retry_ms = 0.0;
  std::int64_t aborts = 0;
  std::int64_t shed = 0;
  std::int64_t wire_retries = 0;
  std::int64_t wire_failures = 0;
  double recall = 0.0;
  std::int64_t sessions = 0;
};

std::int64_t decode_steps_total(const ServeMetrics& m) {
  std::int64_t steps = 0;
  for (const auto& record : m.records()) {
    steps += record.decode_len;
  }
  return steps;
}

FaultRow make_fault_row(double load, const ServeMetrics& m,
                        double fault_free_tps) {
  FaultRow row;
  row.load = load;
  row.tps = m.throughput_tps();
  row.fault_free_tps = fault_free_tps;
  row.retention = fault_free_tps > 0.0 ? row.tps / fault_free_tps : 0.0;
  row.faults = m.fault_fetch_faults_total();
  row.retried_ok = m.fault_retried_ok_total();
  row.dead_fetches = m.dead_fetches_total();
  row.degraded_steps = m.degraded_steps_total();
  const std::int64_t steps = decode_steps_total(m);
  row.degraded_rate =
      steps > 0 ? static_cast<double>(row.degraded_steps) /
                      static_cast<double>(steps)
                : 0.0;
  row.retry_ms = m.fault_retry_ms_total();
  row.aborts = m.fault_aborts_total();
  row.shed = m.shed_sessions_total();
  row.wire_retries = m.wire_retries_total();
  row.wire_failures = m.wire_failures_total();
  row.recall = m.mean_recall();
  row.sessions = static_cast<std::int64_t>(m.records().size());
  return row;
}

/// Runs the engine row once at the given load under the given fault plan
/// (or fault-free when the plan is disabled) and folds the metrics into a
/// FaultRow (ServeMetrics itself is pinned to its scheduler).
FaultRow run_engine_cell(const ServingSetup& setup, const LatencyModel& latency,
                         double load, const FaultPlan& plan,
                         double fault_free_tps) {
  TraceConfig trace_config = setup.trace;
  trace_config.offered_rps = load;
  const auto methods = serving_methods(setup, /*clusterkv_only=*/true);
  const MethodRun* engine = find_method(methods, "ClusterKV (engine)");
  expects(engine != nullptr, "bench_serving: engine row missing");
  BatchSchedulerConfig config = engine->scheduler;
  config.fault_plan = plan;
  BatchScheduler scheduler(make_poisson_trace(trace_config, setup.seed),
                           engine->factory, setup.session, latency, config);
  scheduler.run();
  return make_fault_row(load, scheduler.metrics(), fault_free_tps);
}

/// Sanity identities every faulted run must satisfy; shared by the chaos
/// table (--faults) and the CI guard (--check-faults).
bool fault_identities_hold(const FaultRow& row) {
  bool ok = true;
  if (row.faults != row.retried_ok + row.dead_fetches) {
    std::cout << "FAIL: fault accounting leak — " << row.faults
              << " faulted fetches but " << row.retried_ok << " recovered + "
              << row.dead_fetches << " dead\n";
    ok = false;
  }
  if (row.dead_fetches != row.degraded_steps) {
    std::cout << "FAIL: every dead fetch must degrade exactly one step ("
              << row.dead_fetches << " dead vs " << row.degraded_steps
              << " degraded)\n";
    ok = false;
  }
  return ok;
}

/// CI chaos guard, two legs on the transfer-engine row at mid load:
///   1. chaos preset — the committed fault mix must retry-to-success or
///      degrade every injected fault (accounting identities), and the
///      faulted row must keep >= 80% of fault-free throughput;
///   2. harsh leg — a failure rate high enough to exhaust retries, so the
///      degraded resident-only path demonstrably runs, stays within the
///      committed degraded-step ceiling, and still finishes every session.
int check_faults(const ServingSetup& setup, const LatencyModel& latency,
                 std::uint64_t fault_seed) {
  bool ok = true;
  const double load = 6.0;
  const FaultRow free_row =
      run_engine_cell(setup, latency, load, FaultPlan{}, 0.0);

  const FaultPlan chaos = FaultPlan::chaos(fault_seed);
  const FaultRow chaos_row =
      run_engine_cell(setup, latency, load, chaos, free_row.tps);
  std::cout << "chaos leg: " << chaos_row.faults << " faulted fetches ("
            << chaos_row.retried_ok << " recovered, " << chaos_row.dead_fetches
            << " dead), " << chaos_row.wire_retries << " wire retries, "
            << chaos_row.aborts << " aborts, " << chaos_row.shed
            << " shed, tok/s " << format_double(chaos_row.tps, 1) << " vs "
            << format_double(chaos_row.fault_free_tps, 1)
            << " fault-free (retention "
            << format_double(chaos_row.retention, 3) << ")\n";
  ok = fault_identities_hold(chaos_row) && ok;
  if (chaos_row.faults == 0 && chaos_row.wire_retries == 0) {
    std::cout << "FAIL: chaos preset injected nothing — the fault path is "
                 "not exercised\n";
    ok = false;
  }
  if (chaos_row.retention < kFaultedThroughputFloor) {
    std::cout << "FAIL: faulted throughput retention "
              << format_double(chaos_row.retention, 3) << " < committed floor "
              << format_double(kFaultedThroughputFloor, 2) << "\n";
    ok = false;
  }

  FaultPlan harsh = chaos;
  harsh.fetch_failure_rate = kHarshFetchFailureRate;
  const FaultRow harsh_row =
      run_engine_cell(setup, latency, load, harsh, free_row.tps);
  std::cout << "harsh leg: " << harsh_row.dead_fetches << " dead fetches -> "
            << harsh_row.degraded_steps << " degraded steps (rate "
            << format_double(harsh_row.degraded_rate, 4) << "), "
            << harsh_row.sessions << " sessions finished\n";
  ok = fault_identities_hold(harsh_row) && ok;
  if (harsh_row.degraded_steps == 0) {
    std::cout << "FAIL: harsh leg never exhausted retries — the degraded "
                 "resident-only path is not exercised\n";
    ok = false;
  }
  if (harsh_row.degraded_rate > kDegradedRateCeiling) {
    std::cout << "FAIL: degraded-step rate "
              << format_double(harsh_row.degraded_rate, 4)
              << " > committed ceiling "
              << format_double(kDegradedRateCeiling, 2) << "\n";
    ok = false;
  }
  // Conservation: every offered request either retires through the normal
  // path (aborted or not) or was shed at admission — none vanish.
  for (const FaultRow* row : {&chaos_row, &harsh_row}) {
    if (row->sessions + row->shed !=
        static_cast<std::int64_t>(setup.trace.num_requests)) {
      std::cout << "FAIL: " << row->sessions << " retired + " << row->shed
                << " shed != " << setup.trace.num_requests << " offered\n";
      ok = false;
    }
  }
  if (ok) {
    std::cout << "OK: every injected fault recovered or degraded gracefully, "
              << "retention " << format_double(chaos_row.retention, 3)
              << " >= " << format_double(kFaultedThroughputFloor, 2)
              << ", degraded-step rate "
              << format_double(harsh_row.degraded_rate, 4) << " <= "
              << format_double(kDegradedRateCeiling, 2) << "\n";
  }
  return ok ? 0 : 1;
}

/// One table row, kept numeric for the BENCH_SERVING.json dump.
struct ServingRow {
  std::string method;
  double load = 0.0;
  double tps = 0.0;
  double max_batch = 0.0;
  double p50_ttft_ms = 0.0;
  double p95_ttft_ms = 0.0;
  double p95_ttft_short_ms = 0.0;
  double p50_itl_ms = 0.0;
  double p95_itl_ms = 0.0;
  double p99_step_itl_ms = 0.0;
  double queue_wait_ms = 0.0;
  Index max_queue_depth = 0;
  Index preemptions = 0;
  double repair_ms = 0.0;
  double hit_rate = 0.0;
  bool has_prefetch = false;
  double pf_hit = 0.0;
  double pf_waste = 0.0;
  double pf_waste_mis = 0.0;
  double pf_waste_enf = 0.0;
  double pf_waste_rel = 0.0;
  double recall = 0.0;
  // Transfer-engine columns (zero unless the row models the wire).
  bool has_engine = false;
  double demand_stall_ms = 0.0;
  double link_utilization = 0.0;
  std::int64_t late_pf_tokens = 0;
  // Wall-time diagnostics (host clock — table-only, kept out of the JSON
  // rows so the determinism byte-diff never sees them).
  double cell_wall_s = 0.0;
  double fanout_fraction = 0.0;
};

/// Quality/billing columns for one finished scheduler — everything here
/// rides the virtual clock, so it is byte-identical at every worker count.
ServingRow make_serving_row(const std::string& name, double load,
                            const ServeMetrics& m) {
  ServingRow row;
  row.method = name;
  row.load = load;
  row.tps = m.throughput_tps();
  row.max_batch = m.concurrency().max();
  row.p50_ttft_ms = m.ttft_percentile(50.0);
  row.p95_ttft_ms = m.ttft_percentile(95.0);
  row.p95_ttft_short_ms = short_session_ttft_p95(m, 600);
  row.p50_itl_ms = m.inter_token_percentile(50.0);
  row.p95_itl_ms = m.inter_token_percentile(95.0);
  row.p99_step_itl_ms = m.inter_token_gap_p99_ms();
  row.queue_wait_ms = m.mean_queue_wait_ms();
  row.max_queue_depth = m.max_queue_depth();
  row.preemptions = m.total_preemptions();
  row.repair_ms = m.repair_ms_total();
  row.hit_rate = m.mean_cache_hit_rate();
  row.has_prefetch = m.prefetch_issued_total() > 0;
  if (row.has_prefetch) {
    row.pf_hit = m.prefetch_hit_rate();
    row.pf_waste = m.prefetch_waste_rate();
    row.pf_waste_mis = m.prefetch_waste_rate(obs::FetchCancelReason::kMisprediction);
    row.pf_waste_enf = m.prefetch_waste_rate(obs::FetchCancelReason::kEnforcement);
    row.pf_waste_rel = m.prefetch_waste_rate(obs::FetchCancelReason::kSessionRelease);
  }
  row.recall = m.mean_recall();
  row.has_engine = m.demand_stall_steps() > 0 || m.link_drained_bytes_total() > 0.0;
  if (row.has_engine) {
    row.demand_stall_ms = m.demand_stall_ms_total();
    row.link_utilization =
        m.makespan_ms() > 0.0 ? m.link_busy_ms_total() / m.makespan_ms() : 0.0;
    row.late_pf_tokens = m.late_prefetch_tokens_total();
  }
  row.fanout_fraction = m.fanout_fraction();
  return row;
}

/// Wall-time speedup of the parallel tick, measured where it can show:
/// the whole fleet decoding concurrently under an unlimited budget (the
/// capped table cells spend much of their time in contended single-item
/// waves, which is the point — byte-identity outranks speed there).
struct FanoutScaling {
  double serial_advance_wall_ms = 0.0;
  double parallel_advance_wall_ms = 0.0;
  double speedup = 0.0;
  double fanout_fraction = 0.0;
  int workers = 0;
  unsigned hw_cores = 0;  ///< physical ceiling on any measured speedup
};

FanoutScaling run_fanout_scaling(const ServingSetup& setup,
                                 const LatencyModel& latency) {
  TraceConfig trace_config = setup.trace;
  trace_config.offered_rps = 1000.0;  // the fleet arrives at once
  trace_config.decode_len_min = 48;   // decode-heavy: many full-width ticks
  trace_config.decode_len_max = 64;
  const auto trace = make_poisson_trace(trace_config, setup.seed);

  ClusterKVConfig ckv = setup.clusterkv;
  ckv.prefetch_clusters = kPrefetchClusters;
  ckv.prefetch_prior_weight = kPrefetchPriorWeight;
  ckv.prefetch_prior_decay = kPrefetchPriorDecay;
  BatchSchedulerConfig config;
  config.method = LatencyModel::Method::kClusterKV;
  config.tiered_residency = true;
  config.sink_tokens = ckv.sink_tokens;
  config.decode_interval = ckv.decode_interval;
  config.cache_depth = ckv.cache_depth;
  config.tokens_per_cluster = ckv.tokens_per_cluster;
  config.prefill_chunk_tokens = 256;
  config.repair_refine_iterations = ckv.repair_refine_iterations;
  config.repair_decode_interval = ckv.repair_decode_interval;
  config.prefetch_clusters = kPrefetchClusters;
  config.fast_tier_budget_bytes = 0;  // unlimited: whole-batch waves

  const auto run_once = [&](bool parallel_tick) {
    BatchSchedulerConfig c = config;
    c.parallel_tick = parallel_tick;
    BatchScheduler scheduler(trace, make_clusterkv_factory(ckv, setup.seed),
                             setup.session, latency, c);
    scheduler.run();
    return std::make_tuple(scheduler.metrics().advance_wall_ms_total(),
                           scheduler.metrics().fanout_fraction(),
                           scheduler.metrics().throughput_tps(),
                           scheduler.metrics().mean_recall());
  };
  const auto [serial_wall, serial_fanout, serial_tps, serial_recall] =
      run_once(false);
  const auto [parallel_wall, parallel_fanout, parallel_tps, parallel_recall] =
      run_once(true);
  if (serial_tps != parallel_tps || serial_recall != parallel_recall) {
    std::cerr << "  [fanout] WARNING: quality drifted between serial and "
                 "parallel ticks (tok/s "
              << serial_tps << " vs " << parallel_tps << ", recall "
              << serial_recall << " vs " << parallel_recall << ")\n";
  }
  FanoutScaling out;
  out.serial_advance_wall_ms = serial_wall;
  out.parallel_advance_wall_ms = parallel_wall;
  out.speedup = parallel_wall > 0.0 ? serial_wall / parallel_wall : 0.0;
  out.fanout_fraction = parallel_fanout;
  out.workers = parallel_worker_count();
  out.hw_cores = std::thread::hardware_concurrency();
  (void)serial_fanout;
  return out;
}

std::string json_number(double v) {
  std::ostringstream s;
  s << v;
  return s.str();
}

/// The "rows" array carries only virtual-clock quality/billing columns —
/// CI byte-diffs it across worker counts. Wall-clock facts (the fan-out
/// scaling measurement) live in the separate "fanout" object so the
/// determinism contract never sees a host timestamp.
void write_json(const std::vector<ServingRow>& rows,
                const std::vector<ServingRow>& sweep,
                const std::vector<FaultRow>& fault_rows,
                const FanoutScaling& scaling, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServingRow& r = rows[i];
    out << "    {\"method\": \"" << r.method << "\", \"load_rps\": "
        << json_number(r.load) << ", \"tok_per_s\": " << json_number(r.tps)
        << ", \"max_batch\": " << json_number(r.max_batch)
        << ", \"p50_ttft_ms\": " << json_number(r.p50_ttft_ms)
        << ", \"p95_ttft_ms\": " << json_number(r.p95_ttft_ms)
        << ", \"p95_ttft_short_ms\": " << json_number(r.p95_ttft_short_ms)
        << ", \"p50_itl_ms\": " << json_number(r.p50_itl_ms)
        << ", \"p95_itl_ms\": " << json_number(r.p95_itl_ms)
        << ", \"p99_step_itl_ms\": " << json_number(r.p99_step_itl_ms)
        << ", \"queue_wait_ms\": " << json_number(r.queue_wait_ms)
        << ", \"max_queue_depth\": " << r.max_queue_depth
        << ", \"preemptions\": " << r.preemptions
        << ", \"repair_ms\": " << json_number(r.repair_ms)
        << ", \"cache_hit_rate\": " << json_number(r.hit_rate)
        << ", \"prefetch_hit_rate\": "
        << (r.has_prefetch ? json_number(r.pf_hit) : "null")
        << ", \"prefetch_waste_rate\": "
        << (r.has_prefetch ? json_number(r.pf_waste) : "null")
        << ", \"prefetch_waste_mispredict\": "
        << (r.has_prefetch ? json_number(r.pf_waste_mis) : "null")
        << ", \"prefetch_waste_enforce\": "
        << (r.has_prefetch ? json_number(r.pf_waste_enf) : "null")
        << ", \"prefetch_waste_release\": "
        << (r.has_prefetch ? json_number(r.pf_waste_rel) : "null")
        << ", \"demand_stall_ms\": "
        << (r.has_engine ? json_number(r.demand_stall_ms) : "null")
        << ", \"link_utilization\": "
        << (r.has_engine ? json_number(r.link_utilization) : "null")
        << ", \"late_prefetch_tokens\": "
        << (r.has_engine ? std::to_string(r.late_pf_tokens) : "null")
        << ", \"recall_at_b\": " << json_number(r.recall) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"link_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ServingRow& r = sweep[i];
    out << "    {\"link_gbps\": " << json_number(r.load)
        << ", \"tok_per_s\": " << json_number(r.tps)
        << ", \"demand_stall_ms\": " << json_number(r.demand_stall_ms)
        << ", \"link_utilization\": " << json_number(r.link_utilization)
        << ", \"late_prefetch_tokens\": " << r.late_pf_tokens
        << ", \"p95_itl_ms\": " << json_number(r.p95_itl_ms) << "}"
        << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  // Only present under --faults, so the fault-free JSON stays byte-for-byte
  // what it was before fault injection existed.
  if (!fault_rows.empty()) {
    out << "  \"fault_rows\": [\n";
    for (std::size_t i = 0; i < fault_rows.size(); ++i) {
      const FaultRow& r = fault_rows[i];
      out << "    {\"load_rps\": " << json_number(r.load)
          << ", \"tok_per_s\": " << json_number(r.tps)
          << ", \"fault_free_tok_per_s\": " << json_number(r.fault_free_tps)
          << ", \"throughput_retention\": " << json_number(r.retention)
          << ", \"fault_fetch_faults\": " << r.faults
          << ", \"retry_recovered\": " << r.retried_ok
          << ", \"dead_fetches\": " << r.dead_fetches
          << ", \"degraded_steps\": " << r.degraded_steps
          << ", \"degraded_rate\": " << json_number(r.degraded_rate)
          << ", \"retry_ms\": " << json_number(r.retry_ms)
          << ", \"aborts\": " << r.aborts << ", \"shed_sessions\": " << r.shed
          << ", \"wire_retries\": " << r.wire_retries
          << ", \"wire_failures\": " << r.wire_failures
          << ", \"recall_at_b\": " << json_number(r.recall) << "}"
          << (i + 1 < fault_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
  }
  out << "  \"fanout\": {\"workers\": " << scaling.workers
      << ", \"hw_cores\": " << scaling.hw_cores
      << ", \"serial_advance_wall_ms\": "
      << json_number(scaling.serial_advance_wall_ms)
      << ", \"parallel_advance_wall_ms\": "
      << json_number(scaling.parallel_advance_wall_ms)
      << ", \"speedup\": " << json_number(scaling.speedup)
      << ", \"fanout_fraction\": " << json_number(scaling.fanout_fraction)
      << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "bench_serving — multi-tenant throughput/latency/recall comparison");
  args.add_switch("json",
                  "also write BENCH_SERVING.json to the working directory "
                  "(machine-readable serving trajectory across PRs)");
  args.add_option("trace", "",
                  "write a Chrome trace-event JSON of the ClusterKV "
                  "(prefetch) row at 6 req/s (Perfetto-loadable)");
  args.add_switch("check-recall",
                  "CI smoke: fail if chunked+repair recall@B drops below the "
                  "committed floor or exceeds the throughput margin");
  args.add_switch("check-prefetch",
                  "CI smoke: fail if the async-prefetch hit rate drops below "
                  "the committed floor, throughput falls below sync fetch, or "
                  "selection is not bit-identical to sync");
  args.add_switch("check-transfer",
                  "CI smoke: fail if the transfer-engine row drifts >1% from "
                  "the closed-form row on a single session, if demand stall "
                  "does not grow with fleet size, or if throughput is not "
                  "monotone in link bandwidth");
  args.add_switch("faults",
                  "also run the seeded chaos rows: the transfer-engine config "
                  "under FaultPlan::chaos(--fault-seed) at every load, with "
                  "the degradation ledger as extra columns and a fault_rows "
                  "array in the JSON");
  args.add_switch("check-faults",
                  "CI chaos guard: fail if fault accounting leaks, if the "
                  "faulted engine row keeps < 80% of fault-free throughput, "
                  "if the degraded resident-only path never runs under the "
                  "harsh leg, or if its rate exceeds the committed ceiling");
  args.add_option("fault-seed", "7777",
                  "seed of the deterministic fault plan used by --faults and "
                  "--check-faults");
  args.add_option("link-gbps", "0",
                  "modeled slow->fast link bandwidth for the transfer-engine "
                  "row (GB/s; 0 = the hardware model's gather rate)");
  args.add_option("seed", "2025",
                  "experiment seed; every RNG in this bench (trace, contexts, "
                  "clustering) derives from it");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << args.help();
    return 2;
  }

  auto setup = make_setup(static_cast<std::uint64_t>(args.get_index("seed")));
  setup.link_gbps = args.get_double_in("link-gbps", 0.0, 1e6);
  const LatencyModel latency(HardwareModel::ada6000(), ModelConfig::llama31_8b());
  if (args.get_switch("check-recall")) {
    return check_recall(setup, latency);
  }
  if (args.get_switch("check-prefetch")) {
    return check_prefetch(setup, latency);
  }
  if (args.get_switch("check-transfer")) {
    return check_transfer(setup, latency);
  }
  const auto fault_seed = static_cast<std::uint64_t>(args.get_index("fault-seed"));
  if (args.get_switch("check-faults")) {
    return check_faults(setup, latency, fault_seed);
  }

  bench::print_header("Serving: throughput & latency vs offered load",
                      "multi-tenant extension of Fig. 12/13 (§V-C) under a "
                      "shared fast-tier budget");

  std::cout << "sessions: " << setup.trace.num_requests
            << ", fast-tier budget: " << setup.fast_budget_bytes / 1024
            << " KiB (slice scale), per-session KV budget: "
            << setup.session.engine.budget << " tokens\n\n";

  TextTable table({"method", "load (req/s)", "tok/s", "max batch", "p50 TTFT (s)",
                   "p95 TTFT (s)", "p95 TTFT short (s)", "p50 ITL (ms)",
                   "p95 ITL (ms)", "p99 step ITL (ms)", "queue wait (s)",
                   "max queue", "preempt", "repair (ms)", "hit rate", "pf hit",
                   "pf waste", "pf mis", "pf enf", "pf rel", "dm stall (s)",
                   "link util", "late pf", "recall@B", "fanout", "wall (s)"});

  const std::string trace_path = args.get_string("trace");
  // Cells are independent simulations (own scheduler, own engines, own
  // metrics registry), so a load's methods run concurrently on host
  // threads — results stay byte-identical because every reported column
  // rides the per-scheduler virtual clock, not the host clock. Tracing
  // forces the serial sweep: the tracer ring is process-global, and a
  // concurrent cell would interleave foreign events into the trace.
  const bool threaded_cells = trace_path.empty();
  std::vector<ServingRow> rows;
  for (const double load : {2.0, 6.0, 12.0}) {
    TraceConfig trace_config = setup.trace;
    trace_config.offered_rps = load;
    const auto trace = make_poisson_trace(trace_config, setup.seed);
    const auto methods = serving_methods(setup);
    std::vector<ServingRow> load_rows(methods.size());
    std::vector<std::exception_ptr> cell_errors(methods.size());
    const auto run_cell = [&](std::size_t mi) {
      try {
        const auto& method = methods[mi];
        const bool traced = !trace_path.empty() && load == 6.0 &&
                            method.name == "ClusterKV (prefetch)";
        if (traced) {
          obs::tracer().enable();
        }
        bench::Stopwatch watch;
        BatchScheduler scheduler(trace, method.factory, setup.session, latency,
                                 method.scheduler);
        scheduler.run();
        if (traced) {
          std::ofstream out(trace_path);
          obs::tracer().write_chrome_trace(out);
          obs::tracer().disable();
          std::cerr << "  [trace] " << trace_path << "\n";
        }
        load_rows[mi] = make_serving_row(method.name, load, scheduler.metrics());
        load_rows[mi].cell_wall_s = watch.seconds();
      } catch (...) {
        cell_errors[mi] = std::current_exception();
      }
    };
    if (threaded_cells) {
      // Deliberate bench-cell concurrency: cells are independent
      // schedulers; their engine work still goes through the pool.
      // ckv-lint: allow(raw-thread) -- bench harness cells
      std::vector<std::thread> cells;
      cells.reserve(methods.size());
      for (std::size_t mi = 0; mi < methods.size(); ++mi) {
        cells.emplace_back(run_cell, mi);
      }
      for (auto& cell : cells) {
        cell.join();
      }
    } else {
      for (std::size_t mi = 0; mi < methods.size(); ++mi) {
        run_cell(mi);
      }
    }
    for (std::size_t mi = 0; mi < methods.size(); ++mi) {
      if (cell_errors[mi] != nullptr) {
        std::rethrow_exception(cell_errors[mi]);
      }
      const ServingRow& row = load_rows[mi];
      rows.push_back(row);
      table.add_row({row.method, format_double(load, 1),
                     format_double(row.tps, 1),
                     format_double(row.max_batch, 0),
                     format_double(row.p50_ttft_ms / 1000.0, 2),
                     format_double(row.p95_ttft_ms / 1000.0, 2),
                     format_double(row.p95_ttft_short_ms / 1000.0, 2),
                     format_double(row.p50_itl_ms, 1),
                     format_double(row.p95_itl_ms, 1),
                     format_double(row.p99_step_itl_ms, 1),
                     format_double(row.queue_wait_ms / 1000.0, 2),
                     std::to_string(row.max_queue_depth),
                     std::to_string(row.preemptions),
                     format_double(row.repair_ms, 1),
                     format_double(row.hit_rate, 2),
                     row.has_prefetch ? format_double(row.pf_hit, 2) : "-",
                     row.has_prefetch ? format_double(row.pf_waste, 2) : "-",
                     row.has_prefetch ? format_double(row.pf_waste_mis, 2) : "-",
                     row.has_prefetch ? format_double(row.pf_waste_enf, 2) : "-",
                     row.has_prefetch ? format_double(row.pf_waste_rel, 2) : "-",
                     row.has_engine
                         ? format_double(row.demand_stall_ms / 1000.0, 2)
                         : "-",
                     row.has_engine ? format_double(row.link_utilization, 2)
                                    : "-",
                     row.has_engine ? std::to_string(row.late_pf_tokens) : "-",
                     format_double(row.recall, 3),
                     format_double(row.fanout_fraction, 2),
                     format_double(row.cell_wall_s, 1)});
      std::cerr << "  [" << row.method << " @ " << load << " req/s] "
                << format_double(row.cell_wall_s, 1) << "s wall\n";
    }
  }
  std::cout << table.to_string();

  const FanoutScaling scaling = run_fanout_scaling(setup, latency);
  std::cout << "\nFan-out scaling (" << setup.trace.num_requests
            << " concurrent sessions, unlimited budget, " << scaling.workers
            << " workers on " << scaling.hw_cores
            << " hardware cores): advance phase "
            << format_double(scaling.serial_advance_wall_ms, 0)
            << " ms serial -> "
            << format_double(scaling.parallel_advance_wall_ms, 0)
            << " ms parallel, " << format_double(scaling.speedup, 2)
            << "x wall speedup at "
            << format_double(scaling.fanout_fraction, 2)
            << " fan-out fraction (quality byte-identical by construction; "
               "host clock, not part of the determinism contract — the "
               "speedup ceiling is the hardware core count)\n";

  // Link-bandwidth sweep: the engine row at the top load across a range of
  // wire rates. The whole point of modeling the wire explicitly — the same
  // fleet degrades as the shared link narrows, which no closed-form
  // per-session term can show. Virtual-clock columns only, so the sweep is
  // byte-identical at every worker count and safe to keep in the JSON.
  std::vector<ServingRow> sweep_rows;
  {
    const double sweep_load = 12.0;
    TraceConfig trace_config = setup.trace;
    trace_config.offered_rps = sweep_load;
    const auto trace = make_poisson_trace(trace_config, setup.seed);
    const auto methods = serving_methods(setup, /*clusterkv_only=*/true);
    const MethodRun* engine = find_method(methods, "ClusterKV (engine)");
    TextTable sweep_table({"link (GB/s)", "tok/s", "dm stall (s)", "link util",
                           "late pf", "p95 ITL (ms)"});
    for (const double gbps : {2.5, 5.0, 10.0, 25.0}) {
      BatchSchedulerConfig config = engine->scheduler;
      config.link_gbps = gbps;
      BatchScheduler scheduler(trace, engine->factory, setup.session, latency,
                               config);
      scheduler.run();
      ServingRow row = make_serving_row(engine->name, gbps, scheduler.metrics());
      sweep_table.add_row({format_double(gbps, 1), format_double(row.tps, 1),
                           format_double(row.demand_stall_ms / 1000.0, 2),
                           format_double(row.link_utilization, 2),
                           std::to_string(row.late_pf_tokens),
                           format_double(row.p95_itl_ms, 1)});
      sweep_rows.push_back(row);
    }
    std::cout << "\nLink-bandwidth sweep (ClusterKV (engine) @ "
              << format_double(sweep_load, 0)
              << " req/s): contention degradation as the shared slow->fast "
                 "wire narrows\n"
              << sweep_table.to_string();
  }

  // Chaos rows: the engine config under the seeded fault plan, one row per
  // load, against the fault-free engine row from the main table. The
  // degradation column ("degr rate") is the share of decode steps served
  // resident-only because a demand fetch exhausted its retries.
  std::vector<FaultRow> fault_rows;
  if (args.get_switch("faults")) {
    const FaultPlan chaos = FaultPlan::chaos(fault_seed);
    TextTable fault_table({"load (req/s)", "tok/s", "fault-free", "retention",
                           "faults", "recovered", "dead", "degr rate",
                           "retry (ms)", "aborts", "shed", "wire retry",
                           "wire fail", "recall@B"});
    for (const double load : {2.0, 6.0, 12.0}) {
      double fault_free_tps = 0.0;
      for (const ServingRow& row : rows) {
        if (row.method == "ClusterKV (engine)" && row.load == load) {
          fault_free_tps = row.tps;
        }
      }
      const FaultRow row =
          run_engine_cell(setup, latency, load, chaos, fault_free_tps);
      fault_table.add_row(
          {format_double(load, 1), format_double(row.tps, 1),
           format_double(row.fault_free_tps, 1), format_double(row.retention, 3),
           std::to_string(row.faults), std::to_string(row.retried_ok),
           std::to_string(row.dead_fetches), format_double(row.degraded_rate, 4),
           format_double(row.retry_ms, 1), std::to_string(row.aborts),
           std::to_string(row.shed), std::to_string(row.wire_retries),
           std::to_string(row.wire_failures), format_double(row.recall, 3)});
      fault_rows.push_back(row);
    }
    std::cout << "\nChaos rows (ClusterKV (engine) under FaultPlan::chaos("
              << fault_seed
              << ")): transient fetch faults retried with backoff, exhausted "
                 "retries degrade to resident-only selection, plus link "
                 "brownouts, mid-decode aborts and admission bursts\n"
              << fault_table.to_string();
  }

  if (args.get_switch("json")) {
    write_json(rows, sweep_rows, fault_rows, scaling, "BENCH_SERVING.json");
    std::cout << "wrote BENCH_SERVING.json\n";
  }
  return 0;
}
