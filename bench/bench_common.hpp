// Shared configuration for the paper-reproduction benches: the scaled
// simulation slice (DESIGN.md §2 scale note), the paper's method settings,
// and the factory list every figure iterates over.
#pragma once

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/full_kv.hpp"
#include "baselines/infinigen.hpp"
#include "baselines/quest.hpp"
#include "core/clusterkv_engine.hpp"
#include "model/model_config.hpp"
#include "model/procedural.hpp"

namespace ckv::bench {

/// Simulation slice for accuracy experiments: a representative subset of
/// layers/heads at the paper's context lengths (documented substitution).
inline SimShape accuracy_shape() {
  SimShape s;
  s.num_layers = 2;
  s.num_heads = 2;
  s.head_dim = 64;
  return s;
}

/// Single-layer multi-head slice for recall measurements (Fig. 11 reports
/// recall averaged over heads; no full-attention layer is involved).
inline SimShape recall_shape() {
  SimShape s;
  s.num_layers = 1;
  s.num_heads = 4;
  s.head_dim = 64;
  return s;
}

inline ProceduralParams sim_params() {
  ProceduralParams p;
  p.head_dim = 64;
  p.num_topics = 64;
  return p;
}

/// ClusterKV with the paper's defaults (§III-B, §IV-D).
inline ClusterKVConfig paper_clusterkv() {
  ClusterKVConfig c;
  c.sink_tokens = 16;
  c.tokens_per_cluster = 80;  // C0 = L/80
  c.decode_interval = 320;    // m
  c.decode_clusters = 4;      // C+
  c.cache_depth = 1;          // R
  c.kmeans_max_iterations = 12;  // quality saturates; keeps bench runtimes sane
  return c;
}

inline QuestConfig paper_quest() {
  QuestConfig q;
  q.page_size = 16;
  return q;
}

inline InfiniGenConfig paper_infinigen() {
  InfiniGenConfig i;
  i.partial_dim = 16;  // d/4 partial weights
  i.calibration_tokens = 512;
  return i;
}

struct NamedFactory {
  std::string name;
  SelectorFactory factory;
};

/// The method set of Fig. 9 / Fig. 10 / Table I, in the paper's order.
inline std::vector<NamedFactory> accuracy_methods(std::uint64_t seed) {
  return {
      {"Quest", make_quest_factory(paper_quest())},
      {"InfiniGen", make_infinigen_factory(paper_infinigen())},
      {"ClusterKV", make_clusterkv_factory(paper_clusterkv(), seed)},
      {"Full KV", make_full_kv_factory()},
  };
}

/// Wall-clock helper so bench logs show their own cost.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace ckv::bench
