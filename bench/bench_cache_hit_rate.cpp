// §V-C "Effectiveness of caching": hit rates of the cluster-granularity
// cache on a 32k-token NarrativeQA-like sample for R in {0, 1, 2} and the
// resulting decode-throughput improvement over direct CPU-memory loading.
// The paper measures 63% (R=1) and 74% (R=2) hit rates and 2.3x / 3x
// throughput improvements.
#include <iostream>

#include "bench_common.hpp"
#include "model/decode_engine.hpp"
#include "sim/latency_model.hpp"
#include "util/table.hpp"

namespace {

using namespace ckv;
using namespace ckv::bench;

struct CacheRun {
  double hit_rate = 0.0;
  double miss_rate = 1.0;
};

CacheRun run_with_depth(Index depth) {
  SimShape shape = recall_shape();
  ProceduralContextModel model(shape, sim_params(), derive_seed(31, "cache"), 32768);
  auto config = paper_clusterkv();
  config.cache_depth = depth;
  DecodeEngineConfig engine_config;
  engine_config.budget = 1024;
  engine_config.full_attention_layers = 0;
  DecodeEngine engine(model, make_clusterkv_factory(config, 31), engine_config);
  engine.run_prefill();
  for (Index s = 0; s < 64; ++s) {
    engine.decode_step(s);
  }
  CacheRun out;
  const double total =
      static_cast<double>(engine.total_cache_hits() + engine.total_fetched());
  out.hit_rate = total == 0.0 ? 0.0
                              : static_cast<double>(engine.total_cache_hits()) / total;
  out.miss_rate = 1.0 - out.hit_rate;
  return out;
}

}  // namespace

int main() {
  print_header("§V-C — cluster-granularity cache effectiveness",
               "ClusterKV §V-C (32k sample, budget 1024, R in {1, 2})");
  std::cout << std::unitbuf;  // progress lines appear as they happen
  Stopwatch watch;

  const LatencyModel latency(HardwareModel::ada6000(), ModelConfig::llama31_8b());
  const auto no_cache = run_with_depth(0);

  // Decode-throughput improvement attributed to caching: the KV-fetch path
  // (PCIe transfer + per-step indexing/sync overhead) shrinks with the hit
  // rate; compute time is unchanged. The fixed indexing share makes the
  // improvement saturate, as the paper's 2.3x/3x pair implies.
  const auto fetch_path_ms = [&latency](double miss_rate) {
    const auto step = latency.clusterkv_step(32768, 1024, miss_rate, 400);
    const double fixed = 0.11 * latency.clusterkv_step(32768, 1024, 1.0, 400).transfer_ms;
    return fixed + step.transfer_ms;
  };
  const double no_cache_path = fetch_path_ms(1.0);

  TextTable table({"R", "hit rate", "throughput gain vs no cache"});
  table.add_row({"0 (no cache)", format_double(100.0 * no_cache.hit_rate, 1) + "%",
                 "1.00x"});
  for (const Index depth : {1, 2}) {
    const auto run = run_with_depth(depth);
    const double gain = no_cache_path / fetch_path_ms(run.miss_rate);
    table.add_row({std::to_string(depth),
                   format_double(100.0 * run.hit_rate, 1) + "%",
                   format_double(gain, 2) + "x"});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "paper: 63% (R=1) and 74% (R=2) hit rates; 2.3x and 3x decode "
               "throughput vs direct CPU loads.\n"
               "R=1 is the default: retaining one step of selected KV already "
               "captures most reuse (§IV-D).\n";
  std::cout << "\n[cache bench done in " << format_double(watch.seconds(), 1) << "s]\n";
  return 0;
}
