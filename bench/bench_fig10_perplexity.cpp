// Fig. 10: language-modelling perplexity vs input length (budget 1024).
// The paper reports ClusterKV within ~0.5 of Full KV while Quest deviates
// by ~4 and InfiniGen by ~2. The corpus distribution is the full model's
// calibrated softmax (anchored to the paper's Full-KV curve); each
// method's deviation is its measured KL divergence.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "workload/pg19.hpp"

namespace {
using namespace ckv;
using namespace ckv::bench;
}  // namespace

int main() {
  print_header("Fig. 10 — PG19 perplexity vs input length",
               "ClusterKV Fig. 10 (budget 1024, input 1..32000 tokens)");
  std::cout << std::unitbuf;  // progress lines appear as they happen
  Stopwatch watch;

  PG19Config config;
  config.max_len = 32000;
  config.prompt_len = 1024;
  config.eval_stride = 2048;
  config.budget = 1024;
  config.full_attention_layers = 1;

  const auto shape = accuracy_shape();
  const auto params = sim_params();

  std::map<std::string, std::vector<PerplexityPoint>> curves;
  for (const auto& method : accuracy_methods(7)) {
    Stopwatch method_watch;
    curves[method.name] = run_pg19(method.factory, config, shape, params);
    std::cout << "[" << method.name << " evaluated in "
              << format_double(method_watch.seconds(), 1) << "s]\n";
  }
  std::cout << "\n";

  const auto& full = curves.at("Full KV");
  TextTable table({"input length", "Quest", "InfiniGen", "ClusterKV", "Full KV"});
  for (std::size_t i = 0; i < full.size(); ++i) {
    table.add_row({std::to_string(full[i].input_len),
                   format_double(curves.at("Quest")[i].perplexity, 2),
                   format_double(curves.at("InfiniGen")[i].perplexity, 2),
                   format_double(curves.at("ClusterKV")[i].perplexity, 2),
                   format_double(full[i].perplexity, 2)});
  }
  std::cout << table.to_string() << "\n";

  const auto deviation = [&](const std::string& name) {
    double worst = 0.0;
    const auto& curve = curves.at(name);
    for (std::size_t i = 0; i < full.size(); ++i) {
      worst = std::max(worst, curve[i].perplexity - full[i].perplexity);
    }
    return worst;
  };
  std::cout << "max deviation from Full KV:  Quest "
            << format_double(deviation("Quest"), 2) << "  InfiniGen "
            << format_double(deviation("InfiniGen"), 2) << "  ClusterKV "
            << format_double(deviation("ClusterKV"), 2) << "\n";
  std::cout << "paper: Quest ~4, InfiniGen ~2, ClusterKV <= 0.5\n";
  std::cout << "\n[fig10 done in " << format_double(watch.seconds(), 1) << "s]\n";
  return 0;
}
