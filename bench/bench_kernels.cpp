// Kernel-level microbenchmarks (google-benchmark) for the operations the
// paper optimizes in §IV-B/§IV-C: k-means assignment and centroid update
// (including the channel-partition trade-off P of Fig. 7), cluster
// selection + indexing, Quest page-metadata scoring, and the KV gather.
#include <benchmark/benchmark.h>

#include "baselines/quest.hpp"
#include "core/centroid_store.hpp"
#include "core/kernels.hpp"
#include "core/kmeans.hpp"
#include "core/selector_index.hpp"
#include "kvcache/kv_store.hpp"
#include "model/procedural.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace ckv;

Matrix random_keys(Index n, Index dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, dim);
  rng.fill_normal(m.flat(), 0.0, 1.0);
  return m;
}

void BM_KMeansAssignment(benchmark::State& state) {
  const Index n = state.range(0);
  const Index clusters = n / 80;
  const auto keys = random_keys(n, 64, 1);
  const auto centroids = random_keys(clusters, 64, 2);
  for (auto _ : state) {
    auto labels = assign_labels(keys, centroids, DistanceMetric::kCosine);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(state.iterations() * n * clusters);
}
BENCHMARK(BM_KMeansAssignment)->Arg(4096)->Arg(8192)->Arg(16384);

void BM_CentroidUpdatePartitions(benchmark::State& state) {
  // The Fig. 7 trade-off: channel partitions P at BlockSize-equivalent
  // granularity. Means are identical for every P; throughput differs.
  const Index partitions = state.range(0);
  const Index n = 16384;
  const auto keys = random_keys(n, 128, 3);
  Rng rng(4);
  std::vector<Index> labels(static_cast<std::size_t>(n));
  for (auto& l : labels) {
    l = rng.uniform_int(0, 199);
  }
  const Matrix previous(200, 128);
  Matrix out;
  std::vector<Index> counts;
  for (auto _ : state) {
    centroid_update(keys, labels, previous, partitions, out, counts);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CentroidUpdatePartitions)->Arg(1)->Arg(4)->Arg(16)->Arg(32)->Arg(64);

void BM_FullKMeans(benchmark::State& state) {
  const Index n = state.range(0);
  const auto keys = random_keys(n, 64, 5);
  KMeansConfig config;
  config.num_clusters = default_cluster_count(n);
  config.max_iterations = 10;
  for (auto _ : state) {
    Rng rng(6);
    auto result = kmeans_cluster(keys, config, rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FullKMeans)->Arg(2048)->Arg(8192)->Unit(benchmark::kMillisecond);

void BM_ClusterSelectionIndexing(benchmark::State& state) {
  // §IV-C: scoring C centroids, sorting, prefix sums and emitting I_T.
  const Index clusters = state.range(0);
  CentroidStore store(64);
  Rng rng(7);
  const Index tokens_per = 80;
  Matrix centroids(clusters, 64);
  rng.fill_normal(centroids.flat(), 0.0, 1.0);
  std::vector<Index> labels(static_cast<std::size_t>(clusters * tokens_per));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<Index>(i) % clusters;
  }
  store.add_clusters(centroids, labels, 0);
  const auto query = rng.unit_vector(64);

  for (auto _ : state) {
    const auto scores = store.scores(query);
    const auto selection = select_clusters(scores, store.cluster_sizes(), 1024);
    auto indexed = gather_selected_tokens(store, selection, 1024);
    benchmark::DoNotOptimize(indexed);
  }
  state.SetItemsProcessed(state.iterations() * clusters);
}
BENCHMARK(BM_ClusterSelectionIndexing)->Arg(100)->Arg(400)->Arg(800);

void BM_QuestPageScoring(benchmark::State& state) {
  // §III-D Concern 1 baseline: page-representation scoring is O(L/16).
  const Index n = state.range(0);
  ProceduralParams params;
  params.head_dim = 64;
  HeadStream stream(params, Rng(8), n);
  QuestSelector quest(64, QuestConfig{});
  quest.observe_prefill(stream.keys(), stream.values());
  const auto q = stream.query(0);
  for (auto _ : state) {
    auto sel = quest.select(q, 1024);
    benchmark::DoNotOptimize(sel);
  }
  state.SetItemsProcessed(state.iterations() * n / 16);
}
BENCHMARK(BM_QuestPageScoring)->Arg(4096)->Arg(16384);

void BM_KVGather(benchmark::State& state) {
  // The CPU->GPU gather of selected KV (simulated as a contiguous copy).
  const Index n = 32768;
  const Index budget = state.range(0);
  KVStore store(64);
  const auto keys = random_keys(n, 64, 9);
  const auto values = random_keys(n, 64, 10);
  store.append_block(keys, values);
  Rng rng(11);
  const auto pick = rng.sample_without_replacement(n, budget);
  for (auto _ : state) {
    auto gathered = store.gather(pick);
    benchmark::DoNotOptimize(gathered);
  }
  state.SetBytesProcessed(state.iterations() * budget * 64 * 2 *
                          static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_KVGather)->Arg(512)->Arg(1024)->Arg(2048);

void BM_AttentionScores(benchmark::State& state) {
  // The per-step exact attention-weight pass a recallable method avoids
  // (O(L d), §II-C).
  const Index n = state.range(0);
  KVStore store(64);
  const auto keys = random_keys(n, 64, 12);
  store.append_block(keys, keys);
  Rng rng(13);
  const auto q = rng.unit_vector(64);
  for (auto _ : state) {
    auto scores = store.attention_scores(q);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AttentionScores)->Arg(8192)->Arg(32768);

}  // namespace

BENCHMARK_MAIN();
