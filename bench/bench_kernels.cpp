// Kernel-level microbenchmarks for the operations the paper optimizes in
// §IV-B/§IV-C: batched scoring (clustering assignment, cluster selection,
// attention) against the scalar double-accumulating reference loops the
// batched kernels replaced, plus timing-only rows for the centroid-update
// channel-partition trade-off (Fig. 7), full k-means, cluster selection +
// indexing, and Quest page scoring.
//
//   bench_kernels            human-readable table (ns/score, GB/s, speedup)
//   bench_kernels --json     also writes BENCH_KERNELS.json (machine-readable
//                            perf trajectory across PRs)
//   bench_kernels --check    CI smoke: every batched kernel must be at least
//                            as fast as its scalar reference (exit 1 if not)
#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/quest.hpp"
#include "bench_common.hpp"
#include "core/centroid_store.hpp"
#include "core/kernels.hpp"
#include "core/kmeans.hpp"
#include "core/selector_index.hpp"
#include "kvcache/kv_store.hpp"
#include "model/procedural.hpp"
#include "tensor/rng.hpp"
#include "tensor/vec_ops.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace ckv;
using bench::Stopwatch;

Matrix random_keys(Index n, Index dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, dim);
  rng.fill_normal(m.flat(), 0.0, 1.0);
  return m;
}

/// Times fn: one warmup call, then repeats until `min_seconds` of wall
/// time, returning mean ns per call.
double ns_per_call(const std::function<void()>& fn, double min_seconds) {
  fn();  // warmup
  long calls = 0;
  const Stopwatch watch;
  do {
    fn();
    ++calls;
  } while (watch.seconds() < min_seconds);
  return watch.seconds() * 1e9 / static_cast<double>(calls);
}

// ---- scalar reference loops (the pre-batched implementations) --------------

/// Writes into a caller-owned buffer like the batched kernel does, so the
/// comparison is kernel-vs-kernel, not kernel-plus-allocation.
void scalar_scores(const Matrix& rows, std::span<const float> query,
                   DistanceMetric metric, float scale, std::span<float> out) {
  for (Index r = 0; r < rows.rows(); ++r) {
    out[static_cast<std::size_t>(r)] =
        static_cast<float>(similarity(metric, query, rows.row(r))) * scale;
  }
}

std::vector<Index> scalar_assign(const Matrix& keys, const Matrix& centroids,
                                 DistanceMetric metric) {
  const Index c_count = centroids.rows();
  const Index dim = keys.cols();
  std::vector<double> inv_norm(static_cast<std::size_t>(c_count), 1.0);
  std::vector<double> half_norm_sq(static_cast<std::size_t>(c_count), 0.0);
  for (Index c = 0; c < c_count; ++c) {
    const double norm = norm2(centroids.row(c));
    inv_norm[static_cast<std::size_t>(c)] = norm > 0.0 ? 1.0 / norm : 0.0;
    half_norm_sq[static_cast<std::size_t>(c)] = 0.5 * norm * norm;
  }
  std::vector<Index> labels(static_cast<std::size_t>(keys.rows()), 0);
  for (Index i = 0; i < keys.rows(); ++i) {
    const float* key = keys.row(i).data();
    double best = -1e300;
    Index best_c = 0;
    for (Index c = 0; c < c_count; ++c) {
      const float* cen = centroids.row(c).data();
      double acc = 0.0;
      for (Index k = 0; k < dim; ++k) {
        acc += static_cast<double>(key[k]) * static_cast<double>(cen[k]);
      }
      double score = acc;
      if (metric == DistanceMetric::kCosine) {
        score = acc * inv_norm[static_cast<std::size_t>(c)];
      } else if (metric == DistanceMetric::kL2) {
        score = acc - half_norm_sq[static_cast<std::size_t>(c)];
      }
      if (score > best) {
        best = score;
        best_c = c;
      }
    }
    labels[static_cast<std::size_t>(i)] = best_c;
  }
  return labels;
}

void scalar_scores_at(const Matrix& rows, std::span<const Index> positions,
                      std::span<const float> query, float scale,
                      std::span<float> out) {
  for (std::size_t i = 0; i < positions.size(); ++i) {
    out[i] = static_cast<float>(dot(query, rows.row(positions[i]))) * scale;
  }
}

// ---- benchmark rows ---------------------------------------------------------

struct Row {
  std::string kernel;
  std::string metric;   ///< "-" for timing-only rows
  Index n = 0;          ///< scores (or items) per call
  Index dim = 0;
  double scalar_ns = 0;   ///< ns per call of the scalar reference (0 = none)
  double batched_ns = 0;  ///< ns per call of the batched kernel
  double bytes_per_call = 0;

  [[nodiscard]] double speedup() const {
    return scalar_ns > 0 ? scalar_ns / batched_ns : 0.0;
  }
  [[nodiscard]] double batched_ns_per_score() const {
    return batched_ns / static_cast<double>(n);
  }
  [[nodiscard]] double gbps() const {
    return bytes_per_call / batched_ns;  // bytes/ns == GB/s
  }
};

Row score_row(const std::string& kernel, DistanceMetric metric, const Matrix& rows,
              std::span<const float> query, double min_seconds) {
  Row row;
  row.kernel = kernel;
  row.metric = to_string(metric);
  row.n = rows.rows();
  row.dim = rows.cols();
  row.bytes_per_call =
      static_cast<double>(rows.rows() * rows.cols()) * sizeof(float);
  std::vector<float> out(static_cast<std::size_t>(rows.rows()));
  row.scalar_ns = ns_per_call(
      [&] { scalar_scores(rows, query, metric, 1.0f, out); }, min_seconds);
  row.batched_ns =
      ns_per_call([&] { batched_scores(rows, query, metric, out); }, min_seconds);
  return row;
}

std::string json_number(double v) {
  std::ostringstream s;
  s << v;
  return s.str();
}

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"threads\": " << parallel_worker_count() << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"metric\": \"" << r.metric
        << "\", \"n\": " << r.n << ", \"dim\": " << r.dim
        << ", \"scalar_ns_per_score\": "
        << json_number(r.scalar_ns > 0 ? r.scalar_ns / static_cast<double>(r.n)
                                            : 0.0)
        << ", \"batched_ns_per_score\": " << json_number(r.batched_ns_per_score())
        << ", \"speedup\": " << json_number(r.speedup())
        << ", \"batched_gbps\": " << json_number(r.gbps()) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Kernel microbenchmarks: batched SIMD scoring vs the scalar reference "
      "loops (assignment, selection, attention), plus clustering kernels.");
  args.add_switch("json", "also write BENCH_KERNELS.json to the working directory");
  args.add_switch("check",
                  "CI smoke: exit 1 unless every batched kernel >= scalar throughput");
  args.add_option("min-time", "0",
                  "seconds of wall time per measurement (0 = auto: 0.2, or "
                  "0.05 under --check)");
  args.add_option("threads", "0", "worker override (0 = CKV_THREADS / hardware)");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << args.help();
    return 2;
  }

  const bool check = args.get_switch("check");
  const double requested = args.get_double("min-time");
  const double min_seconds = requested > 0 ? requested : (check ? 0.05 : 0.2);
  if (args.get_index("threads") > 0) {
    set_parallel_workers(static_cast<int>(args.get_index("threads")));
  }

  bench::print_header("Kernel microbenchmarks: batched SIMD vs scalar reference",
                      "§IV-B/§IV-C kernel costs (Fig. 7 partitions, selection, "
                      "attention scoring)");
  std::cout << "workers: " << parallel_worker_count()
            << " (CKV_THREADS or --threads to override)\n\n";

  const Index dim = 64;
  std::vector<Row> rows;

  // Cluster-selection scoring: one query against C centroids, per metric.
  {
    const Matrix centroids = random_keys(800, dim, 2);
    Rng rng(7);
    const auto query = rng.unit_vector(dim);
    for (const auto metric : {DistanceMetric::kCosine, DistanceMetric::kL2,
                              DistanceMetric::kInnerProduct}) {
      rows.push_back(score_row("centroid-scores", metric, centroids, query, min_seconds));
    }
  }

  // k-means assignment: n keys against C centroids (the §III-D Concern 1
  // hot loop), scalar double-accumulating argmax vs batched_argmax.
  {
    const Index n = 8192;
    const auto keys = random_keys(n, dim, 1);
    const auto centroids = random_keys(n / 80, dim, 2);
    Row row;
    row.kernel = "assignment-argmax";
    row.metric = to_string(DistanceMetric::kCosine);
    row.n = n * centroids.rows();
    row.dim = dim;
    row.bytes_per_call = static_cast<double>(n * centroids.rows() * dim) * sizeof(float);
    std::vector<Index> labels;
    row.scalar_ns = ns_per_call(
        [&] { labels = scalar_assign(keys, centroids, DistanceMetric::kCosine); },
        min_seconds);
    row.batched_ns = ns_per_call(
        [&] { labels = batched_argmax(keys, centroids, DistanceMetric::kCosine); },
        min_seconds);
    rows.push_back(row);
  }

  // Per-step attention scores over the full context (§II-C, O(L d)).
  {
    const Index n = 32768;
    KVStore store(dim);
    const auto keys = random_keys(n, dim, 12);
    store.append_block(keys, keys);
    Rng rng(13);
    const auto q = rng.unit_vector(dim);
    const float inv_sqrt_d = static_cast<float>(1.0 / std::sqrt(double(dim)));
    Row row;
    row.kernel = "attention-scores";
    row.metric = "ip";
    row.n = n;
    row.dim = dim;
    row.bytes_per_call = static_cast<double>(n * dim) * sizeof(float);
    std::vector<float> out;
    // Both lanes allocate their result vector (attention_scores returns a
    // fresh vector), so the comparison stays like for like.
    row.scalar_ns = ns_per_call(
        [&] {
          std::vector<float> scores(static_cast<std::size_t>(n));
          for (Index i = 0; i < n; ++i) {
            scores[static_cast<std::size_t>(i)] =
                static_cast<float>(dot(q, keys.row(i))) * inv_sqrt_d;
          }
          out.swap(scores);
        },
        min_seconds);
    row.batched_ns = ns_per_call([&] { auto s = store.attention_scores(q); out.swap(s); },
                                 min_seconds);
    rows.push_back(row);
  }

  // Gathered attention scores over a selected subset (post-selection pass).
  {
    const Index n = 32768;
    const Index budget = 2048;
    const auto keys = random_keys(n, dim, 9);
    Rng rng(11);
    const auto pick = rng.sample_without_replacement(n, budget);
    const auto q = rng.unit_vector(dim);
    Row row;
    row.kernel = "attention-scores-at";
    row.metric = "ip";
    row.n = budget;
    row.dim = dim;
    row.bytes_per_call = static_cast<double>(budget * dim) * sizeof(float);
    std::vector<float> out(static_cast<std::size_t>(budget));
    row.scalar_ns = ns_per_call(
        [&] { scalar_scores_at(keys, pick, q, 1.0f, out); }, min_seconds);
    row.batched_ns =
        ns_per_call([&] { batched_dot_at(keys, pick, q, out); }, min_seconds);
    rows.push_back(row);
  }

  // The CPU->GPU gather of selected KV (simulated as a contiguous copy);
  // timing-only, tracked for the BENCH_KERNELS.json trend.
  {
    const Index n = 32768;
    const Index budget = 2048;
    KVStore store(dim);
    const auto keys = random_keys(n, dim, 9);
    const auto values = random_keys(n, dim, 10);
    store.append_block(keys, values);
    Rng rng(11);
    const auto pick = rng.sample_without_replacement(n, budget);
    Row row;
    row.kernel = "kv-gather";
    row.metric = "-";
    row.n = budget;
    row.dim = dim;
    row.bytes_per_call = static_cast<double>(budget * dim) * 2 * sizeof(float);
    row.batched_ns = ns_per_call(
        [&] {
          auto gathered = store.gather(pick);
          if (gathered.first.rows() != budget) {
            std::abort();
          }
        },
        min_seconds);
    rows.push_back(row);
  }

  // Timing-only rows (no scalar twin): the Fig. 7 centroid-update
  // partition sweep, full k-means, selection + indexing, Quest paging.
  for (const Index partitions : {Index{1}, Index{16}, Index{64}}) {
    const Index n = 16384;
    const auto keys = random_keys(n, 128, 3);
    Rng rng(4);
    std::vector<Index> labels(static_cast<std::size_t>(n));
    for (auto& l : labels) {
      l = rng.uniform_int(0, 199);
    }
    const Matrix previous(200, 128);
    Matrix out;
    std::vector<Index> counts;
    Row row;
    row.kernel = "centroid-update-P" + std::to_string(partitions);
    row.metric = "-";
    row.n = n;
    row.dim = 128;
    row.bytes_per_call = static_cast<double>(n * 128) * sizeof(float);
    row.batched_ns = ns_per_call(
        [&] { centroid_update(keys, labels, previous, partitions, out, counts); },
        min_seconds);
    rows.push_back(row);
  }
  {
    const Index n = 8192;
    const auto keys = random_keys(n, dim, 5);
    KMeansConfig config;
    config.num_clusters = default_cluster_count(n);
    config.max_iterations = 10;
    Row row;
    row.kernel = "kmeans-full";
    row.metric = to_string(config.metric);
    row.n = n;
    row.dim = dim;
    row.bytes_per_call = static_cast<double>(n * dim) * sizeof(float);
    row.batched_ns = ns_per_call(
        [&] {
          Rng rng(6);
          auto result = kmeans_cluster(keys, config, rng);
          if (result.labels.empty()) {
            std::abort();
          }
        },
        min_seconds);
    rows.push_back(row);
  }
  {
    const Index clusters = 400;
    CentroidStore store(dim);
    Rng rng(7);
    const Index tokens_per = 80;
    Matrix centroids(clusters, dim);
    rng.fill_normal(centroids.flat(), 0.0, 1.0);
    std::vector<Index> labels(static_cast<std::size_t>(clusters * tokens_per));
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = static_cast<Index>(i) % clusters;
    }
    store.add_clusters(centroids, labels, 0);
    const auto query = rng.unit_vector(dim);
    Row row;
    row.kernel = "selection-indexing";
    row.metric = "ip";
    row.n = clusters;
    row.dim = dim;
    row.bytes_per_call = static_cast<double>(clusters * dim) * sizeof(float);
    row.batched_ns = ns_per_call(
        [&] {
          const auto scores = store.scores(query);
          const auto selection = select_clusters(scores, store.cluster_sizes(), 1024);
          auto indexed = gather_selected_tokens(store, selection, 1024);
          if (indexed.token_positions.empty()) {
            std::abort();
          }
        },
        min_seconds);
    rows.push_back(row);
  }
  {
    const Index n = 16384;
    ProceduralParams params;
    params.head_dim = dim;
    HeadStream stream(params, Rng(8), n);
    QuestSelector quest(dim, QuestConfig{});
    quest.observe_prefill(stream.keys(), stream.values());
    const auto q = stream.query(0);
    Row row;
    row.kernel = "quest-select";
    row.metric = "-";
    row.n = n / 16;
    row.dim = dim;
    row.bytes_per_call = static_cast<double>(n / 16 * 2 * dim) * sizeof(float);
    row.batched_ns = ns_per_call(
        [&] {
          auto sel = quest.select(q, 1024);
          if (sel.indices.empty()) {
            std::abort();
          }
        },
        min_seconds);
    rows.push_back(row);
  }

  TextTable table({"kernel", "metric", "scores/call", "scalar ns/score",
                   "batched ns/score", "speedup", "batched GB/s"});
  for (const Row& row : rows) {
    table.add_row(
        {row.kernel, row.metric, std::to_string(row.n),
         row.scalar_ns > 0
             ? format_double(row.scalar_ns / static_cast<double>(row.n), 2)
             : "-",
         format_double(row.batched_ns_per_score(), 2),
         row.scalar_ns > 0 ? format_double(row.speedup(), 2) + "x" : "-",
         format_double(row.gbps(), 2)});
  }
  std::cout << table.to_string() << "\n";

  if (args.get_switch("json")) {
    write_json(rows, "BENCH_KERNELS.json");
    std::cout << "wrote BENCH_KERNELS.json\n";
  }

  if (check) {
    bool ok = true;
    for (const Row& row : rows) {
      if (row.scalar_ns > 0 && row.batched_ns > row.scalar_ns) {
        std::cout << "CHECK FAIL: " << row.kernel << " (" << row.metric
                  << ") batched slower than scalar (" << format_double(row.speedup(), 2)
                  << "x)\n";
        ok = false;
      }
    }
    std::cout << (ok ? "CHECK PASS: batched >= scalar throughput on every "
                       "scalar-vs-batched row\n"
                     : "");
    return ok ? 0 : 1;
  }
  return 0;
}
