// Synthetic LongBench-like task suite (DESIGN.md §2). Each task plants
// "needle" evidence groups in a long context; during the answer phase the
// model's queries focus on those groups, so a method's score is driven by
// how well its selection recalls the evidence — the same quantity the
// paper's LongBench evaluation measures. Scores are anchored so the full
// KV cache reproduces the paper's per-task Full-KV score.
#pragma once

#include <string>
#include <vector>

#include "core/kv_selector.hpp"
#include "model/model_config.hpp"
#include "model/procedural.hpp"
#include "util/common.hpp"

namespace ckv {

struct LongBenchTask {
  std::string name;
  std::string metric;        ///< "F1" or "ROUGE-L" (display only)
  Index context_len = 0;
  Index answer_steps = 0;    ///< decode steps scored as the answer
  Index needle_groups = 0;   ///< evidence groups (multi-hop tasks have >1)
  Index needle_group_size = 0;
  double full_kv_score = 0.0;  ///< paper's Fig. 9 Full-KV anchor
  double difficulty = 1.0;     ///< quality -> score exponent
};

/// The eight LongBench datasets of §V-A with context-length profiles and
/// Full-KV anchors read off the paper's Fig. 9.
std::vector<LongBenchTask> longbench_suite();

/// A scaled-down suite (shorter contexts) with the same structure, for
/// tests and quick examples.
std::vector<LongBenchTask> longbench_suite_small();

struct TaskRunResult {
  double score = 0.0;
  double quality = 0.0;        ///< mean blended quality over answer steps
  double mean_recall = 0.0;
  double mean_coverage = 0.0;
  std::int64_t tokens_fetched = 0;
  std::int64_t tokens_cache_hit = 0;
};

struct TaskRunOptions {
  SimShape shape;
  ProceduralParams params;
  Index budget = 1024;
  Index full_attention_layers = 1;
  bool attention_feedback = false;  ///< enable for H2O
  std::uint64_t seed = 2025;
};

/// Runs one method on one task and returns its score.
TaskRunResult run_longbench_task(const LongBenchTask& task,
                                 const SelectorFactory& factory,
                                 const TaskRunOptions& options);

}  // namespace ckv
