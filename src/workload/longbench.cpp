#include "workload/longbench.hpp"

#include <algorithm>

#include "metrics/metrics.hpp"
#include "model/decode_engine.hpp"
#include "tensor/rng.hpp"

namespace ckv {

std::vector<LongBenchTask> longbench_suite() {
  // Context lengths follow the LongBench profiles (§V-A: up to 32k).
  // full_kv_score anchors are the Full KV levels visible in Fig. 9;
  // difficulty encodes each task's budget sensitivity (lower = scores
  // collapse faster when selection quality drops), calibrated against the
  // relative drop each task shows at the 256-token budget in Fig. 9
  // (multi-hop QA degrades hardest, summarization degrades least).
  return {
      {"2WikiMQA", "F1", 16384, 48, 2, 24, 48.0, 2.8},
      {"TriviaQA", "F1", 8192, 48, 1, 24, 89.0, 4.5},
      {"HotpotQA", "F1", 16384, 48, 2, 24, 57.0, 4.0},
      {"MultiFieldQA", "F1", 8192, 48, 1, 24, 50.0, 3.2},
      {"MuSiQue", "F1", 24576, 64, 3, 20, 32.0, 3.0},
      {"NarrativeQA", "F1", 32768, 64, 2, 20, 25.0, 3.2},
      {"Qasper", "F1", 8192, 48, 2, 24, 41.0, 4.2},
      {"GovReport", "ROUGE-L", 16384, 64, 4, 24, 31.0, 6.0},
  };
}

std::vector<LongBenchTask> longbench_suite_small() {
  return {
      {"2WikiMQA-s", "F1", 2048, 16, 2, 12, 48.0, 2.8},
      {"TriviaQA-s", "F1", 1024, 16, 1, 12, 89.0, 4.5},
      {"HotpotQA-s", "F1", 2048, 16, 2, 12, 57.0, 4.0},
      {"GovReport-s", "ROUGE-L", 2048, 16, 3, 12, 31.0, 6.0},
  };
}

TaskRunResult run_longbench_task(const LongBenchTask& task,
                                 const SelectorFactory& factory,
                                 const TaskRunOptions& options) {
  expects(task.context_len > 0 && task.answer_steps > 0,
          "run_longbench_task: task must have context and answer steps");

  ProceduralContextModel model(options.shape, options.params,
                               derive_seed(options.seed, "task/" + task.name),
                               task.context_len);

  // Plant needle groups at deterministic, spread-out positions in the
  // middle 80% of the context, and pin the query focus to group g during
  // its slice of the answer phase (multi-hop tasks walk the groups).
  Rng placement(derive_seed(options.seed, "placement/" + task.name));
  const Index usable_begin = task.context_len / 10;
  const Index usable_end = task.context_len - task.context_len / 10;
  const Index groups = std::max<Index>(1, task.needle_groups);
  const Index span = (usable_end - usable_begin) / groups;
  const Index steps_per_group = task.answer_steps / groups;
  for (Index g = 0; g < groups; ++g) {
    const Index lo = usable_begin + g * span;
    const Index hi = std::min<Index>(usable_end, lo + span);
    const Index start =
        placement.uniform_int(lo, std::max<Index>(lo, hi - task.needle_group_size - 1));
    std::vector<Index> positions;
    for (Index i = 0; i < task.needle_group_size; ++i) {
      positions.push_back(std::min<Index>(start + i, task.context_len - 1));
    }
    const Index step_begin = g * steps_per_group;
    const Index step_end =
        (g == groups - 1) ? task.answer_steps : (g + 1) * steps_per_group;
    model.pin_focus(step_begin, step_end, positions);
  }

  DecodeEngineConfig engine_config;
  engine_config.budget = options.budget;
  engine_config.full_attention_layers = options.full_attention_layers;
  engine_config.attention_feedback = options.attention_feedback;
  DecodeEngine engine(model, factory, engine_config);
  engine.run_prefill();

  RunningStat quality;
  for (Index s = 0; s < task.answer_steps; ++s) {
    const auto step = engine.decode_step(s);
    quality.add(blended_quality(step.mean_recall, step.mean_coverage));
  }

  TaskRunResult result;
  result.quality = quality.mean();
  result.mean_recall = engine.mean_recall();
  result.mean_coverage = engine.mean_coverage();
  result.score = quality_to_score(result.quality, task.full_kv_score, task.difficulty);
  result.tokens_fetched = engine.total_fetched();
  result.tokens_cache_hit = engine.total_cache_hits();
  return result;
}

}  // namespace ckv
