#include "workload/pg19.hpp"

#include <cmath>

#include "metrics/perplexity.hpp"
#include "model/lm_head.hpp"
#include "model/selector_bank.hpp"
#include "tensor/softmax.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {

namespace {

/// Entropy (nats) of softmax(logits / t).
double entropy_at_temperature(std::span<const float> logits, double t) {
  std::vector<float> scaled(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    scaled[i] = static_cast<float>(static_cast<double>(logits[i]) / t);
  }
  softmax_in_place(scaled);
  return entropy(scaled);
}

/// Concatenated last-layer features over the first `prefix_len` tokens:
/// per head, the attention output (exact when selected == nullptr, else
/// restricted to the selected positions) plus the residual-stream
/// contribution of the current token (its value vector), which is method-
/// independent — as in a real transformer, attention refines the residual
/// stream rather than replacing it, bounding the damage of a bad
/// selection.
std::vector<float> layer_features(ProceduralContextModel& model, Index layer,
                                  Index query_step, Index prefix_len,
                                  const std::vector<std::vector<Index>>* selected) {
  std::vector<float> features;
  for (Index h = 0; h < model.shape().num_heads; ++h) {
    auto& stream = model.head(layer, h);
    const auto query = stream.query(query_step);
    const auto scores = stream.attention_scores(query, prefix_len);
    std::vector<float> out(static_cast<std::size_t>(model.shape().head_dim));
    if (selected == nullptr) {
      std::vector<float> probs = scores;
      softmax_in_place(probs);
      fill(out, 0.0f);
      for (Index t = 0; t < prefix_len; ++t) {
        axpy(probs[static_cast<std::size_t>(t)], stream.values().row(t), out);
      }
    } else {
      const auto& indices = (*selected)[static_cast<std::size_t>(h)];
      std::vector<float> sel_scores(indices.size());
      for (std::size_t i = 0; i < indices.size(); ++i) {
        sel_scores[i] = scores[static_cast<std::size_t>(indices[i])];
      }
      attention_output(sel_scores, indices, stream.values(), out);
    }
    add_in_place(out, stream.values().row(prefix_len - 1));  // residual stream
    features.insert(features.end(), out.begin(), out.end());
  }
  return features;
}

/// Cross-entropy of the method distribution against the full distribution
/// at the calibrated temperature.
double cross_entropy_nll(std::span<const float> full_logits,
                         std::span<const float> method_logits, double temperature) {
  std::vector<float> full_probs(full_logits.size());
  for (std::size_t i = 0; i < full_logits.size(); ++i) {
    full_probs[i] =
        static_cast<float>(static_cast<double>(full_logits[i]) / temperature);
  }
  softmax_in_place(full_probs);
  std::vector<float> method_scaled(method_logits.size());
  for (std::size_t i = 0; i < method_logits.size(); ++i) {
    method_scaled[i] =
        static_cast<float>(static_cast<double>(method_logits[i]) / temperature);
  }
  const auto method_log_probs = log_softmax(method_scaled);
  double nll = 0.0;
  for (std::size_t i = 0; i < full_probs.size(); ++i) {
    nll -= static_cast<double>(full_probs[i]) *
           static_cast<double>(method_log_probs[i]);
  }
  return nll;
}

}  // namespace

double calibrate_temperature(std::span<const float> logits, double target_ppl) {
  expects(logits.size() >= 2, "calibrate_temperature: need >= 2 logits");
  expects(target_ppl > 1.0 &&
              target_ppl < static_cast<double>(logits.size()),
          "calibrate_temperature: target ppl out of achievable range");
  const double target_entropy = std::log(target_ppl);
  double lo = 1e-4;
  double hi = 1e4;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    if (entropy_at_temperature(logits, mid) < target_entropy) {
      lo = mid;  // entropy increases with temperature
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

std::vector<PerplexityPoint> run_pg19(const SelectorFactory& factory,
                                      const PG19Config& config, const SimShape& shape,
                                      const ProceduralParams& params) {
  expects(config.prompt_len > 0 && config.max_len > config.prompt_len,
          "run_pg19: need max_len > prompt_len > 0");
  expects(config.eval_stride > 0, "run_pg19: eval_stride must be positive");

  // One underlying corpus: keys/values for the longest input; each
  // checkpoint treats the leading L tokens as the prompt, mirroring the
  // paper's "input lengths ranging from 1 to 32000 tokens".
  ProceduralContextModel model(shape, params, derive_seed(config.seed, "pg19"),
                               config.max_len + kEvalWindow);

  const Index feature_dim = shape.num_heads * shape.head_dim;
  const LMHead lm_head(config.vocab_size, feature_dim,
                       Rng(derive_seed(config.seed, "lm-head")));
  const Index last_layer = shape.num_layers - 1;
  const bool last_layer_selects = last_layer >= config.full_attention_layers;

  std::vector<PerplexityPoint> points;
  // Cumulative meter: the paper's perplexity at input length L averages
  // the NLL over the whole prefix, so one hard region cannot dominate.
  PerplexityMeter meter;
  Index query_step = 0;
  for (Index input_len = config.prompt_len; input_len <= config.max_len;
       input_len += config.eval_stride) {
    // Fresh per-checkpoint selectors prefilled with the length-L prefix
    // (C0 = L/80 clusters for ClusterKV, pages for Quest, ...). Only the
    // last layer's heads select in this harness, so only they get
    // selectors — earlier layers use exact attention regardless.
    SelectorBank bank(1, shape.num_heads, shape.head_dim, factory);
    for (Index h = 0; h < shape.num_heads; ++h) {
      const auto& stream = model.head(last_layer, h);
      bank.at(0, h).observe_prefill(stream.keys().row_slice(0, input_len),
                                    stream.values().row_slice(0, input_len));
    }

    for (Index w = 0; w < kEvalWindow; ++w, ++query_step) {
      const Index prefix = input_len + w;
      // The token at position `prefix` joins the context before its query
      // is issued (it is ClusterKV's pending token / Quest's tail page).
      for (Index h = 0; h < shape.num_heads; ++h) {
        const auto& stream = model.head(last_layer, h);
        bank.at(0, h).observe_decode(stream.keys().row(prefix),
                                     stream.values().row(prefix));
      }
      const Index attended = prefix + 1;

      const auto full_features =
          layer_features(model, last_layer, query_step, attended, nullptr);
      const auto full_logits = lm_head.logits(full_features);

      const double progress = static_cast<double>(input_len) /
                              static_cast<double>(config.max_len);
      const double target_ppl =
          config.full_ppl_short +
          (config.full_ppl_long - config.full_ppl_short) * progress;
      const double temperature = calibrate_temperature(full_logits, target_ppl);

      std::vector<float> method_logits;
      if (last_layer_selects) {
        std::vector<std::vector<Index>> selected;
        selected.reserve(static_cast<std::size_t>(shape.num_heads));
        for (Index h = 0; h < shape.num_heads; ++h) {
          auto& stream = model.head(last_layer, h);
          const auto query = stream.query(query_step);
          selected.push_back(bank.at(0, h).select(query, config.budget).indices);
        }
        method_logits = lm_head.logits(
            layer_features(model, last_layer, query_step, attended, &selected));
      } else {
        method_logits = full_logits;
      }
      meter.add_nll(cross_entropy_nll(full_logits, method_logits, temperature));
    }
    points.push_back({input_len, meter.perplexity()});
  }
  return points;
}

}  // namespace ckv
