// Clang thread-safety (capability) annotations for the repo's concurrency
// contract, compiled to nothing under gcc. Under clang the CI leg builds
// with -Wthread-safety -Werror, so a write to a CKV_GUARDED_BY member
// without its capability, or a call to a CKV_REQUIRES function outside the
// right section, is a *compile error* — the determinism substrate
// (docs/PERFORMANCE.md) is enforced before any test schedules a race.
//
// Two kinds of capability are used in this codebase:
//
//  1. Real locks — ckv::Mutex / ckv::LockGuard / ckv::UniqueLock wrap the
//     std primitives with acquire/release annotations, so the analysis
//     tracks which mutex protects which member (obs::Tracer's ring, the
//     worker pool's job state).
//
//  2. ExclusiveContext — a capability with *no runtime lock*, modeling
//     state that is externally synchronized by design: single-owner
//     objects (TieredKVStore belongs to one session), or state confined
//     to a serial phase (BatchScheduler's commit phase, MetricsRegistry
//     on the scheduler thread). Public entry points claim the context
//     with a scoped ExclusiveLock (a no-op at runtime); internal helpers
//     declare CKV_REQUIRES on it. The analysis then proves that no code
//     path — today's or a future refactor's — touches the guarded state
//     without consciously claiming exclusivity, which is exactly the
//     contract the scheduler's parallel fan-out depends on.
//
// The full capability model is documented in docs/STATIC_ANALYSIS.md.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define CKV_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define CKV_THREAD_ANNOTATION__(x)  // gcc: annotations compile away
#endif

/// Declares a class to be a capability (lockable) type.
#define CKV_CAPABILITY(x) CKV_THREAD_ANNOTATION__(capability(x))
/// Declares an RAII class whose lifetime holds a capability.
#define CKV_SCOPED_CAPABILITY CKV_THREAD_ANNOTATION__(scoped_lockable)
/// The member is protected by the given capability.
#define CKV_GUARDED_BY(x) CKV_THREAD_ANNOTATION__(guarded_by(x))
/// The pointee is protected by the given capability.
#define CKV_PT_GUARDED_BY(x) CKV_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Lock-ordering documentation (checked under -Wthread-safety-beta).
#define CKV_ACQUIRED_BEFORE(...) \
  CKV_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define CKV_ACQUIRED_AFTER(...) \
  CKV_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
/// The function must be called with the capability held (and keeps it).
#define CKV_REQUIRES(...) \
  CKV_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define CKV_REQUIRES_SHARED(...) \
  CKV_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
/// The function acquires the capability (its own, or the named one).
#define CKV_ACQUIRE(...) \
  CKV_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define CKV_ACQUIRE_SHARED(...) \
  CKV_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
/// The function releases the capability.
#define CKV_RELEASE(...) \
  CKV_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define CKV_RELEASE_SHARED(...) \
  CKV_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
/// The function acquires the capability iff it returns the given value.
#define CKV_TRY_ACQUIRE(...) \
  CKV_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
/// The function must be called *without* the capability held.
#define CKV_EXCLUDES(...) CKV_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (no acquire emitted).
#define CKV_ASSERT_CAPABILITY(x) CKV_THREAD_ANNOTATION__(assert_capability(x))
/// The function returns a reference to the given capability.
#define CKV_RETURN_CAPABILITY(x) CKV_THREAD_ANNOTATION__(lock_returned(x))
/// Escape hatch: the function's body is intentionally unchecked. Every use
/// must carry a comment explaining the synchronization protocol that makes
/// it sound (see docs/STATIC_ANALYSIS.md).
#define CKV_NO_THREAD_SAFETY_ANALYSIS \
  CKV_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace ckv {

/// std::mutex with capability annotations: members it protects declare
/// CKV_GUARDED_BY(mutex_), and the analysis verifies every access happens
/// under a LockGuard/UniqueLock (or in a CKV_REQUIRES function).
class CKV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CKV_ACQUIRE() { raw_.lock(); }
  void unlock() CKV_RELEASE() { raw_.unlock(); }
  bool try_lock() CKV_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class UniqueLock;
  std::mutex raw_;
};

/// std::lock_guard equivalent over ckv::Mutex.
class CKV_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) CKV_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() CKV_RELEASE() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// std::unique_lock equivalent over ckv::Mutex, for condition-variable
/// waits (CondVar::wait needs a lock it can drop and retake).
class CKV_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) CKV_ACQUIRE(mutex) : lock_(mutex.raw_) {}
  ~UniqueLock() CKV_RELEASE() {}
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over ckv::UniqueLock. wait() drops and retakes
/// the lock internally; the analysis treats the capability as held across
/// the call (the standard modeling — guarded state must be re-checked
/// after wait returns, which the wait loops do by construction).
class CondVar {
 public:
  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A capability with no runtime lock: models *externally synchronized*
/// state. Acquiring it costs nothing and synchronizes nothing — it is a
/// purely static claim ("this code runs while the object is exclusively
/// owned / inside the serial phase") that lets CKV_GUARDED_BY members be
/// checked on classes whose thread-safety is a usage contract rather than
/// an internal lock. The claim itself is the documentation; the analysis
/// enforces that every touch of the guarded state makes it.
class CKV_CAPABILITY("exclusive context") ExclusiveContext {
 public:
  ExclusiveContext() = default;
  ExclusiveContext(const ExclusiveContext&) = delete;
  ExclusiveContext& operator=(const ExclusiveContext&) = delete;
  // Stateless, so moving is a no-op; movable so owning classes (e.g.
  // ServeMetrics' registry) keep their defaulted move operations.
  ExclusiveContext(ExclusiveContext&&) noexcept {}
  ExclusiveContext& operator=(ExclusiveContext&&) noexcept { return *this; }

  void acquire() CKV_ACQUIRE() {}
  void release() CKV_RELEASE() {}
};

/// Scoped claim of an ExclusiveContext (no-op at runtime).
class CKV_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(ExclusiveContext& context) CKV_ACQUIRE(context)
      : context_(context) {
    context_.acquire();
  }
  ~ExclusiveLock() CKV_RELEASE() { context_.release(); }
  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  ExclusiveContext& context_;
};

}  // namespace ckv
