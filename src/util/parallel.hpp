// Minimal fork-join helper mirroring the paper's per-head ThreadBlock
// parallelism (Fig. 7): independent heads are processed by independent
// workers. Falls back to serial execution on single-core machines.
#pragma once

#include <functional>

#include "util/common.hpp"

namespace ckv {

/// Number of workers parallel_for will use (>= 1).
int parallel_worker_count() noexcept;

/// Runs body(i) for i in [begin, end). Iterations must be independent.
/// With one hardware thread (or end - begin == 1) this runs inline, so
/// results are identical regardless of worker count.
void parallel_for(Index begin, Index end, const std::function<void(Index)>& body);

}  // namespace ckv
