// Persistent fork-join worker pool mirroring the paper's per-head
// ThreadBlock parallelism (Fig. 7): independent outputs are processed by
// independent workers. Work is handed out as chunked index ranges (grain
// size), never per-index, so the pool's only shared write is one atomic
// chunk cursor per parallel region. Threads are created lazily on the
// first parallel call and reused for the life of the process.
//
// Determinism contract: parallel_for / parallel_for_range must only be
// used with bodies whose iterations write disjoint outputs and do not
// depend on execution order. Under that contract results are bit-identical
// for every worker count (including 1): chunking changes *which thread*
// computes an output, never the arithmetic inside it. See
// docs/PERFORMANCE.md.
#pragma once

#include <functional>
#include <vector>

#include "util/common.hpp"

namespace ckv {

/// Number of workers parallel loops may use (>= 1). Resolution order:
/// set_parallel_workers() override, then the CKV_THREADS environment
/// variable, then std::thread::hardware_concurrency().
int parallel_worker_count() noexcept;

/// Programmatic worker-count override (tests, benches). `workers <= 0`
/// restores the automatic resolution (CKV_THREADS / hardware). Counts
/// above the hardware concurrency are honored — the determinism tests use
/// this to exercise real multi-threading on small CI machines.
void set_parallel_workers(int workers) noexcept;

/// Runs body(i) for i in [begin, end). Iterations must be independent.
/// With one worker (or a single chunk) this runs inline on the caller, so
/// results are identical regardless of worker count. Nested calls from
/// inside a parallel body always run serially (no pool re-entry).
void parallel_for(Index begin, Index end, const std::function<void(Index)>& body);

/// Chunked variant: runs body(chunk_begin, chunk_end) over [begin, end)
/// split into chunks of at most `grain` indices (grain < 1 is treated as
/// an automatic grain). Bodies typically loop serially over their chunk,
/// which keeps per-task overhead off the hot path. Chunk boundaries depend
/// only on (begin, end, grain), never on the worker count.
void parallel_for_range(Index begin, Index end, Index grain,
                        const std::function<void(Index, Index)>& body);

/// Lifetime work counters for one worker slot of the pool (slot 0 is the
/// calling thread — it participates in every region and runs the whole
/// serial path; slots 1+ are pool threads in creation order). A skewed
/// indices split across slots is the load-imbalance signal the kernel
/// benches watch; the observability exporters dump these as
/// parallel.worker<i>.* counters.
struct WorkerUtilization {
  std::int64_t chunks = 0;   ///< chunks claimed off the shared cursor
  std::int64_t indices = 0;  ///< loop indices covered by those chunks
};

/// Worker slot of the calling thread: 0 on the caller/serial path, 1 +
/// creation index on pool threads. Stable for the life of the thread, so
/// code running inside a parallel body can attribute its work (trace
/// spans, counters) to the worker that executed it.
[[nodiscard]] int parallel_worker_slot() noexcept;

/// Snapshot of per-worker utilization since process start (or the last
/// reset), one entry per worker slot that has ever executed a chunk.
[[nodiscard]] std::vector<WorkerUtilization> parallel_worker_utilization();

/// Zeroes the utilization counters (bench warmup boundary). Must not be
/// called concurrently with a parallel region.
void reset_parallel_worker_utilization() noexcept;

}  // namespace ckv
