// Plain-text table printer used by the benchmark harness to emit the
// paper's tables and figure series in a stable, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ckv {

/// Accumulates rows of string cells and renders an aligned text table.
/// All benches print through this so output formatting is uniform.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// Renders as CSV (no alignment padding).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals (locale-independent).
std::string format_double(double value, int decimals);

}  // namespace ckv
