#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/common.hpp"

namespace ckv {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  expects(!header_.empty(), "TextTable: header must not be empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  expects(cells.size() == header_.size(), "TextTable: row arity must match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return std::string(buffer);
}

}  // namespace ckv
