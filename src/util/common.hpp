// Common small utilities shared by every module: index type, contract
// checks, and seed derivation for deterministic experiments.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ckv {

/// Signed index type used for all sizes and positions (ES.102: use signed
/// types for arithmetic). Converted at std:: container boundaries.
using Index = std::int64_t;

/// Throws std::invalid_argument when a precondition does not hold.
/// Used at public API boundaries; hot inner loops avoid it.
inline void expects(bool condition, std::string_view message) {
  if (!condition) {
    throw std::invalid_argument(std::string(message));
  }
}

/// Throws std::logic_error when a postcondition/invariant does not hold.
inline void ensures(bool condition, std::string_view message) {
  if (!condition) {
    throw std::logic_error(std::string(message));
  }
}

/// FNV-1a hash of a string, used to derive child RNG seeds from a parent
/// seed plus a human-readable tag so experiments stay reproducible while
/// components get decorrelated streams.
std::uint64_t fnv1a(std::string_view text) noexcept;

/// Derives a child seed from a parent seed and a tag (stable across runs).
std::uint64_t derive_seed(std::uint64_t parent, std::string_view tag) noexcept;

}  // namespace ckv
