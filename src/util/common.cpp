#include "util/common.hpp"

namespace ckv {

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t derive_seed(std::uint64_t parent, std::string_view tag) noexcept {
  // SplitMix64 finalizer over (parent ^ hash(tag)) gives well-mixed child
  // seeds even for adjacent parents.
  std::uint64_t z = parent ^ fnv1a(tag);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace ckv
