#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace ckv {

int parallel_worker_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(Index begin, Index end, const std::function<void(Index)>& body) {
  expects(begin <= end, "parallel_for: begin must not exceed end");
  const Index count = end - begin;
  if (count == 0) {
    return;
  }
  const int workers = std::min<Index>(parallel_worker_count(), count);
  if (workers <= 1) {
    for (Index i = begin; i < end; ++i) {
      body(i);
    }
    return;
  }
  std::atomic<Index> next{begin};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&next, end, &body] {
      while (true) {
        const Index i = next.fetch_add(1);
        if (i >= end) {
          return;
        }
        body(i);
      }
    });
  }
  for (auto& t : pool) {
    t.join();
  }
}

}  // namespace ckv
