#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "util/thread_safety.hpp"

namespace ckv {

namespace {

/// True while the current thread is executing chunks of a parallel region
/// (worker or participating caller). Nested parallel calls from such a
/// thread run serially instead of re-entering the pool.
thread_local bool t_in_parallel_region = false;

/// Worker slot of the current thread for utilization accounting: 0 for
/// callers (and the serial path), 1 + creation index for pool threads.
thread_local int t_worker_slot = 0;

constexpr int kMaxWorkerSlots = 257;  ///< caller + up to 256 pool threads

/// Per-slot lifetime work counters. Relaxed atomics: slots are written by
/// exactly one thread each; readers only want a consistent-enough snapshot.
struct SlotCounters {
  std::atomic<std::int64_t> chunks{0};
  std::atomic<std::int64_t> indices{0};
};
SlotCounters g_worker_counters[kMaxWorkerSlots];
std::atomic<int> g_worker_slots_used{1};  ///< slot 0 always exists

inline void count_chunk(Index chunk_begin, Index chunk_end) noexcept {
  const int slot = t_worker_slot < kMaxWorkerSlots ? t_worker_slot : 0;
  g_worker_counters[slot].chunks.fetch_add(1, std::memory_order_relaxed);
  g_worker_counters[slot].indices.fetch_add(chunk_end - chunk_begin,
                                            std::memory_order_relaxed);
}

int hardware_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// CKV_THREADS env override, parsed once. Returns 0 when absent/invalid.
int env_workers() noexcept {
  static const int parsed = [] {
    const char* raw = std::getenv("CKV_THREADS");
    if (raw == nullptr) {
      return 0;
    }
    const long v = std::strtol(raw, nullptr, 10);
    return v >= 1 && v <= 4096 ? static_cast<int>(v) : 0;
  }();
  return parsed;
}

std::atomic<int> g_worker_override{0};

/// Lazily-initialized persistent pool. One parallel region runs at a time
/// (run() holds run_mutex_); workers and the caller pull whole chunks off
/// a single atomic cursor, so contention is one fetch_add per chunk, not
/// per index. Threads are created on demand, reused across regions, and
/// joined at process exit. A worker registers itself (active_workers_,
/// under the state mutex) before touching any job field, and run() does
/// not return until every registered worker has deregistered — so job
/// state is never read concurrently with the next region's writes.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void run(Index begin, Index end, Index grain,
           const std::function<void(Index, Index)>& body, int workers) {
    const LockGuard run_lock(run_mutex_);
    {
      const LockGuard lock(state_mutex_);
      while (static_cast<int>(threads_.size()) < workers - 1) {
        const std::uint64_t seen = generation_;
        const int slot = static_cast<int>(threads_.size()) + 1;
        threads_.emplace_back([this, seen, slot] {
          t_worker_slot = slot;
          int used = g_worker_slots_used.load(std::memory_order_relaxed);
          while (used < slot + 1 &&
                 !g_worker_slots_used.compare_exchange_weak(
                     used, slot + 1, std::memory_order_relaxed)) {
          }
          worker_loop(seen);
        });
      }
      job_begin_ = begin;
      job_grain_ = grain;
      job_end_ = end;
      job_body_ = &body;
      job_error_ = nullptr;
      job_worker_limit_ = workers - 1;  // caller is the remaining worker
      chunk_count_ = (end - begin + grain - 1) / grain;
      next_chunk_.store(0, std::memory_order_relaxed);
      ++generation_;
    }
    work_cv_.notify_all();
    execute_chunks();  // the caller participates
    std::exception_ptr error;
    {
      UniqueLock lock(state_mutex_);
      while (active_workers_ != 0) {
        done_cv_.wait(lock);
      }
      job_body_ = nullptr;
      error = job_error_;
      job_error_ = nullptr;
    }
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }

 private:
  ThreadPool() = default;

  ~ThreadPool() {
    {
      const LockGuard lock(state_mutex_);
      stopping_ = true;
      ++generation_;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) {
      t.join();
    }
  }

  void worker_loop(std::uint64_t last_seen) {
    t_in_parallel_region = true;  // workers never recurse into the pool
    while (true) {
      {
        UniqueLock lock(state_mutex_);
        while (generation_ == last_seen && !stopping_) {
          work_cv_.wait(lock);
        }
        if (stopping_) {
          return;
        }
        last_seen = generation_;
        // Skip a finished region, and respect the region's worker cap: a
        // pool that grew for an earlier wide region must not oversubscribe
        // a narrow one (the cap is participation, not just creation).
        if (job_body_ == nullptr || active_workers_ >= job_worker_limit_) {
          continue;
        }
        ++active_workers_;
      }
      execute_chunks();
      {
        const LockGuard lock(state_mutex_);
        if (--active_workers_ == 0) {
          done_cv_.notify_all();
        }
      }
    }
  }

  /// Claims and runs chunks until the cursor is exhausted. Any exception
  /// cancels the remaining chunks (first error wins) and is rethrown by
  /// run() on the calling thread.
  ///
  /// Intentionally unchecked (CKV_NO_THREAD_SAFETY_ANALYSIS): the job
  /// fields are CKV_GUARDED_BY(state_mutex_) but are read here without it,
  /// which is sound under the generation protocol — run() publishes them
  /// under state_mutex_ *before* bumping generation_, a worker observes the
  /// bump under the same mutex before its first read, and run() does not
  /// return (so no next region can rewrite them) until every registered
  /// worker has deregistered. The annotation escape is the documented
  /// record of that reasoning; everything else in this file is analyzed.
  void execute_chunks() CKV_NO_THREAD_SAFETY_ANALYSIS {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    while (true) {
      const Index chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunk_count_) {
        break;
      }
      const Index chunk_begin = job_begin_ + chunk * job_grain_;
      const Index chunk_end = std::min(job_end_, chunk_begin + job_grain_);
      count_chunk(chunk_begin, chunk_end);
      try {
        (*job_body_)(chunk_begin, chunk_end);
      } catch (...) {
        const LockGuard lock(state_mutex_);
        if (job_error_ == nullptr) {
          job_error_ = std::current_exception();
        }
        next_chunk_.store(chunk_count_, std::memory_order_relaxed);
      }
    }
    t_in_parallel_region = was_in_region;
  }

  /// One parallel region at a time; always taken before state_mutex_.
  Mutex run_mutex_ CKV_ACQUIRED_BEFORE(state_mutex_);

  Mutex state_mutex_;
  CondVar work_cv_;
  CondVar done_cv_;
  std::vector<std::thread> threads_ CKV_GUARDED_BY(state_mutex_);
  std::uint64_t generation_ CKV_GUARDED_BY(state_mutex_) = 0;
  int active_workers_ CKV_GUARDED_BY(state_mutex_) = 0;
  bool stopping_ CKV_GUARDED_BY(state_mutex_) = false;

  // Current job. Written under state_mutex_ before the generation bump;
  // workers observe the bump under the same mutex before reading, and
  // run() outlives every reader, so the unguarded reads in
  // execute_chunks() are race-free (see its annotation escape).
  Index job_begin_ CKV_GUARDED_BY(state_mutex_) = 0;
  Index job_end_ CKV_GUARDED_BY(state_mutex_) = 0;
  Index job_grain_ CKV_GUARDED_BY(state_mutex_) = 1;
  Index chunk_count_ CKV_GUARDED_BY(state_mutex_) = 0;
  /// Max pool threads that may join the region.
  int job_worker_limit_ CKV_GUARDED_BY(state_mutex_) = 0;
  const std::function<void(Index, Index)>* job_body_
      CKV_GUARDED_BY(state_mutex_) = nullptr;
  std::exception_ptr job_error_ CKV_GUARDED_BY(state_mutex_) = nullptr;
  std::atomic<Index> next_chunk_{0};
};

/// Automatic grain for unspecified-grain ranges: enough chunks for load
/// balance without per-chunk overhead mattering. Depends only on the range
/// size so chunk boundaries are stable across worker counts.
Index auto_grain(Index count) noexcept {
  return std::max<Index>(1, (count + 63) / 64);
}

}  // namespace

int parallel_worker_count() noexcept {
  const int forced = g_worker_override.load(std::memory_order_relaxed);
  if (forced >= 1) {
    return forced;
  }
  const int from_env = env_workers();
  return from_env >= 1 ? from_env : hardware_workers();
}

void set_parallel_workers(int workers) noexcept {
  g_worker_override.store(workers >= 1 ? workers : 0, std::memory_order_relaxed);
}

void parallel_for_range(Index begin, Index end, Index grain,
                        const std::function<void(Index, Index)>& body) {
  expects(begin <= end, "parallel_for_range: begin must not exceed end");
  const Index count = end - begin;
  if (count == 0) {
    return;
  }
  if (grain < 1) {
    grain = auto_grain(count);
  }
  const int workers = static_cast<int>(
      std::min<Index>(parallel_worker_count(), (count + grain - 1) / grain));
  if (workers <= 1 || t_in_parallel_region) {
    // Serial path: same chunk boundaries as the pool would use, executed
    // in order on the caller.
    for (Index chunk_begin = begin; chunk_begin < end; chunk_begin += grain) {
      const Index chunk_end = std::min(end, chunk_begin + grain);
      count_chunk(chunk_begin, chunk_end);
      body(chunk_begin, chunk_end);
    }
    return;
  }
  ThreadPool::instance().run(begin, end, grain, body, workers);
}

int parallel_worker_slot() noexcept { return t_worker_slot; }

std::vector<WorkerUtilization> parallel_worker_utilization() {
  const int used = g_worker_slots_used.load(std::memory_order_relaxed);
  std::vector<WorkerUtilization> out(used);
  for (int slot = 0; slot < used; ++slot) {
    out[slot].chunks =
        g_worker_counters[slot].chunks.load(std::memory_order_relaxed);
    out[slot].indices =
        g_worker_counters[slot].indices.load(std::memory_order_relaxed);
  }
  return out;
}

void reset_parallel_worker_utilization() noexcept {
  for (auto& slot : g_worker_counters) {
    slot.chunks.store(0, std::memory_order_relaxed);
    slot.indices.store(0, std::memory_order_relaxed);
  }
}

void parallel_for(Index begin, Index end, const std::function<void(Index)>& body) {
  expects(begin <= end, "parallel_for: begin must not exceed end");
  parallel_for_range(begin, end, /*grain=*/0,
                     [&body](Index chunk_begin, Index chunk_end) {
                       for (Index i = chunk_begin; i < chunk_end; ++i) {
                         body(i);
                       }
                     });
}

}  // namespace ckv
