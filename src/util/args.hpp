// Minimal command-line flag parser for the CLI tool: --name value pairs
// and boolean switches, with typed access and generated help text.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace ckv {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Registers a value option (--name <value>) with a default and help.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Registers a boolean switch (--name, no value).
  void add_switch(const std::string& name, const std::string& help);

  /// Parses argv; throws std::invalid_argument for unknown flags or
  /// missing values. Non-flag tokens are collected as positionals.
  /// `--help` prints the generated help text (options with defaults) to
  /// stdout and exits 0.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] Index get_index(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  /// get_double with range validation: throws std::invalid_argument naming
  /// the flag when the value falls outside [lo, hi]. For knobs with hard
  /// domains (thresholds, factors >= 1) where a bare atof would let
  /// nonsense flow into expects() failures deep in the stack.
  [[nodiscard]] double get_double_in(const std::string& name, double lo,
                                     double hi) const;
  [[nodiscard]] bool get_switch(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  /// Rendered --help text.
  [[nodiscard]] std::string help() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_switch = false;
  };

  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> switches_;
  std::vector<std::string> positionals_;
};

}  // namespace ckv
