#include "util/args.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace ckv {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_option(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  expects(!options_.contains(name), "ArgParser: duplicate option " + name);
  options_[name] = Option{default_value, help, false};
  values_[name] = default_value;
}

void ArgParser::add_switch(const std::string& name, const std::string& help) {
  expects(!options_.contains(name), "ArgParser: duplicate switch " + name);
  options_[name] = Option{"", help, true};
  switches_[name] = false;
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positionals_.push_back(token);
      continue;
    }
    const std::string name = token.substr(2);
    if (name == "help") {
      // Every command gets --help for free: print the generated text
      // (options with their defaults) and exit successfully.
      std::cout << help();
      std::exit(0);
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown flag --" + name + "\n" + help());
    }
    if (it->second.is_switch) {
      switches_[name] = true;
      continue;
    }
    if (i + 1 >= argc) {
      throw std::invalid_argument("flag --" + name + " needs a value");
    }
    values_[name] = argv[++i];
  }
}

std::string ArgParser::get_string(const std::string& name) const {
  const auto it = values_.find(name);
  expects(it != values_.end(), "ArgParser: unregistered option " + name);
  return it->second;
}

Index ArgParser::get_index(const std::string& name) const {
  const auto text = get_string(name);
  try {
    std::size_t used = 0;
    const long long v = std::stoll(text, &used);
    expects(used == text.size(), "trailing characters");
    return static_cast<Index>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                text + "'");
  }
}

double ArgParser::get_double(const std::string& name) const {
  const auto text = get_string(name);
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    expects(used == text.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                text + "'");
  }
}

double ArgParser::get_double_in(const std::string& name, double lo, double hi) const {
  const double v = get_double(name);
  if (v < lo || v > hi) {
    throw std::invalid_argument("flag --" + name + " expects a value in [" +
                                std::to_string(lo) + ", " + std::to_string(hi) +
                                "], got " + std::to_string(v));
  }
  return v;
}

bool ArgParser::get_switch(const std::string& name) const {
  const auto it = switches_.find(name);
  expects(it != switches_.end(), "ArgParser: unregistered switch " + name);
  return it->second;
}

std::string ArgParser::help() const {
  std::ostringstream out;
  out << description_ << "\n\noptions:\n";
  for (const auto& [name, option] : options_) {
    out << "  --" << name;
    if (!option.is_switch) {
      out << " <value>  (default: "
          << (option.default_value.empty() ? "none" : option.default_value) << ")";
    }
    out << "\n      " << option.help << "\n";
  }
  return out.str();
}

}  // namespace ckv
