#include "baselines/infinigen.hpp"

#include <algorithm>
#include <cmath>

#include "core/kernels.hpp"
#include "tensor/svd.hpp"
#include "tensor/topk.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {

InfiniGenSelector::InfiniGenSelector(Index head_dim, const InfiniGenConfig& config)
    : config_(config), store_(head_dim), speculation_rng_(config.seed) {
  expects(config.partial_dim > 0 && config.partial_dim <= head_dim,
          "InfiniGenSelector: partial_dim must be in (0, head_dim]");
  expects(config.calibration_tokens > 0,
          "InfiniGenSelector: calibration_tokens must be positive");
  expects(config.speculation_noise >= 0.0,
          "InfiniGenSelector: speculation_noise must be non-negative");
}

std::vector<float> InfiniGenSelector::project(std::span<const float> vec) const {
  return matvec(basis_, vec);
}

void InfiniGenSelector::observe_prefill(const Matrix& keys, const Matrix& values) {
  store_.append_block(keys, values);
  // Offline phase: fit the reduced basis on the leading calibration slice
  // only. This mirrors InfiniGen's offline SVD on calibration data — the
  // basis is frozen before the bulk of the context arrives.
  const Index sample_rows = std::min<Index>(config_.calibration_tokens, keys.rows());
  const Matrix sample = keys.row_slice(0, sample_rows);
  const auto svd = jacobi_svd(sample);
  const Index r = std::min<Index>(config_.partial_dim,
                                  static_cast<Index>(svd.singular_values.size()));
  basis_ = Matrix(r, store_.head_dim());
  for (Index k = 0; k < r; ++k) {
    for (Index c = 0; c < store_.head_dim(); ++c) {
      basis_.at(k, c) = svd.v.at(c, k);
    }
  }
  projected_keys_ = Matrix(0, 0);
  for (Index t = 0; t < store_.size(); ++t) {
    projected_keys_.append_row(project(store_.key(t)));
  }
}

void InfiniGenSelector::observe_decode(std::span<const float> key,
                                       std::span<const float> value) {
  store_.append(key, value);
  expects(!basis_.empty(), "InfiniGenSelector: observe_prefill must come first");
  projected_keys_.append_row(project(key));
}

SelectionResult InfiniGenSelector::select(std::span<const float> query, Index budget) {
  expects(budget >= 0, "InfiniGenSelector::select: budget must be non-negative");
  SelectionResult result;
  if (budget == 0 || store_.size() == 0) {
    result.scoring_dim = config_.partial_dim;
    return result;
  }
  auto q_partial = project(query);
  if (config_.speculation_noise > 0.0) {
    // Cross-layer speculation error: the query used for selection is the
    // previous layer's estimate, not the exact one.
    const double scale =
        config_.speculation_noise * norm2(q_partial) /
        std::sqrt(static_cast<double>(q_partial.size()));
    for (float& x : q_partial) {
      x += static_cast<float>(speculation_rng_.normal(0.0, scale));
    }
  }
  const float inv_sqrt_d =
      static_cast<float>(1.0 / std::sqrt(static_cast<double>(store_.head_dim())));
  std::vector<float> approx(static_cast<std::size_t>(projected_keys_.rows()));
  batched_scores(projected_keys_, q_partial, DistanceMetric::kInnerProduct, approx,
                 inv_sqrt_d);
  result.indices = top_k_indices(approx, budget);
  std::sort(result.indices.begin(), result.indices.end());
  // Per-token scoring over the whole context in the partial dimension —
  // the O(L * r) selection cost of §II-C.
  result.representations_scored = store_.size();
  result.scoring_dim = config_.partial_dim;
  // InfiniGen speculates/fetches selected KV from host memory each step
  // (no cluster cache): every selected token is a fetch.
  result.tokens_fetched = static_cast<Index>(result.indices.size());
  return result;
}

SelectorFactory make_infinigen_factory(const InfiniGenConfig& config) {
  return [config](Index layer, Index head, Index head_dim) {
    InfiniGenConfig adjusted = config;
    adjusted.partial_dim = std::min<Index>(adjusted.partial_dim, head_dim);
    adjusted.seed = derive_seed(config.seed, "infinigen/l" + std::to_string(layer) +
                                                 "/h" + std::to_string(head));
    return std::make_unique<InfiniGenSelector>(head_dim, adjusted);
  };
}

}  // namespace ckv
