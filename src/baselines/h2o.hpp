// H2O baseline (Zhang et al., NeurIPS'23): non-recallable eviction keeping
// "heavy hitters" — tokens with the largest cumulative attention — plus a
// recent window. Once evicted, a token can never be selected again
// (Fig. 1b family); this is the motivating contrast for recallable
// compression.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/kv_selector.hpp"
#include "kvcache/kv_store.hpp"

namespace ckv {

struct H2OConfig {
  Index budget = 512;          ///< alive-set size (heavy hitters + recents)
  double recent_fraction = 0.5;  ///< share of the budget kept for recency
};

class H2OSelector : public KVSelector {
 public:
  H2OSelector(Index head_dim, const H2OConfig& config);

  [[nodiscard]] std::string name() const override { return "H2O"; }

  void observe_prefill(const Matrix& keys, const Matrix& values) override;
  void observe_decode(std::span<const float> key,
                      std::span<const float> value) override;
  SelectionResult select(std::span<const float> query, Index budget) override;
  void observe_attention(std::span<const Index> indices,
                         std::span<const float> probabilities) override;
  [[nodiscard]] bool is_recallable() const override { return false; }
  [[nodiscard]] Index context_size() const override { return store_.size(); }

  /// Positions still alive (not permanently evicted), ascending.
  [[nodiscard]] std::vector<Index> alive_positions() const;
  [[nodiscard]] bool is_evicted(Index position) const;

 private:
  void evict_to_budget();

  H2OConfig config_;
  KVStore store_;
  std::unordered_map<Index, double> cumulative_score_;  ///< alive set
  std::vector<bool> evicted_;
};

/// Factory adapter; budget fixed at construction (eviction needs it before
/// select is called).
SelectorFactory make_h2o_factory(const H2OConfig& config);

}  // namespace ckv
