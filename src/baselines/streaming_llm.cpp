#include "baselines/streaming_llm.hpp"

#include <algorithm>

namespace ckv {

StreamingLLMSelector::StreamingLLMSelector(Index head_dim,
                                           const StreamingLLMConfig& config)
    : config_(config), store_(head_dim) {
  expects(config.sink_tokens >= 0, "StreamingLLMSelector: sinks must be >= 0");
}

void StreamingLLMSelector::observe_prefill(const Matrix& keys, const Matrix& values) {
  store_.append_block(keys, values);
}

void StreamingLLMSelector::observe_decode(std::span<const float> key,
                                          std::span<const float> value) {
  store_.append(key, value);
}

SelectionResult StreamingLLMSelector::select(std::span<const float> /*query*/,
                                             Index budget) {
  expects(budget >= 0, "StreamingLLMSelector::select: budget must be non-negative");
  SelectionResult result;
  const Index n = store_.size();
  const Index sinks = std::min<Index>(config_.sink_tokens, n);
  const Index window = std::max<Index>(0, budget - sinks);
  const Index window_begin = std::max<Index>(sinks, n - window);
  for (Index t = 0; t < sinks; ++t) {
    result.indices.push_back(t);
  }
  for (Index t = window_begin; t < n; ++t) {
    result.indices.push_back(t);
  }
  result.scoring_dim = store_.head_dim();
  return result;
}

SelectorFactory make_streaming_llm_factory(const StreamingLLMConfig& config) {
  return [config](Index /*layer*/, Index /*head*/, Index head_dim) {
    return std::make_unique<StreamingLLMSelector>(head_dim, config);
  };
}

}  // namespace ckv
