#include "baselines/quest.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/topk.hpp"
#include "tensor/vec_ops.hpp"
#include "util/parallel.hpp"

namespace ckv {

namespace {

/// Lane form of the Quest bound: sum_c max(q_c * hi_c, q_c * lo_c). Same
/// fixed accumulation structure as dot_f32 (see docs/PERFORMANCE.md), so
/// the batched page pass is deterministic across thread counts.
float page_bound_f32(std::span<const float> q, std::span<const float> hi,
                     std::span<const float> lo) {
  const std::size_t n = q.size();
  float acc[kDotLanes] = {};
  std::size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (std::size_t lane = 0; lane < kDotLanes; ++lane) {
      acc[lane] += std::max(q[i + lane] * hi[i + lane], q[i + lane] * lo[i + lane]);
    }
  }
  for (std::size_t stride = kDotLanes / 2; stride > 0; stride /= 2) {
    for (std::size_t lane = 0; lane < stride; ++lane) {
      acc[lane] += acc[lane + stride];
    }
  }
  float total = acc[0];
  for (; i < n; ++i) {
    total += std::max(q[i] * hi[i], q[i] * lo[i]);
  }
  return total;
}

}  // namespace

QuestSelector::QuestSelector(Index head_dim, const QuestConfig& config)
    : config_(config), store_(head_dim) {
  expects(config.page_size > 0, "QuestSelector: page_size must be positive");
}

void QuestSelector::finalize_full_pages() {
  while ((page_max_.rows() + 1) * config_.page_size <= store_.size()) {
    const Index begin = page_max_.rows() * config_.page_size;
    std::vector<float> max_row(store_.key(begin).begin(), store_.key(begin).end());
    std::vector<float> min_row = max_row;
    for (Index t = begin + 1; t < begin + config_.page_size; ++t) {
      const auto key = store_.key(t);
      elementwise_max_in_place(max_row, key);
      elementwise_min_in_place(min_row, key);
    }
    page_max_.append_row(max_row);
    page_min_.append_row(min_row);
  }
}

void QuestSelector::observe_prefill(const Matrix& keys, const Matrix& values) {
  store_.append_block(keys, values);
  finalize_full_pages();
}

void QuestSelector::observe_decode(std::span<const float> key,
                                   std::span<const float> value) {
  store_.append(key, value);
  finalize_full_pages();
}

double QuestSelector::page_score(std::span<const float> query, Index page) const {
  expects(page >= 0 && page < page_max_.rows(), "QuestSelector: page out of range");
  const auto max_row = page_max_.row(page);
  const auto min_row = page_min_.row(page);
  double acc = 0.0;
  for (std::size_t c = 0; c < query.size(); ++c) {
    const double q = static_cast<double>(query[c]);
    acc += std::max(q * static_cast<double>(max_row[c]),
                    q * static_cast<double>(min_row[c]));
  }
  return acc / std::sqrt(static_cast<double>(store_.head_dim()));
}

SelectionResult QuestSelector::select(std::span<const float> query, Index budget) {
  expects(budget >= 0, "QuestSelector::select: budget must be non-negative");
  SelectionResult result;

  // Tokens past the last finalized page (the in-progress page) are always
  // attended — they are the local context Quest never drops.
  std::vector<Index> indices;
  const Index paged_tokens = page_max_.rows() * config_.page_size;
  for (Index t = paged_tokens; t < store_.size(); ++t) {
    indices.push_back(t);
  }

  const Index page_budget =
      std::max<Index>(0, budget - static_cast<Index>(indices.size()));
  const Index pages_wanted = page_budget / config_.page_size;

  if (pages_wanted > 0 && page_max_.rows() > 0) {
    const float inv_sqrt_d =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(store_.head_dim())));
    std::vector<float> scores(static_cast<std::size_t>(page_max_.rows()));
    parallel_for_range(0, page_max_.rows(), /*grain=*/0, [&](Index begin, Index end) {
      for (Index p = begin; p < end; ++p) {
        scores[static_cast<std::size_t>(p)] =
            page_bound_f32(query, page_max_.row(p), page_min_.row(p)) * inv_sqrt_d;
      }
    });
    const auto chosen = top_k_indices(scores, pages_wanted);
    for (const Index page : chosen) {
      const Index begin = page * config_.page_size;
      for (Index t = begin; t < begin + config_.page_size; ++t) {
        indices.push_back(t);
      }
    }
    result.representations_scored = page_max_.rows();
  }

  std::sort(indices.begin(), indices.end());
  result.indices = std::move(indices);
  // A page score reads the max and min vectors: 2d channels per page.
  result.scoring_dim = 2 * store_.head_dim();
  return result;
}

SelectorFactory make_quest_factory(const QuestConfig& config) {
  return [config](Index /*layer*/, Index /*head*/, Index head_dim) {
    return std::make_unique<QuestSelector>(head_dim, config);
  };
}

}  // namespace ckv
