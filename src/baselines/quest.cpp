#include "baselines/quest.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/topk.hpp"

namespace ckv {

QuestSelector::QuestSelector(Index head_dim, const QuestConfig& config)
    : config_(config), store_(head_dim) {
  expects(config.page_size > 0, "QuestSelector: page_size must be positive");
}

void QuestSelector::finalize_full_pages() {
  const Index dim = store_.head_dim();
  while ((page_max_.rows() + 1) * config_.page_size <= store_.size()) {
    const Index begin = page_max_.rows() * config_.page_size;
    std::vector<float> max_row(static_cast<std::size_t>(dim),
                               -std::numeric_limits<float>::infinity());
    std::vector<float> min_row(static_cast<std::size_t>(dim),
                               std::numeric_limits<float>::infinity());
    for (Index t = begin; t < begin + config_.page_size; ++t) {
      const auto key = store_.key(t);
      for (Index c = 0; c < dim; ++c) {
        max_row[static_cast<std::size_t>(c)] =
            std::max(max_row[static_cast<std::size_t>(c)], key[static_cast<std::size_t>(c)]);
        min_row[static_cast<std::size_t>(c)] =
            std::min(min_row[static_cast<std::size_t>(c)], key[static_cast<std::size_t>(c)]);
      }
    }
    page_max_.append_row(max_row);
    page_min_.append_row(min_row);
  }
}

void QuestSelector::observe_prefill(const Matrix& keys, const Matrix& values) {
  store_.append_block(keys, values);
  finalize_full_pages();
}

void QuestSelector::observe_decode(std::span<const float> key,
                                   std::span<const float> value) {
  store_.append(key, value);
  finalize_full_pages();
}

double QuestSelector::page_score(std::span<const float> query, Index page) const {
  expects(page >= 0 && page < page_max_.rows(), "QuestSelector: page out of range");
  const auto max_row = page_max_.row(page);
  const auto min_row = page_min_.row(page);
  double acc = 0.0;
  for (std::size_t c = 0; c < query.size(); ++c) {
    const double q = static_cast<double>(query[c]);
    acc += std::max(q * static_cast<double>(max_row[c]),
                    q * static_cast<double>(min_row[c]));
  }
  return acc / std::sqrt(static_cast<double>(store_.head_dim()));
}

SelectionResult QuestSelector::select(std::span<const float> query, Index budget) {
  expects(budget >= 0, "QuestSelector::select: budget must be non-negative");
  SelectionResult result;

  // Tokens past the last finalized page (the in-progress page) are always
  // attended — they are the local context Quest never drops.
  std::vector<Index> indices;
  const Index paged_tokens = page_max_.rows() * config_.page_size;
  for (Index t = paged_tokens; t < store_.size(); ++t) {
    indices.push_back(t);
  }

  const Index page_budget =
      std::max<Index>(0, budget - static_cast<Index>(indices.size()));
  const Index pages_wanted = page_budget / config_.page_size;

  if (pages_wanted > 0 && page_max_.rows() > 0) {
    std::vector<float> scores(static_cast<std::size_t>(page_max_.rows()));
    for (Index p = 0; p < page_max_.rows(); ++p) {
      scores[static_cast<std::size_t>(p)] = static_cast<float>(page_score(query, p));
    }
    const auto chosen = top_k_indices(scores, pages_wanted);
    for (const Index page : chosen) {
      const Index begin = page * config_.page_size;
      for (Index t = begin; t < begin + config_.page_size; ++t) {
        indices.push_back(t);
      }
    }
    result.representations_scored = page_max_.rows();
  }

  std::sort(indices.begin(), indices.end());
  result.indices = std::move(indices);
  // A page score reads the max and min vectors: 2d channels per page.
  result.scoring_dim = 2 * store_.head_dim();
  return result;
}

SelectorFactory make_quest_factory(const QuestConfig& config) {
  return [config](Index /*layer*/, Index /*head*/, Index head_dim) {
    return std::make_unique<QuestSelector>(head_dim, config);
  };
}

}  // namespace ckv
