// InfiniGen baseline (Lee et al., OSDI'24): per-token recall using
// approximate attention scores computed in a reduced "partial weight"
// dimension obtained from an offline SVD. Here the offline phase builds a
// projection basis from a calibration slice of the key stream (the paper
// derives partial query/key weights from an offline SVD of the projection
// weights; both reduce scoring to r
// dimensions fitted on offline data, and both degrade as the live key
// distribution drifts away from the calibration distribution).
#pragma once

#include <vector>

#include "core/kv_selector.hpp"
#include "kvcache/kv_store.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace ckv {

struct InfiniGenConfig {
  Index partial_dim = 16;          ///< r: reduced scoring dimension
  Index calibration_tokens = 512;  ///< offline sample size for the basis
  /// Relative noise on the partial query: InfiniGen speculates the next
  /// layer's query from the previous layer's input, so its approximate
  /// scores carry cross-layer speculation error on top of the rank
  /// reduction. Modeled as Gaussian perturbation of the projected query.
  double speculation_noise = 0.5;
  std::uint64_t seed = 0x1f1;      ///< stream for the speculation noise
};

class InfiniGenSelector : public KVSelector {
 public:
  InfiniGenSelector(Index head_dim, const InfiniGenConfig& config);

  [[nodiscard]] std::string name() const override { return "InfiniGen"; }

  void observe_prefill(const Matrix& keys, const Matrix& values) override;
  void observe_decode(std::span<const float> key,
                      std::span<const float> value) override;
  SelectionResult select(std::span<const float> query, Index budget) override;
  [[nodiscard]] Index context_size() const override { return store_.size(); }

  [[nodiscard]] const Matrix& basis() const noexcept { return basis_; }
  [[nodiscard]] Index partial_dim() const noexcept { return config_.partial_dim; }

 private:
  [[nodiscard]] std::vector<float> project(std::span<const float> vec) const;

  InfiniGenConfig config_;
  KVStore store_;
  Matrix basis_;           ///< r x d projection (top right-singular vectors)
  Matrix projected_keys_;  ///< N x r partial keys, appended per token
  Rng speculation_rng_;    ///< per-step speculation-error stream
};

/// Factory adapter for the decode engine.
SelectorFactory make_infinigen_factory(const InfiniGenConfig& config = {});

}  // namespace ckv
