// Full KV cache baseline: attends every stored token. The accuracy upper
// bound and the latency lower bound every compression method is measured
// against.
#pragma once

#include "core/kv_selector.hpp"
#include "kvcache/kv_store.hpp"

namespace ckv {

class FullKVSelector : public KVSelector {
 public:
  explicit FullKVSelector(Index head_dim);

  [[nodiscard]] std::string name() const override { return "Full KV"; }

  void observe_prefill(const Matrix& keys, const Matrix& values) override;
  void observe_decode(std::span<const float> key,
                      std::span<const float> value) override;
  SelectionResult select(std::span<const float> query, Index budget) override;
  [[nodiscard]] Index context_size() const override { return store_.size(); }

 private:
  KVStore store_;
};

/// Factory adapter for the decode engine.
SelectorFactory make_full_kv_factory();

}  // namespace ckv
