#include "baselines/h2o.hpp"

#include <algorithm>

namespace ckv {

H2OSelector::H2OSelector(Index head_dim, const H2OConfig& config)
    : config_(config), store_(head_dim) {
  expects(config.budget > 0, "H2OSelector: budget must be positive");
  expects(config.recent_fraction >= 0.0 && config.recent_fraction <= 1.0,
          "H2OSelector: recent_fraction must be in [0, 1]");
}

void H2OSelector::observe_prefill(const Matrix& keys, const Matrix& values) {
  store_.append_block(keys, values);
  evicted_.assign(static_cast<std::size_t>(store_.size()), false);
  for (Index t = 0; t < store_.size(); ++t) {
    cumulative_score_.emplace(t, 0.0);
  }
  evict_to_budget();
}

void H2OSelector::observe_decode(std::span<const float> key,
                                 std::span<const float> value) {
  store_.append(key, value);
  evicted_.push_back(false);
  cumulative_score_.emplace(store_.size() - 1, 0.0);
  evict_to_budget();
}

void H2OSelector::evict_to_budget() {
  const Index alive = static_cast<Index>(cumulative_score_.size());
  if (alive <= config_.budget) {
    return;
  }
  const Index recent_keep = static_cast<Index>(
      config_.recent_fraction * static_cast<double>(config_.budget));
  const Index recent_boundary = store_.size() - recent_keep;

  // Candidates for eviction: alive tokens outside the recent window,
  // lowest cumulative attention first (ties: older token evicted first).
  // (score, pos) pairs are distinct, so a partial selection evicts exactly
  // the set a full sort would — this runs once per appended token, making
  // it the H2O scorer's hot loop.
  std::vector<std::pair<double, Index>> candidates;
  candidates.reserve(cumulative_score_.size());
  // (score, pos) pairs are distinct, so nth_element's victim set is
  // order-free regardless of candidate order.
  // ckv-lint: allow(unordered-iter) -- distinct keys, order-free
  for (const auto& [pos, score] : cumulative_score_) {
    if (pos < recent_boundary) {
      candidates.emplace_back(score, pos);
    }
  }
  const Index to_evict =
      std::min<Index>(alive - config_.budget, static_cast<Index>(candidates.size()));
  if (to_evict <= 0) {
    return;
  }
  std::nth_element(candidates.begin(), candidates.begin() + (to_evict - 1),
                   candidates.end());
  for (Index i = 0; i < to_evict; ++i) {
    const Index pos = candidates[static_cast<std::size_t>(i)].second;
    cumulative_score_.erase(pos);
    evicted_[static_cast<std::size_t>(pos)] = true;
  }
}

SelectionResult H2OSelector::select(std::span<const float> /*query*/, Index budget) {
  SelectionResult result;
  result.indices = alive_positions();
  if (static_cast<Index>(result.indices.size()) > budget) {
    // The alive set is bounded by the construction-time budget; a smaller
    // per-call budget keeps the most recent tokens and the heaviest
    // hitters in equal shares.
    result.indices.resize(static_cast<std::size_t>(budget));
  }
  result.scoring_dim = store_.head_dim();
  return result;
}

void H2OSelector::observe_attention(std::span<const Index> indices,
                                    std::span<const float> probabilities) {
  expects(indices.size() == probabilities.size(),
          "H2OSelector::observe_attention: size mismatch");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto it = cumulative_score_.find(indices[i]);
    if (it != cumulative_score_.end()) {
      it->second += static_cast<double>(probabilities[i]);
    }
  }
}

std::vector<Index> H2OSelector::alive_positions() const {
  std::vector<Index> alive;
  alive.reserve(cumulative_score_.size());
  // ckv-lint: allow(unordered-iter) -- sorted immediately below
  for (const auto& [pos, score] : cumulative_score_) {
    alive.push_back(pos);
  }
  std::sort(alive.begin(), alive.end());
  return alive;
}

bool H2OSelector::is_evicted(Index position) const {
  expects(position >= 0 && position < store_.size(),
          "H2OSelector::is_evicted: position out of range");
  return evicted_[static_cast<std::size_t>(position)];
}

SelectorFactory make_h2o_factory(const H2OConfig& config) {
  return [config](Index /*layer*/, Index /*head*/, Index head_dim) {
    return std::make_unique<H2OSelector>(head_dim, config);
  };
}

}  // namespace ckv
