// StreamingLLM baseline (Xiao et al., ICLR'24): fixed pattern keeping the
// attention-sink tokens plus a sliding window of the most recent tokens.
// Non-recallable; the simplest member of the Fig. 1b family.
#pragma once

#include "core/kv_selector.hpp"
#include "kvcache/kv_store.hpp"

namespace ckv {

struct StreamingLLMConfig {
  Index sink_tokens = 16;  ///< aligned with ClusterKV's retained sinks
};

class StreamingLLMSelector : public KVSelector {
 public:
  StreamingLLMSelector(Index head_dim, const StreamingLLMConfig& config);

  [[nodiscard]] std::string name() const override { return "StreamingLLM"; }

  void observe_prefill(const Matrix& keys, const Matrix& values) override;
  void observe_decode(std::span<const float> key,
                      std::span<const float> value) override;
  SelectionResult select(std::span<const float> query, Index budget) override;
  [[nodiscard]] bool is_recallable() const override { return false; }
  [[nodiscard]] Index context_size() const override { return store_.size(); }

 private:
  StreamingLLMConfig config_;
  KVStore store_;
};

/// Factory adapter for the decode engine.
SelectorFactory make_streaming_llm_factory(const StreamingLLMConfig& config = {});

}  // namespace ckv
