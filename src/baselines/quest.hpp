// Quest baseline (Tang et al., ICML'24): recall at the granularity of
// fixed-size pages of consecutive tokens. Page importance is estimated
// from per-channel min/max key metadata, giving an upper bound on any
// member token's attention score; the top pages fill the budget.
#pragma once

#include <vector>

#include "core/kv_selector.hpp"
#include "kvcache/kv_store.hpp"
#include "tensor/matrix.hpp"

namespace ckv {

struct QuestConfig {
  Index page_size = 16;  ///< tokens per page (paper's Quest setting)
};

class QuestSelector : public KVSelector {
 public:
  QuestSelector(Index head_dim, const QuestConfig& config);

  [[nodiscard]] std::string name() const override { return "Quest"; }

  void observe_prefill(const Matrix& keys, const Matrix& values) override;
  void observe_decode(std::span<const float> key,
                      std::span<const float> value) override;
  SelectionResult select(std::span<const float> query, Index budget) override;
  [[nodiscard]] Index context_size() const override { return store_.size(); }

  [[nodiscard]] Index page_count() const noexcept { return page_max_.rows(); }

  /// Upper-bound score of one finalized page for a query (testing hook:
  /// the invariant is score >= q . k / sqrt(d) for every member token).
  [[nodiscard]] double page_score(std::span<const float> query, Index page) const;

 private:
  void finalize_full_pages();

  QuestConfig config_;
  KVStore store_;
  Matrix page_max_;  ///< per finalized page: per-channel max key
  Matrix page_min_;  ///< per finalized page: per-channel min key
};

/// Factory adapter for the decode engine.
SelectorFactory make_quest_factory(const QuestConfig& config = {});

}  // namespace ckv
