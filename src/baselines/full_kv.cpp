#include "baselines/full_kv.hpp"

#include <numeric>

namespace ckv {

FullKVSelector::FullKVSelector(Index head_dim) : store_(head_dim) {}

void FullKVSelector::observe_prefill(const Matrix& keys, const Matrix& values) {
  store_.append_block(keys, values);
}

void FullKVSelector::observe_decode(std::span<const float> key,
                                    std::span<const float> value) {
  store_.append(key, value);
}

SelectionResult FullKVSelector::select(std::span<const float> /*query*/,
                                       Index /*budget*/) {
  SelectionResult result;
  result.indices.resize(static_cast<std::size_t>(store_.size()));
  std::iota(result.indices.begin(), result.indices.end(), Index{0});
  result.scoring_dim = store_.head_dim();
  return result;
}

SelectorFactory make_full_kv_factory() {
  return [](Index /*layer*/, Index /*head*/, Index head_dim) {
    return std::make_unique<FullKVSelector>(head_dim);
  };
}

}  // namespace ckv
