// Selection-quality metrics shared by every experiment: recall of
// important tokens (the Fig. 11 metric), attention-mass coverage, and the
// blended task-quality signal used by the synthetic LongBench suite.
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace ckv {

/// |selected ∩ truth| / |truth| (0 for empty truth). Inputs need not be
/// sorted; duplicates in `selected` count once.
double recall_of(std::span<const Index> selected, std::span<const Index> truth);

/// Sum of probabilities at the selected indices (probabilities should sum
/// to 1 over the full context).
double attention_mass(std::span<const float> probabilities,
                      std::span<const Index> selected);

/// Blended per-step quality in [0, 1] combining top-B recall and attention
/// coverage. Coverage dominates (it is what determines the attention
/// output), recall sharpens the signal for needle retrieval.
double blended_quality(double recall, double coverage) noexcept;

/// Maps an average attention quality to a task score anchored at the
/// full-KV score: score = full_kv_score * (1 - (1 - quality)^difficulty).
/// The mapping is concave — imperfect attention still answers most of the
/// question, which is why LongBench scores degrade gently until selection
/// quality collapses. Full KV has quality 1 by construction, so it lands
/// exactly on the anchor; `difficulty` (the exponent) encodes how
/// budget-sensitive a task is (lower = degrades faster).
double quality_to_score(double quality, double full_kv_score, double difficulty);

}  // namespace ckv
