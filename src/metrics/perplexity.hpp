// Streaming perplexity accumulator for the language-modelling experiment
// (Fig. 10): ppl = exp(mean teacher-forced NLL).
#pragma once

#include "util/common.hpp"

namespace ckv {

class PerplexityMeter {
 public:
  /// Adds one token's negative log-likelihood (nats).
  void add_nll(double nll);

  [[nodiscard]] Index count() const noexcept { return count_; }
  [[nodiscard]] double mean_nll() const noexcept;

  /// exp(mean NLL); 1.0 before any observation.
  [[nodiscard]] double perplexity() const noexcept;

 private:
  double total_nll_ = 0.0;
  Index count_ = 0;
};

}  // namespace ckv
