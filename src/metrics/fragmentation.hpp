// Page-fragmentation analysis behind Fig. 3b: when important tokens are
// grouped into fixed-size pages by position, how many important tokens
// does each touched page actually contain, and how much budget do the
// unimportant co-residents waste?
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace ckv {

struct PageFragmentationReport {
  Index page_size = 0;
  Index important_tokens = 0;  ///< |top-k| analyzed
  Index pages_touched = 0;     ///< distinct pages containing any important token
  /// histogram[i] = number of touched pages containing exactly (i+1)
  /// important tokens.
  std::vector<Index> histogram;
  /// Tokens a page-granularity recall would load to cover all important
  /// tokens (pages_touched * page_size).
  Index tokens_loaded = 0;
  /// tokens_loaded - important_tokens: budget wasted on fragmentation.
  Index tokens_wasted = 0;
  /// Mean important tokens per touched page.
  double mean_per_page = 0.0;
};

/// Analyzes the page placement of the top-k scoring tokens.
PageFragmentationReport analyze_page_fragmentation(std::span<const float> scores,
                                                   Index top_k, Index page_size);

}  // namespace ckv
