#include "metrics/perplexity.hpp"

#include <cmath>

namespace ckv {

void PerplexityMeter::add_nll(double nll) {
  expects(std::isfinite(nll), "PerplexityMeter::add_nll: NLL must be finite");
  total_nll_ += nll;
  ++count_;
}

double PerplexityMeter::mean_nll() const noexcept {
  return count_ == 0 ? 0.0 : total_nll_ / static_cast<double>(count_);
}

double PerplexityMeter::perplexity() const noexcept { return std::exp(mean_nll()); }

}  // namespace ckv
