#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ckv {

double recall_of(std::span<const Index> selected, std::span<const Index> truth) {
  if (truth.empty()) {
    return 0.0;
  }
  const std::unordered_set<Index> selected_set(selected.begin(), selected.end());
  Index overlap = 0;
  for (const Index t : truth) {
    if (selected_set.contains(t)) {
      ++overlap;
    }
  }
  return static_cast<double>(overlap) / static_cast<double>(truth.size());
}

double attention_mass(std::span<const float> probabilities,
                      std::span<const Index> selected) {
  double mass = 0.0;
  for (const Index i : selected) {
    expects(i >= 0 && i < static_cast<Index>(probabilities.size()),
            "attention_mass: index out of range");
    mass += static_cast<double>(probabilities[static_cast<std::size_t>(i)]);
  }
  return std::min(mass, 1.0);
}

double blended_quality(double recall, double coverage) noexcept {
  const double r = std::clamp(recall, 0.0, 1.0);
  const double c = std::clamp(coverage, 0.0, 1.0);
  return 0.35 * r + 0.65 * c;
}

double quality_to_score(double quality, double full_kv_score, double difficulty) {
  expects(difficulty > 0.0, "quality_to_score: difficulty must be positive");
  const double q = std::clamp(quality, 0.0, 1.0);
  return full_kv_score * (1.0 - std::pow(1.0 - q, difficulty));
}

}  // namespace ckv
