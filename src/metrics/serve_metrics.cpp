#include "metrics/serve_metrics.hpp"

#include <algorithm>

namespace ckv {

ServeMetrics::ServeMetrics()
    : total_tokens_(&registry_.counter("serve.tokens_generated")),
      total_preemptions_(&registry_.counter("serve.preemptions")),
      repair_ms_total_(&registry_.counter("serve.repair_ms_total")),
      repair_ticks_(&registry_.counter("serve.repair_ticks")),
      advance_wall_ms_(&registry_.counter("serve.advance_wall_ms")),
      fanout_sessions_(&registry_.counter("serve.fanout_sessions")),
      advanced_sessions_(&registry_.counter("serve.advanced_sessions")),
      occupancy_(&registry_.gauge("serve.fast_tier_bytes")),
      concurrency_(&registry_.gauge("serve.batch_size")),
      queue_depth_(&registry_.gauge("serve.queue_depth")),
      arrival_ms_(&registry_.gauge("serve.arrival_ms")),
      finish_ms_(&registry_.gauge("serve.finish_ms")),
      demand_stall_ms_total_(&registry_.counter("serve.demand_stall_ms_total")),
      demand_stall_steps_(&registry_.counter("serve.demand_stall_steps")),
      link_drained_bytes_(&registry_.counter("serve.link_drained_bytes")),
      link_busy_ms_(&registry_.counter("serve.link_busy_ms")),
      late_prefetch_tokens_(&registry_.counter("serve.late_prefetch_tokens")),
      ttft_hist_(&registry_.histogram("serve.ttft_ms")),
      inter_token_hist_(&registry_.histogram("serve.inter_token_ms")),
      fetch_bytes_hist_(&registry_.histogram("serve.fetch_bytes")),
      repair_hist_(&registry_.histogram("serve.repair_ms")),
      demand_stall_hist_(&registry_.histogram("serve.demand_stall_ms")) {}

void ServeMetrics::record_session(SessionRecord record) {
  expects(record.finish_ms >= record.first_token_ms &&
              record.first_token_ms >= record.prefill_done_ms &&
              record.prefill_done_ms >= record.admit_ms &&
              record.admit_ms >= record.arrival_ms,
          "ServeMetrics::record_session: timestamps out of order");
  total_tokens_->add(record.decode_len);
  total_preemptions_->add(static_cast<std::int64_t>(record.preemptions));
  // first-arrival / last-finish bookkeeping is the gauges' min/max.
  arrival_ms_->set(record.arrival_ms);
  finish_ms_->set(record.finish_ms);
  ttft_hist_->record(record.ttft_ms());
  registry_.counter("serve.prefetch_issued_tokens")
      .add(record.prefetch_issued_tokens);
  registry_.counter("serve.prefetch_hit_tokens").add(record.prefetch_hit_tokens);
  registry_.counter("serve.demand_fetched_tokens")
      .add(record.demand_fetched_tokens);
  registry_.counter("serve.prefetch_canceled_mispredict_tokens")
      .add(record.prefetch_canceled_mispredict_tokens);
  registry_.counter("serve.prefetch_canceled_enforce_tokens")
      .add(record.prefetch_canceled_enforce_tokens);
  registry_.counter("serve.prefetch_canceled_release_tokens")
      .add(record.prefetch_canceled_release_tokens);
  // Fault counters register only when nonzero: a fault-free run's metrics
  // export must stay byte-identical to a build without fault injection.
  if (record.aborted) {
    registry_.counter("serve.fault_aborts").add(std::int64_t{1});
  }
  if (record.degraded_steps > 0) {
    registry_.counter("serve.degraded_steps").add(record.degraded_steps);
  }
  records_.push_back(std::move(record));
}

void ServeMetrics::record_fault_fetch(Index retries, double penalty_ms,
                                      bool dead) {
  expects(retries >= 0 && penalty_ms >= 0.0,
          "ServeMetrics::record_fault_fetch: negative retry accounting");
  if (retries == 0 && !dead) {
    return;  // the fetch never faulted
  }
  ++fault_fetch_faults_;
  registry_.counter("serve.fault_fetch_faults").add(std::int64_t{1});
  if (retries > 0) {
    fault_retries_ += retries;
    fault_retry_ms_ += penalty_ms;
    registry_.counter("serve.retry_attempts").add(retries);
    registry_.counter("serve.retry_ms_total").add(penalty_ms);
  }
  if (dead) {
    ++dead_fetches_;
    registry_.counter("serve.fault_dead_fetches").add(std::int64_t{1});
  } else {
    ++fault_retried_ok_;
    registry_.counter("serve.retry_recovered").add(std::int64_t{1});
  }
}

void ServeMetrics::record_wire_retries(Index retries) {
  expects(retries >= 0, "ServeMetrics::record_wire_retries: negative count");
  if (retries > 0) {
    wire_retries_ += retries;
    registry_.counter("serve.fault_wire_retries").add(retries);
  }
}

void ServeMetrics::record_wire_failure() {
  ++wire_failures_;
  registry_.counter("serve.fault_wire_failures").add(std::int64_t{1});
}

void ServeMetrics::record_shed_session() {
  ++shed_sessions_;
  registry_.counter("serve.shed_sessions").add(std::int64_t{1});
}

Index ServeMetrics::degraded_steps_total() const noexcept {
  Index steps = 0;
  for (const auto& record : records_) {
    steps += record.degraded_steps;
  }
  return steps;
}

Index ServeMetrics::fault_aborts_total() const noexcept {
  Index aborts = 0;
  for (const auto& record : records_) {
    aborts += record.aborted ? 1 : 0;
  }
  return aborts;
}

void ServeMetrics::record_occupancy(std::int64_t fast_bytes) {
  occupancy_->set(static_cast<double>(fast_bytes));
}

void ServeMetrics::record_tick(double tick_ms, Index running_sessions,
                               Index queued) {
  expects(tick_ms >= 0.0, "ServeMetrics::record_tick: negative tick");
  concurrency_->set(static_cast<double>(running_sessions));
  queue_depth_->set(static_cast<double>(queued));
}

void ServeMetrics::record_repair(double repair_ms) {
  expects(repair_ms >= 0.0, "ServeMetrics::record_repair: negative cost");
  if (repair_ms > 0.0) {
    repair_ms_total_->add(repair_ms);
    repair_ticks_->add(std::int64_t{1});
    repair_hist_->record(repair_ms);
  }
}

void ServeMetrics::record_decode_gap(double gap_ms) {
  expects(gap_ms >= 0.0, "ServeMetrics::record_decode_gap: negative gap");
  inter_token_hist_->record(gap_ms);
}

void ServeMetrics::record_advance_wall(double wall_ms, Index fanned_out,
                                       Index advanced) {
  expects(wall_ms >= 0.0, "ServeMetrics::record_advance_wall: negative wall");
  expects(fanned_out >= 0 && fanned_out <= advanced,
          "ServeMetrics::record_advance_wall: fanned_out must be a subset of "
          "the advanced sessions");
  advance_wall_ms_->add(wall_ms);
  fanout_sessions_->add(static_cast<std::int64_t>(fanned_out));
  advanced_sessions_->add(static_cast<std::int64_t>(advanced));
}

void ServeMetrics::record_fetch_bytes(std::int64_t bytes) {
  expects(bytes >= 0, "ServeMetrics::record_fetch_bytes: negative bytes");
  fetch_bytes_hist_->record(static_cast<double>(bytes));
}

void ServeMetrics::record_demand_stall(double stall_ms) {
  expects(stall_ms >= 0.0, "ServeMetrics::record_demand_stall: negative stall");
  demand_stall_ms_total_->add(stall_ms);
  demand_stall_steps_->add(std::int64_t{1});
  demand_stall_hist_->record(stall_ms);
}

void ServeMetrics::record_transfer_tick(double drained_bytes, double busy_ms) {
  expects(drained_bytes >= 0.0 && busy_ms >= 0.0,
          "ServeMetrics::record_transfer_tick: negative drain");
  link_drained_bytes_->add(drained_bytes);
  link_busy_ms_->add(busy_ms);
}

void ServeMetrics::record_late_prefetch(std::int64_t tokens) {
  expects(tokens >= 0, "ServeMetrics::record_late_prefetch: negative tokens");
  late_prefetch_tokens_->add(tokens);
}

std::int64_t ServeMetrics::total_tokens() const noexcept {
  return total_tokens_->as_int();
}

Index ServeMetrics::total_preemptions() const noexcept {
  return static_cast<Index>(total_preemptions_->as_int());
}

double ServeMetrics::makespan_ms() const noexcept {
  return arrival_ms_->stat().count() > 0
             ? finish_ms_->stat().max() - arrival_ms_->stat().min()
             : 0.0;
}

double ServeMetrics::throughput_tps() const noexcept {
  const double span = makespan_ms();
  return span <= 0.0 ? 0.0
                     : static_cast<double>(total_tokens()) / (span / 1000.0);
}

std::vector<double> ServeMetrics::collect(
    double (SessionRecord::*fn)() const noexcept) const {
  std::vector<double> values;
  values.reserve(records_.size());
  for (const auto& record : records_) {
    values.push_back((record.*fn)());
  }
  return values;
}

double ServeMetrics::ttft_percentile(double p) const {
  const auto values = collect(&SessionRecord::ttft_ms);
  return values.empty() ? 0.0 : percentile(values, p);
}

double ServeMetrics::inter_token_percentile(double p) const {
  const auto values = collect(&SessionRecord::inter_token_ms);
  return values.empty() ? 0.0 : percentile(values, p);
}

double ServeMetrics::queue_wait_percentile(double p) const {
  const auto values = collect(&SessionRecord::queue_wait_ms);
  return values.empty() ? 0.0 : percentile(values, p);
}

double ServeMetrics::prefill_percentile(double p) const {
  const auto values = collect(&SessionRecord::prefill_ms);
  return values.empty() ? 0.0 : percentile(values, p);
}

double ServeMetrics::first_decode_wait_percentile(double p) const {
  const auto values = collect(&SessionRecord::first_decode_wait_ms);
  return values.empty() ? 0.0 : percentile(values, p);
}

double ServeMetrics::mean_queue_wait_ms() const noexcept {
  if (records_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& record : records_) {
    total += record.queue_wait_ms();
  }
  return total / static_cast<double>(records_.size());
}

double ServeMetrics::inter_token_gap_p99_ms() const {
  return inter_token_hist_->count() == 0 ? 0.0
                                         : inter_token_hist_->percentile(99.0);
}

Index ServeMetrics::max_queue_depth() const {
  return queue_depth_->stat().count() == 0
             ? 0
             : static_cast<Index>(queue_depth_->stat().max());
}

double ServeMetrics::mean_recall() const noexcept {
  if (records_.empty()) {
    return 0.0;
  }
  // Weight each session by its selection-forced step count so the fleet
  // aggregate has one step-level denominator: runs over the same trace
  // (chunked vs inline, repair on/off) then average over the exact same
  // steps, and sessions that never dropped a token cannot dilute it.
  double weighted = 0.0;
  std::int64_t steps = 0;
  for (const auto& record : records_) {
    weighted += record.mean_recall * static_cast<double>(record.recall_steps);
    steps += record.recall_steps;
  }
  if (steps > 0) {
    return weighted / static_cast<double>(steps);
  }
  // No session ever had to drop a token (every context fit its budget):
  // recall is vacuously perfect. Reporting the empty-stat 0.0 placeholders
  // here would make a lossless run indistinguishable from catastrophic
  // recall.
  return 1.0;
}

std::int64_t ServeMetrics::recall_steps_total() const noexcept {
  std::int64_t steps = 0;
  for (const auto& record : records_) {
    steps += record.recall_steps;
  }
  return steps;
}

double ServeMetrics::mean_coverage() const noexcept {
  if (records_.empty()) {
    return 0.0;
  }
  // Coverage samples come from the same selection-forced steps as recall,
  // so the aggregate shares recall's step weighting (and its vacuous-1.0
  // convention when nothing was ever dropped).
  double weighted = 0.0;
  std::int64_t steps = 0;
  for (const auto& record : records_) {
    weighted += record.mean_coverage * static_cast<double>(record.recall_steps);
    steps += record.recall_steps;
  }
  return steps > 0 ? weighted / static_cast<double>(steps) : 1.0;
}

double ServeMetrics::prefetch_hit_rate() const noexcept {
  if (records_.empty()) {
    return 0.0;
  }
  std::int64_t hits = 0;
  std::int64_t demand = 0;
  for (const auto& record : records_) {
    hits += record.prefetch_hit_tokens;
    demand += record.demand_fetched_tokens;
  }
  const std::int64_t fetched = hits + demand;
  // No fetch traffic at all: nothing to overlap, vacuously perfect (the
  // same convention as mean_recall's lossless case).
  return fetched > 0 ? static_cast<double>(hits) / static_cast<double>(fetched) : 1.0;
}

double ServeMetrics::prefetch_waste_rate() const noexcept {
  std::int64_t issued = 0;
  std::int64_t hits = 0;
  for (const auto& record : records_) {
    issued += record.prefetch_issued_tokens;
    hits += record.prefetch_hit_tokens;
  }
  return issued > 0 ? static_cast<double>(issued - hits) / static_cast<double>(issued)
                    : 0.0;
}

double ServeMetrics::prefetch_waste_rate(
    obs::FetchCancelReason reason) const noexcept {
  const std::int64_t issued = prefetch_issued_total();
  return issued > 0 ? static_cast<double>(prefetch_canceled_total(reason)) /
                          static_cast<double>(issued)
                    : 0.0;
}

std::int64_t ServeMetrics::prefetch_canceled_total(
    obs::FetchCancelReason reason) const noexcept {
  std::int64_t canceled = 0;
  for (const auto& record : records_) {
    switch (reason) {
      case obs::FetchCancelReason::kMisprediction:
        canceled += record.prefetch_canceled_mispredict_tokens;
        break;
      case obs::FetchCancelReason::kEnforcement:
        canceled += record.prefetch_canceled_enforce_tokens;
        break;
      case obs::FetchCancelReason::kSessionRelease:
        canceled += record.prefetch_canceled_release_tokens;
        break;
    }
  }
  return canceled;
}

std::int64_t ServeMetrics::prefetch_issued_total() const noexcept {
  std::int64_t issued = 0;
  for (const auto& record : records_) {
    issued += record.prefetch_issued_tokens;
  }
  return issued;
}

std::int64_t ServeMetrics::prefetch_hits_total() const noexcept {
  std::int64_t hits = 0;
  for (const auto& record : records_) {
    hits += record.prefetch_hit_tokens;
  }
  return hits;
}

double ServeMetrics::mean_cache_hit_rate() const noexcept {
  if (records_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& record : records_) {
    total += record.cache_hit_rate;
  }
  return total / static_cast<double>(records_.size());
}

double ServeMetrics::repair_ms_total() const noexcept {
  return repair_ms_total_->value();
}

Index ServeMetrics::repair_ticks() const noexcept {
  return static_cast<Index>(repair_ticks_->as_int());
}

double ServeMetrics::demand_stall_ms_total() const noexcept {
  return demand_stall_ms_total_->value();
}

std::int64_t ServeMetrics::demand_stall_steps() const noexcept {
  return demand_stall_steps_->as_int();
}

double ServeMetrics::link_drained_bytes_total() const noexcept {
  return link_drained_bytes_->value();
}

double ServeMetrics::link_busy_ms_total() const noexcept {
  return link_busy_ms_->value();
}

std::int64_t ServeMetrics::late_prefetch_tokens_total() const noexcept {
  return late_prefetch_tokens_->as_int();
}

double ServeMetrics::advance_wall_ms_total() const noexcept {
  return advance_wall_ms_->value();
}

std::int64_t ServeMetrics::fanout_sessions_total() const noexcept {
  return fanout_sessions_->as_int();
}

std::int64_t ServeMetrics::advanced_sessions_total() const noexcept {
  return advanced_sessions_->as_int();
}

double ServeMetrics::fanout_fraction() const noexcept {
  const std::int64_t advanced = advanced_sessions_->as_int();
  return advanced > 0
             ? static_cast<double>(fanout_sessions_->as_int()) /
                   static_cast<double>(advanced)
             : 0.0;
}

const RunningStat& ServeMetrics::occupancy_bytes() const noexcept {
  return occupancy_->stat();
}

std::int64_t ServeMetrics::peak_occupancy_bytes() const noexcept {
  return occupancy_->stat().count() == 0
             ? 0
             : static_cast<std::int64_t>(occupancy_->stat().max());
}

const RunningStat& ServeMetrics::concurrency() const noexcept {
  return concurrency_->stat();
}

}  // namespace ckv
