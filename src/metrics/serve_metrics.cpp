#include "metrics/serve_metrics.hpp"

#include <algorithm>

namespace ckv {

void ServeMetrics::record_session(SessionRecord record) {
  expects(record.finish_ms >= record.first_token_ms &&
              record.first_token_ms >= record.prefill_done_ms &&
              record.prefill_done_ms >= record.admit_ms &&
              record.admit_ms >= record.arrival_ms,
          "ServeMetrics::record_session: timestamps out of order");
  total_tokens_ += record.decode_len;
  total_preemptions_ += record.preemptions;
  if (!any_session_) {
    first_arrival_ms_ = record.arrival_ms;
    last_finish_ms_ = record.finish_ms;
    any_session_ = true;
  } else {
    first_arrival_ms_ = std::min(first_arrival_ms_, record.arrival_ms);
    last_finish_ms_ = std::max(last_finish_ms_, record.finish_ms);
  }
  records_.push_back(std::move(record));
}

void ServeMetrics::record_occupancy(std::int64_t fast_bytes) {
  occupancy_.add(static_cast<double>(fast_bytes));
}

void ServeMetrics::record_tick(double tick_ms, Index running_sessions) {
  expects(tick_ms >= 0.0, "ServeMetrics::record_tick: negative tick");
  concurrency_.add(static_cast<double>(running_sessions));
}

void ServeMetrics::record_repair(double repair_ms) {
  expects(repair_ms >= 0.0, "ServeMetrics::record_repair: negative cost");
  if (repair_ms > 0.0) {
    repair_ms_total_ += repair_ms;
    ++repair_ticks_;
  }
}

double ServeMetrics::makespan_ms() const noexcept {
  return any_session_ ? last_finish_ms_ - first_arrival_ms_ : 0.0;
}

double ServeMetrics::throughput_tps() const noexcept {
  const double span = makespan_ms();
  return span <= 0.0 ? 0.0 : static_cast<double>(total_tokens_) / (span / 1000.0);
}

std::vector<double> ServeMetrics::collect(
    double (SessionRecord::*fn)() const noexcept) const {
  std::vector<double> values;
  values.reserve(records_.size());
  for (const auto& record : records_) {
    values.push_back((record.*fn)());
  }
  return values;
}

double ServeMetrics::ttft_percentile(double p) const {
  const auto values = collect(&SessionRecord::ttft_ms);
  return values.empty() ? 0.0 : percentile(values, p);
}

double ServeMetrics::inter_token_percentile(double p) const {
  const auto values = collect(&SessionRecord::inter_token_ms);
  return values.empty() ? 0.0 : percentile(values, p);
}

double ServeMetrics::queue_wait_percentile(double p) const {
  const auto values = collect(&SessionRecord::queue_wait_ms);
  return values.empty() ? 0.0 : percentile(values, p);
}

double ServeMetrics::prefill_percentile(double p) const {
  const auto values = collect(&SessionRecord::prefill_ms);
  return values.empty() ? 0.0 : percentile(values, p);
}

double ServeMetrics::first_decode_wait_percentile(double p) const {
  const auto values = collect(&SessionRecord::first_decode_wait_ms);
  return values.empty() ? 0.0 : percentile(values, p);
}

double ServeMetrics::mean_queue_wait_ms() const noexcept {
  if (records_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& record : records_) {
    total += record.queue_wait_ms();
  }
  return total / static_cast<double>(records_.size());
}

double ServeMetrics::mean_recall() const noexcept {
  if (records_.empty()) {
    return 0.0;
  }
  // Weight each session by its selection-forced step count so the fleet
  // aggregate has one step-level denominator: runs over the same trace
  // (chunked vs inline, repair on/off) then average over the exact same
  // steps, and sessions that never dropped a token cannot dilute it.
  double weighted = 0.0;
  std::int64_t steps = 0;
  for (const auto& record : records_) {
    weighted += record.mean_recall * static_cast<double>(record.recall_steps);
    steps += record.recall_steps;
  }
  if (steps > 0) {
    return weighted / static_cast<double>(steps);
  }
  // No session ever had to drop a token (every context fit its budget):
  // recall is vacuously perfect. Reporting the empty-stat 0.0 placeholders
  // here would make a lossless run indistinguishable from catastrophic
  // recall.
  return 1.0;
}

std::int64_t ServeMetrics::recall_steps_total() const noexcept {
  std::int64_t steps = 0;
  for (const auto& record : records_) {
    steps += record.recall_steps;
  }
  return steps;
}

double ServeMetrics::mean_coverage() const noexcept {
  if (records_.empty()) {
    return 0.0;
  }
  // Coverage samples come from the same selection-forced steps as recall,
  // so the aggregate shares recall's step weighting (and its vacuous-1.0
  // convention when nothing was ever dropped).
  double weighted = 0.0;
  std::int64_t steps = 0;
  for (const auto& record : records_) {
    weighted += record.mean_coverage * static_cast<double>(record.recall_steps);
    steps += record.recall_steps;
  }
  return steps > 0 ? weighted / static_cast<double>(steps) : 1.0;
}

double ServeMetrics::prefetch_hit_rate() const noexcept {
  if (records_.empty()) {
    return 0.0;
  }
  std::int64_t hits = 0;
  std::int64_t demand = 0;
  for (const auto& record : records_) {
    hits += record.prefetch_hit_tokens;
    demand += record.demand_fetched_tokens;
  }
  const std::int64_t fetched = hits + demand;
  // No fetch traffic at all: nothing to overlap, vacuously perfect (the
  // same convention as mean_recall's lossless case).
  return fetched > 0 ? static_cast<double>(hits) / static_cast<double>(fetched) : 1.0;
}

double ServeMetrics::prefetch_waste_rate() const noexcept {
  std::int64_t issued = 0;
  std::int64_t hits = 0;
  for (const auto& record : records_) {
    issued += record.prefetch_issued_tokens;
    hits += record.prefetch_hit_tokens;
  }
  return issued > 0 ? static_cast<double>(issued - hits) / static_cast<double>(issued)
                    : 0.0;
}

std::int64_t ServeMetrics::prefetch_issued_total() const noexcept {
  std::int64_t issued = 0;
  for (const auto& record : records_) {
    issued += record.prefetch_issued_tokens;
  }
  return issued;
}

std::int64_t ServeMetrics::prefetch_hits_total() const noexcept {
  std::int64_t hits = 0;
  for (const auto& record : records_) {
    hits += record.prefetch_hit_tokens;
  }
  return hits;
}

double ServeMetrics::mean_cache_hit_rate() const noexcept {
  if (records_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& record : records_) {
    total += record.cache_hit_rate;
  }
  return total / static_cast<double>(records_.size());
}

std::int64_t ServeMetrics::peak_occupancy_bytes() const noexcept {
  return occupancy_.count() == 0 ? 0 : static_cast<std::int64_t>(occupancy_.max());
}

}  // namespace ckv
