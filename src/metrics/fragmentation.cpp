#include "metrics/fragmentation.hpp"

#include <algorithm>
#include <map>

#include "tensor/topk.hpp"

namespace ckv {

PageFragmentationReport analyze_page_fragmentation(std::span<const float> scores,
                                                   Index top_k, Index page_size) {
  expects(page_size > 0, "analyze_page_fragmentation: page_size must be positive");
  expects(top_k > 0, "analyze_page_fragmentation: top_k must be positive");

  PageFragmentationReport report;
  report.page_size = page_size;
  const auto important = top_k_indices(scores, top_k);
  report.important_tokens = static_cast<Index>(important.size());

  std::map<Index, Index> per_page;
  for (const Index token : important) {
    ++per_page[token / page_size];
  }
  report.pages_touched = static_cast<Index>(per_page.size());
  report.histogram.assign(static_cast<std::size_t>(page_size), 0);
  for (const auto& [page, count] : per_page) {
    ++report.histogram[static_cast<std::size_t>(std::min<Index>(count, page_size) - 1)];
  }
  report.tokens_loaded = report.pages_touched * page_size;
  report.tokens_wasted = report.tokens_loaded - report.important_tokens;
  report.mean_per_page =
      report.pages_touched == 0
          ? 0.0
          : static_cast<double>(report.important_tokens) /
                static_cast<double>(report.pages_touched);
  return report;
}

}  // namespace ckv
