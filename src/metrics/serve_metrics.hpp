// Serving-level metrics aggregation: per-session records (TTFT,
// inter-token latency, queue wait, selection quality, cache hit rate) plus
// fleet-level occupancy and throughput. All times are virtual milliseconds
// assigned by the scheduler from sim/latency_model step costs.
//
// Internally the aggregation lives on an obs::MetricsRegistry (named
// counters / gauges / log-linear histograms) instead of ad-hoc member
// scalars; the public accessors keep their historical semantics exactly
// (scalar sums are counters, per-tick stats are gauges), and the registry
// itself is exported by `ckv serve --metrics-out` as flat JSON/CSV.
#pragma once

#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "tensor/stats.hpp"
#include "util/common.hpp"

namespace ckv {

/// Completed-session summary the scheduler hands over at retirement.
/// Timestamps are ordered arrival <= admit <= prefill_done <= first_token
/// <= finish, splitting TTFT into queue wait, (chunked) prefill time, and
/// the wait for the first decode tick.
struct SessionRecord {
  Index id = 0;
  Index prompt_len = 0;
  Index decode_len = 0;
  double arrival_ms = 0.0;
  double admit_ms = 0.0;
  double prefill_done_ms = 0.0;
  double first_token_ms = 0.0;
  double finish_ms = 0.0;
  double mean_recall = 0.0;
  /// Meaningful (selection-forced) decode steps behind mean_recall. The
  /// fleet recall aggregate weights sessions by this count, so runs over
  /// the same trace share one denominator regardless of scheduling mode
  /// (chunked vs inline, repair on or off) and sessions with no
  /// selection-forced steps cannot dilute the comparison.
  Index recall_steps = 0;
  double mean_coverage = 0.0;
  double cache_hit_rate = 0.0;
  Index preemptions = 0;
  /// Async-prefetch traffic split (all zero when prefetch is off):
  /// fetched = prefetch_hit_tokens + demand_fetched_tokens; issued counts
  /// speculative fetches (hits + waste). Fleet rates weight sessions by
  /// these token counts, not per-session averages.
  std::int64_t prefetch_hit_tokens = 0;
  std::int64_t prefetch_issued_tokens = 0;
  std::int64_t demand_fetched_tokens = 0;
  /// Waste attribution: issued speculative fetches canceled, split by
  /// cause (obs::FetchCancelReason). Once a session retires every issued
  /// fetch has resolved, so the three components sum to
  /// prefetch_issued_tokens - prefetch_hit_tokens exactly.
  std::int64_t prefetch_canceled_mispredict_tokens = 0;
  std::int64_t prefetch_canceled_enforce_tokens = 0;
  std::int64_t prefetch_canceled_release_tokens = 0;

  // ---- fault injection (all zero on the fault-free path; decode_len is
  // the tokens actually generated, so an aborted session's throughput
  // contribution is what it really produced) ----

  /// True when the session ended via a mid-decode abort.
  bool aborted = false;
  /// Decode steps served in degraded (resident-only) selection mode.
  Index degraded_steps = 0;
  /// Billed fetch-retry attempts and their total backoff stall.
  Index fault_retries = 0;
  double fault_retry_ms = 0.0;
  /// Demand fetches declared dead (retries/deadline exhausted).
  Index dead_fetches = 0;

  /// Time spent queued before admission.
  [[nodiscard]] double queue_wait_ms() const noexcept {
    return admit_ms - arrival_ms;
  }
  /// Time from admission to the final prefill chunk. Under chunked prefill
  /// this spans several ticks and includes the decode work interleaved
  /// with the chunks, not just the prompt's own compute.
  [[nodiscard]] double prefill_ms() const noexcept {
    return prefill_done_ms - admit_ms;
  }
  /// Time from prefill completion to the first generated token (the
  /// scheduling gap before the session's first decode tick).
  [[nodiscard]] double first_decode_wait_ms() const noexcept {
    return first_token_ms - prefill_done_ms;
  }
  /// Time to first token, measured from arrival (== queue_wait_ms() +
  /// prefill_ms() + first_decode_wait_ms()).
  [[nodiscard]] double ttft_ms() const noexcept {
    return first_token_ms - arrival_ms;
  }
  /// Mean inter-token latency over the generation.
  [[nodiscard]] double inter_token_ms() const noexcept {
    return decode_len <= 1 ? 0.0
                           : (finish_ms - first_token_ms) /
                                 static_cast<double>(decode_len - 1);
  }
};

class ServeMetrics {
 public:
  ServeMetrics();
  // The cached handles point into registry_'s maps (node addresses survive
  // a move, not a copy).
  ServeMetrics(const ServeMetrics&) = delete;
  ServeMetrics& operator=(const ServeMetrics&) = delete;
  ServeMetrics(ServeMetrics&&) = default;
  ServeMetrics& operator=(ServeMetrics&&) = default;

  /// Ingests a retired session's record; validates timestamp ordering.
  void record_session(SessionRecord record);

  /// Samples global fast-tier occupancy at a tick boundary (unweighted
  /// per-tick sample, not time-weighted).
  void record_occupancy(std::int64_t fast_bytes);

  /// Records one scheduler tick: its virtual duration, the number of
  /// sessions that made progress (prefill chunks + decode steps), and the
  /// admission-queue depth at the tick boundary.
  void record_tick(double tick_ms, Index running_sessions, Index queued = 0);

  /// Records cluster-repair work billed this tick (virtual ms).
  void record_repair(double repair_ms);

  /// Records one observed inter-token gap (virtual ms between consecutive
  /// decode completions of one session) into the latency histogram.
  void record_decode_gap(double gap_ms);

  /// Records the *wall* time of one tick's advance phase (host
  /// milliseconds spent stepping sessions, parallel fan-out included) and
  /// how the batch was executed: `fanned_out` of the `advanced` sessions
  /// ran as pool tasks, the rest on the exact serial path. Wall time is
  /// the only non-deterministic quantity the scheduler records — billed
  /// virtual time stays the serial per-session composition — so these
  /// counters never feed a quality or billing column.
  void record_advance_wall(double wall_ms, Index fanned_out, Index advanced);

  /// Records the bytes one session demand-fetched in one decode step
  /// (synchronous slow->fast traffic that stalled the step).
  void record_fetch_bytes(std::int64_t bytes);

  // ---- transfer-engine instrumentation (sim/transfer_engine) ----

  /// Records one decode step's engine-modeled demand stall: the virtual ms
  /// the session waited for its demand bytes to reach the front of the
  /// contended slow->fast queue and cross the wire. Grows with queue
  /// position, which is what makes fleet contention visible per session.
  void record_demand_stall(double stall_ms);

  /// Records one tick's wire activity: bytes the engine drained and the
  /// virtual ms the link spent transferring (link utilization numerator).
  void record_transfer_tick(double drained_bytes, double busy_ms);

  /// Records speculative-fetch tokens whose copy had not finished draining
  /// when the selection wanted them (late prefetch: the hit converts back
  /// into demand traffic on the engine's queue).
  void record_late_prefetch(std::int64_t tokens);

  // ---- fault injection (serve.fault_* / serve.retry_* / degraded /
  // shed). Counters register lazily on first nonzero record so the
  // fault-free metrics export stays byte-identical to a pre-fault build.

  /// Records the resolved fate of one faulted demand fetch: `retries`
  /// billed retry attempts costing `penalty_ms` of backoff stall, `dead`
  /// when the fetch was declared dead (the step then degrades). A call
  /// with retries == 0 and !dead is a no-op (fault-free fetch).
  void record_fault_fetch(Index retries, double penalty_ms, bool dead);

  /// Records wire-level transfer retries reported by the engine.
  void record_wire_retries(Index retries);
  /// Records one demand transfer that failed after exhausting wire retries.
  void record_wire_failure();
  /// Records one queued arrival shed after waiting past the plan's bound.
  void record_shed_session();

  /// Fleet fault aggregates (plain mirrors — reading them never creates
  /// registry instruments, so exports stay untouched by queries).
  [[nodiscard]] Index degraded_steps_total() const noexcept;
  [[nodiscard]] Index fault_aborts_total() const noexcept;
  [[nodiscard]] Index shed_sessions_total() const noexcept {
    return shed_sessions_;
  }
  [[nodiscard]] Index fault_retries_total() const noexcept {
    return fault_retries_;
  }
  [[nodiscard]] double fault_retry_ms_total() const noexcept {
    return fault_retry_ms_;
  }
  /// Demand fetches that hit at least one transient fault...
  [[nodiscard]] Index fault_fetch_faults_total() const noexcept {
    return fault_fetch_faults_;
  }
  /// ...of which this many recovered via retry...
  [[nodiscard]] Index fault_retried_ok_total() const noexcept {
    return fault_retried_ok_;
  }
  /// ...and this many were declared dead (== degraded steps, each dead
  /// fetch degrades exactly one step).
  [[nodiscard]] Index dead_fetches_total() const noexcept {
    return dead_fetches_;
  }
  [[nodiscard]] Index wire_retries_total() const noexcept {
    return wire_retries_;
  }
  [[nodiscard]] Index wire_failures_total() const noexcept {
    return wire_failures_;
  }

  /// All retired sessions, retirement order.
  [[nodiscard]] const std::vector<SessionRecord>& records() const noexcept {
    return records_;
  }
  /// Retired session count.
  [[nodiscard]] Index sessions() const noexcept {
    return static_cast<Index>(records_.size());
  }
  /// Generated tokens summed over retired sessions.
  [[nodiscard]] std::int64_t total_tokens() const noexcept;
  /// Preemption events summed over retired sessions.
  [[nodiscard]] Index total_preemptions() const noexcept;

  /// Virtual time from the first arrival to the last finish.
  [[nodiscard]] double makespan_ms() const noexcept;

  /// Sustained decode throughput: generated tokens / makespan.
  [[nodiscard]] double throughput_tps() const noexcept;

  /// Percentiles over completed sessions (p in [0, 100]; 0 when none).
  [[nodiscard]] double ttft_percentile(double p) const;
  [[nodiscard]] double inter_token_percentile(double p) const;
  [[nodiscard]] double queue_wait_percentile(double p) const;
  /// Percentile of the prefill span (admit -> last chunk) per session.
  [[nodiscard]] double prefill_percentile(double p) const;
  /// Percentile of the post-prefill wait for the first decode tick.
  [[nodiscard]] double first_decode_wait_percentile(double p) const;
  [[nodiscard]] double mean_queue_wait_ms() const noexcept;

  /// p99 of per-step inter-token gaps from the serve.inter_token_ms
  /// histogram — a tail the per-session mean (inter_token_percentile)
  /// cannot see. 0 until the scheduler feeds gaps via record_decode_gap.
  [[nodiscard]] double inter_token_gap_p99_ms() const;
  /// Largest admission-queue depth sampled at any tick (0 before any).
  [[nodiscard]] Index max_queue_depth() const;

  /// Fleet recall@B: session means weighted by their recall_steps count
  /// (the Fig. 11-style recall signal over every selection-forced decode
  /// step). Sessions that never had to drop a token carry zero weight;
  /// when *no* session ever dropped one the metric is vacuously 1.0 (a
  /// lossless run must not read as zero recall). 0.0 with no sessions.
  [[nodiscard]] double mean_recall() const noexcept;
  /// Total selection-forced steps across retired sessions — the recall
  /// denominator, identical across runs of the same trace.
  [[nodiscard]] std::int64_t recall_steps_total() const noexcept;
  /// Step-weighted like mean_recall (coverage is sampled on the same
  /// selection-forced steps); vacuously 1.0 when nothing was dropped.
  [[nodiscard]] double mean_coverage() const noexcept;
  [[nodiscard]] double mean_cache_hit_rate() const noexcept;

  // ---- async-prefetch rates (token-weighted over retired sessions) ----

  /// Share of slow-tier fetch traffic covered in flight by prefetch:
  /// Σ prefetch hits / (Σ prefetch hits + Σ demand fetches). Vacuously
  /// 1.0 when sessions exist but nothing was ever fetched (a fleet with
  /// no fetch traffic has nothing to overlap); 0.0 with no sessions.
  [[nodiscard]] double prefetch_hit_rate() const noexcept;
  /// Share of issued speculative fetches the next selection did not use:
  /// (Σ issued - Σ hits) / Σ issued; 0 when nothing was issued.
  [[nodiscard]] double prefetch_waste_rate() const noexcept;
  [[nodiscard]] std::int64_t prefetch_issued_total() const noexcept;
  [[nodiscard]] std::int64_t prefetch_hits_total() const noexcept;

  /// Waste attribution: the share of issued speculative fetches canceled
  /// for the given cause (Σ canceled-for-reason / Σ issued; 0 when
  /// nothing was issued). Once every session has retired the three
  /// components sum to prefetch_waste_rate() exactly — waste is no longer
  /// one unexplained scalar.
  [[nodiscard]] double prefetch_waste_rate(obs::FetchCancelReason reason)
      const noexcept;
  [[nodiscard]] std::int64_t prefetch_canceled_total(
      obs::FetchCancelReason reason) const noexcept;

  /// Cluster-repair cost billed so far (virtual ms) and the tick count
  /// that carried any (bench_serving's repair-cost column).
  [[nodiscard]] double repair_ms_total() const noexcept;
  [[nodiscard]] Index repair_ticks() const noexcept;

  // ---- transfer-engine aggregates (zero when the engine is off) ----

  /// Summed engine-modeled demand stall over every decode step, and the
  /// step count behind it (mean stall = total / steps).
  [[nodiscard]] double demand_stall_ms_total() const noexcept;
  [[nodiscard]] std::int64_t demand_stall_steps() const noexcept;
  /// Bytes the transfer engine drained across the run.
  [[nodiscard]] double link_drained_bytes_total() const noexcept;
  /// Virtual ms the modeled wire spent transferring (divide by makespan
  /// for link utilization).
  [[nodiscard]] double link_busy_ms_total() const noexcept;
  /// Prefetch-hit tokens that arrived late (converted back to demand).
  [[nodiscard]] std::int64_t late_prefetch_tokens_total() const noexcept;

  // ---- wall-clock advance-phase accounting (host time, not billed) ----

  /// Total host milliseconds spent in tick advance phases.
  [[nodiscard]] double advance_wall_ms_total() const noexcept;
  /// Session advancements executed as parallel pool tasks / in total.
  [[nodiscard]] std::int64_t fanout_sessions_total() const noexcept;
  [[nodiscard]] std::int64_t advanced_sessions_total() const noexcept;
  /// Share of session advancements that ran on the pool (0 when none ran
  /// at all): how often the headroom guard let the tick fan out.
  [[nodiscard]] double fanout_fraction() const noexcept;

  /// Per-tick samples of global fast-tier occupancy (bytes).
  [[nodiscard]] const RunningStat& occupancy_bytes() const noexcept;
  /// Largest occupancy sample seen (0 before any sample).
  [[nodiscard]] std::int64_t peak_occupancy_bytes() const noexcept;
  /// Per-tick samples of the active batch size.
  [[nodiscard]] const RunningStat& concurrency() const noexcept;

  /// The instrument store behind the aggregates (serve.* namespace):
  /// export with write_json/write_csv, or extend from driver code.
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  [[nodiscard]] std::vector<double> collect(double (SessionRecord::*fn)()
                                                const noexcept) const;

  obs::MetricsRegistry registry_;
  // Cached instrument handles (registry_ map nodes are stable; this
  // class is never copied). Records stay as a vector: exact per-session
  // percentiles and token-weighted rates need the raw values.
  obs::Counter* total_tokens_;
  obs::Counter* total_preemptions_;
  obs::Counter* repair_ms_total_;
  obs::Counter* repair_ticks_;
  obs::Counter* advance_wall_ms_;
  obs::Counter* fanout_sessions_;
  obs::Counter* advanced_sessions_;
  obs::Gauge* occupancy_;
  obs::Gauge* concurrency_;
  obs::Gauge* queue_depth_;
  obs::Gauge* arrival_ms_;
  obs::Gauge* finish_ms_;
  obs::Counter* demand_stall_ms_total_;
  obs::Counter* demand_stall_steps_;
  obs::Counter* link_drained_bytes_;
  obs::Counter* link_busy_ms_;
  obs::Counter* late_prefetch_tokens_;
  obs::Histogram* ttft_hist_;
  obs::Histogram* inter_token_hist_;
  obs::Histogram* fetch_bytes_hist_;
  obs::Histogram* repair_hist_;
  obs::Histogram* demand_stall_hist_;
  std::vector<SessionRecord> records_;
  // Fault-path mirrors (registry instruments register lazily on first
  // nonzero record; accessors read these so they never create one).
  Index shed_sessions_ = 0;
  Index fault_retries_ = 0;
  double fault_retry_ms_ = 0.0;
  Index fault_fetch_faults_ = 0;
  Index fault_retried_ok_ = 0;
  Index dead_fetches_ = 0;
  Index wire_retries_ = 0;
  Index wire_failures_ = 0;
};

}  // namespace ckv
