// Deterministic fault injection for the serving stack. A FaultPlan is a
// seeded, replayable description of what goes wrong and when: transient
// slow->fast fetch failures with retry/backoff and a per-fetch deadline,
// wire-level transfer failures, link brownouts (temporary bandwidth
// reduction windows), mid-decode session aborts, and overload bursts that
// squeeze admission. The FaultInjector answers every question as a pure
// hash of (seed, identity) — no mutable state, no <random> engine, no
// query-order dependence — so the same plan produces byte-identical
// outcomes at any CKV_THREADS and regardless of which subsystem asks
// first (the PR 7 determinism contract, docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace ckv {

/// Everything the injector needs, value-semantic and validatable. All
/// rates are probabilities in [0, 1]; all windows are virtual-clock
/// milliseconds. `enabled == false` (the default) means the serving stack
/// takes the exact fault-free path — no branch of it may perturb billing,
/// metrics or selection when disabled.
struct FaultPlan {
  bool enabled = false;
  std::uint64_t seed = 0;

  /// Per (session, decode step) probability that the step's demand fetch
  /// hits a transient fault and must retry.
  double fetch_failure_rate = 0.0;
  /// Retry attempts before a demand fetch is declared dead (attempt k of
  /// a failed fetch bills retry_backoff_ms * 2^(k-1) of extra stall).
  Index fetch_max_retries = 3;
  double retry_backoff_ms = 0.5;
  /// Total retry penalty budget: a fetch whose accumulated backoff would
  /// exceed this deadline is declared dead early (timeout).
  double fetch_deadline_ms = 8.0;

  /// Per wire-request probability that a demand transfer fails on the
  /// link after draining and must re-transfer (TransferEngine retries it
  /// from zero up to wire_max_retries times, then reports it failed).
  double wire_failure_rate = 0.0;
  Index wire_max_retries = 2;

  /// Link brownout: every brownout_period_ms of virtual time, the first
  /// brownout_duration_ms run the link at brownout_factor x its rate.
  /// period 0 disables brownouts; factor 1 makes them exact no-ops.
  double brownout_period_ms = 0.0;
  double brownout_duration_ms = 0.0;
  double brownout_factor = 1.0;

  /// Per (session, decode step) probability that the session aborts after
  /// committing that step (client cancellation mid-decode).
  double abort_rate = 0.0;

  /// Overload burst: every burst_period_ms, the first burst_duration_ms
  /// multiply the admission byte cap by burst_admission_factor (< 1
  /// squeezes admission, modeling a demand spike elsewhere in the fleet).
  /// period 0 disables bursts.
  double burst_period_ms = 0.0;
  double burst_duration_ms = 0.0;
  double burst_admission_factor = 1.0;

  /// Queue shedding: a queued arrival that admission has blocked for more
  /// than shed_wait_ms of virtual time is dropped (counted, never
  /// crashed). 0 disables shedding.
  double shed_wait_ms = 0.0;

  /// The committed chaos preset used by `bench_serving --faults` and the
  /// CI chaos leg: every fault class active at rates mild enough that the
  /// --check-faults throughput floor (>= 80% of fault-free) holds.
  static FaultPlan chaos(std::uint64_t seed);

  /// Throws std::invalid_argument when any knob is out of range.
  void validate() const;
};

/// Pure-function oracle over a FaultPlan. Each query hashes the plan seed
/// with a stable identity tag; nothing is sampled sequentially, so two
/// subsystems (or two worker threads) asking in any order see the same
/// answers.
class FaultInjector {
 public:
  /// Resolved fate of one (session, step) demand fetch.
  struct FetchOutcome {
    Index retries = 0;        ///< extra attempts billed (0 = first try ok)
    double penalty_ms = 0.0;  ///< summed exponential backoff stall
    bool dead = false;        ///< retries exhausted or deadline exceeded
  };

  explicit FaultInjector(const FaultPlan& plan);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Fate of the demand fetch issued by `session_id` at decode step
  /// `step`. Attempt 0 fails with fetch_failure_rate; each retry re-rolls
  /// independently. penalty_ms accumulates retry_backoff_ms * 2^(k-1)
  /// per failed attempt k; crossing fetch_deadline_ms marks it dead.
  [[nodiscard]] FetchOutcome fetch_outcome(Index session_id, Index step) const;

  /// Whether wire transfer `request_id` (for session `client`) fails on
  /// its `attempt`-th try (0-based). Pure: safe to call from
  /// TransferEngine's drain loop.
  [[nodiscard]] bool wire_fails(std::uint64_t request_id, Index client,
                                Index attempt) const;

  /// Whether `session_id` aborts after committing decode step `step`.
  [[nodiscard]] bool abort_fires(Index session_id, Index step) const;

  /// Link rate multiplier at virtual time now_ms (1.0 outside brownouts).
  [[nodiscard]] double rate_factor_at(double now_ms) const noexcept;

  /// Admission byte-cap multiplier at virtual time now_ms (1.0 outside
  /// overload bursts).
  [[nodiscard]] double admission_factor_at(double now_ms) const noexcept;

 private:
  /// Uniform [0, 1) from the plan seed and an identity triple; stateless.
  [[nodiscard]] double uniform(std::uint64_t stream, std::uint64_t a,
                               std::uint64_t b) const noexcept;

  FaultPlan plan_;
};

}  // namespace ckv
