#include "sim/fault_injector.hpp"

#include <cmath>

namespace ckv {

namespace {

/// splitmix64 finalizer: a full-avalanche mix of one 64-bit word. The
/// standard constants (Steele et al.); good enough to decorrelate the
/// per-query streams without any sequential state.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d4a33a8c9fde4bULL;
  return x ^ (x >> 31);
}

/// In-window test for a periodic fault window: the first `duration` ms of
/// every `period` ms. fmod keeps it exact on the virtual clock.
bool in_window(double now_ms, double period_ms, double duration_ms) noexcept {
  if (period_ms <= 0.0 || duration_ms <= 0.0) {
    return false;
  }
  return std::fmod(now_ms, period_ms) < duration_ms;
}

void expect_rate(double rate, std::string_view name) {
  expects(rate >= 0.0 && rate <= 1.0,
          std::string("FaultPlan: ") + std::string(name) +
              " must be a probability in [0, 1]");
}

}  // namespace

FaultPlan FaultPlan::chaos(std::uint64_t seed) {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = seed;
  plan.fetch_failure_rate = 0.08;
  plan.fetch_max_retries = 3;
  plan.retry_backoff_ms = 0.4;
  plan.fetch_deadline_ms = 6.0;
  plan.wire_failure_rate = 0.05;
  plan.wire_max_retries = 2;
  plan.brownout_period_ms = 400.0;
  plan.brownout_duration_ms = 60.0;
  plan.brownout_factor = 0.5;
  plan.abort_rate = 0.004;
  plan.burst_period_ms = 900.0;
  plan.burst_duration_ms = 120.0;
  plan.burst_admission_factor = 0.7;
  plan.shed_wait_ms = 400.0;
  plan.validate();
  return plan;
}

void FaultPlan::validate() const {
  expect_rate(fetch_failure_rate, "fetch_failure_rate");
  expect_rate(wire_failure_rate, "wire_failure_rate");
  expect_rate(abort_rate, "abort_rate");
  expects(fetch_max_retries >= 0, "FaultPlan: fetch_max_retries must be >= 0");
  expects(wire_max_retries >= 0, "FaultPlan: wire_max_retries must be >= 0");
  expects(retry_backoff_ms >= 0.0, "FaultPlan: retry_backoff_ms must be >= 0");
  expects(fetch_deadline_ms >= 0.0, "FaultPlan: fetch_deadline_ms must be >= 0");
  expects(brownout_period_ms >= 0.0 && brownout_duration_ms >= 0.0,
          "FaultPlan: brownout windows must be >= 0");
  expects(brownout_period_ms == 0.0 ||
              brownout_duration_ms <= brownout_period_ms,
          "FaultPlan: brownout_duration_ms must fit inside the period");
  expects(brownout_factor > 0.0 && brownout_factor <= 1.0,
          "FaultPlan: brownout_factor must be in (0, 1]");
  expects(burst_period_ms >= 0.0 && burst_duration_ms >= 0.0,
          "FaultPlan: burst windows must be >= 0");
  expects(burst_period_ms == 0.0 || burst_duration_ms <= burst_period_ms,
          "FaultPlan: burst_duration_ms must fit inside the period");
  expects(burst_admission_factor > 0.0 && burst_admission_factor <= 1.0,
          "FaultPlan: burst_admission_factor must be in (0, 1]");
  expects(shed_wait_ms >= 0.0, "FaultPlan: shed_wait_ms must be >= 0");
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  plan_.validate();
  expects(plan_.enabled, "FaultInjector: constructing from a disabled plan");
}

double FaultInjector::uniform(std::uint64_t stream, std::uint64_t a,
                              std::uint64_t b) const noexcept {
  std::uint64_t x = mix64(plan_.seed ^ mix64(stream));
  x = mix64(x ^ mix64(a));
  x = mix64(x ^ mix64(b));
  // Top 53 bits -> [0, 1) double, the usual bit-exact construction.
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

FaultInjector::FetchOutcome FaultInjector::fetch_outcome(Index session_id,
                                                         Index step) const {
  FetchOutcome outcome;
  if (plan_.fetch_failure_rate <= 0.0) {
    return outcome;
  }
  const auto sid = static_cast<std::uint64_t>(session_id);
  const auto stp = static_cast<std::uint64_t>(step);
  double backoff = plan_.retry_backoff_ms;
  for (Index attempt = 0; attempt <= plan_.fetch_max_retries; ++attempt) {
    const std::uint64_t stream =
        fnv1a("fault/fetch") + static_cast<std::uint64_t>(attempt);
    if (uniform(stream, sid, stp) >= plan_.fetch_failure_rate) {
      return outcome;  // this attempt succeeds
    }
    if (attempt == plan_.fetch_max_retries) {
      outcome.dead = true;  // retries exhausted
      return outcome;
    }
    outcome.retries += 1;
    outcome.penalty_ms += backoff;
    backoff *= 2.0;
    if (outcome.penalty_ms > plan_.fetch_deadline_ms) {
      outcome.dead = true;  // timeout: deadline crossed mid-backoff
      return outcome;
    }
  }
  return outcome;
}

bool FaultInjector::wire_fails(std::uint64_t request_id, Index client,
                               Index attempt) const {
  if (plan_.wire_failure_rate <= 0.0) {
    return false;
  }
  const std::uint64_t stream =
      fnv1a("fault/wire") + static_cast<std::uint64_t>(attempt);
  return uniform(stream, request_id, static_cast<std::uint64_t>(client)) <
         plan_.wire_failure_rate;
}

bool FaultInjector::abort_fires(Index session_id, Index step) const {
  if (plan_.abort_rate <= 0.0) {
    return false;
  }
  return uniform(fnv1a("fault/abort"), static_cast<std::uint64_t>(session_id),
                 static_cast<std::uint64_t>(step)) < plan_.abort_rate;
}

double FaultInjector::rate_factor_at(double now_ms) const noexcept {
  return in_window(now_ms, plan_.brownout_period_ms, plan_.brownout_duration_ms)
             ? plan_.brownout_factor
             : 1.0;
}

double FaultInjector::admission_factor_at(double now_ms) const noexcept {
  return in_window(now_ms, plan_.burst_period_ms, plan_.burst_duration_ms)
             ? plan_.burst_admission_factor
             : 1.0;
}

}  // namespace ckv
