// Deterministic bandwidth-contended model of the slow->fast link (PCIe
// gather path in the paper). Fetches are enqueued with byte sizes and a
// priority (demand misses outrank speculative prefetch); each scheduler
// tick drains the queue at link_gbps x elapsed virtual time, so concurrent
// sessions *contend* for the wire and a fetch's completion time comes from
// its queue position instead of an independent bytes/bandwidth division.
//
// Everything here lives on the scheduler's virtual clock and is advanced
// only from the tick's serial phase: drain order is (priority, enqueue
// seq), ids are a monotone counter, and no host time or randomness enters,
// so the serving columns stay byte-identical at any worker count (the
// PR 7 determinism contract). The closed-form LatencyModel terms remain
// the single-session reference; this engine reproduces them when the link
// has headroom and degrades them under contention.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "util/common.hpp"

namespace ckv {

class TransferEngine {
 public:
  /// Drain classes, strongest first: every queued demand byte crosses the
  /// wire before any speculative byte (a miss stalls a decode step; a
  /// prefetch only loses its overlap window).
  enum class Priority : std::uint8_t { kDemand = 0, kSpeculative = 1 };

  /// A fully drained request, reported once by drain_until. start_ms is
  /// when the link first touched the request, end_ms when its last byte
  /// crossed — both derived from queue position, not request size alone.
  struct Completion {
    std::uint64_t id = 0;
    Index client = 0;
    Priority priority = Priority::kSpeculative;
    double bytes = 0.0;
    double start_ms = 0.0;
    double end_ms = 0.0;
    /// Wire attempts consumed beyond the first (fault-hook retries).
    Index attempts = 0;
    /// True when the fault hook exhausted its retries: the bytes crossed
    /// the wire but the transfer is reported dead — a typed error the
    /// caller degrades on, never a crash.
    bool failed = false;
  };

  /// Deterministic wire-fault oracle: returns true when demand request
  /// `id` (for session `client`) fails its `attempt`-th transfer. Must be
  /// a pure function of its arguments (FaultInjector::wire_fails) — the
  /// engine calls it from the drain loop in queue order.
  using FaultHook =
      std::function<bool(std::uint64_t id, Index client, Index attempt)>;

  /// Outcome of resolving a speculative request against the selection that
  /// consumed it (see resolve_spec).
  struct SpecResolution {
    /// Selected bytes the prediction covered but the wire had not finished
    /// copying — the caller re-enqueues these as demand traffic (the copy
    /// must still complete, now on the stall-critical path).
    double late_hit_bytes = 0.0;
    /// Mispredicted bytes that never drained: dropped from the queue, so
    /// the wire capacity they reserved is refunded to later requests.
    double refunded_bytes = 0.0;
  };

  /// link_gbps > 0: the modeled slow->fast bandwidth (GB/s; bytes/1e6 per
  /// virtual millisecond, the same unit convention as LatencyModel).
  explicit TransferEngine(double link_gbps);

  /// Queues `bytes` for `client` (a session/request id, echoed back on the
  /// completion) and returns the request id (ids start at 1; 0 is never
  /// issued and can serve as a "no request" sentinel).
  std::uint64_t enqueue(Index client, Priority priority, double bytes);

  /// Drops a queued or partially drained request (preemption / session
  /// release). Returns the un-drained bytes refunded to the queue; 0 when
  /// the id is unknown or already fully drained and reported.
  double cancel(std::uint64_t id);

  /// Resolves a speculative request once the next selection reveals which
  /// of its bytes were hits (`hit_bytes <= the request's total`). Drained
  /// capacity covers hits first: any hit shortfall is late (see
  /// SpecResolution), the never-drained remainder is refunded waste. The
  /// request is removed either way.
  SpecResolution resolve_spec(std::uint64_t id, double hit_bytes);

  /// Installs (or clears, with nullptr) the wire-fault oracle. A demand
  /// request whose drain completes while the hook reports failure resets
  /// its progress and re-queues at the back of the demand class, up to
  /// `max_retries` extra attempts; exhaustion emits a Completion with
  /// `failed = true`. Speculative traffic never consults the hook (a lost
  /// prefetch is already just a missed overlap).
  void set_fault_hook(FaultHook hook, Index max_retries);

  /// Scales the effective link rate (brownout modeling): capacity, busy
  /// time and backlog estimates all see rate x factor until changed.
  /// factor 1 restores the nominal wire exactly.
  void set_rate_factor(double factor);

  /// Advances the link clock to `now_ms`, spending (now_ms - clock) x rate
  /// bytes of capacity on the queue in (priority, enqueue seq) order, and
  /// returns the requests that finished, in drain order. Idle capacity is
  /// lost, not banked: a quiet tick does not let a later tick exceed the
  /// wire rate. Partially drained requests keep their progress (capacity
  /// carry-over across ticks happens per request, via bytes_drained).
  std::vector<Completion> drain_until(double now_ms);

  // ---- queries (all O(queue)) ----

  /// Un-drained bytes currently queued (both priorities).
  [[nodiscard]] double queued_bytes() const noexcept;
  /// Un-drained bytes queued at one priority.
  [[nodiscard]] double queued_bytes(Priority priority) const noexcept;
  /// Requests with un-drained bytes still in the queue.
  [[nodiscard]] Index queue_depth() const noexcept;
  /// Virtual-ms until the wire would finish every queued demand byte
  /// (demand preempts speculative, so only demand backlog counts).
  [[nodiscard]] double demand_backlog_ms() const noexcept;
  [[nodiscard]] double drained_bytes_total() const noexcept {
    return drained_bytes_total_;
  }
  /// Virtual milliseconds the wire spent actively transferring.
  [[nodiscard]] double busy_ms_total() const noexcept { return busy_ms_total_; }
  [[nodiscard]] double clock_ms() const noexcept { return clock_ms_; }
  /// Effective drain rate (nominal x the current brownout factor).
  [[nodiscard]] double rate_bytes_per_ms() const noexcept {
    return rate_bytes_per_ms_ * rate_factor_;
  }
  /// Wire-level retries the fault hook has triggered so far.
  [[nodiscard]] Index wire_retries_total() const noexcept {
    return wire_retries_total_;
  }
  /// Demand requests reported failed after exhausting wire retries.
  [[nodiscard]] Index wire_failures_total() const noexcept {
    return wire_failures_total_;
  }

 private:
  struct Request {
    std::uint64_t id = 0;
    Index client = 0;
    Priority priority = Priority::kSpeculative;
    double bytes = 0.0;
    double drained = 0.0;
    double start_ms = -1.0;  ///< first-drain time (-1 while untouched)
    Index attempts = 0;      ///< wire retries consumed (fault hook)
  };

  [[nodiscard]] std::deque<Request>& queue_for(Priority priority) noexcept {
    return priority == Priority::kDemand ? demand_ : spec_;
  }
  /// Linear scan of both queues plus the landed-speculation list; returns
  /// nullptr when the id is gone. Deterministic by construction (ids and
  /// queue order are insertion order).
  [[nodiscard]] Request* find(std::uint64_t id) noexcept;
  void erase(std::uint64_t id) noexcept;

  double rate_bytes_per_ms_;
  double rate_factor_ = 1.0;
  double clock_ms_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::deque<Request> demand_;
  std::deque<Request> spec_;
  /// Speculative requests whose bytes fully drained but whose hit/waste
  /// split is unknown until the next selection resolves them.
  std::deque<Request> landed_spec_;
  double drained_bytes_total_ = 0.0;
  double busy_ms_total_ = 0.0;
  FaultHook fault_hook_;
  Index fault_max_retries_ = 0;
  Index wire_retries_total_ = 0;
  Index wire_failures_total_ = 0;
};

}  // namespace ckv
