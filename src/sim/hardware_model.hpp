// Analytic hardware model for the latency experiments (Fig. 12 / Fig. 13).
// Decode is memory-bound (§I), so step time is dominated by bytes moved:
// weights and KV over HBM, fetched KV over PCIe. Efficiency factors
// calibrate the roofline to the paper's measured testbed (an eager-mode
// PyTorch pipeline does not reach peak bandwidth on the attention path);
// they are documented here and in EXPERIMENTS.md and affect absolute
// numbers only — the method ordering and scaling shapes come from the
// byte/flop counts.
#pragma once

namespace ckv {

struct HardwareModel {
  // Raw capabilities (NVIDIA Ada 6000 class + PCIe 4.0 x16).
  double hbm_gbps = 960.0;
  double pcie_gbps = 25.0;           ///< large contiguous transfers
  double pcie_gather_gbps = 10.0;    ///< cluster-granularity gathers (medium chunks)
  double compute_tflops = 165.0;     ///< dense fp16
  double cpu_gflops = 5.0;           ///< host-side selection math (InfiniGen)

  // Calibrated efficiency factors (fractions of peak achieved).
  double weight_bw_efficiency = 0.75;     ///< weight streaming during decode
  double attention_bw_efficiency = 0.11;  ///< decode attention path (unfused)
  double prefill_flops_efficiency = 0.45; ///< prefill GEMMs
  double clustering_flops_efficiency = 0.06;  ///< k-means kernels

  // Overheads.
  double transfer_overlap = 0.65;       ///< PCIe time hidden under compute
  double per_layer_launch_us = 15.0;    ///< kernel launches per layer per step
  double per_step_overhead_ms = 1.5;    ///< framework/sampling per decode step
  double host_sync_ms_per_layer = 0.12; ///< CPU<->GPU sync (per-token selection)

  /// Paper testbed preset.
  static HardwareModel ada6000();
};

}  // namespace ckv
