#include "sim/hardware_model.hpp"

namespace ckv {

HardwareModel HardwareModel::ada6000() { return HardwareModel{}; }

}  // namespace ckv
