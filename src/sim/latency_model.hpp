// Latency model: per-step cost breakdowns for every method plus prefill,
// composed into the end-to-end latencies of Fig. 12 and Fig. 13 and the
// decode-throughput numbers of §V-C. All byte counts come from the model
// shape; dynamic quantities (cache miss rate) come from measurements of
// the actual pipeline simulation.
//
// Every quantity here is *simulated* time on the scheduler's virtual
// clock — a pure function of the schedule, independent of host speed or
// worker count. The scheduler bills it in a pre-pass before any session
// advances, which is what lets the advance phase run in parallel while
// latency columns stay byte-identical at every CKV_THREADS (wall time is
// tracked separately; see docs/PERFORMANCE.md).
#pragma once

#include <cstdint>
#include <string>

#include "model/model_config.hpp"
#include "sim/hardware_model.hpp"
#include "util/common.hpp"

namespace ckv {

/// One decode step's cost components (milliseconds).
struct StepBreakdown {
  double weights_ms = 0.0;    ///< streaming model weights from HBM
  double kv_read_ms = 0.0;    ///< reading attended KV (HBM)
  double metadata_ms = 0.0;   ///< reading selection metadata (pages/centroids)
  double selection_ms = 0.0;  ///< scoring + indexing compute
  double sync_ms = 0.0;       ///< host synchronization (per-token selection)
  double transfer_ms = 0.0;   ///< PCIe fetches after overlap
  double overhead_ms = 0.0;   ///< launches + framework per-step overhead

  [[nodiscard]] double total_ms() const noexcept {
    return weights_ms + kv_read_ms + metadata_ms + selection_ms + sync_ms +
           transfer_ms + overhead_ms;
  }
};

/// End-to-end latency of a (prompt, decode) run.
struct RunLatency {
  double prefill_ms = 0.0;
  double decode_ms = 0.0;

  [[nodiscard]] double total_ms() const noexcept { return prefill_ms + decode_ms; }
  [[nodiscard]] double decode_throughput_tps(Index decode_len) const noexcept {
    return decode_ms <= 0.0 ? 0.0
                            : static_cast<double>(decode_len) / (decode_ms / 1000.0);
  }
};

class LatencyModel {
 public:
  LatencyModel(const HardwareModel& hw, const ModelConfig& model,
               Index element_bytes = 2);

  [[nodiscard]] const ModelConfig& model() const noexcept { return model_; }

  // ---- transfer-engine support (sim/transfer_engine) ----
  // The engine models the slow->fast wire explicitly; these expose the
  // hardware terms the closed-form paths bill with, so the two stay one
  // parameterization (single-session engine rows must reproduce the
  // closed-form columns).

  /// Modeled slow->fast gather bandwidth (GB/s).
  [[nodiscard]] double link_gather_gbps() const noexcept {
    return hw_.pcie_gather_gbps;
  }
  /// Fraction of fetch time hidden under compute by the gather pipeline.
  [[nodiscard]] double transfer_overlap() const noexcept {
    return hw_.transfer_overlap;
  }
  /// Wire bytes of one fetched token's KV entry at model scale (the byte
  /// unit every closed-form transfer term bills with); 0 = storage width.
  [[nodiscard]] std::int64_t fetch_bytes_per_token(
      Index transfer_element_bytes = 0) const noexcept {
    return model_.kv_bytes_per_token(
        transfer_element_bytes > 0 ? transfer_element_bytes : element_bytes_);
  }
  /// Visible stall of `bytes` of demand traffic on a shared link running
  /// at `link_gbps` (0 = the hardware gather rate): the closed-form
  /// transfer term's formula with the wire rate as a knob, applied by the
  /// scheduler to engine-modeled queue occupancy instead of per-session
  /// bytes.
  [[nodiscard]] double contended_fetch_ms(double bytes,
                                          double link_gbps = 0.0) const noexcept {
    const double gbps = link_gbps > 0.0 ? link_gbps : hw_.pcie_gather_gbps;
    return (1.0 - hw_.transfer_overlap) * bytes / (gbps * 1e6);
  }

  // ---- prefill ----

  /// Prefill compute time (GEMMs + quadratic attention).
  [[nodiscard]] double prefill_ms(Index prompt_len) const;

  /// Compute time of prefilling `chunk_tokens` prompt tokens whose causal
  /// prefix already holds `chunk_begin` tokens (chunked prefill): GEMM
  /// flops are linear in the chunk, attention flops bill each chunk query
  /// against its full prefix, so the chunks of one prompt sum exactly to
  /// prefill_ms of the whole prompt.
  [[nodiscard]] double prefill_chunk_ms(Index chunk_begin, Index chunk_tokens) const;

  /// Clustering cost during prefill before overlap (§IV-B): n_i k-means
  /// iterations over C0 = L/80 centroids for every KV head.
  [[nodiscard]] double clustering_cost_ms(Index prompt_len, Index iterations = 10,
                                          Index tokens_per_cluster = 80) const;

  /// Visible clustering overhead after overlapping with attention/FFN of
  /// the same and next layer (Fig. 6); the paper measures 6-8% of prefill.
  [[nodiscard]] double clustering_visible_overhead_ms(Index prompt_len) const;

  /// Cost of one cross-chunk cluster-repair pass over a `context_len`
  /// context: adjacent-batch centroid-pair scoring plus per-group k-means
  /// refinement (each refine iteration re-assigns at most every clustered
  /// token against its merged group's centroids, whose average width a
  /// small constant bounds). Like §IV-B clustering it is overlappable
  /// compute, billed at the clustering efficiency. An analytic upper
  /// bound: it bills the refinement term even when the merge threshold
  /// finds no pairs (ClusterKVEngine::repair_flops exposes the measured
  /// work for calibration). 0 when repair is off (refine_iterations <= 0).
  [[nodiscard]] double repair_ms(Index context_len, Index refine_iterations,
                                 Index tokens_per_cluster = 80) const;

  // ---- per-step decode costs ----

  [[nodiscard]] StepBreakdown full_kv_step(Index context_len) const;

  /// budget = attended tokens; miss_rate = measured cluster-cache miss
  /// rate; clusters = live centroid count (C0 + decode additions);
  /// transfer_element_bytes lets cache-miss fetches cross PCIe quantized
  /// (1 = int8 per-channel, see kvcache/quantization; 0 = storage width).
  [[nodiscard]] StepBreakdown clusterkv_step(Index context_len, Index budget,
                                             double miss_rate, Index clusters,
                                             Index transfer_element_bytes = 0) const;

  /// Visible PCIe time of an asynchronously issued gather of `bytes`,
  /// overlapped with `compute_ms` of the issuing step's computation: the
  /// fetch cost hides under the compute up to its full duration and only
  /// the remainder is billed (0 when the copy finishes first).
  [[nodiscard]] double overlapped_fetch_ms(double bytes,
                                           double compute_ms) const noexcept;

  /// ClusterKV step with async cluster prefetch (core/cluster_prefetch):
  /// demand_miss_rate = measured share of attended tokens fetched
  /// synchronously this step (misses the prediction failed to cover);
  /// prefetch_issue_rate = speculative fetch traffic issued per attended
  /// token (hits *and* waste — mispredicted bytes occupy the wire too).
  /// The demand share bills like clusterkv_step's transfer term; the
  /// issued share bills via overlapped_fetch_ms against the step's own
  /// compute, so a well-predicted fetch costs nothing visible. With
  /// prefetch_issue_rate = 0 and demand_miss_rate = miss_rate this equals
  /// clusterkv_step exactly (the sync-fetch baseline).
  [[nodiscard]] StepBreakdown clusterkv_prefetch_step(
      Index context_len, Index budget, double demand_miss_rate,
      double prefetch_issue_rate, Index clusters,
      Index transfer_element_bytes = 0) const;

  [[nodiscard]] StepBreakdown quest_step(Index context_len, Index budget,
                                         Index page_size = 16) const;

  /// InfiniGen on its FlexGen-style substrate: KV lives in host memory,
  /// per-token partial scoring on the host path with per-layer sync.
  [[nodiscard]] StepBreakdown infinigen_step(Index context_len, Index budget,
                                             Index partial_dim = 32) const;

  /// Full KV on the FlexGen-style substrate (Fig. 13a "InfiniGen (Full)"):
  /// every step streams the whole KV cache over PCIe.
  [[nodiscard]] StepBreakdown full_kv_offload_step(Index context_len) const;

  // ---- end-to-end composition ----

  enum class Method { kFullKV, kClusterKV, kQuest, kInfiniGen, kFullKVOffload };

  struct RunParams {
    Method method = Method::kFullKV;
    Index prompt_len = 8192;
    Index decode_len = 256;
    Index budget = 1024;
    double clusterkv_miss_rate = 0.37;  ///< measured default (R = 1)
    Index tokens_per_cluster = 80;
    Index decode_interval = 320;  ///< m (decode-side clustering cadence)
    Index decode_clusters = 4;    ///< C+
  };

  /// Sums per-step costs over the decode phase (context grows each step)
  /// plus prefill (and clustering overhead for ClusterKV).
  [[nodiscard]] RunLatency run_latency(const RunParams& params) const;

 private:
  [[nodiscard]] double hbm_ms(double bytes, double efficiency) const noexcept;
  [[nodiscard]] double common_overhead_ms() const noexcept;

  HardwareModel hw_;
  ModelConfig model_;
  Index element_bytes_;
};

/// Display name for tables.
std::string to_string(LatencyModel::Method method);

}  // namespace ckv
