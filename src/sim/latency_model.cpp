#include "sim/latency_model.hpp"

#include <algorithm>
#include <cmath>

namespace ckv {

LatencyModel::LatencyModel(const HardwareModel& hw, const ModelConfig& model,
                           Index element_bytes)
    : hw_(hw), model_(model), element_bytes_(element_bytes) {
  expects(element_bytes > 0, "LatencyModel: element_bytes must be positive");
  expects(model.num_layers > 0, "LatencyModel: model must have layers");
}

double LatencyModel::hbm_ms(double bytes, double efficiency) const noexcept {
  const double gbps = hw_.hbm_gbps * efficiency;
  return bytes / (gbps * 1e6);  // bytes / (GB/s) -> ms
}

double LatencyModel::common_overhead_ms() const noexcept {
  return hw_.per_step_overhead_ms +
         static_cast<double>(model_.num_layers) * hw_.per_layer_launch_us / 1000.0;
}

double LatencyModel::prefill_ms(Index prompt_len) const {
  expects(prompt_len > 0, "LatencyModel::prefill_ms: prompt must be positive");
  // GEMM flops: 2 * params * tokens; attention flops: 4 * L^2 * hidden per
  // layer (QK^T and PV, causal halves folded into the constant).
  const double gemm_flops =
      2.0 * static_cast<double>(model_.param_count) * static_cast<double>(prompt_len);
  const double attn_flops = 4.0 * static_cast<double>(prompt_len) *
                            static_cast<double>(prompt_len) *
                            static_cast<double>(model_.hidden_dim) *
                            static_cast<double>(model_.num_layers) * 0.5;
  const double tflops = hw_.compute_tflops * hw_.prefill_flops_efficiency;
  return (gemm_flops + attn_flops) / (tflops * 1e9);  // flops / (Tflop/s) -> ms
}

double LatencyModel::prefill_chunk_ms(Index chunk_begin, Index chunk_tokens) const {
  expects(chunk_begin >= 0, "LatencyModel::prefill_chunk_ms: negative begin");
  expects(chunk_tokens > 0, "LatencyModel::prefill_chunk_ms: chunk must be positive");
  const double c = static_cast<double>(chunk_tokens);
  const double b = static_cast<double>(chunk_begin);
  const double gemm_flops = 2.0 * static_cast<double>(model_.param_count) * c;
  // Causal attention of the chunk's queries: query i attends b + i keys,
  // so the chunk totals c*b + c^2/2 score/value positions (same constant
  // as prefill_ms; summing chunks of one prompt reproduces it exactly).
  const double attn_flops = 4.0 * (c * b + 0.5 * c * c) *
                            static_cast<double>(model_.hidden_dim) *
                            static_cast<double>(model_.num_layers);
  const double tflops = hw_.compute_tflops * hw_.prefill_flops_efficiency;
  return (gemm_flops + attn_flops) / (tflops * 1e9);
}

double LatencyModel::clustering_cost_ms(Index prompt_len, Index iterations,
                                        Index tokens_per_cluster) const {
  const double clusters = std::max<double>(
      1.0, static_cast<double>(prompt_len) / static_cast<double>(tokens_per_cluster));
  const double flops = 2.0 * static_cast<double>(iterations) * clusters *
                       static_cast<double>(prompt_len) *
                       static_cast<double>(model_.head_dim) *
                       static_cast<double>(model_.num_kv_heads) *
                       static_cast<double>(model_.num_layers);
  const double tflops = hw_.compute_tflops * hw_.clustering_flops_efficiency;
  return flops / (tflops * 1e9);
}

double LatencyModel::clustering_visible_overhead_ms(Index prompt_len) const {
  // Fig. 6: clustering overlaps attention + FFN of its layer and the
  // QKV/RoPE of the next; roughly the non-overlappable tail remains.
  const double kOverlapHidden = 0.0;  // fully asynchronous launch ...
  const double kVisibleShare = 1.0 - kOverlapHidden;
  // ... but the paper still measures 6-8% of prefill as visible clustering
  // cost, which matches the raw kernel time at our calibrated efficiency,
  // so the visible share stays 1.0 and the efficiency factor carries the
  // calibration.
  return kVisibleShare * clustering_cost_ms(prompt_len);
}

double LatencyModel::repair_ms(Index context_len, Index refine_iterations,
                               Index tokens_per_cluster) const {
  if (refine_iterations <= 0 || context_len <= 0) {
    return 0.0;
  }
  const double clusters = std::max<double>(
      1.0, static_cast<double>(context_len) / static_cast<double>(
                                                  std::max<Index>(1, tokens_per_cluster)));
  // Bounded average width of a merged repair group (clusters a re-assigned
  // token is scored against); matches the adjacent-batch merge policy,
  // which chains groups but keeps per-token refinement work narrow.
  constexpr double kRepairGroupClusters = 4.0;
  const double per_head =
      2.0 * clusters * static_cast<double>(model_.head_dim) +  // pair scoring
      2.0 * static_cast<double>(refine_iterations) * static_cast<double>(context_len) *
          kRepairGroupClusters * static_cast<double>(model_.head_dim);
  const double flops = per_head * static_cast<double>(model_.num_kv_heads) *
                       static_cast<double>(model_.num_layers);
  const double tflops = hw_.compute_tflops * hw_.clustering_flops_efficiency;
  return flops / (tflops * 1e9);
}

StepBreakdown LatencyModel::full_kv_step(Index context_len) const {
  StepBreakdown b;
  b.weights_ms = hbm_ms(static_cast<double>(model_.weight_bytes(element_bytes_)),
                        hw_.weight_bw_efficiency);
  b.kv_read_ms = hbm_ms(static_cast<double>(context_len) *
                            static_cast<double>(model_.kv_bytes_per_token(element_bytes_)),
                        hw_.attention_bw_efficiency);
  b.overhead_ms = common_overhead_ms();
  return b;
}

StepBreakdown LatencyModel::clusterkv_step(Index context_len, Index budget,
                                           double miss_rate, Index clusters,
                                           Index transfer_element_bytes) const {
  expects(miss_rate >= 0.0 && miss_rate <= 1.0,
          "LatencyModel::clusterkv_step: miss_rate must be in [0, 1]");
  expects(transfer_element_bytes >= 0,
          "LatencyModel::clusterkv_step: bad transfer width");
  StepBreakdown b;
  b.weights_ms = hbm_ms(static_cast<double>(model_.weight_bytes(element_bytes_)),
                        hw_.weight_bw_efficiency);
  const double attended = static_cast<double>(std::min<Index>(budget, context_len));
  b.kv_read_ms = hbm_ms(attended * static_cast<double>(
                                       model_.kv_bytes_per_token(element_bytes_)),
                        hw_.attention_bw_efficiency);
  // Centroid scoring: clusters x head_dim MACs per KV head per layer, plus
  // reading the centroids once.
  const double centroid_flops = 2.0 * static_cast<double>(clusters) *
                                static_cast<double>(model_.head_dim) *
                                static_cast<double>(model_.num_kv_heads) *
                                static_cast<double>(model_.num_layers);
  b.selection_ms = centroid_flops / (hw_.compute_tflops * 1e9);
  b.metadata_ms = hbm_ms(static_cast<double>(clusters) *
                             static_cast<double>(model_.head_dim) * element_bytes_ *
                             static_cast<double>(model_.num_kv_heads) *
                             static_cast<double>(model_.num_layers),
                         hw_.attention_bw_efficiency);
  // Cache misses cross PCIe as scattered per-cluster gathers, partially
  // hidden under compute; optionally quantized (KIVI-style int8).
  const Index wire_bytes =
      transfer_element_bytes > 0 ? transfer_element_bytes : element_bytes_;
  const double miss_bytes = miss_rate * attended *
                            static_cast<double>(model_.kv_bytes_per_token(wire_bytes));
  b.transfer_ms =
      (1.0 - hw_.transfer_overlap) * miss_bytes / (hw_.pcie_gather_gbps * 1e6);
  b.overhead_ms = common_overhead_ms();
  return b;
}

double LatencyModel::overlapped_fetch_ms(double bytes,
                                         double compute_ms) const noexcept {
  const double fetch_ms = bytes / (hw_.pcie_gather_gbps * 1e6);
  return std::max(0.0, fetch_ms - std::max(0.0, compute_ms));
}

StepBreakdown LatencyModel::clusterkv_prefetch_step(
    Index context_len, Index budget, double demand_miss_rate,
    double prefetch_issue_rate, Index clusters, Index transfer_element_bytes) const {
  expects(prefetch_issue_rate >= 0.0,
          "LatencyModel::clusterkv_prefetch_step: issue rate must be >= 0");
  StepBreakdown b = clusterkv_step(context_len, budget, demand_miss_rate, clusters,
                                   transfer_element_bytes);
  const double attended = static_cast<double>(std::min<Index>(budget, context_len));
  const Index wire_bytes =
      transfer_element_bytes > 0 ? transfer_element_bytes : element_bytes_;
  const double prefetch_bytes =
      prefetch_issue_rate * attended *
      static_cast<double>(model_.kv_bytes_per_token(wire_bytes));
  // The async copies overlap the step's own computation (weights, KV
  // reads, scoring, overheads); only a fetch outlasting all of it shows.
  // Demand misses and speculative copies share one wire, so the demand
  // gather's *full* occupancy (miss bytes / rate, before its own overlap
  // discount) eats into the window the prefetch can hide under — the two
  // transfers serialize on the link instead of each hiding under the
  // other's compute.
  const double compute_ms = b.total_ms() - b.transfer_ms;
  const double miss_bytes = demand_miss_rate * attended *
                            static_cast<double>(model_.kv_bytes_per_token(wire_bytes));
  const double demand_wire_ms = miss_bytes / (hw_.pcie_gather_gbps * 1e6);
  b.transfer_ms +=
      overlapped_fetch_ms(prefetch_bytes, compute_ms - demand_wire_ms);
  return b;
}

StepBreakdown LatencyModel::quest_step(Index context_len, Index budget,
                                       Index page_size) const {
  expects(page_size > 0, "LatencyModel::quest_step: page_size must be positive");
  StepBreakdown b;
  b.weights_ms = hbm_ms(static_cast<double>(model_.weight_bytes(element_bytes_)),
                        hw_.weight_bw_efficiency);
  const double attended = static_cast<double>(std::min<Index>(budget, context_len));
  b.kv_read_ms = hbm_ms(attended * static_cast<double>(
                                       model_.kv_bytes_per_token(element_bytes_)),
                        hw_.attention_bw_efficiency);
  // Page metadata: per-channel max and min vectors per page per KV head.
  // A partial trailing page stores full min/max vectors and is scored like
  // any other, so the page count rounds up.
  const double pages =
      std::ceil(static_cast<double>(context_len) / static_cast<double>(page_size));
  const double metadata_bytes = pages * 2.0 * static_cast<double>(model_.head_dim) *
                                element_bytes_ *
                                static_cast<double>(model_.num_kv_heads) *
                                static_cast<double>(model_.num_layers);
  b.metadata_ms = hbm_ms(metadata_bytes, hw_.attention_bw_efficiency);
  const double score_flops = 2.0 * pages * 2.0 * static_cast<double>(model_.head_dim) *
                             static_cast<double>(model_.num_kv_heads) *
                             static_cast<double>(model_.num_layers);
  b.selection_ms = score_flops / (hw_.compute_tflops * 1e9);
  b.overhead_ms = common_overhead_ms();
  return b;
}

StepBreakdown LatencyModel::infinigen_step(Index context_len, Index budget,
                                           Index partial_dim) const {
  StepBreakdown b;
  b.weights_ms = hbm_ms(static_cast<double>(model_.weight_bytes(element_bytes_)),
                        hw_.weight_bw_efficiency);
  const double attended = static_cast<double>(std::min<Index>(budget, context_len));
  b.kv_read_ms = hbm_ms(attended * static_cast<double>(
                                       model_.kv_bytes_per_token(element_bytes_)),
                        hw_.attention_bw_efficiency);
  // Per-token partial scoring over the whole context (§II-C: cost scales
  // linearly with L), executed on the host management path.
  const double score_flops = 2.0 * static_cast<double>(context_len) *
                             static_cast<double>(partial_dim) *
                             static_cast<double>(model_.num_kv_heads) *
                             static_cast<double>(model_.num_layers);
  b.selection_ms = score_flops / (hw_.cpu_gflops * 1e6);
  b.sync_ms = hw_.host_sync_ms_per_layer * static_cast<double>(model_.num_layers);
  // Selected KV is fetched from host memory every step (no cluster cache);
  // speculation overlaps part of it.
  const double fetch_bytes =
      attended * static_cast<double>(model_.kv_bytes_per_token(element_bytes_));
  b.transfer_ms =
      (1.0 - hw_.transfer_overlap) * fetch_bytes / (hw_.pcie_gather_gbps * 1e6);
  b.overhead_ms = common_overhead_ms();
  return b;
}

StepBreakdown LatencyModel::full_kv_offload_step(Index context_len) const {
  StepBreakdown b;
  b.weights_ms = hbm_ms(static_cast<double>(model_.weight_bytes(element_bytes_)),
                        hw_.weight_bw_efficiency);
  // Whole KV cache streams over PCIe each step (contiguous transfers).
  const double kv_bytes = static_cast<double>(context_len) *
                          static_cast<double>(model_.kv_bytes_per_token(element_bytes_));
  b.transfer_ms = (1.0 - hw_.transfer_overlap) * kv_bytes / (hw_.pcie_gbps * 1e6);
  b.kv_read_ms = hbm_ms(kv_bytes, hw_.attention_bw_efficiency);
  b.overhead_ms = common_overhead_ms();
  return b;
}

RunLatency LatencyModel::run_latency(const RunParams& params) const {
  RunLatency run;
  run.prefill_ms = prefill_ms(params.prompt_len);
  if (params.method == Method::kClusterKV) {
    run.prefill_ms += clustering_visible_overhead_ms(params.prompt_len);
  }

  Index clusters = std::max<Index>(
      1, params.prompt_len / std::max<Index>(1, params.tokens_per_cluster));
  for (Index step = 0; step < params.decode_len; ++step) {
    const Index context = params.prompt_len + step + 1;
    StepBreakdown b;
    switch (params.method) {
      case Method::kFullKV:
        b = full_kv_step(context);
        break;
      case Method::kClusterKV:
        b = clusterkv_step(context, params.budget, params.clusterkv_miss_rate,
                           clusters);
        if (step > 0 && step % params.decode_interval == 0) {
          clusters += params.decode_clusters;
          // Decode-side clustering of m tokens into C+ clusters (§III-B),
          // amortized; small but accounted.
          const double flops = 2.0 * 10.0 * static_cast<double>(params.decode_clusters) *
                               static_cast<double>(params.decode_interval) *
                               static_cast<double>(model_.head_dim) *
                               static_cast<double>(model_.num_kv_heads) *
                               static_cast<double>(model_.num_layers);
          run.decode_ms +=
              flops / (hw_.compute_tflops * hw_.clustering_flops_efficiency * 1e9);
        }
        break;
      case Method::kQuest:
        b = quest_step(context, params.budget);
        break;
      case Method::kInfiniGen:
        b = infinigen_step(context, params.budget);
        break;
      case Method::kFullKVOffload:
        b = full_kv_offload_step(context);
        break;
    }
    run.decode_ms += b.total_ms();
  }
  return run;
}

std::string to_string(LatencyModel::Method method) {
  switch (method) {
    case LatencyModel::Method::kFullKV:
      return "Full KV";
    case LatencyModel::Method::kClusterKV:
      return "ClusterKV";
    case LatencyModel::Method::kQuest:
      return "Quest";
    case LatencyModel::Method::kInfiniGen:
      return "InfiniGen";
    case LatencyModel::Method::kFullKVOffload:
      return "InfiniGen (Full)";
  }
  return "unknown";
}

}  // namespace ckv
