#include "sim/transfer_engine.hpp"

#include <algorithm>

namespace ckv {

namespace {

/// Completion tolerance for the floating-point byte countdown: capacity
/// subtraction rounds in the low bits, and a request must not survive on a
/// sub-byte residue. Deterministic — the same arithmetic runs every time.
constexpr double kByteEpsilon = 1e-6;

}  // namespace

TransferEngine::TransferEngine(double link_gbps)
    : rate_bytes_per_ms_(link_gbps * 1e6) {
  expects(link_gbps > 0.0, "TransferEngine: link_gbps must be positive");
}

void TransferEngine::set_fault_hook(FaultHook hook, Index max_retries) {
  expects(max_retries >= 0,
          "TransferEngine::set_fault_hook: max_retries must be >= 0");
  fault_hook_ = std::move(hook);
  fault_max_retries_ = max_retries;
}

void TransferEngine::set_rate_factor(double factor) {
  expects(factor > 0.0 && factor <= 1.0,
          "TransferEngine::set_rate_factor: factor must be in (0, 1]");
  rate_factor_ = factor;
}

std::uint64_t TransferEngine::enqueue(Index client, Priority priority,
                                      double bytes) {
  expects(bytes >= 0.0, "TransferEngine::enqueue: negative bytes");
  Request request;
  request.id = next_id_++;
  request.client = client;
  request.priority = priority;
  request.bytes = bytes;
  queue_for(priority).push_back(request);
  return request.id;
}

TransferEngine::Request* TransferEngine::find(std::uint64_t id) noexcept {
  for (auto* queue : {&demand_, &spec_, &landed_spec_}) {
    for (auto& request : *queue) {
      if (request.id == id) {
        return &request;
      }
    }
  }
  return nullptr;
}

void TransferEngine::erase(std::uint64_t id) noexcept {
  for (auto* queue : {&demand_, &spec_, &landed_spec_}) {
    for (auto it = queue->begin(); it != queue->end(); ++it) {
      if (it->id == id) {
        queue->erase(it);
        return;
      }
    }
  }
}

double TransferEngine::cancel(std::uint64_t id) {
  Request* request = find(id);
  if (request == nullptr) {
    return 0.0;
  }
  const double refunded = std::max(0.0, request->bytes - request->drained);
  erase(id);
  return refunded;
}

TransferEngine::SpecResolution TransferEngine::resolve_spec(std::uint64_t id,
                                                            double hit_bytes) {
  expects(hit_bytes >= 0.0, "TransferEngine::resolve_spec: negative hits");
  SpecResolution resolution;
  Request* request = find(id);
  if (request == nullptr) {
    return resolution;
  }
  expects(request->priority == Priority::kSpeculative,
          "TransferEngine::resolve_spec: request is not speculative");
  const double hits = std::min(hit_bytes, request->bytes);
  // Drained capacity covers the hit bytes first: the prediction's useful
  // part is what the issuing step wanted on the wire earliest, so waste
  // only counts as transferred once every hit byte has crossed.
  resolution.late_hit_bytes = std::max(0.0, hits - request->drained);
  resolution.refunded_bytes = std::max(
      0.0, request->bytes - request->drained - resolution.late_hit_bytes);
  erase(id);
  return resolution;
}

std::vector<TransferEngine::Completion> TransferEngine::drain_until(
    double now_ms) {
  expects(now_ms >= clock_ms_,
          "TransferEngine::drain_until: the virtual clock cannot run "
          "backwards");
  std::vector<Completion> completions;
  // Brownouts scale the whole window's rate: the scheduler samples the
  // fault plan once per tick and sets the factor before draining, so the
  // window is uniform and the arithmetic stays replayable.
  const double rate = rate_bytes_per_ms_ * rate_factor_;
  double capacity = (now_ms - clock_ms_) * rate;
  // The wire starts where the previous drain left off if it was busy then,
  // otherwise work begins the moment this window opens. Queued-but-idle
  // time before clock_ms_ never transfers bytes: idle capacity is lost.
  double cursor = clock_ms_;
  for (Priority priority : {Priority::kDemand, Priority::kSpeculative}) {
    auto& queue = queue_for(priority);
    while (!queue.empty() && capacity > 0.0) {
      Request& request = queue.front();
      const double remaining = request.bytes - request.drained;
      const double take = std::min(remaining, capacity);
      if (request.start_ms < 0.0) {
        request.start_ms = cursor;
      }
      request.drained += take;
      capacity -= take;
      cursor += take / rate;
      drained_bytes_total_ += take;
      busy_ms_total_ += take / rate;
      if (request.bytes - request.drained > kByteEpsilon) {
        break;  // capacity exhausted mid-request; progress carries over
      }
      if (priority == Priority::kDemand && fault_hook_ &&
          fault_hook_(request.id, request.client, request.attempts)) {
        if (request.attempts < fault_max_retries_) {
          // Transient wire fault: the copy is lost, progress resets, and
          // the request re-queues behind the current demand backlog. The
          // wasted wire time stays billed (the link really was busy).
          Request retry = request;
          retry.drained = 0.0;
          retry.start_ms = -1.0;
          ++retry.attempts;
          ++wire_retries_total_;
          queue.pop_front();
          queue.push_back(retry);
          continue;
        }
        // Retries exhausted: surface a typed failure, never a crash. The
        // request leaves the queue so its reservation cannot strand.
        ++wire_failures_total_;
        Completion dead;
        dead.id = request.id;
        dead.client = request.client;
        dead.priority = request.priority;
        dead.bytes = request.bytes;
        dead.start_ms = request.start_ms;
        dead.end_ms = cursor;
        dead.attempts = request.attempts;
        dead.failed = true;
        completions.push_back(dead);
        queue.pop_front();
        continue;
      }
      Completion done;
      done.id = request.id;
      done.client = request.client;
      done.priority = request.priority;
      done.bytes = request.bytes;
      done.start_ms = request.start_ms;
      done.end_ms = cursor;
      done.attempts = request.attempts;
      completions.push_back(done);
      if (priority == Priority::kSpeculative) {
        // A landed speculation is still unresolved: its hit/waste split
        // waits for the next selection (resolve_spec), so the request
        // parks instead of vanishing.
        landed_spec_.push_back(request);
      }
      queue.pop_front();
    }
    if (capacity <= 0.0) {
      break;
    }
  }
  clock_ms_ = now_ms;
  return completions;
}

double TransferEngine::queued_bytes() const noexcept {
  return queued_bytes(Priority::kDemand) + queued_bytes(Priority::kSpeculative);
}

double TransferEngine::queued_bytes(Priority priority) const noexcept {
  const auto& queue = priority == Priority::kDemand ? demand_ : spec_;
  double bytes = 0.0;
  for (const auto& request : queue) {
    bytes += request.bytes - request.drained;
  }
  return bytes;
}

Index TransferEngine::queue_depth() const noexcept {
  return static_cast<Index>(demand_.size() + spec_.size());
}

double TransferEngine::demand_backlog_ms() const noexcept {
  return queued_bytes(Priority::kDemand) / (rate_bytes_per_ms_ * rate_factor_);
}

}  // namespace ckv
