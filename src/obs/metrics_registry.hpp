// Named metrics registry: counters, gauges and log-linear histograms the
// serving stack accumulates into, replacing ad-hoc scalar fields. The
// registry is the machine-readable side of observability (flat JSON/CSV
// dumps via `ckv serve --metrics-out`); the tracer (obs/trace.hpp) is the
// timeline side. ServeMetrics keeps its public aggregate API but stores
// through these instruments internally.
//
// Everything here is deterministic: histogram buckets are derived with
// frexp (pure bit manipulation, identical across platforms/libms), and
// instruments iterate in name order when exported.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>

#include "tensor/stats.hpp"
#include "util/common.hpp"
#include "util/thread_safety.hpp"

namespace ckv::obs {

/// Monotonically increasing sum. Backed by a double so integer token /
/// byte counts stay exact up to 2^53 while virtual-ms costs accumulate in
/// the same instrument type.
class Counter {
 public:
  void add(double delta) noexcept { value_ += delta; }
  void add(std::int64_t delta) noexcept { value_ += static_cast<double>(delta); }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] std::int64_t as_int() const noexcept {
    return static_cast<std::int64_t>(value_);
  }

 private:
  double value_ = 0.0;
};

/// Point-in-time samples of a level (fast-tier bytes, batch size, queue
/// depth): keeps the last sample plus a RunningStat over all samples, in
/// the exact add order the caller used (ServeMetrics equivalence depends
/// on that ordering).
class Gauge {
 public:
  void set(double value) noexcept {
    last_ = value;
    stat_.add(value);
  }
  [[nodiscard]] double last() const noexcept { return last_; }
  [[nodiscard]] const RunningStat& stat() const noexcept { return stat_; }

 private:
  double last_ = 0.0;
  RunningStat stat_;
};

/// Log-linear histogram: each power-of-two octave is split into
/// `kSubBuckets` linear sub-buckets, giving a bounded relative error of
/// 1/kSubBuckets per octave across the full double range without
/// preconfigured bounds. Bucketing uses frexp only — no logarithms — so
/// bucket assignment is bit-exact on every platform. Values <= 0 land in
/// a single underflow bucket.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;

  void record(double value) noexcept;

  [[nodiscard]] Index count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Approximate percentile (p in [0, 100]) by linear interpolation
  /// inside the covering bucket, clamped to the observed [min, max].
  /// Relative error is bounded by the sub-bucket width (12.5%).
  [[nodiscard]] double percentile(double p) const;

  /// Occupied buckets, ascending by value: {lower_bound, count}.
  [[nodiscard]] const std::map<std::int32_t, std::int64_t>& buckets()
      const noexcept {
    return buckets_;
  }
  /// Lower edge of a bucket key as returned by buckets().
  [[nodiscard]] static double bucket_lower(std::int32_t key) noexcept;
  [[nodiscard]] static double bucket_upper(std::int32_t key) noexcept;

  /// Key of the values-<= 0 bucket in buckets() (bounds are not derived
  /// from the key; percentile treats it as [min(min, 0), 0]).
  static constexpr std::int32_t kUnderflowKey =
      std::numeric_limits<std::int32_t>::min();

 private:
  std::map<std::int32_t, std::int64_t> buckets_;
  Index count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name-keyed instrument store. Instruments are created on first access
/// and live for the registry's lifetime; references stay valid across
/// later insertions (std::map nodes are stable). Export walks names in
/// lexicographic order so dumps are diffable.
///
/// Concurrency contract: *thread-compatible, externally synchronized*. A
/// registry is confined to the scheduler thread — ServeMetrics records
/// only from the tick's serial commit phase, never from pool workers
/// (docs/SCHEDULING.md). The maps are CKV_GUARDED_BY an ExclusiveContext
/// (a compile-time-only capability, no runtime lock): the clang CI leg
/// rejects any new access path that does not explicitly claim exclusive
/// ownership, which is how "don't record from a worker" stays a build
/// error instead of a TSan finding. Note the claim covers the *maps*;
/// instrument references handed out by the accessors inherit the same
/// contract by documentation (the analysis cannot follow them).
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) {
    const ExclusiveLock own(owner_);
    return counters_[name];
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) {
    const ExclusiveLock own(owner_);
    return gauges_[name];
  }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    const ExclusiveLock own(owner_);
    return histograms_[name];
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    const ExclusiveLock own(owner_);
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    const ExclusiveLock own(owner_);
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    const ExclusiveLock own(owner_);
    return histograms_;
  }

  /// Flat JSON dump: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with count/sum/mean/min/max/p50/p95/p99 per
  /// histogram and last/mean/min/max/count per gauge.
  void write_json(std::ostream& out) const;
  /// Flat CSV dump: kind,name,field,value — one row per exported scalar.
  void write_csv(std::ostream& out) const;

 private:
  /// Static stand-in for the owning thread (see the class comment).
  mutable ExclusiveContext owner_;
  std::map<std::string, Counter> counters_ CKV_GUARDED_BY(owner_);
  std::map<std::string, Gauge> gauges_ CKV_GUARDED_BY(owner_);
  std::map<std::string, Histogram> histograms_ CKV_GUARDED_BY(owner_);
};

}  // namespace ckv::obs
