#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

namespace ckv::obs {

namespace {

/// Per-thread ambient context. The tracer is a process-global singleton
/// but its cursor must not be: sessions advancing concurrently on pool
/// workers each set the track/time of the session they are stepping, and
/// a shared atomic cursor would interleave them onto whichever track was
/// written last. Microseconds to match TraceEvent::virtual_us.
thread_local double t_virtual_now_us = 0.0;
thread_local std::int64_t t_track = 0;

}  // namespace

void Tracer::set_virtual_now_ms(double now_ms) noexcept {
  t_virtual_now_us = now_ms * 1000.0;
}

double Tracer::virtual_now_ms() const noexcept { return t_virtual_now_us / 1000.0; }

void Tracer::set_track(std::int64_t track) noexcept { t_track = track; }

std::int64_t Tracer::track() const noexcept { return t_track; }

const char* to_string(FetchCancelReason reason) noexcept {
  switch (reason) {
    case FetchCancelReason::kMisprediction:
      return "misprediction";
    case FetchCancelReason::kEnforcement:
      return "enforcement";
    case FetchCancelReason::kSessionRelease:
      return "session-release";
  }
  return "unknown";
}

void Tracer::enable(std::size_t capacity) {
  expects(capacity > 0, "Tracer::enable: capacity must be positive");
  const LockGuard lock(mutex_);
  ring_.assign(capacity, TraceEvent{});
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  names_.clear();
  ids_.clear();
  track_names_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() noexcept {
  enabled_.store(false, std::memory_order_relaxed);
  const LockGuard lock(mutex_);
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  size_ = 0;
}

void Tracer::set_track_name(std::int64_t track, const std::string& name) {
  if (!enabled()) {
    return;
  }
  const LockGuard lock(mutex_);
  track_names_[track] = name;
}

std::uint16_t Tracer::intern_locked(const char* name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  // Interned ids are 16-bit; the event vocabulary is a few dozen static
  // strings, so saturating at the cap (and aliasing to one overflow name)
  // beats aborting a long traced run.
  if (names_.size() >= TraceEvent::kNoArg) {
    return static_cast<std::uint16_t>(names_.size() - 1);
  }
  const auto id = static_cast<std::uint16_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(name, id);
  return id;
}

void Tracer::record(TraceEvent::Phase phase, const char* name, std::int64_t track,
                    double virtual_ms, std::initializer_list<Arg> args) {
  const auto wall = std::chrono::steady_clock::now().time_since_epoch();
  TraceEvent event;
  event.phase = phase;
  event.track = track;
  event.virtual_us = virtual_ms * 1000.0;
  event.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count());
  const LockGuard lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed) || ring_.empty()) {
    return;  // lost the race with disable()
  }
  event.name = intern_locked(name);
  int slot = 0;
  for (const Arg& arg : args) {
    if (slot >= 2) {
      break;
    }
    event.arg_names[slot] = intern_locked(arg.name);
    event.args[slot] = arg.value;
    ++slot;
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;  // overwrote the oldest event
  }
}

std::vector<TraceEvent> Tracer::events() const {
  const LockGuard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest first: when full, the oldest slot is head_ (the next overwrite
  // target); otherwise the ring starts at 0.
  const std::size_t begin = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(begin + i) % ring_.size()]);
  }
  return out;
}

std::size_t Tracer::size() const {
  const LockGuard lock(mutex_);
  return size_;
}

std::size_t Tracer::capacity() const {
  const LockGuard lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::dropped() const {
  const LockGuard lock(mutex_);
  return dropped_;
}

std::string Tracer::name_of(std::uint16_t id) const {
  const LockGuard lock(mutex_);
  return id < names_.size() ? names_[id] : std::string{};
}

namespace {

/// Minimal JSON string escaping (event names are controlled identifiers,
/// but track names may carry arbitrary text).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

char phase_letter(TraceEvent::Phase phase) noexcept {
  switch (phase) {
    case TraceEvent::Phase::kBegin:
      return 'B';
    case TraceEvent::Phase::kEnd:
      return 'E';
    case TraceEvent::Phase::kInstant:
      return 'i';
    case TraceEvent::Phase::kCounter:
      return 'C';
  }
  return 'i';
}

std::string format_ts(double us) {
  // Chrome ts is microseconds; fixed notation keeps the validator's float
  // parsing trivial and diff-friendly.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& out) const {
  std::vector<TraceEvent> sorted;
  std::uint64_t dropped_events = 0;
  std::map<std::int64_t, std::string> track_names;
  std::vector<std::string> names;
  {
    const LockGuard lock(mutex_);
    sorted.reserve(size_);
    const std::size_t begin = size_ == ring_.size() && !ring_.empty() ? head_ : 0;
    for (std::size_t i = 0; i < size_; ++i) {
      sorted.push_back(ring_[(begin + i) % ring_.size()]);
    }
    dropped_events = dropped_;
    track_names = track_names_;
    names = names_;
  }
  // Stable sort by (track, ts): per-track timestamps become monotone and
  // same-timestamp events keep emission order, so a zero-duration span's
  // B still precedes its E and nesting survives the sort.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.track != b.track ? a.track < b.track
                                               : a.virtual_us < b.virtual_us;
                   });

  out << "{\n\"displayTimeUnit\": \"ms\",\n";
  out << "\"otherData\": {\"clock\": \"virtual (scheduler) time; wall_ns args "
         "carry the wall-clock dual\", \"dropped_events\": "
      << dropped_events << "},\n";
  out << "\"traceEvents\": [\n";
  bool first = true;
  for (const auto& [track, label] : track_names) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
        << track << ", \"args\": {\"name\": \"" << json_escape(label) << "\"}}";
  }
  for (const TraceEvent& event : sorted) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    const std::string name =
        event.name < names.size() ? names[event.name] : std::string("?");
    out << "{\"name\": \"" << json_escape(name) << "\", \"ph\": \""
        << phase_letter(event.phase) << "\", \"pid\": 0, \"tid\": " << event.track
        << ", \"ts\": " << format_ts(event.virtual_us);
    if (event.phase == TraceEvent::Phase::kInstant) {
      out << ", \"s\": \"t\"";
    }
    out << ", \"args\": {\"wall_ns\": " << event.wall_ns;
    for (int slot = 0; slot < 2; ++slot) {
      if (event.arg_names[slot] != TraceEvent::kNoArg) {
        const std::string arg_name = event.arg_names[slot] < names.size()
                                         ? names[event.arg_names[slot]]
                                         : std::string("?");
        out << ", \"" << json_escape(arg_name) << "\": " << event.args[slot];
      }
    }
    out << "}}";
  }
  out << "\n]\n}\n";
}

Tracer& tracer() noexcept {
  static Tracer instance;
  return instance;
}

}  // namespace ckv::obs
