#include "obs/metrics_registry.hpp"

#include <cmath>

namespace ckv::obs {

namespace {

/// Bucket key layout: exponent * kSubBuckets + sub-bucket, where frexp's
/// mantissa range [0.5, 1) is split into kSubBuckets equal slices. Finite
/// positive doubles map to keys well inside int32.
std::int32_t bucket_key(double value) noexcept {
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // [0.5, 1)
  const int sub = static_cast<int>((mantissa - 0.5) *
                                   (2.0 * Histogram::kSubBuckets));
  const int clamped = std::min(sub, Histogram::kSubBuckets - 1);
  return static_cast<std::int32_t>(exp) * Histogram::kSubBuckets + clamped;
}

}  // namespace

void Histogram::record(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const std::int32_t key = value > 0.0 ? bucket_key(value) : kUnderflowKey;
  ++buckets_[key];
}

double Histogram::bucket_lower(std::int32_t key) noexcept {
  if (key == kUnderflowKey) {
    return 0.0;
  }
  // floor-divide toward -inf so negative exponents round correctly
  std::int32_t exp = key / kSubBuckets;
  std::int32_t sub = key % kSubBuckets;
  if (sub < 0) {
    sub += kSubBuckets;
    exp -= 1;
  }
  return std::ldexp(0.5 + 0.5 * static_cast<double>(sub) / kSubBuckets,
                    exp);
}

double Histogram::bucket_upper(std::int32_t key) noexcept {
  if (key == kUnderflowKey) {
    return 0.0;
  }
  return bucket_lower(key + 1);
}

double Histogram::percentile(double p) const {
  expects(p >= 0.0 && p <= 100.0, "Histogram::percentile: p out of range");
  if (count_ == 0) {
    return 0.0;
  }
  // Target the same fractional rank convention as ckv::percentile().
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  std::int64_t seen = 0;
  for (const auto& [key, bucket_count] : buckets_) {
    if (static_cast<double>(seen + bucket_count) > rank) {
      const double lo = key == kUnderflowKey ? std::min(min_, 0.0)
                                             : bucket_lower(key);
      const double hi = key == kUnderflowKey ? 0.0 : bucket_upper(key);
      // Interpolate by the rank's position inside this bucket.
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(bucket_count);
      const double value = lo + frac * (hi - lo);
      return std::min(std::max(value, min_), max_);
    }
    seen += bucket_count;
  }
  return max_;
}

namespace {

void json_number(std::ostream& out, double value) {
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << buf;
  } else {
    out << "null";
  }
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& out) const {
  const ExclusiveLock own(owner_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
    json_number(out, counter.value());
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"last\": ";
    json_number(out, gauge.last());
    out << ", \"count\": " << gauge.stat().count() << ", \"mean\": ";
    json_number(out, gauge.stat().mean());
    out << ", \"min\": ";
    json_number(out, gauge.stat().count() == 0 ? 0.0 : gauge.stat().min());
    out << ", \"max\": ";
    json_number(out, gauge.stat().count() == 0 ? 0.0 : gauge.stat().max());
    out << "}";
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": {\"count\": " << hist.count() << ", \"sum\": ";
    json_number(out, hist.sum());
    out << ", \"mean\": ";
    json_number(out, hist.mean());
    out << ", \"min\": ";
    json_number(out, hist.min());
    out << ", \"max\": ";
    json_number(out, hist.max());
    out << ", \"p50\": ";
    json_number(out, hist.percentile(50.0));
    out << ", \"p95\": ";
    json_number(out, hist.percentile(95.0));
    out << ", \"p99\": ";
    json_number(out, hist.percentile(99.0));
    out << "}";
    first = false;
  }
  out << "\n  }\n}\n";
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  const ExclusiveLock own(owner_);
  out << "kind,name,field,value\n";
  const auto row = [&out](const char* kind, const std::string& name,
                          const char* field, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << kind << ',' << name << ',' << field << ',' << buf << '\n';
  };
  for (const auto& [name, counter] : counters_) {
    row("counter", name, "value", counter.value());
  }
  for (const auto& [name, gauge] : gauges_) {
    row("gauge", name, "last", gauge.last());
    row("gauge", name, "count", static_cast<double>(gauge.stat().count()));
    row("gauge", name, "mean", gauge.stat().mean());
    row("gauge", name, "min", gauge.stat().count() == 0 ? 0.0 : gauge.stat().min());
    row("gauge", name, "max", gauge.stat().count() == 0 ? 0.0 : gauge.stat().max());
  }
  for (const auto& [name, hist] : histograms_) {
    row("histogram", name, "count", static_cast<double>(hist.count()));
    row("histogram", name, "sum", hist.sum());
    row("histogram", name, "mean", hist.mean());
    row("histogram", name, "min", hist.min());
    row("histogram", name, "max", hist.max());
    row("histogram", name, "p50", hist.percentile(50.0));
    row("histogram", name, "p95", hist.percentile(95.0));
    row("histogram", name, "p99", hist.percentile(99.0));
  }
}

}  // namespace ckv::obs
