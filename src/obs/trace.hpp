// Structured event tracer for the serving stack: a ring-buffer of spans,
// instants and counter samples stamped on the scheduler's *virtual* clock
// (the timeline every quality/latency metric lives on) with a wall-clock
// dual per event (what the host actually spent). Near-zero cost when
// disabled: every record call is one relaxed atomic load and a branch —
// no allocation, no lock, no clock read — so instrumentation can stay in
// the hot path permanently. docs/OBSERVABILITY.md documents the event
// schema, the clock semantics and the overhead contract.
//
// Call-site model: scheduler-level code owns the ambient context (current
// virtual time + current track, one track per session plus track 0 for
// the scheduler itself); leaf code (tiered store fetches, repair passes,
// prefetch issue) records instants against that ambient context without
// knowing whose step it is running inside. The ambient context is
// *per-thread*: when the scheduler fans session steps out to the worker
// pool, each worker sets the context of the session it is advancing, so
// leaf instants from concurrent steps land on their own session's track
// instead of clobbering one global cursor. The exporter emits Chrome
// trace-event JSON loadable in Perfetto / chrome://tracing, validated in
// CI by tools/check_trace.py.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/thread_safety.hpp"

namespace ckv::obs {

/// Why an issued speculative (prefetch) slow->fast copy was dropped.
/// Carried on tiered-store cancel events and summed per reason into the
/// serving waste attribution (SessionRecord / ServeMetrics), so the
/// aggregate prefetch_waste_rate decomposes into causes instead of one
/// unexplained scalar.
enum class FetchCancelReason : std::uint8_t {
  kMisprediction = 0,   ///< the next selection did not use the issued copy
  kEnforcement = 1,     ///< budget enforcement reclaimed the reservation
  kSessionRelease = 2,  ///< the session retired/released mid-flight
};
inline constexpr int kFetchCancelReasonCount = 3;

[[nodiscard]] const char* to_string(FetchCancelReason reason) noexcept;

/// Trace-track id namespace: track 0 is the scheduler, 1 + request id is
/// that session's track, and kWorkerTrackBase + slot carries the pool
/// workers' fan-out spans (slot 0 is the calling thread). The base is far
/// above any plausible request id so the spaces cannot collide.
inline constexpr std::int64_t kWorkerTrackBase = std::int64_t{1} << 20;

/// Dedicated track for the slow->fast transfer engine's link spans
/// (sim/transfer_engine): one below the worker base, far above any
/// session track, so the wire's occupancy renders as its own lane in
/// Perfetto without colliding with either namespace.
inline constexpr std::int64_t kTransferTrack = kWorkerTrackBase - 1;

/// One recorded event. Virtual timestamps are microseconds on the
/// scheduler clock (Chrome's native "ts" unit); wall_ns is the
/// steady-clock dual taken at record time. Names and argument names are
/// interned ids (Tracer::name_of resolves them).
struct TraceEvent {
  enum class Phase : std::uint8_t {
    kBegin,    ///< span open ("B")
    kEnd,      ///< span close ("E")
    kInstant,  ///< point event ("i")
    kCounter,  ///< counter sample ("C")
  };
  static constexpr std::uint16_t kNoArg = 0xffff;

  Phase phase = Phase::kInstant;
  std::uint16_t name = 0;
  std::uint16_t arg_names[2] = {kNoArg, kNoArg};
  std::int64_t track = 0;
  double virtual_us = 0.0;
  std::uint64_t wall_ns = 0;
  std::int64_t args[2] = {0, 0};
};

/// Ring-buffer tracer. Disabled by default: the buffer is not allocated
/// and record calls return after one branch. enable() allocates a
/// fixed-capacity ring; on overflow the oldest events are dropped (the
/// most recent window is the one worth keeping at the end of a run) and
/// the drop count is reported in the export so validators can tell a
/// truncated trace from a malformed one.
///
/// Thread-safety: record paths take an internal mutex only when enabled,
/// and the ambient context (track + virtual now) is thread_local — each
/// pool worker advancing a session under the scheduler's parallel fan-out
/// carries its own cursor, so concurrent steps' leaf events land on
/// coherent per-session tracks. Ring order across tracks varies with
/// thread interleaving, but within one track all of a tick's events come
/// from a single thread, and the exporter's stable (track, ts) sort makes
/// the written trace per-track deterministic anyway.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  struct Arg {
    const char* name;
    std::int64_t value;
  };

  /// Allocates the ring (dropping any previously recorded events) and
  /// turns recording on.
  void enable(std::size_t capacity = kDefaultCapacity);

  /// Turns recording off and frees the ring. Recorded events are
  /// discarded; export before disabling.
  void disable() noexcept;

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // ---- ambient context (set by the scheduler, read by leaf records) ----
  // Per-thread state: a fan-out worker's set_track/set_virtual_now_ms only
  // affects records made from that worker, never the scheduler thread's
  // cursor or a sibling worker's.

  void set_virtual_now_ms(double now_ms) noexcept;
  [[nodiscard]] double virtual_now_ms() const noexcept;
  /// Track 0 is the scheduler; sessions use 1 + session id; pool workers
  /// use kWorkerTrackBase + slot.
  void set_track(std::int64_t track) noexcept;
  [[nodiscard]] std::int64_t track() const noexcept;

  /// Human-readable track label, exported as Chrome thread-name metadata.
  void set_track_name(std::int64_t track, const std::string& name);

  // ---- recording (ambient track/time unless _at variant) ----

  void begin(const char* name, std::initializer_list<Arg> args = {}) {
    if (enabled()) {
      record(TraceEvent::Phase::kBegin, name, track(), virtual_now_ms(), args);
    }
  }
  void begin_at(const char* name, std::int64_t track, double virtual_ms,
                std::initializer_list<Arg> args = {}) {
    if (enabled()) {
      record(TraceEvent::Phase::kBegin, name, track, virtual_ms, args);
    }
  }
  void end(const char* name, std::initializer_list<Arg> args = {}) {
    if (enabled()) {
      record(TraceEvent::Phase::kEnd, name, track(), virtual_now_ms(), args);
    }
  }
  void end_at(const char* name, std::int64_t track, double virtual_ms,
              std::initializer_list<Arg> args = {}) {
    if (enabled()) {
      record(TraceEvent::Phase::kEnd, name, track, virtual_ms, args);
    }
  }
  void instant(const char* name, std::initializer_list<Arg> args = {}) {
    if (enabled()) {
      record(TraceEvent::Phase::kInstant, name, track(), virtual_now_ms(), args);
    }
  }
  void instant_at(const char* name, std::int64_t track, double virtual_ms,
                  std::initializer_list<Arg> args = {}) {
    if (enabled()) {
      record(TraceEvent::Phase::kInstant, name, track, virtual_ms, args);
    }
  }
  void counter(const char* name, std::int64_t value) {
    if (enabled()) {
      record(TraceEvent::Phase::kCounter, name, 0, virtual_now_ms(),
             {{name, value}});
    }
  }

  // ---- inspection / export ----

  /// Recorded events, oldest first (at most `capacity` of them).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Events currently held in the ring.
  [[nodiscard]] std::size_t size() const;
  /// Ring capacity (0 while disabled).
  [[nodiscard]] std::size_t capacity() const;
  /// Events discarded to overflow since enable().
  [[nodiscard]] std::uint64_t dropped() const;
  /// Resolves an interned name id ("" for out-of-range ids).
  [[nodiscard]] std::string name_of(std::uint16_t id) const;

  /// Writes the Chrome trace-event JSON ("traceEvents" array plus
  /// metadata), events stably sorted by (track, virtual ts) so per-track
  /// timestamps are monotone and span begin/end pairs stay balanced —
  /// exactly what tools/check_trace.py validates. Wall-clock duals ride
  /// in each event's args as "wall_ns".
  void write_chrome_trace(std::ostream& out) const;

 private:
  void record(TraceEvent::Phase phase, const char* name, std::int64_t track,
              double virtual_ms, std::initializer_list<Arg> args);
  std::uint16_t intern_locked(const char* name) CKV_REQUIRES(mutex_);

  std::atomic<bool> enabled_{false};

  // Every record/export path locks mutex_ internally; the capability
  // annotations make the clang CI leg reject any new code path that
  // touches the ring or the intern tables without it.
  mutable Mutex mutex_;
  std::vector<TraceEvent> ring_ CKV_GUARDED_BY(mutex_);
  std::size_t head_ CKV_GUARDED_BY(mutex_) = 0;  ///< next write slot
  std::size_t size_ CKV_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ CKV_GUARDED_BY(mutex_) = 0;
  /// id -> name
  std::vector<std::string> names_ CKV_GUARDED_BY(mutex_);
  /// name -> id
  std::map<std::string, std::uint16_t> ids_ CKV_GUARDED_BY(mutex_);
  std::map<std::int64_t, std::string> track_names_ CKV_GUARDED_BY(mutex_);
};

/// The process-global tracer every instrumented layer records into.
/// Disabled unless a driver (ckv serve --trace, bench_serving --trace,
/// tests) enables it.
[[nodiscard]] Tracer& tracer() noexcept;

}  // namespace ckv::obs
