#include "serve/trace.hpp"

#include <cmath>
#include <string>

#include "tensor/rng.hpp"

namespace ckv {

std::vector<ServeRequest> make_poisson_trace(const TraceConfig& config,
                                             std::uint64_t seed) {
  expects(config.num_requests > 0, "make_poisson_trace: need at least one request");
  expects(config.prompt_len_min > 0 && config.prompt_len_min <= config.prompt_len_max,
          "make_poisson_trace: bad prompt length range");
  expects(config.decode_len_min > 0 && config.decode_len_min <= config.decode_len_max,
          "make_poisson_trace: bad decode length range");

  Rng rng(derive_seed(seed, "serve/trace"));
  std::vector<ServeRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_requests));
  double clock_ms = 0.0;
  for (Index i = 0; i < config.num_requests; ++i) {
    if (config.offered_rps > 0.0 && i > 0) {
      // Exponential inter-arrival gap with mean 1/rate seconds.
      const double u = rng.uniform();
      clock_ms += -std::log1p(-u) / config.offered_rps * 1000.0;
    }
    ServeRequest request;
    request.id = i;
    request.arrival_ms = clock_ms;
    request.prompt_len = rng.uniform_int(config.prompt_len_min, config.prompt_len_max);
    request.decode_len = rng.uniform_int(config.decode_len_min, config.decode_len_max);
    request.seed = derive_seed(seed, "serve/request/" + std::to_string(i));
    trace.push_back(request);
  }
  return trace;
}

}  // namespace ckv
