#include "serve/batch_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace ckv {

namespace {

/// Session trace tracks are 1 + request id; track 0 is the scheduler.
std::int64_t session_track(const Session& session) noexcept {
  return 1 + session.request().id;
}

}  // namespace

BatchScheduler::BatchScheduler(std::vector<ServeRequest> trace,
                               SelectorFactory factory,
                               SessionConfig session_config, LatencyModel latency,
                               BatchSchedulerConfig config)
    : factory_(std::move(factory)),
      session_config_(session_config),
      latency_(std::move(latency)),
      config_(config) {
  expects(config.fast_tier_budget_bytes >= 0,
          "BatchScheduler: budget must be >= 0");
  expects(config.prefill_chunk_tokens >= 0,
          "BatchScheduler: prefill_chunk_tokens must be >= 0 (0 = whole "
          "prompt per tick)");
  expects(config.max_running >= 0, "BatchScheduler: max_running must be >= 0");
  expects(config.admission_overcommit >= 1.0,
          "BatchScheduler: admission_overcommit must be >= 1");
  expects(config.tiered_residency || config.admission_overcommit == 1.0,
          "BatchScheduler: overcommit requires tiered residency (untiered "
          "sessions cannot be preempted back under budget)");
  expects(config.tiered_residency || config.prefetch_clusters == 0,
          "BatchScheduler: prefetch requires tiered residency (the untiered "
          "residency sum cannot see in-flight reserved bytes, so the budget "
          "invariant would not cover transfers on the wire)");
  expects(config.link_gbps >= 0.0,
          "BatchScheduler: link_gbps must be >= 0 (0 = hardware gather rate)");
  expects(!config.use_transfer_engine ||
              (config.method == LatencyModel::Method::kClusterKV &&
               config.tiered_residency),
          "BatchScheduler: the transfer engine models ClusterKV's tiered "
          "slow->fast fetch traffic; it requires method kClusterKV with "
          "tiered_residency");
  if (config_.use_transfer_engine) {
    transfer_link_gbps_ = config_.link_gbps > 0.0 ? config_.link_gbps
                                                  : latency_.link_gather_gbps();
    transfer_engine_ = std::make_unique<TransferEngine>(transfer_link_gbps_);
  }
  if (config_.fault_plan.enabled) {
    config_.fault_plan.validate();
    expects(config_.method == LatencyModel::Method::kClusterKV &&
                config_.tiered_residency,
            "BatchScheduler: fault injection requires kClusterKV with "
            "tiered_residency (graceful degradation falls back to "
            "resident-only cluster selection)");
    expects(config_.use_transfer_engine ||
                (config_.fault_plan.brownout_period_ms == 0.0 &&
                 config_.fault_plan.wire_failure_rate == 0.0),
            "BatchScheduler: link brownouts and wire failures model the "
            "transfer engine's wire; enable use_transfer_engine");
    fault_injector_ = std::make_unique<FaultInjector>(config_.fault_plan);
    if (transfer_engine_ != nullptr &&
        config_.fault_plan.wire_failure_rate > 0.0) {
      transfer_engine_->set_fault_hook(
          [injector = fault_injector_.get()](std::uint64_t id, Index client,
                                             Index attempt) {
            return injector->wire_fails(id, client, attempt);
          },
          config_.fault_plan.wire_max_retries);
    }
  }
  const double budget_cap = static_cast<double>(config_.fast_tier_budget_bytes) *
                            config_.admission_overcommit;
  for (auto& request : trace) {
    expects(config_.fast_tier_budget_bytes == 0 ||
                (static_cast<double>(projected_bytes(request)) <= budget_cap &&
                 residual_bytes(request) <= config_.fast_tier_budget_bytes),
            "BatchScheduler: a request's projected residency exceeds the "
            "global fast-tier budget; it could never be admitted");
    queue_.push(std::move(request));
  }
}

std::int64_t BatchScheduler::projected_bytes(const ServeRequest& request) const {
  const Index context = request.prompt_len + request.decode_len;
  Index tokens = context;
  if (config_.tiered_residency) {
    // Working-set peak of a tiered session between ticks: sinks + the
    // larger of the decode-phase set (one decode interval of pending
    // tokens + the cache window of R steps x at most `budget` selected
    // tokens) and the prefill-phase pending buffer (chunked prefill
    // flushes clusters every tokens_per_cluster tokens). The whole context
    // caps it for short requests.
    const Index floor_tokens =
        config_.sink_tokens +
        std::max<Index>(config_.tokens_per_cluster,
                        config_.decode_interval +
                            config_.cache_depth * session_config_.engine.budget);
    tokens = std::min<Index>(context, floor_tokens);
  }
  return static_cast<std::int64_t>(tokens) * session_token_bytes(session_config_) *
         session_config_.shape.total_heads();
}

std::int64_t BatchScheduler::residual_bytes(const ServeRequest& request) const {
  const Index context = request.prompt_len + request.decode_len;
  Index tokens = context;
  if (config_.tiered_residency) {
    // Irreducible fast residency: sinks plus the larger of the two pending
    // buffers — decode-phase (flushed every decode_interval steps) and
    // prefill-phase (chunked prefill flushes every tokens_per_cluster
    // tokens). Preemption can never reclaim below this, mid-prefill or not.
    tokens = std::min<Index>(
        context, config_.sink_tokens + std::max<Index>(config_.decode_interval,
                                                       config_.tokens_per_cluster));
  }
  return static_cast<std::int64_t>(tokens) * session_token_bytes(session_config_) *
         session_config_.shape.total_heads();
}

StepBreakdown BatchScheduler::step_cost(const Session& session) const {
  const Index context = session.request().prompt_len + session.tokens_generated();
  const Index budget = session_config_.engine.budget;
  switch (config_.method) {
    case LatencyModel::Method::kFullKV:
      return latency_.full_kv_step(context);
    case LatencyModel::Method::kClusterKV: {
      // Measured miss rate so far; the first selection after prefill has no
      // history (hit rate 0) and misses everything.
      const double miss_rate = 1.0 - session.cache_hit_rate();
      const Index clusters =
          std::max<Index>(1, context / std::max<Index>(1, config_.tokens_per_cluster));
      if (config_.use_transfer_engine) {
        // Compute-only step: the fetch stall is billed from the transfer
        // engine's contended queue in the tick pre-pass (one shared wire),
        // not by the closed-form per-session division.
        return latency_.clusterkv_step(context, budget, 0.0, clusters);
      }
      if (config_.prefetch_clusters > 0) {
        // Overlap-aware split: only the misses the prediction failed to
        // cover stall; issued speculative traffic (hits + waste) hides
        // under the step's own compute.
        return latency_.clusterkv_prefetch_step(context, budget,
                                                session.demand_miss_rate(),
                                                session.prefetch_issue_rate(),
                                                clusters);
      }
      return latency_.clusterkv_step(context, budget, miss_rate, clusters);
    }
    case LatencyModel::Method::kQuest:
      return latency_.quest_step(context, budget);
    case LatencyModel::Method::kInfiniGen:
      return latency_.infinigen_step(context, budget);
    case LatencyModel::Method::kFullKVOffload:
      return latency_.full_kv_offload_step(context);
  }
  return latency_.full_kv_step(context);
}

std::int64_t BatchScheduler::fast_tier_bytes() const {
  const ExclusiveLock serial(serial_phase_);
  return fast_tier_bytes_locked();
}

std::int64_t BatchScheduler::fast_tier_bytes_locked() const {
  if (config_.tiered_residency) {
    // Every running session's per-head stores feed the shared ledger, so
    // global residency is a single read — enforcement calls this in a
    // loop, which would otherwise be O(sessions x heads) per victim.
    // Reserved (in-flight prefetch) bytes count: the budget must cover
    // copies already on the wire, and preemption can cancel them.
    return ledger_.total_bytes();
  }
  std::int64_t bytes = 0;
  for (const auto& session : running_) {
    bytes += session->fast_resident_bytes();
  }
  return bytes;
}

bool BatchScheduler::shed_blocked_head() {
  if (fault_injector_ == nullptr ||
      fault_injector_->plan().shed_wait_ms <= 0.0) {
    return false;
  }
  const ServeRequest& head = queue_.front();
  if (now_ms_ - head.arrival_ms <= fault_injector_->plan().shed_wait_ms) {
    return false;
  }
  // Overload shedding: the head has waited past the plan's bound while
  // admission stayed blocked — drop it (counted, traced) instead of
  // letting the queue grow without bound. FIFO order means everything
  // behind it waited less, so at most the head sheds per examination.
  obs::tracer().instant_at("shed", 0, now_ms_,
                           {{"request", head.id},
                            {"waited_ms", static_cast<std::int64_t>(
                                 now_ms_ - head.arrival_ms)}});
  queue_.pop();
  metrics_.record_shed_session();
  return true;
}

void BatchScheduler::admit_arrivals() {
  while (queue_.has_arrival(now_ms_)) {
    if (config_.max_running > 0 &&
        static_cast<Index>(running_.size()) >= config_.max_running) {
      if (shed_blocked_head()) {
        continue;
      }
      return;
    }
    if (config_.fast_tier_budget_bytes > 0) {
      // Admission reserves every running session's projected peak (up to
      // budget * overcommit) AND keeps the sum of irreducible residuals
      // under the plain budget, so enforcement can always preempt its way
      // back under the cap no matter how aggressive the overcommit is.
      std::int64_t reserved = 0;
      std::int64_t residual = 0;
      for (const auto& session : running_) {
        reserved += projected_bytes(session->request());
        residual += residual_bytes(session->request());
      }
      double cap = static_cast<double>(config_.fast_tier_budget_bytes) *
                   config_.admission_overcommit;
      if (fault_injector_ != nullptr && !running_.empty()) {
        // Overload burst: the byte cap tightens inside the window, so
        // admission stalls and the queue backs up — the load the shed
        // bound then acts on. Only with a non-empty batch: an idle
        // scheduler must always admit (the idle-jump would otherwise
        // deadlock against a squeezed cap).
        cap *= fault_injector_->admission_factor_at(now_ms_);
      }
      if (static_cast<double>(reserved + projected_bytes(queue_.front())) > cap ||
          residual + residual_bytes(queue_.front()) >
              config_.fast_tier_budget_bytes) {
        if (shed_blocked_head()) {
          continue;
        }
        return;  // FIFO: the head blocks until residency frees up
      }
    }
    auto session = std::make_unique<Session>(queue_.pop(), factory_, session_config_);
    if (config_.tiered_residency) {
      session->attach_fast_tier_ledger(&ledger_);
    }
    // Admission only reserves and changes state; the prompt is consumed
    // chunk by chunk in subsequent ticks, interleaved with the running
    // batch's decode steps (vLLM-style chunked prefill).
    session->admit(now_ms_);
    auto& tr = obs::tracer();
    if (tr.enabled()) {
      const std::int64_t track = session_track(*session);
      tr.set_track_name(track,
                        "session " + std::to_string(session->request().id));
      // The queued span is emitted retroactively (the session object only
      // exists from admission); arrival is known, so the span is exact.
      tr.begin_at("queued", track, session->arrival_ms());
      tr.end_at("queued", track, now_ms_);
      tr.instant_at("admit", track, now_ms_,
                    {{"prompt_len", session->request().prompt_len},
                     {"decode_len", session->request().decode_len}});
      tr.begin_at("prefilling", track, now_ms_);
    }
    running_.push_back(std::move(session));
  }
}

BatchScheduler::PrefillFlushPlan BatchScheduler::prefill_flush_plan(
    Index prompt_len) const {
  PrefillFlushPlan plan;
  const Index chunk = config_.prefill_chunk_tokens;
  const Index tpc = std::max<Index>(1, config_.tokens_per_cluster);
  if (chunk <= 0) {
    // Inline prefill: one whole-prompt flush (if anything clusters at all).
    plan.batches = prompt_len > config_.sink_tokens ? 1 : 0;
    return plan;
  }
  Index pending = 0;
  Index done = 0;
  while (done < prompt_len) {
    const Index take = std::min<Index>(chunk, prompt_len - done);
    const Index sink_part =
        std::clamp<Index>(config_.sink_tokens - done, 0, take);
    pending += take - sink_part;
    done += take;
    const bool last = done == prompt_len;
    if (pending > 0 && (last || pending >= tpc)) {
      if (last && pending < tpc && plan.batches > 0) {
        plan.tail_folds = true;  // merges into the preceding batch
      } else {
        ++plan.batches;
      }
      pending = 0;
    }
  }
  return plan;
}

Index BatchScheduler::next_chunk_tokens(const Session& session) const {
  const Index remaining =
      session.request().prompt_len - session.prefill_tokens_done();
  return config_.prefill_chunk_tokens == 0
             ? remaining
             : std::min<Index>(remaining, config_.prefill_chunk_tokens);
}

double BatchScheduler::prefill_chunk_cost_ms(const Session& session,
                                             Index chunk_tokens) const {
  double cost_ms =
      latency_.prefill_chunk_ms(session.prefill_tokens_done(), chunk_tokens);
  if (config_.method == LatencyModel::Method::kClusterKV) {
    // Per-chunk incremental clustering: the visible k-means tail of this
    // chunk's centroids (chunk/tokens_per_cluster of them over chunk
    // tokens), mirroring ClusterKVEngine::observe_prefill_chunk.
    cost_ms += latency_.clustering_visible_overhead_ms(chunk_tokens);
  }
  return cost_ms;
}

void BatchScheduler::enforce_budget(Session* just_stepped) {
  if (config_.fast_tier_budget_bytes == 0) {
    return;
  }
  if (fast_tier_bytes_locked() > config_.fast_tier_budget_bytes) {
    // Coldest first: sessions whose last progress (decode step or prefill
    // chunk) is oldest release before warmer ones (never-advanced sorts
    // coldest of all; ties keep admission order). The session that just
    // advanced is the victim of last resort — evicting it only costs its
    // next step a refetch, but fairness prefers idle state first.
    std::vector<Session*> victims;
    victims.reserve(running_.size());
    for (const auto& session : running_) {
      if (session.get() != just_stepped) {
        victims.push_back(session.get());
      }
    }
    std::stable_sort(victims.begin(), victims.end(),
                     [](const Session* a, const Session* b) {
                       return a->last_step_ms() < b->last_step_ms();
                     });
    if (just_stepped != nullptr) {
      victims.push_back(just_stepped);
    }
    // Phase 1 — take back speculation before touching anyone's resident
    // state: in-flight prefetch bytes are the cheapest to reclaim (the
    // data never landed), and canceling them keeps the *resident* byte
    // trajectory — and therefore cache windows, hit rates and preemption
    // counts — exactly what a synchronous-fetch run would produce.
    auto& tr = obs::tracer();
    for (Session* victim : victims) {
      if (fast_tier_bytes_locked() <= config_.fast_tier_budget_bytes) {
        break;
      }
      // Store-level cancel instants attribute to the victim's track.
      tr.set_track(session_track(*victim));
      const Index canceled = victim->cancel_prefetches();
      // The wire-level mirror: the victim's speculative request leaves the
      // engine's queue too, refunding its un-drained capacity.
      cancel_session_spec(*victim);
      if (canceled > 0) {
        tr.instant("enforce-cancel", {{"fetches", canceled}});
      }
    }
    // Phase 2 — real preemption of the coldest sessions' resident KV.
    for (Session* victim : victims) {
      if (fast_tier_bytes_locked() <= config_.fast_tier_budget_bytes) {
        break;
      }
      tr.set_track(session_track(*victim));
      const Index moved = victim->release_fast_tier();
      if (moved > 0) {
        tr.instant("preempt", {{"tokens_offloaded", moved}});
      }
    }
    tr.set_track(0);
  }
  ensures(config_.fast_tier_budget_bytes == 0 ||
              fast_tier_bytes_locked() <= config_.fast_tier_budget_bytes,
          "BatchScheduler: fast-tier budget exceeded after enforcement");
}

void BatchScheduler::retire_finished() {
  auto& tr = obs::tracer();
  auto it = running_.begin();
  while (it != running_.end()) {
    Session& session = **it;
    if (!session.finished()) {
      ++it;
      continue;
    }
    // Resolve any still-in-flight speculation through the attributed
    // cancel path *before* the ledger detach silently drops its
    // reservation: after this, every issued fetch has landed as a hit or
    // been canceled for a counted reason, which is exactly why the waste
    // attribution components sum to issued - hits at end of run.
    tr.set_track(session_track(session));
    tr.set_virtual_now_ms(now_ms_);
    session.cancel_prefetches(obs::FetchCancelReason::kSessionRelease);
    cancel_session_spec(session);
    transfer_links_.erase(session.request().id);
    SessionRecord record;
    record.id = session.request().id;
    record.prompt_len = session.request().prompt_len;
    // An aborted session's decode_len is what it actually produced:
    // throughput and inter-token math must count real tokens, not the
    // request's never-reached target.
    record.decode_len =
        session.aborted() ? session.tokens_generated() : session.request().decode_len;
    record.aborted = session.aborted();
    record.degraded_steps = session.degraded_steps();
    record.fault_retries = session.fault_retries();
    record.fault_retry_ms = session.fault_retry_ms();
    record.dead_fetches = session.dead_fetches();
    record.arrival_ms = session.arrival_ms();
    record.admit_ms = session.admit_ms();
    record.prefill_done_ms = session.prefill_done_ms();
    record.first_token_ms = session.first_token_ms();
    record.finish_ms = session.finish_ms();
    record.mean_recall = session.mean_recall();
    record.recall_steps = session.recall_steps();
    record.mean_coverage = session.mean_coverage();
    record.cache_hit_rate = session.cache_hit_rate();
    record.preemptions = session.preemptions();
    record.prefetch_hit_tokens = session.prefetch_hit_tokens();
    record.prefetch_issued_tokens = session.prefetch_issued_tokens();
    record.demand_fetched_tokens = session.demand_fetched_tokens();
    record.prefetch_canceled_mispredict_tokens =
        session.prefetch_canceled_tokens(obs::FetchCancelReason::kMisprediction);
    record.prefetch_canceled_enforce_tokens =
        session.prefetch_canceled_tokens(obs::FetchCancelReason::kEnforcement);
    record.prefetch_canceled_release_tokens =
        session.prefetch_canceled_tokens(obs::FetchCancelReason::kSessionRelease);
    metrics_.record_session(std::move(record));
    if (tr.enabled()) {
      const std::int64_t track = session_track(session);
      tr.end_at("decoding", track, session.finish_ms());
      tr.instant_at("retired", track, session.finish_ms(),
                    {{"tokens", session.tokens_generated()},
                     {"preemptions", session.preemptions()}});
    }
    // Teardown frees the session's fast-tier residency (ledger included).
    session.attach_fast_tier_ledger(nullptr);
    preempt_seen_.erase(session.request().id);
    ++finished_count_;
    it = running_.erase(it);
  }
  tr.set_track(0);
}

void BatchScheduler::mark_resume_if_preempted(const Session& session) {
  Index& seen = preempt_seen_[session.request().id];
  if (session.preemptions() > seen) {
    obs::tracer().instant("resume", {{"preemptions", session.preemptions()}});
    seen = session.preemptions();
  }
}

double BatchScheduler::model_bytes_per_step_token() const {
  return static_cast<double>(latency_.fetch_bytes_per_token()) /
         static_cast<double>(session_config_.shape.total_heads());
}

double BatchScheduler::projected_demand_bytes(const Session& session) const {
  const Index context = session.request().prompt_len + session.tokens_generated();
  const double attended =
      static_cast<double>(std::min<Index>(session_config_.engine.budget, context));
  // The same measured rate the closed-form path bills with, so a lone
  // session on an idle wire reproduces the closed-form transfer term
  // exactly (the single-session calibration contract).
  const double demand_rate = config_.prefetch_clusters > 0
                                 ? session.demand_miss_rate()
                                 : 1.0 - session.cache_hit_rate();
  return demand_rate * attended *
         static_cast<double>(latency_.fetch_bytes_per_token());
}

void BatchScheduler::resolve_session_transfers(Session& session,
                                               const StepResult& step) {
  const double bytes_per_token = model_bytes_per_step_token();
  TransferLink& link = transfer_links_[session.request().id];
  if (link.spec_id != 0) {
    // The selection just revealed the outstanding speculation's hit/waste
    // split. Hits the wire finished are free (the overlap worked); hits
    // still queued are *late* — the copy must complete on the demand
    // path, so the backlog it creates stalls upcoming steps. Never-drained
    // waste refunds its reserved wire capacity.
    const double hit_bytes =
        static_cast<double>(step.tokens_prefetch_hit) * bytes_per_token;
    const TransferEngine::SpecResolution resolution =
        transfer_engine_->resolve_spec(link.spec_id, hit_bytes);
    if (resolution.late_hit_bytes > 0.0) {
      transfer_engine_->enqueue(session.request().id,
                                TransferEngine::Priority::kDemand,
                                resolution.late_hit_bytes);
      metrics_.record_late_prefetch(static_cast<std::int64_t>(
          resolution.late_hit_bytes / bytes_per_token + 0.5));
      obs::tracer().instant("prefetch-late",
                            {{"bytes", static_cast<std::int64_t>(
                                  resolution.late_hit_bytes)}});
    }
    link = TransferLink{};
  }
  const Index demand_tokens = step.tokens_fetched - step.tokens_prefetch_hit;
  if (demand_tokens > 0) {
    transfer_engine_->enqueue(session.request().id,
                              TransferEngine::Priority::kDemand,
                              static_cast<double>(demand_tokens) * bytes_per_token);
  }
  if (step.tokens_prefetch_issued > 0) {
    link.spec_id = transfer_engine_->enqueue(
        session.request().id, TransferEngine::Priority::kSpeculative,
        static_cast<double>(step.tokens_prefetch_issued) * bytes_per_token);
    link.spec_tokens = step.tokens_prefetch_issued;
  }
}

void BatchScheduler::cancel_session_spec(const Session& session) {
  if (transfer_engine_ == nullptr) {
    return;
  }
  const auto it = transfer_links_.find(session.request().id);
  if (it == transfer_links_.end() || it->second.spec_id == 0) {
    return;
  }
  transfer_engine_->cancel(it->second.spec_id);
  it->second = TransferLink{};
}

void BatchScheduler::drain_transfer_engine(double completed_ms) {
  const double drained_before = transfer_engine_->drained_bytes_total();
  const double busy_before = transfer_engine_->busy_ms_total();
  const double window_begin_ms = transfer_engine_->clock_ms();
  const std::vector<TransferEngine::Completion> completions =
      transfer_engine_->drain_until(completed_ms);
  const double drained = transfer_engine_->drained_bytes_total() - drained_before;
  const double busy = transfer_engine_->busy_ms_total() - busy_before;
  metrics_.record_transfer_tick(drained, busy);
  // Wire-fault accounting off the completions (attempts are 0 and failed
  // is false on every completion when no fault hook is installed, so the
  // fault-free path records nothing).
  for (const TransferEngine::Completion& done : completions) {
    if (done.attempts > 0) {
      metrics_.record_wire_retries(done.attempts);
    }
    if (done.failed) {
      metrics_.record_wire_failure();
    }
  }
  auto& tr = obs::tracer();
  if (tr.enabled() && busy > 0.0) {
    // One contiguous busy window per tick (the wire works front-to-back
    // from the window's opening), with per-request completion spans laid
    // out sequentially inside it. Ends clamp to the outer span so
    // floating-point accumulation drift cannot unbalance the track's
    // (ts-sorted) span stack.
    const double window_end_ms = window_begin_ms + busy;
    tr.begin_at("link-busy", obs::kTransferTrack, window_begin_ms,
                {{"bytes", static_cast<std::int64_t>(drained)},
                 {"queued", transfer_engine_->queue_depth()}});
    for (const TransferEngine::Completion& done : completions) {
      const char* name = done.priority == TransferEngine::Priority::kDemand
                             ? "demand-transfer"
                             : "spec-transfer";
      const double begin = std::max(done.start_ms, window_begin_ms);
      const double end = std::clamp(done.end_ms, begin, window_end_ms);
      tr.begin_at(name, obs::kTransferTrack, begin,
                  {{"session", done.client},
                   {"bytes", static_cast<std::int64_t>(done.bytes)}});
      tr.end_at(name, obs::kTransferTrack, end);
      if (done.failed) {
        tr.instant_at("wire-failure", obs::kTransferTrack, end,
                      {{"session", done.client}, {"attempts", done.attempts}});
      }
    }
    tr.end_at("link-busy", obs::kTransferTrack, window_end_ms);
  }
}

std::int64_t BatchScheduler::advance_growth_bound_bytes(
    const AdvanceItem& item) const {
  const std::int64_t per_token =
      static_cast<std::int64_t>(session_token_bytes(session_config_)) *
      session_config_.shape.total_heads();
  if (item.prefilling) {
    // A prefill chunk materializes at most its own tokens fast (pending
    // grows by the chunk; flushed clusters offload eagerly, repair moves
    // metadata only).
    return static_cast<std::int64_t>(item.chunk) * per_token;
  }
  if (!config_.tiered_residency) {
    // Untiered residency pins the whole context, which grows by exactly
    // the generated token.
    return per_token;
  }
  // A tiered decode step can pin at most the selection budget in fresh
  // demand fetches, adds one pending token, and may reserve one
  // speculative fetch round (prefetch resolution only converts or frees
  // existing reservations; flushes and window evictions only release).
  const Index context =
      item.session->request().prompt_len + item.session->tokens_generated() + 1;
  const Index tokens =
      std::min<Index>(session_config_.engine.budget, context) + 1 +
      config_.prefetch_clusters * std::max<Index>(1, config_.tokens_per_cluster);
  return static_cast<std::int64_t>(tokens) * per_token;
}

void BatchScheduler::advance_item(AdvanceItem& item, double completed_ms) {
  // Thread-local tracer context: on a pool worker this scopes the step's
  // leaf instants (demand-fetch, fetch-issue, repair-pass, ...) to this
  // session's track without disturbing concurrent steps or the scheduler
  // thread's cursor.
  auto& tr = obs::tracer();
  tr.set_track(session_track(*item.session));
  tr.set_virtual_now_ms(completed_ms);
  if (item.prefilling) {
    item.session->prefill_next(item.chunk, completed_ms);
  } else {
    item.step = item.session->decode_next(completed_ms);
  }
}

void BatchScheduler::commit_item(AdvanceItem& item, double completed_ms) {
  auto& tr = obs::tracer();
  Session* session = item.session;
  tr.set_track(session_track(*session));
  if (item.prefilling) {
    tr.instant("prefill-chunk",
               {{"tokens", item.chunk}, {"done", session->prefill_tokens_done()}});
    if (session->state() != SessionState::kPrefilling) {
      tr.end("prefilling");
      tr.begin("decoding");
    }
    mark_resume_if_preempted(*session);
    // Config/factory mismatch guard: with tiered_residency, every
    // selector must feed the shared ledger — an untiered factory would
    // leave it at zero and silently void budget enforcement. Checked
    // when a session finishes prefill, when chunk-oblivious selectors
    // have materialized their whole-prompt state.
    if (session->state() != SessionState::kPrefilling &&
        config_.tiered_residency) {
      std::int64_t summed = 0;
      for (const auto& running : running_) {
        summed += running->fast_resident_bytes();
      }
      ensures(ledger_.bytes() == summed,
              "BatchScheduler: tiered_residency is set but the session's "
              "selectors do not report through the fast-tier ledger "
              "(untiered factory?)");
    }
    enforce_budget(session);
  } else {
    // Inter-token gap: virtual time between this completion and the
    // session's previous progress, read from the pre-advance capture so
    // the fan-out sees exactly what the serial scheduler's sequence point
    // saw. Only once the first token exists — the gap before it is TTFT's
    // first-decode-wait, not ITL.
    if (item.pre_first_token_ms >= 0.0) {
      metrics_.record_decode_gap(completed_ms - item.pre_last_step_ms);
    }
    const Index demand = item.step.tokens_fetched - item.step.tokens_prefetch_hit;
    if (demand > 0) {
      metrics_.record_fetch_bytes(static_cast<std::int64_t>(demand) *
                                  session_token_bytes(session_config_));
    }
    if (transfer_engine_ != nullptr) {
      // Wire-level bookkeeping for the step the session just took: resolve
      // the previous speculation, queue this step's demand misses and its
      // newly issued speculative traffic. Runs in the exact serial commit
      // order, so enqueue sequence — and therefore drain order — is
      // byte-identical at any worker count.
      resolve_session_transfers(*session, item.step);
    }
    tr.instant("decode-step", {{"token", session->tokens_generated()},
                               {"fetched", item.step.tokens_fetched}});
    mark_resume_if_preempted(*session);
    enforce_budget(session);
    if (fault_injector_ != nullptr) {
      // Degraded mode is a one-step affair: the pre-pass armed it for this
      // step, the serial commit disarms it before the next.
      session->set_degraded_step(false);
      // Mid-decode abort: the client hangs up after this committed token.
      // Only a still-decoding session with at least one token can abort —
      // the session finishes at the tick's completion timestamp and its
      // residency is reclaimed by the normal retirement path.
      if (!session->finished() && session->tokens_generated() >= 1 &&
          fault_injector_->abort_fires(session->request().id,
                                       session->tokens_generated())) {
        session->abort(completed_ms);
        tr.instant("fault-abort", {{"token", session->tokens_generated()}});
      }
    }
  }
}

bool BatchScheduler::tick() {
  // The tick body IS the serial phase; the only escape is the wave
  // fan-out below, whose lambda runs advance_item (unannotated on
  // purpose — see batch_scheduler.hpp) on pool workers.
  const ExclusiveLock serial(serial_phase_);
  if (running_.empty() && queue_.empty()) {
    return false;
  }
  if (running_.empty() && !queue_.has_arrival(now_ms_)) {
    now_ms_ = queue_.next_arrival_ms();  // idle: jump to the next arrival
    if (transfer_engine_ != nullptr) {
      if (fault_injector_ != nullptr) {
        // Brownouts stay on the virtual clock across the jump too.
        transfer_engine_->set_rate_factor(
            fault_injector_->rate_factor_at(now_ms_));
      }
      // The wire keeps draining (and its clock monotone) across the jump.
      drain_transfer_engine(now_ms_);
    }
  }
  auto& tr = obs::tracer();
  if (tr.enabled() && ticks_ == 0) {
    tr.set_track_name(0, "scheduler");
    if (transfer_engine_ != nullptr) {
      tr.set_track_name(obs::kTransferTrack, "transfer-engine");
    }
  }
  tr.set_track(0);
  tr.set_virtual_now_ms(now_ms_);
  admit_arrivals();
  ++ticks_;

  // Brownout sampling: one link-rate factor per tick, sampled at the tick's
  // opening timestamp on the virtual clock. The same factor scales the
  // contended-stall billing below and the engine's drain rate for this
  // tick's window, so billed time and modeled wire time degrade together.
  const double link_rate_factor =
      fault_injector_ != nullptr ? fault_injector_->rate_factor_at(now_ms_) : 1.0;
  if (fault_injector_ != nullptr && transfer_engine_ != nullptr) {
    transfer_engine_->set_rate_factor(link_rate_factor);
  }

  // Partition the batch: prefilling sessions each consume one prompt
  // chunk this tick, decoding sessions each run one step (round-robin so
  // retirement churn cannot starve anyone).
  std::vector<Session*> prefillers;
  std::vector<Session*> decoders;
  const Index batch = static_cast<Index>(running_.size());
  for (Index i = 0; i < batch; ++i) {
    Session* session = running_[(round_robin_offset_ + i) % batch].get();
    if (session->state() == SessionState::kPrefilling) {
      prefillers.push_back(session);
    } else {
      decoders.push_back(session);
    }
  }

  if (batch > 0) {
    // Mixed prefill+decode billing. Decoders share one weight pass and one
    // framework overhead per tick — the continuous-batching economy — and
    // each adds its private KV-read / selection / transfer cost. Prefill
    // chunks are compute-bound GEMM + causal-prefix attention (their
    // weight traffic rides the batch's shared pass), billed per chunk so a
    // long prompt stalls the batch by at most one chunk per tick.
    double tick_ms = 0.0;
    double repair_ms = 0.0;
    double decode_ms = 0.0;  // decode share of tick_ms (phase sub-span)
    const bool repair_billed = config_.method == LatencyModel::Method::kClusterKV &&
                               config_.repair_refine_iterations > 0;
    // Engine-mode demand billing: the wire serves one contended queue, so
    // a decoder's stall is the completion time of the backlog plus every
    // demand request at or ahead of its position — later decoders wait
    // longer, which is exactly how fleet contention becomes visible. The
    // tick bills the queue's makespan (the last decoder's stall) once; the
    // per-decoder stalls feed the metrics. All inputs are pre-advance
    // state, keeping the pre-pass a pure function of the schedule.
    double demand_bytes_ahead =
        transfer_engine_ != nullptr
            ? transfer_engine_->queued_bytes(TransferEngine::Priority::kDemand)
            : 0.0;
    double demand_stall_tail_ms = 0.0;
    for (std::size_t i = 0; i < decoders.size(); ++i) {
      const StepBreakdown b = step_cost(*decoders[i]);
      if (i == 0) {
        tick_ms += b.weights_ms + b.overhead_ms;
      }
      tick_ms += b.total_ms() - b.weights_ms - b.overhead_ms;
      // Fault pre-pass: roll this decoder's demand-fetch outcome for the
      // step it is about to take. Retries bill their backoff into the tick;
      // a dead fetch (retries exhausted or deadline blown) flips the
      // session's selectors into resident-only degraded mode for exactly
      // this step, and its demand traffic never reaches the wire.
      FaultInjector::FetchOutcome fault;
      if (fault_injector_ != nullptr) {
        fault = fault_injector_->fetch_outcome(decoders[i]->request().id,
                                               decoders[i]->tokens_generated());
        if (fault.retries > 0 || fault.dead) {
          tick_ms += fault.penalty_ms;
          decoders[i]->note_fault_retries(fault.retries, fault.penalty_ms);
          metrics_.record_fault_fetch(fault.retries, fault.penalty_ms, fault.dead);
          const std::int64_t track = session_track(*decoders[i]);
          if (fault.retries > 0) {
            tr.instant_at("fault-retry", track, now_ms_,
                          {{"attempts", fault.retries},
                           {"penalty_us",
                            static_cast<Index>(fault.penalty_ms * 1000.0)}});
          }
          if (fault.dead) {
            decoders[i]->note_dead_fetch();
            decoders[i]->set_degraded_step(true);
            tr.instant_at("fault-dead-fetch", track, now_ms_,
                          {{"token", decoders[i]->tokens_generated()}});
          }
        }
      }
      if (transfer_engine_ != nullptr) {
        if (!fault.dead) {
          demand_bytes_ahead += projected_demand_bytes(*decoders[i]);
        }
        const double stall_ms = latency_.contended_fetch_ms(
            demand_bytes_ahead, transfer_link_gbps_ * link_rate_factor);
        metrics_.record_demand_stall(stall_ms);
        demand_stall_tail_ms = stall_ms;
      }
      if (repair_billed && config_.repair_decode_interval > 0 &&
          (decoders[i]->tokens_generated() + 1) % config_.repair_decode_interval == 0) {
        // Periodic decode-side repair pass (mirrors the engine's trigger in
        // observe_decode); overlappable compute like prefill clustering. A
        // pass can only do work once a decode flush has registered a new
        // clustering batch since the last pass (repair collapses batches
        // to one), so billing is capped at one pass per decode-interval
        // flush — a repair interval finer than the flush cadence must not
        // charge phantom passes for the engine's immediate no-op returns.
        const Index generated = decoders[i]->tokens_generated() + 1;
        const Index flush_every = std::max<Index>(1, config_.decode_interval);
        const bool flushed_since_last_pass =
            generated / flush_every >
            (generated - config_.repair_decode_interval) / flush_every;
        if (flushed_since_last_pass) {
          const Index context = decoders[i]->request().prompt_len + generated;
          repair_ms += latency_.repair_ms(context, config_.repair_refine_iterations,
                                          config_.tokens_per_cluster);
        }
      }
    }
    tick_ms += demand_stall_tail_ms;
    decode_ms = tick_ms;
    std::vector<Index> chunks(prefillers.size(), 0);
    for (std::size_t i = 0; i < prefillers.size(); ++i) {
      chunks[i] = next_chunk_tokens(*prefillers[i]);
      tick_ms += prefill_chunk_cost_ms(*prefillers[i], chunks[i]);
      const Index prompt_len = prefillers[i]->request().prompt_len;
      const bool final_chunk =
          prefillers[i]->prefill_tokens_done() + chunks[i] == prompt_len;
      if (config_.method == LatencyModel::Method::kClusterKV && final_chunk) {
        const PrefillFlushPlan plan = prefill_flush_plan(prompt_len);
        if (plan.tail_folds) {
          // End-of-prompt tail fold: the engine re-clusters the preceding
          // batch together with the short tail; bill that window's k-means
          // again (the per-chunk clustering bill above only covered the
          // tail's own tokens).
          tick_ms += latency_.clustering_visible_overhead_ms(std::min<Index>(
              prompt_len,
              std::max(config_.prefill_chunk_tokens, config_.tokens_per_cluster) +
                  chunks[i]));
        }
        if (repair_billed && plan.batches >= 2) {
          // The post-prefill repair pass only does work when prefill
          // registered at least two clustering batches (a single batch —
          // inline prefill, short prompts, or a folded tail — makes the
          // engine's pass a no-op; bill nothing then).
          repair_ms += latency_.repair_ms(prompt_len, config_.repair_refine_iterations,
                                          config_.tokens_per_cluster);
        }
      }
    }
    const double prefill_ms = tick_ms - decode_ms;
    tick_ms += repair_ms;
    metrics_.record_repair(repair_ms);

    const double completed_ms = now_ms_ + tick_ms;
    if (tr.enabled()) {
      // The tick span and its phase sub-spans reproduce the paper's
      // latency breakdown on the virtual clock: decode, then prefill
      // chunks, then repair, laid out sequentially inside the tick.
      tr.begin_at("tick", 0, now_ms_,
                  {{"batch", batch}, {"queued", queue_.size()}});
      // The last phase must end at exactly completed_ms (the tick E's
      // timestamp): summing the phase durations incrementally drifts in
      // the low bits relative to now_ms_ + tick_ms, and an end a few ulps
      // past the tick E sorts after it, unbalancing the span stack.
      double phase_t = now_ms_;
      if (!decoders.empty()) {
        const bool last = prefillers.empty() && repair_ms <= 0.0;
        const double end = last ? completed_ms : phase_t + decode_ms;
        tr.begin_at("decode-phase", 0, phase_t,
                    {{"decoders", static_cast<Index>(decoders.size())}});
        tr.end_at("decode-phase", 0, end);
        phase_t = end;
      }
      if (!prefillers.empty()) {
        const bool last = repair_ms <= 0.0;
        const double end = last ? completed_ms : phase_t + prefill_ms;
        tr.begin_at("prefill-phase", 0, phase_t,
                    {{"prefillers", static_cast<Index>(prefillers.size())}});
        tr.end_at("prefill-phase", 0, end);
        phase_t = end;
      }
      if (repair_ms > 0.0) {
        tr.begin_at("repair-phase", 0, phase_t);
        tr.end_at("repair-phase", 0, completed_ms);
      }
    }
    // Leaf instrumentation (tiered-store fetch events) records against the
    // ambient context: the tick's completion time, the acting session's
    // track. The context is thread-local, so pool workers scope their own
    // events without racing the scheduler thread.
    tr.set_virtual_now_ms(completed_ms);

    // Advancement order is fixed (prefillers, then decoders, both in
    // round-robin order) — identical to the serial scheduler. Pre-step
    // state is captured up front: commit-phase accounting must see what
    // the serial scheduler's sequence point would have seen.
    std::vector<AdvanceItem> items;
    items.reserve(prefillers.size() + decoders.size());
    for (std::size_t i = 0; i < prefillers.size(); ++i) {
      AdvanceItem item;
      item.session = prefillers[i];
      item.prefilling = true;
      item.chunk = chunks[i];
      items.push_back(item);
    }
    for (Session* session : decoders) {
      AdvanceItem item;
      item.session = session;
      item.pre_last_step_ms = session->last_step_ms();
      item.pre_first_token_ms = session->first_token_ms();
      items.push_back(item);
    }

    // Wave fan-out: repeatedly take the longest prefix of un-advanced
    // items whose summed worst-case byte growth provably fits the budget
    // headroom. Inside such a wave every per-session enforcement
    // checkpoint is silent, so session order cannot matter — the wave
    // runs concurrently on the worker pool, then its commit phase (trace
    // edges, metrics, the enforcement checkpoints themselves) replays in
    // the exact serial order. When the guard admits at most one item the
    // scheduler degenerates to the literal serial step+commit
    // interleaving, preserving byte-identity under contention too.
    // Wall-clock here measures host speedup only; every billed duration
    // stays on the virtual clock (docs/PERFORMANCE.md determinism
    // contract), so this read cannot leak into any deterministic output.
    // ckv-lint: allow(wall-clock) -- advance_wall_ms is a host-side metric
    const auto wall_begin = std::chrono::steady_clock::now();
    // The fan-out lambda must not touch serial-phase state (clang enforces
    // it); the tick's start time crosses the boundary by value.
    const double tick_begin_ms = now_ms_;
    Index fanned_out = 0;
    std::size_t next = 0;
    while (next < items.size()) {
      std::size_t wave_end = next;
      if (config_.parallel_tick) {
        if (config_.fast_tier_budget_bytes == 0) {
          wave_end = items.size();  // unlimited budget: one wave, no guard
        } else {
          std::int64_t headroom =
              config_.fast_tier_budget_bytes - fast_tier_bytes_locked();
          while (wave_end < items.size()) {
            const std::int64_t bound = advance_growth_bound_bytes(items[wave_end]);
            if (bound > headroom) {
              break;
            }
            headroom -= bound;
            ++wave_end;
          }
        }
      }
      if (wave_end <= next + 1) {
        // Contended (or parallel_tick off): advance one item and commit it
        // immediately — the pre-fan-out serial path, verbatim.
        advance_item(items[next], completed_ms);
        tr.set_virtual_now_ms(completed_ms);
        commit_item(items[next], completed_ms);
        ++next;
        continue;
      }
      const std::size_t wave_begin_i = next;
      parallel_for_range(
          static_cast<Index>(wave_begin_i), static_cast<Index>(wave_end),
          /*grain=*/1, [&](Index chunk_begin, Index chunk_end) {
            // Workers trace their occupancy on dedicated tracks so a
            // Perfetto view shows the fan-out's shape; the advance span
            // covers the tick's virtual window. grain 1 means inner
            // engine parallel_for calls self-serialize instead of
            // re-entering the pool.
            auto& wtr = obs::tracer();
            const int slot = parallel_worker_slot();
            const std::int64_t worker_track = obs::kWorkerTrackBase + slot;
            for (Index i = chunk_begin; i < chunk_end; ++i) {
              if (wtr.enabled()) {
                wtr.set_track_name(worker_track,
                                   "worker " + std::to_string(slot));
                wtr.begin_at("advance", worker_track, tick_begin_ms,
                             {{"session", items[i].session->request().id}});
              }
              advance_item(items[i], completed_ms);
              if (wtr.enabled()) {
                wtr.end_at("advance", worker_track, completed_ms);
              }
            }
          });
      fanned_out += static_cast<Index>(wave_end - wave_begin_i);
      // The caller participated in the wave and its thread-local tracer
      // context now points at the last session it stepped — restore it.
      tr.set_virtual_now_ms(completed_ms);
      for (std::size_t i = wave_begin_i; i < wave_end; ++i) {
        commit_item(items[i], completed_ms);
      }
      next = wave_end;
    }
    // ckv-lint: allow(wall-clock) -- closes the host-side metric above
    const double advance_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_begin)
            .count();
    metrics_.record_advance_wall(advance_wall_ms, fanned_out,
                                 static_cast<Index>(items.size()));
    tr.set_track(0);
    tr.end_at("tick", 0, completed_ms);
    if (transfer_engine_ != nullptr) {
      // Spend the tick's wire capacity on everything queued (including the
      // demand and speculation the commit phase just enqueued — those
      // copies overlapped the step compute the tick billed).
      drain_transfer_engine(completed_ms);
    }
    now_ms_ = completed_ms;
    round_robin_offset_ = (round_robin_offset_ + 1) % batch;
    metrics_.record_tick(tick_ms, batch, queue_.size());
  }

  retire_finished();
  tr.set_virtual_now_ms(now_ms_);
  tr.counter("fast-tier-bytes", fast_tier_bytes_locked());
  if (config_.tiered_residency) {
    tr.counter("reserved-bytes", ledger_.reserved_bytes());
  }
  tr.counter("queue-depth", queue_.size());
  tr.counter("running-sessions", static_cast<Index>(running_.size()));
  if (transfer_engine_ != nullptr) {
    tr.counter("transfer-queue-depth", transfer_engine_->queue_depth());
    tr.counter("link-drained-bytes",
               static_cast<std::int64_t>(transfer_engine_->drained_bytes_total()));
  }
  metrics_.record_occupancy(fast_tier_bytes_locked());
  return !(running_.empty() && queue_.empty());
}

void BatchScheduler::run() {
  while (tick()) {
  }
}

}  // namespace ckv
