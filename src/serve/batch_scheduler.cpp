#include "serve/batch_scheduler.hpp"

#include <algorithm>
#include <utility>

namespace ckv {

BatchScheduler::BatchScheduler(std::vector<ServeRequest> trace,
                               SelectorFactory factory,
                               SessionConfig session_config, LatencyModel latency,
                               BatchSchedulerConfig config)
    : factory_(std::move(factory)),
      session_config_(session_config),
      latency_(std::move(latency)),
      config_(config) {
  expects(config.fast_tier_budget_bytes >= 0,
          "BatchScheduler: budget must be >= 0");
  expects(config.admission_overcommit >= 1.0,
          "BatchScheduler: admission_overcommit must be >= 1");
  expects(config.tiered_residency || config.admission_overcommit == 1.0,
          "BatchScheduler: overcommit requires tiered residency (untiered "
          "sessions cannot be preempted back under budget)");
  const double budget_cap = static_cast<double>(config_.fast_tier_budget_bytes) *
                            config_.admission_overcommit;
  for (auto& request : trace) {
    expects(config_.fast_tier_budget_bytes == 0 ||
                (static_cast<double>(projected_bytes(request)) <= budget_cap &&
                 residual_bytes(request) <= config_.fast_tier_budget_bytes),
            "BatchScheduler: a request's projected residency exceeds the "
            "global fast-tier budget; it could never be admitted");
    queue_.push(std::move(request));
  }
}

std::int64_t BatchScheduler::projected_bytes(const ServeRequest& request) const {
  const Index context = request.prompt_len + request.decode_len;
  Index tokens = context;
  if (config_.tiered_residency) {
    // Working-set peak of a tiered session between steps: sinks + one
    // decode interval of pending tokens + the cache window (R steps of at
    // most `budget` selected tokens). The whole context caps it for short
    // requests.
    const Index floor_tokens =
        config_.sink_tokens + config_.decode_interval +
        config_.cache_depth * session_config_.engine.budget;
    tokens = std::min<Index>(context, floor_tokens);
  }
  return static_cast<std::int64_t>(tokens) * session_token_bytes(session_config_) *
         session_config_.shape.total_heads();
}

std::int64_t BatchScheduler::residual_bytes(const ServeRequest& request) const {
  const Index context = request.prompt_len + request.decode_len;
  Index tokens = context;
  if (config_.tiered_residency) {
    tokens = std::min<Index>(context,
                             config_.sink_tokens + config_.decode_interval);
  }
  return static_cast<std::int64_t>(tokens) * session_token_bytes(session_config_) *
         session_config_.shape.total_heads();
}

StepBreakdown BatchScheduler::step_cost(const Session& session) const {
  const Index context = session.request().prompt_len + session.tokens_generated();
  const Index budget = session_config_.engine.budget;
  switch (config_.method) {
    case LatencyModel::Method::kFullKV:
      return latency_.full_kv_step(context);
    case LatencyModel::Method::kClusterKV: {
      // Measured miss rate so far; the first selection after prefill has no
      // history (hit rate 0) and misses everything.
      const double miss_rate = 1.0 - session.cache_hit_rate();
      const Index clusters =
          std::max<Index>(1, context / std::max<Index>(1, config_.tokens_per_cluster));
      return latency_.clusterkv_step(context, budget, miss_rate, clusters);
    }
    case LatencyModel::Method::kQuest:
      return latency_.quest_step(context, budget);
    case LatencyModel::Method::kInfiniGen:
      return latency_.infinigen_step(context, budget);
    case LatencyModel::Method::kFullKVOffload:
      return latency_.full_kv_offload_step(context);
  }
  return latency_.full_kv_step(context);
}

std::int64_t BatchScheduler::fast_tier_bytes() const {
  if (config_.tiered_residency) {
    // Every running session's per-head stores feed the shared ledger, so
    // global residency is a single read — enforcement calls this in a
    // loop, which would otherwise be O(sessions x heads) per victim.
    return ledger_.bytes();
  }
  std::int64_t bytes = 0;
  for (const auto& session : running_) {
    bytes += session->fast_resident_bytes();
  }
  return bytes;
}

void BatchScheduler::admit_arrivals() {
  while (queue_.has_arrival(now_ms_)) {
    if (config_.max_running > 0 && running_count() >= config_.max_running) {
      return;
    }
    if (config_.fast_tier_budget_bytes > 0) {
      // Admission reserves every running session's projected peak (up to
      // budget * overcommit) AND keeps the sum of irreducible residuals
      // under the plain budget, so enforcement can always preempt its way
      // back under the cap no matter how aggressive the overcommit is.
      std::int64_t reserved = 0;
      std::int64_t residual = 0;
      for (const auto& session : running_) {
        reserved += projected_bytes(session->request());
        residual += residual_bytes(session->request());
      }
      const double cap = static_cast<double>(config_.fast_tier_budget_bytes) *
                         config_.admission_overcommit;
      if (static_cast<double>(reserved + projected_bytes(queue_.front())) > cap ||
          residual + residual_bytes(queue_.front()) >
              config_.fast_tier_budget_bytes) {
        return;  // FIFO: the head blocks until residency frees up
      }
    }
    auto session = std::make_unique<Session>(queue_.pop(), factory_, session_config_);
    const std::int64_t ledger_before = ledger_.bytes();
    if (config_.tiered_residency) {
      session->attach_fast_tier_ledger(&ledger_);
    }
    session->run_prefill(now_ms_);
    // Config/factory mismatch guard: with tiered_residency, every
    // selector must actually feed the ledger — an untiered factory would
    // leave it at zero and void budget enforcement silently.
    ensures(!config_.tiered_residency ||
                ledger_.bytes() - ledger_before == session->fast_resident_bytes(),
            "BatchScheduler: tiered_residency is set but the session's "
            "selectors do not report through the fast-tier ledger (untiered "
            "factory?)");
    // Prefill executes inline on the virtual clock (chunked prefill that
    // overlaps running decodes is future work, see ROADMAP).
    double prefill_ms = latency_.prefill_ms(session->request().prompt_len);
    if (config_.method == LatencyModel::Method::kClusterKV) {
      prefill_ms +=
          latency_.clustering_visible_overhead_ms(session->request().prompt_len);
    }
    now_ms_ += prefill_ms;
    running_.push_back(std::move(session));
    enforce_budget(running_.back().get());
  }
}

void BatchScheduler::enforce_budget(Session* just_stepped) {
  if (config_.fast_tier_budget_bytes == 0) {
    return;
  }
  if (fast_tier_bytes() > config_.fast_tier_budget_bytes) {
    // Coldest first: sessions whose last decode step is oldest release
    // before warmer ones (never-stepped sorts coldest of all; ties keep
    // admission order). The session that just produced a token is the
    // victim of last resort — evicting it only costs its next step a
    // refetch, but fairness prefers idle state first.
    std::vector<Session*> victims;
    victims.reserve(running_.size());
    for (const auto& session : running_) {
      if (session.get() != just_stepped) {
        victims.push_back(session.get());
      }
    }
    std::stable_sort(victims.begin(), victims.end(),
                     [](const Session* a, const Session* b) {
                       return a->last_step_ms() < b->last_step_ms();
                     });
    if (just_stepped != nullptr) {
      victims.push_back(just_stepped);
    }
    for (Session* victim : victims) {
      if (fast_tier_bytes() <= config_.fast_tier_budget_bytes) {
        break;
      }
      victim->release_fast_tier();
    }
  }
  ensures(config_.fast_tier_budget_bytes == 0 ||
              fast_tier_bytes() <= config_.fast_tier_budget_bytes,
          "BatchScheduler: fast-tier budget exceeded after enforcement");
}

void BatchScheduler::retire_finished() {
  auto it = running_.begin();
  while (it != running_.end()) {
    Session& session = **it;
    if (!session.finished()) {
      ++it;
      continue;
    }
    SessionRecord record;
    record.id = session.request().id;
    record.prompt_len = session.request().prompt_len;
    record.decode_len = session.request().decode_len;
    record.arrival_ms = session.arrival_ms();
    record.admit_ms = session.admit_ms();
    record.first_token_ms = session.first_token_ms();
    record.finish_ms = session.finish_ms();
    record.mean_recall = session.mean_recall();
    record.mean_coverage = session.mean_coverage();
    record.cache_hit_rate = session.cache_hit_rate();
    record.preemptions = session.preemptions();
    metrics_.record_session(std::move(record));
    // Teardown frees the session's fast-tier residency (ledger included).
    session.attach_fast_tier_ledger(nullptr);
    ++finished_count_;
    it = running_.erase(it);
  }
}

bool BatchScheduler::tick() {
  if (running_.empty() && queue_.empty()) {
    return false;
  }
  if (running_.empty() && !queue_.has_arrival(now_ms_)) {
    now_ms_ = queue_.next_arrival_ms();  // idle: jump to the next arrival
  }
  admit_arrivals();
  ++ticks_;

  const Index batch = running_count();
  if (batch > 0) {
    // One shared weight pass + per-step overhead for the whole batch; each
    // session adds its private KV/selection/transfer cost. This is the
    // continuous-batching economy: more concurrent sessions amortize the
    // dominant weight-streaming term.
    std::vector<Session*> order;
    order.reserve(static_cast<std::size_t>(batch));
    for (Index i = 0; i < batch; ++i) {
      order.push_back(running_[(round_robin_offset_ + i) % batch].get());
    }
    double tick_ms = 0.0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const StepBreakdown b = step_cost(*order[i]);
      if (i == 0) {
        tick_ms += b.weights_ms + b.overhead_ms;
      }
      tick_ms += b.total_ms() - b.weights_ms - b.overhead_ms;
    }
    const double completed_ms = now_ms_ + tick_ms;
    for (Session* session : order) {
      session->decode_next(completed_ms);
      enforce_budget(session);
    }
    now_ms_ = completed_ms;
    round_robin_offset_ = (round_robin_offset_ + 1) % batch;
    metrics_.record_tick(tick_ms, batch);
  }

  retire_finished();
  metrics_.record_occupancy(fast_tier_bytes());
  return !(running_.empty() && queue_.empty());
}

void BatchScheduler::run() {
  while (tick()) {
  }
}

}  // namespace ckv
