// Continuous-batching scheduler over per-session ClusterKV engines. Each
// tick:
//   1. admits queued sessions in FIFO order while their projected fast-tier
//      footprint fits the global HBM byte budget (admission runs prefill
//      inline and advances the virtual clock by its latency-model cost);
//   2. round-robins one decode step per running session — the batch shares
//      one weight pass and one framework overhead per tick, each session
//      adds its own KV-read / selection / transfer cost;
//   3. enforces the budget: while global residency exceeds it, the coldest
//      session (least recently decoded) offloads its non-sink, non-pending
//      clusters to the slow tier (sinks are never offloaded).
//
// The virtual clock composes sim/latency_model step costs, so tick
// durations reflect the full-size model the slice stands in for; residency
// bytes stay at slice scale, matching the configured budget.
#pragma once

#include <memory>
#include <vector>

#include "kvcache/tiered_store.hpp"
#include "metrics/serve_metrics.hpp"
#include "serve/request_queue.hpp"
#include "serve/session.hpp"
#include "sim/latency_model.hpp"
#include "util/common.hpp"

namespace ckv {

struct BatchSchedulerConfig {
  /// Global fast-tier (HBM) byte budget summed over all running sessions'
  /// residency, at slice scale. 0 = unlimited.
  std::int64_t fast_tier_budget_bytes = 0;
  /// Hard cap on concurrently running sessions (0 = unlimited).
  Index max_running = 0;
  /// Latency composition for the virtual clock.
  LatencyModel::Method method = LatencyModel::Method::kClusterKV;
  /// True for methods with a tiered store (ClusterKV): admission projects
  /// the bounded working-set floor instead of the full context.
  bool tiered_residency = false;
  /// Floor parameters when tiered_residency (match the engine's config).
  Index sink_tokens = 16;
  Index decode_interval = 320;
  Index cache_depth = 1;
  /// Cluster granularity for ClusterKV step costs (match the engine's
  /// config: the latency model bills centroid scoring per live cluster).
  Index tokens_per_cluster = 80;
  /// Admission overcommit: reservations may sum to budget * overcommit
  /// while *actual* residency is still enforced to the plain budget by
  /// preempting cold sessions. 1.0 = reserve true peaks (no preemption
  /// ever needed); > 1.0 trades preemption churn for utilization. Only
  /// meaningful with tiered_residency — untiered sessions cannot release
  /// anything, so overcommitting them would make the budget unenforceable.
  double admission_overcommit = 1.0;
};

class BatchScheduler {
 public:
  BatchScheduler(std::vector<ServeRequest> trace, SelectorFactory factory,
                 SessionConfig session_config, LatencyModel latency,
                 BatchSchedulerConfig config);

  /// Runs one tick. Returns true while sessions remain (queued or running).
  bool tick();

  /// Ticks until every request has finished.
  void run();

  [[nodiscard]] double now_ms() const noexcept { return now_ms_; }
  [[nodiscard]] Index running_count() const noexcept {
    return static_cast<Index>(running_.size());
  }
  [[nodiscard]] Index queued_count() const noexcept { return queue_.size(); }
  [[nodiscard]] Index finished_count() const noexcept { return finished_count_; }
  [[nodiscard]] Index ticks() const noexcept { return ticks_; }

  /// Global fast-tier residency right now, summed over running sessions.
  [[nodiscard]] std::int64_t fast_tier_bytes() const;

  /// O(1) residency of the tiered per-head stores (cross-check for the
  /// summed value; equals fast_tier_bytes() when every method is tiered).
  [[nodiscard]] const FastTierLedger& ledger() const noexcept { return ledger_; }

  [[nodiscard]] const ServeMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const BatchSchedulerConfig& config() const noexcept { return config_; }

  /// Running sessions, admission order (testing hook: invariant checks
  /// walk these to assert sink residency).
  [[nodiscard]] const std::vector<std::unique_ptr<Session>>& running() const noexcept {
    return running_;
  }

 private:
  void admit_arrivals();
  void enforce_budget(Session* just_stepped);
  void retire_finished();
  /// Peak fast-tier bytes a request can pin once admitted.
  [[nodiscard]] std::int64_t projected_bytes(const ServeRequest& request) const;
  /// Irreducible bytes a session holds even after release_fast_tier
  /// (sinks + pending for tiered methods, the whole context otherwise) —
  /// admission keeps the sum of these under the plain budget so
  /// enforcement can always succeed, regardless of overcommit.
  [[nodiscard]] std::int64_t residual_bytes(const ServeRequest& request) const;
  /// Latency-model step cost for one session at its current context.
  [[nodiscard]] StepBreakdown step_cost(const Session& session) const;

  RequestQueue queue_;
  SelectorFactory factory_;
  SessionConfig session_config_;
  LatencyModel latency_;
  BatchSchedulerConfig config_;

  std::vector<std::unique_ptr<Session>> running_;
  FastTierLedger ledger_;
  ServeMetrics metrics_;
  double now_ms_ = 0.0;
  Index ticks_ = 0;
  Index finished_count_ = 0;
  Index round_robin_offset_ = 0;
};

}  // namespace ckv
