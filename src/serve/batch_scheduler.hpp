// Continuous-batching scheduler over per-session ClusterKV engines, with
// vLLM-style chunked prefill. Each tick:
//   1. admits queued sessions in FIFO order while their projected fast-tier
//      footprint fits the global HBM byte budget (admission only changes
//      state — the prompt is consumed chunk by chunk in later ticks);
//   2. advances every running session once: prefilling sessions consume one
//      prompt chunk of prefill_chunk_tokens, decoding sessions run one
//      decode step round-robin. The tick bills a mixed prefill+decode cost:
//      decoders share one weight pass and one framework overhead, each adds
//      its private KV-read / selection / transfer cost, and each prefill
//      chunk adds its causal-prefix attention + GEMM compute (plus visible
//      clustering overhead for ClusterKV; the final chunk of a multi-chunk
//      prompt also bills one cross-chunk cluster-repair pass, as does every
//      repair_decode_interval-th decode step when periodic repair is on);
//   3. enforces the budget: while global residency exceeds it, the coldest
//      session (least recent progress) offloads its non-sink, non-pending
//      clusters to the slow tier (sinks are never offloaded). This holds
//      mid-prefill too — already-clustered prompt chunks are reclaimable.
//
// The full scheduling model (tick lifecycle, cost accounting, knobs) is
// documented in docs/ARCHITECTURE.md and docs/SCHEDULING.md.
//
// The virtual clock composes sim/latency_model step costs, so tick
// durations reflect the full-size model the slice stands in for; residency
// bytes stay at slice scale, matching the configured budget.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kvcache/tiered_store.hpp"
#include "metrics/serve_metrics.hpp"
#include "serve/request_queue.hpp"
#include "serve/session.hpp"
#include "sim/fault_injector.hpp"
#include "sim/latency_model.hpp"
#include "sim/transfer_engine.hpp"
#include "util/common.hpp"
#include "util/thread_safety.hpp"

namespace ckv {

struct BatchSchedulerConfig {
  /// Global fast-tier (HBM) byte budget summed over all running sessions'
  /// residency, at slice scale. 0 = unlimited.
  std::int64_t fast_tier_budget_bytes = 0;
  /// Hard cap on concurrently running sessions (0 = unlimited).
  Index max_running = 0;
  /// Latency composition for the virtual clock.
  LatencyModel::Method method = LatencyModel::Method::kClusterKV;
  /// True for methods with a tiered store (ClusterKV): admission projects
  /// the bounded working-set floor instead of the full context.
  bool tiered_residency = false;
  /// Floor parameters when tiered_residency (match the engine's config).
  Index sink_tokens = 16;
  Index decode_interval = 320;
  Index cache_depth = 1;
  /// Cluster granularity for ClusterKV step costs (match the engine's
  /// config: the latency model bills centroid scoring per live cluster).
  Index tokens_per_cluster = 80;
  /// Admission overcommit: reservations may sum to budget * overcommit
  /// while *actual* residency is still enforced to the plain budget by
  /// preempting cold sessions. 1.0 = reserve true peaks (no preemption
  /// ever needed); > 1.0 trades preemption churn for utilization. Only
  /// meaningful with tiered_residency — untiered sessions cannot release
  /// anything, so overcommitting them would make the budget unenforceable.
  double admission_overcommit = 1.0;
  /// Prompt tokens a prefilling session consumes per tick. Small chunks
  /// bound how long one admission can stall the running batch's decode
  /// steps (TTFT of everyone else); 0 runs the whole prompt as a single
  /// chunk in one tick (the inline-prefill baseline).
  Index prefill_chunk_tokens = 256;
  /// Cross-chunk cluster-repair billing (match the engine's
  /// ClusterKVConfig): the tick that lands a session's final prompt chunk
  /// bills one LatencyModel::repair_ms pass when the prompt actually
  /// spanned multiple chunks, and decoding sessions bill one pass every
  /// repair_decode_interval generated tokens. 0 refine iterations = repair
  /// off, nothing billed.
  Index repair_refine_iterations = 4;
  Index repair_decode_interval = 0;
  /// Async cluster-prefetch billing mirror (match the engine's
  /// ClusterKVConfig::prefetch_clusters): > 0 bills ClusterKV decode steps
  /// with the overlap-aware transfer split — demand misses stall as
  /// before, speculatively issued fetches hide under the step's compute
  /// via LatencyModel::overlapped_fetch_ms. 0 = sync-fetch billing.
  /// Residency-wise nothing changes here: in-flight fetch bytes reach the
  /// budget through the ledger's reserved counter regardless.
  Index prefetch_clusters = 0;
  /// Model the slow->fast link as an explicit bandwidth-contended queue
  /// (sim/transfer_engine) instead of per-session bytes/bandwidth
  /// division: each tick's demand stall becomes the engine's modeled
  /// completion time for the fleet's queued demand bytes (drain order
  /// demand > speculative, FIFO within a class), so concurrent sessions'
  /// misses and prefetches contend for the wire. Requires kClusterKV with
  /// tiered_residency — the engine models that method's tiered fetch
  /// traffic. Off by default: every existing row keeps the closed-form
  /// per-session billing byte-identically.
  bool use_transfer_engine = false;
  /// Link bandwidth for the transfer engine (GB/s); 0 = the hardware
  /// model's pcie_gather_gbps. Sweeping this down makes contention bite.
  double link_gbps = 0.0;
  /// Fan session advancement out to the persistent worker pool. Sessions
  /// are independent (own engine, own RNG, own stores; the shared ledger
  /// is commutative atomics), so a tick may step them concurrently —
  /// *wall* time drops while every billed virtual-time, quality and
  /// billing column stays byte-identical to the serial scheduler: the
  /// fan-out only covers waves the headroom guard proves budget
  /// enforcement cannot interrupt, and order-sensitive work (metrics,
  /// preemption, enforcement, retirement) runs in a serial commit phase
  /// in the exact serial order (see docs/SCHEDULING.md). false forces the
  /// pre-fan-out serial path (determinism A/B runs, debugging).
  bool parallel_tick = true;
  /// Deterministic fault injection (docs/ROBUSTNESS.md). Disabled by
  /// default: every fault branch in the scheduler is gated on the plan,
  /// so a disabled plan reproduces the fault-free schedule byte for
  /// byte. When enabled, requires kClusterKV with tiered_residency (the
  /// degradation fallback is resident-only cluster selection); brownout
  /// and wire-failure knobs additionally require use_transfer_engine.
  FaultPlan fault_plan;
};

class BatchScheduler {
 public:
  BatchScheduler(std::vector<ServeRequest> trace, SelectorFactory factory,
                 SessionConfig session_config, LatencyModel latency,
                 BatchSchedulerConfig config);

  /// Runs one tick (admit, advance every session one chunk or step,
  /// enforce the budget). Returns true while sessions remain (queued or
  /// running). The budget invariant holds at every return, including while
  /// sessions are mid-prefill.
  bool tick();

  /// Ticks until every request has finished.
  void run();

  /// Current virtual time (ms) on the scheduler's clock.
  [[nodiscard]] double now_ms() const noexcept {
    const ExclusiveLock serial(serial_phase_);
    return now_ms_;
  }
  /// Admitted, unfinished sessions (prefilling + decoding).
  [[nodiscard]] Index running_count() const noexcept {
    const ExclusiveLock serial(serial_phase_);
    return static_cast<Index>(running_.size());
  }
  /// Requests still waiting for admission.
  [[nodiscard]] Index queued_count() const noexcept {
    const ExclusiveLock serial(serial_phase_);
    return queue_.size();
  }
  /// Sessions retired so far.
  [[nodiscard]] Index finished_count() const noexcept {
    const ExclusiveLock serial(serial_phase_);
    return finished_count_;
  }
  /// Ticks executed so far.
  [[nodiscard]] Index ticks() const noexcept {
    const ExclusiveLock serial(serial_phase_);
    return ticks_;
  }

  /// Global fast-tier footprint right now, summed over running sessions:
  /// resident bytes plus bytes reserved by in-flight prefetches — an
  /// async copy owns its destination from issue to completion, so the
  /// budget invariant covers transfers in flight.
  [[nodiscard]] std::int64_t fast_tier_bytes() const;

  /// O(1) residency of the tiered per-head stores (cross-check for the
  /// summed value; equals fast_tier_bytes() when every method is tiered).
  [[nodiscard]] const FastTierLedger& ledger() const noexcept { return ledger_; }

  [[nodiscard]] const ServeMetrics& metrics() const noexcept {
    const ExclusiveLock serial(serial_phase_);
    return metrics_;
  }
  /// Mutable access for exporters that append driver-side instruments
  /// (e.g. parallel.worker<i>.* counters) before dumping the registry.
  [[nodiscard]] ServeMetrics& metrics() noexcept {
    const ExclusiveLock serial(serial_phase_);
    return metrics_;
  }
  [[nodiscard]] const BatchSchedulerConfig& config() const noexcept { return config_; }

  /// Running sessions, admission order (testing hook: invariant checks
  /// walk these to assert sink residency).
  [[nodiscard]] const std::vector<std::unique_ptr<Session>>& running() const noexcept {
    const ExclusiveLock serial(serial_phase_);
    return running_;
  }

  /// Replay of ClusterKVEngine's chunked-prefill flush policy for one
  /// prompt (sinks don't pend; pending flushes at chunk boundaries once
  /// tokens_per_cluster accumulated; a final tail below that folds into
  /// the preceding batch). The repair and tail-fold bills key off this so
  /// the virtual clock only charges work the engine actually performs;
  /// public so tests can pin it to the engine's batch registration.
  struct PrefillFlushPlan {
    Index batches = 0;        ///< clustering batches registered by prefill
    bool tail_folds = false;  ///< final tail re-clusters with the last batch
  };
  [[nodiscard]] PrefillFlushPlan prefill_flush_plan(Index prompt_len) const;

 private:
  /// One session's advancement this tick, carried from the serial pre-pass
  /// through the (possibly parallel) advance phase into the serial commit
  /// phase. Pre-step values are captured before anything advances because
  /// commit-phase accounting (the inter-token gap) must see the state the
  /// serial scheduler would have seen at its sequence point.
  struct AdvanceItem {
    Session* session = nullptr;
    bool prefilling = false;
    Index chunk = 0;  ///< prefill chunk tokens (prefillers only)
    double pre_last_step_ms = -1.0;
    double pre_first_token_ms = -1.0;
    StepResult step;  ///< decode outcome (decoders only)
  };

  void admit_arrivals() CKV_REQUIRES(serial_phase_);
  void enforce_budget(Session* just_stepped) CKV_REQUIRES(serial_phase_);
  void retire_finished() CKV_REQUIRES(serial_phase_);
  /// Runs one item's prefill chunk / decode step at `completed_ms`,
  /// setting the calling thread's tracer context to the session's track
  /// (safe from pool workers — the ambient context is per-thread).
  ///
  /// Deliberately *not* CKV_REQUIRES(serial_phase_): this is the one
  /// scheduler method pool workers may run concurrently, and the analysis
  /// proves it touches no serial-phase state (any new read of a
  /// CKV_GUARDED_BY(serial_phase_) member here is a clang CI error — the
  /// compile-time form of "workers stay out of the commit phase").
  void advance_item(AdvanceItem& item, double completed_ms);
  /// The item's order-sensitive tail, serial-only: trace edges, metrics,
  /// the ledger cross-check and the budget-enforcement checkpoint, in the
  /// exact order the serial scheduler interleaves them between steps.
  void commit_item(AdvanceItem& item, double completed_ms)
      CKV_REQUIRES(serial_phase_);
  /// fast_tier_bytes() for callers already inside the serial phase.
  [[nodiscard]] std::int64_t fast_tier_bytes_locked() const
      CKV_REQUIRES(serial_phase_);
  /// Conservative upper bound on the fast-tier bytes this advancement can
  /// add (nothing subtracted for releases). The fan-out guard admits a
  /// wave only while the summed bounds fit the budget headroom, which
  /// proves every per-session enforcement checkpoint inside the wave
  /// would have been silent — the wave is then order-free and safe to
  /// run concurrently without changing a single observable byte.
  [[nodiscard]] std::int64_t advance_growth_bound_bytes(
      const AdvanceItem& item) const;
  /// Sheds the blocked queue head when the fault plan's shed bound says
  /// its wait is hopeless; returns true when a request was dropped (the
  /// admission loop then re-examines the new head).
  bool shed_blocked_head() CKV_REQUIRES(serial_phase_);
  /// Peak fast-tier bytes a request can pin once admitted.
  [[nodiscard]] std::int64_t projected_bytes(const ServeRequest& request) const;
  /// Irreducible bytes a session holds even after release_fast_tier
  /// (sinks + pending for tiered methods, the whole context otherwise) —
  /// admission keeps the sum of these under the plain budget so
  /// enforcement can always succeed, regardless of overcommit.
  [[nodiscard]] std::int64_t residual_bytes(const ServeRequest& request) const;
  /// Latency-model step cost for one session at its current context.
  [[nodiscard]] StepBreakdown step_cost(const Session& session) const;
  /// Latency-model cost of one `chunk_tokens` prefill chunk for a
  /// prefilling session (causal-prefix attention + GEMM compute, plus
  /// visible per-chunk clustering overhead for ClusterKV).
  [[nodiscard]] double prefill_chunk_cost_ms(const Session& session,
                                             Index chunk_tokens) const;
  /// Chunk size a prefilling session consumes this tick (remaining prompt
  /// capped by prefill_chunk_tokens; the whole remainder when 0).
  [[nodiscard]] Index next_chunk_tokens(const Session& session) const;
  /// Emits the session's resume trace edge when it makes progress after a
  /// preemption (first step whose preemption count moved past what the
  /// scheduler last saw).
  void mark_resume_if_preempted(const Session& session)
      CKV_REQUIRES(serial_phase_);

  // ---- transfer-engine mode (config_.use_transfer_engine) ----

  /// One session's outstanding speculative transfer on the engine's queue:
  /// issued at the decode commit that billed the prefetch, resolved into
  /// hits / late hits / refunded waste at the session's next decode
  /// commit, or canceled by enforcement / retirement.
  struct TransferLink {
    std::uint64_t spec_id = 0;
    Index spec_tokens = 0;
  };

  /// Model-scale wire bytes of one head-summed step-token count unit
  /// (StepResult counts sum over layers x heads of the slice, so one full
  /// token's fetch equals total_heads of them).
  [[nodiscard]] double model_bytes_per_step_token() const;
  /// Demand bytes this decoder is projected to put on the wire this step
  /// (its measured demand rate x attended tokens, model scale) — the
  /// engine-mode billing pre-pass input, a pure function of pre-tick state.
  [[nodiscard]] double projected_demand_bytes(const Session& session) const;
  /// Decode-commit engine bookkeeping: resolves the session's outstanding
  /// speculation against the step's observed hits (late hits re-enqueue as
  /// demand), enqueues the step's demand misses, and issues this step's
  /// speculative traffic.
  void resolve_session_transfers(Session& session, const StepResult& step)
      CKV_REQUIRES(serial_phase_);
  /// Drops the session's outstanding speculative request from the engine
  /// (mirrors Session::cancel_prefetches at the wire level).
  void cancel_session_spec(const Session& session) CKV_REQUIRES(serial_phase_);
  /// Advances the engine's wire to `completed_ms`, records per-tick drain
  /// metrics and emits the transfer-track spans.
  void drain_transfer_engine(double completed_ms) CKV_REQUIRES(serial_phase_);

  /// The tick's serial phase as a compile-time capability: everything a
  /// worker must not touch while the wave fan-out is in flight is
  /// CKV_GUARDED_BY(serial_phase_). tick() claims it for the tick body;
  /// advance_item (the only code that runs on pool workers) does not, so
  /// the clang -Wthread-safety leg statically separates the parallel
  /// advance phase from the serial commit phase. No runtime lock — ticks
  /// are single-threaded by contract; this makes the contract checkable.
  mutable ExclusiveContext serial_phase_;

  RequestQueue queue_ CKV_GUARDED_BY(serial_phase_);
  SelectorFactory factory_;
  SessionConfig session_config_;
  LatencyModel latency_;
  BatchSchedulerConfig config_;

  std::vector<std::unique_ptr<Session>> running_ CKV_GUARDED_BY(serial_phase_);
  /// Not guarded: workers' stores feed it through commutative relaxed
  /// atomics during the fan-out (see FastTierLedger).
  FastTierLedger ledger_;
  ServeMetrics metrics_ CKV_GUARDED_BY(serial_phase_);
  double now_ms_ CKV_GUARDED_BY(serial_phase_) = 0.0;
  Index ticks_ CKV_GUARDED_BY(serial_phase_) = 0;
  Index finished_count_ CKV_GUARDED_BY(serial_phase_) = 0;
  Index round_robin_offset_ CKV_GUARDED_BY(serial_phase_) = 0;
  /// Preemption count last observed per running session id — the
  /// scheduler's memory for preempt -> resume trace edges.
  std::unordered_map<Index, Index> preempt_seen_ CKV_GUARDED_BY(serial_phase_);
  /// The contended slow->fast wire (null unless use_transfer_engine). All
  /// engine state advances in the serial phase on the virtual clock.
  std::unique_ptr<TransferEngine> transfer_engine_ CKV_GUARDED_BY(serial_phase_);
  /// Effective engine link rate (GB/s) — config_.link_gbps or the
  /// hardware gather rate; cached so billing and the engine agree exactly.
  double transfer_link_gbps_ = 0.0;
  /// Outstanding speculative transfer per running session id (keyed
  /// access only — never iterated, so order cannot leak anywhere).
  std::unordered_map<Index, TransferLink> transfer_links_
      CKV_GUARDED_BY(serial_phase_);
  /// Pure-hash fault oracle (null unless config_.fault_plan.enabled) —
  /// every fault branch in the tick gates on this pointer, so the
  /// fault-free path is the pre-fault code verbatim.
  std::unique_ptr<FaultInjector> fault_injector_;
};

}  // namespace ckv
