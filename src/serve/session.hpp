// One serving session: a per-request procedural context plus its own
// DecodeEngine (per-head selector state) and lifecycle. The scheduler owns
// the virtual clock; the session records the timestamps it is handed and
// exposes the fast-tier residency hooks the global budget arbitration
// needs (sum over its per-head stores, release-on-preemption).
//
// Lifecycle: kQueued -> (admit) kPrefilling -> kDecoding -> kFinished.
// Prefill is chunked: admit() only transitions the state; prefill_next()
// consumes one prompt chunk per call, so the scheduler can interleave a
// long admission with other sessions' decode steps. Preemption does not
// change state (and may land mid-prefill): it only moves reclaimable KV
// to the slow tier; the session keeps going and refetches on demand.
#pragma once

#include <memory>

#include "model/decode_engine.hpp"
#include "model/procedural.hpp"
#include "serve/request_queue.hpp"
#include "util/common.hpp"

namespace ckv {

enum class SessionState { kQueued, kPrefilling, kDecoding, kFinished };

[[nodiscard]] const char* to_string(SessionState state) noexcept;

struct SessionConfig {
  SimShape shape;            ///< simulation slice every session runs
  ProceduralParams params;   ///< procedural context statistics
  DecodeEngineConfig engine; ///< budget etc. for the per-session engine
  /// fp16-equivalent residency accounting. Must match the selector's own
  /// width (ClusterKVConfig::element_bytes) or the scheduler's byte math
  /// diverges from the stores' ledger.
  Index element_bytes = 2;
};

/// Bytes of one token's KV entry (key + value) for one head at the
/// config's accounting width — the single source for all serving byte
/// math (sessions, scheduler projections, bench budget sizing).
[[nodiscard]] inline Index session_token_bytes(const SessionConfig& config) noexcept {
  return 2 * config.shape.head_dim * config.element_bytes;
}

class Session {
 public:
  /// Builds the session's context model and engine (selector state per
  /// layer/head comes from the factory). Construction is cheap relative to
  /// prefill; the heavy work happens chunk by chunk in prefill_next.
  Session(const ServeRequest& request, const SelectorFactory& factory,
          const SessionConfig& config);

  /// The request this session serves (lengths, arrival time, seed).
  [[nodiscard]] const ServeRequest& request() const noexcept { return request_; }
  /// Current lifecycle state (see the diagram in docs/ARCHITECTURE.md).
  [[nodiscard]] SessionState state() const noexcept { return state_; }
  /// Generated tokens so far (0 until the first decode step).
  [[nodiscard]] Index tokens_generated() const noexcept {
    return engine_->steps_completed();
  }
  /// True once decode_len tokens have been generated.
  [[nodiscard]] bool finished() const noexcept {
    return state_ == SessionState::kFinished;
  }

  /// Admits the session (kQueued -> kPrefilling) without touching the
  /// prompt. `now_ms` is the admission timestamp on the scheduler's clock
  /// (queue wait = now - arrival); feeding the prompt is prefill_next's
  /// job, one chunk per tick.
  void admit(double now_ms);

  /// Consumes the next prompt chunk of at most `chunk_tokens` tokens
  /// (0 = the whole remaining prompt); `completed_ms` is when the chunk's
  /// work lands on the virtual clock. Returns tokens consumed. The final
  /// chunk transitions kPrefilling -> kDecoding and stamps
  /// prefill_done_ms. Only valid while prefilling.
  Index prefill_next(Index chunk_tokens, double completed_ms);

  /// Convenience for single-shot admission (tests, non-serving drivers):
  /// admit() + one whole-prompt chunk, both stamped `now_ms`.
  void run_prefill(double now_ms);

  /// Runs one decode step; `completed_ms` is when the token lands on the
  /// virtual clock (the scheduler knows the tick cost, the session does
  /// not). Transitions to kFinished after decode_len steps. Only valid
  /// once prefill completed.
  StepResult decode_next(double completed_ms);

  /// Mid-decode cancellation (fault injection / client disconnect): ends
  /// the session now (kDecoding -> kFinished) with whatever it generated.
  /// Requires at least one generated token so finish/first-token
  /// timestamps stay ordered; the scheduler retires the session through
  /// the normal path (release, ledger detach, record) afterwards.
  void abort(double now_ms);

  /// True when the session ended via abort() rather than completing.
  [[nodiscard]] bool aborted() const noexcept { return aborted_; }

  /// Prompt tokens fed to the engine so far (== prompt_len once decoding).
  [[nodiscard]] Index prefill_tokens_done() const noexcept {
    return engine_->prefill_tokens_done();
  }

  // ---- fast-tier residency ----

  /// Attaches a shared ledger to every tiered per-head store (no-op for
  /// untiered methods, which is why the scheduler also sums sessions).
  void attach_fast_tier_ledger(FastTierLedger* ledger);

  /// Fast-tier bytes this session currently holds, summed over all
  /// per-head selectors at the configured element width.
  [[nodiscard]] std::int64_t fast_resident_bytes() const;

  /// Preemption: every per-head selector releases its reclaimable fast KV
  /// (sinks and pending tokens stay). Returns total tokens offloaded.
  Index release_fast_tier();

  /// Drops every per-head selector's in-flight speculative fetches
  /// (reserved bytes free, resident KV and cache windows untouched) — the
  /// scheduler's first, cheapest enforcement lever (kEnforcement), also
  /// called at retirement with kSessionRelease so every issued fetch
  /// resolves through an attributed path. Not counted as a preemption.
  /// Returns fetches canceled.
  Index cancel_prefetches(obs::FetchCancelReason reason =
                              obs::FetchCancelReason::kEnforcement);

  /// Speculative fetches canceled for `reason`, summed over all per-head
  /// selectors (waste attribution; see obs::FetchCancelReason).
  [[nodiscard]] std::int64_t prefetch_canceled_tokens(
      obs::FetchCancelReason reason) const;

  /// Times release_fast_tier actually moved tokens (preemption count).
  [[nodiscard]] Index preemptions() const noexcept { return preemptions_; }

  // ---- fault injection (all zero / no-ops on the fault-free path) ----

  /// Marks (or clears) the next decode step as degraded: every per-head
  /// selector falls back to resident-only selection and issues no
  /// slow-tier traffic. Setting it also counts one degraded step.
  void set_degraded_step(bool degraded);

  /// Decode steps this session served in degraded (resident-only) mode.
  [[nodiscard]] Index degraded_steps() const noexcept { return degraded_steps_; }

  /// Accumulates billed fetch-retry attempts and their backoff stall.
  void note_fault_retries(Index retries, double penalty_ms) {
    fault_retries_ += retries;
    fault_retry_ms_ += penalty_ms;
  }
  /// Retry attempts billed against this session's demand fetches.
  [[nodiscard]] Index fault_retries() const noexcept { return fault_retries_; }
  /// Total backoff stall billed for those retries (virtual ms).
  [[nodiscard]] double fault_retry_ms() const noexcept { return fault_retry_ms_; }
  /// Counts one demand fetch declared dead (retries/deadline exhausted).
  void note_dead_fetch() { ++dead_fetches_; }
  [[nodiscard]] Index dead_fetches() const noexcept { return dead_fetches_; }

  /// Bytes of `tokens` context tokens held fast across all heads/layers —
  /// the admission projection for methods that pin the whole context.
  [[nodiscard]] std::int64_t context_bytes(Index tokens) const noexcept;

  // ---- timing (scheduler-assigned virtual timestamps, ms) ----

  /// When the request entered the queue (copied from the request).
  [[nodiscard]] double arrival_ms() const noexcept { return request_.arrival_ms; }
  /// When the scheduler admitted the session (-1 while queued).
  [[nodiscard]] double admit_ms() const noexcept { return admit_ms_; }
  /// When the final prefill chunk completed (-1 while prefilling).
  [[nodiscard]] double prefill_done_ms() const noexcept { return prefill_done_ms_; }
  /// When the first generated token landed (-1 before it).
  [[nodiscard]] double first_token_ms() const noexcept { return first_token_ms_; }
  /// When the last generated token landed (-1 until finished).
  [[nodiscard]] double finish_ms() const noexcept { return finish_ms_; }
  /// Last time this session made progress (decode step or prefill chunk);
  /// the scheduler's coldness key for preemption victim choice.
  [[nodiscard]] double last_step_ms() const noexcept { return last_step_ms_; }

  // ---- quality / traffic ----

  [[nodiscard]] double mean_recall() const;
  /// Meaningful (selection-forced) decode steps behind mean_recall — the
  /// aggregation weight that keeps cross-run recall comparisons on an
  /// identical denominator (see DecodeEngine::recall_stat).
  [[nodiscard]] Index recall_steps() const;
  [[nodiscard]] double mean_coverage() const;
  /// Lifetime cluster-cache hit rate (hits / (hits + fetches); 0 when the
  /// method never fetches).
  [[nodiscard]] double cache_hit_rate() const;

  // ---- async prefetch traffic (0 everywhere when prefetch is off) ----

  /// Fetched tokens whose copy was issued speculatively (prefetch hits).
  [[nodiscard]] std::int64_t prefetch_hit_tokens() const;
  /// Speculative fetches issued in total (hits + waste).
  [[nodiscard]] std::int64_t prefetch_issued_tokens() const;
  /// Fetched tokens the prediction missed (fetched - prefetch hits).
  [[nodiscard]] std::int64_t demand_fetched_tokens() const;
  /// Share of selected-token traffic fetched synchronously: the billing
  /// split's demand term (equals 1 - cache_hit_rate with prefetch off).
  /// 1.0 before any selection, mirroring cache_hit_rate's pessimism.
  [[nodiscard]] double demand_miss_rate() const;
  /// Speculative fetches issued per selected token (hits and waste both
  /// occupy the wire); 0 before any selection.
  [[nodiscard]] double prefetch_issue_rate() const;

  /// The per-session decode engine (selector state; testing/metrics hook).
  [[nodiscard]] DecodeEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const DecodeEngine& engine() const noexcept { return *engine_; }
  /// The configuration this session was built with.
  [[nodiscard]] const SessionConfig& config() const noexcept { return config_; }

 private:
  ServeRequest request_;
  SessionConfig config_;
  std::unique_ptr<ProceduralContextModel> model_;
  std::unique_ptr<DecodeEngine> engine_;
  SessionState state_ = SessionState::kQueued;
  double admit_ms_ = -1.0;
  double prefill_done_ms_ = -1.0;
  double first_token_ms_ = -1.0;
  double finish_ms_ = -1.0;
  double last_step_ms_ = -1.0;
  Index preemptions_ = 0;
  bool aborted_ = false;
  Index degraded_steps_ = 0;
  Index fault_retries_ = 0;
  double fault_retry_ms_ = 0.0;
  Index dead_fetches_ = 0;
};

}  // namespace ckv
