// Synthetic request traces for the serving benches: Poisson arrivals at a
// configurable offered load with uniformly drawn prompt/generation lengths,
// fully reproducible from one seed.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request_queue.hpp"
#include "util/common.hpp"

namespace ckv {

struct TraceConfig {
  Index num_requests = 16;
  /// Mean arrival rate in requests per second of virtual time. <= 0 means
  /// all requests arrive at t = 0 (closed-loop / batch workload).
  double offered_rps = 4.0;
  Index prompt_len_min = 768;
  Index prompt_len_max = 1280;
  Index decode_len_min = 16;
  Index decode_len_max = 48;
};

/// Generates `num_requests` requests with exponential inter-arrival gaps
/// (Poisson process) and uniform lengths. Ids are 0..n-1 in arrival order;
/// per-request seeds are derived from `seed` and the id.
std::vector<ServeRequest> make_poisson_trace(const TraceConfig& config,
                                             std::uint64_t seed);

}  // namespace ckv
