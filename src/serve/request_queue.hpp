// Arrival queue of the serving runtime: requests carry an arrival time on
// the virtual clock plus the prompt/generation lengths the scheduler needs
// for admission control. FIFO in arrival order — head-of-line requests that
// do not fit the fast-tier budget block later ones (no bypass), which keeps
// admission fair and the budget math simple.
#pragma once

#include <cstdint>
#include <deque>

#include "util/common.hpp"

namespace ckv {

/// One user request: generate `decode_len` tokens after a `prompt_len`
/// prefill. `seed` derives the session's procedural context so every
/// session sees distinct but reproducible traffic.
struct ServeRequest {
  Index id = 0;
  double arrival_ms = 0.0;
  Index prompt_len = 0;
  Index decode_len = 0;
  std::uint64_t seed = 0;
};

class RequestQueue {
 public:
  /// Inserts keeping the queue sorted by arrival time (stable: equal
  /// arrivals keep push order).
  void push(ServeRequest request);

  /// True when no requests are waiting.
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  /// Requests currently waiting for admission.
  [[nodiscard]] Index size() const noexcept { return static_cast<Index>(queue_.size()); }

  /// Earliest-arriving request (throws when empty). The scheduler projects
  /// this request's residency before deciding to pop it.
  [[nodiscard]] const ServeRequest& front() const;
  /// Removes and returns the head request (throws when empty).
  ServeRequest pop();

  /// True when the head request has arrived by `now_ms`.
  [[nodiscard]] bool has_arrival(double now_ms) const;

  /// Arrival time of the head request (+inf when empty) — lets an idle
  /// scheduler jump its clock to the next arrival.
  [[nodiscard]] double next_arrival_ms() const noexcept;

 private:
  std::deque<ServeRequest> queue_;
};

}  // namespace ckv
