#include "serve/session.hpp"

namespace ckv {

const char* to_string(SessionState state) noexcept {
  switch (state) {
    case SessionState::kQueued:
      return "queued";
    case SessionState::kPrefilling:
      return "prefilling";
    case SessionState::kDecoding:
      return "decoding";
    case SessionState::kFinished:
      return "finished";
  }
  return "unknown";
}

Session::Session(const ServeRequest& request, const SelectorFactory& factory,
                 const SessionConfig& config)
    : request_(request), config_(config) {
  expects(request.prompt_len > 0, "Session: prompt_len must be positive");
  expects(request.decode_len > 0, "Session: decode_len must be positive");
  model_ = std::make_unique<ProceduralContextModel>(config.shape, config.params,
                                                    request.seed, request.prompt_len);
  engine_ = std::make_unique<DecodeEngine>(*model_, factory, config.engine);
}

void Session::admit(double now_ms) {
  expects(state_ == SessionState::kQueued, "Session::admit: already admitted");
  expects(now_ms >= request_.arrival_ms, "Session::admit: admitted before arrival");
  state_ = SessionState::kPrefilling;
  admit_ms_ = now_ms;
}

Index Session::prefill_next(Index chunk_tokens, double completed_ms) {
  expects(state_ == SessionState::kPrefilling,
          "Session::prefill_next: session is not prefilling");
  expects(chunk_tokens >= 0, "Session::prefill_next: negative chunk");
  const Index max_tokens =
      chunk_tokens == 0 ? request_.prompt_len : chunk_tokens;
  const Index consumed = engine_->prefill_chunk(max_tokens);
  last_step_ms_ = completed_ms;
  if (engine_->prefilled()) {
    prefill_done_ms_ = completed_ms;
    state_ = SessionState::kDecoding;
  }
  return consumed;
}

void Session::run_prefill(double now_ms) {
  admit(now_ms);
  prefill_next(0, now_ms);
}

StepResult Session::decode_next(double completed_ms) {
  expects(state_ == SessionState::kDecoding,
          "Session::decode_next: session is not decoding");
  StepResult result = engine_->decode_next();
  last_step_ms_ = completed_ms;
  if (first_token_ms_ < 0.0) {
    first_token_ms_ = completed_ms;
  }
  if (engine_->steps_completed() >= request_.decode_len) {
    state_ = SessionState::kFinished;
    finish_ms_ = completed_ms;
  }
  return result;
}

void Session::abort(double now_ms) {
  expects(state_ == SessionState::kDecoding,
          "Session::abort: only a decoding session can abort mid-decode");
  expects(tokens_generated() >= 1,
          "Session::abort: abort lands after a committed decode step");
  state_ = SessionState::kFinished;
  finish_ms_ = now_ms;
  aborted_ = true;
}

void Session::set_degraded_step(bool degraded) {
  auto& bank = engine_->selectors();
  for (Index l = 0; l < bank.num_layers(); ++l) {
    for (Index h = 0; h < bank.num_heads(); ++h) {
      bank.at(l, h).set_degraded_step(degraded);
    }
  }
  if (degraded) {
    ++degraded_steps_;
  }
}

void Session::attach_fast_tier_ledger(FastTierLedger* ledger) {
  auto& bank = engine_->selectors();
  for (Index l = 0; l < bank.num_layers(); ++l) {
    for (Index h = 0; h < bank.num_heads(); ++h) {
      bank.at(l, h).attach_fast_tier_ledger(ledger);
    }
  }
}

std::int64_t Session::fast_resident_bytes() const {
  const Index per_token = session_token_bytes(config_);
  std::int64_t tokens = 0;
  const auto& bank = engine_->selectors();
  for (Index l = 0; l < bank.num_layers(); ++l) {
    for (Index h = 0; h < bank.num_heads(); ++h) {
      tokens += bank.at(l, h).fast_resident_tokens();
    }
  }
  return tokens * per_token;
}

Index Session::release_fast_tier() {
  Index moved = 0;
  auto& bank = engine_->selectors();
  for (Index l = 0; l < bank.num_layers(); ++l) {
    for (Index h = 0; h < bank.num_heads(); ++h) {
      moved += bank.at(l, h).release_fast_tier();
    }
  }
  if (moved > 0) {
    ++preemptions_;
  }
  return moved;
}

Index Session::cancel_prefetches(obs::FetchCancelReason reason) {
  Index canceled = 0;
  auto& bank = engine_->selectors();
  for (Index l = 0; l < bank.num_layers(); ++l) {
    for (Index h = 0; h < bank.num_heads(); ++h) {
      canceled += bank.at(l, h).cancel_prefetches(reason);
    }
  }
  return canceled;
}

std::int64_t Session::prefetch_canceled_tokens(obs::FetchCancelReason reason) const {
  std::int64_t canceled = 0;
  const auto& bank = engine_->selectors();
  for (Index l = 0; l < bank.num_layers(); ++l) {
    for (Index h = 0; h < bank.num_heads(); ++h) {
      canceled += bank.at(l, h).prefetch_canceled_tokens(reason);
    }
  }
  return canceled;
}

std::int64_t Session::context_bytes(Index tokens) const noexcept {
  return static_cast<std::int64_t>(tokens) * session_token_bytes(config_) *
         config_.shape.total_heads();
}

double Session::mean_recall() const { return engine_->mean_recall(); }

Index Session::recall_steps() const { return engine_->recall_steps(); }

double Session::mean_coverage() const { return engine_->mean_coverage(); }

double Session::cache_hit_rate() const {
  const double total = static_cast<double>(engine_->total_cache_hits()) +
                       static_cast<double>(engine_->total_fetched());
  return total <= 0.0 ? 0.0
                      : static_cast<double>(engine_->total_cache_hits()) / total;
}

std::int64_t Session::prefetch_hit_tokens() const {
  return engine_->total_prefetch_hits();
}

std::int64_t Session::prefetch_issued_tokens() const {
  return engine_->total_prefetch_issued();
}

std::int64_t Session::demand_fetched_tokens() const {
  return engine_->total_fetched() - engine_->total_prefetch_hits();
}

double Session::demand_miss_rate() const {
  const double total = static_cast<double>(engine_->total_cache_hits()) +
                       static_cast<double>(engine_->total_fetched());
  return total <= 0.0 ? 1.0 : static_cast<double>(demand_fetched_tokens()) / total;
}

double Session::prefetch_issue_rate() const {
  const double total = static_cast<double>(engine_->total_cache_hits()) +
                       static_cast<double>(engine_->total_fetched());
  return total <= 0.0
             ? 0.0
             : static_cast<double>(engine_->total_prefetch_issued()) / total;
}

}  // namespace ckv
