#include "serve/request_queue.hpp"

#include <algorithm>
#include <limits>

namespace ckv {

void RequestQueue::push(ServeRequest request) {
  expects(request.prompt_len > 0, "RequestQueue::push: prompt_len must be positive");
  expects(request.decode_len > 0, "RequestQueue::push: decode_len must be positive");
  expects(request.arrival_ms >= 0.0, "RequestQueue::push: arrival must be >= 0");
  const auto at = std::upper_bound(
      queue_.begin(), queue_.end(), request,
      [](const ServeRequest& a, const ServeRequest& b) {
        return a.arrival_ms < b.arrival_ms;
      });
  queue_.insert(at, std::move(request));
}

const ServeRequest& RequestQueue::front() const {
  expects(!queue_.empty(), "RequestQueue::front: queue is empty");
  return queue_.front();
}

ServeRequest RequestQueue::pop() {
  expects(!queue_.empty(), "RequestQueue::pop: queue is empty");
  ServeRequest request = queue_.front();
  queue_.pop_front();
  return request;
}

bool RequestQueue::has_arrival(double now_ms) const {
  return !queue_.empty() && queue_.front().arrival_ms <= now_ms;
}

double RequestQueue::next_arrival_ms() const noexcept {
  return queue_.empty() ? std::numeric_limits<double>::infinity()
                        : queue_.front().arrival_ms;
}

}  // namespace ckv
