#include "kvcache/tiered_store.hpp"

#include "tensor/matrix.hpp"

namespace ckv {

void TransferStats::merge(const TransferStats& other) noexcept {
  bytes_to_fast += other.bytes_to_fast;
  bytes_to_slow += other.bytes_to_slow;
  fetch_events += other.fetch_events;
  tokens_fetched += other.tokens_fetched;
  tokens_offloaded += other.tokens_offloaded;
}

TieredKVStore::TieredKVStore(Index head_dim, Index element_bytes)
    : store_(head_dim), element_bytes_(element_bytes) {
  expects(element_bytes > 0, "TieredKVStore: element_bytes must be positive");
}

void TieredKVStore::append(std::span<const float> key, std::span<const float> value) {
  store_.append(key, value);
  fast_resident_.insert(store_.size() - 1);
}

void TieredKVStore::append_block(const Matrix& keys, const Matrix& values) {
  const Index begin = store_.size();
  store_.append_block(keys, values);
  for (Index p = begin; p < store_.size(); ++p) {
    fast_resident_.insert(p);
  }
}

void TieredKVStore::offload_to_slow(Index begin, Index end) {
  expects(begin >= 0 && begin <= end && end <= store_.size(),
          "TieredKVStore::offload_to_slow: bad range");
  for (Index p = begin; p < end; ++p) {
    if (fast_resident_.erase(p) > 0) {
      stats_.bytes_to_slow += token_bytes();
      ++stats_.tokens_offloaded;
    }
  }
}

Index TieredKVStore::ensure_resident(std::span<const Index> positions) {
  Index moved = 0;
  for (const Index p : positions) {
    expects(p >= 0 && p < store_.size(),
            "TieredKVStore::ensure_resident: position out of range");
    if (fast_resident_.insert(p).second) {
      stats_.bytes_to_fast += token_bytes();
      ++stats_.tokens_fetched;
      ++moved;
    }
  }
  if (moved > 0) {
    ++stats_.fetch_events;
  }
  return moved;
}

void TieredKVStore::drop_from_fast(std::span<const Index> positions) {
  for (const Index p : positions) {
    fast_resident_.erase(p);
  }
}

bool TieredKVStore::is_fast_resident(Index position) const {
  return fast_resident_.contains(position);
}

Index TieredKVStore::fast_resident_count() const noexcept {
  return static_cast<Index>(fast_resident_.size());
}

Index TieredKVStore::token_bytes() const noexcept {
  return 2 * store_.head_dim() * element_bytes_;
}

}  // namespace ckv
