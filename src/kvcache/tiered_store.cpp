#include "kvcache/tiered_store.hpp"

#include <algorithm>

#include "tensor/matrix.hpp"

namespace ckv {

void TransferStats::merge(const TransferStats& other) noexcept {
  bytes_to_fast += other.bytes_to_fast;
  bytes_to_slow += other.bytes_to_slow;
  fetch_events += other.fetch_events;
  tokens_fetched += other.tokens_fetched;
  demand_landed += other.demand_landed;
  tokens_offloaded += other.tokens_offloaded;
  tokens_prefetch_issued += other.tokens_prefetch_issued;
  tokens_prefetch_canceled += other.tokens_prefetch_canceled;
  for (int r = 0; r < obs::kFetchCancelReasonCount; ++r) {
    tokens_prefetch_canceled_by[r] += other.tokens_prefetch_canceled_by[r];
  }
}

namespace {

/// Reason-specific cancel event names so a Perfetto query can slice waste
/// by cause without parsing args.
const char* cancel_event_name(obs::FetchCancelReason reason) noexcept {
  switch (reason) {
    case obs::FetchCancelReason::kMisprediction:
      return "fetch-cancel-mispredict";
    case obs::FetchCancelReason::kEnforcement:
      return "fetch-cancel-enforce";
    case obs::FetchCancelReason::kSessionRelease:
      return "fetch-cancel-release";
  }
  return "fetch-cancel";
}

}  // namespace

TieredKVStore::TieredKVStore(Index head_dim, Index element_bytes)
    : store_(head_dim), element_bytes_(element_bytes) {
  expects(element_bytes > 0, "TieredKVStore: element_bytes must be positive");
}

bool TieredKVStore::mark_fast(Index position) {
  expects(!in_flight_.contains(position),
          "TieredKVStore: position is in flight; complete or cancel the "
          "fetch before marking it resident");
  if (!fast_resident_.insert(position).second) {
    return false;
  }
  if (ledger_ != nullptr) {
    ledger_->add(token_bytes());
  }
  return true;
}

bool TieredKVStore::unmark_fast(Index position) {
  if (fast_resident_.erase(position) == 0) {
    return false;
  }
  if (ledger_ != nullptr) {
    ledger_->add(-token_bytes());
  }
  return true;
}

void TieredKVStore::append(std::span<const float> key, std::span<const float> value) {
  const ExclusiveLock own(owner_);
  store_.append(key, value);
  mark_fast(store_.size() - 1);
}

void TieredKVStore::append_block(const Matrix& keys, const Matrix& values) {
  const ExclusiveLock own(owner_);
  const Index begin = store_.size();
  store_.append_block(keys, values);
  for (Index p = begin; p < store_.size(); ++p) {
    mark_fast(p);
  }
}

void TieredKVStore::offload_to_slow(Index begin, Index end) {
  expects(begin >= 0 && begin <= end && end <= store_.size(),
          "TieredKVStore::offload_to_slow: bad range");
  const ExclusiveLock own(owner_);
  for (Index p = begin; p < end; ++p) {
    if (unmark_fast(p)) {
      stats_.bytes_to_slow += token_bytes();
      ++stats_.tokens_offloaded;
    }
  }
}

Index TieredKVStore::offload_positions(std::span<const Index> positions) {
  const ExclusiveLock own(owner_);
  Index moved = 0;
  for (const Index p : positions) {
    expects(p >= 0 && p < store_.size(),
            "TieredKVStore::offload_positions: position out of range");
    if (unmark_fast(p)) {
      stats_.bytes_to_slow += token_bytes();
      ++stats_.tokens_offloaded;
      ++moved;
    }
  }
  return moved;
}

Index TieredKVStore::ensure_resident(std::span<const Index> positions) {
  const ExclusiveLock own(owner_);
  Index moved = 0;
  for (const Index p : positions) {
    expects(p >= 0 && p < store_.size(),
            "TieredKVStore::ensure_resident: position out of range");
    if (in_flight_.contains(p)) {
      // The demand path caught up with an issued copy: land it. Its PCIe
      // bytes were counted at issue (no re-count), but the copy is now on
      // the demand critical path — it counts as a demand fetch so callers
      // bill its remaining completion time instead of treating it as free.
      if (land_fetch(p)) {
        ++stats_.tokens_fetched;
        ++stats_.demand_landed;
        ++moved;
        obs::tracer().instant(
            "fetch-complete", {{"tokens", 1}, {"bytes", token_bytes()}});
      }
      continue;
    }
    if (mark_fast(p)) {
      stats_.bytes_to_fast += token_bytes();
      ++stats_.tokens_fetched;
      ++moved;
    }
  }
  if (moved > 0) {
    ++stats_.fetch_events;
    obs::tracer().instant("demand-fetch",
                          {{"tokens", moved}, {"bytes", moved * token_bytes()}});
  }
  return moved;
}

Index TieredKVStore::begin_fetch(std::span<const Index> positions) {
  const ExclusiveLock own(owner_);
  Index issued = 0;
  for (const Index p : positions) {
    expects(p >= 0 && p < store_.size(),
            "TieredKVStore::begin_fetch: position out of range");
    if (fast_resident_.contains(p) || !in_flight_.insert(p).second) {
      continue;
    }
    if (ledger_ != nullptr) {
      ledger_->add_reserved(token_bytes());
    }
    stats_.bytes_to_fast += token_bytes();
    ++stats_.tokens_prefetch_issued;
    ++issued;
  }
  if (issued > 0) {
    obs::tracer().instant(
        "fetch-issue", {{"tokens", issued}, {"bytes", issued * token_bytes()}});
  }
  return issued;
}

bool TieredKVStore::land_fetch(Index position) {
  if (in_flight_.erase(position) == 0) {
    return false;
  }
  if (ledger_ != nullptr) {
    ledger_->add_reserved(-token_bytes());
  }
  mark_fast(position);
  return true;
}

Index TieredKVStore::complete_fetch(std::span<const Index> positions) {
  const ExclusiveLock own(owner_);
  Index landed = 0;
  for (const Index p : positions) {
    if (land_fetch(p)) {
      ++landed;
    }
  }
  if (landed > 0) {
    obs::tracer().instant(
        "fetch-complete",
        {{"tokens", landed}, {"bytes", landed * token_bytes()}});
  }
  return landed;
}

Index TieredKVStore::cancel_fetch_impl(std::span<const Index> positions,
                                       obs::FetchCancelReason reason) {
  Index canceled = 0;
  for (const Index p : positions) {
    if (in_flight_.erase(p) == 0) {
      continue;
    }
    if (ledger_ != nullptr) {
      ledger_->add_reserved(-token_bytes());
    }
    ++stats_.tokens_prefetch_canceled;
    ++stats_.tokens_prefetch_canceled_by[static_cast<int>(reason)];
    ++canceled;
  }
  if (canceled > 0) {
    obs::tracer().instant(
        cancel_event_name(reason),
        {{"tokens", canceled}, {"bytes", canceled * token_bytes()}});
  }
  return canceled;
}

Index TieredKVStore::cancel_fetch(std::span<const Index> positions,
                                  obs::FetchCancelReason reason) {
  const ExclusiveLock own(owner_);
  return cancel_fetch_impl(positions, reason);
}

Index TieredKVStore::cancel_all_fetches(obs::FetchCancelReason reason) {
  const ExclusiveLock own(owner_);
  // Snapshot order does not matter: cancel_fetch_impl erases each position
  // independently and the counters are order-free sums.
  // ckv-lint: allow(unordered-iter) -- order-free snapshot of a set
  std::vector<Index> positions(in_flight_.begin(), in_flight_.end());
  return cancel_fetch_impl(positions, reason);
}

bool TieredKVStore::is_in_flight(Index position) const {
  const ExclusiveLock own(owner_);
  return in_flight_.contains(position);
}

Index TieredKVStore::in_flight_count() const noexcept {
  const ExclusiveLock own(owner_);
  return static_cast<Index>(in_flight_.size());
}

std::int64_t TieredKVStore::in_flight_bytes() const noexcept {
  const ExclusiveLock own(owner_);
  return static_cast<std::int64_t>(in_flight_.size()) * token_bytes();
}

void TieredKVStore::drop_from_fast(std::span<const Index> positions) {
  const ExclusiveLock own(owner_);
  for (const Index p : positions) {
    unmark_fast(p);
  }
}

bool TieredKVStore::is_fast_resident(Index position) const {
  const ExclusiveLock own(owner_);
  return fast_resident_.contains(position);
}

Index TieredKVStore::fast_resident_count() const noexcept {
  const ExclusiveLock own(owner_);
  return static_cast<Index>(fast_resident_.size());
}

std::vector<Index> TieredKVStore::fast_positions() const {
  const ExclusiveLock own(owner_);
  // ckv-lint: allow(unordered-iter) -- sorted immediately below
  std::vector<Index> positions(fast_resident_.begin(), fast_resident_.end());
  std::sort(positions.begin(), positions.end());
  return positions;
}

Index TieredKVStore::token_bytes() const noexcept {
  return 2 * store_.head_dim() * element_bytes_;
}

std::int64_t TieredKVStore::fast_resident_bytes() const noexcept {
  const ExclusiveLock own(owner_);
  return static_cast<std::int64_t>(fast_resident_.size()) * token_bytes();
}

void TieredKVStore::attach_ledger(FastTierLedger* ledger) noexcept {
  const ExclusiveLock own(owner_);
  const std::int64_t resident =
      static_cast<std::int64_t>(fast_resident_.size()) * token_bytes();
  const std::int64_t reserved =
      static_cast<std::int64_t>(in_flight_.size()) * token_bytes();
  if (ledger_ != nullptr) {
    ledger_->add(-resident);
    ledger_->add_reserved(-reserved);
  }
  ledger_ = ledger;
  if (ledger_ != nullptr) {
    ledger_->add(resident);
    ledger_->add_reserved(reserved);
  }
}

}  // namespace ckv
