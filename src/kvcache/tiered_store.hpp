// Two-tier placement model over a KVStore: a bounded fast tier (GPU HBM in
// the paper) backed by an unbounded slow tier (CPU memory over PCIe). The
// simulation keeps all data in RAM; this class tracks *placement* and
// accounts the bytes that would cross the interconnect (Fig. 5 offload /
// fetch arrows), which feeds the latency model.
#pragma once

#include <atomic>
#include <span>
#include <unordered_set>
#include <vector>

#include "kvcache/kv_store.hpp"
#include "obs/trace.hpp"
#include "util/common.hpp"
#include "util/thread_safety.hpp"

namespace ckv {

/// Byte-accurate transfer counters for one head's traffic.
struct TransferStats {
  std::int64_t bytes_to_fast = 0;    ///< slow -> fast (PCIe H2D in the paper)
  std::int64_t bytes_to_slow = 0;    ///< fast -> slow (offload after prefill/decode)
  std::int64_t fetch_events = 0;     ///< number of ensure_resident calls that moved data
  std::int64_t tokens_fetched = 0;   ///< tokens demand-moved slow -> fast
  /// Subset of tokens_fetched whose copy was already in flight when the
  /// demand path asked for it: the speculative fetch landed on the demand
  /// critical path, so the caller still owes its (engine-modeled)
  /// remaining completion time — landing is not free, only its PCIe bytes
  /// were pre-counted at issue.
  std::int64_t demand_landed = 0;
  std::int64_t tokens_offloaded = 0; ///< tokens moved fast -> slow
  /// Async prefetch traffic (begin_fetch/cancel_fetch). Issued fetches
  /// count their PCIe bytes in bytes_to_fast at issue time — the copy
  /// occupies the wire whether or not the data ends up used — so canceled
  /// fetches are wasted traffic, not refunded traffic.
  std::int64_t tokens_prefetch_issued = 0;
  std::int64_t tokens_prefetch_canceled = 0;
  /// tokens_prefetch_canceled attributed by cause, indexed by
  /// obs::FetchCancelReason; the entries always sum to the total above.
  std::int64_t tokens_prefetch_canceled_by[obs::kFetchCancelReasonCount] = {};

  void merge(const TransferStats& other) noexcept;
};

/// Shared fast-tier byte counter. Serving attaches one ledger to every
/// TieredKVStore of every admitted session so the scheduler reads global
/// HBM residency in O(1) instead of re-summing per-head sets each tick.
/// Resident bytes and reserved (in-flight fetch) bytes are tracked
/// separately: an async slow->fast copy holds its destination bytes from
/// issue to completion/cancel, so the global budget invariant must cover
/// `total_bytes()`, not just what already landed.
///
/// Counters are atomic because one ledger may be shared by selectors whose
/// heads run concurrently on the worker pool (TinyTransformer's per-head
/// region); relaxed ordering suffices — additions are commutative, and
/// readers (the scheduler tick) only run between parallel regions.
class FastTierLedger {
 public:
  FastTierLedger() = default;
  // Atomics are not copyable; a ledger is, by value-snapshot (movers like
  // BatchScheduler construction copy before any store is attached).
  FastTierLedger(const FastTierLedger& other) noexcept
      : bytes_(other.bytes()), reserved_(other.reserved_bytes()) {}
  FastTierLedger& operator=(const FastTierLedger& other) noexcept {
    bytes_.store(other.bytes(), std::memory_order_relaxed);
    reserved_.store(other.reserved_bytes(), std::memory_order_relaxed);
    return *this;
  }

  void add(std::int64_t bytes) noexcept {
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_reserved(std::int64_t bytes) noexcept {
    reserved_.fetch_add(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// Bytes reserved by in-flight slow->fast fetches (not yet resident).
  [[nodiscard]] std::int64_t reserved_bytes() const noexcept {
    return reserved_.load(std::memory_order_relaxed);
  }
  /// Resident + reserved: what budget enforcement must bound.
  [[nodiscard]] std::int64_t total_bytes() const noexcept {
    return bytes() + reserved_bytes();
  }

 private:
  std::atomic<std::int64_t> bytes_{0};
  std::atomic<std::int64_t> reserved_{0};
};

/// Placement tracker. Token KV entries live on the slow tier by default;
/// `ensure_resident` pulls missing ones into the fast tier (evicting by
/// explicit calls only — eviction policy belongs to the caller, e.g. the
/// cluster-granularity cache of §IV-D).
///
/// Concurrency contract: *single-owner*. A TieredKVStore belongs to one
/// session's selector; the scheduler's parallel fan-out steps sessions
/// concurrently but never shares a store between them — the only
/// cross-session state is the attached FastTierLedger, whose counters are
/// commutative atomics. The placement sets and transfer stats are
/// CKV_GUARDED_BY an ExclusiveContext (compile-time capability, no
/// runtime lock): every mutation path must claim exclusive ownership, so
/// a future refactor that shares a store across workers fails the clang
/// -Wthread-safety CI leg instead of corrupting reservation accounting.
class TieredKVStore {
 public:
  /// element_bytes = 2 models fp16 storage as in the paper.
  TieredKVStore(Index head_dim, Index element_bytes = 2);

  /// Appends a token on the fast tier (where it is produced) without
  /// counting transfer bytes; call offload_to_slow to move it out.
  void append(std::span<const float> key, std::span<const float> value);

  /// Appends a block of tokens on the fast tier (prefill output).
  void append_block(const Matrix& keys, const Matrix& values);

  /// Marks tokens [begin, end) as slow-tier resident, accounting offload
  /// traffic for those currently fast-resident.
  void offload_to_slow(Index begin, Index end);

  /// Offloads an explicit position list (scheduler preemption path).
  /// Accounts offload traffic for the ones that were fast-resident and
  /// returns how many actually moved.
  Index offload_positions(std::span<const Index> positions);

  /// Ensures the given tokens are fast-resident; counts transfer bytes for
  /// the ones that were not. Returns the number of tokens actually moved.
  /// A position with an in-flight fetch is completed instead (the demand
  /// path waits for the issued copy; no bytes are re-counted).
  Index ensure_resident(std::span<const Index> positions);

  // ---- asynchronous slow -> fast fetches (cluster prefetch) ----
  //
  // An in-flight position is neither slow-only nor fast-resident: its copy
  // was issued and its destination bytes are reserved (ledger
  // reserved_bytes) until complete_fetch lands it or cancel_fetch drops
  // it. PCIe traffic is accounted at issue time.

  /// Issues an async fetch for each position that is neither fast-resident
  /// nor already in flight. Returns the number of fetches issued.
  Index begin_fetch(std::span<const Index> positions);

  /// Lands in-flight fetches: the positions become fast-resident (bytes
  /// move reserved -> resident on the ledger). Positions with no in-flight
  /// fetch are ignored. Returns the number landed.
  Index complete_fetch(std::span<const Index> positions);

  /// Drops in-flight fetches without landing them; their reserved bytes
  /// are freed and the issued traffic is counted as wasted, attributed to
  /// `reason` (prediction miss by default — budget enforcement and session
  /// release pass their own cause). Returns the number canceled.
  Index cancel_fetch(std::span<const Index> positions,
                     obs::FetchCancelReason reason =
                         obs::FetchCancelReason::kMisprediction);

  /// Cancels every in-flight fetch (preemption / teardown path).
  Index cancel_all_fetches(obs::FetchCancelReason reason =
                               obs::FetchCancelReason::kSessionRelease);

  [[nodiscard]] bool is_in_flight(Index position) const;
  [[nodiscard]] Index in_flight_count() const noexcept;
  /// Bytes reserved by in-flight fetches.
  [[nodiscard]] std::int64_t in_flight_bytes() const noexcept;

  /// Drops the given tokens from the fast tier (no byte traffic: the slow
  /// tier always holds the authoritative copy in this model).
  void drop_from_fast(std::span<const Index> positions);

  [[nodiscard]] bool is_fast_resident(Index position) const;
  [[nodiscard]] Index fast_resident_count() const noexcept;
  [[nodiscard]] Index size() const noexcept { return store_.size(); }

  /// Fast-resident token positions, ascending (preemption victim scan).
  [[nodiscard]] std::vector<Index> fast_positions() const;

  /// Bytes of one token's KV entry (key + value) at the configured width.
  [[nodiscard]] Index token_bytes() const noexcept;

  /// Bytes currently held on the fast tier.
  [[nodiscard]] std::int64_t fast_resident_bytes() const noexcept;

  /// Attaches (or detaches, with nullptr) a shared residency ledger. The
  /// current residency *and* in-flight reservation are credited on attach
  /// and debited on detach, so the ledger stays equal to the sum of its
  /// attached stores' fast + reserved bytes (detaching a store with live
  /// fetches — session release — implicitly cancels their reservation).
  void attach_ledger(FastTierLedger* ledger) noexcept;

  [[nodiscard]] const KVStore& store() const noexcept { return store_; }
  [[nodiscard]] KVStore& store() noexcept { return store_; }
  [[nodiscard]] const TransferStats& stats() const noexcept {
    const ExclusiveLock own(owner_);
    return stats_;
  }
  void reset_stats() noexcept {
    const ExclusiveLock own(owner_);
    stats_ = TransferStats{};
  }

 private:
  /// All residency mutations funnel through these two so the ledger can
  /// never drift from the set.
  bool mark_fast(Index position) CKV_REQUIRES(owner_);
  bool unmark_fast(Index position) CKV_REQUIRES(owner_);
  /// Lands one in-flight fetch (reserved -> resident on the ledger);
  /// shared by complete_fetch and the demand path in ensure_resident.
  bool land_fetch(Index position) CKV_REQUIRES(owner_);
  /// Cancel core shared by cancel_fetch and cancel_all_fetches.
  Index cancel_fetch_impl(std::span<const Index> positions,
                          obs::FetchCancelReason reason) CKV_REQUIRES(owner_);

  KVStore store_;
  Index element_bytes_;
  /// Static stand-in for the owning session (see the class comment).
  mutable ExclusiveContext owner_;
  std::unordered_set<Index> fast_resident_ CKV_GUARDED_BY(owner_);
  /// Issued, not yet landed/canceled.
  std::unordered_set<Index> in_flight_ CKV_GUARDED_BY(owner_);
  TransferStats stats_ CKV_GUARDED_BY(owner_);
  FastTierLedger* ledger_ CKV_GUARDED_BY(owner_) = nullptr;
};

}  // namespace ckv
