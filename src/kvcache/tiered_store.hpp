// Two-tier placement model over a KVStore: a bounded fast tier (GPU HBM in
// the paper) backed by an unbounded slow tier (CPU memory over PCIe). The
// simulation keeps all data in RAM; this class tracks *placement* and
// accounts the bytes that would cross the interconnect (Fig. 5 offload /
// fetch arrows), which feeds the latency model.
#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "kvcache/kv_store.hpp"
#include "util/common.hpp"

namespace ckv {

/// Byte-accurate transfer counters for one head's traffic.
struct TransferStats {
  std::int64_t bytes_to_fast = 0;    ///< slow -> fast (PCIe H2D in the paper)
  std::int64_t bytes_to_slow = 0;    ///< fast -> slow (offload after prefill/decode)
  std::int64_t fetch_events = 0;     ///< number of ensure_resident calls that moved data
  std::int64_t tokens_fetched = 0;   ///< tokens moved slow -> fast
  std::int64_t tokens_offloaded = 0; ///< tokens moved fast -> slow

  void merge(const TransferStats& other) noexcept;
};

/// Placement tracker. Token KV entries live on the slow tier by default;
/// `ensure_resident` pulls missing ones into the fast tier (evicting by
/// explicit calls only — eviction policy belongs to the caller, e.g. the
/// cluster-granularity cache of §IV-D).
class TieredKVStore {
 public:
  /// element_bytes = 2 models fp16 storage as in the paper.
  TieredKVStore(Index head_dim, Index element_bytes = 2);

  /// Appends a token on the fast tier (where it is produced) without
  /// counting transfer bytes; call offload_to_slow to move it out.
  void append(std::span<const float> key, std::span<const float> value);

  /// Appends a block of tokens on the fast tier (prefill output).
  void append_block(const Matrix& keys, const Matrix& values);

  /// Marks tokens [begin, end) as slow-tier resident, accounting offload
  /// traffic for those currently fast-resident.
  void offload_to_slow(Index begin, Index end);

  /// Ensures the given tokens are fast-resident; counts transfer bytes for
  /// the ones that were not. Returns the number of tokens actually moved.
  Index ensure_resident(std::span<const Index> positions);

  /// Drops the given tokens from the fast tier (no byte traffic: the slow
  /// tier always holds the authoritative copy in this model).
  void drop_from_fast(std::span<const Index> positions);

  [[nodiscard]] bool is_fast_resident(Index position) const;
  [[nodiscard]] Index fast_resident_count() const noexcept;
  [[nodiscard]] Index size() const noexcept { return store_.size(); }

  /// Bytes of one token's KV entry (key + value) at the configured width.
  [[nodiscard]] Index token_bytes() const noexcept;

  [[nodiscard]] const KVStore& store() const noexcept { return store_; }
  [[nodiscard]] KVStore& store() noexcept { return store_; }
  [[nodiscard]] const TransferStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = TransferStats{}; }

 private:
  KVStore store_;
  Index element_bytes_;
  std::unordered_set<Index> fast_resident_;
  TransferStats stats_;
};

}  // namespace ckv
