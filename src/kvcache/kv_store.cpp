#include "kvcache/kv_store.hpp"

#include <cmath>

#include "core/kernels.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {

KVStore::KVStore(Index head_dim) : head_dim_(head_dim) {
  expects(head_dim > 0, "KVStore: head_dim must be positive");
}

void KVStore::append(std::span<const float> key, std::span<const float> value) {
  expects(static_cast<Index>(key.size()) == head_dim_, "KVStore::append: key width");
  expects(static_cast<Index>(value.size()) == head_dim_, "KVStore::append: value width");
  keys_.append_row(key);
  values_.append_row(value);
}

void KVStore::append_block(const Matrix& keys, const Matrix& values) {
  expects(keys.rows() == values.rows(), "KVStore::append_block: row mismatch");
  expects(keys.cols() == head_dim_ && values.cols() == head_dim_,
          "KVStore::append_block: width mismatch");
  for (Index r = 0; r < keys.rows(); ++r) {
    keys_.append_row(keys.row(r));
    values_.append_row(values.row(r));
  }
}

std::span<const float> KVStore::key(Index position) const { return keys_.row(position); }

std::span<const float> KVStore::value(Index position) const {
  return values_.row(position);
}

std::pair<Matrix, Matrix> KVStore::gather(std::span<const Index> positions) const {
  Matrix k(static_cast<Index>(positions.size()), head_dim_);
  Matrix v(static_cast<Index>(positions.size()), head_dim_);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Index p = positions[i];
    expects(p >= 0 && p < size(), "KVStore::gather: position out of range");
    copy_to(keys_.row(p), k.row(static_cast<Index>(i)));
    copy_to(values_.row(p), v.row(static_cast<Index>(i)));
  }
  return {std::move(k), std::move(v)};
}

std::vector<float> KVStore::attention_scores(std::span<const float> query) const {
  expects(static_cast<Index>(query.size()) == head_dim_,
          "KVStore::attention_scores: query width");
  const float inv_sqrt_d = static_cast<float>(1.0 / std::sqrt(static_cast<double>(head_dim_)));
  std::vector<float> scores(static_cast<std::size_t>(size()));
  batched_scores(keys_, query, DistanceMetric::kInnerProduct, scores, inv_sqrt_d);
  return scores;
}

std::vector<float> KVStore::attention_scores_at(
    std::span<const float> query, std::span<const Index> positions) const {
  expects(static_cast<Index>(query.size()) == head_dim_,
          "KVStore::attention_scores_at: query width");
  const float inv_sqrt_d = static_cast<float>(1.0 / std::sqrt(static_cast<double>(head_dim_)));
  std::vector<float> scores(positions.size());
  batched_dot_at(keys_, positions, query, scores, inv_sqrt_d);
  return scores;
}

}  // namespace ckv
