// Append-only key/value history of one attention head. This is the object
// every compression method reads from; the ground truth "full KV cache".
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/common.hpp"

namespace ckv {

/// One head's KV cache: two growable N x d matrices, append-only, indexed
/// by absolute token position.
class KVStore {
 public:
  explicit KVStore(Index head_dim);

  /// Appends one token's key and value (both must have head_dim elements).
  void append(std::span<const float> key, std::span<const float> value);

  /// Appends a block of tokens (rows of keys/values).
  void append_block(const Matrix& keys, const Matrix& values);

  [[nodiscard]] Index size() const noexcept { return keys_.rows(); }
  [[nodiscard]] Index head_dim() const noexcept { return head_dim_; }

  [[nodiscard]] std::span<const float> key(Index position) const;
  [[nodiscard]] std::span<const float> value(Index position) const;

  [[nodiscard]] const Matrix& keys() const noexcept { return keys_; }
  [[nodiscard]] const Matrix& values() const noexcept { return values_; }

  /// Copies the rows at `positions` into contiguous (K, V) matrices — the
  /// simulated gather of selected KV for approximate attention.
  [[nodiscard]] std::pair<Matrix, Matrix> gather(std::span<const Index> positions) const;

  /// Raw attention scores q . k_i / sqrt(d) for every stored token.
  [[nodiscard]] std::vector<float> attention_scores(std::span<const float> query) const;

  /// Raw attention scores only at the given positions (same scale).
  [[nodiscard]] std::vector<float> attention_scores_at(
      std::span<const float> query, std::span<const Index> positions) const;

 private:
  Index head_dim_;
  Matrix keys_;
  Matrix values_;
};

}  // namespace ckv
