// Per-channel symmetric int8 quantization of KV blocks. KIVI [19] (which
// the paper cites for the outlier-channel observation) shows KV tensors
// quantize well along the channel axis because outlier magnitude is
// channel-consistent; this module provides the quantized-transfer
// extension: fetching selected KV over PCIe at 1 byte/element instead of
// 2 halves the miss penalty of the cluster cache (§IV-D), at a bounded
// attention-score error.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/common.hpp"

namespace ckv {

/// A row-major int8 matrix with one scale per channel (column):
/// value[r][c] ~= data[r][c] * channel_scale[c].
struct QuantizedBlock {
  Index rows = 0;
  Index cols = 0;
  std::vector<std::int8_t> data;
  std::vector<float> channel_scale;

  [[nodiscard]] Index byte_size() const noexcept {
    return rows * cols +
           static_cast<Index>(channel_scale.size() * sizeof(float));
  }
};

/// Quantizes each channel (column) of the block symmetrically to int8
/// using the channel's max absolute value. Zero channels get scale 0.
QuantizedBlock quantize_per_channel(const Matrix& block);

/// Reconstructs the float matrix.
Matrix dequantize(const QuantizedBlock& block);

/// Max absolute element-wise reconstruction error.
double quantization_error(const Matrix& original, const QuantizedBlock& quantized);

/// Compression ratio versus fp16 storage (2 bytes/element), > 1 means
/// smaller. Includes the per-channel scale overhead.
double compression_ratio_vs_fp16(const QuantizedBlock& block);

}  // namespace ckv
