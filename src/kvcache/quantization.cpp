#include "kvcache/quantization.hpp"

#include <algorithm>
#include <cmath>

namespace ckv {

QuantizedBlock quantize_per_channel(const Matrix& block) {
  QuantizedBlock out;
  out.rows = block.rows();
  out.cols = block.cols();
  out.data.resize(static_cast<std::size_t>(block.size()));
  out.channel_scale.assign(static_cast<std::size_t>(block.cols()), 0.0f);

  for (Index c = 0; c < block.cols(); ++c) {
    float max_abs = 0.0f;
    for (Index r = 0; r < block.rows(); ++r) {
      max_abs = std::max(max_abs, std::abs(block.at(r, c)));
    }
    const float scale = max_abs / 127.0f;
    out.channel_scale[static_cast<std::size_t>(c)] = scale;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    for (Index r = 0; r < block.rows(); ++r) {
      const float q = std::round(block.at(r, c) * inv);
      out.data[static_cast<std::size_t>(r * block.cols() + c)] =
          static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
    }
  }
  return out;
}

Matrix dequantize(const QuantizedBlock& block) {
  Matrix out(block.rows, block.cols);
  for (Index r = 0; r < block.rows; ++r) {
    for (Index c = 0; c < block.cols; ++c) {
      out.at(r, c) =
          static_cast<float>(block.data[static_cast<std::size_t>(r * block.cols + c)]) *
          block.channel_scale[static_cast<std::size_t>(c)];
    }
  }
  return out;
}

double quantization_error(const Matrix& original, const QuantizedBlock& quantized) {
  expects(original.rows() == quantized.rows && original.cols() == quantized.cols,
          "quantization_error: shape mismatch");
  const Matrix back = dequantize(quantized);
  double worst = 0.0;
  for (Index r = 0; r < original.rows(); ++r) {
    for (Index c = 0; c < original.cols(); ++c) {
      worst = std::max(worst, std::abs(static_cast<double>(original.at(r, c)) -
                                       static_cast<double>(back.at(r, c))));
    }
  }
  return worst;
}

double compression_ratio_vs_fp16(const QuantizedBlock& block) {
  const double fp16_bytes = 2.0 * static_cast<double>(block.rows * block.cols);
  return fp16_bytes / static_cast<double>(block.byte_size());
}

}  // namespace ckv
