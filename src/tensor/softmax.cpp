#include "tensor/softmax.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/vec_ops.hpp"

namespace ckv {

void softmax_in_place(std::span<float> x) noexcept {
  if (x.empty()) {
    return;
  }
  const float max_v = *std::max_element(x.begin(), x.end());
  double sum = 0.0;
  for (float& v : x) {
    v = std::exp(v - max_v);
    sum += static_cast<double>(v);
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& v : x) {
    v *= inv;
  }
}

std::vector<float> log_softmax(std::span<const float> x) {
  expects(!x.empty(), "log_softmax: input must not be empty");
  const float max_v = *std::max_element(x.begin(), x.end());
  double sum = 0.0;
  for (const float v : x) {
    sum += std::exp(static_cast<double>(v) - static_cast<double>(max_v));
  }
  const double log_z = static_cast<double>(max_v) + std::log(sum);
  std::vector<float> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = static_cast<float>(static_cast<double>(x[i]) - log_z);
  }
  return out;
}

double entropy(std::span<const float> probabilities) {
  double h = 0.0;
  for (const float p : probabilities) {
    if (p > 0.0f) {
      h -= static_cast<double>(p) * std::log(static_cast<double>(p));
    }
  }
  return h;
}

void attention_output(std::span<const float> scores, std::span<const Index> rows,
                      const Matrix& values, std::span<float> out) {
  expects(scores.size() == rows.size(), "attention_output: scores/rows mismatch");
  expects(static_cast<Index>(out.size()) == values.cols(),
          "attention_output: output width mismatch");
  fill(out, 0.0f);
  std::vector<float> probs(scores.begin(), scores.end());
  softmax_in_place(probs);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    axpy(probs[i], values.row(rows[i]), out);
  }
}

void attention_output_full(std::span<const float> scores, const Matrix& values,
                           std::span<float> out) {
  expects(static_cast<Index>(scores.size()) == values.rows(),
          "attention_output_full: scores length must equal value rows");
  expects(static_cast<Index>(out.size()) == values.cols(),
          "attention_output_full: output width mismatch");
  fill(out, 0.0f);
  std::vector<float> probs(scores.begin(), scores.end());
  softmax_in_place(probs);
  for (Index r = 0; r < values.rows(); ++r) {
    axpy(probs[static_cast<std::size_t>(r)], values.row(r), out);
  }
}

}  // namespace ckv
