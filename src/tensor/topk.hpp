// Top-k and argsort helpers. Selection quality metrics (recall of
// important tokens, Fig. 11) and every selector's ranking step go through
// these, so ties are broken deterministically (by lower index).
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace ckv {

/// Indices of the k largest scores, descending by score, ties broken by
/// smaller index. k is clamped to scores.size().
std::vector<Index> top_k_indices(std::span<const float> scores, Index k);

/// All indices sorted by descending score (ties by smaller index).
std::vector<Index> argsort_descending(std::span<const float> scores);

/// All indices sorted by ascending score (ties by smaller index).
std::vector<Index> argsort_ascending(std::span<const float> scores);

}  // namespace ckv
