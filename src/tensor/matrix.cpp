#include "tensor/matrix.hpp"

#include <cmath>

namespace ckv {

Matrix::Matrix(Index rows, Index cols)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), 0.0f) {
  expects(rows >= 0 && cols >= 0, "Matrix: dimensions must be non-negative");
}

Matrix::Matrix(Index rows, Index cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  expects(rows >= 0 && cols >= 0, "Matrix: dimensions must be non-negative");
  expects(static_cast<Index>(data_.size()) == rows * cols,
          "Matrix: data size must equal rows * cols");
}

std::span<float> Matrix::row(Index r) {
  expects(r >= 0 && r < rows_, "Matrix::row: index out of range");
  return std::span<float>(data_).subspan(static_cast<std::size_t>(r * cols_),
                                         static_cast<std::size_t>(cols_));
}

std::span<const float> Matrix::row(Index r) const {
  expects(r >= 0 && r < rows_, "Matrix::row: index out of range");
  return std::span<const float>(data_).subspan(static_cast<std::size_t>(r * cols_),
                                               static_cast<std::size_t>(cols_));
}

float& Matrix::at(Index r, Index c) {
  expects(r >= 0 && r < rows_ && c >= 0 && c < cols_, "Matrix::at: index out of range");
  return data_[static_cast<std::size_t>(r * cols_ + c)];
}

float Matrix::at(Index r, Index c) const {
  expects(r >= 0 && r < rows_ && c >= 0 && c < cols_, "Matrix::at: index out of range");
  return data_[static_cast<std::size_t>(r * cols_ + c)];
}

void Matrix::append_row(std::span<const float> values) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = static_cast<Index>(values.size());
  }
  expects(static_cast<Index>(values.size()) == cols_,
          "Matrix::append_row: width mismatch");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void Matrix::fill(float value) noexcept {
  for (float& x : data_) {
    x = value;
  }
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    for (Index c = 0; c < cols_; ++c) {
      out.at(c, r) = at(r, c);
    }
  }
  return out;
}

Matrix Matrix::row_slice(Index begin, Index end) const {
  expects(begin >= 0 && begin <= end && end <= rows_, "Matrix::row_slice: bad range");
  Matrix out(end - begin, cols_);
  for (Index r = begin; r < end; ++r) {
    auto src = row(r);
    auto dst = out.row(r - begin);
    for (Index c = 0; c < cols_; ++c) {
      dst[static_cast<std::size_t>(c)] = src[static_cast<std::size_t>(c)];
    }
  }
  return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  expects(a.cols() == b.rows(), "matmul: inner dimensions must match");
  Matrix out(a.rows(), b.cols());
  const Index m = a.rows();
  const Index k = a.cols();
  const Index n = b.cols();
  for (Index i = 0; i < m; ++i) {
    auto arow = a.row(i);
    auto orow = out.row(i);
    for (Index p = 0; p < k; ++p) {
      const float av = arow[static_cast<std::size_t>(p)];
      if (av == 0.0f) {
        continue;
      }
      auto brow = b.row(p);
      for (Index j = 0; j < n; ++j) {
        orow[static_cast<std::size_t>(j)] += av * brow[static_cast<std::size_t>(j)];
      }
    }
  }
  return out;
}

std::vector<float> matvec(const Matrix& m, std::span<const float> v) {
  expects(static_cast<Index>(v.size()) == m.cols(), "matvec: width mismatch");
  std::vector<float> out(static_cast<std::size_t>(m.rows()), 0.0f);
  for (Index r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < v.size(); ++c) {
      acc += static_cast<double>(row[c]) * static_cast<double>(v[c]);
    }
    out[static_cast<std::size_t>(r)] = static_cast<float>(acc);
  }
  return out;
}

std::vector<float> vecmat(std::span<const float> v, const Matrix& m) {
  expects(static_cast<Index>(v.size()) == m.rows(), "vecmat: height mismatch");
  std::vector<float> out(static_cast<std::size_t>(m.cols()), 0.0f);
  for (Index r = 0; r < m.rows(); ++r) {
    const float scale = v[static_cast<std::size_t>(r)];
    if (scale == 0.0f) {
      continue;
    }
    auto row = m.row(r);
    for (Index c = 0; c < m.cols(); ++c) {
      out[static_cast<std::size_t>(c)] += scale * row[static_cast<std::size_t>(c)];
    }
  }
  return out;
}

double frobenius_distance(const Matrix& a, const Matrix& b) {
  expects(a.rows() == b.rows() && a.cols() == b.cols(),
          "frobenius_distance: shape mismatch");
  double acc = 0.0;
  auto fa = a.flat();
  auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const double d = static_cast<double>(fa[i]) - static_cast<double>(fb[i]);
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace ckv
