// One-sided Jacobi singular value decomposition. InfiniGen's offline phase
// (Lee et al., OSDI'24) SVDs the query/key projection weights to build
// "partial weights" that approximate attention scores in a reduced
// dimension; this is the substrate for that baseline.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"
#include "util/common.hpp"

namespace ckv {

/// Thin SVD result: a == u * diag(singular_values) * v^T, with
/// u: m x r, v: n x r, r = min(m, n). Singular values are descending.
struct SvdResult {
  Matrix u;
  std::vector<float> singular_values;
  Matrix v;
};

/// Computes the thin SVD of a via one-sided Jacobi rotations. Intended for
/// the head-dimension matrices of this project (<= a few hundred columns).
SvdResult jacobi_svd(const Matrix& a, double tolerance = 1e-10,
                     int max_sweeps = 60);

/// Reconstructs u * diag(s) * v^T, optionally keeping only the leading
/// `rank` singular directions (rank <= s.size(); rank < 0 keeps all).
Matrix svd_reconstruct(const SvdResult& svd, Index rank = -1);

}  // namespace ckv
