// Rotary position embedding (RoPE). The paper clusters keys *after* RoPE
// (Fig. 6: clustering launches right after QKV projection + RoPE), so the
// substrate applies RoPE to keys/queries before they reach any selector.
#pragma once

#include <span>

#include "util/common.hpp"

namespace ckv {

/// RoPE configuration; theta_base = 10000 matches Llama-family models.
struct RopeConfig {
  double theta_base = 10000.0;
};

/// Applies rotary embedding in place to a head vector x (even dimension)
/// for the token at the given absolute position. Channel pairs (2i, 2i+1)
/// are rotated by pos * theta_base^(-2i/d).
void apply_rope(std::span<float> x, Index position, const RopeConfig& config = {});

}  // namespace ckv
