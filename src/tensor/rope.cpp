#include "tensor/rope.hpp"

#include <cmath>

namespace ckv {

void apply_rope(std::span<float> x, Index position, const RopeConfig& config) {
  expects(x.size() % 2 == 0, "apply_rope: dimension must be even");
  expects(position >= 0, "apply_rope: position must be non-negative");
  const double dim = static_cast<double>(x.size());
  for (std::size_t pair = 0; pair * 2 < x.size(); ++pair) {
    const double exponent = -2.0 * static_cast<double>(pair) / dim;
    const double theta =
        static_cast<double>(position) * std::pow(config.theta_base, exponent);
    const double cos_t = std::cos(theta);
    const double sin_t = std::sin(theta);
    const double a = static_cast<double>(x[2 * pair]);
    const double b = static_cast<double>(x[2 * pair + 1]);
    x[2 * pair] = static_cast<float>(a * cos_t - b * sin_t);
    x[2 * pair + 1] = static_cast<float>(a * sin_t + b * cos_t);
  }
}

}  // namespace ckv
