#include "tensor/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ckv {

void RunningStat::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double RunningStat::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

double percentile(std::span<const double> values, double p) {
  expects(!values.empty(), "percentile: sample must not be empty");
  expects(p >= 0.0 && p <= 100.0, "percentile: p must be in [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> values) noexcept {
  if (values.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (const double v : values) {
    acc += v;
  }
  return acc / static_cast<double>(values.size());
}

}  // namespace ckv
