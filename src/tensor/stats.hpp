// Streaming and batch statistics used by metrics and benches.
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace ckv {

/// Welford running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x) noexcept;

  [[nodiscard]] Index count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one.
  void merge(const RunningStat& other) noexcept;

 private:
  Index count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile (linear interpolation) of a sample; p in [0, 100].
double percentile(std::span<const double> values, double p);

/// Arithmetic mean of a sample (0 for empty input).
double mean_of(std::span<const double> values) noexcept;

}  // namespace ckv
