// Span-based vector primitives. These are the inner loops of clustering,
// selection and attention; they take spans (I.13: don't pass arrays as
// pointers). Two accumulation families coexist:
//
//  - double-accumulating scalar reductions (dot, norm2, ...): the numeric
//    reference. A single running double forces a serial dependency chain,
//    so compilers cannot vectorize them under strict FP semantics.
//  - float lane reductions (dot_f32, squared_l2_f32, norm2_f32): kDotLanes
//    independent float accumulators walked in lockstep, reduced by a fixed
//    pairwise tree, then a serial tail. The lane structure is independent
//    of everything but the vector length, so results are bit-identical
//    across call sites and thread counts; compilers auto-vectorize the
//    lane loop to SIMD. These power the batched kernels in core/kernels.
//    Accumulation-order contract: docs/PERFORMANCE.md.
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace ckv {

/// Independent accumulator lanes used by every *_f32 reduction (one SIMD
/// register of floats on AVX2; two on SSE — still vectorizable).
inline constexpr std::size_t kDotLanes = 8;

/// Inner product <a, b>.
double dot(std::span<const float> a, std::span<const float> b);

namespace detail {

/// Fixed lane-walk + pairwise-tree reduction shared by the *_f32 kernels.
/// `term(x, y)` must be a pure elementwise product (x*y or (x-y)^2); the
/// accumulation order depends only on the vector length. Defined inline
/// so the batched kernels fuse it into their row loops.
template <typename Term>
inline float lane_reduce(const float* a, const float* b, std::size_t n, Term term) {
  float acc[kDotLanes] = {};
  std::size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (std::size_t lane = 0; lane < kDotLanes; ++lane) {
      acc[lane] += term(a[i + lane], b[i + lane]);
    }
  }
  for (std::size_t stride = kDotLanes / 2; stride > 0; stride /= 2) {
    for (std::size_t lane = 0; lane < stride; ++lane) {
      acc[lane] += acc[lane + stride];
    }
  }
  float total = acc[0];
  for (; i < n; ++i) {
    total += term(a[i], b[i]);
  }
  return total;
}

}  // namespace detail

/// Inner product <a, b> with kDotLanes float accumulators (SIMD path).
inline float dot_f32(std::span<const float> a, std::span<const float> b) {
  expects(a.size() == b.size(), "dot_f32: size mismatch");
  return detail::lane_reduce(a.data(), b.data(), a.size(),
                             [](float x, float y) { return x * y; });
}

/// |a - b|^2 with kDotLanes float accumulators (SIMD path).
inline float squared_l2_f32(std::span<const float> a, std::span<const float> b) {
  expects(a.size() == b.size(), "squared_l2_f32: size mismatch");
  return detail::lane_reduce(a.data(), b.data(), a.size(), [](float x, float y) {
    const float d = x - y;
    return d * d;
  });
}

/// |a| with kDotLanes float accumulators (SIMD path).
float norm2_f32(std::span<const float> a);

/// Min and max of x in one pass; returns {0, 0} for an empty span.
void min_max(std::span<const float> x, float& lo, float& hi) noexcept;

/// Element-wise dst = min(dst, src) / dst = max(dst, src).
void elementwise_min_in_place(std::span<float> dst, std::span<const float> src);
void elementwise_max_in_place(std::span<float> dst, std::span<const float> src);

/// Euclidean norm |a|.
double norm2(std::span<const float> a);

/// Squared Euclidean distance |a - b|^2.
double squared_l2_distance(std::span<const float> a, std::span<const float> b);

/// Cosine similarity <a,b>/(|a||b|); returns 0 when either norm is 0.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

/// Semantic distance used by ClusterKV (paper §III-B):
/// D(a, b) = 1 - cosine_similarity(a, b).
double semantic_distance(std::span<const float> a, std::span<const float> b);

/// y += alpha * x.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scale_in_place(std::span<float> x, float alpha) noexcept;

/// Normalizes x to unit length in place; leaves the zero vector unchanged.
void normalize_in_place(std::span<float> x) noexcept;

/// dst = src (sizes must match).
void copy_to(std::span<const float> src, std::span<float> dst);

/// Element-wise dst += src.
void add_in_place(std::span<float> dst, std::span<const float> src);

/// Sets every element to value.
void fill(std::span<float> x, float value) noexcept;

/// Returns a unit-length copy of v.
std::vector<float> normalized_copy(std::span<const float> v);

}  // namespace ckv
