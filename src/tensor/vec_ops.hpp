// Span-based vector primitives. These are the inner loops of clustering,
// selection and attention; they take spans (I.13: don't pass arrays as
// pointers) and accumulate in double for numeric robustness.
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace ckv {

/// Inner product <a, b>.
double dot(std::span<const float> a, std::span<const float> b);

/// Euclidean norm |a|.
double norm2(std::span<const float> a);

/// Squared Euclidean distance |a - b|^2.
double squared_l2_distance(std::span<const float> a, std::span<const float> b);

/// Cosine similarity <a,b>/(|a||b|); returns 0 when either norm is 0.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

/// Semantic distance used by ClusterKV (paper §III-B):
/// D(a, b) = 1 - cosine_similarity(a, b).
double semantic_distance(std::span<const float> a, std::span<const float> b);

/// y += alpha * x.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scale_in_place(std::span<float> x, float alpha) noexcept;

/// Normalizes x to unit length in place; leaves the zero vector unchanged.
void normalize_in_place(std::span<float> x) noexcept;

/// dst = src (sizes must match).
void copy_to(std::span<const float> src, std::span<float> dst);

/// Element-wise dst += src.
void add_in_place(std::span<float> dst, std::span<const float> src);

/// Sets every element to value.
void fill(std::span<float> x, float value) noexcept;

/// Returns a unit-length copy of v.
std::vector<float> normalized_copy(std::span<const float> v);

}  // namespace ckv
