#include "tensor/rmsnorm.hpp"

#include <cmath>

namespace ckv {

void rms_norm(std::span<const float> x, std::span<const float> weight,
              std::span<float> out, double epsilon) {
  expects(x.size() == out.size(), "rms_norm: size mismatch");
  expects(weight.empty() || weight.size() == x.size(),
          "rms_norm: weight size must match input");
  double mean_sq = 0.0;
  for (const float v : x) {
    mean_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  mean_sq /= static_cast<double>(x.empty() ? 1 : x.size());
  const double inv_rms = 1.0 / std::sqrt(mean_sq + epsilon);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double w = weight.empty() ? 1.0 : static_cast<double>(weight[i]);
    out[i] = static_cast<float>(static_cast<double>(x[i]) * inv_rms * w);
  }
}

}  // namespace ckv
