#include "tensor/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ckv {

Rng Rng::fork(std::string_view tag) const {
  return Rng(derive_seed(seed_, tag));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::uniform(double lo, double hi) {
  expects(lo <= hi, "Rng::uniform: lo must not exceed hi");
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

Index Rng::uniform_int(Index lo, Index hi) {
  expects(lo <= hi, "Rng::uniform_int: lo must not exceed hi");
  return std::uniform_int_distribution<Index>(lo, hi)(gen_);
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::normal(double mean, double stddev) {
  expects(stddev >= 0.0, "Rng::normal: stddev must be non-negative");
  if (stddev == 0.0) {
    return mean;
  }
  return std::normal_distribution<double>(mean, stddev)(gen_);
}

void Rng::fill_normal(std::span<float> out, double mean, double stddev) {
  for (float& x : out) {
    x = static_cast<float>(normal(mean, stddev));
  }
}

std::vector<float> Rng::unit_vector(Index dim) {
  expects(dim > 0, "Rng::unit_vector: dim must be positive");
  std::vector<float> v(static_cast<std::size_t>(dim));
  double norm_sq = 0.0;
  do {
    norm_sq = 0.0;
    for (float& x : v) {
      const double s = normal();
      x = static_cast<float>(s);
      norm_sq += s * s;
    }
  } while (norm_sq == 0.0);
  const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (float& x : v) {
    x *= inv;
  }
  return v;
}

std::vector<Index> Rng::permutation(Index n) {
  expects(n >= 0, "Rng::permutation: n must be non-negative");
  std::vector<Index> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), Index{0});
  std::shuffle(p.begin(), p.end(), gen_);
  return p;
}

std::vector<Index> Rng::sample_without_replacement(Index n, Index k) {
  expects(k >= 0 && k <= n, "Rng::sample_without_replacement: need 0 <= k <= n");
  // Partial Fisher-Yates: O(n) memory but O(k) swaps; n here is at most the
  // context length, so the allocation is acceptable and exact.
  std::vector<Index> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), Index{0});
  for (Index i = 0; i < k; ++i) {
    const Index j = uniform_int(i, n - 1);
    std::swap(pool[static_cast<std::size_t>(i)], pool[static_cast<std::size_t>(j)]);
  }
  pool.resize(static_cast<std::size_t>(k));
  return pool;
}

Index Rng::weighted_choice(std::span<const double> weights) {
  expects(!weights.empty(), "Rng::weighted_choice: weights must not be empty");
  double total = 0.0;
  for (const double w : weights) {
    expects(w >= 0.0, "Rng::weighted_choice: weights must be non-negative");
    total += w;
  }
  expects(total > 0.0, "Rng::weighted_choice: weights must have positive sum");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) {
      return static_cast<Index>(i);
    }
  }
  return static_cast<Index>(weights.size() - 1);
}

bool Rng::bernoulli(double p) {
  expects(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p must be in [0, 1]");
  return uniform() < p;
}

}  // namespace ckv
