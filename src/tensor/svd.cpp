#include "tensor/svd.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/topk.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {

SvdResult jacobi_svd(const Matrix& a, double tolerance, int max_sweeps) {
  expects(!a.empty(), "jacobi_svd: matrix must not be empty");
  // One-sided Jacobi works on columns of a working copy w (m x n),
  // orthogonalizing column pairs; V accumulates the rotations.
  const Index m = a.rows();
  const Index n = a.cols();
  Matrix w = a;
  Matrix v(n, n);
  for (Index i = 0; i < n; ++i) {
    v.at(i, i) = 1.0f;
  }

  const auto column_dot = [&w, m](Index ci, Index cj) {
    double acc = 0.0;
    for (Index r = 0; r < m; ++r) {
      acc += static_cast<double>(w.at(r, ci)) * static_cast<double>(w.at(r, cj));
    }
    return acc;
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off_diagonal = 0.0;
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const double alpha = column_dot(p, p);
        const double beta = column_dot(q, q);
        const double gamma = column_dot(p, q);
        if (alpha * beta == 0.0) {
          continue;
        }
        off_diagonal = std::max(off_diagonal,
                                std::abs(gamma) / std::sqrt(alpha * beta));
        if (std::abs(gamma) <= tolerance * std::sqrt(alpha * beta)) {
          continue;
        }
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (Index r = 0; r < m; ++r) {
          const double wp = static_cast<double>(w.at(r, p));
          const double wq = static_cast<double>(w.at(r, q));
          w.at(r, p) = static_cast<float>(c * wp - s * wq);
          w.at(r, q) = static_cast<float>(s * wp + c * wq);
        }
        for (Index r = 0; r < n; ++r) {
          const double vp = static_cast<double>(v.at(r, p));
          const double vq = static_cast<double>(v.at(r, q));
          v.at(r, p) = static_cast<float>(c * vp - s * vq);
          v.at(r, q) = static_cast<float>(s * vp + c * vq);
        }
      }
    }
    if (off_diagonal <= tolerance) {
      break;
    }
  }

  // Singular values are the column norms of w; U columns are normalized w.
  const Index rank = std::min(m, n);
  std::vector<float> sigma_all(static_cast<std::size_t>(n));
  for (Index c = 0; c < n; ++c) {
    double norm_sq = 0.0;
    for (Index r = 0; r < m; ++r) {
      norm_sq += static_cast<double>(w.at(r, c)) * static_cast<double>(w.at(r, c));
    }
    sigma_all[static_cast<std::size_t>(c)] = static_cast<float>(std::sqrt(norm_sq));
  }

  const auto order = top_k_indices(sigma_all, rank);
  SvdResult out;
  out.u = Matrix(m, rank);
  out.v = Matrix(n, rank);
  out.singular_values.resize(static_cast<std::size_t>(rank));
  for (Index k = 0; k < rank; ++k) {
    const Index c = order[static_cast<std::size_t>(k)];
    const double sigma = static_cast<double>(sigma_all[static_cast<std::size_t>(c)]);
    out.singular_values[static_cast<std::size_t>(k)] = static_cast<float>(sigma);
    const double inv = sigma > 0.0 ? 1.0 / sigma : 0.0;
    for (Index r = 0; r < m; ++r) {
      out.u.at(r, k) = static_cast<float>(static_cast<double>(w.at(r, c)) * inv);
    }
    for (Index r = 0; r < n; ++r) {
      out.v.at(r, k) = v.at(r, c);
    }
  }
  return out;
}

Matrix svd_reconstruct(const SvdResult& svd, Index rank) {
  const Index full_rank = static_cast<Index>(svd.singular_values.size());
  if (rank < 0) {
    rank = full_rank;
  }
  expects(rank <= full_rank, "svd_reconstruct: rank exceeds decomposition rank");
  Matrix out(svd.u.rows(), svd.v.rows());
  for (Index k = 0; k < rank; ++k) {
    const float sigma = svd.singular_values[static_cast<std::size_t>(k)];
    for (Index r = 0; r < out.rows(); ++r) {
      const float us = svd.u.at(r, k) * sigma;
      if (us == 0.0f) {
        continue;
      }
      for (Index c = 0; c < out.cols(); ++c) {
        out.at(r, c) += us * svd.v.at(c, k);
      }
    }
  }
  return out;
}

}  // namespace ckv
