// Dense row-major float matrix. The only tensor rank the reproduction
// needs is 2 (per-head key/value blocks, weight matrices); higher-rank
// structure is expressed as containers of Matrix.
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace ckv {

/// Row-major dense matrix of float. Rows are the unit of access everywhere
/// (a row is one token's key/value vector or one centroid), exposed as
/// std::span so callers never touch raw pointers.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix initialized to zero.
  Matrix(Index rows, Index cols);

  /// Creates a matrix from preexisting row-major data (size must match).
  Matrix(Index rows, Index cols, std::vector<float> data);

  [[nodiscard]] Index rows() const noexcept { return rows_; }
  [[nodiscard]] Index cols() const noexcept { return cols_; }
  [[nodiscard]] Index size() const noexcept { return rows_ * cols_; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] std::span<float> row(Index r);
  [[nodiscard]] std::span<const float> row(Index r) const;

  [[nodiscard]] float& at(Index r, Index c);
  [[nodiscard]] float at(Index r, Index c) const;

  [[nodiscard]] std::span<float> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const float> flat() const noexcept { return data_; }

  /// Appends one row (vector length must equal cols; empty matrix adopts
  /// the incoming width). Used by growable per-head key stores.
  void append_row(std::span<const float> values);

  /// Sets every element to the given value.
  void fill(float value) noexcept;

  /// Returns the transposed copy.
  [[nodiscard]] Matrix transposed() const;

  /// Returns a copy of the row range [begin, end).
  [[nodiscard]] Matrix row_slice(Index begin, Index end) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b  (a: m x k, b: k x n, out: m x n).
Matrix matmul(const Matrix& a, const Matrix& b);

/// out[i] = dot(m.row(i), v). v.size() must equal m.cols().
std::vector<float> matvec(const Matrix& m, std::span<const float> v);

/// out[j] = dot(m.col(j), v) = (v^T m). v.size() must equal m.rows().
std::vector<float> vecmat(std::span<const float> v, const Matrix& m);

/// Frobenius norm of the difference (for test tolerances).
double frobenius_distance(const Matrix& a, const Matrix& b);

}  // namespace ckv
