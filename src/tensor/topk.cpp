#include "tensor/topk.hpp"

#include <algorithm>
#include <numeric>

namespace ckv {

namespace {

std::vector<Index> iota_indices(std::size_t n) {
  std::vector<Index> idx(n);
  std::iota(idx.begin(), idx.end(), Index{0});
  return idx;
}

}  // namespace

std::vector<Index> top_k_indices(std::span<const float> scores, Index k) {
  expects(k >= 0, "top_k_indices: k must be non-negative");
  k = std::min<Index>(k, static_cast<Index>(scores.size()));
  auto idx = iota_indices(scores.size());
  const auto greater = [&scores](Index a, Index b) {
    const float sa = scores[static_cast<std::size_t>(a)];
    const float sb = scores[static_cast<std::size_t>(b)];
    if (sa != sb) {
      return sa > sb;
    }
    return a < b;
  };
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), greater);
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

std::vector<Index> argsort_descending(std::span<const float> scores) {
  auto idx = iota_indices(scores.size());
  std::sort(idx.begin(), idx.end(), [&scores](Index a, Index b) {
    const float sa = scores[static_cast<std::size_t>(a)];
    const float sb = scores[static_cast<std::size_t>(b)];
    if (sa != sb) {
      return sa > sb;
    }
    return a < b;
  });
  return idx;
}

std::vector<Index> argsort_ascending(std::span<const float> scores) {
  auto idx = iota_indices(scores.size());
  std::sort(idx.begin(), idx.end(), [&scores](Index a, Index b) {
    const float sa = scores[static_cast<std::size_t>(a)];
    const float sb = scores[static_cast<std::size_t>(b)];
    if (sa != sb) {
      return sa < sb;
    }
    return a < b;
  });
  return idx;
}

}  // namespace ckv
