// Numerically stable softmax family plus the attention-output helper used
// by both exact attention and every approximate-selection method.
#pragma once

#include <span>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/common.hpp"

namespace ckv {

/// In-place stable softmax; no-op on an empty span.
void softmax_in_place(std::span<float> x) noexcept;

/// Stable log-softmax copy.
std::vector<float> log_softmax(std::span<const float> x);

/// Shannon entropy (nats) of a probability vector.
double entropy(std::span<const float> probabilities);

/// out = sum_i softmax(scores)[i] * values.row(rows[i]). scores and rows
/// must have equal length; rows index into values. This is the
/// softmax(q K_S^T / sqrt(d)) V_S computation over a selected token subset.
void attention_output(std::span<const float> scores, std::span<const Index> rows,
                      const Matrix& values, std::span<float> out);

/// Full-cache attention output over all rows of values (rows implied 0..N).
void attention_output_full(std::span<const float> scores, const Matrix& values,
                           std::span<float> out);

}  // namespace ckv
