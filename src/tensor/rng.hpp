// Deterministic random number generation. Every experiment object owns an
// Rng derived from (experiment seed, component tag) so runs are exactly
// reproducible and components draw decorrelated streams.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string_view>
#include <vector>

#include "util/common.hpp"

namespace ckv {

/// Seeded wrapper around std::mt19937_64 with the sampling helpers the
/// reproduction needs (Gaussian fills, unit directions, permutations).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed), seed_(seed) {}

  /// Child generator with an independent, reproducible stream derived from
  /// this generator's seed and the tag (not from consumed state).
  [[nodiscard]] Rng fork(std::string_view tag) const;

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  Index uniform_int(Index lo, Index hi);

  /// Standard normal sample.
  double normal();

  /// Normal sample with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Fills the span with i.i.d. normal(mean, stddev) samples.
  void fill_normal(std::span<float> out, double mean, double stddev);

  /// Returns a uniformly random unit vector of the given dimension.
  std::vector<float> unit_vector(Index dim);

  /// Returns a random permutation of [0, n).
  std::vector<Index> permutation(Index n);

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<Index> sample_without_replacement(Index n, Index k);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  Index weighted_choice(std::span<const double> weights);

  /// Bernoulli draw with probability p.
  bool bernoulli(double p);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::mt19937_64& engine() noexcept { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uint64_t seed_ = 0;
};

}  // namespace ckv
