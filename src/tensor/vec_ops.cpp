#include "tensor/vec_ops.hpp"

#include <algorithm>
#include <cmath>

namespace ckv {

double dot(std::span<const float> a, std::span<const float> b) {
  expects(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

float norm2_f32(std::span<const float> a) {
  return std::sqrt(detail::lane_reduce(a.data(), a.data(), a.size(),
                                       [](float x, float y) { return x * y; }));
}

void min_max(std::span<const float> x, float& lo, float& hi) noexcept {
  if (x.empty()) {
    lo = 0.0f;
    hi = 0.0f;
    return;
  }
  float min_v = x[0];
  float max_v = x[0];
  for (const float v : x) {
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  lo = min_v;
  hi = max_v;
}

void elementwise_min_in_place(std::span<float> dst, std::span<const float> src) {
  expects(dst.size() == src.size(), "elementwise_min_in_place: size mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = std::min(dst[i], src[i]);
  }
}

void elementwise_max_in_place(std::span<float> dst, std::span<const float> src) {
  expects(dst.size() == src.size(), "elementwise_max_in_place: size mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

double norm2(std::span<const float> a) {
  double acc = 0.0;
  for (const float x : a) {
    acc += static_cast<double>(x) * static_cast<double>(x);
  }
  return std::sqrt(acc);
}

double squared_l2_distance(std::span<const float> a, std::span<const float> b) {
  expects(a.size() == b.size(), "squared_l2_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  const double na = norm2(a);
  const double nb = norm2(b);
  if (na == 0.0 || nb == 0.0) {
    return 0.0;
  }
  return dot(a, b) / (na * nb);
}

double semantic_distance(std::span<const float> a, std::span<const float> b) {
  return 1.0 - cosine_similarity(a, b);
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  expects(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void scale_in_place(std::span<float> x, float alpha) noexcept {
  for (float& v : x) {
    v *= alpha;
  }
}

void normalize_in_place(std::span<float> x) noexcept {
  const double n = norm2(x);
  if (n == 0.0) {
    return;
  }
  const float inv = static_cast<float>(1.0 / n);
  scale_in_place(x, inv);
}

void copy_to(std::span<const float> src, std::span<float> dst) {
  expects(src.size() == dst.size(), "copy_to: size mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = src[i];
  }
}

void add_in_place(std::span<float> dst, std::span<const float> src) {
  expects(src.size() == dst.size(), "add_in_place: size mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] += src[i];
  }
}

void fill(std::span<float> x, float value) noexcept {
  for (float& v : x) {
    v = value;
  }
}

std::vector<float> normalized_copy(std::span<const float> v) {
  std::vector<float> out(v.begin(), v.end());
  normalize_in_place(out);
  return out;
}

}  // namespace ckv
