// RMS normalization as used by Llama-family transformers; part of the
// TinyTransformer validation substrate.
#pragma once

#include <span>

#include "util/common.hpp"

namespace ckv {

/// out[i] = x[i] / rms(x) * weight[i], rms(x) = sqrt(mean(x^2) + epsilon).
/// x and out may alias; weight may be empty (treated as all-ones).
void rms_norm(std::span<const float> x, std::span<const float> weight,
              std::span<float> out, double epsilon = 1e-5);

}  // namespace ckv
