// Procedural context model: generates per-head key/value/query streams
// with the statistical structure the paper's method exploits and its
// evaluation measures (DESIGN.md §2):
//   * keys form semantic clusters ("topics") in direction space (§III-A:
//     nearby keys have correlated attention weights);
//   * the initial tokens are attention sinks — far outliers that queries
//     weakly align with (§III-B keeps the first 16 tokens out of
//     clustering);
//   * a few channels carry large-magnitude outliers with per-token jitter
//     (the KIVI observation that motivates cosine distance);
//   * token importance drifts across decode steps because the query's
//     topic focus wanders (Fig. 3a) or is pinned to planted evidence
//     positions by a workload (needle tasks).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"
#include "model/model_config.hpp"
#include "util/common.hpp"

namespace ckv {

struct ProceduralParams {
  Index head_dim = 64;
  Index num_topics = 64;          ///< semantic clusters per head
  /// Per-token probability the topic changes. High by default: semantically
  /// similar tokens are positionally *scattered* (Fig. 2 / Fig. 3b — pages
  /// of 16 hold only 1-2 important tokens), in short runs of ~2-3 tokens.
  double topic_change_prob = 0.4;
  double key_noise = 0.35;        ///< in-cluster direction spread
  double key_scale_sigma = 0.25;  ///< lognormal sigma of key magnitudes
  Index sink_tokens = 4;          ///< intrinsic sink tokens at sequence start
  double sink_scale = 3.0;        ///< sink key magnitude
  double sink_alignment = 0.12;   ///< query component along the sink direction
  Index outlier_channels = 4;     ///< channels with large-magnitude offsets
  double outlier_offset = 1.25;   ///< mean offset on outlier channels (KIVI effect)
  double outlier_jitter = 0.4;    ///< per-token multiplicative jitter on outliers
  double query_noise = 0.35;      ///< query direction noise
  double query_scale = 8.0;       ///< attention score sharpness (pre-softmax units)
  Index focus_width = 3;          ///< topics a query attends simultaneously
  double focus_drift_prob = 0.25; ///< per-step probability the focus shifts
  double value_noise = 0.5;       ///< value spread around the topic value dir
  /// Query heads sharing this KV head (GQA group size; 1 = MHA). Group
  /// members share the focus process but carry independent query noise.
  Index queries_per_kv = 1;
};

/// One attention head's generated context: keys/values for the prompt and
/// any generated tokens, plus a deterministic query stream driven by a
/// topic-focus process.
class HeadStream {
 public:
  HeadStream(const ProceduralParams& params, Rng rng, Index prompt_len);

  [[nodiscard]] Index size() const noexcept { return keys_.rows(); }
  [[nodiscard]] Index prompt_len() const noexcept { return prompt_len_; }
  [[nodiscard]] const Matrix& keys() const noexcept { return keys_; }
  [[nodiscard]] const Matrix& values() const noexcept { return values_; }
  [[nodiscard]] Index topic_of(Index position) const;

  /// Extends the context by one generated token (continues the topic
  /// process, appends its key/value).
  void append_generated();

  /// The decode query for the given step and query-group member
  /// (sub_query < queries_per_kv). Steps materialize in order (the focus
  /// process is causal); results are memoized so re-reads are free.
  [[nodiscard]] std::vector<float> query(Index step, Index sub_query = 0);

  /// Pins the focus process on the topics of the given *positions* for
  /// steps in [step_begin, step_end) — how workloads plant needle
  /// evidence. Must be called before those steps are first queried.
  void pin_focus(Index step_begin, Index step_end, std::span<const Index> positions);

  /// Raw attention scores q . k_i / sqrt(d) over the whole context, or
  /// over the first `prefix_len` tokens when given (prefix_len < 0 = all).
  [[nodiscard]] std::vector<float> attention_scores(std::span<const float> query,
                                                    Index prefix_len = -1) const;

  [[nodiscard]] const ProceduralParams& params() const noexcept { return params_; }

 private:
  void append_token(Index position);
  void materialize_next_query();
  [[nodiscard]] std::vector<Index> focus_for_step(Index step);
  [[nodiscard]] std::vector<float> make_key(Index topic);
  [[nodiscard]] std::vector<float> make_value(Index topic);

  ProceduralParams params_;
  Rng topic_rng_;
  Rng key_rng_;
  Rng query_rng_;
  Index prompt_len_;

  Matrix topic_dirs_;        ///< num_topics x d unit directions (keys)
  Matrix value_dirs_;        ///< num_topics x d unit directions (values)
  std::vector<float> sink_dir_;
  std::vector<Index> outlier_channel_ids_;
  std::vector<float> outlier_channel_offset_;

  std::vector<Index> topic_assignment_;  ///< per position
  Matrix keys_;
  Matrix values_;

  std::vector<Index> current_focus_;
  std::vector<std::vector<Index>> focus_by_step_;  ///< memoized focus sets
  std::vector<Matrix> queries_;  ///< memoized queries, one matrix per sub-query
  std::vector<Rng> sub_query_rngs_;
  struct PinnedRange {
    Index begin;
    Index end;
    std::vector<Index> topics;
  };
  std::vector<PinnedRange> pinned_;
};

/// The full simulation slice: layers x heads independent HeadStreams that
/// advance in lockstep.
class ProceduralContextModel {
 public:
  ProceduralContextModel(const SimShape& shape, const ProceduralParams& params,
                         std::uint64_t seed, Index prompt_len);

  [[nodiscard]] const SimShape& shape() const noexcept { return shape_; }
  [[nodiscard]] Index prompt_len() const noexcept { return prompt_len_; }
  [[nodiscard]] Index context_len() const;  ///< prompt + generated so far

  [[nodiscard]] HeadStream& head(Index layer, Index head);
  [[nodiscard]] const HeadStream& head(Index layer, Index head) const;

  /// Appends one generated token to every head.
  void append_generated();

  /// Pins every head's focus to the topics covering `positions` for the
  /// given step range (needle planting).
  void pin_focus(Index step_begin, Index step_end, std::span<const Index> positions);

 private:
  SimShape shape_;
  Index prompt_len_;
  std::vector<std::unique_ptr<HeadStream>> heads_;  ///< layer-major
};

}  // namespace ckv
