// Runs one compression method over a procedural context: prefill feeds all
// per-head selectors, then each decode step selects tokens per head,
// computes approximate attention, and scores it against exact attention.
// This is the measurement harness behind Fig. 9/10/11 and §V-C.
#pragma once

#include <optional>
#include <vector>

#include "model/procedural.hpp"
#include "model/selector_bank.hpp"
#include "tensor/stats.hpp"
#include "util/common.hpp"

namespace ckv {

struct DecodeEngineConfig {
  Index budget = 1024;
  /// Leading layers that always use the full KV cache — the paper disables
  /// selection on the first two layers for every method (§V-A); scaled
  /// simulation slices scale this down proportionally.
  Index full_attention_layers = 1;
  /// Feeds attention probabilities back to selectors (H2O needs it).
  bool attention_feedback = false;
};

/// Aggregated measurements of one decode step across selection-active
/// layers/heads.
struct StepResult {
  double mean_recall = 0.0;        ///< |I_T ∩ I_true| / B, Fig. 11 metric
  double mean_coverage = 0.0;      ///< attention mass captured by I_T
  double mean_output_error = 0.0;  ///< relative L2 error of attention output
  Index tokens_selected = 0;
  Index tokens_fetched = 0;        ///< slow-tier fetches (cache misses)
  Index tokens_cache_hit = 0;
  Index tokens_prefetch_hit = 0;     ///< fetches covered by async prefetch
  Index tokens_prefetch_issued = 0;  ///< speculative fetches issued this step
  std::vector<float> features;     ///< last-layer concat of attention outputs
};

class DecodeEngine {
 public:
  DecodeEngine(ProceduralContextModel& model, const SelectorFactory& factory,
               const DecodeEngineConfig& config);

  /// Feeds the whole prompt KV to every selector in one shot. Must be
  /// called exactly once, before the first decode_step, and must not be
  /// mixed with prefill_chunk.
  void run_prefill();

  /// Feeds the next at most `max_tokens` prompt rows to every selector —
  /// the re-entrant chunked-prefill mirror of decode_next(), letting a
  /// scheduler interleave one prompt chunk per tick with other sessions'
  /// decode steps. Chunk-aware selectors (supports_chunked_prefill())
  /// receive each slice as it lands; chunk-oblivious ones get one
  /// whole-prompt observe_prefill when the final chunk arrives. Returns
  /// tokens consumed (0 once the prompt is exhausted); prefilled() turns
  /// true with the final chunk.
  Index prefill_chunk(Index max_tokens);

  /// Prompt tokens consumed by prefill so far (== prompt_len once
  /// prefilled() is true).
  [[nodiscard]] Index prefill_tokens_done() const noexcept { return prefill_done_; }

  /// Executes decode step `step` (0-based, strictly increasing): appends
  /// one generated token, selects, computes approximate + exact attention,
  /// and returns the step's measurements.
  StepResult decode_step(Index step);

  /// Executes the next decode step — the re-entry point for interleaved
  /// multi-session scheduling, where each session's engine advances
  /// independently one step per scheduler tick.
  StepResult decode_next() { return decode_step(next_step_); }

  [[nodiscard]] bool prefilled() const noexcept { return prefilled_; }
  [[nodiscard]] Index steps_completed() const noexcept { return next_step_; }

  /// Recall/coverage statistics aggregate only *meaningful* steps — steps
  /// where the context exceeded the budget, so the selector actually had
  /// to drop tokens. Steps whose whole context fits the budget recall 1.0
  /// trivially and would dilute any cross-method or cross-schedule
  /// comparison; they are excluded, and recall_steps() exposes the shared
  /// denominator so aggregations can weight sessions comparably.
  [[nodiscard]] const RunningStat& recall_stat() const noexcept { return recall_; }
  /// Number of meaningful (selection-forced) steps recall_stat covers.
  [[nodiscard]] Index recall_steps() const noexcept { return recall_.count(); }
  /// Recall/coverage with vacuous semantics: when no step ever forced the
  /// selector to drop a token there is nothing to miss, so both are 1.0 —
  /// not the empty-stat 0.0, which would make a lossless run read as
  /// catastrophic. Reporting surfaces should use these over the raw stats.
  [[nodiscard]] double mean_recall() const noexcept {
    return recall_.count() > 0 ? recall_.mean() : 1.0;
  }
  [[nodiscard]] double mean_coverage() const noexcept {
    return coverage_.count() > 0 ? coverage_.mean() : 1.0;
  }
  [[nodiscard]] const RunningStat& coverage_stat() const noexcept { return coverage_; }
  [[nodiscard]] const RunningStat& output_error_stat() const noexcept {
    return output_error_;
  }
  [[nodiscard]] std::int64_t total_fetched() const noexcept { return total_fetched_; }
  [[nodiscard]] std::int64_t total_cache_hits() const noexcept {
    return total_cache_hits_;
  }
  /// Fetches whose latency async prefetch overlapped (subset of
  /// total_fetched; 0 for methods without prefetch).
  [[nodiscard]] std::int64_t total_prefetch_hits() const noexcept {
    return total_prefetch_hits_;
  }
  /// Speculative fetches issued in total (hits + waste).
  [[nodiscard]] std::int64_t total_prefetch_issued() const noexcept {
    return total_prefetch_issued_;
  }
  [[nodiscard]] SelectorBank& selectors() noexcept { return bank_; }
  [[nodiscard]] const DecodeEngineConfig& config() const noexcept { return config_; }

 private:
  ProceduralContextModel& model_;
  DecodeEngineConfig config_;
  SelectorBank bank_;
  bool prefilled_ = false;
  Index prefill_done_ = 0;
  Index next_step_ = 0;
  RunningStat recall_;
  RunningStat coverage_;
  RunningStat output_error_;
  std::int64_t total_fetched_ = 0;
  std::int64_t total_cache_hits_ = 0;
  std::int64_t total_prefetch_hits_ = 0;
  std::int64_t total_prefetch_issued_ = 0;
};

}  // namespace ckv
