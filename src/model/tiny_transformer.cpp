#include "model/tiny_transformer.hpp"

#include <cmath>

#include "core/kernels.hpp"
#include "tensor/rmsnorm.hpp"
#include "tensor/softmax.hpp"
#include "tensor/vec_ops.hpp"
#include "util/parallel.hpp"

namespace ckv {

namespace {

Matrix random_weight(Index rows, Index cols, double scale, Rng& rng) {
  Matrix w(rows, cols);
  rng.fill_normal(w.flat(), 0.0, scale);
  return w;
}

float silu(float x) noexcept {
  return static_cast<float>(static_cast<double>(x) /
                            (1.0 + std::exp(-static_cast<double>(x))));
}

}  // namespace

TinyTransformer::TinyTransformer(const TinyTransformerConfig& config, Rng rng)
    : config_(config) {
  expects(config.vocab_size > 0 && config.num_layers > 0 && config.num_heads > 0 &&
              config.head_dim > 0 && config.ffn_dim > 0,
          "TinyTransformer: all dimensions must be positive");
  const Index hidden = config.hidden_dim();
  embedding_ = random_weight(config.vocab_size, hidden, config.init_scale, rng);
  for (Index l = 0; l < config.num_layers; ++l) {
    LayerWeights w;
    w.wq = random_weight(hidden, hidden, config.init_scale, rng);
    w.wk = random_weight(hidden, hidden, config.init_scale, rng);
    w.wv = random_weight(hidden, hidden, config.init_scale, rng);
    w.wo = random_weight(hidden, hidden, config.init_scale, rng);
    w.w_up = random_weight(hidden, config.ffn_dim, config.init_scale, rng);
    w.w_gate = random_weight(hidden, config.ffn_dim, config.init_scale, rng);
    w.w_down = random_weight(config.ffn_dim, hidden, config.init_scale, rng);
    w.attn_norm.assign(static_cast<std::size_t>(hidden), 1.0f);
    w.ffn_norm.assign(static_cast<std::size_t>(hidden), 1.0f);
    layers_.push_back(std::move(w));
    for (Index h = 0; h < config.num_heads; ++h) {
      keys_.emplace_back();
      values_.emplace_back();
    }
  }
  final_norm_.assign(static_cast<std::size_t>(hidden), 1.0f);
}

std::vector<float> TinyTransformer::embed(Index token) const {
  expects(token >= 0 && token < config_.vocab_size, "TinyTransformer: bad token id");
  const auto row = embedding_.row(token);
  return std::vector<float>(row.begin(), row.end());
}

std::vector<float> TinyTransformer::lm_logits(std::span<const float> hidden) const {
  std::vector<float> normed(hidden.size());
  rms_norm(hidden, final_norm_, normed);
  return matvec(embedding_, normed);  // tied embedding as LM head
}

void TinyTransformer::layer_forward(Index layer, std::vector<float>& hidden, Index pos,
                                    SelectorBank* bank, Index budget) {
  const Index heads = config_.num_heads;
  const Index hd = config_.head_dim;
  auto& w = layers_[static_cast<std::size_t>(layer)];

  std::vector<float> normed(hidden.size());
  rms_norm(hidden, w.attn_norm, normed);

  auto q = vecmat(normed, w.wq);
  auto k = vecmat(normed, w.wk);
  auto v = vecmat(normed, w.wv);

  // Heads are the paper's per-head ThreadBlock dimension: each head owns
  // its KV history, selector state, and a disjoint slice of q/k/v and the
  // output, so they run on the worker pool with bit-identical results.
  std::vector<float> attn_concat(hidden.size(), 0.0f);
  parallel_for(0, heads, [&](Index h) {
    auto q_head = std::span<float>(q).subspan(static_cast<std::size_t>(h * hd),
                                              static_cast<std::size_t>(hd));
    auto k_head = std::span<float>(k).subspan(static_cast<std::size_t>(h * hd),
                                              static_cast<std::size_t>(hd));
    auto v_head = std::span<const float>(v).subspan(static_cast<std::size_t>(h * hd),
                                                    static_cast<std::size_t>(hd));
    apply_rope(q_head, pos, config_.rope);
    apply_rope(k_head, pos, config_.rope);

    auto& key_hist = keys_[static_cast<std::size_t>(layer * heads + h)];
    auto& val_hist = values_[static_cast<std::size_t>(layer * heads + h)];
    key_hist.append_row(k_head);
    val_hist.append_row(v_head);

    std::vector<Index> attend;
    if (bank != nullptr) {
      bank->at(layer, h).observe_decode(k_head, v_head);
      attend = bank->at(layer, h).select(q_head, budget).indices;
    } else {
      attend.resize(static_cast<std::size_t>(key_hist.rows()));
      for (Index t = 0; t < key_hist.rows(); ++t) {
        attend[static_cast<std::size_t>(t)] = t;
      }
    }

    const float inv_sqrt_d = static_cast<float>(1.0 / std::sqrt(static_cast<double>(hd)));
    std::vector<float> scores(attend.size());
    batched_dot_at(key_hist, attend, q_head, scores, inv_sqrt_d);
    auto out_head = std::span<float>(attn_concat)
                        .subspan(static_cast<std::size_t>(h * hd),
                                 static_cast<std::size_t>(hd));
    attention_output(scores, attend, val_hist, out_head);
  });

  const auto projected = vecmat(attn_concat, w.wo);
  add_in_place(hidden, projected);

  rms_norm(hidden, w.ffn_norm, normed);
  auto up = vecmat(normed, w.w_up);
  const auto gate = vecmat(normed, w.w_gate);
  for (std::size_t i = 0; i < up.size(); ++i) {
    up[i] *= silu(gate[i]);
  }
  const auto down = vecmat(up, w.w_down);
  add_in_place(hidden, down);
}

std::vector<float> TinyTransformer::prefill(std::span<const Index> tokens,
                                            SelectorBank& bank) {
  expects(!tokens.empty(), "TinyTransformer::prefill: prompt must not be empty");
  expects(position_ == 0, "TinyTransformer::prefill: model already has context");

  std::vector<float> hidden;
  for (const Index token : tokens) {
    hidden = embed(token);
    for (Index l = 0; l < config_.num_layers; ++l) {
      // Exact attention during prefill: bank == nullptr attends everything.
      layer_forward(l, hidden, position_, nullptr, 0);
    }
    ++position_;
  }

  // Hand each head's post-RoPE prompt KV to the selectors.
  for (Index l = 0; l < config_.num_layers; ++l) {
    for (Index h = 0; h < config_.num_heads; ++h) {
      const auto& key_hist = keys_[static_cast<std::size_t>(l * config_.num_heads + h)];
      const auto& val_hist =
          values_[static_cast<std::size_t>(l * config_.num_heads + h)];
      bank.at(l, h).observe_prefill(key_hist, val_hist);
    }
  }
  return lm_logits(hidden);
}

std::vector<float> TinyTransformer::decode_step(Index token, SelectorBank& bank,
                                                Index budget) {
  expects(position_ > 0, "TinyTransformer::decode_step: prefill first");
  auto hidden = embed(token);
  for (Index l = 0; l < config_.num_layers; ++l) {
    layer_forward(l, hidden, position_, &bank, budget);
  }
  ++position_;
  return lm_logits(hidden);
}

std::vector<Index> TinyTransformer::generate_greedy(std::span<const Index> prompt,
                                                    SelectorBank& bank, Index budget,
                                                    Index steps) {
  auto logits = prefill(prompt, bank);
  std::vector<Index> out;
  for (Index s = 0; s < steps; ++s) {
    Index best = 0;
    float best_v = logits[0];
    for (std::size_t i = 1; i < logits.size(); ++i) {
      if (logits[i] > best_v) {
        best_v = logits[i];
        best = static_cast<Index>(i);
      }
    }
    out.push_back(best);
    logits = decode_step(best, bank, budget);
  }
  return out;
}

}  // namespace ckv
