#include "model/model_config.hpp"

namespace ckv {

ModelConfig ModelConfig::llama31_8b() {
  ModelConfig c;
  c.name = "Llama-3.1-8B";
  c.num_layers = 32;
  c.num_heads = 32;
  c.num_kv_heads = 8;
  c.head_dim = 128;
  c.hidden_dim = 4096;
  c.ffn_dim = 14336;
  c.vocab_size = 128256;
  c.param_count = 8030000000LL;
  return c;
}

ModelConfig ModelConfig::glm4_9b() {
  ModelConfig c;
  c.name = "GLM4-9B-Chat";
  c.num_layers = 40;
  c.num_heads = 32;
  c.num_kv_heads = 2;
  c.head_dim = 128;
  c.hidden_dim = 4096;
  c.ffn_dim = 13696;
  c.vocab_size = 151552;
  c.param_count = 9400000000LL;
  return c;
}

ModelConfig ModelConfig::opt_6_7b() {
  ModelConfig c;
  c.name = "OPT-6.7B";
  c.num_layers = 32;
  c.num_heads = 32;
  c.num_kv_heads = 32;
  c.head_dim = 128;
  c.hidden_dim = 4096;
  c.ffn_dim = 16384;
  c.vocab_size = 50272;
  c.param_count = 6700000000LL;
  return c;
}

std::int64_t ModelConfig::weight_bytes(Index element_bytes) const noexcept {
  return param_count * element_bytes;
}

std::int64_t ModelConfig::kv_bytes_per_token_layer(Index element_bytes) const noexcept {
  return 2 * num_kv_heads * head_dim * element_bytes;
}

std::int64_t ModelConfig::kv_bytes_per_token(Index element_bytes) const noexcept {
  return kv_bytes_per_token_layer(element_bytes) * num_layers;
}

}  // namespace ckv
