// Architecture shapes of the models the paper evaluates. Accuracy
// experiments run a scaled simulation slice; these full-size shapes feed
// the analytic latency model (Fig. 12 / Fig. 13).
#pragma once

#include <string>

#include "util/common.hpp"

namespace ckv {

struct ModelConfig {
  std::string name;
  Index num_layers = 0;
  Index num_heads = 0;     ///< query heads
  Index num_kv_heads = 0;  ///< KV heads (GQA groups; == num_heads for MHA)
  Index head_dim = 0;
  Index hidden_dim = 0;
  Index ffn_dim = 0;
  Index vocab_size = 0;
  std::int64_t param_count = 0;  ///< published totals; drives weight bytes

  /// Llama-3.1-8B: GQA with 8 KV heads (paper's performance model).
  static ModelConfig llama31_8b();
  /// GLM4-9B-Chat: the paper's accuracy model (128k context window).
  static ModelConfig glm4_9b();
  /// OPT-6.7B: MHA; the InfiniGen/FlexGen comparison model (Fig. 13a).
  static ModelConfig opt_6_7b();

  /// Bytes of all weights at the given element width.
  [[nodiscard]] std::int64_t weight_bytes(Index element_bytes = 2) const noexcept;

  /// KV-cache bytes one token adds in one layer (K and V, all KV heads).
  [[nodiscard]] std::int64_t kv_bytes_per_token_layer(
      Index element_bytes = 2) const noexcept;

  /// KV-cache bytes one token adds across all layers.
  [[nodiscard]] std::int64_t kv_bytes_per_token(Index element_bytes = 2) const noexcept;
};

/// Shape of the scaled simulation slice used by accuracy experiments.
/// num_heads counts KV heads; queries_per_kv > 1 enables GQA (each KV
/// head serves a group of query heads that share one selection).
struct SimShape {
  Index num_layers = 2;
  Index num_heads = 4;
  Index head_dim = 64;
  Index queries_per_kv = 1;

  [[nodiscard]] Index total_heads() const noexcept { return num_layers * num_heads; }
};

}  // namespace ckv
