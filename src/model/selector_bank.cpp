#include "model/selector_bank.hpp"

namespace ckv {

SelectorBank::SelectorBank(Index num_layers, Index num_heads, Index head_dim,
                           const SelectorFactory& factory)
    : num_layers_(num_layers), num_heads_(num_heads) {
  expects(num_layers > 0 && num_heads > 0 && head_dim > 0,
          "SelectorBank: dimensions must be positive");
  expects(static_cast<bool>(factory), "SelectorBank: factory must be callable");
  selectors_.reserve(static_cast<std::size_t>(num_layers * num_heads));
  for (Index l = 0; l < num_layers; ++l) {
    for (Index h = 0; h < num_heads; ++h) {
      selectors_.push_back(factory(l, h, head_dim));
      ensures(selectors_.back() != nullptr, "SelectorBank: factory returned null");
    }
  }
}

KVSelector& SelectorBank::at(Index layer, Index head) {
  expects(layer >= 0 && layer < num_layers_, "SelectorBank::at: bad layer");
  expects(head >= 0 && head < num_heads_, "SelectorBank::at: bad head");
  return *selectors_[static_cast<std::size_t>(layer * num_heads_ + head)];
}

const KVSelector& SelectorBank::at(Index layer, Index head) const {
  expects(layer >= 0 && layer < num_layers_, "SelectorBank::at: bad layer");
  expects(head >= 0 && head < num_heads_, "SelectorBank::at: bad head");
  return *selectors_[static_cast<std::size_t>(layer * num_heads_ + head)];
}

std::string SelectorBank::method_name() const { return selectors_.front()->name(); }

}  // namespace ckv
