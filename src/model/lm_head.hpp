// Language-model head over attention features: projects concatenated
// per-head attention outputs to vocabulary logits. Used by the perplexity
// experiments (Fig. 10): the deviation of a compression method's features
// from the full-attention features shows up directly as extra NLL.
#pragma once

#include <span>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"
#include "util/common.hpp"

namespace ckv {

class LMHead {
 public:
  LMHead(Index vocab_size, Index feature_dim, Rng rng);

  [[nodiscard]] Index vocab_size() const noexcept { return weights_.rows(); }
  [[nodiscard]] Index feature_dim() const noexcept { return weights_.cols(); }

  /// logits = W . features.
  [[nodiscard]] std::vector<float> logits(std::span<const float> features) const;

 private:
  Matrix weights_;
};

/// Negative log-likelihood of `target` under softmax(logits / temperature).
double nll_of(std::span<const float> logits, Index target, double temperature = 1.0);

/// Samples a token from softmax(logits / temperature).
Index sample_token(std::span<const float> logits, double temperature, Rng& rng);

/// Argmax token (greedy decoding).
Index argmax_token(std::span<const float> logits);

}  // namespace ckv
