#include "model/decode_engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "tensor/softmax.hpp"
#include "tensor/topk.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {

DecodeEngine::DecodeEngine(ProceduralContextModel& model,
                           const SelectorFactory& factory,
                           const DecodeEngineConfig& config)
    : model_(model),
      config_(config),
      bank_(model.shape().num_layers, model.shape().num_heads, model.shape().head_dim,
            factory) {
  expects(config.budget > 0, "DecodeEngine: budget must be positive");
  expects(config.full_attention_layers >= 0 &&
              config.full_attention_layers <= model.shape().num_layers,
          "DecodeEngine: full_attention_layers out of range");
}

void DecodeEngine::run_prefill() {
  expects(!prefilled_, "DecodeEngine::run_prefill: already prefilled");
  expects(prefill_done_ == 0,
          "DecodeEngine::run_prefill: chunked prefill already started; finish "
          "it with prefill_chunk");
  for (Index l = 0; l < model_.shape().num_layers; ++l) {
    for (Index h = 0; h < model_.shape().num_heads; ++h) {
      const auto& stream = model_.head(l, h);
      bank_.at(l, h).observe_prefill(stream.keys(), stream.values());
    }
  }
  prefill_done_ = model_.prompt_len();
  prefilled_ = true;
}

Index DecodeEngine::prefill_chunk(Index max_tokens) {
  expects(max_tokens > 0, "DecodeEngine::prefill_chunk: max_tokens must be > 0");
  if (prefilled_) {
    return 0;
  }
  const Index prompt = model_.prompt_len();
  const Index begin = prefill_done_;
  const Index end = std::min<Index>(prompt, begin + max_tokens);
  const bool last = end == prompt;
  for (Index l = 0; l < model_.shape().num_layers; ++l) {
    for (Index h = 0; h < model_.shape().num_heads; ++h) {
      const auto& stream = model_.head(l, h);
      auto& selector = bank_.at(l, h);
      if (selector.supports_chunked_prefill()) {
        selector.observe_prefill_chunk(stream.keys().row_slice(begin, end),
                                       stream.values().row_slice(begin, end), last);
      } else if (last) {
        // Chunk-oblivious methods build whole-prompt state once the final
        // chunk lands; the scheduler has billed every chunk's latency by
        // then, so only the state construction is deferred, not the time.
        selector.observe_prefill(stream.keys(), stream.values());
      }
    }
  }
  prefill_done_ = end;
  prefilled_ = last;
  return end - begin;
}

StepResult DecodeEngine::decode_step(Index step) {
  expects(prefilled_, "DecodeEngine::decode_step: run_prefill first");
  expects(step == next_step_, "DecodeEngine::decode_step: steps must be sequential");
  ++next_step_;

  // The generated token joins the context before selection: its KV is on
  // the fast tier (ClusterKV's pending buffer / Quest's partial page).
  model_.append_generated();
  for (Index l = 0; l < model_.shape().num_layers; ++l) {
    for (Index h = 0; h < model_.shape().num_heads; ++h) {
      const auto& stream = model_.head(l, h);
      const Index last = stream.size() - 1;
      bank_.at(l, h).observe_decode(stream.keys().row(last), stream.values().row(last));
    }
  }

  StepResult result;
  RunningStat step_recall;
  RunningStat step_coverage;
  RunningStat step_error;

  const Index layers = model_.shape().num_layers;
  const Index heads = model_.shape().num_heads;
  const Index group = model_.shape().queries_per_kv;
  for (Index l = 0; l < layers; ++l) {
    const bool selection_active = l >= config_.full_attention_layers;
    for (Index h = 0; h < heads; ++h) {
      auto& stream = model_.head(l, h);

      // GQA: the query-head group shares one selection per KV head. The
      // selection query is the group sum — centroid/page scores are linear
      // in q, so this equals summing the group's scores.
      std::vector<std::vector<float>> group_queries;
      group_queries.reserve(static_cast<std::size_t>(group));
      for (Index sub = 0; sub < group; ++sub) {
        group_queries.push_back(stream.query(step, sub));
      }
      std::vector<float> selection_query = group_queries.front();
      for (Index sub = 1; sub < group; ++sub) {
        add_in_place(selection_query, group_queries[static_cast<std::size_t>(sub)]);
      }

      const Index n = stream.size();
      std::vector<Index> selected;
      SelectionResult sel;
      if (selection_active) {
        sel = bank_.at(l, h).select(selection_query, config_.budget);
        selected = sel.indices;
        result.tokens_selected += static_cast<Index>(selected.size());
        result.tokens_fetched += sel.tokens_fetched;
        result.tokens_cache_hit += sel.tokens_cache_hit;
        result.tokens_prefetch_hit += sel.tokens_prefetch_hit;
        result.tokens_prefetch_issued += sel.tokens_prefetch_issued;
      } else {
        selected.resize(static_cast<std::size_t>(n));
        std::iota(selected.begin(), selected.end(), Index{0});
      }

      for (Index sub = 0; sub < group; ++sub) {
        const auto& query = group_queries[static_cast<std::size_t>(sub)];
        const auto full_scores = stream.attention_scores(query);

        // Exact attention output.
        std::vector<float> full_out(static_cast<std::size_t>(model_.shape().head_dim));
        attention_output_full(full_scores, stream.values(), full_out);

        // Approximate attention output over the shared selected subset.
        std::vector<float> sel_scores(selected.size());
        for (std::size_t i = 0; i < selected.size(); ++i) {
          sel_scores[i] = full_scores[static_cast<std::size_t>(selected[i])];
        }
        std::vector<float> approx_out(
            static_cast<std::size_t>(model_.shape().head_dim));
        attention_output(sel_scores, selected, stream.values(), approx_out);

        if (config_.attention_feedback && sub == 0) {
          std::vector<float> probs = sel_scores;
          softmax_in_place(probs);
          bank_.at(l, h).observe_attention(selected, probs);
        }

        // Recall/coverage are only measured on meaningful steps (context
        // larger than the budget): when everything fits, every method
        // trivially recalls 1.0 and the sample only dilutes comparisons
        // (see recall_stat's contract in the header).
        if (selection_active && n > config_.budget) {
          // Recall of important tokens (Fig. 11): both sets sized by budget.
          const Index b = std::min<Index>(config_.budget, n);
          const auto truth = top_k_indices(full_scores, b);
          std::unordered_set<Index> selected_set(selected.begin(), selected.end());
          Index overlap = 0;
          for (const Index t : truth) {
            if (selected_set.contains(t)) {
              ++overlap;
            }
          }
          step_recall.add(static_cast<double>(overlap) / static_cast<double>(b));

          // Attention-mass coverage of the selected set.
          std::vector<float> full_probs = full_scores;
          softmax_in_place(full_probs);
          double mass = 0.0;
          for (const Index t : selected) {
            mass += static_cast<double>(full_probs[static_cast<std::size_t>(t)]);
          }
          step_coverage.add(mass);

          // Relative output error.
          std::vector<float> diff(full_out.size());
          for (std::size_t i = 0; i < diff.size(); ++i) {
            diff[i] = approx_out[i] - full_out[i];
          }
          const double denom = norm2(full_out);
          step_error.add(denom > 0.0 ? norm2(diff) / denom : 0.0);
        }

        if (l == layers - 1) {
          result.features.insert(result.features.end(), approx_out.begin(),
                                 approx_out.end());
        }
      }
    }
  }

  if (step_recall.count() > 0) {
    result.mean_recall = step_recall.mean();
    result.mean_coverage = step_coverage.mean();
    result.mean_output_error = step_error.mean();
    recall_.add(result.mean_recall);
    coverage_.add(result.mean_coverage);
    output_error_.add(result.mean_output_error);
  } else {
    // No selection was forced anywhere this step (every context fit its
    // budget, or every layer ran full attention): attention was computed
    // exactly, so the step is vacuously lossless. Reporting it as 1.0
    // recall / 1.0 coverage / 0.0 error keeps per-step consumers
    // (workloads blending quality) honest, while the engine aggregates
    // skip it entirely — a lossless step must neither read as catastrophic
    // nor dilute the selection-forced average.
    result.mean_recall = 1.0;
    result.mean_coverage = 1.0;
    result.mean_output_error = 0.0;
  }
  total_fetched_ += result.tokens_fetched;
  total_cache_hits_ += result.tokens_cache_hit;
  total_prefetch_hits_ += result.tokens_prefetch_hit;
  total_prefetch_issued_ += result.tokens_prefetch_issued;
  return result;
}

}  // namespace ckv
