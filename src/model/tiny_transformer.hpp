// A real (tiny) causal decoder-only transformer with randomly initialized
// weights: RMSNorm -> MHA (RoPE) -> FFN (SiLU) blocks and a tied LM head.
// It exists to validate the selector machinery end to end on an actual
// transformer forward pass: with budget >= context, every method must
// reproduce exact attention bit-for-bit; with smaller budgets the output
// drift must be bounded and ordered (ClusterKV < Quest, etc.).
#pragma once

#include <vector>

#include "model/selector_bank.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"
#include "tensor/rope.hpp"
#include "util/common.hpp"

namespace ckv {

struct TinyTransformerConfig {
  Index vocab_size = 101;
  Index num_layers = 2;
  Index num_heads = 4;
  Index head_dim = 16;
  Index ffn_dim = 256;
  double init_scale = 0.12;
  RopeConfig rope;

  [[nodiscard]] Index hidden_dim() const noexcept { return num_heads * head_dim; }
};

class TinyTransformer {
 public:
  TinyTransformer(const TinyTransformerConfig& config, Rng rng);

  [[nodiscard]] const TinyTransformerConfig& config() const noexcept { return config_; }

  /// Processes the prompt with exact attention, feeds post-RoPE K/V to the
  /// selectors (Fig. 6: clustering consumes keys after RoPE), and returns
  /// the logits at the last prompt position.
  std::vector<float> prefill(std::span<const Index> tokens, SelectorBank& bank);

  /// One decode step: the new token attends to at most `budget` selected
  /// positions per head. Returns next-token logits.
  std::vector<float> decode_step(Index token, SelectorBank& bank, Index budget);

  /// Convenience: greedy generation; returns the generated token ids.
  std::vector<Index> generate_greedy(std::span<const Index> prompt,
                                     SelectorBank& bank, Index budget, Index steps);

  [[nodiscard]] Index position() const noexcept { return position_; }

 private:
  struct LayerWeights {
    Matrix wq, wk, wv, wo;  ///< hidden x hidden projections
    Matrix w_up, w_gate;    ///< hidden x ffn
    Matrix w_down;          ///< ffn x hidden
    std::vector<float> attn_norm, ffn_norm;
  };

  /// Forward of one token's hidden state through one layer, attending over
  /// `attend` positions of this layer's per-head KV (selectors already
  /// updated). Mutates hidden in place.
  void layer_forward(Index layer, std::vector<float>& hidden, Index pos,
                     SelectorBank* bank, Index budget);

  [[nodiscard]] std::vector<float> embed(Index token) const;
  [[nodiscard]] std::vector<float> lm_logits(std::span<const float> hidden) const;

  TinyTransformerConfig config_;
  Matrix embedding_;  ///< vocab x hidden (tied with the LM head)
  std::vector<LayerWeights> layers_;
  std::vector<float> final_norm_;

  /// Per (layer, head) KV history (post-RoPE keys), owned by the model so
  /// exact attention is always available.
  std::vector<Matrix> keys_;    ///< layer*heads entries, rows = tokens
  std::vector<Matrix> values_;
  Index position_ = 0;
};

}  // namespace ckv
