#include "model/procedural.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/kernels.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {

HeadStream::HeadStream(const ProceduralParams& params, Rng rng, Index prompt_len)
    : params_(params),
      topic_rng_(rng.fork("topics")),
      key_rng_(rng.fork("keys")),
      query_rng_(rng.fork("queries")),
      prompt_len_(prompt_len) {
  expects(params.head_dim > 0, "HeadStream: head_dim must be positive");
  expects(params.num_topics > 0, "HeadStream: num_topics must be positive");
  expects(prompt_len >= 0, "HeadStream: prompt_len must be non-negative");

  Rng structure_rng = rng.fork("structure");
  topic_dirs_ = Matrix(params.num_topics, params.head_dim);
  value_dirs_ = Matrix(params.num_topics, params.head_dim);
  for (Index g = 0; g < params.num_topics; ++g) {
    copy_to(structure_rng.unit_vector(params.head_dim), topic_dirs_.row(g));
    copy_to(structure_rng.unit_vector(params.head_dim), value_dirs_.row(g));
  }
  sink_dir_ = structure_rng.unit_vector(params.head_dim);

  const Index outliers = std::min<Index>(params.outlier_channels, params.head_dim);
  const auto channels = structure_rng.sample_without_replacement(params.head_dim, outliers);
  for (const Index c : channels) {
    outlier_channel_ids_.push_back(c);
    const double sign = structure_rng.bernoulli(0.5) ? 1.0 : -1.0;
    outlier_channel_offset_.push_back(static_cast<float>(sign * params.outlier_offset));
  }

  for (Index p = 0; p < prompt_len; ++p) {
    append_token(p);
  }

  // Initial query focus: a random topic subset.
  for (Index i = 0; i < params.focus_width; ++i) {
    current_focus_.push_back(query_rng_.uniform_int(0, params.num_topics - 1));
  }

  expects(params.queries_per_kv >= 1, "HeadStream: queries_per_kv must be >= 1");
  queries_.resize(static_cast<std::size_t>(params.queries_per_kv));
  for (Index sub = 0; sub < params.queries_per_kv; ++sub) {
    sub_query_rngs_.push_back(query_rng_.fork("sub" + std::to_string(sub)));
  }
}

void HeadStream::append_token(Index position) {
  Index topic = 0;
  if (position < params_.sink_tokens) {
    topic = -1;  // sinks carry no topic
  } else if (topic_assignment_.empty() ||
             topic_assignment_.back() < 0 ||
             topic_rng_.bernoulli(params_.topic_change_prob)) {
    topic = topic_rng_.uniform_int(0, params_.num_topics - 1);
  } else {
    topic = topic_assignment_.back();
  }
  topic_assignment_.push_back(topic);

  if (topic < 0) {
    // Attention sink: large-magnitude key far from every topic, with a
    // small perturbation so sinks are not exactly identical.
    std::vector<float> k(sink_dir_.begin(), sink_dir_.end());
    for (float& x : k) {
      x = static_cast<float>(x * params_.sink_scale + key_rng_.normal(0.0, 0.05));
    }
    keys_.append_row(k);
    values_.append_row(make_value(topic_rng_.uniform_int(0, params_.num_topics - 1)));
    return;
  }
  keys_.append_row(make_key(topic));
  values_.append_row(make_value(topic));
}

std::vector<float> HeadStream::make_key(Index topic) {
  const auto dir = topic_dirs_.row(topic);
  std::vector<float> k(static_cast<std::size_t>(params_.head_dim));
  for (std::size_t c = 0; c < k.size(); ++c) {
    k[c] = static_cast<float>(static_cast<double>(dir[c]) +
                              key_rng_.normal(0.0, params_.key_noise /
                                                       std::sqrt(static_cast<double>(
                                                           params_.head_dim))));
  }
  normalize_in_place(k);
  const double scale = std::exp(key_rng_.normal(0.0, params_.key_scale_sigma));
  scale_in_place(k, static_cast<float>(scale));
  for (std::size_t i = 0; i < outlier_channel_ids_.size(); ++i) {
    const auto channel = static_cast<std::size_t>(outlier_channel_ids_[i]);
    const double jitter = 1.0 + params_.outlier_jitter * key_rng_.normal();
    k[channel] += outlier_channel_offset_[i] * static_cast<float>(jitter);
  }
  return k;
}

std::vector<float> HeadStream::make_value(Index topic) {
  const auto dir = value_dirs_.row(topic);
  std::vector<float> v(static_cast<std::size_t>(params_.head_dim));
  for (std::size_t c = 0; c < v.size(); ++c) {
    v[c] = static_cast<float>(static_cast<double>(dir[c]) +
                              key_rng_.normal(0.0, params_.value_noise /
                                                       std::sqrt(static_cast<double>(
                                                           params_.head_dim))));
  }
  return v;
}

Index HeadStream::topic_of(Index position) const {
  expects(position >= 0 && position < size(), "HeadStream::topic_of: out of range");
  return topic_assignment_[static_cast<std::size_t>(position)];
}

void HeadStream::append_generated() { append_token(size()); }

void HeadStream::pin_focus(Index step_begin, Index step_end,
                           std::span<const Index> positions) {
  expects(step_begin >= 0 && step_begin <= step_end, "HeadStream::pin_focus: bad range");
  expects(static_cast<Index>(focus_by_step_.size()) <= step_begin,
          "HeadStream::pin_focus: steps already materialized");
  // Topics of the pinned positions, most frequent first, capped at the
  // focus width.
  std::unordered_map<Index, Index> topic_counts;
  for (const Index p : positions) {
    const Index t = topic_of(p);
    if (t >= 0) {
      ++topic_counts[t];
    }
  }
  expects(!topic_counts.empty(), "HeadStream::pin_focus: positions have no topics");
  // ckv-lint: allow(unordered-iter) -- ranked is fully sorted below with a total order
  std::vector<std::pair<Index, Index>> ranked(topic_counts.begin(), topic_counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  PinnedRange range;
  range.begin = step_begin;
  range.end = step_end;
  for (const auto& [topic, count] : ranked) {
    if (static_cast<Index>(range.topics.size()) >= params_.focus_width) {
      break;
    }
    range.topics.push_back(topic);
  }
  pinned_.push_back(std::move(range));
}

std::vector<Index> HeadStream::focus_for_step(Index step) {
  for (const auto& range : pinned_) {
    if (step >= range.begin && step < range.end) {
      return range.topics;
    }
  }
  // Unpinned: the focus random-walks over topics — this is exactly the
  // dynamic importance of Fig. 3a.
  if (query_rng_.bernoulli(params_.focus_drift_prob) && !current_focus_.empty()) {
    const auto slot = static_cast<std::size_t>(
        query_rng_.uniform_int(0, static_cast<Index>(current_focus_.size()) - 1));
    current_focus_[slot] = query_rng_.uniform_int(0, params_.num_topics - 1);
  }
  return current_focus_;
}

std::vector<float> HeadStream::query(Index step, Index sub_query) {
  expects(step >= 0, "HeadStream::query: step must be non-negative");
  expects(sub_query >= 0 && sub_query < params_.queries_per_kv,
          "HeadStream::query: sub_query out of range");
  // The focus process is causal: materialize every step up to the
  // requested one (sparse readers like the LM harness skip steps).
  while (queries_.front().rows() <= step) {
    materialize_next_query();
  }
  const auto row = queries_[static_cast<std::size_t>(sub_query)].row(step);
  return std::vector<float>(row.begin(), row.end());
}

void HeadStream::materialize_next_query() {
  const Index step = queries_.front().rows();
  const auto focus = focus_for_step(step);
  focus_by_step_.push_back(focus);

  // Shared semantic part: the group's focus topics plus sink alignment.
  std::vector<float> base(static_cast<std::size_t>(params_.head_dim), 0.0f);
  if (!focus.empty()) {
    const float w = 1.0f / static_cast<float>(focus.size());
    for (const Index topic : focus) {
      axpy(w, topic_dirs_.row(topic), base);
    }
  }
  axpy(static_cast<float>(params_.sink_alignment), sink_dir_, base);

  for (Index sub = 0; sub < params_.queries_per_kv; ++sub) {
    std::vector<float> q = base;
    auto& rng = sub_query_rngs_[static_cast<std::size_t>(sub)];
    for (float& x : q) {
      x = static_cast<float>(static_cast<double>(x) +
                             rng.normal(0.0, params_.query_noise /
                                                 std::sqrt(static_cast<double>(
                                                     params_.head_dim))));
    }
    // Queries are orthogonal to the outlier channels: their large
    // magnitudes perturb key *distances* (the KIVI effect §III-B cites
    // against L2 and inner-product clustering) but their per-token jitter
    // is not what the query reads, so attention stays semantic.
    for (const Index channel : outlier_channel_ids_) {
      q[static_cast<std::size_t>(channel)] = 0.0f;
    }
    normalize_in_place(q);
    // query_scale is the *score* sharpness: scores divide by sqrt(d), so
    // the query magnitude carries a sqrt(d) factor to cancel it.
    scale_in_place(q, static_cast<float>(
                          params_.query_scale *
                          std::sqrt(static_cast<double>(params_.head_dim))));
    queries_[static_cast<std::size_t>(sub)].append_row(q);
  }
}

std::vector<float> HeadStream::attention_scores(std::span<const float> query,
                                                Index prefix_len) const {
  expects(static_cast<Index>(query.size()) == params_.head_dim,
          "HeadStream::attention_scores: query width");
  const Index limit = prefix_len < 0 ? size() : std::min<Index>(prefix_len, size());
  const float inv_sqrt_d =
      static_cast<float>(1.0 / std::sqrt(static_cast<double>(params_.head_dim)));
  std::vector<float> scores(static_cast<std::size_t>(limit));
  batched_scores(keys_, 0, limit, query, DistanceMetric::kInnerProduct, scores,
                 inv_sqrt_d);
  return scores;
}

ProceduralContextModel::ProceduralContextModel(const SimShape& shape,
                                               const ProceduralParams& params,
                                               std::uint64_t seed, Index prompt_len)
    : shape_(shape), prompt_len_(prompt_len) {
  expects(shape.num_layers > 0 && shape.num_heads > 0,
          "ProceduralContextModel: shape must be positive");
  expects(shape.queries_per_kv >= 1,
          "ProceduralContextModel: queries_per_kv must be >= 1");
  ProceduralParams head_params = params;
  head_params.head_dim = shape.head_dim;
  head_params.queries_per_kv = shape.queries_per_kv;
  heads_.reserve(static_cast<std::size_t>(shape.total_heads()));
  for (Index l = 0; l < shape.num_layers; ++l) {
    for (Index h = 0; h < shape.num_heads; ++h) {
      const auto tag = "model/l" + std::to_string(l) + "/h" + std::to_string(h);
      heads_.push_back(std::make_unique<HeadStream>(
          head_params, Rng(derive_seed(seed, tag)), prompt_len));
    }
  }
}

Index ProceduralContextModel::context_len() const { return heads_.front()->size(); }

HeadStream& ProceduralContextModel::head(Index layer, Index head) {
  expects(layer >= 0 && layer < shape_.num_layers, "ProceduralContextModel: bad layer");
  expects(head >= 0 && head < shape_.num_heads, "ProceduralContextModel: bad head");
  return *heads_[static_cast<std::size_t>(layer * shape_.num_heads + head)];
}

const HeadStream& ProceduralContextModel::head(Index layer, Index head) const {
  expects(layer >= 0 && layer < shape_.num_layers, "ProceduralContextModel: bad layer");
  expects(head >= 0 && head < shape_.num_heads, "ProceduralContextModel: bad head");
  return *heads_[static_cast<std::size_t>(layer * shape_.num_heads + head)];
}

void ProceduralContextModel::append_generated() {
  for (auto& h : heads_) {
    h->append_generated();
  }
}

void ProceduralContextModel::pin_focus(Index step_begin, Index step_end,
                                       std::span<const Index> positions) {
  for (auto& h : heads_) {
    h->pin_focus(step_begin, step_end, positions);
  }
}

}  // namespace ckv
