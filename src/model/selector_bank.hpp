// A (layer x head) grid of per-head selector instances created from one
// SelectorFactory — shared by the decode engine and the tiny transformer.
#pragma once

#include <memory>
#include <vector>

#include "core/kv_selector.hpp"
#include "util/common.hpp"

namespace ckv {

class SelectorBank {
 public:
  SelectorBank(Index num_layers, Index num_heads, Index head_dim,
               const SelectorFactory& factory);

  [[nodiscard]] Index num_layers() const noexcept { return num_layers_; }
  [[nodiscard]] Index num_heads() const noexcept { return num_heads_; }

  [[nodiscard]] KVSelector& at(Index layer, Index head);
  [[nodiscard]] const KVSelector& at(Index layer, Index head) const;

  /// Name reported by the underlying method.
  [[nodiscard]] std::string method_name() const;

 private:
  Index num_layers_;
  Index num_heads_;
  std::vector<std::unique_ptr<KVSelector>> selectors_;  ///< layer-major
};

}  // namespace ckv
