#include "model/lm_head.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/softmax.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {

LMHead::LMHead(Index vocab_size, Index feature_dim, Rng rng) {
  expects(vocab_size > 0 && feature_dim > 0, "LMHead: dims must be positive");
  weights_ = Matrix(vocab_size, feature_dim);
  // Unit rows keep logit scale independent of the feature dimension.
  for (Index v = 0; v < vocab_size; ++v) {
    copy_to(rng.unit_vector(feature_dim), weights_.row(v));
  }
}

std::vector<float> LMHead::logits(std::span<const float> features) const {
  return matvec(weights_, features);
}

double nll_of(std::span<const float> logits, Index target, double temperature) {
  expects(target >= 0 && target < static_cast<Index>(logits.size()),
          "nll_of: target out of range");
  expects(temperature > 0.0, "nll_of: temperature must be positive");
  std::vector<float> scaled(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    scaled[i] = static_cast<float>(static_cast<double>(logits[i]) / temperature);
  }
  const auto log_probs = log_softmax(scaled);
  return -static_cast<double>(log_probs[static_cast<std::size_t>(target)]);
}

Index sample_token(std::span<const float> logits, double temperature, Rng& rng) {
  expects(!logits.empty(), "sample_token: logits must not be empty");
  expects(temperature > 0.0, "sample_token: temperature must be positive");
  std::vector<float> probs(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = static_cast<float>(static_cast<double>(logits[i]) / temperature);
  }
  softmax_in_place(probs);
  std::vector<double> weights(probs.begin(), probs.end());
  return rng.weighted_choice(weights);
}

Index argmax_token(std::span<const float> logits) {
  expects(!logits.empty(), "argmax_token: logits must not be empty");
  return static_cast<Index>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

}  // namespace ckv
