#include "core/kv_selector.hpp"

namespace ckv {

void KVSelector::observe_prefill_chunk(const Matrix& keys, const Matrix& values,
                                       bool last_chunk) {
  expects(last_chunk && context_size() == 0,
          "KVSelector::observe_prefill_chunk: this method is chunk-oblivious "
          "(supports_chunked_prefill() is false); feed it the whole prompt "
          "as one final chunk");
  observe_prefill(keys, values);
}

void KVSelector::observe_attention(std::span<const Index> /*indices*/,
                                   std::span<const float> /*probabilities*/) {
  // Most methods ignore attention feedback; H2O overrides this.
}

void KVSelector::attach_fast_tier_ledger(FastTierLedger* /*ledger*/) {
  // Methods without tiered placement have no residency to account.
}

}  // namespace ckv
