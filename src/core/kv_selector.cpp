#include "core/kv_selector.hpp"

namespace ckv {

void KVSelector::observe_attention(std::span<const Index> /*indices*/,
                                   std::span<const float> /*probabilities*/) {
  // Most methods ignore attention feedback; H2O overrides this.
}

void KVSelector::attach_fast_tier_ledger(FastTierLedger* /*ledger*/) {
  // Methods without tiered placement have no residency to account.
}

}  // namespace ckv
