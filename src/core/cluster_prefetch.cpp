#include "core/cluster_prefetch.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "tensor/vec_ops.hpp"

namespace ckv {

ClusterPrefetcher::ClusterPrefetcher(const ClusterPrefetchConfig& config)
    : config_(config) {
  expects(config.max_clusters >= 0,
          "ClusterPrefetcher: max_clusters must be non-negative");
  expects(config.prior_weight >= 0.0,
          "ClusterPrefetcher: prior_weight must be non-negative");
  expects(config.prior_decay >= 0.0 && config.prior_decay < 1.0,
          "ClusterPrefetcher: prior_decay must be in [0, 1)");
}

void ClusterPrefetcher::observe_selection(std::span<const Index> selected_clusters,
                                          Index cluster_count) {
  expects(cluster_count >= 0, "ClusterPrefetcher: negative cluster count");
  prior_.resize(static_cast<std::size_t>(cluster_count), 0.0);
  for (double& p : prior_) {
    p *= config_.prior_decay;
  }
  const double gain = 1.0 - config_.prior_decay;
  for (const Index c : selected_clusters) {
    expects(c >= 0 && c < cluster_count,
            "ClusterPrefetcher: selected cluster out of range");
    prior_[static_cast<std::size_t>(c)] += gain;
  }
}

std::vector<Index> ClusterPrefetcher::predict(
    std::span<const float> centroid_scores, std::span<const Index> exclude) const {
  if (!enabled() || centroid_scores.empty()) {
    return {};
  }
  // Min-max normalize the similarity scores so the prior's [0, 1] scale
  // composes with any selection metric (inner products are unbounded).
  float lo = 0.0f;
  float hi = 0.0f;
  min_max(centroid_scores, lo, hi);
  const double range = static_cast<double>(hi) - static_cast<double>(lo);

  const std::unordered_set<Index> excluded(exclude.begin(), exclude.end());
  std::vector<std::pair<double, Index>> ranked;
  ranked.reserve(centroid_scores.size());
  for (Index c = 0; c < static_cast<Index>(centroid_scores.size()); ++c) {
    if (excluded.contains(c)) {
      continue;
    }
    const double similarity =
        range > 0.0
            ? (static_cast<double>(centroid_scores[static_cast<std::size_t>(c)]) -
               static_cast<double>(lo)) /
                  range
            : 0.0;
    const double prior =
        c < static_cast<Index>(prior_.size()) ? prior_[static_cast<std::size_t>(c)]
                                              : 0.0;
    ranked.emplace_back(similarity + config_.prior_weight * prior, c);
  }
  const std::size_t take =
      std::min(ranked.size(), static_cast<std::size_t>(config_.max_clusters));
  // Ties break on the lower cluster id so prediction is a pure function
  // of (scores, prior): (-score, id) ascending.
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(take),
                    ranked.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) {
                        return a.first > b.first;
                      }
                      return a.second < b.second;
                    });
  std::vector<Index> predicted;
  predicted.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    predicted.push_back(ranked[i].second);
  }
  return predicted;
}

void ClusterPrefetcher::on_rebuild(Index cluster_count) {
  expects(cluster_count >= 0, "ClusterPrefetcher: negative cluster count");
  prior_.assign(static_cast<std::size_t>(cluster_count), 0.0);
}

}  // namespace ckv
