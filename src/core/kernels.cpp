#include "core/kernels.hpp"

#include <algorithm>
#include <limits>

#include "tensor/vec_ops.hpp"
#include "util/parallel.hpp"

namespace ckv {

namespace {

/// Chunk size for pool dispatch: keep every chunk at roughly this many
/// multiply-accumulates so small batches stay serial and large ones split
/// into enough chunks to balance.
constexpr Index kGrainFlops = 1 << 16;

Index score_grain(Index work_per_item) noexcept {
  return std::max<Index>(1, kGrainFlops / std::max<Index>(1, work_per_item));
}

/// Per-centroid argmax adjustments reducing every metric to
/// argmax(dot * mult + bias): cosine multiplies by 1/|c| (the key norm is
/// constant per key and drops out), L2 subtracts |c|^2 / 2 (|k|^2 drops
/// out), inner product is the raw dot.
void argmax_adjustments(const Matrix& centroids, DistanceMetric metric,
                        std::vector<float>& mult, std::vector<float>& bias) {
  const std::size_t c_count = static_cast<std::size_t>(centroids.rows());
  mult.assign(c_count, 1.0f);
  bias.assign(c_count, 0.0f);
  if (metric == DistanceMetric::kInnerProduct) {
    return;
  }
  for (Index c = 0; c < centroids.rows(); ++c) {
    const double norm = norm2(centroids.row(c));
    if (metric == DistanceMetric::kCosine) {
      mult[static_cast<std::size_t>(c)] =
          norm > 0.0 ? static_cast<float>(1.0 / norm) : 0.0f;
    } else {
      bias[static_cast<std::size_t>(c)] = static_cast<float>(-0.5 * norm * norm);
    }
  }
}

}  // namespace

void batched_scores(const Matrix& rows, Index row_begin, Index row_end,
                    std::span<const float> query, DistanceMetric metric,
                    std::span<float> out, float scale) {
  expects(static_cast<Index>(query.size()) == rows.cols(),
          "batched_scores: query width mismatch");
  expects(row_begin >= 0 && row_begin <= row_end && row_end <= rows.rows(),
          "batched_scores: row range out of bounds");
  expects(static_cast<Index>(out.size()) == row_end - row_begin,
          "batched_scores: output size mismatch");
  if (row_begin == row_end) {
    return;
  }
  const Index dim = rows.cols();
  const float* base = rows.flat().data();  // hoisted: no per-row bounds check
  const auto row_at = [base, dim](Index r) {
    return std::span<const float>(base + r * dim, static_cast<std::size_t>(dim));
  };
  // The query norm is shared by every cosine score; compute it once.
  const float query_norm = metric == DistanceMetric::kCosine ? norm2_f32(query) : 0.0f;
  parallel_for_range(row_begin, row_end, score_grain(dim), [&](Index begin, Index end) {
    switch (metric) {
      case DistanceMetric::kInnerProduct:
        for (Index r = begin; r < end; ++r) {
          out[static_cast<std::size_t>(r - row_begin)] =
              dot_f32(query, row_at(r)) * scale;
        }
        break;
      case DistanceMetric::kCosine:
        for (Index r = begin; r < end; ++r) {
          const auto row = row_at(r);
          const float row_norm = norm2_f32(row);
          out[static_cast<std::size_t>(r - row_begin)] =
              query_norm == 0.0f || row_norm == 0.0f
                  ? 0.0f
                  : dot_f32(query, row) / (query_norm * row_norm) * scale;
        }
        break;
      case DistanceMetric::kL2:
        for (Index r = begin; r < end; ++r) {
          out[static_cast<std::size_t>(r - row_begin)] =
              -squared_l2_f32(query, row_at(r)) * scale;
        }
        break;
    }
  });
}

void batched_scores(const Matrix& rows, std::span<const float> query,
                    DistanceMetric metric, std::span<float> out, float scale) {
  batched_scores(rows, 0, rows.rows(), query, metric, out, scale);
}

void batched_dot_at(const Matrix& rows, std::span<const Index> positions,
                    std::span<const float> query, std::span<float> out, float scale) {
  expects(static_cast<Index>(query.size()) == rows.cols(),
          "batched_dot_at: query width mismatch");
  expects(out.size() == positions.size(), "batched_dot_at: output size mismatch");
  const Index n = static_cast<Index>(positions.size());
  for (const Index p : positions) {
    expects(p >= 0 && p < rows.rows(), "batched_dot_at: position out of range");
  }
  const Index dim = rows.cols();
  const float* base = rows.flat().data();
  parallel_for_range(0, n, score_grain(dim), [&](Index begin, Index end) {
    for (Index i = begin; i < end; ++i) {
      const std::span<const float> row(
          base + positions[static_cast<std::size_t>(i)] * dim,
          static_cast<std::size_t>(dim));
      out[static_cast<std::size_t>(i)] = dot_f32(query, row) * scale;
    }
  });
}

void batched_pair_scores(const Matrix& a, const Matrix& b,
                         std::span<const Index> pairs, DistanceMetric metric,
                         std::span<float> out) {
  expects(a.cols() == b.cols(), "batched_pair_scores: dim mismatch");
  expects(pairs.size() == static_cast<std::size_t>(a.rows()),
          "batched_pair_scores: one pair per row of a");
  expects(out.size() == pairs.size(), "batched_pair_scores: output size mismatch");
  for (const Index p : pairs) {
    expects(p >= 0 && p < b.rows(), "batched_pair_scores: pair index out of range");
  }
  parallel_for_range(0, a.rows(), score_grain(a.cols()), [&](Index begin, Index end) {
    for (Index i = begin; i < end; ++i) {
      const auto row_a = a.row(i);
      const auto row_b = b.row(pairs[static_cast<std::size_t>(i)]);
      float score = 0.0f;
      switch (metric) {
        case DistanceMetric::kInnerProduct:
          score = dot_f32(row_a, row_b);
          break;
        case DistanceMetric::kCosine: {
          const float na = norm2_f32(row_a);
          const float nb = norm2_f32(row_b);
          score = na == 0.0f || nb == 0.0f ? 0.0f : dot_f32(row_a, row_b) / (na * nb);
          break;
        }
        case DistanceMetric::kL2:
          score = -squared_l2_f32(row_a, row_b);
          break;
      }
      out[static_cast<std::size_t>(i)] = score;
    }
  });
}

std::vector<Index> batched_argmax(const Matrix& keys, const Matrix& centroids,
                                  DistanceMetric metric) {
  expects(keys.cols() == centroids.cols(), "batched_argmax: dim mismatch");
  expects(centroids.rows() > 0, "batched_argmax: need at least one centroid");
  const Index n = keys.rows();
  const Index c_count = centroids.rows();
  const Index dim = keys.cols();

  std::vector<float> mult;
  std::vector<float> bias;
  argmax_adjustments(centroids, metric, mult, bias);

  // GEMM-style tiling: the key chunk handed to each worker streams the
  // centroid block once per key; per-(key, centroid) reductions use the
  // fixed-lane dot_f32 walk, so a score is bit-identical however the keys
  // are chunked across workers.
  std::vector<Index> labels(static_cast<std::size_t>(n), 0);
  const float* centroid_base = centroids.flat().data();
  const Index grain = score_grain(c_count * dim);
  parallel_for_range(0, n, grain, [&](Index begin, Index end) {
    for (Index i = begin; i < end; ++i) {
      const auto key = keys.row(i);
      float best = -std::numeric_limits<float>::infinity();
      Index best_c = 0;
      for (Index c = 0; c < c_count; ++c) {
        const std::span<const float> cen(centroid_base + c * dim,
                                         static_cast<std::size_t>(dim));
        const float score = dot_f32(key, cen) * mult[static_cast<std::size_t>(c)] +
                            bias[static_cast<std::size_t>(c)];
        if (score > best) {
          best = score;
          best_c = c;
        }
      }
      labels[static_cast<std::size_t>(i)] = best_c;
    }
  });
  return labels;
}

std::vector<Index> assign_labels(const Matrix& keys, const Matrix& centroids,
                                 DistanceMetric metric) {
  return batched_argmax(keys, centroids, metric);
}

void centroid_update(const Matrix& keys, std::span<const Index> labels,
                     const Matrix& previous, Index channel_partitions,
                     Matrix& centroids_out, std::vector<Index>& counts_out) {
  expects(static_cast<Index>(labels.size()) == keys.rows(),
          "centroid_update: labels size must match key rows");
  expects(channel_partitions > 0, "centroid_update: partitions must be positive");
  expects(previous.cols() == keys.cols(), "centroid_update: dim mismatch");
  const Index num_clusters = previous.rows();
  const Index dim = keys.cols();

  centroids_out = Matrix(num_clusters, dim);
  counts_out.assign(static_cast<std::size_t>(num_clusters), 0);

  for (const Index label : labels) {
    expects(label >= 0 && label < num_clusters, "centroid_update: label out of range");
    ++counts_out[static_cast<std::size_t>(label)];
  }

  // Mirrors the CUDA kernel's shape: the channel dimension is split into
  // `channel_partitions` chunks; within a chunk, tokens are visited with a
  // stride equal to the number of concurrent "lanes" so that adjacent
  // lanes touch distant (likely differently-labeled) tokens. Partitions
  // accumulate into disjoint channel ranges, so they are the parallel
  // dimension here too — and because the token walk within a channel is
  // fixed, the accumulated sums are bit-identical for every worker count.
  const Index chunk = (dim + channel_partitions - 1) / channel_partitions;
  const Index lanes = channel_partitions;  // one lane per channel chunk
  parallel_for_range(0, channel_partitions, /*grain=*/1, [&](Index part_begin,
                                                             Index part_end) {
    for (Index part = part_begin; part < part_end; ++part) {
      const Index c_begin = part * chunk;
      const Index c_end = std::min(dim, c_begin + chunk);
      if (c_begin >= c_end) {
        continue;
      }
      for (Index start = 0; start < lanes; ++start) {
        for (Index t = start; t < keys.rows(); t += lanes) {
          const Index label = labels[static_cast<std::size_t>(t)];
          const auto key = keys.row(t);
          auto acc = centroids_out.row(label);
          for (Index c = c_begin; c < c_end; ++c) {
            acc[static_cast<std::size_t>(c)] += key[static_cast<std::size_t>(c)];
          }
        }
      }
    }
  });

  for (Index k = 0; k < num_clusters; ++k) {
    const Index n = counts_out[static_cast<std::size_t>(k)];
    auto row = centroids_out.row(k);
    if (n == 0) {
      copy_to(previous.row(k), row);
      continue;
    }
    const float inv = 1.0f / static_cast<float>(n);
    for (float& v : row) {
      v *= inv;
    }
  }
}

Index assignment_flops(Index num_keys, Index num_clusters, Index head_dim) noexcept {
  return num_keys * num_clusters * head_dim;
}

}  // namespace ckv
