#include "core/kernels.hpp"

#include <limits>

#include "tensor/vec_ops.hpp"

namespace ckv {

std::vector<Index> assign_labels(const Matrix& keys, const Matrix& centroids,
                                 DistanceMetric metric) {
  expects(keys.cols() == centroids.cols(), "assign_labels: dim mismatch");
  expects(centroids.rows() > 0, "assign_labels: need at least one centroid");
  const Index n = keys.rows();
  const Index c_count = centroids.rows();
  const Index dim = keys.cols();

  // All three metrics reduce to an argmax over (dot + per-centroid
  // adjustment) for a fixed key, so the inner loop is a pure dot product:
  //   cosine: argmax dot / |c|            (the key norm drops out)
  //   L2:     argmin |k-c|^2 = argmax (dot - |c|^2 / 2)
  //   IP:     argmax dot
  std::vector<double> inv_norm(static_cast<std::size_t>(c_count), 1.0);
  std::vector<double> half_norm_sq(static_cast<std::size_t>(c_count), 0.0);
  for (Index c = 0; c < c_count; ++c) {
    const double norm = norm2(centroids.row(c));
    inv_norm[static_cast<std::size_t>(c)] = norm > 0.0 ? 1.0 / norm : 0.0;
    half_norm_sq[static_cast<std::size_t>(c)] = 0.5 * norm * norm;
  }

  std::vector<Index> labels(static_cast<std::size_t>(n), 0);
  for (Index i = 0; i < n; ++i) {
    const float* key = keys.row(i).data();
    double best = -std::numeric_limits<double>::infinity();
    Index best_c = 0;
    for (Index c = 0; c < c_count; ++c) {
      const float* cen = centroids.row(c).data();
      double acc = 0.0;
      for (Index k = 0; k < dim; ++k) {
        acc += static_cast<double>(key[k]) * static_cast<double>(cen[k]);
      }
      double score = acc;
      if (metric == DistanceMetric::kCosine) {
        score = acc * inv_norm[static_cast<std::size_t>(c)];
      } else if (metric == DistanceMetric::kL2) {
        score = acc - half_norm_sq[static_cast<std::size_t>(c)];
      }
      if (score > best) {
        best = score;
        best_c = c;
      }
    }
    labels[static_cast<std::size_t>(i)] = best_c;
  }
  return labels;
}

void centroid_update(const Matrix& keys, std::span<const Index> labels,
                     const Matrix& previous, Index channel_partitions,
                     Matrix& centroids_out, std::vector<Index>& counts_out) {
  expects(static_cast<Index>(labels.size()) == keys.rows(),
          "centroid_update: labels size must match key rows");
  expects(channel_partitions > 0, "centroid_update: partitions must be positive");
  expects(previous.cols() == keys.cols(), "centroid_update: dim mismatch");
  const Index num_clusters = previous.rows();
  const Index dim = keys.cols();

  centroids_out = Matrix(num_clusters, dim);
  counts_out.assign(static_cast<std::size_t>(num_clusters), 0);

  // Mirrors the CUDA kernel's shape: the channel dimension is split into
  // `channel_partitions` chunks; within a chunk, tokens are visited with a
  // stride equal to the number of concurrent "lanes" so that adjacent
  // lanes touch distant (likely differently-labeled) tokens. On a CPU the
  // lanes are sequential, but the traversal order and partitioning are the
  // same so the kernel microbenchmarks expose the same P trade-off.
  const Index chunk = (dim + channel_partitions - 1) / channel_partitions;
  const Index lanes = channel_partitions;  // one lane per channel chunk
  for (Index part = 0; part < channel_partitions; ++part) {
    const Index c_begin = part * chunk;
    const Index c_end = std::min(dim, c_begin + chunk);
    if (c_begin >= c_end) {
      continue;
    }
    for (Index start = 0; start < lanes; ++start) {
      for (Index t = start; t < keys.rows(); t += lanes) {
        const Index label = labels[static_cast<std::size_t>(t)];
        expects(label >= 0 && label < num_clusters,
                "centroid_update: label out of range");
        const auto key = keys.row(t);
        auto acc = centroids_out.row(label);
        for (Index c = c_begin; c < c_end; ++c) {
          acc[static_cast<std::size_t>(c)] += key[static_cast<std::size_t>(c)];
        }
        if (part == 0 && c_begin == 0) {
          ++counts_out[static_cast<std::size_t>(label)];
        }
      }
    }
  }

  for (Index k = 0; k < num_clusters; ++k) {
    const Index n = counts_out[static_cast<std::size_t>(k)];
    auto row = centroids_out.row(k);
    if (n == 0) {
      copy_to(previous.row(k), row);
      continue;
    }
    const float inv = 1.0f / static_cast<float>(n);
    for (float& v : row) {
      v *= inv;
    }
  }
}

Index assignment_flops(Index num_keys, Index num_clusters, Index head_dim) noexcept {
  return num_keys * num_clusters * head_dim;
}

}  // namespace ckv
