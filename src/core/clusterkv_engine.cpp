#include "core/clusterkv_engine.hpp"

#include <algorithm>
#include <string>

#include "core/kernels.hpp"
#include "core/kmeans.hpp"
#include "core/selector_index.hpp"

namespace ckv {

ClusterKVEngine::ClusterKVEngine(Index head_dim, const ClusterKVConfig& config,
                                 Rng rng)
    : config_(config),
      rng_(std::move(rng)),
      tiered_(head_dim, config.element_bytes),
      centroids_(head_dim),
      cache_(config.cache_depth),
      prefetcher_(ClusterPrefetchConfig{config.prefetch_clusters,
                                        config.prefetch_prior_weight,
                                        config.prefetch_prior_decay}) {
  expects(config.sink_tokens >= 0, "ClusterKVEngine: sink_tokens must be >= 0");
  expects(config.decode_interval > 0, "ClusterKVEngine: decode_interval must be > 0");
  expects(config.decode_clusters > 0, "ClusterKVEngine: decode_clusters must be > 0");
}

void ClusterKVEngine::cluster_range(Index begin, Index end, Index cluster_count) {
  if (begin >= end) {
    return;
  }
  const Matrix block_keys = tiered_.store().keys().row_slice(begin, end);
  KMeansConfig kconfig;
  kconfig.num_clusters = std::max<Index>(1, std::min<Index>(cluster_count, end - begin));
  kconfig.metric = config_.cluster_metric;
  kconfig.max_iterations = config_.kmeans_max_iterations;
  kconfig.channel_partitions = config_.channel_partitions;
  kconfig.init = config_.kmeans_init;
  const auto result = kmeans_cluster(block_keys, kconfig, rng_);
  clustering_flops_ += result.iterations *
                       assignment_flops(end - begin, kconfig.num_clusters,
                                        tiered_.store().head_dim());

  // kmeans_cluster compacts degenerate empty clusters away itself, so the
  // result registers directly: every cluster is non-empty and the
  // size/offset indexing invariants hold.
  batches_.push_back({centroids_.cluster_count(), begin});
  centroids_.add_clusters(result.centroids, result.labels, begin);
  // Clustered tokens move to the slow tier (Fig. 5: offload K & V); they
  // come back through the cluster cache on demand.
  tiered_.offload_to_slow(begin, end);
}

RepairOutcome ClusterKVEngine::repair_now() {
  ClusterRepairConfig repair;
  repair.merge_threshold = config_.repair_merge_threshold;
  repair.refine_iterations = std::max<Index>(1, config_.repair_refine_iterations);
  repair.tokens_per_cluster = config_.tokens_per_cluster;
  repair.metric = config_.cluster_metric;
  repair.channel_partitions = config_.channel_partitions;

  std::vector<Index> batch_firsts;
  batch_firsts.reserve(batches_.size());
  for (const ClusterBatch& batch : batches_) {
    batch_firsts.push_back(batch.first_cluster);
  }
  const auto outcome = repair_clusters(centroids_, tiered_.store().keys(),
                                       batch_firsts, sink_count_, &cache_, repair);
  repair_flops_ += outcome.scoring_flops + outcome.refine_flops;
  obs::tracer().instant(
      outcome.changed ? "repair-pass" : "repair-noop",
      {{"flops", outcome.scoring_flops + outcome.refine_flops},
       {"clusters", centroids_.cluster_count()}});
  if (outcome.changed) {
    ++repair_passes_;
    // In-flight prefetches survive the rebuild (remap_window relabels
    // them), but the prediction prior is keyed by the dead cluster ids.
    prefetcher_.on_rebuild(centroids_.cluster_count());
    // The repaired clusters form one joint batch: a later pass (periodic
    // decode repair) merges new decode batches against it, never re-pairs
    // inside it.
    batches_.assign(1, {0, sink_count_});
  }
  return outcome;
}

void ClusterKVEngine::observe_prefill(const Matrix& keys, const Matrix& values) {
  expects(tiered_.size() == 0, "ClusterKVEngine: observe_prefill must come first");
  tiered_.append_block(keys, values);
  const Index n = tiered_.size();
  sink_count_ = std::min<Index>(config_.sink_tokens, n);
  const Index clustered = n - sink_count_;
  if (clustered > 0) {
    const Index c0 = config_.fixed_cluster_count > 0
                         ? config_.fixed_cluster_count
                         : default_cluster_count(clustered, config_.tokens_per_cluster);
    cluster_range(sink_count_, n, c0);
  }
}

void ClusterKVEngine::observe_prefill_chunk(const Matrix& keys, const Matrix& values,
                                            bool last_chunk) {
  const Index begin = tiered_.size();
  tiered_.append_block(keys, values);
  const Index end = tiered_.size();
  // The sink prefix can span chunks when the first chunk is smaller than
  // sink_tokens: keep extending it while every prior token is a sink.
  if (sink_count_ == begin) {
    sink_count_ = std::min<Index>(config_.sink_tokens, end);
  }
  for (Index p = std::max<Index>(begin, sink_count_); p < end; ++p) {
    pending_positions_.push_back(p);
  }
  const Index pending = pending_count();
  if (pending > 0 && (last_chunk || pending >= config_.tokens_per_cluster)) {
    if (last_chunk && pending < config_.tokens_per_cluster && !batches_.empty()) {
      // End-of-prompt tail fold: a remainder shorter than a clustering
      // window would become a degenerate tail cluster that repair then has
      // to clean up. Re-cluster the preceding batch together with the tail
      // instead — the batch's clusters are the most recently registered,
      // so the store can simply pop them before the joint pass.
      const ClusterBatch tail_into = batches_.back();
      centroids_.truncate(tail_into.first_cluster);
      batches_.pop_back();
      // Selections between chunks may have cached the popped cluster ids;
      // forgetting the window (and any prefetches issued against those
      // ids) keeps it honest (prefill-time windows are empty in serving,
      // where selection starts after the final chunk). The dropped
      // speculation is a misprediction: the rebuild made it obsolete, no
      // budget pressure was involved.
      cancel_prefetches(obs::FetchCancelReason::kMisprediction);
      cache_.clear_window();
      pending_positions_.clear();
      const Index prompt_end = end;
      cluster_range(tail_into.begin_pos, prompt_end,
                    default_cluster_count(prompt_end - tail_into.begin_pos,
                                          config_.tokens_per_cluster));
      // Like a repair rebuild, the fold reassigned cluster ids from
      // tail_into.first_cluster on; a prior warmed by inter-chunk
      // selections would now boost unrelated clusters.
      prefetcher_.on_rebuild(centroids_.cluster_count());
    } else {
      flush_pending_clusters(
          default_cluster_count(pending, config_.tokens_per_cluster));
    }
  }
  if (last_chunk && repair_enabled()) {
    repair_now();
  }
}

void ClusterKVEngine::observe_decode(std::span<const float> key,
                                     std::span<const float> value) {
  tiered_.append(key, value);
  pending_positions_.push_back(tiered_.size() - 1);
  if (static_cast<Index>(pending_positions_.size()) >= config_.decode_interval) {
    flush_pending();
  }
  ++decode_steps_;
  if (repair_enabled() && config_.repair_decode_interval > 0 &&
      decode_steps_ % config_.repair_decode_interval == 0) {
    // Periodic repair folds decode-side cluster batches back into the
    // prompt's semantic groups (metadata only; the pending tail and
    // residency are untouched, so this is preemption-safe mid-decode).
    repair_now();
  }
}

void ClusterKVEngine::flush_pending() { flush_pending_clusters(config_.decode_clusters); }

void ClusterKVEngine::flush_pending_clusters(Index cluster_count) {
  if (pending_positions_.empty()) {
    return;  // zero pending: no clusters, no clustering_flops_ charged
  }
  const Index begin = pending_positions_.front();
  const Index end = pending_positions_.back() + 1;
  // cluster_range clamps the cluster count to the token count, so a
  // partial batch gets at most one cluster per token and its flop billing
  // covers the clamped problem, not phantom centroids.
  cluster_range(begin, end, cluster_count);
  pending_positions_.clear();
}

Index ClusterKVEngine::cancel_prefetches(obs::FetchCancelReason reason) {
  const auto in_flight = cache_.cancel_fetches();
  return tiered_.cancel_fetch(in_flight, reason);
}

Index ClusterKVEngine::release_fast_tier() {
  // Pending decode tokens are the contiguous tail past the last flush;
  // everything clustered and non-sink is reclaimable. In-flight prefetches
  // are dropped first: a preemption landing mid-fetch frees the reserved
  // bytes along with the resident ones. Only *moved* tokens are returned —
  // dropping speculation alone is not a preemption (callers count
  // preemptions off this value, and a sync-fetch run must count the same).
  cancel_prefetches(obs::FetchCancelReason::kEnforcement);
  const Index pending_begin =
      pending_positions_.empty() ? tiered_.size() : pending_positions_.front();
  std::vector<Index> victims;
  for (const Index p : tiered_.fast_positions()) {
    if (p >= sink_count_ && p < pending_begin) {
      victims.push_back(p);
    }
  }
  const Index moved = tiered_.offload_positions(victims);
  cache_.clear_window();
  return moved;
}

SelectionResult ClusterKVEngine::select(std::span<const float> query, Index budget) {
  expects(budget >= 0, "ClusterKVEngine::select: budget must be non-negative");
  SelectionResult result;

  // Sinks and not-yet-clustered decode tokens are always attended: they are
  // fast-tier resident by construction (§III-B retains the first 16 tokens;
  // pending tokens have not been offloaded yet).
  std::vector<Index> indices;
  for (Index s = 0; s < sink_count_; ++s) {
    indices.push_back(s);
  }
  indices.insert(indices.end(), pending_positions_.begin(), pending_positions_.end());

  const Index always_on = static_cast<Index>(indices.size());
  const Index cluster_budget = std::max<Index>(0, budget - always_on);

  if (centroids_.cluster_count() > 0 && cluster_budget > 0) {
    const auto scores = centroids_.scores(query, config_.selection_metric);
    ClusterSelection selection;
    if (degraded_step_) {
      // Degraded (fault) step: the slow tier is unreachable, so selection
      // runs over a filtered parallel view of only the clusters whose
      // every token is already fast-resident — filtering *before*
      // select_clusters keeps the budget/trim arithmetic identical to a
      // normal step over a smaller candidate set, and guarantees the
      // cache step below finds nothing to fetch. In-flight prefetches are
      // excluded too (an in-flight token is not yet resident).
      const auto sizes = centroids_.cluster_sizes();
      std::vector<float> kept_scores;
      std::vector<Index> kept_sizes;
      std::vector<Index> kept_ids;
      for (Index c = 0; c < centroids_.cluster_count(); ++c) {
        bool resident = true;
        for (const Index token : centroids_.tokens_of(c)) {
          if (!tiered_.is_fast_resident(token)) {
            resident = false;
            break;
          }
        }
        if (resident) {
          kept_scores.push_back(scores[static_cast<std::size_t>(c)]);
          kept_sizes.push_back(sizes[static_cast<std::size_t>(c)]);
          kept_ids.push_back(c);
        }
      }
      selection = select_clusters(kept_scores, kept_sizes, cluster_budget);
      for (Index& c : selection.clusters) {
        c = kept_ids[static_cast<std::size_t>(c)];  // back to real ids
      }
    } else {
      selection =
          select_clusters(scores, centroids_.cluster_sizes(), cluster_budget);
    }
    const auto indexed = gather_selected_tokens(centroids_, selection, cluster_budget);

    // Resolve the prefetches issued after the previous step: selected
    // in-flight tokens land (their copy overlapped the intervening
    // compute), unselected ones were mispredictions and cancel. Only the
    // remaining demand misses stall this step.
    const auto cache_step = cache_.step(indexed.per_cluster);
    tiered_.complete_fetch(cache_step.prefetched_tokens);
    tiered_.cancel_fetch(cache_step.wasted_tokens,
                         obs::FetchCancelReason::kMisprediction);
    tiered_.ensure_resident(cache_step.missing_tokens);
    tiered_.drop_from_fast(cache_step.evicted_tokens);

    indices.insert(indices.end(), indexed.token_positions.begin(),
                   indexed.token_positions.end());
    result.representations_scored = centroids_.cluster_count();
    if (degraded_step_) {
      // No byte crossed the wire: every attended token was fast-resident
      // (window misses here are cache-window bookkeeping over resident
      // tokens, e.g. after a cleared window — ensure_resident moved
      // nothing). Billing them as fetches would charge phantom traffic.
      result.tokens_fetched = 0;
      result.tokens_cache_hit = cache_step.hits + cache_step.misses;
      result.tokens_prefetch_hit = 0;
    } else {
      result.tokens_fetched = cache_step.misses;
      result.tokens_cache_hit = cache_step.hits;
      result.tokens_prefetch_hit = cache_step.prefetch_hits;
    }

    if (prefetcher_.enabled() && !degraded_step_) {
      // Predict the next step's clusters from this query's scores plus
      // the recency/frequency prior, and issue their fetches so the
      // copies overlap this step's attention. Pure metadata: neither the
      // prediction nor the issued fetches influence any future selection.
      // Only clusters whose every token is already window-resident are
      // excluded as candidates — the *trimmed* last cluster stays in,
      // because the next step's shifted trim boundary over the same
      // cluster is one of the likeliest miss sources (issue_fetch drops
      // the resident prefix, so only its tail is actually fetched).
      prefetcher_.observe_selection(selection.clusters, centroids_.cluster_count());
      std::vector<Index> fully_resident;
      for (const auto& [cluster, taken] : indexed.per_cluster) {
        if (static_cast<Index>(taken.size()) == centroids_.size_of(cluster)) {
          fully_resident.push_back(cluster);
        }
      }
      const auto predicted = prefetcher_.predict(scores, fully_resident);
      // Candidate tokens are pre-filtered by *store* residency: the window
      // usually equals fast residency for clustered tokens, but a cleared
      // window (tail fold, preemption) can leave tokens fast-resident yet
      // window-absent — recording those cache-side while begin_fetch skips
      // them store-side would let the two in-flight views diverge.
      std::vector<std::vector<Index>> candidate_tokens;
      std::vector<std::pair<Index, std::span<const Index>>> candidates;
      // The reserve is load-bearing: candidates holds spans into
      // candidate_tokens, which therefore must never reallocate.
      candidate_tokens.reserve(predicted.size());
      candidates.reserve(predicted.size());
      for (const Index cluster : predicted) {
        std::vector<Index> tokens;
        for (const Index token : centroids_.tokens_of(cluster)) {
          if (!tiered_.is_fast_resident(token)) {
            tokens.push_back(token);
          }
        }
        if (!tokens.empty()) {
          candidate_tokens.push_back(std::move(tokens));
          candidates.emplace_back(cluster, candidate_tokens.back());
        }
      }
      const auto issued = cache_.issue_fetches(candidates);
      result.tokens_prefetch_issued += tiered_.begin_fetch(issued);
    }
  }

  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  result.indices = std::move(indices);
  result.scoring_dim = tiered_.store().head_dim();
  return result;
}

Index ClusterKVEngine::context_size() const { return tiered_.size(); }

SelectorFactory make_clusterkv_factory(const ClusterKVConfig& config,
                                       std::uint64_t seed) {
  return [config, seed](Index layer, Index head, Index head_dim) {
    const auto tag = "clusterkv/l" + std::to_string(layer) + "/h" + std::to_string(head);
    return std::make_unique<ClusterKVEngine>(head_dim, config,
                                             Rng(derive_seed(seed, tag)));
  };
}

}  // namespace ckv
