// Selection and indexing (§III-C, §IV-C / Fig. 8): sort clusters by their
// centroid attention weights, take clusters until the token budget is
// filled, trim the last cluster to the budget, and emit the flat list of
// selected token positions I_T.
#pragma once

#include <span>
#include <vector>

#include "core/centroid_store.hpp"
#include "util/common.hpp"

namespace ckv {

/// Result of the cluster-level phase of selection.
struct ClusterSelection {
  /// Selected clusters, descending by score.
  std::vector<Index> clusters;
  /// Total size of the selected clusters before trimming.
  Index total_tokens = 0;
  /// True when total_tokens exceeded the budget and the last cluster must
  /// be cut (§IV-C: "trims tokens from the last selected cluster").
  bool trimmed = false;
};

/// Picks clusters in descending score order until their cumulative size
/// reaches `budget`. scores and sizes are parallel arrays over clusters.
ClusterSelection select_clusters(std::span<const float> scores,
                                 std::span<const Index> sizes, Index budget);

/// Expands a ClusterSelection into token positions, trimming the last
/// cluster so at most `budget` tokens are returned. Within each cluster,
/// tokens come in ascending position order; output preserves cluster
/// order (the caller sorts if it needs ascending positions). Also returns
/// the per-cluster (cluster, tokens) breakdown for the cluster cache.
struct IndexedSelection {
  std::vector<Index> token_positions;
  /// Per selected cluster: its id and the (possibly trimmed) tokens taken.
  std::vector<std::pair<Index, std::vector<Index>>> per_cluster;
};
IndexedSelection gather_selected_tokens(const CentroidStore& store,
                                        const ClusterSelection& selection,
                                        Index budget);

}  // namespace ckv
