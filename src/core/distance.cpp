#include "core/distance.hpp"

#include "tensor/vec_ops.hpp"

namespace ckv {

double similarity(DistanceMetric metric, std::span<const float> a,
                  std::span<const float> b) {
  switch (metric) {
    case DistanceMetric::kCosine:
      return cosine_similarity(a, b);
    case DistanceMetric::kL2:
      return -squared_l2_distance(a, b);
    case DistanceMetric::kInnerProduct:
      return dot(a, b);
  }
  throw std::logic_error("similarity: unknown metric");
}

DistanceMetric parse_distance_metric(std::string_view name) {
  if (name == "cosine") {
    return DistanceMetric::kCosine;
  }
  if (name == "l2" || name == "L2") {
    return DistanceMetric::kL2;
  }
  if (name == "ip" || name == "inner-product") {
    return DistanceMetric::kInnerProduct;
  }
  throw std::invalid_argument("parse_distance_metric: unknown metric name: " +
                              std::string(name));
}

std::string to_string(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kCosine:
      return "cosine";
    case DistanceMetric::kL2:
      return "L2";
    case DistanceMetric::kInnerProduct:
      return "inner-product";
  }
  return "unknown";
}

}  // namespace ckv
