#include "core/centroid_store.hpp"

#include "core/kernels.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {

CentroidStore::CentroidStore(Index head_dim) : head_dim_(head_dim) {
  expects(head_dim > 0, "CentroidStore: head_dim must be positive");
  cluster_offsets_.push_back(0);
}

void CentroidStore::add_clusters(const Matrix& centroids,
                                 std::span<const Index> labels,
                                 Index position_offset) {
  expects(centroids.cols() == head_dim_, "CentroidStore::add_clusters: dim mismatch");
  expects(position_offset >= 0, "CentroidStore::add_clusters: negative offset");
  const Index local_clusters = centroids.rows();
  expects(local_clusters > 0, "CentroidStore::add_clusters: no clusters given");

  // Counting sort of the incoming tokens by local label keeps each
  // cluster's token list in ascending position order (stable).
  std::vector<Index> local_sizes(static_cast<std::size_t>(local_clusters), 0);
  for (const Index label : labels) {
    expects(label >= 0 && label < local_clusters,
            "CentroidStore::add_clusters: label out of range");
    ++local_sizes[static_cast<std::size_t>(label)];
  }
  std::vector<Index> local_offsets(static_cast<std::size_t>(local_clusters) + 1, 0);
  for (Index c = 0; c < local_clusters; ++c) {
    local_offsets[static_cast<std::size_t>(c) + 1] =
        local_offsets[static_cast<std::size_t>(c)] +
        local_sizes[static_cast<std::size_t>(c)];
  }
  const std::size_t base = sorted_indices_.size();
  sorted_indices_.resize(base + labels.size());
  std::vector<Index> cursor(local_offsets.begin(), local_offsets.end() - 1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const Index label = labels[i];
    const std::size_t slot = base + static_cast<std::size_t>(
                                        cursor[static_cast<std::size_t>(label)]++);
    sorted_indices_[slot] = position_offset + static_cast<Index>(i);
  }

  for (Index c = 0; c < local_clusters; ++c) {
    centroids_.append_row(centroids.row(c));
    cluster_sizes_.push_back(local_sizes[static_cast<std::size_t>(c)]);
    cluster_offsets_.push_back(cluster_offsets_.back() +
                               local_sizes[static_cast<std::size_t>(c)]);
  }
}

void CentroidStore::truncate(Index keep) {
  expects(keep >= 0 && keep <= cluster_count(),
          "CentroidStore::truncate: keep out of range");
  if (keep == cluster_count()) {
    return;
  }
  centroids_ = centroids_.row_slice(0, keep);
  cluster_sizes_.resize(static_cast<std::size_t>(keep));
  cluster_offsets_.resize(static_cast<std::size_t>(keep) + 1);
  sorted_indices_.resize(
      static_cast<std::size_t>(cluster_offsets_[static_cast<std::size_t>(keep)]));
}

void CentroidStore::rebuild(const Matrix& centroids, std::span<const Index> labels,
                            Index position_offset) {
  centroids_ = Matrix();
  cluster_sizes_.clear();
  cluster_offsets_.assign(1, 0);
  sorted_indices_.clear();
  add_clusters(centroids, labels, position_offset);
}

Index CentroidStore::cluster_count() const noexcept {
  return static_cast<Index>(cluster_sizes_.size());
}

Index CentroidStore::token_count() const noexcept {
  return static_cast<Index>(sorted_indices_.size());
}

std::span<const Index> CentroidStore::tokens_of(Index cluster) const {
  expects(cluster >= 0 && cluster < cluster_count(),
          "CentroidStore::tokens_of: cluster out of range");
  const auto begin = static_cast<std::size_t>(
      cluster_offsets_[static_cast<std::size_t>(cluster)]);
  const auto end = static_cast<std::size_t>(
      cluster_offsets_[static_cast<std::size_t>(cluster) + 1]);
  return std::span<const Index>(sorted_indices_).subspan(begin, end - begin);
}

Index CentroidStore::size_of(Index cluster) const {
  expects(cluster >= 0 && cluster < cluster_count(),
          "CentroidStore::size_of: cluster out of range");
  return cluster_sizes_[static_cast<std::size_t>(cluster)];
}

std::vector<float> CentroidStore::scores(std::span<const float> query,
                                         DistanceMetric metric) const {
  expects(static_cast<Index>(query.size()) == head_dim_,
          "CentroidStore::scores: query width mismatch");
  std::vector<float> out(static_cast<std::size_t>(cluster_count()));
  batched_scores(centroids_, query, metric, out);
  return out;
}

}  // namespace ckv
