#include "core/kmeans.hpp"

#include <algorithm>
#include <limits>

#include "core/kernels.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {

namespace {

/// Re-seeds empty clusters with the keys that are worst-served by their
/// current assignment (deterministic: lowest similarity first).
void reseed_empty_clusters(const Matrix& keys, const KMeansConfig& config,
                           std::vector<Index>& labels, Matrix& centroids,
                           const std::vector<Index>& counts) {
  std::vector<Index> empty;
  for (Index c = 0; c < centroids.rows(); ++c) {
    if (counts[static_cast<std::size_t>(c)] == 0) {
      empty.push_back(c);
    }
  }
  if (empty.empty()) {
    return;
  }
  // Rank keys by how poorly they match their assigned centroid.
  std::vector<float> fit(static_cast<std::size_t>(keys.rows()));
  for (Index i = 0; i < keys.rows(); ++i) {
    fit[static_cast<std::size_t>(i)] = static_cast<float>(similarity(
        config.metric, keys.row(i), centroids.row(labels[static_cast<std::size_t>(i)])));
  }
  std::vector<Index> order(static_cast<std::size_t>(keys.rows()));
  for (Index i = 0; i < keys.rows(); ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  std::sort(order.begin(), order.end(), [&fit](Index a, Index b) {
    const float fa = fit[static_cast<std::size_t>(a)];
    const float fb = fit[static_cast<std::size_t>(b)];
    if (fa != fb) {
      return fa < fb;
    }
    return a < b;
  });
  std::size_t next = 0;
  for (const Index c : empty) {
    if (next >= order.size()) {
      break;
    }
    const Index key_row = order[next++];
    copy_to(keys.row(key_row), centroids.row(c));
    labels[static_cast<std::size_t>(key_row)] = c;
  }
}

}  // namespace

namespace {

/// k-means++ seeding: each next centroid is a key sampled with probability
/// proportional to its distance from the nearest centroid chosen so far.
Matrix plus_plus_seeds(const Matrix& keys, Index c, DistanceMetric metric, Rng& rng) {
  Matrix centroids(c, keys.cols());
  const Index first = rng.uniform_int(0, keys.rows() - 1);
  copy_to(keys.row(first), centroids.row(0));

  // nearest[i] = similarity of key i to its closest chosen centroid.
  std::vector<double> nearest(static_cast<std::size_t>(keys.rows()),
                              -std::numeric_limits<double>::infinity());
  for (Index chosen = 1; chosen < c; ++chosen) {
    std::vector<double> weights(static_cast<std::size_t>(keys.rows()));
    double total = 0.0;
    for (Index i = 0; i < keys.rows(); ++i) {
      nearest[static_cast<std::size_t>(i)] =
          std::max(nearest[static_cast<std::size_t>(i)],
                   similarity(metric, keys.row(i), centroids.row(chosen - 1)));
      // Convert similarity to a non-negative "distance" weight. For cosine
      // this is the paper's D = 1 - cos; for L2 the squared distance; for
      // inner product a shifted gap to the best match.
      const double w = metric == DistanceMetric::kL2
                           ? -nearest[static_cast<std::size_t>(i)]
                           : 1.0 - nearest[static_cast<std::size_t>(i)];
      weights[static_cast<std::size_t>(i)] = std::max(w, 0.0);
      total += weights[static_cast<std::size_t>(i)];
    }
    Index pick;
    if (total <= 0.0) {
      pick = rng.uniform_int(0, keys.rows() - 1);  // degenerate: all identical
    } else {
      pick = rng.weighted_choice(weights);
    }
    copy_to(keys.row(pick), centroids.row(chosen));
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans_cluster(const Matrix& keys, const KMeansConfig& config, Rng& rng) {
  expects(keys.rows() > 0, "kmeans_cluster: need at least one key");
  expects(config.num_clusters >= 1, "kmeans_cluster: num_clusters must be >= 1");
  const Index c = std::min<Index>(config.num_clusters, keys.rows());

  KMeansResult result;
  if (config.init == KMeansInit::kPlusPlus) {
    result.centroids = plus_plus_seeds(keys, c, config.metric, rng);
  } else {
    // Initial centroids: randomly sampled key vectors (paper §III-B).
    result.centroids = Matrix(c, keys.cols());
    const auto seeds = rng.sample_without_replacement(keys.rows(), c);
    for (Index i = 0; i < c; ++i) {
      copy_to(keys.row(seeds[static_cast<std::size_t>(i)]), result.centroids.row(i));
    }
  }

  result.labels.assign(static_cast<std::size_t>(keys.rows()), -1);
  std::vector<Index> counts;
  for (Index iter = 0; iter < config.max_iterations; ++iter) {
    auto labels = assign_labels(keys, result.centroids, config.metric);
    result.iterations = iter + 1;
    if (labels == result.labels) {
      result.converged = true;
      break;
    }
    result.labels = std::move(labels);
    Matrix updated;
    centroid_update(keys, result.labels, result.centroids, config.channel_partitions,
                    updated, counts);
    result.centroids = std::move(updated);
    reseed_empty_clusters(keys, config, result.labels, result.centroids, counts);
  }
  return result;
}

Index default_cluster_count(Index length, Index tokens_per_cluster) noexcept {
  if (length <= 0) {
    return 0;
  }
  if (tokens_per_cluster <= 0) {
    return 1;
  }
  return std::max<Index>(1, length / tokens_per_cluster);
}

}  // namespace ckv
