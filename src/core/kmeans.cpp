#include "core/kmeans.hpp"

#include <algorithm>
#include <limits>

#include "core/kernels.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {

namespace {

/// Re-seeds empty clusters with the keys that are worst-served by their
/// current assignment (deterministic: lowest similarity first). With the
/// effective cluster count clamped to keys.rows() there are always at
/// least as many keys as empty clusters, so every empty cluster gets a
/// fresh seed; the final compaction pass still catches anything left
/// hollow by a degenerate last iteration.
void reseed_empty_clusters(const Matrix& keys, const KMeansConfig& config,
                           std::vector<Index>& labels, Matrix& centroids,
                           const std::vector<Index>& counts) {
  std::vector<Index> empty;
  for (Index c = 0; c < centroids.rows(); ++c) {
    if (counts[static_cast<std::size_t>(c)] == 0) {
      empty.push_back(c);
    }
  }
  if (empty.empty()) {
    return;
  }
  // Rank keys by how poorly they match their assigned centroid.
  std::vector<float> fit(static_cast<std::size_t>(keys.rows()));
  batched_pair_scores(keys, centroids, labels, config.metric, fit);
  std::vector<Index> order(static_cast<std::size_t>(keys.rows()));
  for (Index i = 0; i < keys.rows(); ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  std::sort(order.begin(), order.end(), [&fit](Index a, Index b) {
    const float fa = fit[static_cast<std::size_t>(a)];
    const float fb = fit[static_cast<std::size_t>(b)];
    if (fa != fb) {
      return fa < fb;
    }
    return a < b;
  });
  std::size_t next = 0;
  for (const Index c : empty) {
    if (next >= order.size()) {
      break;
    }
    const Index key_row = order[next++];
    copy_to(keys.row(key_row), centroids.row(c));
    labels[static_cast<std::size_t>(key_row)] = c;
  }
}

}  // namespace

namespace {

/// k-means++ seeding: each next centroid is a key sampled with probability
/// proportional to its distance from the nearest centroid chosen so far.
Matrix plus_plus_seeds(const Matrix& keys, Index c, DistanceMetric metric, Rng& rng) {
  Matrix centroids(c, keys.cols());
  const Index first = rng.uniform_int(0, keys.rows() - 1);
  copy_to(keys.row(first), centroids.row(0));

  // nearest[i] = similarity of key i to its closest chosen centroid. Every
  // metric is symmetric, so one batched pass scores the newest centroid
  // against all keys at once.
  std::vector<double> nearest(static_cast<std::size_t>(keys.rows()),
                              -std::numeric_limits<double>::infinity());
  std::vector<float> to_newest(static_cast<std::size_t>(keys.rows()));
  for (Index chosen = 1; chosen < c; ++chosen) {
    batched_scores(keys, centroids.row(chosen - 1), metric, to_newest);
    std::vector<double> weights(static_cast<std::size_t>(keys.rows()));
    double total = 0.0;
    for (Index i = 0; i < keys.rows(); ++i) {
      nearest[static_cast<std::size_t>(i)] =
          std::max(nearest[static_cast<std::size_t>(i)],
                   static_cast<double>(to_newest[static_cast<std::size_t>(i)]));
      // Convert similarity to a non-negative "distance" weight. For cosine
      // this is the paper's D = 1 - cos; for L2 the squared distance; for
      // inner product a shifted gap to the best match.
      const double w = metric == DistanceMetric::kL2
                           ? -nearest[static_cast<std::size_t>(i)]
                           : 1.0 - nearest[static_cast<std::size_t>(i)];
      weights[static_cast<std::size_t>(i)] = std::max(w, 0.0);
      total += weights[static_cast<std::size_t>(i)];
    }
    Index pick;
    if (total <= 0.0) {
      pick = rng.uniform_int(0, keys.rows() - 1);  // degenerate: all identical
    } else {
      pick = rng.weighted_choice(weights);
    }
    copy_to(keys.row(pick), centroids.row(chosen));
  }
  return centroids;
}

}  // namespace

namespace {

/// Shared Lloyd iteration: alternates assignment/update on result.centroids
/// until labels stop changing or the cap, then compacts hollow clusters.
void run_lloyd(const Matrix& keys, const KMeansConfig& config, KMeansResult& result) {
  result.labels.assign(static_cast<std::size_t>(keys.rows()), -1);
  std::vector<Index> counts;
  for (Index iter = 0; iter < config.max_iterations; ++iter) {
    auto labels = assign_labels(keys, result.centroids, config.metric);
    result.iterations = iter + 1;
    if (labels == result.labels) {
      result.converged = true;
      break;
    }
    result.labels = std::move(labels);
    Matrix updated;
    centroid_update(keys, result.labels, result.centroids, config.channel_partitions,
                    updated, counts);
    result.centroids = std::move(updated);
    reseed_empty_clusters(keys, config, result.labels, result.centroids, counts);
  }
  if (result.labels.front() < 0) {
    // max_iterations == 0: no assignment ran yet; label once so callers
    // always get a full (and compactable) assignment.
    result.labels = assign_labels(keys, result.centroids, config.metric);
  }
  compact_empty_clusters(result.centroids, result.labels);
}

}  // namespace

Index compact_empty_clusters(Matrix& centroids, std::vector<Index>& labels) {
  std::vector<Index> counts(static_cast<std::size_t>(centroids.rows()), 0);
  for (const Index label : labels) {
    expects(label >= 0 && label < centroids.rows(),
            "compact_empty_clusters: label out of range");
    ++counts[static_cast<std::size_t>(label)];
  }
  std::vector<Index> remap(counts.size(), -1);
  Index kept = 0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0) {
      remap[c] = kept++;
    }
  }
  if (kept == centroids.rows()) {
    return kept;
  }
  Matrix compact(kept, centroids.cols());
  for (std::size_t c = 0; c < remap.size(); ++c) {
    if (remap[c] >= 0) {
      std::ranges::copy(centroids.row(static_cast<Index>(c)),
                        compact.row(remap[c]).begin());
    }
  }
  centroids = std::move(compact);
  for (Index& label : labels) {
    label = remap[static_cast<std::size_t>(label)];
  }
  return kept;
}

KMeansResult kmeans_cluster(const Matrix& keys, const KMeansConfig& config, Rng& rng) {
  expects(keys.rows() > 0, "kmeans_cluster: need at least one key");
  expects(config.num_clusters >= 1, "kmeans_cluster: num_clusters must be >= 1");
  const Index c = std::min<Index>(config.num_clusters, keys.rows());

  KMeansResult result;
  if (config.init == KMeansInit::kPlusPlus) {
    result.centroids = plus_plus_seeds(keys, c, config.metric, rng);
  } else {
    // Initial centroids: randomly sampled key vectors (paper §III-B).
    result.centroids = Matrix(c, keys.cols());
    const auto seeds = rng.sample_without_replacement(keys.rows(), c);
    for (Index i = 0; i < c; ++i) {
      copy_to(keys.row(seeds[static_cast<std::size_t>(i)]), result.centroids.row(i));
    }
  }
  run_lloyd(keys, config, result);
  return result;
}

KMeansResult kmeans_refine(const Matrix& keys, const Matrix& seeds,
                           const KMeansConfig& config) {
  expects(keys.rows() > 0, "kmeans_refine: need at least one key");
  expects(seeds.rows() > 0, "kmeans_refine: need at least one seed centroid");
  expects(seeds.cols() == keys.cols(), "kmeans_refine: seed width mismatch");
  // Clamp the effective k: more seeds than keys would leave clusters that
  // can never be filled (the reseed path would then run out of keys and
  // silently keep stale duplicate centroids).
  const Index c = std::min<Index>(seeds.rows(), keys.rows());
  KMeansResult result;
  result.centroids = seeds.row_slice(0, c);
  run_lloyd(keys, config, result);
  return result;
}

Index default_cluster_count(Index length, Index tokens_per_cluster) noexcept {
  if (length <= 0) {
    return 0;
  }
  if (tokens_per_cluster <= 0) {
    return 1;
  }
  return std::max<Index>(1, length / tokens_per_cluster);
}

}  // namespace ckv
