// Cross-chunk cluster repair: recovers one-shot selection recall after
// chunked prefill. Incremental prefill clusters each prompt chunk locally
// (docs/SCHEDULING.md, "clustering-locality trade-off"), so semantically
// similar tokens split across chunk boundaries land in separate, polluted
// clusters. A repair pass (a) merges adjacent-batch clusters whose
// centroids exceed a similarity threshold (transitive chains span many
// chunks) and (b) re-clusters each merged group's keys with a few k-means
// refinement iterations seeded from the surviving centroids. The pass only
// rewrites centroid/label metadata: KV placement, attention sinks and
// pending tokens are untouched, so every budget and residency invariant
// holds mid-repair and nothing is re-pinned to the fast tier.
#pragma once

#include <span>

#include "core/centroid_store.hpp"
#include "core/cluster_cache.hpp"
#include "core/distance.hpp"
#include "tensor/matrix.hpp"
#include "util/common.hpp"

namespace ckv {

struct ClusterRepairConfig {
  /// Minimum centroid similarity (in `metric`) for two clusters of
  /// adjacent clustering batches to merge into one repair group. -1 merges
  /// every adjacent pair (exhaustive repair: with enough refinement
  /// iterations this re-clusters the whole range jointly, recovering the
  /// one-shot clustering on well-separated data).
  double merge_threshold = 0.8;
  /// k-means refinement iterations per merged group (the warm-started
  /// kmeans_refine cap). Must be >= 1; callers gate repair off themselves.
  Index refine_iterations = 4;
  /// Target granularity of the re-clustering: each merged group gets
  /// max(1, group_tokens / tokens_per_cluster) clusters (§III-B rule).
  Index tokens_per_cluster = 80;
  DistanceMetric metric = DistanceMetric::kCosine;
  Index channel_partitions = 16;  ///< P of the update kernel (§IV-B)
};

/// What one repair pass did, plus the work accounting the latency model's
/// repair_ms bill mirrors analytically.
struct RepairOutcome {
  bool changed = false;      ///< false: no pair crossed the threshold
  Index groups_repaired = 0; ///< merged groups that were re-clustered
  Index clusters_before = 0;
  Index clusters_after = 0;
  std::int64_t scoring_flops = 0;  ///< centroid-pair scoring MACs
  std::int64_t refine_flops = 0;   ///< k-means refinement assignment MACs
};

/// Runs one bounded repair pass over `store`. `keys` is the full per-head
/// key matrix (rows indexed by absolute token position); the store's
/// clusters must cover the contiguous position range
/// [position_offset, position_offset + store.token_count()).
/// `batch_first_cluster` holds the first cluster id of each clustering
/// batch in registration order (batches define chunk adjacency; fewer than
/// two batches makes the pass a no-op). When `cache` is non-null its
/// window is relabeled onto the rebuilt cluster ids — the cached token set
/// (and therefore fast-tier residency) is never altered.
RepairOutcome repair_clusters(CentroidStore& store, const Matrix& keys,
                              std::span<const Index> batch_first_cluster,
                              Index position_offset, ClusterCache* cache,
                              const ClusterRepairConfig& config);

}  // namespace ckv
