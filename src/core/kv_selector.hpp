// The method-agnostic selection interface. Every KV compression method —
// ClusterKV, Quest, InfiniGen, H2O, StreamingLLM, Full KV — implements
// KVSelector for a single attention head; the decode engine, metrics and
// benches only speak this interface.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "tensor/matrix.hpp"
#include "util/common.hpp"

namespace ckv {

class FastTierLedger;

/// Outcome of one selection call plus the work/traffic accounting the
/// latency model consumes.
struct SelectionResult {
  /// Token positions to attend, ascending, deduplicated.
  std::vector<Index> indices;

  /// Representation-scoring work: number of (representation . q) products
  /// performed (centroids for ClusterKV, pages for Quest, tokens for
  /// InfiniGen, 0 for Full KV / static policies).
  Index representations_scored = 0;

  /// Reduced dimension of the scoring products (head_dim by default;
  /// InfiniGen scores in its partial dimension).
  Index scoring_dim = 0;

  /// Tokens whose KV had to be fetched from the slow tier this step
  /// (demand fetches plus prefetch hits — identical with prefetch on or
  /// off, since prefetch only changes when bytes cross, never whether).
  Index tokens_fetched = 0;

  /// Tokens served from the fast-tier cache this step.
  Index tokens_cache_hit = 0;

  /// The subset of tokens_fetched whose copy was already in flight from a
  /// speculative prefetch (latency overlapped the previous step's compute).
  Index tokens_prefetch_hit = 0;

  /// Speculative fetches issued this step for the *next* step's predicted
  /// selection (0 for methods without async prefetch).
  Index tokens_prefetch_issued = 0;
};

/// Per-head selection policy. Lifecycle: one observe_prefill, then an
/// alternation of select / observe_decode as tokens are generated.
class KVSelector {
 public:
  virtual ~KVSelector() = default;

  KVSelector() = default;
  KVSelector(const KVSelector&) = delete;
  KVSelector& operator=(const KVSelector&) = delete;

  /// Human-readable method name ("ClusterKV", "Quest", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Consumes the prompt's keys/values after prefill (N x d each).
  virtual void observe_prefill(const Matrix& keys, const Matrix& values) = 0;

  /// True when this method can build its prefill state incrementally via
  /// observe_prefill_chunk. Chunk-oblivious methods keep the default; the
  /// decode engine then defers their state construction to one whole-prompt
  /// observe_prefill call when the last chunk lands (latency is still
  /// billed per chunk by the scheduler, so the timing model is identical).
  [[nodiscard]] virtual bool supports_chunked_prefill() const { return false; }

  /// Consumes one contiguous slice of the prompt's KV during chunked
  /// prefill. Called with strictly consecutive slices; `last_chunk` marks
  /// the final one, after which the selector must be ready for select() /
  /// observe_decode(). The default only accepts a single whole-prompt
  /// chunk (it forwards to observe_prefill); callers must gate on
  /// supports_chunked_prefill() before splitting the prompt.
  virtual void observe_prefill_chunk(const Matrix& keys, const Matrix& values,
                                     bool last_chunk);

  /// Consumes one generated token's key/value during decoding.
  virtual void observe_decode(std::span<const float> key,
                              std::span<const float> value) = 0;

  /// Chooses at most `budget` token positions for the given query.
  /// Must be callable repeatedly with different queries/budgets without
  /// mutating logical state (caching layers may update internal stats).
  virtual SelectionResult select(std::span<const float> query, Index budget) = 0;

  /// Attention probabilities feedback for methods that need it (H2O's
  /// cumulative attention scores). indices/probabilities are parallel.
  virtual void observe_attention(std::span<const Index> indices,
                                 std::span<const float> probabilities);

  /// False for methods that permanently evict (H2O, StreamingLLM): evicted
  /// tokens can never reappear in select() results (Fig. 1b family).
  [[nodiscard]] virtual bool is_recallable() const { return true; }

  /// Number of tokens this selector currently knows about.
  [[nodiscard]] virtual Index context_size() const = 0;

  // ---- fast-tier residency (multi-session serving) ----
  //
  // The serving scheduler arbitrates one HBM byte budget across sessions.
  // Methods with a tiered store (ClusterKV) report and release their fast
  // residency; everything else pins the whole context in HBM, which is
  // exactly why compressed methods admit more concurrent sessions.

  /// Tokens of this head's KV currently resident on the fast tier.
  [[nodiscard]] virtual Index fast_resident_tokens() const { return context_size(); }

  /// Offloads reclaimable fast-tier KV (everything but the irreducible
  /// working set: sinks, pending decode tokens) to the slow tier. Returns
  /// tokens moved; methods without a tiered store have nothing to release.
  virtual Index release_fast_tier() { return 0; }

  /// Drops in-flight speculative fetches only (their reserved bytes are
  /// freed; resident KV and the cache window are untouched). Budget
  /// enforcement tries this before any real preemption — speculation is
  /// the cheapest thing to take back. The reason attributes the wasted
  /// traffic (enforcement by default: that is the only external caller in
  /// the serving stack besides retirement, which passes kSessionRelease).
  /// Returns fetches canceled; 0 for methods without async prefetch.
  virtual Index cancel_prefetches(obs::FetchCancelReason reason =
                                      obs::FetchCancelReason::kEnforcement) {
    (void)reason;
    return 0;
  }

  /// Speculative fetches canceled so far for the given reason (waste
  /// attribution; 0 for methods without async prefetch).
  [[nodiscard]] virtual std::int64_t prefetch_canceled_tokens(
      obs::FetchCancelReason reason) const {
    (void)reason;
    return 0;
  }

  /// Registers a shared fast-tier byte ledger (nullptr detaches). No-op
  /// for methods without tiered placement.
  virtual void attach_fast_tier_ledger(FastTierLedger* ledger);

  /// Graceful degradation (fault injection): while set, the next select()
  /// must not issue any slow-tier traffic — it restricts itself to
  /// fast-resident state and skips speculation. The scheduler sets this
  /// for exactly one step when a session's demand fetch is declared dead,
  /// and clears it in the same serial commit. No-op for methods without a
  /// tiered store (they never fetch, so every step is already resident).
  virtual void set_degraded_step(bool degraded) { (void)degraded; }
};

/// Creates one selector instance for a given (layer, head); head_dim is
/// the per-head channel count.
using SelectorFactory =
    std::function<std::unique_ptr<KVSelector>(Index layer, Index head, Index head_dim)>;

}  // namespace ckv
