#include "core/selector_index.hpp"

#include "tensor/topk.hpp"

namespace ckv {

ClusterSelection select_clusters(std::span<const float> scores,
                                 std::span<const Index> sizes, Index budget) {
  expects(scores.size() == sizes.size(), "select_clusters: scores/sizes mismatch");
  ClusterSelection out;
  if (budget <= 0 || scores.empty()) {
    return out;
  }
  const auto order = argsort_descending(scores);
  for (const Index cluster : order) {
    out.clusters.push_back(cluster);
    out.total_tokens += sizes[static_cast<std::size_t>(cluster)];
    if (out.total_tokens >= budget) {
      out.trimmed = out.total_tokens > budget;
      break;
    }
  }
  return out;
}

IndexedSelection gather_selected_tokens(const CentroidStore& store,
                                        const ClusterSelection& selection,
                                        Index budget) {
  IndexedSelection out;
  Index remaining = budget;
  for (const Index cluster : selection.clusters) {
    if (remaining <= 0) {
      break;
    }
    const auto tokens = store.tokens_of(cluster);
    const Index take = std::min<Index>(remaining, static_cast<Index>(tokens.size()));
    std::vector<Index> taken(tokens.begin(), tokens.begin() + take);
    out.token_positions.insert(out.token_positions.end(), taken.begin(), taken.end());
    out.per_cluster.emplace_back(cluster, std::move(taken));
    remaining -= take;
  }
  return out;
}

}  // namespace ckv
