// Cluster-granularity cache of selected KV (§IV-D). The fast tier retains
// the tokens selected during the last R decoding steps, keyed by cluster
// label; at each step, only tokens of clusters absent from the window are
// fetched from the slow tier. On top of the window the cache tracks
// *in-flight prefetches*: tokens whose slow->fast copy was issued
// speculatively after the previous step (core/cluster_prefetch) and
// resolves at the next step — selected in-flight tokens land as prefetch
// hits, the rest are wasted and canceled.
#pragma once

#include <deque>
#include <map>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace ckv {

class ClusterCache {
 public:
  /// depth = R (0 disables caching: every selected token misses).
  explicit ClusterCache(Index depth);

  struct StepResult {
    /// Demand fetches: selected tokens neither window-resident nor covered
    /// by an in-flight prefetch; must be fetched synchronously.
    std::vector<Index> missing_tokens;
    /// Selected tokens whose prefetch was in flight: their copy lands now
    /// (TieredKVStore::complete_fetch) with the latency already overlapped.
    std::vector<Index> prefetched_tokens;
    /// In-flight tokens the step did *not* select: the prediction missed;
    /// cancel their fetches (TieredKVStore::cancel_fetch).
    std::vector<Index> wasted_tokens;
    std::vector<Index> evicted_tokens;  ///< left the R-step window; drop from fast
    Index hits = 0;    ///< tokens served from the window
    /// Tokens fetched from the slow tier this step (demand + prefetch
    /// hits). Identical to the no-prefetch run on the same selection
    /// stream: prefetch moves *when* bytes cross, never whether.
    Index misses = 0;
    Index prefetch_hits = 0;  ///< the subset of misses covered in flight
  };

  /// Processes one decoding step's selection: `selected` lists each chosen
  /// cluster with the token positions taken from it (trimmed last cluster
  /// included as its partial list). Returns hit/miss breakdown (resolving
  /// every in-flight prefetch as hit or waste) and updates the window.
  StepResult step(const std::vector<std::pair<Index, std::vector<Index>>>& selected);

  /// Records one step's issued prefetches: each candidate lists a cluster
  /// and the tokens to fetch from it; tokens already window-resident or
  /// in flight are skipped (the resident/in-flight sets are built once
  /// for the whole batch — this sits on the per-step hot path). Returns
  /// the flat token list actually recorded, ascending (the exact set to
  /// hand TieredKVStore::begin_fetch, so cache- and store-side in-flight
  /// state never diverge).
  std::vector<Index> issue_fetches(
      std::span<const std::pair<Index, std::span<const Index>>> candidates);

  /// Single-cluster convenience wrapper over issue_fetches.
  std::vector<Index> issue_fetch(Index cluster, std::span<const Index> tokens);

  /// Drops every in-flight entry (preemption / teardown; the prediction
  /// never resolves) and returns the affected tokens so the caller can
  /// cancel the store-side fetches. Counts them as wasted.
  std::vector<Index> cancel_fetches();

  /// In-flight tokens grouped by cluster id (deterministic order).
  [[nodiscard]] const std::map<Index, std::vector<Index>>& in_flight()
      const noexcept {
    return in_flight_;
  }
  [[nodiscard]] Index in_flight_tokens() const noexcept;

  [[nodiscard]] Index depth() const noexcept { return depth_; }

  /// Lifetime token-level hit rate: hits / (hits + misses); 0 before any
  /// lookup.
  [[nodiscard]] double hit_rate() const noexcept;

  [[nodiscard]] std::int64_t total_hits() const noexcept { return total_hits_; }
  [[nodiscard]] std::int64_t total_misses() const noexcept { return total_misses_; }
  [[nodiscard]] std::int64_t total_prefetch_hits() const noexcept {
    return total_prefetch_hits_;
  }
  [[nodiscard]] std::int64_t total_prefetch_issued() const noexcept {
    return total_prefetch_issued_;
  }
  [[nodiscard]] std::int64_t total_prefetch_wasted() const noexcept {
    return total_prefetch_wasted_;
  }
  [[nodiscard]] Index steps() const noexcept { return steps_; }

  /// Tokens currently resident by virtue of the window (testing hook).
  [[nodiscard]] std::unordered_set<Index> resident_tokens() const;

  void reset_counters() noexcept;

  /// Forgets the R-step window without touching lifetime counters. Used
  /// when a scheduler offloads the cached tokens behind the cache's back
  /// (preemption): the next step then misses and refetches honestly.
  /// In-flight prefetches are *not* dropped here — callers that also tear
  /// down store-side fetches drain cancel_fetches() explicitly.
  void clear_window() noexcept { window_.clear(); }

  /// Relabels the window after a cluster-repair rebuild: every cached
  /// token keeps its residency (the resident token set is unchanged, so
  /// repair never moves KV) but is regrouped under the cluster that
  /// `token_to_cluster[position]` now assigns it. In-flight prefetch
  /// entries are relabeled the same way — a repair landing between fetch
  /// issue and completion must not strand them under dead cluster ids
  /// (their store-side reservation would leak and the next step would
  /// treat covered tokens as demand misses). Every window or in-flight
  /// token must map to a valid cluster — repair rebuilds all clustered
  /// tokens and sinks/pending never enter the window. Counters untouched.
  void remap_window(std::span<const Index> token_to_cluster);

 private:
  Index depth_;
  std::deque<std::vector<std::pair<Index, std::vector<Index>>>> window_;
  std::map<Index, std::vector<Index>> in_flight_;  ///< cluster -> tokens
  std::int64_t total_hits_ = 0;
  std::int64_t total_misses_ = 0;
  std::int64_t total_prefetch_hits_ = 0;
  std::int64_t total_prefetch_issued_ = 0;
  std::int64_t total_prefetch_wasted_ = 0;
  Index steps_ = 0;
};

}  // namespace ckv
