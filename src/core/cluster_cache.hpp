// Cluster-granularity cache of selected KV (§IV-D). The fast tier retains
// the tokens selected during the last R decoding steps, keyed by cluster
// label; at each step, only tokens of clusters absent from the window are
// fetched from the slow tier.
#pragma once

#include <deque>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace ckv {

class ClusterCache {
 public:
  /// depth = R (0 disables caching: every selected token misses).
  explicit ClusterCache(Index depth);

  struct StepResult {
    std::vector<Index> missing_tokens;  ///< must be fetched from the slow tier
    std::vector<Index> evicted_tokens;  ///< left the R-step window; drop from fast
    Index hits = 0;                     ///< tokens served from cache
    Index misses = 0;                   ///< tokens fetched
  };

  /// Processes one decoding step's selection: `selected` lists each chosen
  /// cluster with the token positions taken from it (trimmed last cluster
  /// included as its partial list). Returns hit/miss breakdown and updates
  /// the window.
  StepResult step(const std::vector<std::pair<Index, std::vector<Index>>>& selected);

  [[nodiscard]] Index depth() const noexcept { return depth_; }

  /// Lifetime token-level hit rate: hits / (hits + misses); 0 before any
  /// lookup.
  [[nodiscard]] double hit_rate() const noexcept;

  [[nodiscard]] std::int64_t total_hits() const noexcept { return total_hits_; }
  [[nodiscard]] std::int64_t total_misses() const noexcept { return total_misses_; }
  [[nodiscard]] Index steps() const noexcept { return steps_; }

  /// Tokens currently resident by virtue of the window (testing hook).
  [[nodiscard]] std::unordered_set<Index> resident_tokens() const;

  void reset_counters() noexcept;

  /// Forgets the R-step window without touching lifetime counters. Used
  /// when a scheduler offloads the cached tokens behind the cache's back
  /// (preemption): the next step then misses and refetches honestly.
  void clear_window() noexcept { window_.clear(); }

  /// Relabels the window after a cluster-repair rebuild: every cached
  /// token keeps its residency (the resident token set is unchanged, so
  /// repair never moves KV) but is regrouped under the cluster that
  /// `token_to_cluster[position]` now assigns it. Every window token must
  /// map to a valid cluster — repair rebuilds all clustered tokens and
  /// sinks/pending never enter the window. Counters are untouched.
  void remap_window(std::span<const Index> token_to_cluster);

 private:
  Index depth_;
  std::deque<std::vector<std::pair<Index, std::vector<Index>>>> window_;
  std::int64_t total_hits_ = 0;
  std::int64_t total_misses_ = 0;
  Index steps_ = 0;
};

}  // namespace ckv
