// Cluster representations and the indexing metadata of Fig. 8: centroids,
// cluster sizes, prefix-sum offsets and token indices grouped (sorted) by
// cluster label. Clusters are immutable once added; decode-side clustering
// (§III-B) appends new clusters for each batch of generated tokens. Two
// rebuild paths exist for cross-chunk repair: truncate() pops the most
// recently added clusters (end-of-prompt tail fold) and rebuild() replaces
// the whole store (post-repair re-registration).
#pragma once

#include <span>
#include <vector>

#include "core/distance.hpp"
#include "tensor/matrix.hpp"
#include "util/common.hpp"

namespace ckv {

class CentroidStore {
 public:
  explicit CentroidStore(Index head_dim);

  /// Registers a batch of clusters. `labels[i]` (in [0, centroids.rows()))
  /// is the local cluster of the token at absolute position
  /// `position_offset + i`; local cluster c becomes global cluster
  /// `cluster_count() + c` (before the call). Token lists preserve
  /// ascending position order within each cluster.
  void add_clusters(const Matrix& centroids, std::span<const Index> labels,
                    Index position_offset);

  /// Drops every cluster with id >= keep. Only valid when the dropped
  /// clusters are the most recently added ones and no earlier cluster
  /// holds tokens added after them (true for the engine's append-only
  /// batches): their tokens are exactly the tail of the token index.
  void truncate(Index keep);

  /// Replaces the whole store content in one shot — equivalent to a fresh
  /// store followed by one add_clusters(centroids, labels, position_offset)
  /// call. The cluster-repair pass uses this to re-register the merged and
  /// refined clusters without touching KV placement.
  void rebuild(const Matrix& centroids, std::span<const Index> labels,
               Index position_offset);

  [[nodiscard]] Index cluster_count() const noexcept;
  [[nodiscard]] Index token_count() const noexcept;
  [[nodiscard]] Index head_dim() const noexcept { return head_dim_; }

  /// Token positions of one cluster (ascending).
  [[nodiscard]] std::span<const Index> tokens_of(Index cluster) const;

  [[nodiscard]] Index size_of(Index cluster) const;
  [[nodiscard]] std::span<const Index> cluster_sizes() const noexcept {
    return cluster_sizes_;
  }

  [[nodiscard]] const Matrix& centroids() const noexcept { return centroids_; }

  /// Scores every centroid against the query. The paper selects with the
  /// inner product (it "better aligns with attention weight computation",
  /// §III-C); other metrics are accepted for ablations.
  [[nodiscard]] std::vector<float> scores(
      std::span<const float> query,
      DistanceMetric metric = DistanceMetric::kInnerProduct) const;

 private:
  Index head_dim_;
  Matrix centroids_;
  std::vector<Index> cluster_sizes_;
  std::vector<Index> cluster_offsets_;  ///< prefix sums; size = clusters + 1
  std::vector<Index> sorted_indices_;   ///< token positions grouped by cluster
};

}  // namespace ckv
