// Async cluster prefetch (§IV-B system design): predicts the clusters the
// *next* decoding step will select and issues their slow->fast fetches
// right after the current selection, so the copies overlap the current
// step's attention/FFN instead of stalling the next step inside select().
//
// Prediction is deterministic and purely metadata-driven: a blend of the
// current query's centroid scores (consecutive decode queries drift
// slowly, so the clusters just below this step's selection cutoff are the
// likeliest to rotate in) and a per-cluster recency/frequency prior (an
// EMA of past selections — clusters a session keeps returning to stay
// warm even when one query wanders). Prefetch never alters selection:
// the same clusters are chosen with or without it, only the latency of
// their fetches changes (the prefetch-equivalence tests pin this down).
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace ckv {

struct ClusterPrefetchConfig {
  /// Clusters prefetched per decode step; 0 disables prefetch entirely
  /// (every cache miss is fetched synchronously inside select()).
  Index max_clusters = 0;
  /// Weight of the recency/frequency prior against the (min-max
  /// normalized) centroid similarity in the blended prediction score.
  double prior_weight = 0.5;
  /// Per-step EMA decay of the prior: prior = decay * prior +
  /// (1 - decay) * [cluster selected this step]. Smaller = more recency.
  double prior_decay = 0.5;
};

class ClusterPrefetcher {
 public:
  explicit ClusterPrefetcher(const ClusterPrefetchConfig& config);

  [[nodiscard]] bool enabled() const noexcept { return config_.max_clusters > 0; }
  [[nodiscard]] const ClusterPrefetchConfig& config() const noexcept {
    return config_;
  }

  /// Folds one step's actual selection into the per-cluster prior.
  /// `cluster_count` is the current number of live clusters (grows with
  /// decode-side clustering; new clusters start with a zero prior).
  void observe_selection(std::span<const Index> selected_clusters,
                         Index cluster_count);

  /// Predicts up to max_clusters cluster ids for the next step, best
  /// first, from this step's centroid scores (`centroid_scores[c]` is the
  /// current query's score of cluster c) blended with the prior.
  /// `exclude` lists clusters to skip — the ones this step selected,
  /// whose tokens enter the cache window and need no fetch. Deterministic:
  /// equal inputs and prior state give equal output (ties break on the
  /// lower cluster id).
  [[nodiscard]] std::vector<Index> predict(std::span<const float> centroid_scores,
                                           std::span<const Index> exclude) const;

  /// A cluster-repair rebuild invalidates cluster ids; the prior keyed by
  /// the old ids is reset (it re-warms within ~1/(1-decay) steps).
  void on_rebuild(Index cluster_count);

  /// Per-cluster prior values (testing hook; index = cluster id).
  [[nodiscard]] std::span<const double> prior() const noexcept { return prior_; }

 private:
  ClusterPrefetchConfig config_;
  std::vector<double> prior_;
};

}  // namespace ckv
