// K-means clustering over key vectors in the semantic space (§III-B).
// Default distance is cosine; initial centroids are randomly sampled keys;
// assignment/update alternate until labels stop changing.
#pragma once

#include <vector>

#include "core/distance.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"
#include "util/common.hpp"

namespace ckv {

/// Centroid initialization strategy. The paper samples random keys
/// (§III-B); k-means++ is provided as an extension and ablated in
/// bench_ablations (better seeding, higher seeding cost O(C L d)).
enum class KMeansInit {
  kRandomSample,  ///< paper default: uniformly sampled key vectors
  kPlusPlus,      ///< D^2-weighted seeding (k-means++)
};

struct KMeansConfig {
  Index num_clusters = 0;                            ///< C; must be >= 1
  DistanceMetric metric = DistanceMetric::kCosine;   ///< paper default
  Index max_iterations = 20;                         ///< safety cap
  Index channel_partitions = 16;                     ///< P of the update kernel
  KMeansInit init = KMeansInit::kRandomSample;
};

struct KMeansResult {
  Matrix centroids;           ///< C x d cluster representations
  std::vector<Index> labels;  ///< per-key cluster label in [0, C)
  Index iterations = 0;       ///< iterations until convergence (or cap)
  bool converged = false;     ///< labels stopped changing before the cap
};

/// Clusters the rows of `keys`. num_clusters is clamped to the number of
/// keys. Empty clusters are re-seeded with the worst-assigned key during
/// the iteration, and any cluster still empty on return (degenerate
/// inputs: duplicate keys collapsing seeds) is compacted away, so every
/// returned cluster is non-empty — the result may hold fewer than
/// num_clusters clusters, never hollow ones.
KMeansResult kmeans_cluster(const Matrix& keys, const KMeansConfig& config, Rng& rng);

/// Warm-start refinement: runs assignment/update from the given seed
/// centroids for at most config.max_iterations (config.num_clusters is
/// ignored — the seed matrix defines k, clamped to keys.rows() so tiny
/// inputs can never end up with more clusters than keys). Deterministic
/// (no sampling); same empty-cluster guarantees as kmeans_cluster. This is
/// the cluster-repair entry point: merged groups re-cluster seeded from
/// their surviving centroids instead of from scratch.
KMeansResult kmeans_refine(const Matrix& keys, const Matrix& seeds,
                           const KMeansConfig& config);

/// Removes empty clusters in place: centroids loses the hollow rows,
/// labels are remapped onto the surviving ids (relative order preserved).
/// Returns the surviving cluster count. Labels must be a full assignment
/// (every key labeled in [0, centroids.rows())).
Index compact_empty_clusters(Matrix& centroids, std::vector<Index>& labels);

/// The paper's cluster-count rule C0 = L / tokens_per_cluster (default 80),
/// with a floor of 1. `length` counts the keys actually clustered (prompt
/// minus attention sinks).
Index default_cluster_count(Index length, Index tokens_per_cluster = 80) noexcept;

}  // namespace ckv
