// The ClusterKV method end to end for one attention head (Fig. 5):
// semantic clustering after prefill, incremental clustering of generated
// tokens every m steps, cluster-granularity selection + indexing per
// decode step, and the R-step cluster cache over a tiered KV store.
#pragma once

#include <memory>
#include <vector>

#include "core/cluster_cache.hpp"
#include "core/centroid_store.hpp"
#include "core/cluster_prefetch.hpp"
#include "core/cluster_repair.hpp"
#include "core/distance.hpp"
#include "core/kmeans.hpp"
#include "core/kv_selector.hpp"
#include "kvcache/tiered_store.hpp"
#include "tensor/rng.hpp"
#include "util/common.hpp"

namespace ckv {

/// All ClusterKV knobs with the paper's defaults.
struct ClusterKVConfig {
  Index sink_tokens = 16;          ///< always-retained initial tokens (§III-B)
  Index tokens_per_cluster = 80;   ///< C0 = L / 80
  Index decode_interval = 320;     ///< m: cluster every m generated tokens
  Index decode_clusters = 4;       ///< C+: clusters per decode batch
  Index cache_depth = 1;           ///< R of the cluster cache (§IV-D)
  DistanceMetric cluster_metric = DistanceMetric::kCosine;       ///< §III-B
  DistanceMetric selection_metric = DistanceMetric::kInnerProduct;  ///< §III-C
  Index kmeans_max_iterations = 20;
  KMeansInit kmeans_init = KMeansInit::kRandomSample;  ///< §III-B default
  Index channel_partitions = 16;   ///< P of the update kernel (§IV-B)
  Index element_bytes = 2;         ///< fp16-equivalent byte accounting
  /// Overrides C0 when positive (Fig. 11b ablation); 0 uses L / 80.
  Index fixed_cluster_count = 0;

  // ---- cross-chunk cluster repair (chunked-prefill recall recovery) ----
  // Chunked prefill clusters each prompt chunk locally, which costs
  // selection recall vs. one-shot clustering (docs/SCHEDULING.md). A
  // bounded repair pass after the final prompt chunk merges adjacent-batch
  // clusters whose centroids agree and re-clusters the merged groups —
  // metadata only, never touching KV placement, sinks or pending tokens.
  /// Minimum centroid similarity (cluster_metric) for an adjacent-batch
  /// merge; -1 merges every adjacent pair (exhaustive repair).
  double repair_merge_threshold = 0.8;
  /// Refinement iterations per merged group; 0 disables repair entirely.
  Index repair_refine_iterations = 4;
  /// Also repair every this many generated tokens, folding decode-side
  /// cluster batches back into the prompt's semantic groups (0 = repair
  /// after prefill only).
  Index repair_decode_interval = 0;

  // ---- async cluster prefetch (§IV-B overlap of slow->fast fetches) ----
  // After each selection the engine predicts the clusters the next step
  // will select (core/cluster_prefetch) and issues their fetches so the
  // copies overlap the current step's attention instead of stalling the
  // next select(). Latency-only: selection results are bit-identical to
  // synchronous fetching.
  /// Clusters prefetched per decode step (0 = synchronous fetches only).
  Index prefetch_clusters = 0;
  /// Weight of the recency/frequency prior in the prediction blend.
  double prefetch_prior_weight = 0.5;
  /// Per-step EMA decay of the prior.
  double prefetch_prior_decay = 0.5;
};

class ClusterKVEngine : public KVSelector {
 public:
  ClusterKVEngine(Index head_dim, const ClusterKVConfig& config, Rng rng);

  [[nodiscard]] std::string name() const override { return "ClusterKV"; }

  void observe_prefill(const Matrix& keys, const Matrix& values) override;

  [[nodiscard]] bool supports_chunked_prefill() const override { return true; }

  /// Incremental prefill: appends one prompt slice, extends the sink
  /// prefix while the context is still all-sink, and accumulates the rest
  /// as pending tokens that cluster at prompt granularity whenever at
  /// least tokens_per_cluster of them are buffered (the last chunk flushes
  /// the remainder, so decode starts fully clustered). Chunk boundaries
  /// are scheduler artifacts and never force undersized clusters: an
  /// end-of-prompt tail shorter than tokens_per_cluster folds into the
  /// preceding batch's clustering window instead of becoming a degenerate
  /// cluster of its own, and when repair is enabled the final chunk runs
  /// one cross-chunk repair pass. The fixed_cluster_count ablation knob
  /// applies only to the whole-prompt observe_prefill path.
  void observe_prefill_chunk(const Matrix& keys, const Matrix& values,
                             bool last_chunk) override;

  void observe_decode(std::span<const float> key,
                      std::span<const float> value) override;
  SelectionResult select(std::span<const float> query, Index budget) override;
  [[nodiscard]] Index context_size() const override;

  /// Forces clustering of any pending decode tokens (end-of-generation
  /// flush; also lets tests exercise partial batches). A no-op with zero
  /// pending tokens; a partial batch smaller than decode_clusters gets at
  /// most one cluster per token and never registers empty clusters.
  void flush_pending();

  // ---- fast-tier residency (serving scheduler hooks) ----

  [[nodiscard]] Index fast_resident_tokens() const override {
    return tiered_.fast_resident_count();
  }

  /// Offloads every fast-resident token except the attention sinks and the
  /// not-yet-clustered pending tokens (both are irreducible: select()
  /// assumes they are fast-resident), cancels any in-flight prefetches
  /// (their reserved bytes are freed too), and forgets the cluster-cache
  /// window so later steps refetch honestly. Returns tokens *moved* only:
  /// canceled speculation is excluded, so a cancel-only release does not
  /// read as a preemption and the count matches a sync-fetch run exactly.
  Index release_fast_tier() override;

  void attach_fast_tier_ledger(FastTierLedger* ledger) override {
    tiered_.attach_ledger(ledger);
  }

  /// Graceful degradation: while set, select() restricts cluster
  /// candidates to clusters whose every token is already fast-resident
  /// and issues no slow-tier traffic at all (no demand fetches, no
  /// speculation). Sinks and pending tokens stay attended — they are
  /// resident by construction — so budget/sink invariants hold exactly.
  /// The scheduler sets this for the one step whose demand fetch died and
  /// clears it in the same serial commit.
  void set_degraded_step(bool degraded) override { degraded_step_ = degraded; }

  /// True when the config enables async cluster prefetch.
  [[nodiscard]] bool prefetch_enabled() const noexcept {
    return prefetcher_.enabled();
  }

  /// Drops every in-flight prefetch (cache- and store-side) and frees its
  /// reserved bytes; the issued traffic counts as wasted, attributed to
  /// `reason`. Called by budget enforcement before any real preemption
  /// (kEnforcement), by release_fast_tier itself, by retirement
  /// (kSessionRelease), and on metadata rebuilds that discard cluster ids
  /// outright — the end-of-prompt tail fold, which passes kMisprediction
  /// since the speculation is simply obsolete — while a *repair* rebuild
  /// instead relabels in-flight entries in place. Returns fetches dropped.
  Index cancel_prefetches(obs::FetchCancelReason reason =
                              obs::FetchCancelReason::kEnforcement) override;

  /// Per-reason canceled-speculation totals from the tiered store.
  [[nodiscard]] std::int64_t prefetch_canceled_tokens(
      obs::FetchCancelReason reason) const override {
    return tiered_.stats().tokens_prefetch_canceled_by[static_cast<int>(reason)];
  }

  [[nodiscard]] const ClusterPrefetcher& prefetcher() const noexcept {
    return prefetcher_;
  }

  [[nodiscard]] const CentroidStore& centroid_store() const noexcept {
    return centroids_;
  }
  [[nodiscard]] const ClusterCache& cache() const noexcept { return cache_; }
  [[nodiscard]] ClusterCache& cache() noexcept { return cache_; }
  [[nodiscard]] const TieredKVStore& tiered_store() const noexcept { return tiered_; }
  [[nodiscard]] const ClusterKVConfig& config() const noexcept { return config_; }
  [[nodiscard]] Index sink_count() const noexcept { return sink_count_; }
  [[nodiscard]] Index pending_count() const noexcept {
    return static_cast<Index>(pending_positions_.size());
  }

  /// Total k-means assignment work performed so far, in multiply-accumulate
  /// ops (for §III-D Concern 1 accounting in the latency model).
  [[nodiscard]] std::int64_t clustering_flops() const noexcept {
    return clustering_flops_;
  }

  // ---- cross-chunk cluster repair ----

  /// True when the config enables the repair pass at all.
  [[nodiscard]] bool repair_enabled() const noexcept {
    return config_.repair_refine_iterations > 0;
  }

  /// Runs one repair pass right now (the engine also triggers this itself
  /// after the final prompt chunk and every repair_decode_interval decode
  /// tokens). Rewrites centroid/label metadata only: fast-tier residency,
  /// sinks and pending tokens are untouched, so scheduler invariants hold
  /// mid-repair. A no-op with fewer than two clustering batches.
  RepairOutcome repair_now();

  /// Repair passes that actually changed the clustering.
  [[nodiscard]] Index repair_passes() const noexcept { return repair_passes_; }

  /// Total repair work so far (pair scoring + refinement MACs), mirrored
  /// analytically by LatencyModel::repair_ms.
  [[nodiscard]] std::int64_t repair_flops() const noexcept { return repair_flops_; }

 private:
  void cluster_range(Index begin, Index end, Index cluster_count);
  /// Clusters the pending positions into at most `cluster_count` clusters
  /// and clears them (shared by the decode-interval flush and the chunked
  /// prefill path, which differ only in the cluster count they request).
  void flush_pending_clusters(Index cluster_count);

  /// One registered clustering batch (a flushed pending window): repair
  /// treats consecutive batches as adjacent chunks, and the end-of-prompt
  /// tail fold re-clusters the last batch together with a short tail.
  struct ClusterBatch {
    Index first_cluster = 0;  ///< id of the batch's first cluster
    Index begin_pos = 0;      ///< first token position of the batch
  };

  ClusterKVConfig config_;
  Rng rng_;
  TieredKVStore tiered_;
  CentroidStore centroids_;
  ClusterCache cache_;
  ClusterPrefetcher prefetcher_;
  Index sink_count_ = 0;
  std::vector<Index> pending_positions_;  ///< generated, not yet clustered
  std::vector<ClusterBatch> batches_;     ///< registration-order flush batches
  Index decode_steps_ = 0;                ///< observe_decode calls so far
  bool degraded_step_ = false;            ///< resident-only selection mode
  Index repair_passes_ = 0;
  std::int64_t clustering_flops_ = 0;
  std::int64_t repair_flops_ = 0;
};

/// Factory adapter for the decode engine.
SelectorFactory make_clusterkv_factory(const ClusterKVConfig& config,
                                       std::uint64_t seed);

}  // namespace ckv
