#include "core/cluster_repair.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/kernels.hpp"
#include "core/kmeans.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {

namespace {

/// Plain union-find over cluster ids (path halving, union by size).
class UnionFind {
 public:
  explicit UnionFind(Index n)
      : parent_(static_cast<std::size_t>(n)), size_(static_cast<std::size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), Index{0});
  }

  Index find(Index x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void unite(Index a, Index b) {
    a = find(a);
    b = find(b);
    if (a == b) {
      return;
    }
    if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
  }

 private:
  std::vector<Index> parent_;
  std::vector<Index> size_;
};

/// Seed centroids for one merged group: the group's surviving centroids by
/// descending size (stable by id), padded with evenly strided group keys
/// when the target count exceeds the member count (oversized chunk-local
/// clusters can fold into more refined clusters than they merged from).
Matrix group_seeds(const CentroidStore& store, std::span<const Index> members,
                   const Matrix& group_keys, Index want) {
  std::vector<Index> by_size(members.begin(), members.end());
  std::stable_sort(by_size.begin(), by_size.end(), [&store](Index a, Index b) {
    return store.size_of(a) > store.size_of(b);
  });
  const Index from_members = std::min<Index>(want, static_cast<Index>(by_size.size()));
  Matrix seeds(want, store.head_dim());
  for (Index i = 0; i < from_members; ++i) {
    copy_to(store.centroids().row(by_size[static_cast<std::size_t>(i)]), seeds.row(i));
  }
  for (Index i = from_members; i < want; ++i) {
    const Index stride_row = (i * group_keys.rows()) / want;
    copy_to(group_keys.row(stride_row), seeds.row(i));
  }
  return seeds;
}

}  // namespace

RepairOutcome repair_clusters(CentroidStore& store, const Matrix& keys,
                              std::span<const Index> batch_first_cluster,
                              Index position_offset, ClusterCache* cache,
                              const ClusterRepairConfig& config) {
  expects(config.refine_iterations >= 1,
          "repair_clusters: refine_iterations must be >= 1");
  expects(config.tokens_per_cluster >= 1,
          "repair_clusters: tokens_per_cluster must be >= 1");
  RepairOutcome out;
  out.clusters_before = store.cluster_count();
  out.clusters_after = out.clusters_before;
  const Index clusters = store.cluster_count();
  if (clusters < 2 || batch_first_cluster.size() < 2) {
    return out;
  }

  const Index head_dim = store.head_dim();

  // (a) Merge: score every centroid pair across consecutive batches; pairs
  // at or above the threshold union into repair groups. Transitivity chains
  // groups across arbitrarily many chunks (a topic recurring in every chunk
  // merges end to end), keeping the scored pair count bounded by adjacent
  // batches instead of all-pairs.
  UnionFind groups(clusters);
  for (std::size_t b = 0; b + 1 < batch_first_cluster.size(); ++b) {
    const Index a_begin = batch_first_cluster[b];
    const Index a_end = batch_first_cluster[b + 1];
    const Index b_begin = a_end;
    const Index b_end = b + 2 < batch_first_cluster.size() ? batch_first_cluster[b + 2]
                                                           : clusters;
    std::vector<float> pair_scores(static_cast<std::size_t>(b_end - b_begin));
    for (Index i = a_begin; i < a_end; ++i) {
      // One batched pass scores centroid i against the whole next batch.
      batched_scores(store.centroids(), b_begin, b_end, store.centroids().row(i),
                     config.metric, pair_scores);
      out.scoring_flops += head_dim * (b_end - b_begin);
      for (Index j = b_begin; j < b_end; ++j) {
        if (pair_scores[static_cast<std::size_t>(j - b_begin)] >=
            static_cast<float>(config.merge_threshold)) {
          groups.unite(i, j);
        }
      }
    }
  }

  std::vector<std::vector<Index>> members(static_cast<std::size_t>(clusters));
  bool any_merge = false;
  for (Index c = 0; c < clusters; ++c) {
    members[static_cast<std::size_t>(groups.find(c))].push_back(c);
    any_merge |= groups.find(c) != c;
  }
  if (!any_merge) {
    return out;
  }

  // (b) Refine + rebuild: walk clusters in id order; singletons carry over
  // verbatim, each merged group is re-clustered once (at its first member)
  // with warm-started k-means at the paper's granularity rule. The new
  // label array covers the store's whole contiguous token range, so one
  // rebuild() call re-registers everything.
  const Index token_count = store.token_count();
  Matrix new_centroids;
  std::vector<Index> new_labels(static_cast<std::size_t>(token_count), -1);
  Index next_id = 0;
  auto label_positions = [&](std::span<const Index> positions,
                             std::span<const Index> local, Index base) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const Index rel = positions[i] - position_offset;
      expects(rel >= 0 && rel < token_count,
              "repair_clusters: clustered tokens must be contiguous from "
              "position_offset");
      new_labels[static_cast<std::size_t>(rel)] =
          base + (local.empty() ? 0 : local[i]);
    }
  };

  for (Index c = 0; c < clusters; ++c) {
    const Index root = groups.find(c);
    const auto& group = members[static_cast<std::size_t>(root)];
    if (group.size() == 1) {
      new_centroids.append_row(store.centroids().row(c));
      label_positions(store.tokens_of(c), {}, next_id);
      ++next_id;
      continue;
    }
    if (group.front() != c) {
      continue;  // group already emitted at its first member
    }
    std::vector<Index> positions;
    for (const Index m : group) {
      const auto tokens = store.tokens_of(m);
      positions.insert(positions.end(), tokens.begin(), tokens.end());
    }
    std::sort(positions.begin(), positions.end());
    Matrix group_keys(static_cast<Index>(positions.size()), head_dim);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      copy_to(keys.row(positions[i]), group_keys.row(static_cast<Index>(i)));
    }
    const Index want = std::min<Index>(
        group_keys.rows(),
        std::max<Index>(1, group_keys.rows() / config.tokens_per_cluster));
    KMeansConfig kconfig;
    kconfig.num_clusters = want;
    kconfig.metric = config.metric;
    kconfig.max_iterations = config.refine_iterations;
    kconfig.channel_partitions = config.channel_partitions;
    const auto refined =
        kmeans_refine(group_keys, group_seeds(store, group, group_keys, want), kconfig);
    out.refine_flops += refined.iterations *
                        assignment_flops(group_keys.rows(), want, head_dim);
    for (Index r = 0; r < refined.centroids.rows(); ++r) {
      new_centroids.append_row(refined.centroids.row(r));
    }
    label_positions(positions, refined.labels, next_id);
    next_id += refined.centroids.rows();
    ++out.groups_repaired;
  }

  store.rebuild(new_centroids, new_labels, position_offset);
  out.clusters_after = store.cluster_count();
  out.changed = true;

  if (cache != nullptr) {
    // The window caches (cluster, tokens) pairs; token positions — and so
    // residency — are stable across the rebuild, only the labels move.
    std::vector<Index> token_to_cluster(
        static_cast<std::size_t>(position_offset + token_count), -1);
    for (std::size_t i = 0; i < new_labels.size(); ++i) {
      token_to_cluster[static_cast<std::size_t>(position_offset) + i] = new_labels[i];
    }
    cache->remap_window(token_to_cluster);
  }
  return out;
}

}  // namespace ckv
