// Distance metrics for clustering in the semantic space. The paper (§III-B)
// argues for cosine distance because key vectors contain outlier channels
// with large magnitudes; L2 and inner product are kept for the Fig. 11b
// ablation.
#pragma once

#include <span>
#include <string>

#include "util/common.hpp"

namespace ckv {

enum class DistanceMetric {
  kCosine,        ///< D = 1 - cos(a, b): the ClusterKV default
  kL2,            ///< Euclidean distance
  kInnerProduct,  ///< -<a, b> treated as distance (larger dot = closer)
};

/// Similarity (negated distance): larger means closer, so argmax-based
/// assignment code is metric-agnostic.
double similarity(DistanceMetric metric, std::span<const float> a,
                  std::span<const float> b);

/// Parses "cosine" / "l2" / "ip"; throws on unknown names.
DistanceMetric parse_distance_metric(std::string_view name);

/// Display name for tables ("cosine", "L2", "inner-product").
std::string to_string(DistanceMetric metric);

}  // namespace ckv
