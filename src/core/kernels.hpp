// CPU re-implementations of the paper's CUDA kernels (§IV-B, Fig. 7),
// preserving their structure so the kernel-level design points remain
// benchmarkable: per-head parallel blocks, strided traversal of the token
// sequence (distant tokens land in different clusters, reducing conflicts
// on the accumulation slots), and channel-dimension partitioning P.
#pragma once

#include <span>
#include <vector>

#include "core/distance.hpp"
#include "tensor/matrix.hpp"
#include "util/common.hpp"

namespace ckv {

/// Assignment step: label[i] = argmax_c similarity(metric, keys[i],
/// centroids[c]). For the cosine metric, pass pre-normalized centroids and
/// set keys_normalized when keys are unit length to use the fast dot path.
std::vector<Index> assign_labels(const Matrix& keys, const Matrix& centroids,
                                 DistanceMetric metric);

/// Centroid update step mirroring Fig. 7: accumulates keys per cluster
/// into (centroids_out, counts_out) walking the sequence with the given
/// stride pattern and splitting channels into `channel_partitions` chunks.
/// centroids_out rows are the *means* of assigned keys on return; clusters
/// with no members keep their previous row (copied from `previous`).
void centroid_update(const Matrix& keys, std::span<const Index> labels,
                     const Matrix& previous, Index channel_partitions,
                     Matrix& centroids_out, std::vector<Index>& counts_out);

/// Work estimate of one assignment step in multiply-accumulate operations
/// (the O(n_i * C * L * d) of §III-D Concern 1, per iteration).
Index assignment_flops(Index num_keys, Index num_clusters, Index head_dim) noexcept;

}  // namespace ckv
