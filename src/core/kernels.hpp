// CPU re-implementations of the paper's CUDA kernels (§IV-B, Fig. 7),
// preserving their structure so the kernel-level design points remain
// benchmarkable: per-head parallel blocks, strided traversal of the token
// sequence (distant tokens land in different clusters, reducing conflicts
// on the accumulation slots), and channel-dimension partitioning P.
//
// The batched_scores / batched_argmax family below is the fused, SIMD
// form of every scoring loop in the codebase (clustering assignment,
// cluster selection, repair pair scoring, attention scores). All three
// distance metrics reduce to a dot product plus a per-row adjustment:
//   cosine: dot * (1 / (|q| |c|))
//   L2:     -|q - c|^2            (argmax form: dot - |c|^2 / 2)
//   IP:     dot
// Reductions use the fixed-lane accumulation of tensor/vec_ops (dot_f32),
// so a given (query, row) score is bit-identical regardless of batching,
// blocking, or thread count; large batches are chunked across the
// persistent worker pool (util/parallel). See docs/PERFORMANCE.md.
#pragma once

#include <span>
#include <vector>

#include "core/distance.hpp"
#include "tensor/matrix.hpp"
#include "util/common.hpp"

namespace ckv {

/// Scores one query against the row block [row_begin, row_end) of `rows`:
/// out[i] = similarity(metric, query, rows.row(row_begin + i)) * scale.
/// out.size() must equal row_end - row_begin. Matches the scalar
/// similarity() reference within float accumulation error (~1e-6 relative
/// for unit-scale vectors).
void batched_scores(const Matrix& rows, Index row_begin, Index row_end,
                    std::span<const float> query, DistanceMetric metric,
                    std::span<float> out, float scale = 1.0f);

/// Convenience overload over every row of `rows`.
void batched_scores(const Matrix& rows, std::span<const float> query,
                    DistanceMetric metric, std::span<float> out, float scale = 1.0f);

/// Gathered dot scores: out[i] = dot(query, rows.row(positions[i])) * scale.
/// The attention-score kernel over a selected token subset.
void batched_dot_at(const Matrix& rows, std::span<const Index> positions,
                    std::span<const float> query, std::span<float> out,
                    float scale = 1.0f);

/// One-to-one scores: out[i] = similarity(metric, a.row(i), b.row(pairs[i])).
/// The k-means fit kernel (each key against its assigned centroid).
void batched_pair_scores(const Matrix& a, const Matrix& b,
                         std::span<const Index> pairs, DistanceMetric metric,
                         std::span<float> out);

/// Assignment kernel: labels[i] = argmax_c similarity(metric, keys.row(i),
/// centroids.row(c)), ties broken toward the lower cluster id. GEMM-style:
/// key blocks stream the centroid matrix once per block, with the
/// per-centroid metric adjustment precomputed. Per-key results are
/// independent of blocking and thread count.
std::vector<Index> batched_argmax(const Matrix& keys, const Matrix& centroids,
                                  DistanceMetric metric);

/// Assignment step: label[i] = argmax_c similarity(metric, keys[i],
/// centroids[c]). Retained name for the Lloyd iteration; delegates to
/// batched_argmax.
std::vector<Index> assign_labels(const Matrix& keys, const Matrix& centroids,
                                 DistanceMetric metric);

/// Centroid update step mirroring Fig. 7: accumulates keys per cluster
/// into (centroids_out, counts_out) walking the sequence with the given
/// stride pattern and splitting channels into `channel_partitions` chunks.
/// centroids_out rows are the *means* of assigned keys on return; clusters
/// with no members keep their previous row (copied from `previous`).
/// Channel partitions are independent accumulation slots, so they run on
/// the worker pool; the token-order walk within each channel is fixed,
/// keeping the means bit-identical for every P-compatible thread count.
void centroid_update(const Matrix& keys, std::span<const Index> labels,
                     const Matrix& previous, Index channel_partitions,
                     Matrix& centroids_out, std::vector<Index>& counts_out);

/// Work estimate of one assignment step in multiply-accumulate operations
/// (the O(n_i * C * L * d) of §III-D Concern 1, per iteration).
Index assignment_flops(Index num_keys, Index num_clusters, Index head_dim) noexcept;

}  // namespace ckv
