#include "core/cluster_cache.hpp"

#include <algorithm>
#include <map>

namespace ckv {

ClusterCache::ClusterCache(Index depth) : depth_(depth) {
  expects(depth >= 0, "ClusterCache: depth must be non-negative");
}

std::unordered_set<Index> ClusterCache::resident_tokens() const {
  std::unordered_set<Index> resident;
  for (const auto& step_entry : window_) {
    for (const auto& [cluster, tokens] : step_entry) {
      resident.insert(tokens.begin(), tokens.end());
    }
  }
  return resident;
}

ClusterCache::StepResult ClusterCache::step(
    const std::vector<std::pair<Index, std::vector<Index>>>& selected) {
  StepResult result;
  const auto resident_before = resident_tokens();

  for (const auto& [cluster, tokens] : selected) {
    for (const Index token : tokens) {
      if (resident_before.contains(token)) {
        ++result.hits;
      } else {
        ++result.misses;
        result.missing_tokens.push_back(token);
      }
    }
  }

  window_.push_front(selected);
  while (static_cast<Index>(window_.size()) > std::max<Index>(depth_, 0)) {
    window_.pop_back();
  }

  const auto resident_after = resident_tokens();
  for (const Index token : resident_before) {
    if (!resident_after.contains(token)) {
      result.evicted_tokens.push_back(token);
    }
  }
  std::sort(result.evicted_tokens.begin(), result.evicted_tokens.end());
  std::sort(result.missing_tokens.begin(), result.missing_tokens.end());
  result.missing_tokens.erase(
      std::unique(result.missing_tokens.begin(), result.missing_tokens.end()),
      result.missing_tokens.end());

  total_hits_ += result.hits;
  total_misses_ += result.misses;
  ++steps_;
  return result;
}

void ClusterCache::remap_window(std::span<const Index> token_to_cluster) {
  for (auto& step_entry : window_) {
    std::map<Index, std::vector<Index>> regrouped;
    for (const auto& [cluster, tokens] : step_entry) {
      for (const Index token : tokens) {
        expects(token >= 0 && token < static_cast<Index>(token_to_cluster.size()) &&
                    token_to_cluster[static_cast<std::size_t>(token)] >= 0,
                "ClusterCache::remap_window: cached token lost its cluster");
        regrouped[token_to_cluster[static_cast<std::size_t>(token)]].push_back(token);
      }
    }
    step_entry.clear();
    for (auto& [cluster, tokens] : regrouped) {
      std::sort(tokens.begin(), tokens.end());
      tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
      step_entry.emplace_back(cluster, std::move(tokens));
    }
  }
}

double ClusterCache::hit_rate() const noexcept {
  const std::int64_t total = total_hits_ + total_misses_;
  return total == 0 ? 0.0 : static_cast<double>(total_hits_) / static_cast<double>(total);
}

void ClusterCache::reset_counters() noexcept {
  total_hits_ = 0;
  total_misses_ = 0;
  steps_ = 0;
}

}  // namespace ckv
