#include "core/cluster_cache.hpp"

#include <algorithm>

namespace ckv {

ClusterCache::ClusterCache(Index depth) : depth_(depth) {
  expects(depth >= 0, "ClusterCache: depth must be non-negative");
}

std::unordered_set<Index> ClusterCache::resident_tokens() const {
  std::unordered_set<Index> resident;
  for (const auto& step_entry : window_) {
    for (const auto& [cluster, tokens] : step_entry) {
      resident.insert(tokens.begin(), tokens.end());
    }
  }
  return resident;
}

ClusterCache::StepResult ClusterCache::step(
    const std::vector<std::pair<Index, std::vector<Index>>>& selected) {
  StepResult result;
  const auto resident_before = resident_tokens();
  std::unordered_set<Index> in_flight_tokens;
  for (const auto& [cluster, tokens] : in_flight_) {
    in_flight_tokens.insert(tokens.begin(), tokens.end());
  }

  for (const auto& [cluster, tokens] : selected) {
    for (const Index token : tokens) {
      if (resident_before.contains(token)) {
        ++result.hits;
      } else if (in_flight_tokens.contains(token)) {
        // Covered by a speculative fetch issued after the previous step:
        // the bytes cross PCIe either way (it is a miss), but the copy
        // overlapped the intervening compute instead of stalling now.
        ++result.misses;
        ++result.prefetch_hits;
        result.prefetched_tokens.push_back(token);
        in_flight_tokens.erase(token);
      } else {
        ++result.misses;
        result.missing_tokens.push_back(token);
      }
    }
  }
  // In-flight entries live exactly one step: whatever this selection did
  // not claim was a prediction miss.
  // ckv-lint: allow(unordered-iter) -- sorted immediately below
  result.wasted_tokens.assign(in_flight_tokens.begin(), in_flight_tokens.end());
  std::sort(result.wasted_tokens.begin(), result.wasted_tokens.end());
  in_flight_.clear();

  window_.push_front(selected);
  while (static_cast<Index>(window_.size()) > std::max<Index>(depth_, 0)) {
    window_.pop_back();
  }

  const auto resident_after = resident_tokens();
  for (const Index token : resident_before) {
    if (!resident_after.contains(token)) {
      result.evicted_tokens.push_back(token);
    }
  }
  std::sort(result.evicted_tokens.begin(), result.evicted_tokens.end());
  std::sort(result.missing_tokens.begin(), result.missing_tokens.end());
  result.missing_tokens.erase(
      std::unique(result.missing_tokens.begin(), result.missing_tokens.end()),
      result.missing_tokens.end());
  std::sort(result.prefetched_tokens.begin(), result.prefetched_tokens.end());
  result.prefetched_tokens.erase(
      std::unique(result.prefetched_tokens.begin(), result.prefetched_tokens.end()),
      result.prefetched_tokens.end());

  total_hits_ += result.hits;
  total_misses_ += result.misses;
  total_prefetch_hits_ += result.prefetch_hits;
  total_prefetch_wasted_ += static_cast<std::int64_t>(result.wasted_tokens.size());
  ++steps_;
  return result;
}

std::vector<Index> ClusterCache::issue_fetches(
    std::span<const std::pair<Index, std::span<const Index>>> candidates) {
  // One reconstruction of the filter sets for the whole batch: the engine
  // issues up to prefetch_clusters candidates per step per head.
  auto seen = resident_tokens();
  for (const auto& [c, in_flight_tokens] : in_flight_) {
    // `in_flight_tokens` here binds the ordered map's vector value;
    // inserting into a set is order-free anyway.
    // ckv-lint: allow(unordered-iter) -- order-free set insert
    seen.insert(in_flight_tokens.begin(), in_flight_tokens.end());
  }
  std::vector<Index> all_issued;
  for (const auto& [cluster, tokens] : candidates) {
    expects(cluster >= 0, "ClusterCache::issue_fetches: negative cluster id");
    std::vector<Index> issued;
    for (const Index token : tokens) {
      if (seen.insert(token).second) {
        issued.push_back(token);
      }
    }
    if (issued.empty()) {
      continue;
    }
    auto& entry = in_flight_[cluster];
    entry.insert(entry.end(), issued.begin(), issued.end());
    std::sort(entry.begin(), entry.end());
    entry.erase(std::unique(entry.begin(), entry.end()), entry.end());
    total_prefetch_issued_ += static_cast<std::int64_t>(issued.size());
    all_issued.insert(all_issued.end(), issued.begin(), issued.end());
  }
  std::sort(all_issued.begin(), all_issued.end());
  return all_issued;
}

std::vector<Index> ClusterCache::issue_fetch(Index cluster,
                                             std::span<const Index> tokens) {
  const std::pair<Index, std::span<const Index>> candidate{cluster, tokens};
  return issue_fetches(std::span{&candidate, 1});
}

std::vector<Index> ClusterCache::cancel_fetches() {
  std::vector<Index> canceled;
  for (const auto& [cluster, tokens] : in_flight_) {
    canceled.insert(canceled.end(), tokens.begin(), tokens.end());
  }
  in_flight_.clear();
  std::sort(canceled.begin(), canceled.end());
  total_prefetch_wasted_ += static_cast<std::int64_t>(canceled.size());
  return canceled;
}

Index ClusterCache::in_flight_tokens() const noexcept {
  Index count = 0;
  for (const auto& [cluster, tokens] : in_flight_) {
    count += static_cast<Index>(tokens.size());
  }
  return count;
}

void ClusterCache::remap_window(std::span<const Index> token_to_cluster) {
  const auto relabel = [&token_to_cluster](
                           const std::vector<std::pair<Index, std::vector<Index>>>&
                               groups) {
    std::map<Index, std::vector<Index>> regrouped;
    for (const auto& [cluster, tokens] : groups) {
      for (const Index token : tokens) {
        expects(token >= 0 && token < static_cast<Index>(token_to_cluster.size()) &&
                    token_to_cluster[static_cast<std::size_t>(token)] >= 0,
                "ClusterCache::remap_window: cached token lost its cluster");
        regrouped[token_to_cluster[static_cast<std::size_t>(token)]].push_back(token);
      }
    }
    for (auto& [cluster, tokens] : regrouped) {
      std::sort(tokens.begin(), tokens.end());
      tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    }
    return regrouped;
  };

  for (auto& step_entry : window_) {
    auto regrouped = relabel(step_entry);
    step_entry.clear();
    for (auto& [cluster, tokens] : regrouped) {
      step_entry.emplace_back(cluster, std::move(tokens));
    }
  }
  // In-flight prefetches survive a repair rebuild under their new labels:
  // the issued copies are position-addressed, so only the grouping key
  // changes. Leaving them under the old ids would strand their store-side
  // reservations and turn covered tokens into demand misses.
  if (!in_flight_.empty()) {
    std::vector<std::pair<Index, std::vector<Index>>> flat(in_flight_.begin(),
                                                           in_flight_.end());
    in_flight_ = relabel(flat);
  }
}

double ClusterCache::hit_rate() const noexcept {
  const std::int64_t total = total_hits_ + total_misses_;
  return total == 0 ? 0.0 : static_cast<double>(total_hits_) / static_cast<double>(total);
}

void ClusterCache::reset_counters() noexcept {
  total_hits_ = 0;
  total_misses_ = 0;
  total_prefetch_hits_ = 0;
  total_prefetch_issued_ = 0;
  total_prefetch_wasted_ = 0;
  steps_ = 0;
}

}  // namespace ckv
