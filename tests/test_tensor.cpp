#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.hpp"
#include "tensor/rmsnorm.hpp"
#include "tensor/rng.hpp"
#include "tensor/rope.hpp"
#include "tensor/softmax.hpp"
#include "tensor/stats.hpp"
#include "tensor/topk.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

TEST(Matrix, ConstructAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  m.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.row(1)[2], 5.0f);
}

TEST(Matrix, AppendRowAdoptsWidth) {
  Matrix m;
  const std::vector<float> r0{1.0f, 2.0f};
  m.append_row(r0);
  EXPECT_EQ(m.rows(), 1);
  EXPECT_EQ(m.cols(), 2);
  const std::vector<float> bad{1.0f, 2.0f, 3.0f};
  EXPECT_THROW(m.append_row(bad), std::invalid_argument);
}

TEST(Matrix, OutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.row(2), std::invalid_argument);
  EXPECT_THROW((void)m.at(0, 2), std::invalid_argument);
  EXPECT_THROW((void)m.row(-1), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(1);
  Matrix m(3, 5);
  rng.fill_normal(m.flat(), 0.0, 1.0);
  const auto tt = m.transposed().transposed();
  EXPECT_DOUBLE_EQ(frobenius_distance(m, tt), 0.0);
}

TEST(Matrix, RowSlice) {
  Matrix m(4, 2);
  for (Index r = 0; r < 4; ++r) {
    m.at(r, 0) = static_cast<float>(r);
  }
  const auto s = m.row_slice(1, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_FLOAT_EQ(s.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(1, 0), 2.0f);
}

TEST(Matrix, MatmulIdentity) {
  Rng rng(2);
  Matrix a(3, 3);
  rng.fill_normal(a.flat(), 0.0, 1.0);
  Matrix eye(3, 3);
  for (Index i = 0; i < 3; ++i) {
    eye.at(i, i) = 1.0f;
  }
  EXPECT_LT(frobenius_distance(matmul(a, eye), a), 1e-6);
  EXPECT_LT(frobenius_distance(matmul(eye, a), a), 1e-6);
}

TEST(Matrix, MatvecMatchesManual) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0f;
  m.at(0, 1) = 2.0f;
  m.at(1, 0) = 3.0f;
  m.at(1, 1) = 4.0f;
  const std::vector<float> v{1.0f, -1.0f};
  const auto out = matvec(m, v);
  EXPECT_FLOAT_EQ(out[0], -1.0f);
  EXPECT_FLOAT_EQ(out[1], -1.0f);
  const auto out2 = vecmat(v, m);
  EXPECT_FLOAT_EQ(out2[0], -2.0f);
  EXPECT_FLOAT_EQ(out2[1], -2.0f);
}

TEST(VecOps, DotAndNorm) {
  const std::vector<float> a{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
}

TEST(VecOps, CosineSimilarityProperties) {
  Rng rng(3);
  const auto v = rng.unit_vector(16);
  EXPECT_NEAR(cosine_similarity(v, v), 1.0, 1e-6);
  std::vector<float> neg(v.begin(), v.end());
  scale_in_place(neg, -2.0f);
  EXPECT_NEAR(cosine_similarity(v, neg), -1.0, 1e-6);
  // Scale invariance: the property §III-B relies on.
  std::vector<float> scaled(v.begin(), v.end());
  scale_in_place(scaled, 42.0f);
  EXPECT_NEAR(cosine_similarity(v, scaled), 1.0, 1e-6);
}

TEST(VecOps, CosineOfZeroVectorIsZero) {
  const std::vector<float> z(4, 0.0f);
  const std::vector<float> v{1.0f, 0.0f, 0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(cosine_similarity(z, v), 0.0);
}

TEST(VecOps, SemanticDistanceRange) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const auto a = rng.unit_vector(8);
    const auto b = rng.unit_vector(8);
    const double d = semantic_distance(a, b);
    EXPECT_GE(d, 0.0 - 1e-9);
    EXPECT_LE(d, 2.0 + 1e-9);
  }
}

TEST(VecOps, NormalizeHandlesZero) {
  std::vector<float> z(4, 0.0f);
  normalize_in_place(z);
  for (const float x : z) {
    EXPECT_FLOAT_EQ(x, 0.0f);
  }
}

TEST(VecOps, AxpyAndAdd) {
  std::vector<float> y{1.0f, 1.0f};
  const std::vector<float> x{2.0f, 3.0f};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
  add_in_place(y, x);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
}

TEST(Softmax, SumsToOne) {
  std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f};
  softmax_in_place(x);
  double sum = 0.0;
  for (const float p : x) {
    sum += p;
    EXPECT_GT(p, 0.0f);
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(x[3], x[0]);
}

TEST(Softmax, StableUnderLargeValues) {
  std::vector<float> x{1000.0f, 1001.0f};
  softmax_in_place(x);
  EXPECT_NEAR(x[0] + x[1], 1.0, 1e-6);
  EXPECT_FALSE(std::isnan(x[0]));
}

TEST(Softmax, LogSoftmaxConsistent) {
  const std::vector<float> x{0.5f, -1.0f, 2.0f};
  auto probs = x;
  softmax_in_place(probs);
  const auto logp = log_softmax(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::exp(logp[i]), probs[i], 1e-6);
  }
}

TEST(Softmax, EntropyOfUniform) {
  const std::vector<float> u(8, 0.125f);
  EXPECT_NEAR(entropy(u), std::log(8.0), 1e-6);
}

TEST(Softmax, AttentionOutputMatchesFull) {
  Rng rng(5);
  Matrix values(6, 4);
  rng.fill_normal(values.flat(), 0.0, 1.0);
  std::vector<float> scores(6);
  for (auto& s : scores) {
    s = static_cast<float>(rng.normal());
  }
  std::vector<float> full(4);
  attention_output_full(scores, values, full);

  std::vector<Index> all{0, 1, 2, 3, 4, 5};
  std::vector<float> subset(4);
  attention_output(scores, all, values, subset);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(full[static_cast<std::size_t>(i)], subset[static_cast<std::size_t>(i)],
                1e-5);
  }
}

TEST(TopK, OrderAndTies) {
  const std::vector<float> s{1.0f, 3.0f, 3.0f, 2.0f};
  const auto top = top_k_indices(s, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);  // tie broken by lower index
  EXPECT_EQ(top[1], 2);
  EXPECT_EQ(top[2], 3);
}

TEST(TopK, ClampsK) {
  const std::vector<float> s{1.0f, 2.0f};
  EXPECT_EQ(top_k_indices(s, 10).size(), 2u);
  EXPECT_TRUE(top_k_indices(s, 0).empty());
}

TEST(TopK, ArgsortBothDirections) {
  const std::vector<float> s{2.0f, 1.0f, 3.0f};
  const auto desc = argsort_descending(s);
  EXPECT_EQ(desc, (std::vector<Index>{2, 0, 1}));
  const auto asc = argsort_ascending(s);
  EXPECT_EQ(asc, (std::vector<Index>{1, 0, 2}));
}

TEST(Rope, PositionZeroIsIdentity) {
  std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f};
  const auto orig = x;
  apply_rope(x, 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], orig[i], 1e-6);
  }
}

TEST(Rope, PreservesNorm) {
  Rng rng(6);
  std::vector<float> x(16);
  rng.fill_normal(x, 0.0, 1.0);
  const double before = norm2(x);
  apply_rope(x, 1234);
  EXPECT_NEAR(norm2(x), before, 1e-4);
}

TEST(Rope, RelativePropertyOfDotProducts) {
  // RoPE's defining property: <rope(q, m), rope(k, n)> depends only on
  // (m - n) for the same underlying q, k.
  Rng rng(7);
  std::vector<float> q(8);
  std::vector<float> k(8);
  rng.fill_normal(q, 0.0, 1.0);
  rng.fill_normal(k, 0.0, 1.0);
  auto q1 = q;
  auto k1 = k;
  apply_rope(q1, 10);
  apply_rope(k1, 7);
  auto q2 = q;
  auto k2 = k;
  apply_rope(q2, 103);
  apply_rope(k2, 100);
  EXPECT_NEAR(dot(q1, k1), dot(q2, k2), 1e-4);
}

TEST(Rope, OddDimensionRejected) {
  std::vector<float> x(3, 1.0f);
  EXPECT_THROW(apply_rope(x, 1), std::invalid_argument);
}

TEST(RmsNorm, UnitScaleOutput) {
  std::vector<float> x{3.0f, -3.0f, 3.0f, -3.0f};
  std::vector<float> out(4);
  rms_norm(x, {}, out);
  // rms(x) = 3, so out = x / 3.
  EXPECT_NEAR(out[0], 1.0f, 1e-3);
  EXPECT_NEAR(out[1], -1.0f, 1e-3);
}

TEST(RmsNorm, WeightApplied) {
  std::vector<float> x{2.0f, 2.0f};
  std::vector<float> w{1.0f, 0.5f};
  std::vector<float> out(2);
  rms_norm(x, w, out);
  EXPECT_NEAR(out[0] / out[1], 2.0, 1e-5);
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.normal();
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
}

}  // namespace
}  // namespace ckv
