#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/transfer_engine.hpp"

namespace ckv {
namespace {

// 10 GB/s = 1e7 bytes per virtual millisecond; round numbers below are
// chosen so every drain boundary is exact in double arithmetic.
constexpr double kGbps = 10.0;
constexpr double kBytesPerMs = kGbps * 1e6;

using Priority = TransferEngine::Priority;

TEST(TransferEngine, SingleRequestCompletionMatchesWireTime) {
  TransferEngine eng(kGbps);
  const auto id = eng.enqueue(7, Priority::kDemand, 5.0 * kBytesPerMs);
  EXPECT_EQ(id, 1u);
  EXPECT_DOUBLE_EQ(eng.queued_bytes(), 5.0 * kBytesPerMs);
  EXPECT_EQ(eng.queue_depth(), 1);
  EXPECT_DOUBLE_EQ(eng.demand_backlog_ms(), 5.0);

  const auto done = eng.drain_until(10.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, id);
  EXPECT_EQ(done[0].client, 7);
  EXPECT_DOUBLE_EQ(done[0].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(done[0].end_ms, 5.0);  // wire time, not tick end
  EXPECT_DOUBLE_EQ(eng.busy_ms_total(), 5.0);
  EXPECT_DOUBLE_EQ(eng.drained_bytes_total(), 5.0 * kBytesPerMs);
  EXPECT_EQ(eng.queue_depth(), 0);
}

TEST(TransferEngine, DemandPreemptsEarlierSpeculative) {
  TransferEngine eng(kGbps);
  const auto spec = eng.enqueue(1, Priority::kSpeculative, 4.0 * kBytesPerMs);
  const auto demand = eng.enqueue(2, Priority::kDemand, 4.0 * kBytesPerMs);
  // Demand enqueued second still crosses first; the spec copy queues
  // behind it and its completion time reflects the contention.
  const auto done = eng.drain_until(8.0);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].id, demand);
  EXPECT_DOUBLE_EQ(done[0].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(done[0].end_ms, 4.0);
  EXPECT_EQ(done[1].id, spec);
  EXPECT_DOUBLE_EQ(done[1].start_ms, 4.0);
  EXPECT_DOUBLE_EQ(done[1].end_ms, 8.0);
}

TEST(TransferEngine, FifoWithinPriorityByEnqueueSeq) {
  TransferEngine eng(kGbps);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(eng.enqueue(i, Priority::kDemand, 1.0 * kBytesPerMs));
  }
  const auto done = eng.drain_until(4.0);
  ASSERT_EQ(done.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(done[i].id, ids[static_cast<std::size_t>(i)]);
    EXPECT_DOUBLE_EQ(done[i].end_ms, static_cast<double>(i + 1));
  }
}

TEST(TransferEngine, PartialDrainCarriesProgressAcrossTicks) {
  TransferEngine eng(kGbps);
  const auto id = eng.enqueue(1, Priority::kDemand, 6.0 * kBytesPerMs);
  EXPECT_TRUE(eng.drain_until(4.0).empty());  // 4 of 6 ms drained
  EXPECT_DOUBLE_EQ(eng.queued_bytes(), 2.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(eng.demand_backlog_ms(), 2.0);
  EXPECT_EQ(eng.queue_depth(), 1);

  const auto done = eng.drain_until(7.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, id);
  EXPECT_DOUBLE_EQ(done[0].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(done[0].end_ms, 6.0);
  EXPECT_DOUBLE_EQ(eng.busy_ms_total(), 6.0);
}

TEST(TransferEngine, IdleCapacityIsLostNotBanked) {
  TransferEngine eng(kGbps);
  EXPECT_TRUE(eng.drain_until(100.0).empty());  // quiet wire
  const auto id = eng.enqueue(1, Priority::kDemand, 3.0 * kBytesPerMs);
  // The earlier idle window must not let this finish before 103 ms.
  EXPECT_TRUE(eng.drain_until(102.0).empty());
  const auto done = eng.drain_until(103.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, id);
  EXPECT_DOUBLE_EQ(done[0].start_ms, 100.0);
  EXPECT_DOUBLE_EQ(done[0].end_ms, 103.0);
  EXPECT_DOUBLE_EQ(eng.busy_ms_total(), 3.0);
}

TEST(TransferEngine, CancelRefundsUndrainedBytesOnly) {
  TransferEngine eng(kGbps);
  const auto front = eng.enqueue(1, Priority::kDemand, 2.0 * kBytesPerMs);
  const auto victim = eng.enqueue(2, Priority::kDemand, 4.0 * kBytesPerMs);
  const auto rear = eng.enqueue(3, Priority::kDemand, 2.0 * kBytesPerMs);
  // Drain 3 ms: front done, victim has 1 of 4 ms drained.
  const auto first = eng.drain_until(3.0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].id, front);

  EXPECT_DOUBLE_EQ(eng.cancel(victim), 3.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(eng.cancel(victim), 0.0);  // unknown id now
  EXPECT_DOUBLE_EQ(eng.cancel(9999), 0.0);

  // The rear request inherits the refunded wire immediately.
  const auto done = eng.drain_until(5.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, rear);
  EXPECT_DOUBLE_EQ(done[0].end_ms, 5.0);
  EXPECT_DOUBLE_EQ(eng.queued_bytes(), 0.0);
}

TEST(TransferEngine, ResolveSpecSplitsLateHitsAndRefund) {
  TransferEngine eng(kGbps);
  const auto id = eng.enqueue(1, Priority::kSpeculative, 10.0 * kBytesPerMs);
  eng.drain_until(4.0);  // 4 of 10 ms drained

  // 7 ms of hits against 4 ms drained: drained capacity covers hits
  // first, so 3 ms of hits are late and the 3 ms never-drained
  // non-hits are refunded waste.
  const auto res = eng.resolve_spec(id, 7.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(res.late_hit_bytes, 3.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(res.refunded_bytes, 3.0 * kBytesPerMs);
  EXPECT_EQ(eng.queue_depth(), 0);
  EXPECT_DOUBLE_EQ(eng.queued_bytes(), 0.0);
}

TEST(TransferEngine, ResolveFullyLandedSpecReportsNoLateBytes) {
  TransferEngine eng(kGbps);
  const auto id = eng.enqueue(1, Priority::kSpeculative, 2.0 * kBytesPerMs);
  const auto done = eng.drain_until(5.0);
  ASSERT_EQ(done.size(), 1u);  // fully landed, parked until resolution
  const auto res = eng.resolve_spec(id, 2.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(res.late_hit_bytes, 0.0);
  EXPECT_DOUBLE_EQ(res.refunded_bytes, 0.0);

  // Resolving an unknown id is a no-op split.
  const auto gone = eng.resolve_spec(id, 1.0);
  EXPECT_DOUBLE_EQ(gone.late_hit_bytes, 0.0);
  EXPECT_DOUBLE_EQ(gone.refunded_bytes, 0.0);
}

TEST(TransferEngine, UndrainedSpecResolvesToLatePlusRefund) {
  TransferEngine eng(kGbps);
  const auto id = eng.enqueue(1, Priority::kSpeculative, 5.0 * kBytesPerMs);
  // No drain at all: every hit byte is late, the rest refunds.
  const auto res = eng.resolve_spec(id, 2.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(res.late_hit_bytes, 2.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(res.refunded_bytes, 3.0 * kBytesPerMs);
}

TEST(TransferEngine, QueuedBytesByPriority) {
  TransferEngine eng(kGbps);
  eng.enqueue(1, Priority::kDemand, 3.0 * kBytesPerMs);
  eng.enqueue(2, Priority::kSpeculative, 5.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(eng.queued_bytes(Priority::kDemand), 3.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(eng.queued_bytes(Priority::kSpeculative), 5.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(eng.queued_bytes(), 8.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(eng.demand_backlog_ms(), 3.0);  // spec bytes excluded
}

TEST(TransferEngine, DeterministicReplayProducesIdenticalCompletions) {
  auto run = [] {
    TransferEngine eng(kGbps / 4.0);
    std::vector<TransferEngine::Completion> all;
    std::uint64_t spec = 0;
    for (int tick = 1; tick <= 12; ++tick) {
      if (tick % 3 == 1) {
        eng.enqueue(tick, Priority::kDemand, 1.5 * kBytesPerMs);
      }
      if (tick % 4 == 1) {
        spec = eng.enqueue(tick, Priority::kSpeculative, 2.5 * kBytesPerMs);
      }
      if (tick % 5 == 0 && spec != 0) {
        eng.resolve_spec(spec, 1.0 * kBytesPerMs);
        spec = 0;
      }
      auto done = eng.drain_until(static_cast<double>(tick) * 2.0);
      all.insert(all.end(), done.begin(), done.end());
    }
    return all;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].client, b[i].client);
    EXPECT_DOUBLE_EQ(a[i].bytes, b[i].bytes);
    EXPECT_DOUBLE_EQ(a[i].start_ms, b[i].start_ms);
    EXPECT_DOUBLE_EQ(a[i].end_ms, b[i].end_ms);
  }
}

TEST(TransferEngine, InvalidArgumentsThrow) {
  EXPECT_THROW(TransferEngine(0.0), std::invalid_argument);
  EXPECT_THROW(TransferEngine(-1.0), std::invalid_argument);
  TransferEngine eng(kGbps);
  EXPECT_THROW(eng.enqueue(1, Priority::kDemand, -1.0), std::invalid_argument);
  const auto demand_id = eng.enqueue(1, Priority::kDemand, 4.0);
  EXPECT_THROW(eng.resolve_spec(demand_id, 1.0), std::invalid_argument);  // not spec
  const auto id = eng.enqueue(1, Priority::kSpeculative, 4.0);
  EXPECT_THROW(eng.resolve_spec(id, -1.0), std::invalid_argument);
  // Hits above the request total clamp to the total rather than throwing.
  const auto clamped = eng.resolve_spec(id, 8.0);
  EXPECT_DOUBLE_EQ(clamped.late_hit_bytes, 4.0);
  EXPECT_DOUBLE_EQ(clamped.refunded_bytes, 0.0);
  eng.drain_until(1.0);
  EXPECT_THROW(eng.drain_until(0.5), std::invalid_argument);  // clock reversal
}

TEST(TransferEngine, RateFactorScalesDrainAndBacklog) {
  TransferEngine eng(kGbps);
  eng.set_rate_factor(0.5);  // brownout: half the wire
  EXPECT_DOUBLE_EQ(eng.rate_bytes_per_ms(), 0.5 * kBytesPerMs);
  const auto id = eng.enqueue(1, Priority::kDemand, 2.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(eng.demand_backlog_ms(), 4.0);  // 2 ms of bytes at half rate
  EXPECT_TRUE(eng.drain_until(3.0).empty());
  const auto done = eng.drain_until(4.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, id);
  EXPECT_DOUBLE_EQ(done[0].end_ms, 4.0);

  // Brownout over: the factor resets and the wire runs at full rate again.
  eng.set_rate_factor(1.0);
  eng.enqueue(2, Priority::kDemand, 2.0 * kBytesPerMs);
  const auto after = eng.drain_until(6.0);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_DOUBLE_EQ(after[0].end_ms, 6.0);

  EXPECT_THROW(eng.set_rate_factor(0.0), std::invalid_argument);
  EXPECT_THROW(eng.set_rate_factor(1.5), std::invalid_argument);
}

TEST(TransferEngine, FaultHookRetriesDemandBehindBacklog) {
  TransferEngine eng(kGbps);
  // First attempt of request A fails on the wire; the retry re-queues at
  // the back of the demand class, behind B.
  eng.set_fault_hook(
      [](std::uint64_t, Index client, Index attempt) {
        return client == 1 && attempt == 0;
      },
      /*max_retries=*/2);
  const auto a = eng.enqueue(1, Priority::kDemand, 2.0 * kBytesPerMs);
  const auto b = eng.enqueue(2, Priority::kDemand, 2.0 * kBytesPerMs);
  const auto done = eng.drain_until(10.0);
  ASSERT_EQ(done.size(), 2u);
  // A burned [0,2) and failed; B crossed [2,4); A's retry crossed [4,6).
  EXPECT_EQ(done[0].id, b);
  EXPECT_DOUBLE_EQ(done[0].end_ms, 4.0);
  EXPECT_FALSE(done[0].failed);
  EXPECT_EQ(done[0].attempts, 0);
  EXPECT_EQ(done[1].id, a);
  EXPECT_DOUBLE_EQ(done[1].end_ms, 6.0);
  EXPECT_FALSE(done[1].failed);
  EXPECT_EQ(done[1].attempts, 1);
  // The failed first crossing stays billed as busy wire time.
  EXPECT_DOUBLE_EQ(eng.busy_ms_total(), 6.0);
  EXPECT_EQ(eng.wire_retries_total(), 1);
  EXPECT_EQ(eng.wire_failures_total(), 0);
}

TEST(TransferEngine, FaultHookExhaustionSurfacesTypedFailure) {
  TransferEngine eng(kGbps);
  eng.set_fault_hook([](std::uint64_t, Index, Index) { return true; },
                     /*max_retries=*/1);
  const auto id = eng.enqueue(3, Priority::kDemand, 1.0 * kBytesPerMs);
  const auto done = eng.drain_until(10.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, id);
  EXPECT_TRUE(done[0].failed);
  EXPECT_EQ(done[0].attempts, 1);
  EXPECT_EQ(eng.wire_retries_total(), 1);
  EXPECT_EQ(eng.wire_failures_total(), 1);
  EXPECT_EQ(eng.queue_depth(), 0);  // failed request leaves the wire

  // Speculative traffic never consults the hook.
  eng.enqueue(4, Priority::kSpeculative, 1.0 * kBytesPerMs);
  const auto spec = eng.drain_until(20.0);
  ASSERT_EQ(spec.size(), 1u);
  EXPECT_FALSE(spec[0].failed);
  EXPECT_EQ(eng.wire_failures_total(), 1);
}

// Pinned regression: canceling a demand fetch that already drained part of
// its retry attempt must refund only the undrained remainder, exactly once.
// (A retry resets drained progress to zero — the bytes its failed attempt
// crossed are lost wire time, not deliverable progress — so the refund
// after a partial retry drain is total minus the *current* attempt's
// progress, never total plus the failed crossing, and a second cancel of
// the same id refunds nothing.)
TEST(TransferEngine, CancelDuringRetryRefundsUndrainedBytesOnce) {
  TransferEngine eng(kGbps);
  eng.set_fault_hook(
      [](std::uint64_t, Index client, Index attempt) {
        return client == 1 && attempt == 0;
      },
      /*max_retries=*/2);
  const auto victim = eng.enqueue(1, Priority::kDemand, 4.0 * kBytesPerMs);
  // Attempt 0 crosses [0,4) and fails; the retry restarts from zero and
  // drains 2 of its 4 ms by t=6.
  EXPECT_TRUE(eng.drain_until(6.0).empty());
  EXPECT_DOUBLE_EQ(eng.busy_ms_total(), 6.0);

  // Cancel mid-retry: refund the 2 ms of bytes the retry has not drained.
  EXPECT_DOUBLE_EQ(eng.cancel(victim), 2.0 * kBytesPerMs);
  EXPECT_DOUBLE_EQ(eng.cancel(victim), 0.0);  // no double refund
  EXPECT_EQ(eng.queue_depth(), 0);
  EXPECT_DOUBLE_EQ(eng.queued_bytes(), 0.0);

  // The wire is genuinely free for the next request.
  const auto next = eng.enqueue(2, Priority::kDemand, 1.0 * kBytesPerMs);
  const auto done = eng.drain_until(7.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, next);
  EXPECT_DOUBLE_EQ(done[0].end_ms, 7.0);
}

TEST(TransferEngine, ZeroByteRequestCompletesImmediately) {
  TransferEngine eng(kGbps);
  const auto id = eng.enqueue(1, Priority::kDemand, 0.0);
  const auto done = eng.drain_until(1.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, id);
  EXPECT_DOUBLE_EQ(done[0].end_ms, done[0].start_ms);
  EXPECT_DOUBLE_EQ(eng.busy_ms_total(), 0.0);
}

}  // namespace
}  // namespace ckv
