#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/cluster_repair.hpp"
#include "core/clusterkv_engine.hpp"
#include "core/kmeans.hpp"
#include "model/procedural.hpp"
#include "tensor/rng.hpp"
#include "tensor/stats.hpp"
#include "tensor/topk.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

/// Keys drawn from well-separated unit directions, in contiguous runs so
/// chunk boundaries split topics deterministically.
Matrix planted_keys(Index n, Index dim, Index topics, std::uint64_t seed,
                    std::vector<Index>* truth = nullptr) {
  Rng rng(seed);
  Matrix dirs(topics, dim);
  for (Index t = 0; t < topics; ++t) {
    copy_to(rng.unit_vector(dim), dirs.row(t));
  }
  Matrix keys(n, dim);
  for (Index i = 0; i < n; ++i) {
    const Index t = (i * topics) / n;  // topic runs of n/topics tokens
    if (truth != nullptr) {
      truth->push_back(t);
    }
    auto row = keys.row(i);
    copy_to(dirs.row(t), row);
    for (float& x : row) {
      x += static_cast<float>(rng.normal(0.0, 0.03));
    }
  }
  return keys;
}

/// Registers `keys` into the store as `batches` equal position ranges,
/// each clustered independently (the chunk-local regression in vitro).
std::vector<Index> register_batches(CentroidStore& store, const Matrix& keys,
                                    Index batches, Index clusters_per_batch,
                                    std::uint64_t seed) {
  std::vector<Index> batch_firsts;
  Rng rng(seed);
  const Index per_batch = keys.rows() / batches;
  for (Index b = 0; b < batches; ++b) {
    const Index begin = b * per_batch;
    const Index end = b + 1 == batches ? keys.rows() : begin + per_batch;
    KMeansConfig config;
    config.num_clusters = clusters_per_batch;
    config.max_iterations = 50;
    const auto result = kmeans_cluster(keys.row_slice(begin, end), config, rng);
    batch_firsts.push_back(store.cluster_count());
    store.add_clusters(result.centroids, result.labels, begin);
  }
  return batch_firsts;
}

TEST(ClusterRepair, MergesAdjacentBatchesAndKeepsEveryToken) {
  const Index n = 240;
  const auto keys = planted_keys(n, 16, 4, 21);
  CentroidStore store(16);
  const auto batch_firsts = register_batches(store, keys, 4, 3, 5);
  const Index before = store.cluster_count();
  ASSERT_EQ(store.token_count(), n);

  ClusterRepairConfig config;
  config.merge_threshold = -1.0;  // exhaustive: every adjacent pair merges
  config.refine_iterations = 50;
  config.tokens_per_cluster = 60;
  const auto outcome =
      repair_clusters(store, keys, batch_firsts, 0, nullptr, config);

  EXPECT_TRUE(outcome.changed);
  EXPECT_EQ(outcome.clusters_before, before);
  EXPECT_EQ(outcome.groups_repaired, 1);  // one transitive chain
  EXPECT_EQ(outcome.clusters_after, store.cluster_count());
  EXPECT_GT(outcome.scoring_flops, 0);
  EXPECT_GT(outcome.refine_flops, 0);
  // Rebuild preserves the token universe exactly: every position once.
  EXPECT_EQ(store.token_count(), n);
  std::set<Index> seen;
  for (Index c = 0; c < store.cluster_count(); ++c) {
    EXPECT_GT(store.size_of(c), 0);
    for (const Index t : store.tokens_of(c)) {
      EXPECT_TRUE(seen.insert(t).second);
    }
  }
  EXPECT_EQ(static_cast<Index>(seen.size()), n);
  // 240 tokens at 60 per cluster: the merged group re-clusters to 4.
  EXPECT_EQ(store.cluster_count(), 4);
}

TEST(ClusterRepair, RepairedClustersRecoverPlantedTopics) {
  std::vector<Index> truth;
  const auto keys = planted_keys(300, 24, 5, 22, &truth);
  CentroidStore store(24);
  const auto batch_firsts = register_batches(store, keys, 5, 2, 6);

  ClusterRepairConfig config;
  config.merge_threshold = -1.0;
  config.refine_iterations = 60;
  config.tokens_per_cluster = 60;
  ASSERT_TRUE(repair_clusters(store, keys, batch_firsts, 0, nullptr, config).changed);
  ASSERT_EQ(store.cluster_count(), 5);

  // After repair, clusters align with the planted topics: pairwise label
  // agreement against the ground truth is near perfect.
  std::vector<Index> label(static_cast<std::size_t>(store.token_count()), -1);
  for (Index c = 0; c < store.cluster_count(); ++c) {
    for (const Index t : store.tokens_of(c)) {
      label[static_cast<std::size_t>(t)] = c;
    }
  }
  Index agree = 0;
  Index total = 0;
  for (std::size_t i = 0; i < truth.size(); i += 2) {
    for (std::size_t j = i + 1; j < truth.size(); j += 11) {
      const bool same_truth = truth[i] == truth[j];
      const bool same_label = label[i] == label[j];
      agree += same_truth == same_label ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.97);
}

TEST(ClusterRepair, HighThresholdIsNoOp) {
  const auto keys = planted_keys(200, 16, 8, 23);
  CentroidStore store(16);
  const auto batch_firsts = register_batches(store, keys, 4, 4, 7);
  const Index before = store.cluster_count();

  ClusterRepairConfig config;
  config.merge_threshold = 0.999999;  // nothing this similar exists
  config.refine_iterations = 10;
  const auto outcome =
      repair_clusters(store, keys, batch_firsts, 0, nullptr, config);
  EXPECT_FALSE(outcome.changed);
  EXPECT_EQ(outcome.groups_repaired, 0);
  EXPECT_EQ(outcome.refine_flops, 0);
  EXPECT_GT(outcome.scoring_flops, 0);  // pairs were scored, none crossed
  EXPECT_EQ(store.cluster_count(), before);
}

TEST(ClusterRepair, SingleBatchIsNoOp) {
  const auto keys = planted_keys(100, 16, 4, 24);
  CentroidStore store(16);
  const auto batch_firsts = register_batches(store, keys, 1, 4, 8);
  ClusterRepairConfig config;
  config.merge_threshold = -1.0;
  config.refine_iterations = 10;
  EXPECT_FALSE(repair_clusters(store, keys, batch_firsts, 0, nullptr, config).changed);
}

TEST(ClusterRepair, RemapsCacheWindowWithoutChangingResidentTokens) {
  const auto keys = planted_keys(120, 16, 3, 25);
  CentroidStore store(16);
  const auto batch_firsts = register_batches(store, keys, 3, 2, 9);

  // Cache a selection of cluster 0's tokens, then repair under it.
  ClusterCache cache(2);
  const auto tokens0 = store.tokens_of(0);
  const auto tokens3 = store.tokens_of(3);
  cache.step({{0, {tokens0.begin(), tokens0.end()}},
              {3, {tokens3.begin(), tokens3.end()}}});
  const auto resident_before = cache.resident_tokens();

  ClusterRepairConfig config;
  config.merge_threshold = -1.0;
  config.refine_iterations = 30;
  config.tokens_per_cluster = 40;
  ASSERT_TRUE(repair_clusters(store, keys, batch_firsts, 0, &cache, config).changed);

  // Residency is untouched; the window now speaks the rebuilt cluster ids,
  // so re-selecting the same tokens under their new clusters hits.
  EXPECT_EQ(cache.resident_tokens(), resident_before);
  std::vector<std::pair<Index, std::vector<Index>>> reselect;
  for (Index c = 0; c < store.cluster_count(); ++c) {
    std::vector<Index> cached;
    for (const Index t : store.tokens_of(c)) {
      if (resident_before.contains(t)) {
        cached.push_back(t);
      }
    }
    if (!cached.empty()) {
      reselect.emplace_back(c, std::move(cached));
    }
  }
  const auto r = cache.step(reselect);
  EXPECT_EQ(r.misses, 0);
  EXPECT_EQ(r.hits, static_cast<Index>(resident_before.size()));
}

// ---- engine-level repair ----

ClusterKVConfig repair_engine_config() {
  ClusterKVConfig config;
  config.sink_tokens = 8;
  config.tokens_per_cluster = 40;
  config.decode_interval = 16;
  config.decode_clusters = 2;
  config.kmeans_max_iterations = 100;
  // k-means++ seeding lands the one-shot baseline on the planted optimum,
  // so the repair-equivalence comparison is against the best clustering
  // the paper's pipeline can produce, not a random-seed local optimum.
  config.kmeans_init = KMeansInit::kPlusPlus;
  return config;
}

ProceduralParams planted_params() {
  ProceduralParams p;
  p.head_dim = 32;
  p.num_topics = 6;
  // Well-separated topics: k-means then converges to the planted partition
  // from any reasonable init, which is what makes the chunked+repair vs
  // one-shot equivalence exact instead of merely statistical.
  p.key_noise = 0.05;
  p.key_scale_sigma = 0.05;
  p.outlier_channels = 0;
  return p;
}

double jaccard(const std::vector<Index>& a, const std::vector<Index>& b) {
  const std::set<Index> sa(a.begin(), a.end());
  const std::set<Index> sb(b.begin(), b.end());
  Index both = 0;
  for (const Index x : sa) {
    both += sb.contains(x) ? 1 : 0;
  }
  const Index either = static_cast<Index>(sa.size() + sb.size()) - both;
  return either == 0 ? 1.0 : static_cast<double>(both) / static_cast<double>(either);
}

/// Repair equivalence: chunked prefill + exhaustive repair (merge every
/// adjacent pair, refine to convergence) selects the one-shot clustering's
/// top-B tokens on identical prompts. k-means converges to init-dependent
/// local optima, so the equivalence is stated as the strongest robust
/// form: identical cluster counts, near-identical selected sets (and
/// strictly closer than the unrepaired run), and recall recovered to
/// within noise of one-shot.
TEST(ClusterRepairEngine, ChunkedPlusExhaustiveRepairMatchesOneShot) {
  const auto params = planted_params();
  const Index prompt = 248;
  HeadStream stream(params, Rng(derive_seed(77, "head")), prompt);

  auto one_shot_config = repair_engine_config();
  one_shot_config.repair_refine_iterations = 0;  // one-shot never repairs
  ClusterKVEngine one_shot(params.head_dim, one_shot_config,
                           Rng(derive_seed(77, "one-shot")));
  one_shot.observe_prefill(stream.keys(), stream.values());

  auto repaired_config = repair_engine_config();
  repaired_config.repair_merge_threshold = -1.0;   // exhaustive merge
  repaired_config.repair_refine_iterations = 100;  // refine to convergence
  ClusterKVEngine repaired(params.head_dim, repaired_config,
                           Rng(derive_seed(77, "repaired")));
  auto unrepaired_config = repair_engine_config();
  unrepaired_config.repair_refine_iterations = 0;
  ClusterKVEngine unrepaired(params.head_dim, unrepaired_config,
                             Rng(derive_seed(77, "unrepaired")));
  for (Index begin = 0; begin < prompt; begin += 60) {
    const Index end = std::min<Index>(prompt, begin + 60);
    repaired.observe_prefill_chunk(stream.keys().row_slice(begin, end),
                                   stream.values().row_slice(begin, end),
                                   end == prompt);
    unrepaired.observe_prefill_chunk(stream.keys().row_slice(begin, end),
                                     stream.values().row_slice(begin, end),
                                     end == prompt);
  }
  EXPECT_GT(repaired.repair_passes(), 0);
  EXPECT_GT(repaired.repair_flops(), 0);
  // Exhaustive repair restores the one-shot granularity (chunk-local
  // clustering had produced one coarse cluster per ~60-token chunk).
  ASSERT_EQ(repaired.centroid_store().cluster_count(),
            one_shot.centroid_store().cluster_count());
  ASSERT_LT(unrepaired.centroid_store().cluster_count(),
            one_shot.centroid_store().cluster_count());

  const Index budget = 96;
  RunningStat agree_repaired;
  RunningStat agree_unrepaired;
  RunningStat recall_one_shot;
  RunningStat recall_repaired;
  RunningStat recall_unrepaired;
  auto recall_of = [&](const std::vector<Index>& indices, std::span<const float> scores) {
    const auto truth = top_k_indices(scores, budget);
    const std::set<Index> chosen(indices.begin(), indices.end());
    Index hit = 0;
    for (const Index t : truth) {
      hit += chosen.contains(t) ? 1 : 0;
    }
    return static_cast<double>(hit) / static_cast<double>(budget);
  };
  for (Index step = 0; step < 8; ++step) {
    const auto q = stream.query(step);
    const auto scores = stream.attention_scores(q);
    const auto base = one_shot.select(q, budget);
    const auto with_repair = repaired.select(q, budget);
    const auto without = unrepaired.select(q, budget);
    agree_repaired.add(jaccard(base.indices, with_repair.indices));
    agree_unrepaired.add(jaccard(base.indices, without.indices));
    recall_one_shot.add(recall_of(base.indices, scores));
    recall_repaired.add(recall_of(with_repair.indices, scores));
    recall_unrepaired.add(recall_of(without.indices, scores));
  }
  // Exhaustive repair lands exactly on the one-shot selection (the planted
  // optimum both convergent runs find), while the unrepaired chunk-local
  // clustering sits far from it.
  EXPECT_DOUBLE_EQ(agree_repaired.mean(), 1.0);
  EXPECT_LT(agree_unrepaired.mean(), 0.6);
  // And the recall it recovers is one-shot's — the chunked regression sits
  // well below both.
  EXPECT_GT(recall_repaired.mean(), recall_one_shot.mean() - 1e-9);
  EXPECT_GT(recall_repaired.mean(), recall_unrepaired.mean() + 0.1);
}

/// Repair is metadata-only: fast-tier residency, sinks and the pending
/// tail are bit-identical across a pass, so every scheduler budget/sink
/// invariant holds mid-repair and nothing is re-pinned.
TEST(ClusterRepairEngine, RepairNeverTouchesResidencyOrSinks) {
  const auto params = planted_params();
  auto config = repair_engine_config();
  config.repair_merge_threshold = -1.0;  // merge everything when asked...
  config.repair_refine_iterations = 0;   // ...but never trigger implicitly
  HeadStream stream(params, Rng(derive_seed(78, "head")), 300);
  ClusterKVEngine engine(params.head_dim, config, Rng(derive_seed(78, "engine")));
  for (Index begin = 0; begin < 300; begin += 64) {
    const Index end = std::min<Index>(300, begin + 64);
    engine.observe_prefill_chunk(stream.keys().row_slice(begin, end),
                                 stream.values().row_slice(begin, end), end == 300);
  }
  // Select (pulls cluster tokens fast, fills the cache window) and decode
  // a little (pending tail) so the pass runs over a busy engine.
  engine.select(stream.query(0), 96);
  for (Index s = 0; s < 5; ++s) {
    stream.append_generated();
    const Index last = stream.size() - 1;
    engine.observe_decode(stream.keys().row(last), stream.values().row(last));
  }
  engine.select(stream.query(1), 96);

  const auto fast_before = engine.tiered_store().fast_positions();
  const auto fetched_before = engine.tiered_store().stats().tokens_fetched;
  const auto offloaded_before = engine.tiered_store().stats().tokens_offloaded;
  const Index pending_before = engine.pending_count();
  ASSERT_GT(static_cast<Index>(fast_before.size()),
            engine.sink_count() + pending_before);  // cached tokens are fast

  const auto outcome = engine.repair_now();
  EXPECT_TRUE(outcome.changed);

  EXPECT_EQ(engine.tiered_store().fast_positions(), fast_before);
  EXPECT_EQ(engine.tiered_store().stats().tokens_fetched, fetched_before);
  EXPECT_EQ(engine.tiered_store().stats().tokens_offloaded, offloaded_before);
  EXPECT_EQ(engine.pending_count(), pending_before);
  for (Index s = 0; s < engine.sink_count(); ++s) {
    EXPECT_TRUE(engine.tiered_store().is_fast_resident(s)) << "sink " << s;
  }
}

/// Satellite: an end-of-prompt tail shorter than tokens_per_cluster folds
/// into the preceding batch's clustering window instead of becoming a
/// degenerate cluster of its own.
TEST(ClusterRepairEngine, EndOfPromptTailFoldsIntoPrecedingWindow) {
  const auto params = planted_params();
  auto config = repair_engine_config();  // 8 sinks, 40 tokens/cluster
  config.repair_refine_iterations = 0;   // isolate the fold from repair
  const Index prompt = 105;              // 97 clustered: 92 flushed + 5 tail
  HeadStream stream(params, Rng(derive_seed(79, "head")), prompt);
  ClusterKVEngine engine(params.head_dim, config, Rng(derive_seed(79, "engine")));

  engine.observe_prefill_chunk(stream.keys().row_slice(0, 100),
                               stream.values().row_slice(0, 100), false);
  EXPECT_EQ(engine.centroid_store().cluster_count(), 2);  // 92 / 40
  engine.observe_prefill_chunk(stream.keys().row_slice(100, prompt),
                               stream.values().row_slice(100, prompt), true);

  // Folded: the 5-token tail re-clusters with the preceding 92-token batch
  // as one 97-token window — cluster count follows the paper rule for the
  // joint window, with no extra degenerate tail cluster.
  EXPECT_EQ(engine.pending_count(), 0);
  EXPECT_EQ(engine.centroid_store().cluster_count(),
            default_cluster_count(97, config.tokens_per_cluster));
  EXPECT_EQ(engine.centroid_store().token_count(), 97);
  EXPECT_EQ(engine.centroid_store().token_count() + engine.sink_count(),
            engine.context_size());
  Index smallest = prompt;
  for (Index c = 0; c < engine.centroid_store().cluster_count(); ++c) {
    smallest = std::min<Index>(smallest, engine.centroid_store().size_of(c));
  }
  // No cluster degenerated to the bare 5-token tail.
  EXPECT_GT(smallest, 5);
}

/// A whole prompt shorter than one clustering window has nothing to fold
/// into; it still flushes as a single (small) cluster.
TEST(ClusterRepairEngine, ShortPromptTailStillClusters) {
  const auto params = planted_params();
  auto config = repair_engine_config();
  config.repair_refine_iterations = 0;
  HeadStream stream(params, Rng(derive_seed(80, "head")), 20);
  ClusterKVEngine engine(params.head_dim, config, Rng(derive_seed(80, "engine")));
  engine.observe_prefill_chunk(stream.keys().row_slice(0, 20),
                               stream.values().row_slice(0, 20), true);
  EXPECT_EQ(engine.sink_count(), 8);
  EXPECT_EQ(engine.centroid_store().cluster_count(), 1);
  EXPECT_EQ(engine.centroid_store().token_count(), 12);
}

/// Periodic decode repair folds decode-side cluster batches back into the
/// prompt's groups without disturbing selection invariants.
TEST(ClusterRepairEngine, PeriodicDecodeRepairRuns) {
  const auto params = planted_params();
  auto config = repair_engine_config();
  config.repair_merge_threshold = 0.5;
  config.repair_refine_iterations = 10;
  config.repair_decode_interval = 16;  // one repair per decode flush
  HeadStream stream(params, Rng(derive_seed(81, "head")), 400);
  ClusterKVEngine engine(params.head_dim, config, Rng(derive_seed(81, "engine")));
  for (Index begin = 0; begin < 400; begin += 128) {
    const Index end = std::min<Index>(400, begin + 128);
    engine.observe_prefill_chunk(stream.keys().row_slice(begin, end),
                                 stream.values().row_slice(begin, end), end == 400);
  }
  const Index after_prefill = engine.repair_passes();
  for (Index s = 0; s < 32; ++s) {
    stream.append_generated();
    const Index last = stream.size() - 1;
    engine.observe_decode(stream.keys().row(last), stream.values().row(last));
    const auto sel = engine.select(stream.query(s), 96);
    EXPECT_LE(static_cast<Index>(sel.indices.size()), 96);
    EXPECT_TRUE(std::is_sorted(sel.indices.begin(), sel.indices.end()));
  }
  EXPECT_GE(engine.repair_passes(), after_prefill + 1);
  // Every token stays covered: sinks + clusters + pending tile the context.
  EXPECT_EQ(engine.centroid_store().token_count() + engine.sink_count() +
                engine.pending_count(),
            engine.context_size());
}

}  // namespace
}  // namespace ckv
