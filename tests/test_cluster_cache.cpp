#include <gtest/gtest.h>

#include "core/cluster_cache.hpp"

namespace ckv {
namespace {

using Selected = std::vector<std::pair<Index, std::vector<Index>>>;

TEST(ClusterCache, FirstStepAllMiss) {
  ClusterCache cache(1);
  const Selected sel{{0, {1, 2, 3}}, {1, {7, 8}}};
  const auto r = cache.step(sel);
  EXPECT_EQ(r.hits, 0);
  EXPECT_EQ(r.misses, 5);
  EXPECT_EQ(r.missing_tokens.size(), 5u);
  EXPECT_TRUE(r.evicted_tokens.empty());
}

TEST(ClusterCache, RepeatSelectionAllHit) {
  ClusterCache cache(1);
  const Selected sel{{0, {1, 2, 3}}};
  cache.step(sel);
  const auto r = cache.step(sel);
  EXPECT_EQ(r.hits, 3);
  EXPECT_EQ(r.misses, 0);
  EXPECT_TRUE(r.missing_tokens.empty());
}

TEST(ClusterCache, DepthOneForgetsAfterOneStep) {
  ClusterCache cache(1);
  const Selected a{{0, {1, 2}}};
  const Selected b{{1, {5, 6}}};
  cache.step(a);
  const auto rb = cache.step(b);  // window now holds only b
  EXPECT_EQ(rb.misses, 2);
  EXPECT_EQ(rb.evicted_tokens, (std::vector<Index>{1, 2}));
  const auto ra = cache.step(a);  // a was evicted: misses again
  EXPECT_EQ(ra.misses, 2);
}

TEST(ClusterCache, DepthTwoSurvivesOneIntermediateStep) {
  ClusterCache cache(2);
  const Selected a{{0, {1, 2}}};
  const Selected b{{1, {5, 6}}};
  cache.step(a);
  cache.step(b);
  const auto ra = cache.step(a);  // a still in the 2-step window
  EXPECT_EQ(ra.hits, 2);
  EXPECT_EQ(ra.misses, 0);
}

TEST(ClusterCache, DepthZeroDisablesCaching) {
  ClusterCache cache(0);
  const Selected sel{{0, {1, 2}}};
  cache.step(sel);
  const auto r = cache.step(sel);
  EXPECT_EQ(r.hits, 0);
  EXPECT_EQ(r.misses, 2);
}

TEST(ClusterCache, PartialClusterOverlap) {
  ClusterCache cache(1);
  // Step 1 fetched a trimmed prefix of cluster 0.
  cache.step(Selected{{0, {10, 11}}});
  // Step 2 wants more of cluster 0: cached tokens hit, new ones miss.
  const auto r = cache.step(Selected{{0, {10, 11, 12, 13}}});
  EXPECT_EQ(r.hits, 2);
  EXPECT_EQ(r.misses, 2);
  EXPECT_EQ(r.missing_tokens, (std::vector<Index>{12, 13}));
}

TEST(ClusterCache, HitRateAccumulates) {
  ClusterCache cache(1);
  const Selected sel{{0, {1, 2, 3, 4}}};
  cache.step(sel);  // 4 misses
  cache.step(sel);  // 4 hits
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
  EXPECT_EQ(cache.total_hits(), 4);
  EXPECT_EQ(cache.total_misses(), 4);
  EXPECT_EQ(cache.steps(), 2);
  cache.reset_counters();
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(ClusterCache, ResidentTokensUnionOverWindow) {
  ClusterCache cache(2);
  cache.step(Selected{{0, {1}}});
  cache.step(Selected{{1, {2}}});
  const auto resident = cache.resident_tokens();
  EXPECT_TRUE(resident.contains(1));
  EXPECT_TRUE(resident.contains(2));
  EXPECT_EQ(resident.size(), 2u);
}

TEST(ClusterCache, EvictionOnlyWhenLeavingWindow) {
  ClusterCache cache(2);
  cache.step(Selected{{0, {1}}});            // window: [a]
  cache.step(Selected{{1, {2}}});            // window: [b, a]
  const auto r = cache.step(Selected{{2, {3}}});  // window: [c, b]; a leaves
  EXPECT_EQ(r.evicted_tokens, (std::vector<Index>{1}));
}

TEST(ClusterCache, ReselectedTokenNotEvicted) {
  ClusterCache cache(1);
  cache.step(Selected{{0, {1, 2}}});
  // Token 1 re-selected (cluster trimmed differently): stays resident.
  const auto r = cache.step(Selected{{0, {1}}});
  EXPECT_EQ(r.hits, 1);
  EXPECT_EQ(r.evicted_tokens, (std::vector<Index>{2}));
}

TEST(ClusterCache, NegativeDepthRejected) {
  EXPECT_THROW(ClusterCache(-1), std::invalid_argument);
}

TEST(ClusterCache, RemapWindowPreservesResidencyUnderNewLabels) {
  ClusterCache cache(2);
  cache.step(Selected{{0, {1, 2}}, {1, {5}}});
  cache.step(Selected{{2, {7, 8}}});
  const auto resident_before = cache.resident_tokens();

  // Cluster repair relabeled: tokens 1,2,7 now live in cluster 4; 5 and 8
  // in cluster 0 (position-indexed map; unclustered positions are -1).
  const std::vector<Index> token_to_cluster{-1, 4, 4, -1, -1, 0, -1, 4, 0};
  cache.remap_window(token_to_cluster);

  EXPECT_EQ(cache.resident_tokens(), resident_before);
  // Selecting under the *new* labels hits; the old labels are gone.
  const auto r = cache.step(Selected{{4, {1, 2, 7}}, {0, {5, 8}}});
  EXPECT_EQ(r.hits, 5);
  EXPECT_EQ(r.misses, 0);
}

TEST(ClusterCache, RemapWindowRejectsUnmappedCachedToken) {
  ClusterCache cache(1);
  cache.step(Selected{{0, {3}}});
  EXPECT_THROW(cache.remap_window(std::vector<Index>{0, 0, 0, -1}),
               std::invalid_argument);
  EXPECT_THROW(cache.remap_window(std::vector<Index>{0, 0}),  // too short
               std::invalid_argument);
}

TEST(ClusterCache, HigherDepthNeverLowersHitRate) {
  // Property: for the same access trace, a deeper window can only hit more.
  const std::vector<Selected> trace{
      {{0, {1, 2}}}, {{1, {3}}},    {{0, {1, 2}}}, {{2, {4, 5}}},
      {{1, {3}}},    {{0, {1, 2}}}, {{2, {4, 5}}}, {{1, {3}}},
  };
  double previous_rate = -1.0;
  for (const Index depth : {0, 1, 2, 3}) {
    ClusterCache cache(depth);
    for (const auto& sel : trace) {
      cache.step(sel);
    }
    EXPECT_GE(cache.hit_rate(), previous_rate);
    previous_rate = cache.hit_rate();
  }
}

}  // namespace
}  // namespace ckv
