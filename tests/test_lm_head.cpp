#include <gtest/gtest.h>

#include <cmath>

#include "model/lm_head.hpp"
#include "tensor/rng.hpp"
#include "tensor/softmax.hpp"

namespace ckv {
namespace {

TEST(LMHead, ShapesAndLinearity) {
  LMHead head(32, 8, Rng(1));
  EXPECT_EQ(head.vocab_size(), 32);
  EXPECT_EQ(head.feature_dim(), 8);
  Rng rng(2);
  std::vector<float> f(8);
  rng.fill_normal(f, 0.0, 1.0);
  const auto logits = head.logits(f);
  ASSERT_EQ(logits.size(), 32u);
  // Linearity: logits(2f) == 2 * logits(f).
  std::vector<float> f2(f);
  for (auto& x : f2) {
    x *= 2.0f;
  }
  const auto logits2 = head.logits(f2);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_NEAR(logits2[i], 2.0f * logits[i], 1e-4);
  }
}

TEST(LMHead, NllMatchesManualComputation) {
  const std::vector<float> logits{1.0f, 2.0f, 0.5f};
  const double t = 1.5;
  // Manual: -log softmax(logits / t)[1].
  std::vector<float> scaled(3);
  for (int i = 0; i < 3; ++i) {
    scaled[static_cast<std::size_t>(i)] =
        static_cast<float>(logits[static_cast<std::size_t>(i)] / t);
  }
  const auto lp = log_softmax(scaled);
  EXPECT_NEAR(nll_of(logits, 1, t), -lp[1], 1e-6);
}

TEST(LMHead, NllValidation) {
  const std::vector<float> logits{1.0f, 2.0f};
  EXPECT_THROW(nll_of(logits, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(nll_of(logits, -1, 1.0), std::invalid_argument);
  EXPECT_THROW(nll_of(logits, 0, 0.0), std::invalid_argument);
}

TEST(LMHead, ArgmaxToken) {
  const std::vector<float> logits{0.2f, 1.5f, -3.0f, 1.4f};
  EXPECT_EQ(argmax_token(logits), 1);
}

TEST(LMHead, SamplingDeterministicAndInRange) {
  const std::vector<float> logits{0.0f, 1.0f, 2.0f, 3.0f};
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 50; ++i) {
    const Index ta = sample_token(logits, 0.8, a);
    const Index tb = sample_token(logits, 0.8, b);
    EXPECT_EQ(ta, tb);
    EXPECT_GE(ta, 0);
    EXPECT_LT(ta, 4);
  }
}

TEST(LMHead, LowTemperatureConcentratesOnArgmax) {
  const std::vector<float> logits{0.0f, 5.0f, 1.0f};
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(sample_token(logits, 0.01, rng), 1);
  }
}

TEST(LMHead, HighTemperatureApproachesUniform) {
  const std::vector<float> logits{0.0f, 5.0f, 1.0f};
  Rng rng(7);
  int count0 = 0;
  const int n = 6000;
  for (int i = 0; i < n; ++i) {
    if (sample_token(logits, 1e4, rng) == 0) {
      ++count0;
    }
  }
  EXPECT_NEAR(static_cast<double>(count0) / n, 1.0 / 3.0, 0.05);
}

}  // namespace
}  // namespace ckv
