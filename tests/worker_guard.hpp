// Shared test helper: restores automatic worker resolution when a test
// body that overrides set_parallel_workers() returns.
#pragma once

#include "util/parallel.hpp"

namespace ckv {

struct WorkerGuard {
  WorkerGuard() = default;
  WorkerGuard(const WorkerGuard&) = delete;
  WorkerGuard& operator=(const WorkerGuard&) = delete;
  ~WorkerGuard() { set_parallel_workers(0); }
};

}  // namespace ckv
