// Async cluster prefetch: deterministic prediction, the in-flight byte
// budget invariant (preemption mid-fetch included), cancel-on-session-
// release, prefetch equivalence (selection identical to sync fetch, only
// latency accounting differs), and the repair-remap regression — a repair
// rebuild landing between fetch issue and completion must relabel
// in-flight entries instead of stranding them.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/cluster_cache.hpp"
#include "core/cluster_prefetch.hpp"
#include "core/clusterkv_engine.hpp"
#include "kvcache/tiered_store.hpp"
#include "serve/session.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace ckv {
namespace {

// ---------------------------------------------------------------- predictor

TEST(ClusterPrefetcher, PredictionIsDeterministic) {
  ClusterPrefetchConfig config;
  config.max_clusters = 3;
  ClusterPrefetcher a(config);
  ClusterPrefetcher b(config);

  const std::vector<float> scores{0.1f, 0.9f, 0.4f, 0.8f, 0.2f};
  const std::vector<Index> selected{1};
  a.observe_selection(selected, 5);
  b.observe_selection(selected, 5);
  const auto pa = a.predict(scores, selected);
  const auto pb = b.predict(scores, selected);
  EXPECT_EQ(pa, pb);
  // Best-first by blended score, the selected cluster excluded.
  EXPECT_EQ(pa, (std::vector<Index>{3, 2, 4}));
  // Re-predicting without state changes gives the same answer.
  EXPECT_EQ(a.predict(scores, selected), pa);
}

TEST(ClusterPrefetcher, PriorShiftsRankingDeterministically) {
  ClusterPrefetchConfig config;
  config.max_clusters = 1;
  config.prior_weight = 10.0;  // let the prior dominate similarity
  config.prior_decay = 0.5;
  ClusterPrefetcher prefetcher(config);

  // Cluster 2 keeps being selected; clusters 0/1 never are.
  for (int step = 0; step < 4; ++step) {
    prefetcher.observe_selection(std::vector<Index>{2}, 4);
  }
  // Similarity alone would rank cluster 3 (score 0.9) over 2 (0.1).
  const std::vector<float> scores{0.0f, 0.5f, 0.1f, 0.9f};
  EXPECT_EQ(prefetcher.predict(scores, {}), (std::vector<Index>{2}));
  EXPECT_GT(prefetcher.prior()[2], 0.9);
}

TEST(ClusterPrefetcher, RespectsDepthExclusionAndRebuild) {
  ClusterPrefetchConfig config;
  config.max_clusters = 2;
  ClusterPrefetcher prefetcher(config);
  const std::vector<float> scores{0.9f, 0.8f, 0.7f, 0.6f};

  EXPECT_EQ(prefetcher.predict(scores, {}), (std::vector<Index>{0, 1}));
  const std::vector<Index> exclude{0, 1};
  EXPECT_EQ(prefetcher.predict(scores, exclude), (std::vector<Index>{2, 3}));

  prefetcher.observe_selection(std::vector<Index>{3}, 4);
  EXPECT_GT(prefetcher.prior()[3], 0.0);
  // Repair rebuild: old cluster ids are dead, the prior resets.
  prefetcher.on_rebuild(2);
  ASSERT_EQ(prefetcher.prior().size(), 2u);
  EXPECT_DOUBLE_EQ(prefetcher.prior()[0], 0.0);
  EXPECT_DOUBLE_EQ(prefetcher.prior()[1], 0.0);

  EXPECT_TRUE(ClusterPrefetcher(ClusterPrefetchConfig{}).predict(scores, {}).empty());
  ClusterPrefetchConfig bad;
  bad.prior_decay = 1.0;
  EXPECT_THROW(ClusterPrefetcher{bad}, std::invalid_argument);
}

// ------------------------------------------------- cache in-flight states

using Selected = std::vector<std::pair<Index, std::vector<Index>>>;

TEST(ClusterCache, InFlightResolvesToPrefetchHitsAndWaste) {
  ClusterCache cache(1);
  cache.step(Selected{{0, {1, 2}}});
  // Issue cluster 1's tokens; token 1 is resident and must be filtered.
  const auto issued = cache.issue_fetch(1, std::vector<Index>{1, 5, 6});
  EXPECT_EQ(issued, (std::vector<Index>{5, 6}));
  EXPECT_EQ(cache.in_flight_tokens(), 2);
  // Double-issue is a no-op.
  EXPECT_TRUE(cache.issue_fetch(1, std::vector<Index>{5}).empty());

  // Next step selects token 5 (prefetch hit) but not 6 (waste).
  const auto r = cache.step(Selected{{0, {1, 2}}, {1, {5}}});
  EXPECT_EQ(r.hits, 2);
  EXPECT_EQ(r.misses, 1);  // token 5: fetched either way
  EXPECT_EQ(r.prefetch_hits, 1);
  EXPECT_EQ(r.prefetched_tokens, (std::vector<Index>{5}));
  EXPECT_TRUE(r.missing_tokens.empty());
  EXPECT_EQ(r.wasted_tokens, (std::vector<Index>{6}));
  EXPECT_EQ(cache.in_flight_tokens(), 0);  // one-step lifetime
  EXPECT_EQ(cache.total_prefetch_hits(), 1);
  EXPECT_EQ(cache.total_prefetch_issued(), 2);
  EXPECT_EQ(cache.total_prefetch_wasted(), 1);
}

TEST(ClusterCache, CancelFetchesDrainsInFlight) {
  ClusterCache cache(1);
  cache.issue_fetch(0, std::vector<Index>{3, 4});
  cache.issue_fetch(2, std::vector<Index>{9});
  const auto canceled = cache.cancel_fetches();
  EXPECT_EQ(canceled, (std::vector<Index>{3, 4, 9}));
  EXPECT_EQ(cache.in_flight_tokens(), 0);
  EXPECT_EQ(cache.total_prefetch_wasted(), 3);
  // Canceled fetches never count as hits later.
  const auto r = cache.step(Selected{{0, {3}}});
  EXPECT_EQ(r.prefetch_hits, 0);
  EXPECT_EQ(r.missing_tokens, (std::vector<Index>{3}));
}

// The regression the repair fix pins down: a rebuild relabeling the window
// must relabel in-flight entries too, so a prefetch issued before the
// repair still resolves as a hit after it (under the new cluster ids).
TEST(ClusterCache, RemapWindowRelabelsInFlightEntries) {
  ClusterCache cache(1);
  cache.step(Selected{{0, {1}}});
  cache.issue_fetch(1, std::vector<Index>{5, 6});

  // Repair: token 1 moves to cluster 7; tokens 5,6 move to cluster 3.
  const std::vector<Index> token_to_cluster{-1, 7, -1, -1, -1, 3, 3};
  cache.remap_window(token_to_cluster);
  ASSERT_EQ(cache.in_flight().size(), 1u);
  EXPECT_TRUE(cache.in_flight().contains(3));
  EXPECT_EQ(cache.in_flight().at(3), (std::vector<Index>{5, 6}));

  // Selecting under the new labels: the in-flight tokens hit as prefetch.
  const auto r = cache.step(Selected{{7, {1}}, {3, {5, 6}}});
  EXPECT_EQ(r.hits, 1);
  EXPECT_EQ(r.prefetch_hits, 2);
  EXPECT_TRUE(r.missing_tokens.empty());
  EXPECT_TRUE(r.wasted_tokens.empty());

  // An in-flight token with no cluster after the rebuild is a bug.
  cache.issue_fetch(3, std::vector<Index>{9});
  EXPECT_THROW(cache.remap_window(token_to_cluster), std::invalid_argument);
}

// --------------------------------------------- tiered-store reservations

TEST(TieredKVStore, FetchLifecycleReservesAndLandsBytes) {
  TieredKVStore store(4);
  Matrix keys(6, 4);
  Matrix values(6, 4);
  store.append_block(keys, values);
  store.offload_to_slow(0, 6);
  FastTierLedger ledger;
  store.attach_ledger(&ledger);
  const Index tb = store.token_bytes();

  const std::vector<Index> positions{0, 1, 2};
  EXPECT_EQ(store.begin_fetch(positions), 3);
  EXPECT_EQ(store.in_flight_count(), 3);
  EXPECT_EQ(store.fast_resident_count(), 0);
  EXPECT_EQ(ledger.bytes(), 0);
  EXPECT_EQ(ledger.reserved_bytes(), 3 * tb);
  EXPECT_EQ(ledger.total_bytes(), 3 * tb);
  EXPECT_EQ(store.stats().tokens_prefetch_issued, 3);
  // Issue accounting happens once: re-issuing in-flight or resident
  // positions moves nothing.
  EXPECT_EQ(store.begin_fetch(positions), 0);
  EXPECT_EQ(store.stats().tokens_prefetch_issued, 3);

  const std::vector<Index> landed{0, 1};
  EXPECT_EQ(store.complete_fetch(landed), 2);
  EXPECT_TRUE(store.is_fast_resident(0));
  EXPECT_FALSE(store.is_in_flight(0));
  EXPECT_EQ(ledger.bytes(), 2 * tb);
  EXPECT_EQ(ledger.reserved_bytes(), tb);
  // Bytes were counted at issue; landing adds no new transfer traffic.
  EXPECT_EQ(store.stats().bytes_to_fast, 3 * tb);
  EXPECT_EQ(store.stats().tokens_fetched, 0);  // no demand moves

  const std::vector<Index> dropped{2};
  EXPECT_EQ(store.cancel_fetch(dropped), 1);
  EXPECT_EQ(ledger.reserved_bytes(), 0);
  EXPECT_EQ(store.stats().tokens_prefetch_canceled, 1);
}

// Regression pin: a demand fetch that catches an in-flight speculative
// copy used to report 0 moved tokens and leave tokens_fetched untouched,
// so callers billed zero transfer time for a copy that may have just been
// issued. It now counts as a demand fetch (under the demand_landed split)
// while its PCIe bytes stay counted once, at issue.
TEST(TieredKVStore, EnsureResidentCountsLandedInFlightAsDemand) {
  TieredKVStore store(4);
  Matrix keys(3, 4);
  Matrix values(3, 4);
  store.append_block(keys, values);
  store.offload_to_slow(0, 3);
  const std::vector<Index> p0{0};
  store.begin_fetch(p0);
  const auto issued_bytes = store.stats().bytes_to_fast;
  // The demand path catches up with the issued copy: it lands and counts
  // as a demand-moved token, but its bytes are not re-counted.
  EXPECT_EQ(store.ensure_resident(p0), 1);
  EXPECT_TRUE(store.is_fast_resident(0));
  EXPECT_EQ(store.in_flight_count(), 0);
  EXPECT_EQ(store.stats().bytes_to_fast, issued_bytes);
  EXPECT_EQ(store.stats().tokens_fetched, 1);
  EXPECT_EQ(store.stats().demand_landed, 1);

  // A plain demand fetch is not a landing: the split stays disjoint.
  const std::vector<Index> p1{1};
  EXPECT_EQ(store.ensure_resident(p1), 1);
  EXPECT_EQ(store.stats().tokens_fetched, 2);
  EXPECT_EQ(store.stats().demand_landed, 1);
  EXPECT_EQ(store.stats().bytes_to_fast, issued_bytes + store.token_bytes());

  // merge() carries the new counter.
  TransferStats merged;
  merged.merge(store.stats());
  merged.merge(store.stats());
  EXPECT_EQ(merged.demand_landed, 2);
  EXPECT_EQ(merged.tokens_fetched, 4);
}

TEST(TieredKVStore, CancelAllAndDetachClearReservation) {
  TieredKVStore store(4);
  Matrix keys(4, 4);
  Matrix values(4, 4);
  store.append_block(keys, values);
  store.offload_to_slow(0, 4);
  FastTierLedger ledger;
  store.attach_ledger(&ledger);
  const std::vector<Index> all{0, 1, 2, 3};
  store.begin_fetch(all);
  EXPECT_GT(ledger.reserved_bytes(), 0);
  EXPECT_EQ(store.cancel_all_fetches(), 4);
  EXPECT_EQ(ledger.reserved_bytes(), 0);

  // Detach with live fetches: the reservation leaves the ledger with the
  // store (session-release path).
  store.begin_fetch(all);
  EXPECT_GT(ledger.reserved_bytes(), 0);
  store.attach_ledger(nullptr);
  EXPECT_EQ(ledger.bytes(), 0);
  EXPECT_EQ(ledger.reserved_bytes(), 0);
}

// ------------------------------------------------------ engine integration

ClusterKVConfig prefetch_engine_config() {
  ClusterKVConfig config;
  config.sink_tokens = 4;
  config.tokens_per_cluster = 8;
  config.decode_interval = 16;
  config.decode_clusters = 2;
  config.cache_depth = 1;
  config.prefetch_clusters = 3;
  return config;
}

Matrix random_block(Rng& rng, Index rows, Index dim) {
  Matrix m(rows, dim);
  rng.fill_normal(m.flat(), 0.0, 1.0);
  return m;
}

std::vector<float> random_query(Rng& rng, Index dim) {
  std::vector<float> q(static_cast<std::size_t>(dim));
  rng.fill_normal(q, 0.0, 1.0);
  return q;
}

// Selection must be bit-identical with prefetch on or off, with identical
// hit/fetch accounting — prefetch moves *when* bytes cross, not whether.
TEST(ClusterKVEngine, PrefetchEquivalentToSyncFetch) {
  const Index dim = 16;
  auto sync_config = prefetch_engine_config();
  sync_config.prefetch_clusters = 0;
  ClusterKVEngine with(dim, prefetch_engine_config(), Rng(7));
  ClusterKVEngine without(dim, sync_config, Rng(7));

  Rng data(123);
  const Matrix keys = random_block(data, 96, dim);
  const Matrix values = random_block(data, 96, dim);
  with.observe_prefill(keys, values);
  without.observe_prefill(keys, values);

  std::int64_t prefetch_hits = 0;
  for (int step = 0; step < 40; ++step) {
    const auto query = random_query(data, dim);
    const auto a = with.select(query, 24);
    const auto b = without.select(query, 24);
    EXPECT_EQ(a.indices, b.indices) << "step " << step;
    EXPECT_EQ(a.tokens_fetched, b.tokens_fetched) << "step " << step;
    EXPECT_EQ(a.tokens_cache_hit, b.tokens_cache_hit) << "step " << step;
    EXPECT_EQ(b.tokens_prefetch_hit, 0);
    EXPECT_EQ(b.tokens_prefetch_issued, 0);
    prefetch_hits += a.tokens_prefetch_hit;

    const auto kv = random_query(data, dim);
    with.observe_decode(kv, kv);
    without.observe_decode(kv, kv);
  }
  // The prefetcher actually covered some fetches, or the test is vacuous.
  EXPECT_GT(prefetch_hits, 0);
}

// In-flight bytes are part of the budget footprint and survive neither
// preemption nor release: preemption mid-fetch frees the reservation.
TEST(ClusterKVEngine, InFlightBytesCountAndPreemptionCancels) {
  const Index dim = 16;
  ClusterKVEngine engine(dim, prefetch_engine_config(), Rng(3));
  FastTierLedger ledger;
  engine.attach_fast_tier_ledger(&ledger);

  Rng data(9);
  engine.observe_prefill(random_block(data, 80, dim), random_block(data, 80, dim));
  const auto query = random_query(data, dim);
  engine.select(query, 24);

  const auto& store = engine.tiered_store();
  ASSERT_GT(store.in_flight_count(), 0);
  EXPECT_EQ(ledger.reserved_bytes(), store.in_flight_bytes());
  EXPECT_EQ(ledger.bytes(), store.fast_resident_bytes());
  EXPECT_EQ(ledger.total_bytes(),
            store.fast_resident_bytes() + store.in_flight_bytes());

  // Preemption mid-fetch: reserved bytes free together with resident ones;
  // only sinks stay (no pending decode tokens yet).
  const Index released = engine.release_fast_tier();
  EXPECT_GT(released, 0);
  EXPECT_EQ(store.in_flight_count(), 0);
  EXPECT_EQ(ledger.reserved_bytes(), 0);
  EXPECT_EQ(store.fast_resident_count(), engine.sink_count());

  // The engine keeps working after the cancel: the next select refetches
  // on demand and issues fresh prefetches.
  const auto after = engine.select(query, 24);
  EXPECT_GT(after.tokens_fetched, 0);
  EXPECT_GT(after.tokens_prefetch_issued, 0);
}

// A repair rebuild between issue and completion relabels in-flight state
// consistently across cache and store: nothing leaks, nothing strands,
// and the reservation drains through the normal resolve path.
TEST(ClusterKVEngine, RepairBetweenIssueAndCompletionKeepsInFlightConsistent) {
  const Index dim = 16;
  auto config = prefetch_engine_config();
  config.repair_merge_threshold = -1.0;  // exhaustive: repair always changes
  ClusterKVEngine engine(dim, config, Rng(5));
  FastTierLedger ledger;
  engine.attach_fast_tier_ledger(&ledger);

  Rng data(17);
  engine.observe_prefill(random_block(data, 64, dim), random_block(data, 64, dim));
  // A decode-side clustering flush registers a second batch, so the
  // explicit repair pass below has an adjacent pair to merge (the engine's
  // own post-prefill pass already collapsed the prompt to one batch).
  for (Index step = 0; step < config.decode_interval; ++step) {
    const auto kv = random_query(data, dim);
    engine.observe_decode(kv, kv);
  }
  ASSERT_EQ(engine.pending_count(), 0);  // the flush actually happened

  const auto query = random_query(data, dim);
  engine.select(query, 24);
  const auto& store = engine.tiered_store();
  const Index in_flight_before = store.in_flight_count();
  ASSERT_GT(in_flight_before, 0);
  const auto reserved_before = ledger.reserved_bytes();

  const auto outcome = engine.repair_now();
  ASSERT_TRUE(outcome.changed);
  // The rebuild moved no KV and dropped no fetches: the same tokens are in
  // flight (relabeled), the reservation is untouched.
  EXPECT_EQ(store.in_flight_count(), in_flight_before);
  EXPECT_EQ(ledger.reserved_bytes(), reserved_before);
  EXPECT_EQ(engine.cache().in_flight_tokens(), in_flight_before);

  // The next select resolves every relabeled entry (hit or waste; a
  // wasted token may be legitimately re-issued in the fresh round) and
  // leaves cache-, store- and ledger-side in-flight state in exact
  // agreement — a stale entry would break one of these equalities.
  engine.select(query, 24);
  std::vector<Index> cache_in_flight;
  for (const auto& [cluster, tokens] : engine.cache().in_flight()) {
    EXPECT_LT(cluster, engine.centroid_store().cluster_count())
        << "in-flight entry under a dead cluster id";
    cache_in_flight.insert(cache_in_flight.end(), tokens.begin(), tokens.end());
  }
  EXPECT_EQ(static_cast<Index>(cache_in_flight.size()), store.in_flight_count());
  for (const Index token : cache_in_flight) {
    EXPECT_TRUE(store.is_in_flight(token));
  }
  EXPECT_EQ(ledger.reserved_bytes(), store.in_flight_bytes());
  EXPECT_EQ(ledger.bytes(), store.fast_resident_bytes());
}

// Inter-chunk selections can leave tokens fast-resident but outside the
// cleared window after the end-of-prompt tail fold; a later prefetch must
// not let cache- and store-side in-flight views diverge (the store is the
// residency authority at issue time), and the fold resets the prediction
// prior because it reassigned cluster ids.
TEST(ClusterKVEngine, TailFoldKeepsInFlightViewsAlignedAndResetsPrior) {
  const Index dim = 16;
  auto config = prefetch_engine_config();
  config.repair_refine_iterations = 0;  // isolate the fold from repair
  ClusterKVEngine engine(dim, config, Rng(31));
  Rng data(41);

  // First chunk clusters one batch; a selection *between chunks* pulls
  // clustered tokens fast and warms the prior.
  engine.observe_prefill_chunk(random_block(data, 24, dim),
                               random_block(data, 24, dim), false);
  engine.select(random_query(data, dim), 12);
  // Short final tail (< tokens_per_cluster): folds into the prior batch,
  // truncating and re-registering its cluster ids.
  engine.observe_prefill_chunk(random_block(data, 4, dim),
                               random_block(data, 4, dim), true);
  for (const double p : engine.prefetcher().prior()) {
    EXPECT_DOUBLE_EQ(p, 0.0) << "stale prior survived the tail fold";
  }

  // Decode selections issue prefetches; the in-flight views must agree
  // even though some clustered tokens are fast-resident outside the
  // window (residency left behind by the inter-chunk selection).
  for (int step = 0; step < 6; ++step) {
    const auto kv = random_query(data, dim);
    engine.observe_decode(kv, kv);
    engine.select(random_query(data, dim), 12);
    EXPECT_EQ(engine.cache().in_flight_tokens(),
              engine.tiered_store().in_flight_count())
        << "step " << step;
  }
}

// ------------------------------------------------------- session release

TEST(Session, ReleaseAndRetirementCancelInFlightFetches) {
  SessionConfig config;
  config.shape.num_layers = 1;
  config.shape.num_heads = 2;
  config.shape.head_dim = 32;
  config.params.head_dim = 32;
  config.params.num_topics = 16;
  config.engine.budget = 48;
  config.engine.full_attention_layers = 0;

  auto ckv = prefetch_engine_config();
  ckv.sink_tokens = 8;
  ServeRequest request{0, 0.0, 300, 6, 11};
  Session session(request, make_clusterkv_factory(ckv, 21), config);
  FastTierLedger ledger;
  session.attach_fast_tier_ledger(&ledger);
  session.run_prefill(0.0);
  session.decode_next(1.0);
  session.decode_next(2.0);
  ASSERT_GT(ledger.reserved_bytes(), 0);  // prefetches in flight

  // The scheduler's cheap enforcement lever: speculation only.
  const std::int64_t resident_before = ledger.bytes();
  EXPECT_GT(session.cancel_prefetches(), 0);
  EXPECT_EQ(ledger.reserved_bytes(), 0);
  EXPECT_EQ(ledger.bytes(), resident_before);  // resident KV untouched
  EXPECT_EQ(session.preemptions(), 0);         // not a preemption

  // Fresh fetches get issued; session release (ledger detach, the
  // retirement path) drops them with everything else.
  session.decode_next(3.0);
  ASSERT_GT(ledger.reserved_bytes(), 0);
  session.attach_fast_tier_ledger(nullptr);
  EXPECT_EQ(ledger.bytes(), 0);
  EXPECT_EQ(ledger.reserved_bytes(), 0);
}

}  // namespace
}  // namespace ckv
