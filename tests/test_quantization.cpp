#include <gtest/gtest.h>

#include <cmath>

#include "kvcache/quantization.hpp"
#include "model/procedural.hpp"
#include "tensor/rng.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

TEST(Quantization, RoundTripErrorBoundedByScale) {
  Rng rng(1);
  Matrix block(64, 16);
  rng.fill_normal(block.flat(), 0.0, 2.0);
  const auto q = quantize_per_channel(block);
  // Error per channel is at most half a quantization step.
  const Matrix back = dequantize(q);
  for (Index c = 0; c < block.cols(); ++c) {
    const float scale = q.channel_scale[static_cast<std::size_t>(c)];
    for (Index r = 0; r < block.rows(); ++r) {
      EXPECT_LE(std::abs(block.at(r, c) - back.at(r, c)), 0.5f * scale + 1e-6f);
    }
  }
}

TEST(Quantization, ExactForPowerOfScaleValues) {
  Matrix block(2, 2);
  block.at(0, 0) = 127.0f;
  block.at(1, 0) = -127.0f;
  block.at(0, 1) = 0.0f;
  block.at(1, 1) = 63.5f;
  const auto q = quantize_per_channel(block);
  EXPECT_NEAR(quantization_error(block, q), 0.25, 0.26);  // channel 1 step/2
  const auto back = dequantize(q);
  EXPECT_FLOAT_EQ(back.at(0, 0), 127.0f);
  EXPECT_FLOAT_EQ(back.at(1, 0), -127.0f);
}

TEST(Quantization, ZeroChannelHandled) {
  Matrix block(4, 2);
  for (Index r = 0; r < 4; ++r) {
    block.at(r, 1) = static_cast<float>(r);
  }
  const auto q = quantize_per_channel(block);
  EXPECT_FLOAT_EQ(q.channel_scale[0], 0.0f);
  const auto back = dequantize(q);
  for (Index r = 0; r < 4; ++r) {
    EXPECT_FLOAT_EQ(back.at(r, 0), 0.0f);
  }
}

TEST(Quantization, OutlierChannelsDoNotPoisonOthers) {
  // The KIVI argument: per-channel scales isolate outlier channels, so
  // normal channels keep fine resolution.
  ProceduralParams p;
  p.head_dim = 32;
  HeadStream stream(p, Rng(2), 512);
  const auto q = quantize_per_channel(stream.keys());
  const auto back = dequantize(q);
  // Attention-score error stays a small fraction of the score spread.
  const auto query = stream.query(0);
  double worst_abs = 0.0;
  double score_spread = 0.0;
  for (Index t = 0; t < 512; ++t) {
    const double exact = dot(query, stream.keys().row(t));
    const double approx = dot(query, back.row(t));
    worst_abs = std::max(worst_abs, std::abs(exact - approx));
    score_spread = std::max(score_spread, std::abs(exact));
  }
  EXPECT_LT(worst_abs, 0.05 * score_spread);
}

TEST(Quantization, CompressionRatioNearTwo) {
  Rng rng(3);
  Matrix block(256, 64);
  rng.fill_normal(block.flat(), 0.0, 1.0);
  const auto q = quantize_per_channel(block);
  const double ratio = compression_ratio_vs_fp16(q);
  EXPECT_GT(ratio, 1.9);   // 2 bytes -> 1 byte, minus scale overhead
  EXPECT_LT(ratio, 2.01);
}

TEST(Quantization, ByteSizeAccounting) {
  Matrix block(8, 4);
  const auto q = quantize_per_channel(block);
  EXPECT_EQ(q.byte_size(), 8 * 4 + 4 * static_cast<Index>(sizeof(float)));
}

TEST(Quantization, ShapeMismatchRejected) {
  Matrix a(2, 2);
  Matrix b(3, 2);
  const auto q = quantize_per_channel(b);
  EXPECT_THROW(quantization_error(a, q), std::invalid_argument);
}

}  // namespace
}  // namespace ckv
