#include <gtest/gtest.h>

#include <set>

#include "core/kernels.hpp"
#include "core/kmeans.hpp"
#include "tensor/rng.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

/// Keys drawn from `clusters` well-separated directions.
Matrix clustered_keys(Index n, Index dim, Index clusters, std::uint64_t seed,
                      std::vector<Index>* truth = nullptr) {
  Rng rng(seed);
  Matrix dirs(clusters, dim);
  for (Index c = 0; c < clusters; ++c) {
    copy_to(rng.unit_vector(dim), dirs.row(c));
  }
  Matrix keys(n, dim);
  for (Index i = 0; i < n; ++i) {
    const Index c = rng.uniform_int(0, clusters - 1);
    if (truth != nullptr) {
      truth->push_back(c);
    }
    auto row = keys.row(i);
    copy_to(dirs.row(c), row);
    for (float& x : row) {
      x += static_cast<float>(rng.normal(0.0, 0.05));
    }
    // Magnitude variation: cosine clustering must ignore it.
    const float scale = static_cast<float>(std::exp(rng.normal(0.0, 0.4)));
    scale_in_place(row, scale);
  }
  return keys;
}

TEST(KMeans, LabelsValidAndClustersNonEmpty) {
  const auto keys = clustered_keys(200, 16, 5, 11);
  KMeansConfig config;
  config.num_clusters = 5;
  Rng rng(1);
  const auto result = kmeans_cluster(keys, config, rng);
  ASSERT_EQ(result.labels.size(), 200u);
  std::vector<Index> counts(5, 0);
  for (const Index label : result.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 5);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (const Index c : counts) {
    EXPECT_GT(c, 0);
  }
}

TEST(KMeans, ConvergesOnSeparatedData) {
  const auto keys = clustered_keys(300, 32, 4, 12);
  KMeansConfig config;
  config.num_clusters = 4;
  config.max_iterations = 50;
  Rng rng(2);
  const auto result = kmeans_cluster(keys, config, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 50);
}

TEST(KMeans, RecoversPlantedClusters) {
  std::vector<Index> truth;
  const auto keys = clustered_keys(400, 24, 4, 13, &truth);
  KMeansConfig config;
  config.num_clusters = 4;
  config.max_iterations = 50;
  Rng rng(3);
  const auto result = kmeans_cluster(keys, config, rng);
  // Same planted cluster => same learned label (allow a few noise errors).
  Index agree = 0;
  Index total = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    for (std::size_t j = i + 1; j < truth.size(); j += 17) {
      const bool same_truth = truth[i] == truth[j];
      const bool same_label = result.labels[i] == result.labels[j];
      if (same_truth == same_label) {
        ++agree;
      }
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.95);
}

TEST(KMeans, CosineIgnoresScale) {
  // Two groups identical in direction, wildly different magnitude: cosine
  // k-means with 2 clusters must split by direction, not by norm.
  Rng rng(14);
  const auto dir_a = rng.unit_vector(8);
  const auto dir_b = rng.unit_vector(8);
  Matrix keys(40, 8);
  for (Index i = 0; i < 40; ++i) {
    auto row = keys.row(i);
    copy_to(i % 2 == 0 ? dir_a : dir_b, row);
    for (float& x : row) {
      x += static_cast<float>(rng.normal(0.0, 0.02));
    }
    scale_in_place(row, i < 20 ? 0.1f : 10.0f);  // magnitude split at i=20
  }
  KMeansConfig config;
  config.num_clusters = 2;
  Rng krng(4);
  const auto result = kmeans_cluster(keys, config, krng);
  // All even i (direction a) share one label regardless of magnitude.
  const Index label_even = result.labels[0];
  for (Index i = 0; i < 40; i += 2) {
    EXPECT_EQ(result.labels[static_cast<std::size_t>(i)], label_even);
  }
  EXPECT_NE(result.labels[1], label_even);
}

TEST(KMeans, ClusterCountClampedToKeys) {
  Rng rng(15);
  Matrix keys(3, 4);
  rng.fill_normal(keys.flat(), 0.0, 1.0);
  KMeansConfig config;
  config.num_clusters = 10;
  Rng krng(5);
  const auto result = kmeans_cluster(keys, config, krng);
  EXPECT_EQ(result.centroids.rows(), 3);
}

TEST(KMeans, DuplicateKeysWithExcessClustersNeverReturnHollowClusters) {
  // Regression: identical keys collapse the sampled seeds, assignment
  // piles everything on one cluster, and reseeding cannot fill the rest —
  // the result used to carry duplicate/stale centroids with no members.
  // The compaction contract guarantees every returned cluster is lived-in.
  Matrix keys(3, 4);
  keys.fill(0.25f);
  KMeansConfig config;
  config.num_clusters = 10;
  Rng rng(16);
  const auto result = kmeans_cluster(keys, config, rng);
  ASSERT_EQ(result.labels.size(), 3u);
  std::vector<Index> counts(static_cast<std::size_t>(result.centroids.rows()), 0);
  for (const Index label : result.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, result.centroids.rows());
    ++counts[static_cast<std::size_t>(label)];
  }
  for (const Index c : counts) {
    EXPECT_GT(c, 0);
  }
}

TEST(KMeansRefine, ClampsEffectiveKToKeyCount) {
  // Regression for the repair path: a tiny merged group can be handed more
  // seed centroids than it has keys; the effective k must clamp so the
  // reseed path never runs out of keys and leaves stale duplicates behind.
  Rng rng(17);
  Matrix keys(3, 8);
  rng.fill_normal(keys.flat(), 0.0, 1.0);
  Matrix seeds(7, 8);
  rng.fill_normal(seeds.flat(), 0.0, 1.0);
  KMeansConfig config;
  config.max_iterations = 20;
  const auto result = kmeans_refine(keys, seeds, config);
  ASSERT_LE(result.centroids.rows(), 3);
  std::vector<Index> counts(static_cast<std::size_t>(result.centroids.rows()), 0);
  for (const Index label : result.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, result.centroids.rows());
    ++counts[static_cast<std::size_t>(label)];
  }
  for (const Index c : counts) {
    EXPECT_GT(c, 0);
  }
}

TEST(KMeansRefine, WarmStartRecoversPlantedClusters) {
  std::vector<Index> truth;
  const auto keys = clustered_keys(300, 16, 4, 18, &truth);
  // Seed from noisy per-cluster means (a stand-in for surviving centroids).
  Matrix seeds(4, 16);
  std::vector<Index> counts(4, 0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto row = keys.row(static_cast<Index>(i));
    auto seed = seeds.row(truth[i]);
    for (Index d = 0; d < 16; ++d) {
      seed[static_cast<std::size_t>(d)] += row[static_cast<std::size_t>(d)];
    }
    ++counts[static_cast<std::size_t>(truth[i])];
  }
  KMeansConfig config;
  config.max_iterations = 30;
  const auto result = kmeans_refine(keys, seeds, config);
  EXPECT_TRUE(result.converged);
  // Warm-started refinement lands on the planted partition.
  Index agree = 0;
  Index total = 0;
  for (std::size_t i = 0; i < truth.size(); i += 3) {
    for (std::size_t j = i + 1; j < truth.size(); j += 13) {
      agree += (truth[i] == truth[j]) == (result.labels[i] == result.labels[j]) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.95);
}

TEST(KMeansRefine, RejectsBadInputs) {
  Matrix keys(2, 2);
  Matrix empty;
  KMeansConfig config;
  EXPECT_THROW(kmeans_refine(keys, empty, config), std::invalid_argument);
  Matrix wrong_width(1, 3);
  EXPECT_THROW(kmeans_refine(keys, wrong_width, config), std::invalid_argument);
}

TEST(KMeans, DeterministicGivenSeed) {
  const auto keys = clustered_keys(100, 16, 3, 16);
  KMeansConfig config;
  config.num_clusters = 3;
  Rng r1(6);
  Rng r2(6);
  const auto a = kmeans_cluster(keys, config, r1);
  const auto b = kmeans_cluster(keys, config, r2);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(KMeans, RejectsBadInputs) {
  Matrix empty;
  KMeansConfig config;
  config.num_clusters = 2;
  Rng rng(7);
  EXPECT_THROW(kmeans_cluster(empty, config, rng), std::invalid_argument);
  Matrix keys(2, 2);
  config.num_clusters = 0;
  EXPECT_THROW(kmeans_cluster(keys, config, rng), std::invalid_argument);
}

TEST(DefaultClusterCount, PaperRule) {
  EXPECT_EQ(default_cluster_count(32000), 400);  // L/80 (§III-B)
  EXPECT_EQ(default_cluster_count(80), 1);
  EXPECT_EQ(default_cluster_count(79), 1);   // floor of 1
  EXPECT_EQ(default_cluster_count(0), 0);
  EXPECT_EQ(default_cluster_count(1600, 160), 10);
}

class CentroidUpdatePartitions : public ::testing::TestWithParam<Index> {};

TEST_P(CentroidUpdatePartitions, MeansIndependentOfPartitioning) {
  // The channel-partition parameter P (Fig. 7) is a performance knob; the
  // computed means must be identical for every P.
  const Index partitions = GetParam();
  const auto keys = clustered_keys(128, 32, 4, 17);
  const auto labels = std::vector<Index>([&] {
    std::vector<Index> l(128);
    for (Index i = 0; i < 128; ++i) {
      l[static_cast<std::size_t>(i)] = i % 4;
    }
    return l;
  }());
  Matrix previous(4, 32);
  Matrix out_p;
  std::vector<Index> counts_p;
  centroid_update(keys, labels, previous, partitions, out_p, counts_p);

  Matrix out_1;
  std::vector<Index> counts_1;
  centroid_update(keys, labels, previous, 1, out_1, counts_1);

  EXPECT_EQ(counts_p, counts_1);
  EXPECT_LT(frobenius_distance(out_p, out_1), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Partitions, CentroidUpdatePartitions,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(CentroidUpdate, EmptyClusterKeepsPrevious) {
  Matrix keys(4, 2);
  keys.fill(1.0f);
  const std::vector<Index> labels{0, 0, 0, 0};
  Matrix previous(2, 2);
  previous.at(1, 0) = 7.0f;
  Matrix out;
  std::vector<Index> counts;
  centroid_update(keys, labels, previous, 1, out, counts);
  EXPECT_EQ(counts[1], 0);
  EXPECT_FLOAT_EQ(out.at(1, 0), 7.0f);  // untouched cluster keeps old row
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);  // mean of ones
}

TEST(AssignLabels, NearestByMetric) {
  Matrix keys(2, 2);
  keys.at(0, 0) = 1.0f;
  keys.at(1, 1) = 1.0f;
  Matrix centroids(2, 2);
  centroids.at(0, 0) = 1.0f;
  centroids.at(1, 1) = 1.0f;
  const auto labels = assign_labels(keys, centroids, DistanceMetric::kCosine);
  EXPECT_EQ(labels, (std::vector<Index>{0, 1}));
}

TEST(AssignmentFlops, Formula) {
  EXPECT_EQ(assignment_flops(1000, 10, 64), 640000);
}

TEST(Distance, SimilarityOrderings) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{10.0f, 0.0f};
  const std::vector<float> c{0.0f, 1.0f};
  // Cosine: direction only.
  EXPECT_NEAR(similarity(DistanceMetric::kCosine, a, b), 1.0, 1e-6);
  EXPECT_NEAR(similarity(DistanceMetric::kCosine, a, c), 0.0, 1e-6);
  // L2: magnitude matters.
  EXPECT_LT(similarity(DistanceMetric::kL2, a, b),
            similarity(DistanceMetric::kL2, a, c));
  // Inner product: magnitude amplifies.
  EXPECT_GT(similarity(DistanceMetric::kInnerProduct, a, b),
            similarity(DistanceMetric::kInnerProduct, a, a));
}

TEST(Distance, ParseAndPrint) {
  EXPECT_EQ(parse_distance_metric("cosine"), DistanceMetric::kCosine);
  EXPECT_EQ(parse_distance_metric("l2"), DistanceMetric::kL2);
  EXPECT_EQ(parse_distance_metric("ip"), DistanceMetric::kInnerProduct);
  EXPECT_THROW(parse_distance_metric("nope"), std::invalid_argument);
  EXPECT_EQ(to_string(DistanceMetric::kCosine), "cosine");
  EXPECT_EQ(to_string(DistanceMetric::kL2), "L2");
  EXPECT_EQ(to_string(DistanceMetric::kInnerProduct), "inner-product");
}

}  // namespace
}  // namespace ckv

namespace ckv {
namespace {

TEST(KMeansPlusPlus, SeedsRecoverWellSeparatedClusters) {
  std::vector<Index> truth;
  const auto keys = clustered_keys(300, 16, 6, 99, &truth);
  KMeansConfig config;
  config.num_clusters = 6;
  config.init = KMeansInit::kPlusPlus;
  config.max_iterations = 50;
  Rng rng(7);
  const auto result = kmeans_cluster(keys, config, rng);
  EXPECT_TRUE(result.converged);
  // Pairwise agreement with the planted labels.
  Index agree = 0;
  Index total = 0;
  for (std::size_t i = 0; i < truth.size(); i += 3) {
    for (std::size_t j = i + 1; j < truth.size(); j += 13) {
      const bool same_truth = truth[i] == truth[j];
      const bool same_label = result.labels[i] == result.labels[j];
      if (same_truth == same_label) {
        ++agree;
      }
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.95);
}

TEST(KMeansPlusPlus, DeterministicGivenSeed) {
  const auto keys = clustered_keys(100, 8, 3, 100);
  KMeansConfig config;
  config.num_clusters = 3;
  config.init = KMeansInit::kPlusPlus;
  Rng r1(8);
  Rng r2(8);
  EXPECT_EQ(kmeans_cluster(keys, config, r1).labels,
            kmeans_cluster(keys, config, r2).labels);
}

TEST(KMeansPlusPlus, HandlesIdenticalKeys) {
  Matrix keys(10, 4);
  keys.fill(1.0f);
  KMeansConfig config;
  config.num_clusters = 3;
  config.init = KMeansInit::kPlusPlus;
  Rng rng(9);
  const auto result = kmeans_cluster(keys, config, rng);
  EXPECT_EQ(result.labels.size(), 10u);
}

TEST(KMeansPlusPlus, ConvergesAtLeastAsFastOnSeparatedData) {
  // Seeding quality property: on well-separated clusters, k-means++ needs
  // no more iterations than random seeding (averaged over seeds).
  Index random_iters = 0;
  Index pp_iters = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto keys = clustered_keys(240, 16, 5, 200 + seed);
    KMeansConfig config;
    config.num_clusters = 5;
    config.max_iterations = 60;
    Rng r1(seed);
    config.init = KMeansInit::kRandomSample;
    random_iters += kmeans_cluster(keys, config, r1).iterations;
    Rng r2(seed);
    config.init = KMeansInit::kPlusPlus;
    pp_iters += kmeans_cluster(keys, config, r2).iterations;
  }
  EXPECT_LE(pp_iters, random_iters + 6);
}

}  // namespace
}  // namespace ckv
