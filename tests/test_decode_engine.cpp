#include <gtest/gtest.h>

#include "baselines/full_kv.hpp"
#include "baselines/quest.hpp"
#include "baselines/streaming_llm.hpp"
#include "core/clusterkv_engine.hpp"
#include "model/decode_engine.hpp"

namespace ckv {
namespace {

SimShape small_shape() {
  SimShape s;
  s.num_layers = 2;
  s.num_heads = 2;
  s.head_dim = 32;
  return s;
}

ProceduralParams small_params() {
  ProceduralParams p;
  p.head_dim = 32;
  p.num_topics = 16;
  return p;
}

ClusterKVConfig small_ckv() {
  ClusterKVConfig c;
  c.sink_tokens = 8;
  c.tokens_per_cluster = 40;
  c.decode_interval = 16;
  c.decode_clusters = 2;
  return c;
}

TEST(DecodeEngine, FullKVIsPerfect) {
  ProceduralContextModel model(small_shape(), small_params(), 1, 400);
  DecodeEngineConfig config;
  config.budget = 64;
  config.full_attention_layers = 1;
  DecodeEngine engine(model, make_full_kv_factory(), config);
  engine.run_prefill();
  for (Index s = 0; s < 4; ++s) {
    const auto step = engine.decode_step(s);
    EXPECT_DOUBLE_EQ(step.mean_recall, 1.0);
    EXPECT_NEAR(step.mean_coverage, 1.0, 1e-6);
    EXPECT_NEAR(step.mean_output_error, 0.0, 1e-6);
  }
}

TEST(DecodeEngine, StepsMustBeSequential) {
  ProceduralContextModel model(small_shape(), small_params(), 2, 100);
  DecodeEngineConfig config;
  DecodeEngine engine(model, make_full_kv_factory(), config);
  EXPECT_THROW(engine.decode_step(0), std::invalid_argument);  // prefill first
  engine.run_prefill();
  EXPECT_THROW(engine.decode_step(1), std::invalid_argument);
  EXPECT_NO_THROW(engine.decode_step(0));
  EXPECT_THROW(engine.run_prefill(), std::invalid_argument);
}

TEST(DecodeEngine, FeaturesHaveLastLayerWidth) {
  ProceduralContextModel model(small_shape(), small_params(), 3, 100);
  DecodeEngineConfig config;
  DecodeEngine engine(model, make_full_kv_factory(), config);
  engine.run_prefill();
  const auto step = engine.decode_step(0);
  EXPECT_EQ(step.features.size(), 2u * 32u);  // heads * head_dim
}

TEST(DecodeEngine, ClusterKVBeatsStreamingWindow) {
  const std::uint64_t seed = 4;
  const Index budget = 96;

  ProceduralContextModel m1(small_shape(), small_params(), seed, 800);
  DecodeEngineConfig config;
  config.budget = budget;
  config.full_attention_layers = 1;
  DecodeEngine ckv(m1, make_clusterkv_factory(small_ckv(), 1), config);
  ckv.run_prefill();

  ProceduralContextModel m2(small_shape(), small_params(), seed, 800);
  DecodeEngine window(m2, make_streaming_llm_factory(), config);
  window.run_prefill();

  for (Index s = 0; s < 16; ++s) {
    ckv.decode_step(s);
    window.decode_step(s);
  }
  EXPECT_GT(ckv.recall_stat().mean(), window.recall_stat().mean());
  EXPECT_GT(ckv.coverage_stat().mean(), window.coverage_stat().mean());
}

TEST(DecodeEngine, FullAttentionLayersBypassSelection) {
  ProceduralContextModel model(small_shape(), small_params(), 5, 300);
  DecodeEngineConfig config;
  config.budget = 32;
  config.full_attention_layers = 2;  // all layers full: metrics over none
  DecodeEngine engine(model, make_quest_factory(), config);
  engine.run_prefill();
  const auto step = engine.decode_step(0);
  // No selection-active layer contributes, stats stay at defaults.
  EXPECT_DOUBLE_EQ(step.mean_recall, 0.0);
  EXPECT_EQ(step.tokens_selected, 0);
}

TEST(DecodeEngine, CacheCountersFlowThrough) {
  ProceduralContextModel model(small_shape(), small_params(), 6, 800);
  DecodeEngineConfig config;
  config.budget = 96;
  DecodeEngine engine(model, make_clusterkv_factory(small_ckv(), 2), config);
  engine.run_prefill();
  Index fetched = 0;
  Index hits = 0;
  for (Index s = 0; s < 12; ++s) {
    const auto step = engine.decode_step(s);
    fetched += step.tokens_fetched;
    hits += step.tokens_cache_hit;
  }
  EXPECT_GT(fetched, 0);
  EXPECT_GT(hits, 0);  // consecutive steps share clusters (R = 1)
  EXPECT_EQ(engine.total_fetched(), fetched);
  EXPECT_EQ(engine.total_cache_hits(), hits);
}

TEST(DecodeEngine, BudgetValidation) {
  ProceduralContextModel model(small_shape(), small_params(), 7, 50);
  DecodeEngineConfig config;
  config.budget = 0;
  EXPECT_THROW(DecodeEngine(model, make_full_kv_factory(), config),
               std::invalid_argument);
  config.budget = 10;
  config.full_attention_layers = 5;
  EXPECT_THROW(DecodeEngine(model, make_full_kv_factory(), config),
               std::invalid_argument);
}

class BudgetMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BudgetMonotonicity, ClusterKVCoverageGrowsWithBudget) {
  // Property: more budget never hurts coverage (averaged over steps).
  const std::uint64_t seed = GetParam();
  double previous = -1.0;
  for (const Index budget : {32, 96, 256}) {
    ProceduralContextModel model(small_shape(), small_params(), seed, 600);
    DecodeEngineConfig config;
    config.budget = budget;
    DecodeEngine engine(model, make_clusterkv_factory(small_ckv(), seed), config);
    engine.run_prefill();
    for (Index s = 0; s < 8; ++s) {
      engine.decode_step(s);
    }
    EXPECT_GT(engine.coverage_stat().mean(), previous);
    previous = engine.coverage_stat().mean();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetMonotonicity, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace ckv
