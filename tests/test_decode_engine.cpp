#include <gtest/gtest.h>

#include "baselines/full_kv.hpp"
#include "baselines/quest.hpp"
#include "baselines/streaming_llm.hpp"
#include "core/clusterkv_engine.hpp"
#include "model/decode_engine.hpp"

namespace ckv {
namespace {

SimShape small_shape() {
  SimShape s;
  s.num_layers = 2;
  s.num_heads = 2;
  s.head_dim = 32;
  return s;
}

ProceduralParams small_params() {
  ProceduralParams p;
  p.head_dim = 32;
  p.num_topics = 16;
  return p;
}

ClusterKVConfig small_ckv() {
  ClusterKVConfig c;
  c.sink_tokens = 8;
  c.tokens_per_cluster = 40;
  c.decode_interval = 16;
  c.decode_clusters = 2;
  return c;
}

TEST(DecodeEngine, FullKVIsPerfect) {
  ProceduralContextModel model(small_shape(), small_params(), 1, 400);
  DecodeEngineConfig config;
  config.budget = 64;
  config.full_attention_layers = 1;
  DecodeEngine engine(model, make_full_kv_factory(), config);
  engine.run_prefill();
  for (Index s = 0; s < 4; ++s) {
    const auto step = engine.decode_step(s);
    EXPECT_DOUBLE_EQ(step.mean_recall, 1.0);
    EXPECT_NEAR(step.mean_coverage, 1.0, 1e-6);
    EXPECT_NEAR(step.mean_output_error, 0.0, 1e-6);
  }
}

TEST(DecodeEngine, StepsMustBeSequential) {
  ProceduralContextModel model(small_shape(), small_params(), 2, 100);
  DecodeEngineConfig config;
  DecodeEngine engine(model, make_full_kv_factory(), config);
  EXPECT_THROW(engine.decode_step(0), std::invalid_argument);  // prefill first
  engine.run_prefill();
  EXPECT_THROW(engine.decode_step(1), std::invalid_argument);
  EXPECT_NO_THROW(engine.decode_step(0));
  EXPECT_THROW(engine.run_prefill(), std::invalid_argument);
}

// prefill_chunk is the re-entrant mirror of decode_next: consuming the
// prompt in slices must leave every selector with the same context, and
// for chunk-oblivious methods (full KV defers to one whole-prompt
// observe_prefill at the final chunk) the selection is bit-identical.
TEST(DecodeEngine, ChunkedPrefillMatchesWholePromptForChunkObliviousMethods) {
  const Index prompt = 250;
  ProceduralContextModel whole_model(small_shape(), small_params(), 5, prompt);
  ProceduralContextModel chunk_model(small_shape(), small_params(), 5, prompt);
  DecodeEngineConfig config;
  config.budget = 64;
  config.full_attention_layers = 1;

  DecodeEngine whole(whole_model, make_quest_factory(), config);
  whole.run_prefill();

  DecodeEngine chunked(chunk_model, make_quest_factory(), config);
  EXPECT_FALSE(chunked.prefilled());
  Index consumed = 0;
  Index calls = 0;
  while (!chunked.prefilled()) {
    consumed += chunked.prefill_chunk(64);
    ++calls;
  }
  EXPECT_EQ(consumed, prompt);
  EXPECT_EQ(calls, 4);  // ceil(250 / 64)
  EXPECT_EQ(chunked.prefill_tokens_done(), prompt);
  EXPECT_EQ(chunked.prefill_chunk(64), 0);  // exhausted: consumes nothing

  for (Index s = 0; s < 4; ++s) {
    const auto a = whole.decode_step(s);
    const auto b = chunked.decode_step(s);
    EXPECT_EQ(a.tokens_selected, b.tokens_selected);
    EXPECT_DOUBLE_EQ(a.mean_recall, b.mean_recall);
    EXPECT_DOUBLE_EQ(a.mean_coverage, b.mean_coverage);
  }
}

TEST(DecodeEngine, ChunkedPrefillDrivesClusterKVIncrementally) {
  const Index prompt = 300;
  ProceduralContextModel model(small_shape(), small_params(), 6, prompt);
  DecodeEngineConfig config;
  config.budget = 64;
  config.full_attention_layers = 1;
  DecodeEngine engine(model, make_clusterkv_factory(small_ckv(), 2), config);
  while (!engine.prefilled()) {
    engine.prefill_chunk(50);
    // Mixing the one-shot path into an ongoing chunked prefill is a
    // contract violation, not silent double feeding.
    EXPECT_THROW(engine.run_prefill(), std::invalid_argument);
  }
  // Every selector saw the full prompt and clustered all non-sink tokens.
  auto& bank = engine.selectors();
  for (Index l = 0; l < small_shape().num_layers; ++l) {
    for (Index h = 0; h < small_shape().num_heads; ++h) {
      const auto* ckv = dynamic_cast<const ClusterKVEngine*>(&bank.at(l, h));
      ASSERT_NE(ckv, nullptr);
      EXPECT_EQ(ckv->context_size(), prompt);
      EXPECT_EQ(ckv->pending_count(), 0);  // last chunk flushed the tail
      EXPECT_EQ(ckv->centroid_store().token_count(),
                prompt - small_ckv().sink_tokens);
    }
  }
  const auto step = engine.decode_step(0);
  EXPECT_GT(step.mean_recall, 0.0);
}

TEST(DecodeEngine, FeaturesHaveLastLayerWidth) {
  ProceduralContextModel model(small_shape(), small_params(), 3, 100);
  DecodeEngineConfig config;
  DecodeEngine engine(model, make_full_kv_factory(), config);
  engine.run_prefill();
  const auto step = engine.decode_step(0);
  EXPECT_EQ(step.features.size(), 2u * 32u);  // heads * head_dim
}

TEST(DecodeEngine, ClusterKVBeatsStreamingWindow) {
  const std::uint64_t seed = 4;
  const Index budget = 96;

  ProceduralContextModel m1(small_shape(), small_params(), seed, 800);
  DecodeEngineConfig config;
  config.budget = budget;
  config.full_attention_layers = 1;
  DecodeEngine ckv(m1, make_clusterkv_factory(small_ckv(), 1), config);
  ckv.run_prefill();

  ProceduralContextModel m2(small_shape(), small_params(), seed, 800);
  DecodeEngine window(m2, make_streaming_llm_factory(), config);
  window.run_prefill();

  for (Index s = 0; s < 16; ++s) {
    ckv.decode_step(s);
    window.decode_step(s);
  }
  EXPECT_GT(ckv.recall_stat().mean(), window.recall_stat().mean());
  EXPECT_GT(ckv.coverage_stat().mean(), window.coverage_stat().mean());
}

TEST(DecodeEngine, FullAttentionLayersBypassSelection) {
  ProceduralContextModel model(small_shape(), small_params(), 5, 300);
  DecodeEngineConfig config;
  config.budget = 32;
  config.full_attention_layers = 2;  // all layers full: metrics over none
  DecodeEngine engine(model, make_quest_factory(), config);
  engine.run_prefill();
  const auto step = engine.decode_step(0);
  // No selection-active layer contributes: attention was exact everywhere,
  // so the step reports vacuously lossless quality and the engine
  // aggregates collect no sample (recall_steps stays 0).
  EXPECT_DOUBLE_EQ(step.mean_recall, 1.0);
  EXPECT_DOUBLE_EQ(step.mean_coverage, 1.0);
  EXPECT_DOUBLE_EQ(step.mean_output_error, 0.0);
  EXPECT_EQ(step.tokens_selected, 0);
  EXPECT_EQ(engine.recall_steps(), 0);
}

TEST(DecodeEngine, CacheCountersFlowThrough) {
  ProceduralContextModel model(small_shape(), small_params(), 6, 800);
  DecodeEngineConfig config;
  config.budget = 96;
  DecodeEngine engine(model, make_clusterkv_factory(small_ckv(), 2), config);
  engine.run_prefill();
  Index fetched = 0;
  Index hits = 0;
  for (Index s = 0; s < 12; ++s) {
    const auto step = engine.decode_step(s);
    fetched += step.tokens_fetched;
    hits += step.tokens_cache_hit;
  }
  EXPECT_GT(fetched, 0);
  EXPECT_GT(hits, 0);  // consecutive steps share clusters (R = 1)
  EXPECT_EQ(engine.total_fetched(), fetched);
  EXPECT_EQ(engine.total_cache_hits(), hits);
}

TEST(DecodeEngine, BudgetValidation) {
  ProceduralContextModel model(small_shape(), small_params(), 7, 50);
  DecodeEngineConfig config;
  config.budget = 0;
  EXPECT_THROW(DecodeEngine(model, make_full_kv_factory(), config),
               std::invalid_argument);
  config.budget = 10;
  config.full_attention_layers = 5;
  EXPECT_THROW(DecodeEngine(model, make_full_kv_factory(), config),
               std::invalid_argument);
}

class BudgetMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BudgetMonotonicity, ClusterKVCoverageGrowsWithBudget) {
  // Property: more budget never hurts coverage (averaged over steps).
  const std::uint64_t seed = GetParam();
  double previous = -1.0;
  for (const Index budget : {32, 96, 256}) {
    ProceduralContextModel model(small_shape(), small_params(), seed, 600);
    DecodeEngineConfig config;
    config.budget = budget;
    DecodeEngine engine(model, make_clusterkv_factory(small_ckv(), seed), config);
    engine.run_prefill();
    for (Index s = 0; s < 8; ++s) {
      engine.decode_step(s);
    }
    EXPECT_GT(engine.coverage_stat().mean(), previous);
    previous = engine.coverage_stat().mean();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetMonotonicity, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace ckv
