#include <gtest/gtest.h>

#include <cmath>

#include "baselines/full_kv.hpp"
#include "baselines/quest.hpp"
#include "core/clusterkv_engine.hpp"
#include "workload/longbench.hpp"
#include "workload/pg19.hpp"

namespace ckv {
namespace {

TaskRunOptions small_options() {
  TaskRunOptions o;
  o.shape.num_layers = 2;
  o.shape.num_heads = 2;
  o.shape.head_dim = 32;
  o.params.head_dim = 32;
  o.params.num_topics = 16;
  o.budget = 64;
  o.full_attention_layers = 1;
  o.seed = 123;
  return o;
}

ClusterKVConfig small_ckv() {
  ClusterKVConfig c;
  c.sink_tokens = 8;
  c.tokens_per_cluster = 40;
  c.decode_interval = 16;
  c.decode_clusters = 2;
  return c;
}

TEST(LongBenchSuite, HasEightPaperTasks) {
  const auto suite = longbench_suite();
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite[0].name, "2WikiMQA");
  EXPECT_EQ(suite[7].name, "GovReport");
  EXPECT_EQ(suite[7].metric, "ROUGE-L");
  for (const auto& task : suite) {
    EXPECT_GT(task.context_len, 0);
    EXPECT_LE(task.context_len, 32768);
    EXPECT_GT(task.full_kv_score, 0.0);
  }
}

TEST(LongBench, FullKVScoresAtAnchor) {
  const auto suite = longbench_suite_small();
  const auto options = small_options();
  for (const auto& task : suite) {
    const auto result = run_longbench_task(task, make_full_kv_factory(), options);
    // Coverage accumulates float softmax mass, so allow float-sum slack.
    EXPECT_NEAR(result.quality, 1.0, 1e-5) << task.name;
    EXPECT_NEAR(result.score, task.full_kv_score, 1e-3) << task.name;
  }
}

TEST(LongBench, ClusterKVOutscoresQuestAtSmallBudget) {
  // Budget must exceed the cluster size for cluster-granularity recall to
  // pay off (the paper's budgets are 3-25x the mean cluster size).
  const auto suite = longbench_suite_small();
  auto options = small_options();
  options.budget = 160;
  double ckv_total = 0.0;
  double quest_total = 0.0;
  for (const auto& task : suite) {
    ckv_total +=
        run_longbench_task(task, make_clusterkv_factory(small_ckv(), 1), options).score;
    quest_total += run_longbench_task(task, make_quest_factory(), options).score;
  }
  EXPECT_GT(ckv_total, quest_total);
}

TEST(LongBench, ScoreImprovesWithBudget) {
  const auto task = longbench_suite_small()[0];
  auto options = small_options();
  double previous = -1.0;
  for (const Index budget : {24, 64, 160}) {
    options.budget = budget;
    const auto result =
        run_longbench_task(task, make_clusterkv_factory(small_ckv(), 2), options);
    EXPECT_GE(result.score, previous);
    previous = result.score;
  }
}

TEST(LongBench, DeterministicRuns) {
  const auto task = longbench_suite_small()[1];
  const auto options = small_options();
  const auto a =
      run_longbench_task(task, make_clusterkv_factory(small_ckv(), 3), options);
  const auto b =
      run_longbench_task(task, make_clusterkv_factory(small_ckv(), 3), options);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_EQ(a.tokens_fetched, b.tokens_fetched);
}

TEST(CalibrateTemperature, HitsTargetEntropy) {
  std::vector<float> logits(64);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits[i] = static_cast<float>(i) * 0.1f;
  }
  for (const double target : {2.0, 10.0, 30.0}) {
    const double t = calibrate_temperature(logits, target);
    // Re-check: entropy at the calibrated temperature equals log(target).
    std::vector<float> scaled(logits.size());
    for (std::size_t i = 0; i < logits.size(); ++i) {
      scaled[i] = static_cast<float>(logits[i] / t);
    }
    // Softmax entropy via the same helper the harness uses (log target ppl).
    double h = 0.0;
    {
      double max_v = scaled[0];
      for (const float v : scaled) {
        max_v = std::max(max_v, static_cast<double>(v));
      }
      double z = 0.0;
      for (const float v : scaled) {
        z += std::exp(static_cast<double>(v) - max_v);
      }
      for (const float v : scaled) {
        const double p = std::exp(static_cast<double>(v) - max_v) / z;
        if (p > 0) {
          h -= p * std::log(p);
        }
      }
    }
    EXPECT_NEAR(h, std::log(target), 1e-3) << "target " << target;
  }
}

TEST(CalibrateTemperature, RejectsOutOfRangeTargets) {
  const std::vector<float> logits{1.0f, 2.0f, 3.0f};
  EXPECT_THROW(calibrate_temperature(logits, 1.0), std::invalid_argument);
  EXPECT_THROW(calibrate_temperature(logits, 5.0), std::invalid_argument);
}

TEST(PG19, FullKVTracksAnchorCurve) {
  PG19Config config;
  config.max_len = 2048;
  config.prompt_len = 512;
  config.eval_stride = 256;
  config.budget = 128;
  SimShape shape;
  shape.num_layers = 2;
  shape.num_heads = 2;
  shape.head_dim = 32;
  ProceduralParams params;
  params.head_dim = 32;
  params.num_topics = 16;

  const auto points = run_pg19(make_full_kv_factory(), config, shape, params);
  ASSERT_GE(points.size(), 3u);
  // Full KV's NLL is the exact entropy of the calibrated distribution, so
  // its perplexity sits inside the anchor band at every checkpoint.
  for (const auto& p : points) {
    EXPECT_GT(p.perplexity, config.full_ppl_long - 0.5) << p.input_len;
    EXPECT_LT(p.perplexity, config.full_ppl_short + 0.5) << p.input_len;
  }
}

TEST(PG19, CompressionNeverBeatsFullOnAverage) {
  PG19Config config;
  config.max_len = 2048;
  config.prompt_len = 512;
  config.eval_stride = 256;
  config.budget = 96;
  SimShape shape;
  shape.num_layers = 2;
  shape.num_heads = 2;
  shape.head_dim = 32;
  ProceduralParams params;
  params.head_dim = 32;
  params.num_topics = 16;

  const auto full = run_pg19(make_full_kv_factory(), config, shape, params);
  const auto quest = run_pg19(make_quest_factory(), config, shape, params);
  ASSERT_EQ(full.size(), quest.size());
  // Cross-entropy = entropy + KL, so a compressed method's perplexity can
  // never fall below Full KV's at any checkpoint.
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_GE(quest[i].perplexity, full[i].perplexity - 1e-6) << full[i].input_len;
  }
}

TEST(PG19, ConfigValidation) {
  PG19Config config;
  config.max_len = 100;
  config.prompt_len = 100;
  SimShape shape;
  ProceduralParams params;
  EXPECT_THROW(run_pg19(make_full_kv_factory(), config, shape, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace ckv
