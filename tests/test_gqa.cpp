// Grouped-query attention (GQA) support: query-head groups share one KV
// head and one selection — the regime of Llama-3.1-8B (8 KV heads serving
// 32 query heads), which the paper's performance evaluation uses.
#include <gtest/gtest.h>

#include "baselines/full_kv.hpp"
#include "baselines/quest.hpp"
#include "baselines/streaming_llm.hpp"
#include "core/clusterkv_engine.hpp"
#include "model/decode_engine.hpp"
#include "model/procedural.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

ProceduralParams gqa_params() {
  ProceduralParams p;
  p.head_dim = 64;
  p.queries_per_kv = 4;
  return p;
}

SimShape gqa_shape() {
  SimShape s;
  s.num_layers = 1;
  s.num_heads = 2;
  s.head_dim = 64;
  s.queries_per_kv = 4;
  return s;
}

ClusterKVConfig fast_ckv() {
  ClusterKVConfig c;
  c.tokens_per_cluster = 40;
  c.decode_interval = 32;
  return c;
}

TEST(GqaHeadStream, SubQueriesShareFocusButDiffer) {
  HeadStream stream(gqa_params(), Rng(1), 400);
  const auto q0 = stream.query(0, 0);
  const auto q1 = stream.query(0, 1);
  ASSERT_EQ(q0.size(), q1.size());
  // Different noise: not identical.
  EXPECT_GT(squared_l2_distance(q0, q1), 1e-6);
  // Shared focus: strongly correlated directions.
  EXPECT_GT(cosine_similarity(q0, q1), 0.6);
}

TEST(GqaHeadStream, SubQueryMemoizationStable) {
  HeadStream stream(gqa_params(), Rng(2), 100);
  const auto first = stream.query(3, 2);
  const auto again = stream.query(3, 2);
  EXPECT_EQ(first, again);
}

TEST(GqaHeadStream, SubQueryRangeValidated) {
  HeadStream stream(gqa_params(), Rng(3), 50);
  EXPECT_THROW(stream.query(0, 4), std::invalid_argument);
  EXPECT_THROW(stream.query(0, -1), std::invalid_argument);
}

TEST(GqaHeadStream, DefaultGroupSizeOneUnchanged) {
  ProceduralParams p;
  p.head_dim = 32;
  HeadStream stream(p, Rng(4), 50);
  EXPECT_NO_THROW(stream.query(0));
  EXPECT_THROW(stream.query(0, 1), std::invalid_argument);
}

TEST(GqaDecodeEngine, FullKVPerfectForEveryGroupMember) {
  ProceduralContextModel model(gqa_shape(), gqa_params(), 5, 400);
  DecodeEngineConfig config;
  config.budget = 64;
  config.full_attention_layers = 0;
  DecodeEngine engine(model, make_full_kv_factory(), config);
  engine.run_prefill();
  const auto step = engine.decode_step(0);
  EXPECT_DOUBLE_EQ(step.mean_recall, 1.0);
  // Features: one output per (kv head, group member).
  EXPECT_EQ(step.features.size(), 2u * 4u * 64u);
}

TEST(GqaDecodeEngine, SharedSelectionServesTheGroup) {
  ProceduralContextModel model(gqa_shape(), gqa_params(), 6, 2048);
  DecodeEngineConfig config;
  config.budget = 256;
  config.full_attention_layers = 0;
  DecodeEngine engine(model, make_clusterkv_factory(fast_ckv(), 7), config);
  engine.run_prefill();
  Index selected_total = 0;
  for (Index s = 0; s < 6; ++s) {
    const auto step = engine.decode_step(s);
    selected_total += step.tokens_selected;
  }
  // One selection per KV head per step (not per query head): 2 heads x
  // budget 256 x 6 steps.
  EXPECT_EQ(selected_total, 2 * 256 * 6);
  // The shared selection still captures the group's attention.
  EXPECT_GT(engine.coverage_stat().mean(), 0.3);
}

TEST(GqaDecodeEngine, GroupSelectionBeatsStaticWindow) {
  ProceduralContextModel m1(gqa_shape(), gqa_params(), 8, 2048);
  DecodeEngineConfig config;
  config.budget = 256;
  config.full_attention_layers = 0;
  DecodeEngine ckv(m1, make_clusterkv_factory(fast_ckv(), 9), config);
  ckv.run_prefill();

  ProceduralContextModel m2(gqa_shape(), gqa_params(), 8, 2048);
  DecodeEngine window(m2, make_streaming_llm_factory(), config);
  window.run_prefill();

  for (Index s = 0; s < 8; ++s) {
    ckv.decode_step(s);
    window.decode_step(s);
  }
  EXPECT_GT(ckv.coverage_stat().mean(), window.coverage_stat().mean());
}

TEST(GqaDecodeEngine, LargerGroupsDiluteSelectionQuality) {
  // Property: a selection shared by more query heads fits each one less
  // well — recall cannot improve as the group grows (same budget).
  double previous = 1.1;
  for (const Index group : {1, 4, 8}) {
    SimShape shape = gqa_shape();
    shape.queries_per_kv = group;
    ProceduralParams params = gqa_params();
    params.queries_per_kv = group;
    ProceduralContextModel model(shape, params, 10, 2048);
    DecodeEngineConfig config;
    config.budget = 256;
    config.full_attention_layers = 0;
    DecodeEngine engine(model, make_clusterkv_factory(fast_ckv(), 11), config);
    engine.run_prefill();
    for (Index s = 0; s < 6; ++s) {
      engine.decode_step(s);
    }
    EXPECT_LE(engine.recall_stat().mean(), previous + 0.05) << "group " << group;
    previous = engine.recall_stat().mean();
  }
}

}  // namespace
}  // namespace ckv
