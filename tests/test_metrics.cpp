#include <gtest/gtest.h>

#include <cmath>

#include "metrics/fragmentation.hpp"
#include "metrics/metrics.hpp"
#include "metrics/perplexity.hpp"

namespace ckv {
namespace {

TEST(Recall, BasicOverlap) {
  const std::vector<Index> selected{1, 2, 3, 4};
  const std::vector<Index> truth{3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(recall_of(selected, truth), 0.5);
}

TEST(Recall, EmptyTruthIsZero) {
  const std::vector<Index> selected{1};
  EXPECT_DOUBLE_EQ(recall_of(selected, {}), 0.0);
}

TEST(Recall, DuplicatesCountOnce) {
  const std::vector<Index> selected{3, 3, 3};
  const std::vector<Index> truth{3, 4};
  EXPECT_DOUBLE_EQ(recall_of(selected, truth), 0.5);
}

TEST(AttentionMass, SumsSelectedProbabilities) {
  const std::vector<float> probs{0.1f, 0.2f, 0.3f, 0.4f};
  const std::vector<Index> sel{1, 3};
  EXPECT_NEAR(attention_mass(probs, sel), 0.6, 1e-6);
}

TEST(AttentionMass, OutOfRangeRejected) {
  const std::vector<float> probs{0.5f, 0.5f};
  const std::vector<Index> bad{2};
  EXPECT_THROW(attention_mass(probs, bad), std::invalid_argument);
}

TEST(BlendedQuality, BoundsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(blended_quality(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(blended_quality(0.0, 0.0), 0.0);
  EXPECT_GT(blended_quality(0.8, 0.5), blended_quality(0.5, 0.5));
  EXPECT_GT(blended_quality(0.5, 0.8), blended_quality(0.5, 0.5));
  // Out-of-range inputs clamp.
  EXPECT_DOUBLE_EQ(blended_quality(2.0, 2.0), 1.0);
}

TEST(QualityToScore, AnchoredAtFullKV) {
  EXPECT_DOUBLE_EQ(quality_to_score(1.0, 49.0, 1.0), 49.0);
  EXPECT_DOUBLE_EQ(quality_to_score(1.0, 49.0, 3.6), 49.0);
  // Linear when difficulty = 1.
  EXPECT_DOUBLE_EQ(quality_to_score(0.5, 40.0, 1.0), 20.0);
  // Concave for difficulty > 1: partial quality keeps most of the score.
  EXPECT_NEAR(quality_to_score(0.5, 40.0, 2.0), 30.0, 1e-9);
  EXPECT_GT(quality_to_score(0.7, 40.0, 4.0), quality_to_score(0.7, 40.0, 2.0));
  EXPECT_DOUBLE_EQ(quality_to_score(0.0, 40.0, 3.0), 0.0);
  EXPECT_THROW(quality_to_score(0.5, 40.0, 0.0), std::invalid_argument);
}

TEST(Perplexity, ExpOfMeanNll) {
  PerplexityMeter meter;
  meter.add_nll(std::log(10.0));
  meter.add_nll(std::log(10.0));
  EXPECT_NEAR(meter.perplexity(), 10.0, 1e-9);
  EXPECT_EQ(meter.count(), 2);
}

TEST(Perplexity, EmptyMeterIsOne) {
  PerplexityMeter meter;
  EXPECT_DOUBLE_EQ(meter.perplexity(), 1.0);
}

TEST(Perplexity, RejectsNonFinite) {
  PerplexityMeter meter;
  EXPECT_THROW(meter.add_nll(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(Fragmentation, PerfectlyPackedTokens) {
  // 32 important tokens in exactly 2 pages of 16.
  std::vector<float> scores(256, 0.0f);
  for (Index i = 0; i < 16; ++i) {
    scores[static_cast<std::size_t>(i)] = 10.0f;
    scores[static_cast<std::size_t>(64 + i)] = 10.0f;
  }
  const auto report = analyze_page_fragmentation(scores, 32, 16);
  EXPECT_EQ(report.pages_touched, 2);
  EXPECT_EQ(report.tokens_wasted, 0);
  EXPECT_DOUBLE_EQ(report.mean_per_page, 16.0);
  EXPECT_EQ(report.histogram.back(), 2);  // two pages with 16 important
}

TEST(Fragmentation, FullyScatteredTokens) {
  // One important token every 16 positions: worst-case fragmentation.
  std::vector<float> scores(256, 0.0f);
  for (Index p = 0; p < 16; ++p) {
    scores[static_cast<std::size_t>(p * 16)] = 10.0f;
  }
  const auto report = analyze_page_fragmentation(scores, 16, 16);
  EXPECT_EQ(report.pages_touched, 16);
  EXPECT_EQ(report.tokens_loaded, 256);
  EXPECT_EQ(report.tokens_wasted, 240);
  EXPECT_DOUBLE_EQ(report.mean_per_page, 1.0);
  EXPECT_EQ(report.histogram[0], 16);  // every page holds exactly 1
}

TEST(Fragmentation, HistogramSumsToPages) {
  std::vector<float> scores(512, 0.0f);
  for (Index i = 0; i < 64; ++i) {
    scores[static_cast<std::size_t>((i * 37) % 512)] = 5.0f + static_cast<float>(i);
  }
  const auto report = analyze_page_fragmentation(scores, 64, 16);
  Index pages = 0;
  Index tokens = 0;
  for (std::size_t bucket = 0; bucket < report.histogram.size(); ++bucket) {
    pages += report.histogram[bucket];
    tokens += report.histogram[bucket] * static_cast<Index>(bucket + 1);
  }
  EXPECT_EQ(pages, report.pages_touched);
  EXPECT_EQ(tokens, report.important_tokens);
}

TEST(Fragmentation, ParameterValidation) {
  const std::vector<float> scores(16, 0.0f);
  EXPECT_THROW(analyze_page_fragmentation(scores, 0, 16), std::invalid_argument);
  EXPECT_THROW(analyze_page_fragmentation(scores, 4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ckv
