// Observability stack: tracer ring semantics, metrics registry
// (log-linear histograms), ServeMetrics aggregate equivalence, and the
// end-to-end contracts the exporters rely on — virtual-clock trace fields
// deterministic across worker counts, and prefetch waste fully attributed
// to a cancellation reason.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/clusterkv_engine.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/trace.hpp"
#include "worker_guard.hpp"

namespace ckv {
namespace {

/// The tracer is a process-global singleton: every test that enables it
/// must leave it disabled, pass or fail.
struct TracerGuard {
  TracerGuard() = default;
  TracerGuard(const TracerGuard&) = delete;
  TracerGuard& operator=(const TracerGuard&) = delete;
  ~TracerGuard() { obs::tracer().disable(); }
};

TEST(Tracer, DisabledRecordsNothing) {
  auto& tr = obs::tracer();
  ASSERT_FALSE(tr.enabled());
  tr.instant("never");
  tr.begin("never");
  tr.end("never");
  tr.counter("never", 1);
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.capacity(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
  EXPECT_TRUE(tr.events().empty());
}

TEST(Tracer, RingOverflowDropsOldest) {
  TracerGuard guard;
  auto& tr = obs::tracer();
  tr.enable(/*capacity=*/4);
  tr.set_track(0);
  for (int i = 0; i < 6; ++i) {
    tr.set_virtual_now_ms(static_cast<double>(i));
    const std::string name = "e" + std::to_string(i);
    tr.instant(name.c_str());
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.capacity(), 4u);
  EXPECT_EQ(tr.dropped(), 2u);
  const auto events = tr.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: e0 and e1 were overwritten.
  EXPECT_EQ(tr.name_of(events.front().name), "e2");
  EXPECT_EQ(tr.name_of(events.back().name), "e5");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].virtual_us, events[i].virtual_us);
  }
}

TEST(Tracer, SpansCarryArgsAndAmbientContext) {
  TracerGuard guard;
  auto& tr = obs::tracer();
  tr.enable();
  tr.set_track(7);
  tr.set_virtual_now_ms(1.5);
  tr.begin("work", {{"items", 3}});
  tr.set_virtual_now_ms(2.5);
  tr.end("work");
  const auto events = tr.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, obs::TraceEvent::Phase::kBegin);
  EXPECT_EQ(events[0].track, 7);
  EXPECT_DOUBLE_EQ(events[0].virtual_us, 1500.0);
  EXPECT_EQ(tr.name_of(events[0].arg_names[0]), "items");
  EXPECT_EQ(events[0].args[0], 3);
  EXPECT_EQ(events[1].phase, obs::TraceEvent::Phase::kEnd);
  EXPECT_DOUBLE_EQ(events[1].virtual_us, 2500.0);
}

TEST(Tracer, ChromeExportIsBalancedJson) {
  TracerGuard guard;
  auto& tr = obs::tracer();
  tr.enable();
  tr.set_track_name(0, "scheduler");
  tr.set_virtual_now_ms(0.0);
  tr.begin("tick");
  tr.instant("mark", {{"n", 1}});
  tr.set_virtual_now_ms(1.0);
  tr.end("tick");
  std::ostringstream out;
  tr.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
  // Braces and brackets balance (cheap well-formedness check; the CI runs
  // tools/check_trace.py against real traces for the full contract).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Histogram, BucketBoundsContainRecordedValues) {
  for (const double v : {1e-6, 0.37, 0.5, 1.0, 3.7, 1234.5, 1e9}) {
    obs::Histogram hist;
    hist.record(v);
    ASSERT_EQ(hist.buckets().size(), 1u);
    const auto [key, count] = *hist.buckets().begin();
    EXPECT_EQ(count, 1);
    EXPECT_LE(obs::Histogram::bucket_lower(key), v);
    EXPECT_GT(obs::Histogram::bucket_upper(key), v);
  }
}

TEST(Histogram, NonPositiveValuesLandInUnderflowBucket) {
  obs::Histogram hist;
  hist.record(0.0);
  hist.record(-5.0);
  ASSERT_EQ(hist.buckets().size(), 1u);
  EXPECT_EQ(hist.buckets().begin()->first, obs::Histogram::kUnderflowKey);
  EXPECT_EQ(hist.count(), 2);
  EXPECT_DOUBLE_EQ(hist.min(), -5.0);
}

TEST(Histogram, PercentilesClampToObservedRange) {
  obs::Histogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.record(static_cast<double>(i));
  }
  EXPECT_EQ(hist.count(), 1000);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.percentile(100.0), 1000.0);
  // Log-linear buckets at 8 sub-buckets/octave: <= ~9% relative error.
  EXPECT_NEAR(hist.percentile(50.0), 500.0, 50.0);
  EXPECT_NEAR(hist.percentile(99.0), 990.0, 99.0);
  // Single sample: every percentile is that sample.
  obs::Histogram one;
  one.record(42.0);
  EXPECT_DOUBLE_EQ(one.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(100.0), 42.0);
}

TEST(MetricsRegistry, InstrumentsAccumulateAndExport) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").add(std::int64_t{3});
  registry.counter("a.count").add(std::int64_t{4});
  registry.gauge("a.depth").set(2.0);
  registry.gauge("a.depth").set(5.0);
  registry.histogram("a.lat").record(10.0);
  EXPECT_EQ(registry.counter("a.count").as_int(), 7);
  EXPECT_DOUBLE_EQ(registry.gauge("a.depth").last(), 5.0);
  EXPECT_DOUBLE_EQ(registry.gauge("a.depth").stat().max(), 5.0);
  std::ostringstream json;
  registry.write_json(json);
  EXPECT_NE(json.str().find("\"a.count\": 7"), std::string::npos);
  EXPECT_NE(json.str().find("\"a.lat\""), std::string::npos);
  std::ostringstream csv;
  registry.write_csv(csv);
  EXPECT_NE(csv.str().find("counter,a.count,value,7"), std::string::npos);
}

/// Regression for the registry rewiring of ServeMetrics: every public
/// aggregate must match a hand computation on a known record set — the
/// rewrite moved storage, not semantics.
TEST(ServeMetricsRegistry, AggregatesMatchHandComputation) {
  ServeMetrics metrics;
  SessionRecord a;
  a.id = 0;
  a.prompt_len = 100;
  a.decode_len = 10;
  a.arrival_ms = 0.0;
  a.admit_ms = 5.0;
  a.prefill_done_ms = 20.0;
  a.first_token_ms = 30.0;
  a.finish_ms = 120.0;
  a.mean_recall = 0.5;
  a.recall_steps = 10;
  a.preemptions = 1;
  a.prefetch_issued_tokens = 100;
  a.prefetch_hit_tokens = 40;
  a.demand_fetched_tokens = 20;
  a.prefetch_canceled_mispredict_tokens = 50;
  a.prefetch_canceled_enforce_tokens = 10;
  a.prefetch_canceled_release_tokens = 0;
  SessionRecord b = a;
  b.id = 1;
  b.arrival_ms = 10.0;
  b.admit_ms = 15.0;
  b.prefill_done_ms = 40.0;
  b.first_token_ms = 50.0;
  b.finish_ms = 200.0;
  b.mean_recall = 0.9;
  b.recall_steps = 30;
  b.preemptions = 0;
  metrics.record_session(a);
  metrics.record_session(b);
  metrics.record_tick(1.0, 2, 3);
  metrics.record_tick(1.0, 1, 5);
  metrics.record_repair(0.5);
  metrics.record_repair(0.0);  // zero-cost ticks are not repair ticks

  EXPECT_EQ(metrics.sessions(), 2);
  EXPECT_EQ(metrics.total_tokens(), 20);
  EXPECT_EQ(metrics.total_preemptions(), 1);
  EXPECT_DOUBLE_EQ(metrics.makespan_ms(), 200.0);
  EXPECT_DOUBLE_EQ(metrics.throughput_tps(), 20.0 / 0.2);
  // Step-weighted recall: (0.5*10 + 0.9*30) / 40.
  EXPECT_DOUBLE_EQ(metrics.mean_recall(), 0.8);
  EXPECT_EQ(metrics.recall_steps_total(), 40);
  EXPECT_DOUBLE_EQ(metrics.mean_queue_wait_ms(), 5.0);
  EXPECT_DOUBLE_EQ(metrics.ttft_percentile(0.0), 30.0);
  EXPECT_DOUBLE_EQ(metrics.ttft_percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(metrics.prefetch_hit_rate(), 80.0 / 120.0);
  EXPECT_DOUBLE_EQ(metrics.prefetch_waste_rate(), 120.0 / 200.0);
  EXPECT_DOUBLE_EQ(
      metrics.prefetch_waste_rate(obs::FetchCancelReason::kMisprediction),
      100.0 / 200.0);
  EXPECT_DOUBLE_EQ(
      metrics.prefetch_waste_rate(obs::FetchCancelReason::kEnforcement),
      20.0 / 200.0);
  EXPECT_DOUBLE_EQ(
      metrics.prefetch_waste_rate(obs::FetchCancelReason::kSessionRelease), 0.0);
  EXPECT_DOUBLE_EQ(metrics.repair_ms_total(), 0.5);
  EXPECT_EQ(metrics.repair_ticks(), 1);
  EXPECT_EQ(metrics.max_queue_depth(), 5);
  EXPECT_DOUBLE_EQ(metrics.concurrency().max(), 2.0);
  // The same numbers are visible through the registry export surface.
  EXPECT_EQ(metrics.registry().counter("serve.tokens_generated").as_int(), 20);
  EXPECT_EQ(
      metrics.registry().counter("serve.prefetch_canceled_mispredict_tokens")
          .as_int(),
      100);
}

SessionConfig obs_session_config() {
  SessionConfig config;
  config.shape.num_layers = 1;
  config.shape.num_heads = 2;
  config.shape.head_dim = 32;
  config.params.head_dim = 32;
  config.params.num_topics = 16;
  config.engine.budget = 48;
  config.engine.full_attention_layers = 0;
  return config;
}

ClusterKVConfig obs_ckv_config() {
  ClusterKVConfig config;
  config.sink_tokens = 8;
  config.tokens_per_cluster = 20;
  config.decode_interval = 8;
  config.decode_clusters = 2;
  config.cache_depth = 1;
  config.prefetch_clusters = 4;
  return config;
}

BatchSchedulerConfig obs_scheduler_config(const ClusterKVConfig& ckv,
                                          const SessionConfig& session) {
  BatchSchedulerConfig config;
  config.method = LatencyModel::Method::kClusterKV;
  config.tiered_residency = true;
  config.sink_tokens = ckv.sink_tokens;
  config.decode_interval = ckv.decode_interval;
  config.cache_depth = ckv.cache_depth;
  config.tokens_per_cluster = ckv.tokens_per_cluster;
  config.repair_refine_iterations = ckv.repair_refine_iterations;
  config.repair_decode_interval = ckv.repair_decode_interval;
  config.prefetch_clusters = ckv.prefetch_clusters;
  config.prefill_chunk_tokens = 64;
  // Tight budget so enforcement fires and contributes enforcement-reason
  // cancels to the attribution identity.
  config.fast_tier_budget_bytes = static_cast<std::int64_t>(
      2.0 * 300.0 * session_token_bytes(session) *
      static_cast<double>(session.shape.total_heads()));
  config.admission_overcommit = 1.5;
  return config;
}

std::vector<ServeRequest> obs_trace(Index n) {
  std::vector<ServeRequest> trace;
  for (Index i = 0; i < n; ++i) {
    ServeRequest request;
    request.id = i;
    request.arrival_ms = 40.0 * static_cast<double>(i);
    request.prompt_len = 260 + 30 * i;
    request.decode_len = 12;
    request.seed = derive_seed(99, "obs/" + std::to_string(i));
    trace.push_back(request);
  }
  return trace;
}

void run_obs_fleet(BatchScheduler& scheduler) { scheduler.run(); }

/// Once every session has retired, each record's issued speculative
/// fetches are fully explained: hits plus the three cancellation reasons.
TEST(WasteAttribution, ComponentsSumToIssuedMinusHits) {
  const auto session = obs_session_config();
  const auto ckv = obs_ckv_config();
  const auto scheduler_config = obs_scheduler_config(ckv, session);
  BatchScheduler scheduler(obs_trace(4), make_clusterkv_factory(ckv, 11),
                           session,
                           LatencyModel(HardwareModel::ada6000(),
                                        ModelConfig::llama31_8b()),
                           scheduler_config);
  run_obs_fleet(scheduler);
  const auto& m = scheduler.metrics();
  ASSERT_EQ(m.sessions(), 4);
  ASSERT_GT(m.prefetch_issued_total(), 0);
  std::int64_t canceled_total = 0;
  for (const auto& record : m.records()) {
    const std::int64_t attributed = record.prefetch_canceled_mispredict_tokens +
                                    record.prefetch_canceled_enforce_tokens +
                                    record.prefetch_canceled_release_tokens;
    EXPECT_EQ(attributed,
              record.prefetch_issued_tokens - record.prefetch_hit_tokens)
        << "session " << record.id;
    canceled_total += attributed;
  }
  EXPECT_EQ(canceled_total,
            m.prefetch_canceled_total(obs::FetchCancelReason::kMisprediction) +
                m.prefetch_canceled_total(obs::FetchCancelReason::kEnforcement) +
                m.prefetch_canceled_total(
                    obs::FetchCancelReason::kSessionRelease));
  const double total_waste = m.prefetch_waste_rate();
  const double attributed_waste =
      m.prefetch_waste_rate(obs::FetchCancelReason::kMisprediction) +
      m.prefetch_waste_rate(obs::FetchCancelReason::kEnforcement) +
      m.prefetch_waste_rate(obs::FetchCancelReason::kSessionRelease);
  EXPECT_NEAR(attributed_waste, total_waste, 1e-12);
}

/// Virtual-clock trace fields must not depend on the worker count: the
/// kernels are bit-deterministic across workers, and wall time never
/// feeds the virtual clock. Worker occupancy spans (tracks >=
/// kWorkerTrackBase) are the one deliberate exception — which pool slot
/// advances which session is a wall-schedule fact — so they are compared
/// as a track-agnostic multiset instead of positionally.
TEST(TraceDeterminism, VirtualClockFieldsIdenticalAcrossWorkerCounts) {
  WorkerGuard worker_guard;
  TracerGuard tracer_guard;
  const auto session = obs_session_config();
  const auto ckv = obs_ckv_config();
  const auto scheduler_config = obs_scheduler_config(ckv, session);
  const LatencyModel latency(HardwareModel::ada6000(),
                             ModelConfig::llama31_8b());

  struct Snapshot {
    std::string name;
    obs::TraceEvent::Phase phase;
    std::int64_t track;
    double virtual_us;
    std::int64_t args[2];
  };
  const auto run_traced = [&](int workers) {
    set_parallel_workers(workers);
    auto& tr = obs::tracer();
    tr.enable();
    BatchScheduler scheduler(obs_trace(3), make_clusterkv_factory(ckv, 11),
                             session, latency, scheduler_config);
    run_obs_fleet(scheduler);
    std::vector<Snapshot> out;
    for (const auto& event : tr.events()) {
      out.push_back({std::string(tr.name_of(event.name)), event.phase,
                     event.track, event.virtual_us,
                     {event.args[0], event.args[1]}});
    }
    tr.disable();
    return out;
  };

  const auto serial = run_traced(1);
  const auto parallel = run_traced(4);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), parallel.size());

  const auto split_worker_events = [](const std::vector<Snapshot>& events) {
    std::pair<std::vector<Snapshot>, std::vector<Snapshot>> out;
    for (const auto& e : events) {
      (e.track >= obs::kWorkerTrackBase ? out.second : out.first).push_back(e);
    }
    return out;
  };
  const auto [serial_sem, serial_worker] = split_worker_events(serial);
  const auto [parallel_sem, parallel_worker] = split_worker_events(parallel);

  ASSERT_EQ(serial_sem.size(), parallel_sem.size());
  for (std::size_t i = 0; i < serial_sem.size(); ++i) {
    EXPECT_EQ(serial_sem[i].name, parallel_sem[i].name) << "event " << i;
    EXPECT_EQ(serial_sem[i].phase, parallel_sem[i].phase) << "event " << i;
    EXPECT_EQ(serial_sem[i].track, parallel_sem[i].track) << "event " << i;
    EXPECT_DOUBLE_EQ(serial_sem[i].virtual_us, parallel_sem[i].virtual_us)
        << "event " << i;
    EXPECT_EQ(serial_sem[i].args[0], parallel_sem[i].args[0]) << "event " << i;
    EXPECT_EQ(serial_sem[i].args[1], parallel_sem[i].args[1]) << "event " << i;
  }

  // The same sessions advance in the same virtual windows regardless of
  // which slot ran them: sorting away the wall-schedule dimensions (track,
  // emission order) must leave identical worker-span multisets.
  ASSERT_EQ(serial_worker.size(), parallel_worker.size());
  const auto worker_key = [](const Snapshot& e) {
    return std::make_tuple(e.name, e.phase, e.virtual_us, e.args[0], e.args[1]);
  };
  auto serial_sorted = serial_worker;
  auto parallel_sorted = parallel_worker;
  const auto by_key = [&](const Snapshot& a, const Snapshot& b) {
    return worker_key(a) < worker_key(b);
  };
  std::sort(serial_sorted.begin(), serial_sorted.end(), by_key);
  std::sort(parallel_sorted.begin(), parallel_sorted.end(), by_key);
  for (std::size_t i = 0; i < serial_sorted.size(); ++i) {
    EXPECT_EQ(worker_key(serial_sorted[i]), worker_key(parallel_sorted[i]))
        << "worker event " << i;
  }
}

/// Per-worker utilization: the serial path bills slot 0; total indices
/// are conserved regardless of how chunks spread over slots.
TEST(WorkerUtilization, CountsChunksAndIndices) {
  WorkerGuard worker_guard;
  reset_parallel_worker_utilization();
  set_parallel_workers(1);
  parallel_for_range(0, 100, 10, [](Index, Index) {});
  auto util = parallel_worker_utilization();
  ASSERT_FALSE(util.empty());
  EXPECT_EQ(util[0].chunks, 10);
  EXPECT_EQ(util[0].indices, 100);

  reset_parallel_worker_utilization();
  set_parallel_workers(4);
  parallel_for_range(0, 1000, 10, [](Index, Index) {});
  util = parallel_worker_utilization();
  std::int64_t chunks = 0;
  std::int64_t indices = 0;
  for (const auto& slot : util) {
    chunks += slot.chunks;
    indices += slot.indices;
  }
  EXPECT_EQ(chunks, 100);
  EXPECT_EQ(indices, 1000);
}

}  // namespace
}  // namespace ckv
