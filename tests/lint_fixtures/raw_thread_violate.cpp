// Fixture: trips [raw-thread] — parallelism outside src/util/parallel
// escapes the pool's worker-count and determinism knobs (CKV_THREADS).
#include <thread>

void fixture_spawn() {
  std::thread worker([] {});
  worker.join();
}
