// Fixture: same offense as unordered_iter_violate.cpp, silenced by a
// standalone suppression (the consumer here is order-free: a sum).
#include <unordered_map>

int fixture_order_free_sum() {
  std::unordered_map<int, int> counts;
  counts[3] = 1;
  counts[7] = 2;
  int total = 0;
  // ckv-lint: allow(unordered-iter) -- summation is order-free
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total;
}
