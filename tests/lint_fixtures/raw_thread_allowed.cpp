// Fixture: same offense as raw_thread_violate.cpp, silenced by the
// inline suppression-comment form.
#include <thread>

void fixture_spawn() {
  std::thread worker([] {});  // ckv-lint: allow(raw-thread) -- fixture
  worker.join();
}
