// Fixture: trips [unseeded-rng] — ambient entropy outside the seeded
// wrapper in src/tensor/rng.hpp makes runs unreproducible.
#include <random>

int fixture_noise() {
  std::random_device entropy;
  return static_cast<int>(entropy());
}
