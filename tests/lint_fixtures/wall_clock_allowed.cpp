// Fixture: same offense as wall_clock_violate.cpp, silenced by the
// standalone suppression-comment form (covers the statement below it).
#include <chrono>

double fixture_wall_seconds() {
  // ckv-lint: allow(wall-clock) -- fixture exercising the suppression
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
