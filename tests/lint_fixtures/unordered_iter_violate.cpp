// Fixture: trips [unordered-iter] — the emitted key order is the hash
// table's bucket order, which varies across standard libraries.
#include <unordered_map>
#include <vector>

std::vector<int> fixture_bucket_order_keys() {
  std::unordered_map<int, int> counts;
  counts[3] = 1;
  counts[7] = 2;
  std::vector<int> keys;
  for (const auto& [key, value] : counts) {
    keys.push_back(key);
  }
  return keys;
}
