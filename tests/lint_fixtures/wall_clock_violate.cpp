// Fixture: trips [wall-clock] when attributed to a path outside
// src/obs/ and bench/ (deterministic code must stay on the virtual clock).
#include <chrono>

double fixture_wall_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
