// Fixture: same offense as bare_catch_violate.cpp, silenced by the
// inline suppression-comment form on the catch line itself.
void fixture_swallow() {
  try {
    fixture_might_throw();
  } catch (...) {  // ckv-lint: allow(bare-catch) -- fixture exercising the suppression
    // nothing: the error vanishes
  }
}
