// Fixture: trips [float-accumulate] — a left-fold over floats bakes the
// reduction order into the result; sums must go through the fixed-lane
// kernels in src/tensor/vec_ops.
#include <numeric>
#include <vector>

float fixture_sum(const std::vector<float>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0F);
}
