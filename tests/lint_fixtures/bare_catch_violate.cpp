// Fixture: trips [bare-catch] when attributed to a path outside tests/
// (a catch (...) whose body neither rethrows, stores the exception, nor
// reports it silently swallows the failure).
void fixture_swallow() {
  try {
    fixture_might_throw();
  } catch (...) {
    // nothing: the error vanishes
  }
}
