// Fixture: same offense as float_accumulate_violate.cpp, silenced by a
// standalone suppression covering the statement below.
#include <numeric>
#include <vector>

float fixture_sum(const std::vector<float>& values) {
  // ckv-lint: allow(float-accumulate) -- fixture exercising suppression
  return std::accumulate(values.begin(), values.end(), 0.0F);
}
