// Fixture: same offense as unseeded_rng_violate.cpp, silenced by the
// inline suppression-comment form (covers its own line only).
#include <random>

int fixture_noise() {
  std::random_device entropy;  // ckv-lint: allow(unseeded-rng) -- fixture
  return static_cast<int>(entropy());
}
