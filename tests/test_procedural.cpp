#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "model/procedural.hpp"
#include "tensor/rng.hpp"
#include "tensor/softmax.hpp"
#include "tensor/stats.hpp"
#include "tensor/topk.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

ProceduralParams default_params() {
  ProceduralParams p;
  p.head_dim = 32;
  p.num_topics = 16;
  return p;
}

TEST(HeadStream, DeterministicForSeed) {
  auto p = default_params();
  HeadStream a(p, Rng(42), 100);
  HeadStream b(p, Rng(42), 100);
  EXPECT_LT(frobenius_distance(a.keys(), b.keys()), 1e-9);
  EXPECT_EQ(a.query(3), b.query(3));
}

TEST(HeadStream, DifferentSeedsDiffer) {
  auto p = default_params();
  HeadStream a(p, Rng(1), 100);
  HeadStream b(p, Rng(2), 100);
  EXPECT_GT(frobenius_distance(a.keys(), b.keys()), 1.0);
}

TEST(HeadStream, SinkTokensHaveNegativeTopic) {
  auto p = default_params();
  p.sink_tokens = 4;
  HeadStream s(p, Rng(3), 50);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_LT(s.topic_of(i), 0);
  }
  for (Index i = 4; i < 50; ++i) {
    EXPECT_GE(s.topic_of(i), 0);
    EXPECT_LT(s.topic_of(i), p.num_topics);
  }
}

TEST(HeadStream, SinkKeysAreDirectionalOutliers) {
  // Sinks form a tight cluster far from every topic in direction space —
  // the reason §III-B excludes them from clustering.
  auto p = default_params();
  p.sink_tokens = 4;
  HeadStream s(p, Rng(4), 200);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = i + 1; j < 4; ++j) {
      EXPECT_GT(cosine_similarity(s.keys().row(i), s.keys().row(j)), 0.95);
    }
  }
  double mean_abs_cos = 0.0;
  for (Index t = 4; t < 200; ++t) {
    mean_abs_cos += std::abs(cosine_similarity(s.keys().row(0), s.keys().row(t)));
  }
  mean_abs_cos /= 196.0;
  EXPECT_LT(mean_abs_cos, 0.5);
}

TEST(HeadStream, TopicsFormSegments) {
  auto p = default_params();
  p.topic_change_prob = 0.05;
  HeadStream s(p, Rng(5), 2000);
  Index changes = 0;
  for (Index i = p.sink_tokens + 1; i < 2000; ++i) {
    if (s.topic_of(i) != s.topic_of(i - 1)) {
      ++changes;
    }
  }
  // Expected changes ~ 2000 * 0.05 = 100; far below 2000 (i.i.d. would be
  // ~1875 with 16 topics).
  EXPECT_LT(changes, 300);
  EXPECT_GT(changes, 20);
}

TEST(HeadStream, SameTopicKeysAreCloserInCosine) {
  // In the informative subspace (outlier channels removed, as their
  // shared large-magnitude offsets compress all angles — the KIVI effect
  // §III-B cites), same-topic keys are clearly closer in cosine.
  auto p = default_params();
  p.outlier_channels = 0;  // isolate the semantic structure
  HeadStream s(p, Rng(6), 1000);
  double same = 0.0;
  Index same_n = 0;
  double diff = 0.0;
  Index diff_n = 0;
  for (Index i = p.sink_tokens; i < 999; i += 3) {
    for (Index j = i + 1; j < std::min<Index>(i + 40, 1000); j += 7) {
      const double cs = cosine_similarity(s.keys().row(i), s.keys().row(j));
      if (s.topic_of(i) == s.topic_of(j)) {
        same += cs;
        ++same_n;
      } else {
        diff += cs;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(diff_n, 0);
  EXPECT_GT(same / same_n, diff / diff_n + 0.1);
}

TEST(HeadStream, OutlierChannelsCompressCosineAngles) {
  // With KIVI-scale outliers present, all pairwise cosines are pushed
  // toward 1 (shared offsets dominate) — the reason raw L2 / IP distances
  // "change drastically" while relative cosine structure survives.
  auto with = default_params();
  auto without = default_params();
  without.outlier_channels = 0;
  HeadStream a(with, Rng(61), 400);
  HeadStream b(without, Rng(61), 400);
  RunningStat cos_with;
  RunningStat cos_without;
  for (Index i = with.sink_tokens; i < 390; i += 5) {
    cos_with.add(cosine_similarity(a.keys().row(i), a.keys().row(i + 3)));
    cos_without.add(cosine_similarity(b.keys().row(i), b.keys().row(i + 3)));
  }
  EXPECT_GT(cos_with.mean(), cos_without.mean());
  EXPECT_GT(cos_with.mean(), 0.7);
}

TEST(HeadStream, OutlierChannelsCarryLargeMagnitude) {
  auto p = default_params();
  p.outlier_channels = 4;
  p.outlier_offset = 2.0;
  HeadStream s(p, Rng(7), 500);
  // Mean |value| per channel: outlier channels must dominate.
  std::vector<double> channel_mag(32, 0.0);
  for (Index i = p.sink_tokens; i < 500; ++i) {
    const auto k = s.keys().row(i);
    for (Index c = 0; c < 32; ++c) {
      channel_mag[static_cast<std::size_t>(c)] +=
          std::abs(static_cast<double>(k[static_cast<std::size_t>(c)]));
    }
  }
  std::vector<float> mags(channel_mag.begin(), channel_mag.end());
  const auto order = argsort_descending(mags);
  // The top channel's mean magnitude is far above the median channel's.
  const double top = channel_mag[static_cast<std::size_t>(order[0])];
  const double median = channel_mag[static_cast<std::size_t>(order[16])];
  EXPECT_GT(top, 2.0 * median);
}

TEST(HeadStream, QueriesConcentrateAttentionOnFocusTopics) {
  auto p = default_params();
  HeadStream s(p, Rng(8), 2000);
  const auto q = s.query(0);
  auto scores = s.attention_scores(q);
  softmax_in_place(scores);
  // Attention should be concentrated: top-10% of tokens carry most mass.
  const auto order = argsort_descending(scores);
  double top_mass = 0.0;
  for (Index i = 0; i < 200; ++i) {
    top_mass += scores[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
  }
  EXPECT_GT(top_mass, 0.5);
}

TEST(HeadStream, PinFocusRedirectsImportance) {
  auto p = default_params();
  HeadStream s(p, Rng(9), 2000);
  // Pin steps [0, 4) to one semantic topic (its occurrences are scattered
  // across the whole context).
  const Index pinned_topic = s.topic_of(1000);
  std::vector<Index> needle;
  for (Index i = p.sink_tokens; i < 2000; ++i) {
    if (s.topic_of(i) == pinned_topic) {
      needle.push_back(i);
    }
  }
  ASSERT_GT(needle.size(), 10u);
  s.pin_focus(0, 4, needle);
  const auto q = s.query(0);
  auto probs = s.attention_scores(q);
  softmax_in_place(probs);
  // Tokens sharing the needle topic receive outsized attention mass.
  const Index needle_topic = s.topic_of(1000);
  double needle_topic_mass = 0.0;
  Index needle_topic_count = 0;
  for (Index i = p.sink_tokens; i < 2000; ++i) {
    if (s.topic_of(i) == needle_topic) {
      needle_topic_mass += probs[static_cast<std::size_t>(i)];
      ++needle_topic_count;
    }
  }
  const double uniform_share =
      static_cast<double>(needle_topic_count) / 2000.0;
  EXPECT_GT(needle_topic_mass, 5.0 * uniform_share);
}

TEST(HeadStream, ImportanceDriftsAcrossSteps) {
  // Fig. 3a property: token importance ranks change over decode steps.
  auto p = default_params();
  p.focus_drift_prob = 0.5;  // fast drift for the test
  HeadStream s(p, Rng(10), 1000);
  const auto q0 = s.query(0);
  const auto q40 = s.query(40);
  const auto top0 = top_k_indices(s.attention_scores(q0), 50);
  const auto top40 = top_k_indices(s.attention_scores(q40), 50);
  const std::set<Index> set0(top0.begin(), top0.end());
  Index overlap = 0;
  for (const Index t : top40) {
    if (set0.contains(t)) {
      ++overlap;
    }
  }
  EXPECT_LT(overlap, 45);  // the top set moved
}

TEST(HeadStream, QueryMemoizationStable) {
  auto p = default_params();
  HeadStream s(p, Rng(11), 100);
  const auto first = s.query(5);
  const auto again = s.query(5);
  EXPECT_EQ(first, again);
  // Sparse access materializes intermediate steps.
  const auto far = s.query(50);
  EXPECT_EQ(far.size(), 32u);
}

TEST(HeadStream, AppendGeneratedContinuesProcess) {
  auto p = default_params();
  HeadStream s(p, Rng(12), 100);
  for (int i = 0; i < 20; ++i) {
    s.append_generated();
  }
  EXPECT_EQ(s.size(), 120);
  EXPECT_GE(s.topic_of(119), 0);
}

TEST(ProceduralModel, ShapeAndIndependentHeads) {
  SimShape shape;
  shape.num_layers = 2;
  shape.num_heads = 3;
  shape.head_dim = 32;
  ProceduralContextModel model(shape, default_params(), 77, 200);
  EXPECT_EQ(model.context_len(), 200);
  EXPECT_GT(frobenius_distance(model.head(0, 0).keys(), model.head(0, 1).keys()),
            1.0);
  EXPECT_GT(frobenius_distance(model.head(0, 0).keys(), model.head(1, 0).keys()),
            1.0);
}

TEST(ProceduralModel, AppendAdvancesAllHeads) {
  SimShape shape;
  shape.num_layers = 2;
  shape.num_heads = 2;
  shape.head_dim = 32;
  ProceduralContextModel model(shape, default_params(), 78, 50);
  model.append_generated();
  for (Index l = 0; l < 2; ++l) {
    for (Index h = 0; h < 2; ++h) {
      EXPECT_EQ(model.head(l, h).size(), 51);
    }
  }
}

TEST(ProceduralModel, BoundsChecked) {
  SimShape shape;
  shape.num_layers = 1;
  shape.num_heads = 1;
  shape.head_dim = 16;
  ProceduralParams p = default_params();
  p.head_dim = 16;
  ProceduralContextModel model(shape, p, 79, 10);
  EXPECT_THROW((void)model.head(1, 0), std::invalid_argument);
  EXPECT_THROW((void)model.head(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ckv
