#include <gtest/gtest.h>

#include "util/args.hpp"

namespace ckv {
namespace {

ArgParser make_parser() {
  ArgParser args("test tool");
  args.add_option("budget", "512", "kv budget");
  args.add_option("rate", "0.5", "a rate");
  args.add_option("name", "clusterkv", "method name");
  args.add_switch("csv", "csv output");
  return args;
}

TEST(ArgParser, DefaultsApply) {
  auto args = make_parser();
  const char* argv[] = {"tool"};
  args.parse(1, argv);
  EXPECT_EQ(args.get_index("budget"), 512);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 0.5);
  EXPECT_EQ(args.get_string("name"), "clusterkv");
  EXPECT_FALSE(args.get_switch("csv"));
}

TEST(ArgParser, ParsesValuesAndSwitches) {
  auto args = make_parser();
  const char* argv[] = {"tool", "--budget", "2048", "--csv", "--name", "quest"};
  args.parse(6, argv);
  EXPECT_EQ(args.get_index("budget"), 2048);
  EXPECT_TRUE(args.get_switch("csv"));
  EXPECT_EQ(args.get_string("name"), "quest");
}

TEST(ArgParser, CollectsPositionals) {
  auto args = make_parser();
  const char* argv[] = {"tool", "sub", "--budget", "64", "extra"};
  args.parse(5, argv);
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "sub");
  EXPECT_EQ(args.positionals()[1], "extra");
}

TEST(ArgParser, UnknownFlagRejected) {
  auto args = make_parser();
  const char* argv[] = {"tool", "--bogus", "1"};
  EXPECT_THROW(args.parse(3, argv), std::invalid_argument);
}

TEST(ArgParser, MissingValueRejected) {
  auto args = make_parser();
  const char* argv[] = {"tool", "--budget"};
  EXPECT_THROW(args.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, TypeErrorsRejected) {
  auto args = make_parser();
  const char* argv[] = {"tool", "--budget", "abc", "--rate", "x.y"};
  args.parse(5, argv);
  EXPECT_THROW((void)args.get_index("budget"), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("rate"), std::invalid_argument);
}

TEST(ArgParser, DuplicateRegistrationRejected) {
  auto args = make_parser();
  EXPECT_THROW(args.add_option("budget", "1", "dup"), std::invalid_argument);
  EXPECT_THROW(args.add_switch("csv", "dup"), std::invalid_argument);
}

TEST(ArgParser, UnregisteredAccessRejected) {
  auto args = make_parser();
  EXPECT_THROW((void)args.get_string("nope"), std::invalid_argument);
  EXPECT_THROW((void)args.get_switch("nope"), std::invalid_argument);
}

TEST(ArgParser, HelpMentionsEveryOption) {
  const auto args = make_parser();
  const auto text = args.help();
  EXPECT_NE(text.find("--budget"), std::string::npos);
  EXPECT_NE(text.find("--csv"), std::string::npos);
  EXPECT_NE(text.find("kv budget"), std::string::npos);
}

}  // namespace
}  // namespace ckv
