#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"
#include "tensor/svd.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

class SvdShapes : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(SvdShapes, ReconstructionIsExact) {
  const auto [rows, cols] = GetParam();
  Rng rng(derive_seed(100, std::to_string(rows) + "x" + std::to_string(cols)));
  Matrix a(rows, cols);
  rng.fill_normal(a.flat(), 0.0, 1.0);
  const auto svd = jacobi_svd(a);
  const auto back = svd_reconstruct(svd);
  EXPECT_LT(frobenius_distance(a, back), 1e-3 * std::sqrt(static_cast<double>(a.size())));
}

TEST_P(SvdShapes, SingularValuesDescendingNonNegative) {
  const auto [rows, cols] = GetParam();
  Rng rng(derive_seed(200, std::to_string(rows)));
  Matrix a(rows, cols);
  rng.fill_normal(a.flat(), 0.0, 1.0);
  const auto svd = jacobi_svd(a);
  for (std::size_t i = 0; i + 1 < svd.singular_values.size(); ++i) {
    EXPECT_GE(svd.singular_values[i], svd.singular_values[i + 1]);
  }
  for (const float s : svd.singular_values) {
    EXPECT_GE(s, 0.0f);
  }
}

TEST_P(SvdShapes, SingularVectorsOrthonormal) {
  const auto [rows, cols] = GetParam();
  Rng rng(derive_seed(300, std::to_string(cols)));
  Matrix a(rows, cols);
  rng.fill_normal(a.flat(), 0.0, 1.0);
  const auto svd = jacobi_svd(a);
  const Index r = static_cast<Index>(svd.singular_values.size());
  // V columns orthonormal: V^T V = I.
  for (Index i = 0; i < r; ++i) {
    for (Index j = i; j < r; ++j) {
      double acc = 0.0;
      for (Index k = 0; k < svd.v.rows(); ++k) {
        acc += static_cast<double>(svd.v.at(k, i)) * static_cast<double>(svd.v.at(k, j));
      }
      EXPECT_NEAR(acc, i == j ? 1.0 : 0.0, 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::pair<Index, Index>{4, 4},
                                           std::pair<Index, Index>{16, 8},
                                           std::pair<Index, Index>{12, 12},
                                           std::pair<Index, Index>{64, 16},
                                           std::pair<Index, Index>{32, 32}));

TEST(Svd, KnownDiagonal) {
  Matrix a(3, 3);
  a.at(0, 0) = 3.0f;
  a.at(1, 1) = 1.0f;
  a.at(2, 2) = 2.0f;
  const auto svd = jacobi_svd(a);
  ASSERT_EQ(svd.singular_values.size(), 3u);
  EXPECT_NEAR(svd.singular_values[0], 3.0f, 1e-5);
  EXPECT_NEAR(svd.singular_values[1], 2.0f, 1e-5);
  EXPECT_NEAR(svd.singular_values[2], 1.0f, 1e-5);
}

TEST(Svd, LowRankTruncationCapturesEnergy) {
  // Build an exactly rank-2 matrix; rank-2 truncation must reconstruct it.
  Rng rng(42);
  Matrix u(10, 2);
  Matrix v(2, 6);
  rng.fill_normal(u.flat(), 0.0, 1.0);
  rng.fill_normal(v.flat(), 0.0, 1.0);
  const Matrix a = matmul(u, v);
  const auto svd = jacobi_svd(a);
  const auto rank2 = svd_reconstruct(svd, 2);
  EXPECT_LT(frobenius_distance(a, rank2), 1e-3);
  EXPECT_LT(svd.singular_values[2], 1e-3);
}

TEST(Svd, TruncationRankValidated) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0f;
  a.at(1, 1) = 1.0f;
  const auto svd = jacobi_svd(a);
  EXPECT_THROW(svd_reconstruct(svd, 3), std::invalid_argument);
}

TEST(Svd, EmptyMatrixRejected) {
  Matrix empty;
  EXPECT_THROW(jacobi_svd(empty), std::invalid_argument);
}

}  // namespace
}  // namespace ckv
