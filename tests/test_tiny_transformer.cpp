#include <gtest/gtest.h>

#include <cmath>

#include "baselines/full_kv.hpp"
#include "baselines/quest.hpp"
#include "core/clusterkv_engine.hpp"
#include "model/tiny_transformer.hpp"
#include "tensor/rng.hpp"

namespace ckv {
namespace {

TinyTransformerConfig tiny_config() {
  TinyTransformerConfig c;
  c.vocab_size = 64;
  c.num_layers = 2;
  c.num_heads = 4;
  c.head_dim = 16;
  c.ffn_dim = 128;
  return c;
}

std::vector<Index> make_prompt(Index len, Index vocab, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Index> prompt(static_cast<std::size_t>(len));
  for (auto& t : prompt) {
    t = rng.uniform_int(0, vocab - 1);
  }
  return prompt;
}

ClusterKVConfig tiny_ckv() {
  ClusterKVConfig c;
  c.sink_tokens = 4;
  c.tokens_per_cluster = 16;
  c.decode_interval = 8;
  c.decode_clusters = 2;
  return c;
}

double max_abs_diff(std::span<const float> a, std::span<const float> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

TEST(TinyTransformer, LogitsAreFinite) {
  TinyTransformer model(tiny_config(), Rng(1));
  SelectorBank bank(2, 4, 16, make_full_kv_factory());
  const auto prompt = make_prompt(32, 64, 2);
  const auto logits = model.prefill(prompt, bank);
  ASSERT_EQ(logits.size(), 64u);
  for (const float x : logits) {
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(TinyTransformer, GreedyGenerationDeterministic) {
  const auto prompt = make_prompt(24, 64, 3);
  TinyTransformer m1(tiny_config(), Rng(7));
  SelectorBank b1(2, 4, 16, make_full_kv_factory());
  const auto g1 = m1.generate_greedy(prompt, b1, 1 << 20, 12);

  TinyTransformer m2(tiny_config(), Rng(7));
  SelectorBank b2(2, 4, 16, make_full_kv_factory());
  const auto g2 = m2.generate_greedy(prompt, b2, 1 << 20, 12);
  EXPECT_EQ(g1, g2);
}

TEST(TinyTransformer, ClusterKVWithFullBudgetMatchesExact) {
  // With budget >= context, ClusterKV selects every token, so the decode
  // logits must match the Full-KV run to float tolerance.
  const auto prompt = make_prompt(48, 64, 4);

  TinyTransformer exact_model(tiny_config(), Rng(9));
  SelectorBank exact_bank(2, 4, 16, make_full_kv_factory());
  auto exact_logits = exact_model.prefill(prompt, exact_bank);

  TinyTransformer ckv_model(tiny_config(), Rng(9));
  SelectorBank ckv_bank(2, 4, 16, make_clusterkv_factory(tiny_ckv(), 5));
  auto ckv_logits = ckv_model.prefill(prompt, ckv_bank);
  EXPECT_LT(max_abs_diff(exact_logits, ckv_logits), 1e-5);

  const Index huge_budget = 1 << 20;
  for (Index step = 0; step < 10; ++step) {
    const Index token = step % 64;
    exact_logits = exact_model.decode_step(token, exact_bank, huge_budget);
    ckv_logits = ckv_model.decode_step(token, ckv_bank, huge_budget);
    EXPECT_LT(max_abs_diff(exact_logits, ckv_logits), 1e-4) << "step " << step;
  }
}

TEST(TinyTransformer, CompressedBudgetStaysClose) {
  const auto prompt = make_prompt(96, 64, 6);

  TinyTransformer exact_model(tiny_config(), Rng(11));
  SelectorBank exact_bank(2, 4, 16, make_full_kv_factory());
  auto exact_logits = exact_model.prefill(prompt, exact_bank);

  TinyTransformer ckv_model(tiny_config(), Rng(11));
  SelectorBank ckv_bank(2, 4, 16, make_clusterkv_factory(tiny_ckv(), 8));
  auto ckv_logits = ckv_model.prefill(prompt, ckv_bank);

  double worst = 0.0;
  for (Index step = 0; step < 8; ++step) {
    const Index token = (step * 7) % 64;
    exact_logits = exact_model.decode_step(token, exact_bank, 1 << 20);
    ckv_logits = ckv_model.decode_step(token, ckv_bank, 48);  // half the context
    worst = std::max(worst, max_abs_diff(exact_logits, ckv_logits));
  }
  // Approximation drift exists but stays bounded (logit scale is O(1);
  // dropping half the attended mass can move logits by a few units).
  EXPECT_GT(worst, 0.0);
  EXPECT_LT(worst, 5.0);
}

TEST(TinyTransformer, PrefillTwiceRejected) {
  TinyTransformer model(tiny_config(), Rng(12));
  SelectorBank bank(2, 4, 16, make_full_kv_factory());
  const auto prompt = make_prompt(8, 64, 7);
  model.prefill(prompt, bank);
  EXPECT_THROW(model.prefill(prompt, bank), std::invalid_argument);
}

TEST(TinyTransformer, DecodeBeforePrefillRejected) {
  TinyTransformer model(tiny_config(), Rng(13));
  SelectorBank bank(2, 4, 16, make_full_kv_factory());
  EXPECT_THROW(model.decode_step(0, bank, 8), std::invalid_argument);
}

TEST(TinyTransformer, QuestRunsEndToEnd) {
  TinyTransformer model(tiny_config(), Rng(14));
  QuestConfig quest;
  quest.page_size = 8;
  SelectorBank bank(2, 4, 16, make_quest_factory(quest));
  const auto prompt = make_prompt(64, 64, 8);
  const auto generated = model.generate_greedy(prompt, bank, 32, 8);
  EXPECT_EQ(generated.size(), 8u);
  for (const Index t : generated) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 64);
  }
}

TEST(SelectorBankTest, ShapeAndValidation) {
  SelectorBank bank(2, 3, 8, make_full_kv_factory());
  EXPECT_EQ(bank.num_layers(), 2);
  EXPECT_EQ(bank.num_heads(), 3);
  EXPECT_EQ(bank.method_name(), "Full KV");
  EXPECT_THROW((void)bank.at(2, 0), std::invalid_argument);
  EXPECT_THROW((void)bank.at(0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace ckv
