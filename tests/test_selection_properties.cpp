// Property-based tests (parameterized fuzz) of the selection, indexing and
// caching invariants the ClusterKV pipeline relies on, plus the serving
// residency sweep: randomized admit/prefill/decode/preempt/repair/prefetch
// schedules asserting the fast-tier budget and sink-residency invariants
// at every tick. Runs under `ctest -L properties` with this fixed seed set
// in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "baselines/quest.hpp"
#include "core/cluster_cache.hpp"
#include "core/centroid_store.hpp"
#include "core/clusterkv_engine.hpp"
#include "core/selector_index.hpp"
#include "model/procedural.hpp"
#include "serve/batch_scheduler.hpp"
#include "tensor/rng.hpp"
#include "worker_guard.hpp"

namespace ckv {
namespace {

class SelectClustersFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectClustersFuzz, GreedyPrefixMinimalAndOrdered) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const Index n = rng.uniform_int(1, 60);
    std::vector<float> scores(static_cast<std::size_t>(n));
    std::vector<Index> sizes(static_cast<std::size_t>(n));
    Index total = 0;
    for (Index c = 0; c < n; ++c) {
      scores[static_cast<std::size_t>(c)] = static_cast<float>(rng.normal());
      sizes[static_cast<std::size_t>(c)] = rng.uniform_int(1, 50);
      total += sizes[static_cast<std::size_t>(c)];
    }
    const Index budget = rng.uniform_int(0, total + 20);
    const auto sel = select_clusters(scores, sizes, budget);

    // (1) Selected clusters are in non-ascending score order.
    for (std::size_t i = 0; i + 1 < sel.clusters.size(); ++i) {
      EXPECT_GE(scores[static_cast<std::size_t>(sel.clusters[i])],
                scores[static_cast<std::size_t>(sel.clusters[i + 1])]);
    }
    // (2) No duplicates.
    std::set<Index> unique(sel.clusters.begin(), sel.clusters.end());
    EXPECT_EQ(unique.size(), sel.clusters.size());
    // (3) Coverage: the selection reaches the budget or exhausts clusters.
    Index covered = 0;
    for (const Index c : sel.clusters) {
      covered += sizes[static_cast<std::size_t>(c)];
    }
    EXPECT_EQ(covered, sel.total_tokens);
    if (budget > 0) {
      EXPECT_TRUE(covered >= std::min<Index>(budget, total));
    }
    // (4) Minimality: dropping the last selected cluster falls below budget.
    if (budget > 0 && !sel.clusters.empty()) {
      EXPECT_LT(covered - sizes[static_cast<std::size_t>(sel.clusters.back())],
                budget);
    }
    // (5) Trim flag is exact.
    EXPECT_EQ(sel.trimmed, covered > budget && budget > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectClustersFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class ClusterCacheFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterCacheFuzz, MatchesNaiveReferenceModel) {
  Rng rng(GetParam());
  const Index depth = rng.uniform_int(0, 3);
  ClusterCache cache(depth);

  // Reference: a deque of token sets.
  std::vector<std::unordered_set<Index>> reference_window;

  for (int step = 0; step < 60; ++step) {
    const Index clusters = rng.uniform_int(1, 5);
    std::vector<std::pair<Index, std::vector<Index>>> selected;
    std::unordered_set<Index> requested;
    for (Index c = 0; c < clusters; ++c) {
      const Index cluster_id = rng.uniform_int(0, 9);
      std::vector<Index> tokens;
      const Index count = rng.uniform_int(1, 6);
      for (Index t = 0; t < count; ++t) {
        const Index token = cluster_id * 100 + rng.uniform_int(0, 19);
        if (requested.insert(token).second) {
          tokens.push_back(token);
        }
      }
      if (!tokens.empty()) {
        std::sort(tokens.begin(), tokens.end());
        selected.emplace_back(cluster_id, tokens);
      }
    }

    std::unordered_set<Index> resident;
    for (const auto& entry : reference_window) {
      resident.insert(entry.begin(), entry.end());
    }
    Index expected_hits = 0;
    Index expected_misses = 0;
    for (const auto& [cluster, tokens] : selected) {
      for (const Index t : tokens) {
        if (resident.contains(t)) {
          ++expected_hits;
        } else {
          ++expected_misses;
        }
      }
    }

    const auto result = cache.step(selected);
    EXPECT_EQ(result.hits, expected_hits) << "step " << step;
    EXPECT_EQ(result.misses, expected_misses) << "step " << step;
    EXPECT_EQ(static_cast<Index>(result.missing_tokens.size()), expected_misses);

    reference_window.insert(reference_window.begin(), requested);
    while (static_cast<Index>(reference_window.size()) > depth) {
      reference_window.pop_back();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterCacheFuzz,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

class QuestBoundFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuestBoundFuzz, UpperBoundHoldsOnRandomData) {
  // The page-score upper bound must hold for arbitrary key/query data,
  // not just procedural streams.
  Rng rng(GetParam());
  const Index dim = 16;
  QuestSelector quest(dim, QuestConfig{.page_size = 8});
  Matrix keys(64, dim);
  Matrix values(64, dim);
  rng.fill_normal(keys.flat(), 0.0, 2.0);
  rng.fill_normal(values.flat(), 0.0, 1.0);
  quest.observe_prefill(keys, values);

  KVStore reference(dim);
  reference.append_block(keys, values);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> query(static_cast<std::size_t>(dim));
    rng.fill_normal(query, 0.0, 3.0);
    const auto scores = reference.attention_scores(query);
    for (Index page = 0; page < quest.page_count(); ++page) {
      const double bound = quest.page_score(query, page);
      for (Index t = page * 8; t < (page + 1) * 8; ++t) {
        EXPECT_GE(bound + 1e-4, scores[static_cast<std::size_t>(t)]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuestBoundFuzz, ::testing::Values(21, 22, 23, 24));

class CentroidStoreFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CentroidStoreFuzz, PartitionInvariantUnderIncrementalAdds) {
  // Incremental cluster additions must always leave a perfect partition of
  // all registered token positions.
  Rng rng(GetParam());
  CentroidStore store(8);
  Index offset = 0;
  for (int batch = 0; batch < 8; ++batch) {
    const Index clusters = rng.uniform_int(1, 5);
    const Index tokens = rng.uniform_int(1, 40);
    Matrix centroids(clusters, 8);
    rng.fill_normal(centroids.flat(), 0.0, 1.0);
    std::vector<Index> labels(static_cast<std::size_t>(tokens));
    for (auto& l : labels) {
      l = rng.uniform_int(0, clusters - 1);
    }
    store.add_clusters(centroids, labels, offset);
    offset += tokens;
  }
  std::set<Index> seen;
  for (Index c = 0; c < store.cluster_count(); ++c) {
    Index previous = -1;
    for (const Index t : store.tokens_of(c)) {
      EXPECT_TRUE(seen.insert(t).second) << "token in two clusters";
      EXPECT_GT(t, previous) << "tokens not ascending within cluster";
      previous = t;
    }
  }
  EXPECT_EQ(static_cast<Index>(seen.size()), offset);
  EXPECT_EQ(store.token_count(), offset);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CentroidStoreFuzz,
                         ::testing::Values(31, 32, 33, 34, 35));

class GatherTrimFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GatherTrimFuzz, NeverExceedsBudgetAndPreservesClusterOrder) {
  Rng rng(GetParam());
  CentroidStore store(4);
  const Index clusters = 6;
  Matrix centroids(clusters, 4);
  rng.fill_normal(centroids.flat(), 0.0, 1.0);
  std::vector<Index> labels;
  for (Index t = 0; t < 120; ++t) {
    labels.push_back(rng.uniform_int(0, clusters - 1));
  }
  store.add_clusters(centroids, labels, 0);

  for (int trial = 0; trial < 30; ++trial) {
    std::vector<float> scores(clusters);
    for (auto& s : scores) {
      s = static_cast<float>(rng.normal());
    }
    const Index budget = rng.uniform_int(0, 140);
    const auto sel = select_clusters(scores, store.cluster_sizes(), budget);
    const auto indexed = gather_selected_tokens(store, sel, budget);
    EXPECT_LE(static_cast<Index>(indexed.token_positions.size()), budget);
    // Budget is met exactly whenever enough tokens were selected.
    if (sel.total_tokens >= budget) {
      EXPECT_EQ(static_cast<Index>(indexed.token_positions.size()), budget);
    }
    // per_cluster breakdown flattens to token_positions.
    std::vector<Index> flattened;
    for (const auto& [cluster, tokens] : indexed.per_cluster) {
      flattened.insert(flattened.end(), tokens.begin(), tokens.end());
    }
    EXPECT_EQ(flattened, indexed.token_positions);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatherTrimFuzz, ::testing::Values(41, 42, 43, 44));

// Serving residency sweep: a randomized schedule — random session mix,
// chunk sizes, budgets, overcommit, repair cadence, prefetch depth, plus
// externally injected preemptions and prefetch cancels (including
// mid-prefill and mid-fetch) — must keep the scheduler's contract at
// every tick boundary: global footprint (resident + in-flight) within the
// budget, the O(1) ledger in exact agreement with a re-sum over sessions
// and stores, and attention sinks never offloaded. test_serve.cpp
// spot-checks these on hand-picked schedules; this sweep searches for
// counterexamples.
//
// The whole schedule runs twice, serial (1 worker) and fanned out onto
// 4 pool workers, with the injected events re-derived from the same seed
// — the invariants must hold tick-for-tick in both runs, and the retired
// SessionRecords must come out bit-identical (the parallel tick's
// byte-identity contract under adversarial mid-run preemption, repair
// and prefetch-cancellation injection).
class ServingResidencyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServingResidencyFuzz, BudgetAndSinkInvariantsHoldUnderRandomSchedules) {
  WorkerGuard worker_guard;
  std::vector<SessionRecord> serial_records;
  for (const int workers : {1, 4}) {
    set_parallel_workers(workers);
    Rng rng(GetParam());

    SessionConfig session;
    session.shape.num_layers = 1;
    session.shape.num_heads = 2;
    session.shape.head_dim = 32;
    session.params.head_dim = 32;
    session.params.num_topics = 16;
    session.engine.budget = rng.uniform_int(24, 64);
    session.engine.full_attention_layers = 0;

    ClusterKVConfig ckv;
    ckv.sink_tokens = rng.uniform_int(0, 8);
    ckv.tokens_per_cluster = rng.uniform_int(8, 24);
    ckv.decode_interval = rng.uniform_int(4, 16);
    ckv.decode_clusters = 2;
    ckv.cache_depth = rng.uniform_int(0, 2);
    ckv.repair_merge_threshold = rng.uniform(-1.0, 0.9);
    ckv.repair_refine_iterations = rng.uniform_int(0, 4);
    ckv.repair_decode_interval = rng.uniform_int(0, 5);
    ckv.prefetch_clusters = rng.uniform_int(0, 4);
    ckv.prefetch_prior_decay = rng.uniform(0.0, 0.95);

    BatchSchedulerConfig config;
    config.method = LatencyModel::Method::kClusterKV;
    config.tiered_residency = true;
    config.sink_tokens = ckv.sink_tokens;
    config.decode_interval = ckv.decode_interval;
    config.cache_depth = ckv.cache_depth;
    config.tokens_per_cluster = ckv.tokens_per_cluster;
    config.repair_refine_iterations = ckv.repair_refine_iterations;
    config.repair_decode_interval = ckv.repair_decode_interval;
    config.prefetch_clusters = ckv.prefetch_clusters;
    config.prefill_chunk_tokens = rng.bernoulli(0.2) ? 0 : rng.uniform_int(16, 96);
    config.admission_overcommit = rng.uniform(1.0, 2.0);

    // Most schedules also run under an injected fault plan: transient
    // demand-fetch failures (retried, sometimes exhausted into degraded
    // resident-only steps), mid-decode aborts and occasional queue
    // shedding, interleaved with the external preemption/cancel injection
    // below. The invariants must hold through all of it. Wire faults and
    // brownouts stay off — this fuzz does not model the transfer engine.
    if (rng.bernoulli(0.7)) {
      FaultPlan plan;
      plan.enabled = true;
      plan.seed = derive_seed(GetParam(), "fuzz/faults");
      plan.fetch_failure_rate = rng.uniform(0.05, 0.5);
      plan.fetch_max_retries = rng.uniform_int(0, 3);
      plan.retry_backoff_ms = rng.uniform(0.1, 1.0);
      plan.fetch_deadline_ms = rng.uniform(0.5, 8.0);
      plan.abort_rate = rng.uniform(0.0, 0.08);
      plan.shed_wait_ms = rng.bernoulli(0.3) ? rng.uniform(500.0, 5000.0) : 0.0;
      config.fault_plan = plan;
    }

    const Index sessions = rng.uniform_int(3, 5);
    std::vector<ServeRequest> trace;
    Index longest_context = 0;
    for (Index i = 0; i < sessions; ++i) {
      ServeRequest request;
      request.id = i;
      request.arrival_ms = rng.uniform(0.0, 50.0) * static_cast<double>(i);
      request.prompt_len = rng.uniform_int(60, 400);
      request.decode_len = rng.uniform_int(3, 8);
      request.seed = derive_seed(GetParam(), "fuzz/req/" + std::to_string(i));
      longest_context = std::max(longest_context, request.prompt_len + request.decode_len);
      trace.push_back(request);
    }
    std::sort(trace.begin(), trace.end(),
              [](const ServeRequest& a, const ServeRequest& b) {
                return a.arrival_ms < b.arrival_ms;
              });

    // Budget between one and two of the largest projected working sets:
    // tight enough to force queueing and preemption, always admissible.
    const Index floor_tokens = std::min<Index>(
        longest_context,
        ckv.sink_tokens + std::max<Index>(ckv.tokens_per_cluster,
                                          ckv.decode_interval +
                                              ckv.cache_depth * session.engine.budget));
    const std::int64_t projected = static_cast<std::int64_t>(floor_tokens) *
                                   session_token_bytes(session) *
                                   session.shape.total_heads();
    config.fast_tier_budget_bytes =
        projected + static_cast<std::int64_t>(rng.uniform(0.0, 1.0) *
                                              static_cast<double>(projected)) + 1;

    const LatencyModel latency(HardwareModel::ada6000(), ModelConfig::llama31_8b());
    BatchScheduler scheduler(trace, make_clusterkv_factory(ckv, GetParam()), session,
                             latency, config);

    while (scheduler.tick()) {
      // External events the scheduler does not control: a preemption or a
      // speculation cancel can land at any point of any lifecycle state.
      if (!scheduler.running().empty()) {
        const auto victim = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<Index>(scheduler.running().size()) - 1));
        if (rng.bernoulli(0.15)) {
          scheduler.running()[victim]->release_fast_tier();
        } else if (rng.bernoulli(0.15)) {
          scheduler.running()[victim]->cancel_prefetches();
        }
      }

      // (1) Global footprint — resident plus in-flight — within budget.
      EXPECT_LE(scheduler.fast_tier_bytes(), config.fast_tier_budget_bytes);
      // (2) The O(1) ledger agrees with an independent re-sum.
      std::int64_t resident = 0;
      std::int64_t reserved = 0;
      for (const auto& running : scheduler.running()) {
        resident += running->fast_resident_bytes();
        auto& bank = running->engine().selectors();
        for (Index l = 0; l < bank.num_layers(); ++l) {
          for (Index h = 0; h < bank.num_heads(); ++h) {
            const auto* engine = dynamic_cast<const ClusterKVEngine*>(&bank.at(l, h));
            ASSERT_NE(engine, nullptr);
            reserved += engine->tiered_store().in_flight_bytes();
            // (3) Sinks are never offloaded, in any state, mid-anything.
            for (Index s = 0; s < engine->sink_count(); ++s) {
              EXPECT_TRUE(engine->tiered_store().is_fast_resident(s))
                  << "sink " << s << " offloaded (seed " << GetParam() << ")";
            }
            // Cache- and store-side in-flight token counts agree.
            EXPECT_EQ(engine->cache().in_flight_tokens(),
                      engine->tiered_store().in_flight_count());
          }
        }
      }
      EXPECT_EQ(scheduler.ledger().bytes(), resident);
      EXPECT_EQ(scheduler.ledger().reserved_bytes(), reserved);
    }
    // Conservation at end of run: every offered request retired (aborted
    // sessions retire through the normal path) or was counted shed; the
    // ledger fully unwinds — no stranded residency or in-flight entries.
    EXPECT_EQ(static_cast<std::int64_t>(scheduler.finished_count()) +
                  scheduler.metrics().shed_sessions_total(),
              static_cast<std::int64_t>(sessions));
    EXPECT_EQ(scheduler.ledger().bytes(), 0);
    EXPECT_EQ(scheduler.ledger().reserved_bytes(), 0);

    // Worker-count independence: the seeded injection schedule is the same
    // in both runs, so the retired records must match bit for bit.
    const auto& records = scheduler.metrics().records();
    if (workers == 1) {
      serial_records = records;
    } else {
      ASSERT_EQ(serial_records.size(), records.size());
      for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(serial_records[i].id, records[i].id) << i;
        EXPECT_EQ(serial_records[i].first_token_ms, records[i].first_token_ms) << i;
        EXPECT_EQ(serial_records[i].finish_ms, records[i].finish_ms) << i;
        EXPECT_EQ(serial_records[i].mean_recall, records[i].mean_recall) << i;
        EXPECT_EQ(serial_records[i].recall_steps, records[i].recall_steps) << i;
        EXPECT_EQ(serial_records[i].cache_hit_rate, records[i].cache_hit_rate) << i;
        EXPECT_EQ(serial_records[i].preemptions, records[i].preemptions) << i;
        EXPECT_EQ(serial_records[i].prefetch_hit_tokens,
                  records[i].prefetch_hit_tokens)
            << i;
        EXPECT_EQ(serial_records[i].prefetch_issued_tokens,
                  records[i].prefetch_issued_tokens)
            << i;
        EXPECT_EQ(serial_records[i].demand_fetched_tokens,
                  records[i].demand_fetched_tokens)
            << i;
        EXPECT_EQ(serial_records[i].aborted, records[i].aborted) << i;
        EXPECT_EQ(serial_records[i].degraded_steps, records[i].degraded_steps) << i;
        EXPECT_EQ(serial_records[i].fault_retries, records[i].fault_retries) << i;
        EXPECT_EQ(serial_records[i].fault_retry_ms, records[i].fault_retry_ms) << i;
        EXPECT_EQ(serial_records[i].dead_fetches, records[i].dead_fetches) << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingResidencyFuzz,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

}  // namespace
}  // namespace ckv
