// Property-based tests (parameterized fuzz) of the selection, indexing and
// caching invariants the ClusterKV pipeline relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "baselines/quest.hpp"
#include "core/cluster_cache.hpp"
#include "core/centroid_store.hpp"
#include "core/selector_index.hpp"
#include "model/procedural.hpp"
#include "tensor/rng.hpp"

namespace ckv {
namespace {

class SelectClustersFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectClustersFuzz, GreedyPrefixMinimalAndOrdered) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const Index n = rng.uniform_int(1, 60);
    std::vector<float> scores(static_cast<std::size_t>(n));
    std::vector<Index> sizes(static_cast<std::size_t>(n));
    Index total = 0;
    for (Index c = 0; c < n; ++c) {
      scores[static_cast<std::size_t>(c)] = static_cast<float>(rng.normal());
      sizes[static_cast<std::size_t>(c)] = rng.uniform_int(1, 50);
      total += sizes[static_cast<std::size_t>(c)];
    }
    const Index budget = rng.uniform_int(0, total + 20);
    const auto sel = select_clusters(scores, sizes, budget);

    // (1) Selected clusters are in non-ascending score order.
    for (std::size_t i = 0; i + 1 < sel.clusters.size(); ++i) {
      EXPECT_GE(scores[static_cast<std::size_t>(sel.clusters[i])],
                scores[static_cast<std::size_t>(sel.clusters[i + 1])]);
    }
    // (2) No duplicates.
    std::set<Index> unique(sel.clusters.begin(), sel.clusters.end());
    EXPECT_EQ(unique.size(), sel.clusters.size());
    // (3) Coverage: the selection reaches the budget or exhausts clusters.
    Index covered = 0;
    for (const Index c : sel.clusters) {
      covered += sizes[static_cast<std::size_t>(c)];
    }
    EXPECT_EQ(covered, sel.total_tokens);
    if (budget > 0) {
      EXPECT_TRUE(covered >= std::min<Index>(budget, total));
    }
    // (4) Minimality: dropping the last selected cluster falls below budget.
    if (budget > 0 && !sel.clusters.empty()) {
      EXPECT_LT(covered - sizes[static_cast<std::size_t>(sel.clusters.back())],
                budget);
    }
    // (5) Trim flag is exact.
    EXPECT_EQ(sel.trimmed, covered > budget && budget > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectClustersFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class ClusterCacheFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterCacheFuzz, MatchesNaiveReferenceModel) {
  Rng rng(GetParam());
  const Index depth = rng.uniform_int(0, 3);
  ClusterCache cache(depth);

  // Reference: a deque of token sets.
  std::vector<std::unordered_set<Index>> reference_window;

  for (int step = 0; step < 60; ++step) {
    const Index clusters = rng.uniform_int(1, 5);
    std::vector<std::pair<Index, std::vector<Index>>> selected;
    std::unordered_set<Index> requested;
    for (Index c = 0; c < clusters; ++c) {
      const Index cluster_id = rng.uniform_int(0, 9);
      std::vector<Index> tokens;
      const Index count = rng.uniform_int(1, 6);
      for (Index t = 0; t < count; ++t) {
        const Index token = cluster_id * 100 + rng.uniform_int(0, 19);
        if (requested.insert(token).second) {
          tokens.push_back(token);
        }
      }
      if (!tokens.empty()) {
        std::sort(tokens.begin(), tokens.end());
        selected.emplace_back(cluster_id, tokens);
      }
    }

    std::unordered_set<Index> resident;
    for (const auto& entry : reference_window) {
      resident.insert(entry.begin(), entry.end());
    }
    Index expected_hits = 0;
    Index expected_misses = 0;
    for (const auto& [cluster, tokens] : selected) {
      for (const Index t : tokens) {
        if (resident.contains(t)) {
          ++expected_hits;
        } else {
          ++expected_misses;
        }
      }
    }

    const auto result = cache.step(selected);
    EXPECT_EQ(result.hits, expected_hits) << "step " << step;
    EXPECT_EQ(result.misses, expected_misses) << "step " << step;
    EXPECT_EQ(static_cast<Index>(result.missing_tokens.size()), expected_misses);

    reference_window.insert(reference_window.begin(), requested);
    while (static_cast<Index>(reference_window.size()) > depth) {
      reference_window.pop_back();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterCacheFuzz,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

class QuestBoundFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuestBoundFuzz, UpperBoundHoldsOnRandomData) {
  // The page-score upper bound must hold for arbitrary key/query data,
  // not just procedural streams.
  Rng rng(GetParam());
  const Index dim = 16;
  QuestSelector quest(dim, QuestConfig{.page_size = 8});
  Matrix keys(64, dim);
  Matrix values(64, dim);
  rng.fill_normal(keys.flat(), 0.0, 2.0);
  rng.fill_normal(values.flat(), 0.0, 1.0);
  quest.observe_prefill(keys, values);

  KVStore reference(dim);
  reference.append_block(keys, values);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> query(static_cast<std::size_t>(dim));
    rng.fill_normal(query, 0.0, 3.0);
    const auto scores = reference.attention_scores(query);
    for (Index page = 0; page < quest.page_count(); ++page) {
      const double bound = quest.page_score(query, page);
      for (Index t = page * 8; t < (page + 1) * 8; ++t) {
        EXPECT_GE(bound + 1e-4, scores[static_cast<std::size_t>(t)]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuestBoundFuzz, ::testing::Values(21, 22, 23, 24));

class CentroidStoreFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CentroidStoreFuzz, PartitionInvariantUnderIncrementalAdds) {
  // Incremental cluster additions must always leave a perfect partition of
  // all registered token positions.
  Rng rng(GetParam());
  CentroidStore store(8);
  Index offset = 0;
  for (int batch = 0; batch < 8; ++batch) {
    const Index clusters = rng.uniform_int(1, 5);
    const Index tokens = rng.uniform_int(1, 40);
    Matrix centroids(clusters, 8);
    rng.fill_normal(centroids.flat(), 0.0, 1.0);
    std::vector<Index> labels(static_cast<std::size_t>(tokens));
    for (auto& l : labels) {
      l = rng.uniform_int(0, clusters - 1);
    }
    store.add_clusters(centroids, labels, offset);
    offset += tokens;
  }
  std::set<Index> seen;
  for (Index c = 0; c < store.cluster_count(); ++c) {
    Index previous = -1;
    for (const Index t : store.tokens_of(c)) {
      EXPECT_TRUE(seen.insert(t).second) << "token in two clusters";
      EXPECT_GT(t, previous) << "tokens not ascending within cluster";
      previous = t;
    }
  }
  EXPECT_EQ(static_cast<Index>(seen.size()), offset);
  EXPECT_EQ(store.token_count(), offset);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CentroidStoreFuzz,
                         ::testing::Values(31, 32, 33, 34, 35));

class GatherTrimFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GatherTrimFuzz, NeverExceedsBudgetAndPreservesClusterOrder) {
  Rng rng(GetParam());
  CentroidStore store(4);
  const Index clusters = 6;
  Matrix centroids(clusters, 4);
  rng.fill_normal(centroids.flat(), 0.0, 1.0);
  std::vector<Index> labels;
  for (Index t = 0; t < 120; ++t) {
    labels.push_back(rng.uniform_int(0, clusters - 1));
  }
  store.add_clusters(centroids, labels, 0);

  for (int trial = 0; trial < 30; ++trial) {
    std::vector<float> scores(clusters);
    for (auto& s : scores) {
      s = static_cast<float>(rng.normal());
    }
    const Index budget = rng.uniform_int(0, 140);
    const auto sel = select_clusters(scores, store.cluster_sizes(), budget);
    const auto indexed = gather_selected_tokens(store, sel, budget);
    EXPECT_LE(static_cast<Index>(indexed.token_positions.size()), budget);
    // Budget is met exactly whenever enough tokens were selected.
    if (sel.total_tokens >= budget) {
      EXPECT_EQ(static_cast<Index>(indexed.token_positions.size()), budget);
    }
    // per_cluster breakdown flattens to token_positions.
    std::vector<Index> flattened;
    for (const auto& [cluster, tokens] : indexed.per_cluster) {
      flattened.insert(flattened.end(), tokens.begin(), tokens.end());
    }
    EXPECT_EQ(flattened, indexed.token_positions);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatherTrimFuzz, ::testing::Values(41, 42, 43, 44));

}  // namespace
}  // namespace ckv
