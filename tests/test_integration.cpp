// Cross-module integration and property tests: invariants that must hold
// across every method on shared contexts.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/full_kv.hpp"
#include "baselines/h2o.hpp"
#include "baselines/infinigen.hpp"
#include "baselines/quest.hpp"
#include "baselines/streaming_llm.hpp"
#include "core/clusterkv_engine.hpp"
#include "metrics/metrics.hpp"
#include "model/decode_engine.hpp"
#include "model/procedural.hpp"
#include "tensor/softmax.hpp"
#include "tensor/topk.hpp"

namespace ckv {
namespace {

ProceduralParams params64() {
  ProceduralParams p;
  p.head_dim = 64;
  return p;
}

ClusterKVConfig fast_ckv() {
  ClusterKVConfig c;
  c.tokens_per_cluster = 40;
  c.decode_interval = 32;
  return c;
}

struct MethodUnderTest {
  std::string name;
  SelectorFactory factory;
  bool needs_feedback = false;
};

std::vector<MethodUnderTest> all_methods() {
  H2OConfig h2o;
  h2o.budget = 256;
  return {
      {"Full KV", make_full_kv_factory()},
      {"ClusterKV", make_clusterkv_factory(fast_ckv(), 3)},
      {"Quest", make_quest_factory()},
      {"InfiniGen", make_infinigen_factory()},
      {"H2O", make_h2o_factory(h2o), true},
      {"StreamingLLM", make_streaming_llm_factory()},
  };
}

class EveryMethod : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EveryMethod, SelectionWithinContextAndBudgetContract) {
  const auto method = all_methods()[GetParam()];
  auto stream = HeadStream(params64(), Rng(21), 600);
  auto selector = method.factory(0, 0, 64);
  selector->observe_prefill(stream.keys(), stream.values());
  for (Index s = 0; s < 8; ++s) {
    stream.append_generated();
    const Index last = stream.size() - 1;
    selector->observe_decode(stream.keys().row(last), stream.values().row(last));
    const auto q = stream.query(s);
    const auto sel = selector->select(q, 256);
    // Indices are valid, sorted, unique.
    EXPECT_TRUE(std::is_sorted(sel.indices.begin(), sel.indices.end()));
    EXPECT_EQ(std::adjacent_find(sel.indices.begin(), sel.indices.end()),
              sel.indices.end());
    for (const Index t : sel.indices) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, stream.size());
    }
    if (method.needs_feedback) {
      std::vector<float> probs(sel.indices.size(),
                               1.0f / static_cast<float>(sel.indices.size()));
      selector->observe_attention(sel.indices, probs);
    }
  }
}

TEST_P(EveryMethod, DeterministicAcrossRuns) {
  const auto method = all_methods()[GetParam()];
  std::vector<Index> first;
  for (int run = 0; run < 2; ++run) {
    auto stream = HeadStream(params64(), Rng(22), 400);
    auto selector = method.factory(0, 0, 64);
    selector->observe_prefill(stream.keys(), stream.values());
    const auto q = stream.query(0);
    const auto sel = selector->select(q, 128);
    if (run == 0) {
      first = sel.indices;
    } else {
      EXPECT_EQ(first, sel.indices) << method.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, EveryMethod, ::testing::Range<std::size_t>(0, 6));

TEST(Integration, RecallableMethodsCanReselectEvictedImportance) {
  // A token unselected for many steps must be selectable again by
  // recallable methods when importance returns (Fig. 1 d vs b).
  ProceduralParams p = params64();
  HeadStream stream(p, Rng(23), 2000);

  ClusterKVEngine ckv(64, fast_ckv(), Rng(5));
  StreamingLLMSelector window(64, StreamingLLMConfig{});
  ckv.observe_prefill(stream.keys(), stream.values());
  window.observe_prefill(stream.keys(), stream.values());

  // Pin focus to one topic for late steps only.
  const Index target_topic = stream.topic_of(1000);
  std::vector<Index> topic_positions;
  for (Index t = p.sink_tokens; t < 2000; ++t) {
    if (stream.topic_of(t) == target_topic) {
      topic_positions.push_back(t);
    }
  }
  ASSERT_GT(topic_positions.size(), 5u);
  stream.pin_focus(20, 24, topic_positions);

  double ckv_total = 0.0;
  double window_total = 0.0;
  Index scored_steps = 0;
  for (Index s = 0; s < 24; ++s) {
    stream.append_generated();
    const Index last = stream.size() - 1;
    ckv.observe_decode(stream.keys().row(last), stream.values().row(last));
    window.observe_decode(stream.keys().row(last), stream.values().row(last));
    if (s < 20) {
      continue;
    }
    const auto q = stream.query(s);
    const auto ckv_sel = ckv.select(q, 256);
    const auto window_sel = window.select(q, 256);
    ckv_total += recall_of(
        ckv_sel.indices,
        std::vector<Index>(topic_positions.begin(), topic_positions.end()));
    window_total += recall_of(
        window_sel.indices,
        std::vector<Index>(topic_positions.begin(), topic_positions.end()));
    ++scored_steps;
  }
  EXPECT_GT(ckv_total / scored_steps, window_total / scored_steps);
  EXPECT_GT(ckv_total / scored_steps, 0.3);
}

TEST(Integration, ClusterKVMatchesFullKVWhenBudgetCoversContext) {
  SimShape shape;
  shape.num_layers = 2;
  shape.num_heads = 2;
  shape.head_dim = 64;
  ProceduralContextModel model(shape, params64(), 24, 500);
  DecodeEngineConfig config;
  config.budget = 4096;  // far above context
  config.full_attention_layers = 0;
  DecodeEngine engine(model, make_clusterkv_factory(fast_ckv(), 6), config);
  engine.run_prefill();
  for (Index s = 0; s < 6; ++s) {
    const auto step = engine.decode_step(s);
    // Budget covers the whole context, so selection is exact: every head
    // attends every token and the step reports vacuously lossless quality.
    EXPECT_EQ(step.tokens_selected,
              shape.num_layers * shape.num_heads * (500 + s + 1));
    EXPECT_DOUBLE_EQ(step.mean_recall, 1.0);
    EXPECT_DOUBLE_EQ(step.mean_coverage, 1.0);
    EXPECT_DOUBLE_EQ(step.mean_output_error, 0.0);
  }
  // Such steps contribute no recall sample to the engine aggregates (they
  // would only dilute comparisons — see DecodeEngine::recall_stat), which
  // is itself part of the contract; the aggregate accessors then report
  // the vacuous 1.0.
  EXPECT_EQ(engine.recall_steps(), 0);
  EXPECT_EQ(engine.recall_stat().count(), 0);
  EXPECT_DOUBLE_EQ(engine.mean_recall(), 1.0);
  EXPECT_DOUBLE_EQ(engine.mean_coverage(), 1.0);
}

TEST(Integration, CoverageOrderingOnSharedContext) {
  // The paper's accuracy ordering, as a statistical property of the
  // pipeline: ClusterKV captures more attention mass than Quest and the
  // static window at equal budget.
  const Index budget = 512;
  std::map<std::string, double> coverage;
  for (const auto& method : all_methods()) {
    if (method.name == "H2O" || method.name == "Full KV") {
      continue;
    }
    SimShape shape;
    shape.num_layers = 1;
    shape.num_heads = 2;
    shape.head_dim = 64;
    ProceduralContextModel model(shape, params64(), 25, 4096);
    DecodeEngineConfig config;
    config.budget = budget;
    config.full_attention_layers = 0;
    DecodeEngine engine(model, method.factory, config);
    engine.run_prefill();
    for (Index s = 0; s < 10; ++s) {
      engine.decode_step(s);
    }
    coverage[method.name] = engine.coverage_stat().mean();
  }
  EXPECT_GT(coverage["ClusterKV"], coverage["Quest"]);
  EXPECT_GT(coverage["ClusterKV"], coverage["StreamingLLM"]);
}

TEST(Integration, FetchTrafficDropsWithCacheDepth) {
  // §IV-D: a deeper cluster cache can only reduce slow-tier fetches.
  std::int64_t previous = std::numeric_limits<std::int64_t>::max();
  for (const Index depth : {0, 1, 2}) {
    auto config = fast_ckv();
    config.cache_depth = depth;
    SimShape shape;
    shape.num_layers = 1;
    shape.num_heads = 2;
    shape.head_dim = 64;
    ProceduralContextModel model(shape, params64(), 26, 4096);
    DecodeEngineConfig engine_config;
    engine_config.budget = 512;
    engine_config.full_attention_layers = 0;
    DecodeEngine engine(model, make_clusterkv_factory(config, 7), engine_config);
    engine.run_prefill();
    for (Index s = 0; s < 12; ++s) {
      engine.decode_step(s);
    }
    EXPECT_LE(engine.total_fetched(), previous);
    previous = engine.total_fetched();
  }
}

}  // namespace
}  // namespace ckv
