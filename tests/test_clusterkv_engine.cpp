#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/clusterkv_engine.hpp"
#include "model/procedural.hpp"
#include "tensor/rng.hpp"
#include "tensor/topk.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

/// Builds an engine fed with a procedurally generated head context.
struct Fixture {
  Fixture(Index prompt_len, const ClusterKVConfig& config, std::uint64_t seed = 99)
      : params(make_params()),
        stream(params, Rng(derive_seed(seed, "head")), prompt_len),
        engine(params.head_dim, config, Rng(derive_seed(seed, "engine"))) {
    engine.observe_prefill(stream.keys(), stream.values());
  }

  static ProceduralParams make_params() {
    ProceduralParams p;
    p.head_dim = 32;
    p.num_topics = 16;
    return p;
  }

  ProceduralParams params;
  HeadStream stream;
  ClusterKVEngine engine;
};

ClusterKVConfig small_config() {
  ClusterKVConfig c;
  c.sink_tokens = 8;
  c.tokens_per_cluster = 40;
  c.decode_interval = 16;
  c.decode_clusters = 2;
  return c;
}

TEST(ClusterKVEngine, BudgetCoveringContextSelectsEverything) {
  Fixture f(300, small_config());
  const auto q = f.stream.query(0);
  const auto sel = f.engine.select(q, 300);
  ASSERT_EQ(sel.indices.size(), 300u);
  for (Index i = 0; i < 300; ++i) {
    EXPECT_EQ(sel.indices[static_cast<std::size_t>(i)], i);
  }
}

TEST(ClusterKVEngine, RespectsBudget) {
  Fixture f(600, small_config());
  const auto q = f.stream.query(0);
  for (const Index budget : {16, 64, 128, 300}) {
    const auto sel = f.engine.select(q, budget);
    EXPECT_LE(static_cast<Index>(sel.indices.size()), budget);
    // Trimming should land exactly on the budget when enough tokens exist.
    EXPECT_EQ(static_cast<Index>(sel.indices.size()), budget);
  }
}

TEST(ClusterKVEngine, SinksAlwaysSelected) {
  const auto config = small_config();
  Fixture f(500, config);
  const auto q = f.stream.query(0);
  const auto sel = f.engine.select(q, 64);
  for (Index s = 0; s < config.sink_tokens; ++s) {
    EXPECT_TRUE(std::binary_search(sel.indices.begin(), sel.indices.end(), s))
        << "sink " << s << " missing";
  }
}

TEST(ClusterKVEngine, PendingDecodeTokensAlwaysSelected) {
  Fixture f(400, small_config());
  // Generate 5 tokens (below the decode_interval of 16): all pending.
  for (int i = 0; i < 5; ++i) {
    f.stream.append_generated();
    const Index last = f.stream.size() - 1;
    f.engine.observe_decode(f.stream.keys().row(last), f.stream.values().row(last));
  }
  EXPECT_EQ(f.engine.pending_count(), 5);
  const auto q = f.stream.query(0);
  const auto sel = f.engine.select(q, 64);
  for (Index t = 400; t < 405; ++t) {
    EXPECT_TRUE(std::binary_search(sel.indices.begin(), sel.indices.end(), t));
  }
}

TEST(ClusterKVEngine, DecodeClusteringFlushesAtInterval) {
  const auto config = small_config();
  Fixture f(400, config);
  const Index before = f.engine.centroid_store().cluster_count();
  for (Index i = 0; i < config.decode_interval; ++i) {
    f.stream.append_generated();
    const Index last = f.stream.size() - 1;
    f.engine.observe_decode(f.stream.keys().row(last), f.stream.values().row(last));
  }
  EXPECT_EQ(f.engine.pending_count(), 0);
  EXPECT_EQ(f.engine.centroid_store().cluster_count(), before + config.decode_clusters);
}

TEST(ClusterKVEngine, FlushPendingPartialBatch) {
  Fixture f(400, small_config());
  for (int i = 0; i < 3; ++i) {
    f.stream.append_generated();
    const Index last = f.stream.size() - 1;
    f.engine.observe_decode(f.stream.keys().row(last), f.stream.values().row(last));
  }
  f.engine.flush_pending();
  EXPECT_EQ(f.engine.pending_count(), 0);
  // All tokens are now covered: sinks + clustered.
  EXPECT_EQ(f.engine.centroid_store().token_count() + f.engine.sink_count(),
            f.engine.context_size());
}

TEST(ClusterKVEngine, ClusterCountFollowsPaperRule) {
  ClusterKVConfig config;
  config.sink_tokens = 16;
  config.tokens_per_cluster = 80;
  Fixture f(16 + 800, config);
  // (816 - 16 sinks) / 80 = 10 clusters.
  EXPECT_EQ(f.engine.centroid_store().cluster_count(), 10);
}

TEST(ClusterKVEngine, FixedClusterCountOverride) {
  ClusterKVConfig config;
  config.fixed_cluster_count = 7;
  Fixture f(500, config);
  EXPECT_EQ(f.engine.centroid_store().cluster_count(), 7);
}

TEST(ClusterKVEngine, SelectionRecallsBetterThanRandom) {
  Fixture f(1600, small_config());
  // Decode a few steps so the focus process moves around.
  double recall_sum = 0.0;
  int steps = 0;
  for (Index s = 0; s < 12; ++s) {
    f.stream.append_generated();
    const Index last = f.stream.size() - 1;
    f.engine.observe_decode(f.stream.keys().row(last), f.stream.values().row(last));
    const auto q = f.stream.query(s);
    const Index budget = 160;
    const auto sel = f.engine.select(q, budget);
    const auto scores = f.stream.attention_scores(q);
    const auto truth = top_k_indices(scores, budget);
    const std::set<Index> chosen(sel.indices.begin(), sel.indices.end());
    Index hit = 0;
    for (const Index t : truth) {
      if (chosen.contains(t)) {
        ++hit;
      }
    }
    recall_sum += static_cast<double>(hit) / static_cast<double>(budget);
    ++steps;
  }
  const double mean_recall = recall_sum / steps;
  // Random selection would land near budget/context = 0.1; semantic
  // clustering must do substantially better even at this small scale.
  EXPECT_GT(mean_recall, 0.2);
}

TEST(ClusterKVEngine, CacheHitsOnRepeatedQueries) {
  Fixture f(800, small_config());
  const auto q = f.stream.query(0);
  const auto first = f.engine.select(q, 100);
  EXPECT_GT(first.tokens_fetched, 0);
  EXPECT_EQ(first.tokens_cache_hit, 0);
  // Same query at the next step: the cluster cache (R = 1) serves it.
  const auto second = f.engine.select(q, 100);
  EXPECT_EQ(second.tokens_fetched, 0);
  EXPECT_GT(second.tokens_cache_hit, 0);
}

TEST(ClusterKVEngine, TransfersAccountedInTieredStore) {
  Fixture f(800, small_config());
  const auto q = f.stream.query(0);
  const auto sel = f.engine.select(q, 100);
  const auto& stats = f.engine.tiered_store().stats();
  EXPECT_EQ(stats.tokens_fetched, sel.tokens_fetched);
  EXPECT_GT(stats.bytes_to_fast, 0);
  // All non-sink prompt tokens were offloaded after prefill clustering.
  EXPECT_GE(stats.tokens_offloaded, 800 - f.engine.sink_count());
}

TEST(ClusterKVEngine, ShortPromptAllSinks) {
  ClusterKVConfig config;
  config.sink_tokens = 16;
  Fixture f(10, config);
  EXPECT_EQ(f.engine.sink_count(), 10);
  EXPECT_EQ(f.engine.centroid_store().cluster_count(), 0);
  const auto q = f.stream.query(0);
  const auto sel = f.engine.select(q, 5);
  // Sinks are always attended even when they exceed the budget.
  EXPECT_EQ(sel.indices.size(), 10u);
}

// Chunked prefill: slices arrive across ticks; clustering is incremental
// (pending prompt tokens accumulate until a full tokens_per_cluster batch
// or the final chunk) and the end state covers the whole prompt exactly
// like the one-shot path: sinks + clustered tokens, nothing pending.
TEST(ClusterKVEngine, ChunkedPrefillCoversPromptIncrementally) {
  const auto config = small_config();  // 8 sinks, 40 tokens/cluster
  const auto params = Fixture::make_params();
  HeadStream stream(params, Rng(derive_seed(31, "head")), 200);
  ClusterKVEngine engine(params.head_dim, config, Rng(derive_seed(31, "engine")));

  // Chunk 1 (25 tokens): 8 sinks + 17 pending — fewer than a cluster
  // batch, so nothing clusters yet and everything stays fast.
  engine.observe_prefill_chunk(stream.keys().row_slice(0, 25),
                               stream.values().row_slice(0, 25), false);
  EXPECT_EQ(engine.sink_count(), 8);
  EXPECT_EQ(engine.pending_count(), 17);
  EXPECT_EQ(engine.centroid_store().cluster_count(), 0);
  EXPECT_EQ(engine.fast_resident_tokens(), 25);

  // Chunk 2 (+75 tokens): 92 pending >= 40 flushes them all into
  // ceil-free 92/40 = 2 clusters and offloads them to the slow tier.
  engine.observe_prefill_chunk(stream.keys().row_slice(25, 100),
                               stream.values().row_slice(25, 100), false);
  EXPECT_EQ(engine.pending_count(), 0);
  EXPECT_EQ(engine.centroid_store().token_count(), 92);
  EXPECT_EQ(engine.fast_resident_tokens(), 8);  // sinks only

  // Final chunk (+100): the remainder flushes even though it is short.
  engine.observe_prefill_chunk(stream.keys().row_slice(100, 200),
                               stream.values().row_slice(100, 200), true);
  EXPECT_EQ(engine.pending_count(), 0);
  EXPECT_EQ(engine.context_size(), 200);
  EXPECT_EQ(engine.centroid_store().token_count() + engine.sink_count(), 200);

  // Whole-prompt one-shot prefill is now rejected (context exists).
  EXPECT_THROW(engine.observe_prefill(stream.keys(), stream.values()),
               std::invalid_argument);
  // Selection still honors the invariants over the chunk-built state.
  auto q = stream.query(0);
  const auto sel = engine.select(q, 64);
  EXPECT_LE(static_cast<Index>(sel.indices.size()), 64);
  for (Index s = 0; s < engine.sink_count(); ++s) {
    EXPECT_TRUE(engine.tiered_store().is_fast_resident(s));
  }
}

// The sink prefix can span chunk boundaries when the first chunk is
// smaller than sink_tokens.
TEST(ClusterKVEngine, SinkPrefixSpansChunks) {
  ClusterKVConfig config = small_config();
  config.sink_tokens = 16;
  const auto params = Fixture::make_params();
  HeadStream stream(params, Rng(derive_seed(32, "head")), 120);
  ClusterKVEngine engine(params.head_dim, config, Rng(derive_seed(32, "engine")));

  engine.observe_prefill_chunk(stream.keys().row_slice(0, 6),
                               stream.values().row_slice(0, 6), false);
  EXPECT_EQ(engine.sink_count(), 6);  // all-sink so far
  engine.observe_prefill_chunk(stream.keys().row_slice(6, 120),
                               stream.values().row_slice(6, 120), true);
  EXPECT_EQ(engine.sink_count(), 16);  // extended, never re-clustered
  EXPECT_EQ(engine.centroid_store().token_count(), 120 - 16);
  for (Index s = 0; s < 16; ++s) {
    EXPECT_TRUE(engine.tiered_store().is_fast_resident(s));
  }
}

TEST(ClusterKVEngine, PrefillTwiceRejected) {
  Fixture f(100, small_config());
  EXPECT_THROW(f.engine.observe_prefill(f.stream.keys(), f.stream.values()),
               std::invalid_argument);
}

TEST(ClusterKVEngine, SelectionIsSortedUnique) {
  Fixture f(700, small_config());
  const auto q = f.stream.query(0);
  const auto sel = f.engine.select(q, 200);
  EXPECT_TRUE(std::is_sorted(sel.indices.begin(), sel.indices.end()));
  EXPECT_EQ(std::adjacent_find(sel.indices.begin(), sel.indices.end()),
            sel.indices.end());
}

TEST(ClusterKVEngine, RepresentationWorkIsClusterCount) {
  Fixture f(800, small_config());
  const auto q = f.stream.query(0);
  const auto sel = f.engine.select(q, 100);
  EXPECT_EQ(sel.representations_scored, f.engine.centroid_store().cluster_count());
  // An order of magnitude fewer representations than tokens (§III-A).
  EXPECT_LT(sel.representations_scored * 10, f.engine.context_size());
}

TEST(ClusterKVEngine, FactoryDerivesDistinctStreams) {
  const auto factory = make_clusterkv_factory(small_config(), 7);
  auto a = factory(0, 0, 32);
  auto b = factory(0, 1, 32);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "ClusterKV");
}


TEST(ClusterKVEngine, FlushZeroPendingIsNoOp) {
  Fixture f(400, small_config());
  const Index clusters_before = f.engine.centroid_store().cluster_count();
  const std::int64_t flops_before = f.engine.clustering_flops();
  f.engine.flush_pending();  // nothing pending: no clusters, no flops
  f.engine.flush_pending();  // idempotent
  EXPECT_EQ(f.engine.centroid_store().cluster_count(), clusters_before);
  EXPECT_EQ(f.engine.clustering_flops(), flops_before);
}

TEST(ClusterKVEngine, FlushSingleTokenMakesOneNonEmptyCluster) {
  const auto config = small_config();  // decode_clusters = 2 > pending = 1
  Fixture f(400, config);
  f.stream.append_generated();
  const Index last = f.stream.size() - 1;
  f.engine.observe_decode(f.stream.keys().row(last), f.stream.values().row(last));
  const Index clusters_before = f.engine.centroid_store().cluster_count();
  f.engine.flush_pending();
  // One token can only make one cluster, never decode_clusters' worth.
  EXPECT_EQ(f.engine.centroid_store().cluster_count(), clusters_before + 1);
  for (Index c = 0; c < f.engine.centroid_store().cluster_count(); ++c) {
    EXPECT_GT(f.engine.centroid_store().size_of(c), 0);
  }
}

TEST(ClusterKVEngine, FlushDuplicateKeysNeverRegistersEmptyClusters) {
  // Identical pending keys degenerate k-means (seeds collide, reseeding
  // can leave a cluster empty); the engine must compact those away before
  // they reach the centroid store.
  auto config = small_config();
  config.decode_clusters = 4;
  Fixture f(200, config);
  std::vector<float> key(static_cast<std::size_t>(f.params.head_dim), 0.5f);
  for (int i = 0; i < 4; ++i) {
    f.engine.observe_decode(key, key);  // four identical tokens
  }
  f.engine.flush_pending();
  EXPECT_EQ(f.engine.pending_count(), 0);
  Index covered = f.engine.sink_count();
  for (Index c = 0; c < f.engine.centroid_store().cluster_count(); ++c) {
    EXPECT_GT(f.engine.centroid_store().size_of(c), 0) << "empty cluster " << c;
    covered += f.engine.centroid_store().size_of(c);
  }
  EXPECT_EQ(covered, f.engine.context_size());
}

TEST(ClusterKVEngine, PartialFlushBillsClampedClusterCount) {
  // Flops for a 3-token flush must be billed at min(C+, 3) centroids; a
  // same-size full-rate flush with C+ = 2 gives an upper bound, so the
  // partial flush can never charge more than the clamped problem costs.
  const auto config = small_config();
  Fixture f(400, config);
  const std::int64_t before = f.engine.clustering_flops();
  for (int i = 0; i < 3; ++i) {
    f.stream.append_generated();
    const Index last = f.stream.size() - 1;
    f.engine.observe_decode(f.stream.keys().row(last), f.stream.values().row(last));
  }
  f.engine.flush_pending();
  const std::int64_t billed = f.engine.clustering_flops() - before;
  EXPECT_GT(billed, 0);
  // assignment work <= iterations_cap * tokens * clamped_clusters * d MACs
  const std::int64_t cap = config.kmeans_max_iterations * 3 *
                           std::min<Index>(config.decode_clusters, 3) *
                           f.params.head_dim;
  EXPECT_LE(billed, cap);
}

TEST(ClusterKVEngine, ReleaseFastTierKeepsSinksAndPending) {
  const auto config = small_config();
  Fixture f(400, config);
  f.stream.append_generated();
  const Index last = f.stream.size() - 1;
  f.engine.observe_decode(f.stream.keys().row(last), f.stream.values().row(last));
  const auto q = f.stream.query(0);
  f.engine.select(q, 64);  // pulls cluster tokens fast
  EXPECT_GT(f.engine.fast_resident_tokens(), f.engine.sink_count() + 1);

  f.engine.release_fast_tier();
  EXPECT_EQ(f.engine.fast_resident_tokens(), f.engine.sink_count() + 1);
  for (Index s = 0; s < f.engine.sink_count(); ++s) {
    EXPECT_TRUE(f.engine.tiered_store().is_fast_resident(s));
  }
  EXPECT_TRUE(f.engine.tiered_store().is_fast_resident(f.engine.context_size() - 1));

  // Selection still works afterwards and refetches what it needs.
  const auto sel = f.engine.select(q, 64);
  EXPECT_GT(sel.tokens_fetched, 0);
}


class ClusterKVBudgetSweep : public ::testing::TestWithParam<Index> {};

TEST_P(ClusterKVBudgetSweep, SelectionSizeTracksBudget) {
  const Index budget = GetParam();
  Fixture f(1024, small_config());
  const auto q = f.stream.query(0);
  const auto sel = f.engine.select(q, budget);
  EXPECT_EQ(static_cast<Index>(sel.indices.size()), std::min<Index>(budget, 1024));
}

INSTANTIATE_TEST_SUITE_P(Budgets, ClusterKVBudgetSweep,
                         ::testing::Values(16, 32, 64, 128, 256, 512, 1024, 2048));

}  // namespace
}  // namespace ckv
