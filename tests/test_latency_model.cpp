#include <gtest/gtest.h>

#include <algorithm>

#include "model/model_config.hpp"
#include "sim/latency_model.hpp"

namespace ckv {
namespace {

LatencyModel llama_model() {
  return LatencyModel(HardwareModel::ada6000(), ModelConfig::llama31_8b());
}

TEST(ModelConfigs, PresetsSane) {
  const auto llama = ModelConfig::llama31_8b();
  EXPECT_EQ(llama.num_layers, 32);
  EXPECT_EQ(llama.num_kv_heads, 8);
  // GQA: 2 * 8 * 128 * 2B = 4 KiB per token per layer.
  EXPECT_EQ(llama.kv_bytes_per_token_layer(2), 4096);
  EXPECT_EQ(llama.kv_bytes_per_token(2), 4096 * 32);
  EXPECT_GT(llama.weight_bytes(2), 15LL * 1000 * 1000 * 1000);

  const auto opt = ModelConfig::opt_6_7b();
  EXPECT_EQ(opt.num_kv_heads, opt.num_heads);  // MHA

  const auto glm = ModelConfig::glm4_9b();
  EXPECT_EQ(glm.num_kv_heads, 2);
}

TEST(LatencyModel, FullKVStepGrowsWithContext) {
  const auto model = llama_model();
  const double t8k = model.full_kv_step(8192).total_ms();
  const double t16k = model.full_kv_step(16384).total_ms();
  const double t32k = model.full_kv_step(32768).total_ms();
  EXPECT_LT(t8k, t16k);
  EXPECT_LT(t16k, t32k);
}

TEST(LatencyModel, ClusterKVStepNearlyFlatInContext) {
  const auto model = llama_model();
  const double t8k = model.clusterkv_step(8192, 1024, 0.37, 102).total_ms();
  const double t32k = model.clusterkv_step(32768, 1024, 0.37, 410).total_ms();
  // Only centroid metadata grows with L: well under 10% difference.
  EXPECT_LT(t32k, t8k * 1.1);
}

TEST(LatencyModel, PaperHeadlineSpeedups) {
  // Fig. 12 headline: ~2x total latency at P=32k, D=1024, budget 1024, and
  // decode throughput improvements up to ~2.5x.
  const auto model = llama_model();
  LatencyModel::RunParams full;
  full.method = LatencyModel::Method::kFullKV;
  full.prompt_len = 32768;
  full.decode_len = 1024;
  LatencyModel::RunParams ckv = full;
  ckv.method = LatencyModel::Method::kClusterKV;
  ckv.budget = 1024;

  const auto full_run = model.run_latency(full);
  const auto ckv_run = model.run_latency(ckv);
  const double latency_speedup = full_run.total_ms() / ckv_run.total_ms();
  EXPECT_GT(latency_speedup, 1.6);
  EXPECT_LT(latency_speedup, 2.6);

  const double throughput_gain = ckv_run.decode_throughput_tps(1024) /
                                 full_run.decode_throughput_tps(1024);
  EXPECT_GT(throughput_gain, 1.9);
  EXPECT_LT(throughput_gain, 3.0);
}

TEST(LatencyModel, SpeedupGrowsWithContext) {
  const auto model = llama_model();
  double previous = 0.0;
  for (const Index p : {8192, 16384, 32768}) {
    LatencyModel::RunParams full;
    full.method = LatencyModel::Method::kFullKV;
    full.prompt_len = p;
    full.decode_len = 512;
    auto ckv = full;
    ckv.method = LatencyModel::Method::kClusterKV;
    ckv.budget = 1024;
    const double speedup = model.run_latency(full).total_ms() /
                           model.run_latency(ckv).total_ms();
    EXPECT_GT(speedup, previous);
    previous = speedup;
  }
}

TEST(LatencyModel, QuestAndClusterKVWithinFivePercent) {
  // Fig. 13b: latency deviation up to ~5% between ClusterKV and Quest.
  const auto model = llama_model();
  for (const Index p : {8192, 16384, 32768}) {
    for (const Index d : {256, 512}) {
      LatencyModel::RunParams quest;
      quest.method = LatencyModel::Method::kQuest;
      quest.prompt_len = p;
      quest.decode_len = d;
      quest.budget = 1024;
      auto ckv = quest;
      ckv.method = LatencyModel::Method::kClusterKV;
      const double tq = model.run_latency(quest).total_ms();
      const double tc = model.run_latency(ckv).total_ms();
      EXPECT_LT(std::abs(tq - tc) / tq, 0.08) << "P=" << p << " D=" << d;
    }
  }
}

TEST(LatencyModel, InfiniGenComparableToFullOffload) {
  // Fig. 13a: InfiniGen's latency is comparable to full-KV inference on
  // its substrate; ClusterKV is >= 2x faster than InfiniGen.
  const LatencyModel model(HardwareModel::ada6000(), ModelConfig::opt_6_7b());
  LatencyModel::RunParams infinigen;
  infinigen.method = LatencyModel::Method::kInfiniGen;
  infinigen.prompt_len = 2048;
  infinigen.decode_len = 256;
  infinigen.budget = 256;
  auto full = infinigen;
  full.method = LatencyModel::Method::kFullKVOffload;
  auto ckv = infinigen;
  ckv.method = LatencyModel::Method::kClusterKV;

  const double ti = model.run_latency(infinigen).total_ms();
  const double tf = model.run_latency(full).total_ms();
  const double tc = model.run_latency(ckv).total_ms();
  EXPECT_GT(ti / tf, 0.7);
  EXPECT_LT(ti / tf, 1.3);
  EXPECT_GT(ti / tc, 1.8);
}

TEST(LatencyModel, ClusteringOverheadSmallShareOfPrefill) {
  // §V-C: clustering accounts for 6-8% of prefill. Allow a wide band but
  // assert the order of magnitude.
  const auto model = llama_model();
  for (const Index p : {8192, 16384, 32768}) {
    const double prefill = model.prefill_ms(p);
    const double clustering = model.clustering_visible_overhead_ms(p);
    const double share = clustering / prefill;
    EXPECT_GT(share, 0.01) << p;
    EXPECT_LT(share, 0.15) << p;
  }
}

TEST(LatencyModel, OverlappedFetchHidesUpToComputeTime) {
  const auto model = llama_model();
  // A fetch shorter than the compute window is fully hidden.
  EXPECT_DOUBLE_EQ(model.overlapped_fetch_ms(1024.0, 100.0), 0.0);
  // A fetch outlasting the window bills exactly the remainder.
  const double bytes = 50.0 * 10.0 * 1e6;  // 50 ms at 10 GB/s gather
  EXPECT_NEAR(model.overlapped_fetch_ms(bytes, 20.0), 30.0, 1e-9);
  // No compute to hide under: the whole fetch is visible.
  EXPECT_NEAR(model.overlapped_fetch_ms(bytes, 0.0), 50.0, 1e-9);
}

TEST(LatencyModel, PrefetchStepNeverSlowerThanSyncAtSameTraffic) {
  const auto model = llama_model();
  const double miss_rate = 0.4;
  const auto sync = model.clusterkv_step(8192, 1024, miss_rate, 102);
  // With no issued speculation and every miss on the demand path, the
  // prefetch billing collapses to the sync step exactly.
  const auto degenerate = model.clusterkv_prefetch_step(8192, 1024, miss_rate,
                                                        /*issue_rate=*/0.0, 102);
  EXPECT_DOUBLE_EQ(degenerate.total_ms(), sync.total_ms());
  // Covering part of the misses in flight strictly reduces the step —
  // even with generous waste, the issued bytes hide under compute.
  const auto covered = model.clusterkv_prefetch_step(8192, 1024,
                                                     /*demand=*/0.1,
                                                     /*issue_rate=*/0.8, 102);
  EXPECT_LT(covered.total_ms(), sync.total_ms());
  EXPECT_GE(covered.transfer_ms, 0.0);
  // A pathological issue volume eventually outlasts the compute window
  // and bills a visible remainder, but never a negative one.
  const auto flooded = model.clusterkv_prefetch_step(8192, 1024, 0.1, 500.0, 102);
  EXPECT_GE(flooded.total_ms(), covered.total_ms());
  EXPECT_THROW((void)model.clusterkv_prefetch_step(8192, 1024, 0.1, -0.1, 102),
               std::invalid_argument);
}

TEST(LatencyModel, PrefetchOverlapWindowExcludesDemandWireTime) {
  // Regression pin: clusterkv_prefetch_step used to hide speculative bytes
  // under the *demand-miss-inflated* step (compute window = total - own
  // transfer), letting prefetch and demand each overlap the other's wire
  // occupancy. Demand and prefetch share one link serially: the demand
  // gather's full wire time shrinks the window the prefetch can hide in.
  const auto model = llama_model();
  const Index context = 8192;
  const Index budget = 1024;
  const Index clusters = 102;
  const double demand_rate = 0.4;

  const auto sync = model.clusterkv_step(context, budget, demand_rate, clusters);
  const double compute_ms = sync.total_ms() - sync.transfer_ms;
  const double bytes_per_token =
      static_cast<double>(model.fetch_bytes_per_token());
  const double attended = static_cast<double>(std::min(budget, context));
  const double wire_rate = model.link_gather_gbps() * 1e6;  // bytes/ms
  const double demand_wire_ms = demand_rate * attended * bytes_per_token / wire_rate;

  // Pick an issue volume whose wire time lands strictly between the
  // demand-shrunk window and the full compute window: the corrected
  // formula bills a visible remainder, the buggy one billed zero.
  const double target_wire_ms = compute_ms - 0.5 * demand_wire_ms;
  ASSERT_GT(target_wire_ms, compute_ms - demand_wire_ms);
  ASSERT_LT(target_wire_ms, compute_ms);
  const double issue_rate =
      target_wire_ms * wire_rate / (attended * bytes_per_token);

  const auto step = model.clusterkv_prefetch_step(context, budget, demand_rate,
                                                  issue_rate, clusters);
  const double expected_extra =
      target_wire_ms - (compute_ms - demand_wire_ms);  // = 0.5 * demand_wire_ms
  EXPECT_NEAR(step.transfer_ms, sync.transfer_ms + expected_extra, 1e-9);
  // The buggy window (full compute) would have hidden everything.
  EXPECT_GT(step.transfer_ms,
            sync.transfer_ms +
                model.overlapped_fetch_ms(issue_rate * attended * bytes_per_token,
                                          compute_ms) +
                1e-9);
  // The degenerate contract survives the fix: no speculation, no change.
  const auto degenerate =
      model.clusterkv_prefetch_step(context, budget, demand_rate, 0.0, clusters);
  EXPECT_DOUBLE_EQ(degenerate.total_ms(), sync.total_ms());
}

TEST(LatencyModel, QuestStepBillsPartialTrailingPageAsFull) {
  // Regression pin: pages = context / page_size was fractional, under-
  // billing metadata reads and scoring for a partial trailing page that
  // stores full min/max vectors. The count now rounds up.
  const auto model = llama_model();
  const Index page = 16;
  // 6 full pages + 1 token: bills like 7 pages, not 6.0625.
  const auto partial = model.quest_step(6 * page + 1, 1024, page);
  const auto full7 = model.quest_step(7 * page, 1024, page);
  EXPECT_DOUBLE_EQ(partial.metadata_ms, full7.metadata_ms);
  EXPECT_DOUBLE_EQ(partial.selection_ms, full7.selection_ms);
  const auto full6 = model.quest_step(6 * page, 1024, page);
  EXPECT_GT(partial.metadata_ms, full6.metadata_ms);
  EXPECT_GT(partial.selection_ms, full6.selection_ms);
  // Exact multiples are unchanged by the ceil.
  EXPECT_DOUBLE_EQ(full6.metadata_ms * 7.0, full7.metadata_ms * 6.0);
}

TEST(LatencyModel, MissRateIncreasesStepTime) {
  const auto model = llama_model();
  const double hit_heavy = model.clusterkv_step(32768, 1024, 0.2, 400).total_ms();
  const double miss_heavy = model.clusterkv_step(32768, 1024, 0.8, 400).total_ms();
  EXPECT_LT(hit_heavy, miss_heavy);
  EXPECT_THROW((void)model.clusterkv_step(32768, 1024, 1.5, 400), std::invalid_argument);
}

TEST(LatencyModel, BreakdownComponentsNonNegative) {
  const auto model = llama_model();
  const auto b = model.clusterkv_step(16384, 512, 0.4, 200);
  EXPECT_GE(b.weights_ms, 0.0);
  EXPECT_GE(b.kv_read_ms, 0.0);
  EXPECT_GE(b.metadata_ms, 0.0);
  EXPECT_GE(b.selection_ms, 0.0);
  EXPECT_GE(b.transfer_ms, 0.0);
  EXPECT_GE(b.overhead_ms, 0.0);
  EXPECT_NEAR(b.total_ms(),
              b.weights_ms + b.kv_read_ms + b.metadata_ms + b.selection_ms +
                  b.sync_ms + b.transfer_ms + b.overhead_ms,
              1e-12);
}

TEST(LatencyModel, MethodNames) {
  EXPECT_EQ(to_string(LatencyModel::Method::kFullKV), "Full KV");
  EXPECT_EQ(to_string(LatencyModel::Method::kClusterKV), "ClusterKV");
  EXPECT_EQ(to_string(LatencyModel::Method::kQuest), "Quest");
  EXPECT_EQ(to_string(LatencyModel::Method::kInfiniGen), "InfiniGen");
  EXPECT_EQ(to_string(LatencyModel::Method::kFullKVOffload), "InfiniGen (Full)");
}

}  // namespace
}  // namespace ckv
