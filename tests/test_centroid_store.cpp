#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/centroid_store.hpp"
#include "core/selector_index.hpp"
#include "tensor/rng.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

Matrix unit_rows(Index rows, Index dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, dim);
  for (Index r = 0; r < rows; ++r) {
    copy_to(rng.unit_vector(dim), m.row(r));
  }
  return m;
}

TEST(CentroidStore, Fig8Example) {
  // The worked example of Fig. 8: k0,k5 -> cluster 2; k1 -> cluster 0;
  // k2,k3,k4 -> cluster 1.
  CentroidStore store(4);
  const auto centroids = unit_rows(3, 4, 1);
  const std::vector<Index> labels{2, 0, 1, 1, 1, 2};
  store.add_clusters(centroids, labels, 0);

  EXPECT_EQ(store.cluster_count(), 3);
  EXPECT_EQ(store.token_count(), 6);
  EXPECT_EQ(store.size_of(0), 1);
  EXPECT_EQ(store.size_of(1), 3);
  EXPECT_EQ(store.size_of(2), 2);

  const auto c0 = store.tokens_of(0);
  const auto c1 = store.tokens_of(1);
  const auto c2 = store.tokens_of(2);
  EXPECT_EQ(std::vector<Index>(c0.begin(), c0.end()), (std::vector<Index>{1}));
  EXPECT_EQ(std::vector<Index>(c1.begin(), c1.end()), (std::vector<Index>{2, 3, 4}));
  EXPECT_EQ(std::vector<Index>(c2.begin(), c2.end()), (std::vector<Index>{0, 5}));
}

TEST(CentroidStore, PositionOffsetApplied) {
  CentroidStore store(4);
  const auto centroids = unit_rows(2, 4, 2);
  const std::vector<Index> labels{0, 1, 0};
  store.add_clusters(centroids, labels, 100);
  const auto c0 = store.tokens_of(0);
  EXPECT_EQ(std::vector<Index>(c0.begin(), c0.end()), (std::vector<Index>{100, 102}));
}

TEST(CentroidStore, IncrementalAddKeepsOldClusters) {
  CentroidStore store(4);
  store.add_clusters(unit_rows(2, 4, 3), std::vector<Index>{0, 1, 0}, 0);
  // Decode-side batch (§III-B): new clusters appended, ids continue.
  store.add_clusters(unit_rows(2, 4, 4), std::vector<Index>{1, 0}, 3);
  EXPECT_EQ(store.cluster_count(), 4);
  EXPECT_EQ(store.token_count(), 5);
  const auto old_c0 = store.tokens_of(0);
  EXPECT_EQ(std::vector<Index>(old_c0.begin(), old_c0.end()),
            (std::vector<Index>{0, 2}));
  const auto new_c2 = store.tokens_of(2);
  EXPECT_EQ(std::vector<Index>(new_c2.begin(), new_c2.end()),
            (std::vector<Index>{4}));
  const auto new_c3 = store.tokens_of(3);
  EXPECT_EQ(std::vector<Index>(new_c3.begin(), new_c3.end()),
            (std::vector<Index>{3}));
}

TEST(CentroidStore, SizesMatchPrefixSums) {
  CentroidStore store(8);
  Rng rng(5);
  Index offset = 0;
  for (int batch = 0; batch < 4; ++batch) {
    const Index n = 20 + batch * 7;
    const Index c = 3;
    std::vector<Index> labels(static_cast<std::size_t>(n));
    for (auto& l : labels) {
      l = rng.uniform_int(0, c - 1);
    }
    store.add_clusters(unit_rows(c, 8, 100 + batch), labels, offset);
    offset += n;
  }
  Index total = 0;
  for (Index c = 0; c < store.cluster_count(); ++c) {
    total += store.size_of(c);
    EXPECT_EQ(store.size_of(c), static_cast<Index>(store.tokens_of(c).size()));
  }
  EXPECT_EQ(total, store.token_count());
  // Every position appears exactly once across clusters.
  std::set<Index> seen;
  for (Index c = 0; c < store.cluster_count(); ++c) {
    for (const Index t : store.tokens_of(c)) {
      EXPECT_TRUE(seen.insert(t).second);
    }
  }
  EXPECT_EQ(static_cast<Index>(seen.size()), store.token_count());
}

TEST(CentroidStore, TruncateDropsMostRecentBatch) {
  CentroidStore store(4);
  store.add_clusters(unit_rows(2, 4, 30), std::vector<Index>{0, 1, 0}, 0);
  const auto kept_centroid =
      std::vector<float>(store.centroids().row(1).begin(), store.centroids().row(1).end());
  store.add_clusters(unit_rows(2, 4, 31), std::vector<Index>{1, 0}, 3);
  ASSERT_EQ(store.cluster_count(), 4);

  store.truncate(2);  // pop the second batch (end-of-prompt tail fold path)
  EXPECT_EQ(store.cluster_count(), 2);
  EXPECT_EQ(store.token_count(), 3);
  const auto c0 = store.tokens_of(0);
  EXPECT_EQ(std::vector<Index>(c0.begin(), c0.end()), (std::vector<Index>{0, 2}));
  EXPECT_EQ(std::vector<float>(store.centroids().row(1).begin(),
                               store.centroids().row(1).end()),
            kept_centroid);
  EXPECT_THROW(store.truncate(3), std::invalid_argument);
  // Truncated ids are gone for good; re-adding continues from the new end.
  store.add_clusters(unit_rows(1, 4, 32), std::vector<Index>{0, 0}, 3);
  EXPECT_EQ(store.cluster_count(), 3);
  EXPECT_EQ(store.size_of(2), 2);
}

TEST(CentroidStore, RebuildReplacesEverything) {
  CentroidStore store(4);
  store.add_clusters(unit_rows(3, 4, 33), std::vector<Index>{0, 1, 2, 0}, 0);
  // Cluster-repair rebuild: same tokens, new grouping, new centroids.
  store.rebuild(unit_rows(2, 4, 34), std::vector<Index>{1, 1, 0, 0}, 10);
  EXPECT_EQ(store.cluster_count(), 2);
  EXPECT_EQ(store.token_count(), 4);
  const auto c0 = store.tokens_of(0);
  EXPECT_EQ(std::vector<Index>(c0.begin(), c0.end()), (std::vector<Index>{12, 13}));
  const auto c1 = store.tokens_of(1);
  EXPECT_EQ(std::vector<Index>(c1.begin(), c1.end()), (std::vector<Index>{10, 11}));
}

TEST(CentroidStore, ScoresInnerProductDefault) {
  CentroidStore store(2);
  Matrix centroids(2, 2);
  centroids.at(0, 0) = 1.0f;
  centroids.at(1, 0) = 3.0f;
  store.add_clusters(centroids, std::vector<Index>{0, 1}, 0);
  const std::vector<float> q{2.0f, 0.0f};
  const auto scores = store.scores(q);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_NEAR(scores[0], 2.0, 1e-6);
  EXPECT_NEAR(scores[1], 6.0, 1e-6);
}

TEST(CentroidStore, LabelValidation) {
  CentroidStore store(2);
  Matrix centroids(2, 2);
  EXPECT_THROW(store.add_clusters(centroids, std::vector<Index>{0, 2}, 0),
               std::invalid_argument);
}

TEST(SelectClusters, FillsBudgetInScoreOrder) {
  const std::vector<float> scores{0.1f, 0.9f, 0.5f};
  const std::vector<Index> sizes{10, 10, 10};
  const auto sel = select_clusters(scores, sizes, 15);
  ASSERT_EQ(sel.clusters.size(), 2u);
  EXPECT_EQ(sel.clusters[0], 1);  // highest score first
  EXPECT_EQ(sel.clusters[1], 2);
  EXPECT_EQ(sel.total_tokens, 20);
  EXPECT_TRUE(sel.trimmed);
}

TEST(SelectClusters, ExactFitNotTrimmed) {
  const std::vector<float> scores{0.2f, 0.8f};
  const std::vector<Index> sizes{3, 5};
  const auto sel = select_clusters(scores, sizes, 8);
  EXPECT_EQ(sel.clusters.size(), 2u);
  EXPECT_FALSE(sel.trimmed);
  EXPECT_EQ(sel.total_tokens, 8);
}

TEST(SelectClusters, BudgetLargerThanAllTakesAll) {
  const std::vector<float> scores{0.2f, 0.8f, 0.5f};
  const std::vector<Index> sizes{3, 5, 2};
  const auto sel = select_clusters(scores, sizes, 100);
  EXPECT_EQ(sel.clusters.size(), 3u);
  EXPECT_FALSE(sel.trimmed);
}

TEST(SelectClusters, ZeroBudgetEmpty) {
  const std::vector<float> scores{0.2f};
  const std::vector<Index> sizes{3};
  EXPECT_TRUE(select_clusters(scores, sizes, 0).clusters.empty());
}

TEST(GatherSelectedTokens, TrimsLastCluster) {
  CentroidStore store(4);
  const auto centroids = unit_rows(2, 4, 7);
  // Cluster 0: tokens 0..4; cluster 1: tokens 5..9.
  std::vector<Index> labels(10, 0);
  for (Index i = 5; i < 10; ++i) {
    labels[static_cast<std::size_t>(i)] = 1;
  }
  store.add_clusters(centroids, labels, 0);

  ClusterSelection sel;
  sel.clusters = {1, 0};  // cluster 1 scored higher
  sel.total_tokens = 10;
  sel.trimmed = true;
  const auto indexed = gather_selected_tokens(store, sel, 7);
  EXPECT_EQ(indexed.token_positions.size(), 7u);
  // First 5 tokens: all of cluster 1; last 2: prefix of cluster 0.
  EXPECT_EQ(indexed.token_positions[0], 5);
  EXPECT_EQ(indexed.token_positions[4], 9);
  EXPECT_EQ(indexed.token_positions[5], 0);
  EXPECT_EQ(indexed.token_positions[6], 1);
  ASSERT_EQ(indexed.per_cluster.size(), 2u);
  EXPECT_EQ(indexed.per_cluster[0].first, 1);
  EXPECT_EQ(indexed.per_cluster[0].second.size(), 5u);
  EXPECT_EQ(indexed.per_cluster[1].second.size(), 2u);
}

TEST(GatherSelectedTokens, BudgetZeroEmpty) {
  CentroidStore store(4);
  store.add_clusters(unit_rows(1, 4, 8), std::vector<Index>{0}, 0);
  ClusterSelection sel;
  sel.clusters = {0};
  const auto indexed = gather_selected_tokens(store, sel, 0);
  EXPECT_TRUE(indexed.token_positions.empty());
}

}  // namespace
}  // namespace ckv
